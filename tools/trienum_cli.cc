// trienum: command-line driver over the algorithm registry.
//
// Runs any registered enumeration engine (or the host-memory `reference`
// ground truth) on a generated or file-loaded graph under a chosen (M, B)
// hierarchy, logging every phase and reporting the measured block I/Os next
// to the theorem-predicted O(E^1.5/(sqrt(M)B)) bound.
//
//   $ trienum list
//   $ trienum count --algo=ps-cache-aware --graph=rmat:scale=10,m=8192
//   $ trienum count --algo=reference --graph=path/to/edges.txt
//   $ trienum enumerate --algo=ps-deterministic --graph=clique:k=8 --limit=10
//
// Graph specs are either a path to a whitespace-separated edge list (SNAP
// convention) or `<generator>:key=value,...`; run `trienum help` for the
// full generator table.
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "core/cache_aware.h"
#include "core/lower_bound.h"
#include "core/reference.h"
#include "core/sink.h"
#include "em/context.h"
#include "faults/recovery.h"
#include "prefetch/prefetch.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/normalize.h"
#include "obs/build_info.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/par_config.h"
#include "query/query.h"
#include "simd/kernel_policy.h"

namespace {

using namespace trienum;

constexpr char kUsage[] =
    "usage: trienum <command> [options]\n"
    "\n"
    "commands:\n"
    "  list                      show every registered algorithm\n"
    "  count                     run an algorithm, report the triangle count\n"
    "  enumerate                 like count, but also print the triangles\n"
    "  query                     load the graph once, answer a script of\n"
    "                            queries (--script=<file>), one report each\n"
    "  version                   build provenance: compiler, flags, compiled\n"
    "                            and active kernel variants\n"
    "  help                      show this message with the generator table\n"
    "\n"
    "query scripts (one query per line; '#' starts a comment):\n"
    "  <count|enumerate|per-vertex|per-edge> [--algo=] [--seed=] [--limit=]\n"
    "                                        [--threads=]\n"
    "\n"
    "options (count / enumerate / query):\n"
    "  --algo=<name>             algorithm name from `trienum list`, or\n"
    "                            `reference` for the host ground truth\n"
    "  --graph=<spec>            generator spec or edge-list file path\n"
    "  --memory=<M>              internal memory in words   (default 4096)\n"
    "  --block=<B>               block size in words        (default 64)\n"
    "  --seed=<S>                master seed                (default 2014)\n"
    "  --limit=<N>               max triangles to print     (enumerate only)\n"
    "  --backend=<memory|file|mmap>\n"
    "                            storage backend            (default memory)\n"
    "                            memory: RAM-resident, I/Os simulated only\n"
    "                            file:   temp-file store, resident memory\n"
    "                                    O(M); real pread/pwrite per block\n"
    "                            mmap:   memory-mapped temp file; the OS\n"
    "                                    pages, scan advice maps to madvise\n"
    "  --temp-dir=<path>         dir for the file backend's (unlinked) temp\n"
    "                            file (default $TMPDIR, then /tmp)\n"
    "  --threads=<N>             host compute threads (default 1; 0 = all\n"
    "                            hardware cores). Parallelism never changes\n"
    "                            the result or the counted block I/Os\n"
    "  --kernels=<mode>          intersection kernel policy: auto (default),\n"
    "                            scalar, swar, or avx2. Pure performance\n"
    "                            knob: every mode yields identical results,\n"
    "                            work counters, and block I/Os. avx2 without\n"
    "                            hardware/build support falls back to swar\n"
    "  --faults=<spec>           deterministic fault-injection schedule, e.g.\n"
    "                            'read:eio:every=7;write:short:every=9'\n"
    "                            (clauses op:kind[:k=v,...]; op in read|write|\n"
    "                            grow, kind in eio|eintr|short|flip|enospc;\n"
    "                            see README 'Fault injection & recovery').\n"
    "                            Transient faults are retried; triangles and\n"
    "                            counted block I/Os stay bit-identical to a\n"
    "                            clean run\n"
    "  --io-retries=<N>          retry budget per I/O operation (default 4)\n"
    "  --io-retry-backoff-ms=<T> base backoff between retries, doubling per\n"
    "                            attempt (default 0: retry immediately)\n"
    "  --verify-checksums[=0|1]  keep per-line checksums on write and verify\n"
    "                            them on fetch, detecting torn/corrupt blocks\n"
    "  --prefetch=<DEPTH>        asynchronous read-ahead depth in cache lines\n"
    "                            (default 0 = off). Dedicated I/O workers\n"
    "                            stage scan-predicted lines ahead of demand;\n"
    "                            triangles and counted block I/Os stay\n"
    "                            bit-identical to --prefetch=0. Only the\n"
    "                            staged backends (file, or any --faults/\n"
    "                            --verify-checksums stack) can stage lines\n"
    "  --prefetch-threads=<N>    I/O worker threads for --prefetch (default 1;\n"
    "                            must be positive when prefetch is on)\n"
    "  --trace=<file>            write a Chrome trace-event JSON timeline\n"
    "                            (chrome://tracing, Perfetto): phase spans\n"
    "                            with per-phase I/O deltas, worker threads as\n"
    "                            their own tracks. Tracing never changes\n"
    "                            triangles, emission order, or block I/Os\n"
    "  --metrics-json=<file>     write the full structured report as JSON:\n"
    "                            build info, per-query measurements, phase\n"
    "                            attribution, and I/O latency histograms\n"
    "  --report=<text|json>      stdout report format for count/enumerate\n"
    "                            (default text)\n"
    "\n"
    "graph generators (`<name>:k1=v1,k2=v2,...`):\n"
    "  gnm:n=1024,m=4096,seed=1          Erdos-Renyi G(n, m)\n"
    "  clique:k=32                       complete graph K_k\n"
    "  clique-path:k=12,path=50          K_k plus a path periphery\n"
    "  clique-union:k=8,s=12             k disjoint cliques of size s\n"
    "  tripartite:a=8,b=8,c=8            complete tripartite K_{a,b,c}\n"
    "  rmat:scale=10,m=8192,pa=0.45,pb=0.22,pc=0.22,seed=1\n"
    "                                    R-MAT with skewed degrees\n"
    "  planted:n=1024,m=2048,t=64,seed=1 random edges + t planted triangles\n"
    "  ba:n=1024,attach=4,seed=1         Barabasi-Albert preferential attach\n"
    "  ws:n=1024,k=4,beta=0.1,seed=1     Watts-Strogatz small world\n"
    "  bipartite:l=512,r=512,m=2048,seed=1\n"
    "                                    random bipartite (triangle-free)\n"
    "  star:n=1024 | path:n=1024 | cycle:n=1024\n"
    "                                    triangle-free controls\n";

[[noreturn]] void Die(const std::string& msg) {
  std::fprintf(stderr, "trienum: %s\n", msg.c_str());
  std::exit(2);
}

// ---------------------------------------------------------------------------
// Option parsing: --key=value only, collected into a flat list.

struct Options {
  std::string algo = "ps-cache-aware";
  std::string graph = "rmat:scale=10,m=8192";
  std::size_t memory_words = 4096;
  std::size_t block_words = 64;
  std::uint64_t seed = 2014;
  std::size_t limit = 20;
  em::StorageKind backend = em::StorageKind::kMemory;
  std::string temp_dir;
  std::size_t threads = 1;
  simd::KernelMode kernels = simd::KernelMode::kAuto;
  std::string faults;
  int io_retries = 4;
  int io_retry_backoff_ms = 0;
  bool verify_checksums = false;
  std::size_t prefetch_depth = 0;
  std::size_t prefetch_threads = 1;
  std::string script;       // `trienum query` only
  std::string trace_file;   // --trace=<file>: Chrome trace-event JSON
  std::string metrics_json; // --metrics-json=<file>: structured report
  bool report_json = false; // --report=json (count / enumerate only)
};

std::uint64_t ParseU64(const std::string& key, const std::string& value) {
  // strtoull accepts (and wraps) a leading '-'; reject it explicitly.
  if (value.empty() || value[0] == '-' || value[0] == '+') {
    Die("expected a non-negative integer for " + key + ", got '" + value + "'");
  }
  errno = 0;
  char* end = nullptr;
  std::uint64_t v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
    Die("expected a non-negative integer for " + key + ", got '" + value + "'");
  }
  return v;
}

double ParseF64(const std::string& key, const std::string& value) {
  char* end = nullptr;
  double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    Die("expected a number for " + key + ", got '" + value + "'");
  }
  return v;
}

Options ParseOptions(int argc, char** argv, bool query_mode = false) {
  Options opt;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      Die("unexpected argument '" + arg + "' (run `trienum help` for usage)");
    }
    std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      if (arg == "--verify-checksums") {  // the one boolean flag: bare form ok
        opt.verify_checksums = true;
        continue;
      }
      Die("options take the form --key=value: " + arg +
          " (run `trienum help` for the option table)");
    }
    std::string key = arg.substr(2, eq - 2);
    std::string value = arg.substr(eq + 1);
    if (key == "algo") {
      opt.algo = value;
    } else if (key == "graph") {
      opt.graph = value;
    } else if (key == "memory") {
      opt.memory_words = ParseU64(key, value);
    } else if (key == "block") {
      opt.block_words = ParseU64(key, value);
    } else if (key == "seed") {
      opt.seed = ParseU64(key, value);
    } else if (key == "limit") {
      opt.limit = ParseU64(key, value);
    } else if (key == "backend") {
      if (value == "memory") {
        opt.backend = em::StorageKind::kMemory;
      } else if (value == "file") {
        opt.backend = em::StorageKind::kFile;
      } else if (value == "mmap") {
        opt.backend = em::StorageKind::kMmap;
      } else {
        Die("--backend must be 'memory', 'file', or 'mmap', got '" + value +
            "'");
      }
    } else if (key == "temp-dir") {
      opt.temp_dir = value;
    } else if (key == "threads") {
      opt.threads = ParseU64(key, value);
    } else if (key == "kernels") {
      if (!simd::ParseKernelMode(value, &opt.kernels)) {
        Die("--kernels must be auto, scalar, swar, or avx2, got '" + value +
            "'");
      }
    } else if (key == "faults") {
      opt.faults = value;
    } else if (key == "io-retries") {
      opt.io_retries = static_cast<int>(ParseU64(key, value));
    } else if (key == "io-retry-backoff-ms") {
      opt.io_retry_backoff_ms = static_cast<int>(ParseU64(key, value));
    } else if (key == "prefetch") {
      opt.prefetch_depth = ParseU64(key, value);
    } else if (key == "prefetch-threads") {
      opt.prefetch_threads = ParseU64(key, value);
    } else if (key == "verify-checksums") {
      if (value == "1") {
        opt.verify_checksums = true;
      } else if (value == "0") {
        opt.verify_checksums = false;
      } else {
        Die("--verify-checksums takes 0 or 1, got '" + value + "'");
      }
    } else if (key == "trace") {
      opt.trace_file = value;
    } else if (key == "metrics-json") {
      opt.metrics_json = value;
    } else if (key == "report") {
      if (value == "json") {
        opt.report_json = true;
      } else if (value == "text") {
        opt.report_json = false;
      } else {
        Die("--report takes 'text' or 'json', got '" + value + "'");
      }
    } else if (query_mode && key == "script") {
      opt.script = value;
    } else {
      Die("unknown option --" + key +
          " (run `trienum help` for the option table)");
    }
  }
  if (opt.memory_words == 0 || opt.block_words == 0) {
    Die("--memory and --block must be positive");
  }
  if (opt.block_words > opt.memory_words) {
    Die("--block must not exceed --memory (need at least one cache line)");
  }
  if (opt.prefetch_depth > 0 && opt.prefetch_threads == 0) {
    Die("--prefetch-threads must be positive when --prefetch is on "
        "(run `trienum help` for the option table)");
  }
  if (query_mode && opt.report_json) {
    Die("--report=json applies to count/enumerate only; `trienum query` "
        "keeps the text stream (use --metrics-json for machine output)");
  }
  if (!opt.temp_dir.empty()) {
    // Validate here so an obviously bad path dies with a usage error up
    // front; paths that pass but still fail mkstemp (e.g. read-only
    // directories) surface later as a clean IoError from FromEdges.
    std::error_code ec;
    if (!std::filesystem::is_directory(opt.temp_dir, ec)) {
      Die("--temp-dir '" + opt.temp_dir + "' is not an existing directory");
    }
  }
  return opt;
}

// ---------------------------------------------------------------------------
// Graph specs: `<generator>:k=v,...` or an edge-list file path.

struct SpecParams {
  std::vector<std::pair<std::string, std::string>> kv;

  std::uint64_t U64(const std::string& key, std::uint64_t def) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return ParseU64(key, v);
    }
    return def;
  }
  double F64(const std::string& key, double def) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return ParseF64(key, v);
    }
    return def;
  }
};

SpecParams ParseSpecParams(const std::string& name, const std::string& body,
                           const std::vector<std::string>& allowed) {
  SpecParams p;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    std::string item = body.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      Die("generator parameters take the form key=value: '" + item + "'");
    }
    std::string key = item.substr(0, eq);
    bool known = false;
    for (const std::string& a : allowed) known = known || a == key;
    if (!known) Die("generator '" + name + "' has no parameter '" + key + "'");
    p.kv.emplace_back(key, item.substr(eq + 1));
  }
  return p;
}

std::vector<graph::Edge> MakeGraph(const Options& opt) {
  using graph::VertexId;
  const std::string& spec = opt.graph;
  std::size_t colon = spec.find(':');
  std::string name = colon == std::string::npos ? spec : spec.substr(0, colon);
  std::string body = colon == std::string::npos ? "" : spec.substr(colon + 1);

  auto vid = [](std::uint64_t v) {
    if (v > std::numeric_limits<VertexId>::max()) {
      Die("vertex-count parameter " + std::to_string(v) +
          " exceeds the 32-bit vertex-id range");
    }
    return static_cast<VertexId>(v);
  };

  if (name == "gnm") {
    SpecParams p = ParseSpecParams(name, body, {"n", "m", "seed"});
    return graph::Gnm(vid(p.U64("n", 1024)), p.U64("m", 4096),
                      p.U64("seed", opt.seed));
  }
  if (name == "clique") {
    SpecParams p = ParseSpecParams(name, body, {"k"});
    return graph::Clique(vid(p.U64("k", 32)));
  }
  if (name == "clique-path") {
    SpecParams p = ParseSpecParams(name, body, {"k", "path"});
    return graph::CliquePlusPath(vid(p.U64("k", 12)), vid(p.U64("path", 50)));
  }
  if (name == "clique-union") {
    SpecParams p = ParseSpecParams(name, body, {"k", "s"});
    return graph::CliqueUnion(vid(p.U64("k", 8)), vid(p.U64("s", 12)));
  }
  if (name == "tripartite") {
    SpecParams p = ParseSpecParams(name, body, {"a", "b", "c"});
    return graph::CompleteTripartite(vid(p.U64("a", 8)), vid(p.U64("b", 8)),
                                     vid(p.U64("c", 8)));
  }
  if (name == "rmat") {
    SpecParams p = ParseSpecParams(name, body, {"scale", "m", "pa", "pb", "pc", "seed"});
    // Validate here so bad specs die with a usage error instead of tripping
    // the generator's internal TRIENUM_CHECK abort.
    std::uint64_t scale = p.U64("scale", 10);
    if (scale < 1 || scale > 30) {
      Die("rmat scale must be in [1, 30], got " + std::to_string(scale));
    }
    double pa = p.F64("pa", 0.45), pb = p.F64("pb", 0.22), pc = p.F64("pc", 0.22);
    if (!(pa >= 0 && pb >= 0 && pc >= 0 && pa + pb + pc <= 1.0)) {
      Die("rmat probabilities must be non-negative with pa+pb+pc <= 1");
    }
    return graph::Rmat(static_cast<int>(scale), p.U64("m", 8192), pa, pb, pc,
                       p.U64("seed", opt.seed));
  }
  if (name == "planted") {
    SpecParams p = ParseSpecParams(name, body, {"n", "m", "t", "seed"});
    return graph::PlantedTriangles(vid(p.U64("n", 1024)), p.U64("m", 2048),
                                   p.U64("t", 64), p.U64("seed", opt.seed));
  }
  if (name == "ba") {
    SpecParams p = ParseSpecParams(name, body, {"n", "attach", "seed"});
    return graph::BarabasiAlbert(vid(p.U64("n", 1024)), vid(p.U64("attach", 4)),
                                 p.U64("seed", opt.seed));
  }
  if (name == "ws") {
    SpecParams p = ParseSpecParams(name, body, {"n", "k", "beta", "seed"});
    return graph::WattsStrogatz(vid(p.U64("n", 1024)), vid(p.U64("k", 4)),
                                p.F64("beta", 0.1), p.U64("seed", opt.seed));
  }
  if (name == "bipartite") {
    SpecParams p = ParseSpecParams(name, body, {"l", "r", "m", "seed"});
    return graph::BipartiteRandom(vid(p.U64("l", 512)), vid(p.U64("r", 512)),
                                  p.U64("m", 2048), p.U64("seed", opt.seed));
  }
  if (name == "star") {
    SpecParams p = ParseSpecParams(name, body, {"n"});
    return graph::Star(vid(p.U64("n", 1024)));
  }
  if (name == "path") {
    SpecParams p = ParseSpecParams(name, body, {"n"});
    return graph::PathGraph(vid(p.U64("n", 1024)));
  }
  if (name == "cycle") {
    SpecParams p = ParseSpecParams(name, body, {"n"});
    return graph::CycleGraph(vid(p.U64("n", 1024)));
  }

  // Not a known generator: treat the whole spec as an edge-list file path.
  Result<std::vector<graph::Edge>> r = graph::ReadEdgeListAuto(spec);
  if (!r.ok()) {
    Die("cannot load graph '" + spec + "': " + r.status().ToString() +
        " (not a generator name either; see `trienum help`)");
  }
  return *r;
}

// ---------------------------------------------------------------------------
// Commands.

int CmdList() {
  std::printf("%-20s %-6s %-6s %s\n", "name", "aware", "rand", "description");
  for (const core::AlgorithmInfo& a : core::AllAlgorithms()) {
    std::printf("%-20s %-6s %-6s %s\n", a.name.c_str(),
                a.cache_aware ? "yes" : "no", a.randomized ? "yes" : "no",
                a.description.c_str());
  }
  std::printf("%-20s %-6s %-6s %s\n", "reference", "-", "no",
              "host-memory ground truth (no I/O accounting)");
  return 0;
}

void PrintTriangles(const std::vector<graph::Triangle>& tris, std::size_t limit) {
  for (std::size_t i = 0; i < tris.size() && i < limit; ++i) {
    std::printf("triangle %u %u %u\n", tris[i].a, tris[i].b, tris[i].c);
  }
  if (tris.size() > limit) {
    std::printf("... (%zu more)\n", tris.size() - limit);
  }
}

em::EmConfig MakeEmConfig(const Options& opt) {
  em::EmConfig cfg;
  cfg.memory_words = opt.memory_words;
  cfg.block_words = opt.block_words;
  cfg.seed = opt.seed;
  cfg.storage = opt.backend;
  cfg.temp_dir = opt.temp_dir;
  cfg.fault_spec = opt.faults;
  cfg.io_retries = opt.io_retries;
  cfg.io_retry_backoff_ms = opt.io_retry_backoff_ms;
  cfg.verify_checksums = opt.verify_checksums;
  cfg.prefetch_depth = opt.prefetch_depth;
  cfg.prefetch_threads = opt.prefetch_threads;
  Status st = faults::ApplyFaultConfig(cfg);
  if (!st.ok()) Die(st.ToString());
  st = prefetch::ApplyPrefetchConfig(cfg);
  if (!st.ok()) Die(st.ToString());
  return cfg;
}

/// The per-run measurement block shared by count / enumerate / query:
/// everything a single query produced, in the established `key = value`
/// report format.
void PrintMeasurements(const query::QueryResult& r, std::size_t num_edges,
                       std::size_t memory_words, std::size_t block_words) {
  double bound =
      core::PaghSilvestriIoBound(num_edges, memory_words, block_words);
  double lower = core::IoLowerBound(r.triangles, memory_words, block_words);
  std::printf("threads = %zu\n", r.threads_used);
  std::printf("kernels = %s\n",
              simd::KernelVariantName(simd::ActiveVariant()));
  std::printf("seed = %llu\n", static_cast<unsigned long long>(r.seed_used));
  std::printf("triangles = %llu\n",
              static_cast<unsigned long long>(r.triangles));
  std::printf("block_reads = %llu\n",
              static_cast<unsigned long long>(r.io.block_reads));
  std::printf("block_writes = %llu\n",
              static_cast<unsigned long long>(r.io.block_writes));
  std::printf("block_ios = %llu\n",
              static_cast<unsigned long long>(r.io.total_ios()));
  std::printf("wall_ms = %.2f\n", r.wall_ms);
  std::printf("real_read_calls = %llu\n",
              static_cast<unsigned long long>(r.telemetry.read_calls));
  std::printf("real_write_calls = %llu\n",
              static_cast<unsigned long long>(r.telemetry.write_calls));
  std::printf("real_bytes_read = %llu\n",
              static_cast<unsigned long long>(r.telemetry.bytes_read));
  std::printf("real_bytes_written = %llu\n",
              static_cast<unsigned long long>(r.telemetry.bytes_written));
  std::printf("device_peak_words = %zu\n", r.device_peak_words);
  std::printf("internal_work = %llu\n",
              static_cast<unsigned long long>(r.work));
  std::printf("predicted_bound = %.0f\n", bound);
  std::printf("measured_over_bound = %.2f\n",
              bound > 0 ? static_cast<double>(r.io.total_ios()) / bound : 0.0);
  std::printf("lower_bound = %.0f\n", lower);
  std::printf("recovery_retries = %llu\n",
              static_cast<unsigned long long>(r.recovery.retries));
  std::printf("recovery_faults_injected = %llu\n",
              static_cast<unsigned long long>(r.recovery.faults_injected));
  std::printf("recovery_checksum_failures = %llu\n",
              static_cast<unsigned long long>(r.recovery.checksum_failures));
  std::printf("prefetch_issued = %llu\n",
              static_cast<unsigned long long>(r.prefetch.issued));
  std::printf("prefetch_useful = %llu\n",
              static_cast<unsigned long long>(r.prefetch.useful));
  std::printf("prefetch_wasted = %llu\n",
              static_cast<unsigned long long>(r.prefetch.wasted));
  std::printf("prefetch_stalls = %llu\n",
              static_cast<unsigned long long>(r.prefetch.stalls));
  // Per-phase attribution (traced runs only): exclusive deltas, so the
  // block_reads/block_writes/work columns sum to the totals above.
  for (const query::PhaseStat& p : r.phases) {
    std::printf(
        "phase %s spans=%llu wall_ms=%.2f block_reads=%llu block_writes=%llu "
        "work=%llu\n",
        p.name.c_str(), static_cast<unsigned long long>(p.spans),
        static_cast<double>(p.self_wall_ns) / 1e6,
        static_cast<unsigned long long>(p.self.block_reads),
        static_cast<unsigned long long>(p.self.block_writes),
        static_cast<unsigned long long>(p.self.work));
  }
}

// ---------------------------------------------------------------------------
// JSON surfacing: --report=json, --metrics-json, `trienum version`.

/// The compiled-in kernel variants (scalar and SWAR are unconditional; AVX2
/// only under __AVX2__ builds) and runtime facts, composed from simd/ —
/// obs/build_info cannot see the kernel layer.
void WriteKernelInfoJson(obs::JsonWriter& w) {
  w.Key("kernels_compiled").BeginArray();
  w.Value("scalar").Value("swar");
  if (simd::Avx2Compiled()) w.Value("avx2");
  w.EndArray();
  w.KV("avx2_runtime", simd::Avx2Available());
  w.KV("kernels_active", simd::KernelVariantName(simd::ActiveVariant()));
}

void WriteBuildInfoJson(obs::JsonWriter& w) {
  const obs::BuildInfo& b = obs::GetBuildInfo();
  w.Key("build_info").BeginObject();
  w.KV("compiler", b.compiler);
  w.KV("flags", b.flags);
  w.KV("build_type", b.build_type);
  w.KV("native", b.native);
  w.KV("cplusplus", static_cast<std::int64_t>(b.cplusplus));
  WriteKernelInfoJson(w);
  w.EndObject();
}

/// The measurement block of one query as JSON keys on the currently open
/// object — the same facts PrintMeasurements reports as `key = value`.
void WriteResultJson(obs::JsonWriter& w, const query::QueryResult& r,
                     std::size_t num_edges, std::size_t memory_words,
                     std::size_t block_words) {
  const double bound =
      core::PaghSilvestriIoBound(num_edges, memory_words, block_words);
  const double lower = core::IoLowerBound(r.triangles, memory_words, block_words);
  w.KV("threads", static_cast<std::uint64_t>(r.threads_used));
  w.KV("kernels", simd::KernelVariantName(simd::ActiveVariant()));
  w.KV("seed", r.seed_used);
  w.KV("triangles", r.triangles);
  w.Key("io").BeginObject();
  w.KV("block_reads", r.io.block_reads);
  w.KV("block_writes", r.io.block_writes);
  w.KV("block_ios", r.io.total_ios());
  w.KV("cache_hits", r.io.cache_hits);
  w.EndObject();
  w.KV("wall_ms", r.wall_ms);
  w.Key("storage").BeginObject();
  w.KV("read_calls", r.telemetry.read_calls);
  w.KV("write_calls", r.telemetry.write_calls);
  w.KV("bytes_read", r.telemetry.bytes_read);
  w.KV("bytes_written", r.telemetry.bytes_written);
  w.EndObject();
  w.KV("device_peak_words", static_cast<std::uint64_t>(r.device_peak_words));
  w.KV("internal_work", r.work);
  w.KV("predicted_bound", bound);
  w.KV("measured_over_bound",
       bound > 0 ? static_cast<double>(r.io.total_ios()) / bound : 0.0);
  w.KV("lower_bound", lower);
  w.Key("recovery").BeginObject();
  w.KV("retries", r.recovery.retries);
  w.KV("faults_injected", r.recovery.faults_injected);
  w.KV("checksum_failures", r.recovery.checksum_failures);
  w.EndObject();
  w.Key("prefetch").BeginObject();
  w.KV("issued", r.prefetch.issued);
  w.KV("useful", r.prefetch.useful);
  w.KV("wasted", r.prefetch.wasted);
  w.KV("stalls", r.prefetch.stalls);
  w.EndObject();
  w.Key("phases").BeginArray();
  for (const query::PhaseStat& p : r.phases) {
    w.BeginObject();
    w.KV("name", p.name);
    w.KV("spans", p.spans);
    w.KV("self_wall_ns", p.self_wall_ns);
    w.KV("block_reads", p.self.block_reads);
    w.KV("block_writes", p.self.block_writes);
    w.KV("cache_hits", p.self.cache_hits);
    w.KV("work", p.self.work);
    w.KV("read_calls", p.self.read_calls);
    w.KV("write_calls", p.self.write_calls);
    w.KV("bytes_read", p.self.bytes_read);
    w.KV("bytes_written", p.self.bytes_written);
    w.EndObject();
  }
  w.EndArray();
  w.Key("histograms").BeginArray();
  for (const obs::HistogramSnapshot& h : r.histogram_deltas) {
    w.BeginObject();
    w.KV("name", h.name);
    w.KV("count", h.count);
    w.KV("sum", h.sum);
    w.KV("max", h.max);
    w.Key("buckets").BeginArray();
    for (int i = 0; i < obs::kHistogramBuckets; ++i) {
      if (h.buckets[static_cast<std::size_t>(i)] == 0) continue;
      w.BeginObject();
      w.KV("lo", obs::HistogramBucketLo(i));
      w.KV("hi", obs::HistogramBucketHi(i));
      w.KV("count", h.buckets[static_cast<std::size_t>(i)]);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
}

/// The graph-lifetime facts shared by every query of a run, as JSON keys on
/// the currently open object.
void WriteGraphHeaderJson(obs::JsonWriter& w, const Options& opt,
                          const graph::EmGraph& g, const char* backend_name) {
  w.KV("graph", opt.graph);
  w.KV("backend", backend_name);
  w.KV("edges", static_cast<std::uint64_t>(g.num_edges()));
  w.KV("vertices", g.num_vertices);
  w.KV("memory_words", static_cast<std::uint64_t>(opt.memory_words));
  w.KV("block_words", static_cast<std::uint64_t>(opt.block_words));
  w.KV("prefetch_depth", static_cast<std::uint64_t>(opt.prefetch_depth));
}

struct MetricsEntry {
  std::string kind;
  std::string algo;
  const query::QueryResult* r;
};

/// --metrics-json: the full structured report (build info, graph header,
/// one entry per query) written to `path`.
void WriteMetricsFile(const std::string& path, const Options& opt,
                      const graph::EmGraph& g, const char* backend_name,
                      const std::vector<MetricsEntry>& entries) {
  std::ofstream os(path);
  if (!os) Die("cannot open --metrics-json file '" + path + "'");
  obs::JsonWriter w(os);
  w.BeginObject();
  WriteBuildInfoJson(w);
  WriteGraphHeaderJson(w, opt, g, backend_name);
  w.Key("queries").BeginArray();
  for (const MetricsEntry& e : entries) {
    w.BeginObject();
    w.KV("kind", e.kind);
    w.KV("algorithm", e.algo);
    WriteResultJson(w, *e.r, g.num_edges(), opt.memory_words, opt.block_words);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << "\n";
  if (!os) Die("failed writing --metrics-json file '" + path + "'");
  std::fprintf(stderr, "[metrics] wrote %s\n", path.c_str());
}

/// --trace: the collector's Chrome trace-event timeline written to `path`.
void WriteTraceFile(const std::string& path, const obs::TraceCollector& tc) {
  std::ofstream os(path);
  if (!os) Die("cannot open --trace file '" + path + "'");
  tc.WriteChromeJson(os);
  if (!os) Die("failed writing --trace file '" + path + "'");
  std::fprintf(stderr, "[trace] wrote %s\n", path.c_str());
}

int CmdVersion(bool json) {
  const obs::BuildInfo& b = obs::GetBuildInfo();
  if (json) {
    obs::JsonWriter w(std::cout);
    w.BeginObject();
    WriteBuildInfoJson(w);
    w.EndObject();
    std::cout << "\n";
    return 0;
  }
  std::printf("compiler = %s\n", b.compiler.c_str());
  std::printf("build_type = %s\n", b.build_type.c_str());
  std::printf("flags = %s\n", b.flags.c_str());
  std::printf("native = %d\n", b.native ? 1 : 0);
  std::printf("cplusplus = %ld\n", b.cplusplus);
  std::printf("kernels_compiled = scalar,swar%s\n",
              simd::Avx2Compiled() ? ",avx2" : "");
  std::printf("avx2_runtime = %d\n", simd::Avx2Available() ? 1 : 0);
  std::printf("kernels_active = %s\n",
              simd::KernelVariantName(simd::ActiveVariant()));
  return 0;
}

/// The query's payload lines (before the measurement block): triangles for
/// enumerate, nonzero per-vertex / per-edge counts otherwise, all capped at
/// `limit` with a "... (N more)" tail.
void PrintPayload(const query::Query& q, const query::QueryResult& r,
                  std::size_t limit) {
  switch (q.kind) {
    case query::QueryKind::kCount:
      break;
    case query::QueryKind::kEnumerate: {
      for (std::size_t i = 0; i < r.list.size() && i < limit; ++i) {
        std::printf("triangle %u %u %u\n", r.list[i].a, r.list[i].b,
                    r.list[i].c);
      }
      if (r.triangles > limit) {
        std::printf("... (%llu more)\n",
                    static_cast<unsigned long long>(r.triangles - limit));
      }
      break;
    }
    case query::QueryKind::kPerVertex: {
      std::size_t shown = 0, nonzero = 0;
      for (std::size_t v = 0; v < r.per_vertex.size(); ++v) {
        if (r.per_vertex[v] == 0) continue;
        ++nonzero;
        if (shown < limit) {
          std::printf("vertex %zu %llu\n", v,
                      static_cast<unsigned long long>(r.per_vertex[v]));
          ++shown;
        }
      }
      if (nonzero > shown) {
        std::printf("... (%zu more)\n", nonzero - shown);
      }
      break;
    }
    case query::QueryKind::kPerEdge: {
      for (std::size_t i = 0; i < r.per_edge.size() && i < limit; ++i) {
        std::printf("edge-support %u %u %llu\n", r.per_edge[i].e.u,
                    r.per_edge[i].e.v,
                    static_cast<unsigned long long>(r.per_edge[i].count));
      }
      if (r.per_edge.size() > limit) {
        std::printf("... (%zu more)\n", r.per_edge.size() - limit);
      }
      break;
    }
  }
}

int CmdRun(const Options& opt, bool enumerate) {
  simd::SetMode(opt.kernels);
  const bool is_reference = opt.algo == "reference";
  if (!is_reference && core::FindAlgorithm(opt.algo) == nullptr) {
    Die("unknown algorithm '" + opt.algo + "' (see `trienum list`)");
  }
  if (is_reference && (!opt.trace_file.empty() || !opt.metrics_json.empty())) {
    Die("--trace/--metrics-json need an EM algorithm run; --algo=reference "
        "is host-memory only");
  }

  std::fprintf(stderr, "[graph] building '%s'\n", opt.graph.c_str());
  std::vector<graph::Edge> raw = MakeGraph(opt);
  std::fprintf(stderr, "[graph] %zu raw edges\n", raw.size());

  if (is_reference) {
    std::fprintf(stderr, "[run] host reference (compact-forward)\n");
    if (enumerate) {
      std::vector<graph::Triangle> tris = core::ListTrianglesHost(raw);
      if (opt.report_json) {
        obs::JsonWriter w(std::cout);
        w.BeginObject();
        w.KV("command", "enumerate");
        w.KV("algorithm", "reference");
        w.KV("triangles", static_cast<std::uint64_t>(tris.size()));
        w.Key("list").BeginArray();
        for (std::size_t i = 0; i < tris.size() && i < opt.limit; ++i) {
          w.BeginArray();
          w.Value(tris[i].a).Value(tris[i].b).Value(tris[i].c);
          w.EndArray();
        }
        w.EndArray();
        w.EndObject();
        std::cout << "\n";
      } else {
        PrintTriangles(tris, opt.limit);
        std::printf("triangles = %zu\n", tris.size());
      }
    } else {
      const std::uint64_t n = core::CountTrianglesHost(raw);
      if (opt.report_json) {
        obs::JsonWriter w(std::cout);
        w.BeginObject();
        w.KV("command", "count");
        w.KV("algorithm", "reference");
        w.KV("triangles", n);
        w.EndObject();
        std::cout << "\n";
      } else {
        std::printf("triangles = %llu\n", static_cast<unsigned long long>(n));
      }
    }
    return 0;
  }

  // Tracing / metrics: one collector for the whole run, installed before
  // the load so `graph.load` lands on the timeline. Phase attribution and
  // histogram windows in QueryResult key off an installed collector, so
  // --metrics-json alone installs one too (and simply never writes the
  // timeline file).
  obs::TraceCollector collector;
  std::optional<obs::ScopedTraceCollector> install;
  if (!opt.trace_file.empty() || !opt.metrics_json.empty()) {
    install.emplace(collector);
  }

  std::fprintf(stderr,
               "[normalize] degree-rank relabel + lexicographic sort (uncounted)\n");
  Result<query::LoadedGraph> loaded =
      query::LoadedGraph::FromEdges(MakeEmConfig(opt), raw);
  if (!loaded.ok()) Die(loaded.status().ToString());
  query::LoadedGraph lg = *std::move(loaded);
  const graph::EmGraph& g = lg.graph();
  std::fprintf(stderr, "[storage] %s backend\n",
               lg.store().device().backend().name());
  std::fprintf(stderr, "[normalize] E=%zu edges over V=%u vertices\n",
               g.num_edges(), g.num_vertices);

  query::Query q;
  q.kind = enumerate ? query::QueryKind::kEnumerate : query::QueryKind::kCount;
  q.algo = opt.algo;
  q.threads = opt.threads;
  std::fprintf(stderr, "[run] %s with M=%zu words, B=%zu words (cold cache)\n",
               opt.algo.c_str(), opt.memory_words, opt.block_words);
  Result<query::QueryResult> rr = lg.Run(q);
  if (!rr.ok()) Die(rr.status().ToString());
  const query::QueryResult& r = *rr;
  std::fprintf(stderr, "[run] done in %.1f ms\n", r.wall_ms);

  const char* backend_name = lg.store().device().backend().name();
  const char* kind_name = enumerate ? "enumerate" : "count";
  if (!opt.trace_file.empty()) WriteTraceFile(opt.trace_file, collector);
  if (!opt.metrics_json.empty()) {
    WriteMetricsFile(opt.metrics_json, opt, g, backend_name,
                     {MetricsEntry{kind_name, opt.algo, &r}});
  }

  if (opt.report_json) {
    obs::JsonWriter w(std::cout);
    w.BeginObject();
    w.KV("command", kind_name);
    w.KV("algorithm", opt.algo);
    WriteGraphHeaderJson(w, opt, g, backend_name);
    WriteResultJson(w, r, g.num_edges(), opt.memory_words, opt.block_words);
    if (enumerate) {
      w.Key("list").BeginArray();
      for (std::size_t i = 0; i < r.list.size() && i < opt.limit; ++i) {
        w.BeginArray();
        w.Value(r.list[i].a).Value(r.list[i].b).Value(r.list[i].c);
        w.EndArray();
      }
      w.EndArray();
    }
    w.EndObject();
    std::cout << "\n";
    return 0;
  }

  PrintPayload(q, r, opt.limit);
  std::printf("algorithm = %s\n", opt.algo.c_str());
  std::printf("graph = %s\n", opt.graph.c_str());
  std::printf("backend = %s\n", backend_name);
  std::printf("edges = %zu\n", g.num_edges());
  std::printf("vertices = %u\n", g.num_vertices);
  std::printf("memory_words = %zu\n", opt.memory_words);
  std::printf("block_words = %zu\n", opt.block_words);
  std::printf("prefetch = %zu\n", opt.prefetch_depth);
  PrintMeasurements(r, g.num_edges(), opt.memory_words, opt.block_words);
  return 0;
}

// ---------------------------------------------------------------------------
// `trienum query`: load once, answer a script of queries.

query::QueryKind ParseKind(const std::string& tok, std::size_t line_no) {
  if (tok == "count") return query::QueryKind::kCount;
  if (tok == "enumerate") return query::QueryKind::kEnumerate;
  if (tok == "per-vertex") return query::QueryKind::kPerVertex;
  if (tok == "per-edge") return query::QueryKind::kPerEdge;
  Die("script line " + std::to_string(line_no) + ": unknown query kind '" +
      tok + "' (count, enumerate, per-vertex, per-edge)");
}

struct ScriptQuery {
  query::Query q;
  std::size_t limit;  // payload print cap for this query
};

/// Parses one script line: `<kind> [--algo=] [--seed=] [--limit=]
/// [--threads=]`. Defaults come from the command-line options, so a script
/// only states what differs per query.
ScriptQuery ParseScriptLine(const std::string& line, std::size_t line_no,
                            const Options& opt) {
  std::vector<std::string> toks;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && std::isspace(static_cast<unsigned char>(line[pos]))) ++pos;
    std::size_t start = pos;
    while (pos < line.size() && !std::isspace(static_cast<unsigned char>(line[pos]))) ++pos;
    if (pos > start) toks.push_back(line.substr(start, pos - start));
  }
  TRIENUM_CHECK(!toks.empty());

  ScriptQuery sq;
  sq.q.algo = opt.algo;
  sq.q.threads = opt.threads;
  sq.limit = opt.limit;
  sq.q.kind = ParseKind(toks[0], line_no);
  for (std::size_t i = 1; i < toks.size(); ++i) {
    const std::string& t = toks[i];
    std::size_t eq = t.find('=');
    if (t.rfind("--", 0) != 0 || eq == std::string::npos) {
      Die("script line " + std::to_string(line_no) +
          ": query options take the form --key=value: '" + t + "'");
    }
    std::string key = t.substr(2, eq - 2);
    std::string value = t.substr(eq + 1);
    if (key == "algo") {
      sq.q.algo = value;
    } else if (key == "seed") {
      sq.q.seed = ParseU64(key, value);
    } else if (key == "limit") {
      sq.limit = ParseU64(key, value);
    } else if (key == "threads") {
      sq.q.threads = ParseU64(key, value);
    } else {
      Die("script line " + std::to_string(line_no) + ": unknown option --" +
          key + " (allowed: --algo, --seed, --limit, --threads)");
    }
  }
  if (core::FindAlgorithm(sq.q.algo) == nullptr) {
    Die("script line " + std::to_string(line_no) + ": unknown algorithm '" +
        sq.q.algo + "' (see `trienum list`)");
  }
  return sq;
}

std::vector<ScriptQuery> LoadScript(const std::string& path, const Options& opt) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) Die("cannot open script '" + path + "'");
  std::vector<ScriptQuery> out;
  std::string line;
  std::size_t line_no = 0;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    ++line_no;
    line.assign(buf);
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    bool blank = true;
    for (char c : line) blank = blank && std::isspace(static_cast<unsigned char>(c));
    if (blank) continue;
    out.push_back(ParseScriptLine(line, line_no, opt));
  }
  std::fclose(f);
  if (out.empty()) Die("script '" + path + "' contains no queries");
  return out;
}

int CmdQuery(const Options& opt) {
  simd::SetMode(opt.kernels);
  if (opt.script.empty()) {
    Die("`trienum query` needs --script=<file> (one query per line)");
  }
  // Parse the whole script up front so a typo on line 40 dies before the
  // (possibly expensive) load, not after 39 answered queries.
  std::vector<ScriptQuery> script = LoadScript(opt.script, opt);

  // One trace per script: the load plus every query on a single timeline,
  // each query nested under its own wall-only "cli.query" span.
  obs::TraceCollector collector;
  std::optional<obs::ScopedTraceCollector> install;
  if (!opt.trace_file.empty() || !opt.metrics_json.empty()) {
    install.emplace(collector);
  }

  std::fprintf(stderr, "[graph] building '%s'\n", opt.graph.c_str());
  std::vector<graph::Edge> raw = MakeGraph(opt);
  std::fprintf(stderr, "[graph] %zu raw edges\n", raw.size());
  Result<query::LoadedGraph> loaded =
      query::LoadedGraph::FromEdges(MakeEmConfig(opt), raw);
  if (!loaded.ok()) Die(loaded.status().ToString());
  query::LoadedGraph lg = *std::move(loaded);
  const graph::EmGraph& g = lg.graph();
  std::fprintf(stderr, "[normalize] E=%zu edges over V=%u vertices (uncounted)\n",
               g.num_edges(), g.num_vertices);

  // Shared header: graph-lifetime facts, printed once.
  std::printf("graph = %s\n", opt.graph.c_str());
  std::printf("backend = %s\n", lg.store().device().backend().name());
  std::printf("edges = %zu\n", g.num_edges());
  std::printf("vertices = %u\n", g.num_vertices);
  std::printf("memory_words = %zu\n", opt.memory_words);
  std::printf("block_words = %zu\n", opt.block_words);
  std::printf("prefetch = %zu\n", opt.prefetch_depth);
  std::printf("queries = %zu\n", script.size());

  static const char* kKindNames[] = {"count", "enumerate", "per-vertex",
                                     "per-edge"};
  // Results outlive the loop when --metrics-json aggregates them at the end.
  std::vector<query::QueryResult> results;
  if (!opt.metrics_json.empty()) results.reserve(script.size());
  for (std::size_t i = 0; i < script.size(); ++i) {
    const ScriptQuery& sq = script[i];
    std::fprintf(stderr, "[query %zu] %s via %s\n", i + 1,
                 kKindNames[static_cast<int>(sq.q.kind)], sq.q.algo.c_str());
    Result<query::QueryResult> rr = [&] {
      // Wall-only outer span (the sampler installs inside RunQuery, after
      // this opens): groups one query's phase spans on the timeline.
      obs::Span span("cli.query");
      span.AddArg("index", i + 1);
      return lg.Run(sq.q);
    }();
    if (!rr.ok()) Die(rr.status().ToString());
    const query::QueryResult& r = *rr;
    std::printf("\nquery = %zu\n", i + 1);
    std::printf("kind = %s\n", kKindNames[static_cast<int>(sq.q.kind)]);
    std::printf("algorithm = %s\n", sq.q.algo.c_str());
    PrintPayload(sq.q, r, sq.limit);
    PrintMeasurements(r, g.num_edges(), opt.memory_words, opt.block_words);
    if (!opt.metrics_json.empty()) results.push_back(*std::move(rr));
  }

  if (!opt.trace_file.empty()) WriteTraceFile(opt.trace_file, collector);
  if (!opt.metrics_json.empty()) {
    std::vector<MetricsEntry> entries;
    entries.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      entries.push_back(MetricsEntry{kKindNames[static_cast<int>(script[i].q.kind)],
                                     script[i].q.algo, &results[i]});
    }
    WriteMetricsFile(opt.metrics_json, opt, g,
                     lg.store().device().backend().name(), entries);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    std::fputs(kUsage, stdout);
    return 0;
  }
  if (cmd == "list") {
    if (argc > 2) Die("`trienum list` takes no options");
    return CmdList();
  }
  if (cmd == "version") {
    bool json = false;
    if (argc == 3 && std::string(argv[2]) == "--report=json") {
      json = true;
    } else if (argc > 2) {
      Die("`trienum version` takes at most --report=json");
    }
    return CmdVersion(json);
  }
  if (cmd == "count") return CmdRun(ParseOptions(argc, argv), /*enumerate=*/false);
  if (cmd == "enumerate") return CmdRun(ParseOptions(argc, argv), /*enumerate=*/true);
  if (cmd == "query") {
    return CmdQuery(ParseOptions(argc, argv, /*query_mode=*/true));
  }
  Die("unknown command '" + cmd + "' (try `trienum help`)");
}
