#!/usr/bin/env python3
"""Rolls a trienum Chrome trace (--trace=FILE) up into a per-phase table.

For every span name the summary reports how many spans ran, their total
inclusive wall time, and the exclusive (self) counter deltas the sampler
attributed to them — block I/Os, cache hits, internal work, and real
syscall counts. Phases that carried a `predicted_ios` argument (the
external-sort spans) additionally get a prediction check: the phase's
measured share of all predicted-bearing I/O is compared against its
predicted share, and any phase whose shares disagree by more than 2x in
either direction is flagged. That catches an EM cost model drifting from
what the storage layer actually did — e.g. a merge pass re-reading runs
it should have streamed once.

Usage:
    tools/trace_summary.py t.json
    tools/trace_summary.py --top 10 t.json

Exits 0 even when phases are flagged (it is a reporting tool, not a
gate); exits 2 only when the input is not a readable Chrome trace.
"""

import argparse
import json
import sys

# Per-phase exclusive counters the collector writes into span args.
DELTA_KEYS = (
    "block_reads",
    "block_writes",
    "cache_hits",
    "work",
    "read_calls",
    "write_calls",
)

# Measured-vs-predicted disagreement beyond this factor gets flagged.
FLAG_RATIO = 2.0


def load_events(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"trace_summary: cannot read trace '{path}': {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        sys.exit(f"trace_summary: '{path}' has no traceEvents array")
    return events


def summarize(events):
    """Aggregates complete ('X') events by span name, insertion order."""
    phases = {}
    for ev in events:
        if ev.get("ph") != "X":
            continue
        name = ev.get("name", "?")
        p = phases.setdefault(
            name,
            {
                "spans": 0,
                "wall_us": 0.0,
                "self_wall_us": 0.0,
                "predicted_ios": 0,
                **{k: 0 for k in DELTA_KEYS},
            },
        )
        p["spans"] += 1
        p["wall_us"] += float(ev.get("dur", 0))
        args = ev.get("args", {})
        p["self_wall_us"] += float(args.get("self_wall_ns", 0)) / 1000.0
        p["predicted_ios"] += int(args.get("predicted_ios", 0))
        for k in DELTA_KEYS:
            p[k] += int(args.get(k, 0))
    return phases


def prediction_flags(phases):
    """Compares measured vs predicted I/O shares among phases that carry
    predictions. Shares (not absolutes) because predictions count logical
    block transfers while the cache may absorb re-reads."""
    predicted = {
        n: p for n, p in phases.items() if p["predicted_ios"] > 0
    }
    total_pred = sum(p["predicted_ios"] for p in predicted.values())
    total_meas = sum(
        p["block_reads"] + p["block_writes"] for p in predicted.values()
    )
    flags = []
    if total_pred == 0 or total_meas == 0:
        return flags
    for name, p in predicted.items():
        pred_share = p["predicted_ios"] / total_pred
        meas_share = (p["block_reads"] + p["block_writes"]) / total_meas
        if pred_share == 0 and meas_share == 0:
            continue
        # Ratio of the larger share to the smaller; a phase with measured
        # I/O but zero prediction (or vice versa) is infinitely wrong.
        if pred_share == 0 or meas_share == 0:
            ratio = float("inf")
        else:
            ratio = max(pred_share / meas_share, meas_share / pred_share)
        if ratio > FLAG_RATIO:
            flags.append((name, pred_share, meas_share, ratio))
    return flags


def main():
    ap = argparse.ArgumentParser(
        description="Per-phase rollup of a trienum --trace file."
    )
    ap.add_argument("trace", help="Chrome trace JSON written by --trace=FILE")
    ap.add_argument(
        "--top",
        type=int,
        default=0,
        help="show only the N phases with the most inclusive wall time",
    )
    opts = ap.parse_args()

    phases = summarize(load_events(opts.trace))
    if not phases:
        sys.exit(f"trace_summary: '{opts.trace}' contains no complete spans")

    rows = sorted(phases.items(), key=lambda kv: -kv[1]["wall_us"])
    if opts.top > 0:
        rows = rows[: opts.top]

    header = (
        f"{'phase':<24} {'spans':>6} {'wall_ms':>9} {'self_ms':>9} "
        f"{'br':>8} {'bw':>8} {'hits':>10} {'work':>12} {'rd':>6} {'wr':>6}"
    )
    print(header)
    print("-" * len(header))
    for name, p in rows:
        print(
            f"{name:<24} {p['spans']:>6} {p['wall_us'] / 1000:>9.2f} "
            f"{p['self_wall_us'] / 1000:>9.2f} {p['block_reads']:>8} "
            f"{p['block_writes']:>8} {p['cache_hits']:>10} {p['work']:>12} "
            f"{p['read_calls']:>6} {p['write_calls']:>6}"
        )

    total_br = sum(p["block_reads"] for p in phases.values())
    total_bw = sum(p["block_writes"] for p in phases.values())
    print(f"\ntotal attributed I/O: {total_br} reads, {total_bw} writes")

    flags = prediction_flags(phases)
    if flags:
        print("\nprediction check (measured vs predicted I/O share, >2x off):")
        for name, pred, meas, ratio in flags:
            r = "inf" if ratio == float("inf") else f"{ratio:.1f}x"
            print(
                f"  FLAG {name}: predicted {pred:.1%} of sort I/O, "
                f"measured {meas:.1%} ({r} disagreement)"
            )
    elif any(p["predicted_ios"] > 0 for p in phases.values()):
        print("\nprediction check: all predicted-I/O phases within 2x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
