// Compile-time provenance: which compiler, flags, and optional features a
// `trienum` binary was actually built with. Today a report cannot tell an
// AVX2 build from a portable one — build info closes that gap in the
// `trienum version` subcommand and the --metrics-json build_info block.
//
// The values are injected as compile definitions on the obs target by
// src/CMakeLists.txt (TRIENUM_BUILD_*); sensible fallbacks keep non-CMake
// builds compiling. Kernel-variant availability lives in simd/kernel_policy
// (obs sits below simd and cannot ask it) — the CLI composes the two.
#ifndef TRIENUM_OBS_BUILD_INFO_H_
#define TRIENUM_OBS_BUILD_INFO_H_

#include <string>

namespace trienum::obs {

struct BuildInfo {
  std::string compiler;    // "GNU 12.2.0"
  std::string flags;       // base + build-type CXX flags
  std::string build_type;  // "Release", "RelWithDebInfo", ...
  bool native = false;     // TRIENUM_NATIVE (-march=native) build
  long cplusplus = 0;      // __cplusplus value
};

const BuildInfo& GetBuildInfo();

}  // namespace trienum::obs

#endif  // TRIENUM_OBS_BUILD_INFO_H_
