#include "obs/build_info.h"

namespace trienum::obs {

#ifndef TRIENUM_BUILD_COMPILER
#ifdef __VERSION__
#define TRIENUM_BUILD_COMPILER __VERSION__
#else
#define TRIENUM_BUILD_COMPILER "unknown"
#endif
#endif

#ifndef TRIENUM_BUILD_FLAGS
#define TRIENUM_BUILD_FLAGS ""
#endif

#ifndef TRIENUM_BUILD_TYPE
#define TRIENUM_BUILD_TYPE ""
#endif

#ifndef TRIENUM_BUILD_NATIVE
#define TRIENUM_BUILD_NATIVE 0
#endif

const BuildInfo& GetBuildInfo() {
  static const BuildInfo* info = [] {
    auto* b = new BuildInfo;
    b->compiler = TRIENUM_BUILD_COMPILER;
    b->flags = TRIENUM_BUILD_FLAGS;
    b->build_type = TRIENUM_BUILD_TYPE;
    b->native = TRIENUM_BUILD_NATIVE != 0;
    b->cplusplus = __cplusplus;
    return b;
  }();
  return *info;
}

}  // namespace trienum::obs
