#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace trienum::obs {

void JsonEscape(std::ostream& os, std::string_view s) {
  os.put('"');
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os.put(c);
        }
    }
  }
  os.put('"');
}

void JsonWriter::BeforeElement() {
  if (after_key_) {
    after_key_ = false;
    return;  // the key already emitted its ':'
  }
  if (!first_.empty()) {
    if (first_.back()) {
      first_.back() = 0;
    } else {
      os_.put(',');
    }
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeElement();
  os_.put('{');
  first_.push_back(1);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  os_.put('}');
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeElement();
  os_.put('[');
  first_.push_back(1);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  os_.put(']');
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view k) {
  BeforeElement();
  JsonEscape(os_, k);
  os_.put(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  BeforeElement();
  JsonEscape(os_, v);
  return *this;
}

JsonWriter& JsonWriter::Value(std::uint64_t v) {
  BeforeElement();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::Value(std::int64_t v) {
  BeforeElement();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  BeforeElement();
  if (!std::isfinite(v)) v = 0.0;  // JSON has no NaN/inf
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  BeforeElement();
  os_ << (v ? "true" : "false");
  return *this;
}

}  // namespace trienum::obs
