// Scoped trace spans with phase-attributed counter deltas, emitted as
// Chrome trace-event JSON (chrome://tracing, Perfetto).
//
// The invariance contract (the same one threads, kernels, faults, and
// prefetch obey): tracing on or off is bit-invisible to triangles, emission
// order, IoStats, and work. Spans achieve this by *reading* existing
// counters at phase boundaries — they never touch the counted charge
// sequence, never allocate inside it, and compile down to one relaxed
// atomic load when no collector is installed.
//
// Mechanics:
//   - A process-wide atomic TraceCollector pointer (InstallTraceCollector /
//     ScopedTraceCollector). Null means every TRIENUM_SPAN site is a no-op.
//   - Span is RAII: opening records a steady_clock timestamp; closing
//     records the duration and appends one complete ("ph":"X") event. Any
//     thread may open spans — the collector assigns small stable tids and
//     emits thread-name metadata, so par workers and prefetch I/O workers
//     are visible as their own tracks.
//   - Counter attribution runs only on the collector's owner thread (the
//     thread that constructed it), via a sampler callback the query layer
//     installs per query (the obs layer cannot depend on em). Each sampled
//     span records its *inclusive* counter delta and, via a per-thread
//     stack of child accumulators, its *exclusive* (self) delta: inclusive
//     minus the sum of sampled children. Self deltas over all sampled spans
//     of a query telescope exactly to the query's totals, which is how the
//     per-phase table in QueryResult always sums to block_reads /
//     block_writes / work.
#ifndef TRIENUM_OBS_TRACE_H_
#define TRIENUM_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace trienum::obs {

/// One point-in-time read of the counters a span attributes. Filled by the
/// sampler the query layer installs; the obs layer only diffs it.
struct CounterSample {
  std::uint64_t block_reads = 0;
  std::uint64_t block_writes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t work = 0;
  std::uint64_t read_calls = 0;
  std::uint64_t write_calls = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

/// Saturating component-wise difference (counters are monotone within a
/// query; saturation keeps a mid-span reset from wrapping).
CounterSample operator-(const CounterSample& a, const CounterSample& b);
CounterSample& operator+=(CounterSample& a, const CounterSample& b);

struct TraceEvent {
  const char* name = "";  // span names are string literals
  int tid = 0;
  int depth = 0;  // span nesting depth on its thread at open time
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  bool has_delta = false;       // sampled on the owner thread
  CounterSample self;           // exclusive delta (inclusive minus children)
  CounterSample inclusive;      // full delta over the span
  std::uint64_t self_wall_ns = 0;  // dur minus sampled children's durs
  std::vector<std::pair<const char*, std::uint64_t>> args;  // custom args
};

class TraceCollector {
 public:
  TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  using Sampler = std::function<CounterSample()>;

  /// Installs / clears the counter sampler. Owner thread only: the sampler
  /// reads query-layer state that is not thread-safe, so only spans opened
  /// on the owner thread ever invoke it.
  void set_sampler(Sampler s);
  void clear_sampler();
  bool has_sampler() const { return static_cast<bool>(sampler_); }
  CounterSample Sample() const { return sampler_(); }

  std::thread::id owner() const { return owner_; }

  /// Number of events recorded so far (use as a mark, then events_since).
  std::size_t event_count() const;
  std::vector<TraceEvent> events_since(std::size_t mark) const;

  /// Drops all recorded events (tids and epoch are kept).
  void Clear();

  /// Emits the Chrome trace-event JSON document: one "X" complete event
  /// per span (ts/dur in microseconds, args carrying the self counter
  /// deltas) plus "M" thread_name metadata rows.
  void WriteChromeJson(std::ostream& os) const;

  // Span internals.
  std::uint64_t NowNs() const;
  int TidForCurrentThread();
  void Record(TraceEvent ev);

 private:
  const std::thread::id owner_;
  const std::chrono::steady_clock::time_point epoch_;
  Sampler sampler_;  // owner-thread access only
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::vector<std::pair<std::thread::id, int>> tids_;
};

/// Installs `c` as the process-wide collector (nullptr uninstalls).
/// Returns the previous collector.
TraceCollector* InstallTraceCollector(TraceCollector* c);
TraceCollector* CurrentTraceCollector();

/// RAII install/restore, for tests and the CLI.
class ScopedTraceCollector {
 public:
  explicit ScopedTraceCollector(TraceCollector& c)
      : prev_(InstallTraceCollector(&c)) {}
  ~ScopedTraceCollector() { InstallTraceCollector(prev_); }
  ScopedTraceCollector(const ScopedTraceCollector&) = delete;
  ScopedTraceCollector& operator=(const ScopedTraceCollector&) = delete;

 private:
  TraceCollector* prev_;
};

/// Names the current thread for trace metadata ("par-worker-0",
/// "prefetch-io-1", ...). Process-wide; survives collector churn.
void SetCurrentThreadName(std::string name);
std::string CurrentThreadNameFor(std::thread::id id);  // "" if unnamed

namespace internal {
/// Per-thread span nesting depth, exposed so the imbalance check is
/// testable: EndSpanDepth underflow is a hard TRIENUM_CHECK failure.
int BeginSpanDepth();   // returns the depth the new span opens at
void EndSpanDepth();    // aborts if no span is open on this thread
int CurrentSpanDepth();
}  // namespace internal

class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a custom numeric arg (emitted in the event's "args" object).
  /// No-op when tracing is off.
  void AddArg(const char* key, std::uint64_t value);

 private:
  TraceCollector* c_;
  const char* name_;
  std::uint64_t start_ns_ = 0;
  int depth_ = 0;
  bool sampling_ = false;
  CounterSample before_;
  std::vector<std::pair<const char*, std::uint64_t>> args_;
};

#define TRIENUM_OBS_CONCAT2(a, b) a##b
#define TRIENUM_OBS_CONCAT(a, b) TRIENUM_OBS_CONCAT2(a, b)
/// Opens a scoped span: `TRIENUM_SPAN("sort.run_formation");`
#define TRIENUM_SPAN(name) \
  ::trienum::obs::Span TRIENUM_OBS_CONCAT(trienum_span_, __LINE__)(name)

}  // namespace trienum::obs

#endif  // TRIENUM_OBS_TRACE_H_
