#include "obs/metrics.h"

#include <deque>
#include <mutex>
#include <tuple>

namespace trienum::obs {

HistogramSnapshot HistogramSnapshot::operator-(
    const HistogramSnapshot& rhs) const {
  HistogramSnapshot d;
  d.name = name;
  d.count = count - rhs.count;
  d.sum = sum - rhs.sum;
  d.max = max;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    d.buckets[static_cast<std::size_t>(i)] =
        buckets[static_cast<std::size_t>(i)] -
        rhs.buckets[static_cast<std::size_t>(i)];
  }
  return d;
}

HistogramSnapshot Histogram::Snapshot(std::string name) const {
  HistogramSnapshot s;
  s.name = std::move(name);
  for (int i = 0; i < kHistogramBuckets; ++i) {
    s.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

// Instruments live in deques so GetX references stay valid forever; the
// mutex guards registration and name iteration only, never the hot path.
struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::deque<std::pair<std::string, Counter>> counters;
  std::deque<std::pair<std::string, Gauge>> gauges;
  std::deque<std::pair<std::string, Histogram>> histograms;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl;  // leaked: outlives every worker thread
  return *impl;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* r = new MetricsRegistry;
  return *r;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  for (auto& [n, c] : im.counters) {
    if (n == name) return c;
  }
  im.counters.emplace_back(std::piecewise_construct,
                           std::forward_as_tuple(name),
                           std::forward_as_tuple());
  return im.counters.back().second;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  for (auto& [n, g] : im.gauges) {
    if (n == name) return g;
  }
  im.gauges.emplace_back(std::piecewise_construct,
                         std::forward_as_tuple(name),
                         std::forward_as_tuple());
  return im.gauges.back().second;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  for (auto& [n, h] : im.histograms) {
    if (n == name) return h;
  }
  im.histograms.emplace_back(std::piecewise_construct,
                             std::forward_as_tuple(name),
                             std::forward_as_tuple());
  return im.histograms.back().second;
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  Snapshot s;
  s.counters.reserve(im.counters.size());
  for (const auto& [n, c] : im.counters) s.counters.emplace_back(n, c.value());
  s.gauges.reserve(im.gauges.size());
  for (const auto& [n, g] : im.gauges) s.gauges.emplace_back(n, g.value());
  s.histograms.reserve(im.histograms.size());
  for (const auto& [n, h] : im.histograms) s.histograms.push_back(h.Snapshot(n));
  return s;
}

}  // namespace trienum::obs
