#include "obs/trace.h"

#include <atomic>
#include <map>

#include "common/status.h"
#include "obs/json.h"

namespace trienum::obs {

namespace {

std::atomic<TraceCollector*> g_collector{nullptr};

std::uint64_t SatSub(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}

// Process-wide thread-name registry, decoupled from collector lifetime so
// long-lived pool workers named at spawn stay named for every later trace.
std::mutex& NameMu() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}
std::map<std::thread::id, std::string>& NameMap() {
  static auto* m = new std::map<std::thread::id, std::string>;
  return *m;
}

// Per-thread accumulation of sampled children, one entry per open sampled
// ancestor: counters plus wall, so closing spans can compute exclusive
// (self) deltas.
struct ChildAccum {
  CounterSample counters;
  std::uint64_t wall_ns = 0;
};
thread_local std::vector<ChildAccum> t_child_accum;
thread_local int t_span_depth = 0;

}  // namespace

CounterSample operator-(const CounterSample& a, const CounterSample& b) {
  CounterSample d;
  d.block_reads = SatSub(a.block_reads, b.block_reads);
  d.block_writes = SatSub(a.block_writes, b.block_writes);
  d.cache_hits = SatSub(a.cache_hits, b.cache_hits);
  d.work = SatSub(a.work, b.work);
  d.read_calls = SatSub(a.read_calls, b.read_calls);
  d.write_calls = SatSub(a.write_calls, b.write_calls);
  d.bytes_read = SatSub(a.bytes_read, b.bytes_read);
  d.bytes_written = SatSub(a.bytes_written, b.bytes_written);
  return d;
}

CounterSample& operator+=(CounterSample& a, const CounterSample& b) {
  a.block_reads += b.block_reads;
  a.block_writes += b.block_writes;
  a.cache_hits += b.cache_hits;
  a.work += b.work;
  a.read_calls += b.read_calls;
  a.write_calls += b.write_calls;
  a.bytes_read += b.bytes_read;
  a.bytes_written += b.bytes_written;
  return a;
}

TraceCollector* InstallTraceCollector(TraceCollector* c) {
  return g_collector.exchange(c, std::memory_order_acq_rel);
}

TraceCollector* CurrentTraceCollector() {
  return g_collector.load(std::memory_order_acquire);
}

void SetCurrentThreadName(std::string name) {
  std::lock_guard<std::mutex> lk(NameMu());
  NameMap()[std::this_thread::get_id()] = std::move(name);
}

std::string CurrentThreadNameFor(std::thread::id id) {
  std::lock_guard<std::mutex> lk(NameMu());
  auto it = NameMap().find(id);
  return it == NameMap().end() ? std::string() : it->second;
}

namespace internal {
int BeginSpanDepth() { return t_span_depth++; }
void EndSpanDepth() {
  TRIENUM_CHECK_MSG(t_span_depth > 0,
                    "span close without a matching open on this thread");
  --t_span_depth;
}
int CurrentSpanDepth() { return t_span_depth; }
}  // namespace internal

TraceCollector::TraceCollector()
    : owner_(std::this_thread::get_id()),
      epoch_(std::chrono::steady_clock::now()) {}

void TraceCollector::set_sampler(Sampler s) { sampler_ = std::move(s); }
void TraceCollector::clear_sampler() { sampler_ = nullptr; }

std::uint64_t TraceCollector::NowNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::size_t TraceCollector::event_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceCollector::events_since(std::size_t mark) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (mark >= events_.size()) return {};
  return std::vector<TraceEvent>(events_.begin() +
                                     static_cast<std::ptrdiff_t>(mark),
                                 events_.end());
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  events_.clear();
}

int TraceCollector::TidForCurrentThread() {
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [id, tid] : tids_) {
    if (id == self) return tid;
  }
  const int tid = static_cast<int>(tids_.size());
  tids_.emplace_back(self, tid);
  return tid;
}

void TraceCollector::Record(TraceEvent ev) {
  std::lock_guard<std::mutex> lk(mu_);
  events_.push_back(std::move(ev));
}

void TraceCollector::WriteChromeJson(std::ostream& os) const {
  std::vector<TraceEvent> events;
  std::vector<std::pair<std::thread::id, int>> tids;
  {
    std::lock_guard<std::mutex> lk(mu_);
    events = events_;
    tids = tids_;
  }
  JsonWriter w(os);
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  for (const auto& [id, tid] : tids) {
    std::string name = CurrentThreadNameFor(id);
    if (name.empty()) name = id == owner_ ? "main" : "thread-" + std::to_string(tid);
    w.BeginObject();
    w.KV("ph", "M").KV("pid", 1).KV("tid", tid).KV("name", "thread_name");
    w.Key("args").BeginObject().KV("name", name).EndObject();
    w.EndObject();
  }
  for (const TraceEvent& e : events) {
    w.BeginObject();
    w.KV("ph", "X").KV("pid", 1).KV("tid", e.tid).KV("name", e.name);
    w.KV("ts", static_cast<double>(e.start_ns) / 1000.0);
    w.KV("dur", static_cast<double>(e.dur_ns) / 1000.0);
    w.Key("args").BeginObject();
    w.KV("depth", e.depth);
    if (e.has_delta) {
      // Exclusive (self) deltas: summing any one key over every event of a
      // query reproduces that query's total exactly.
      w.KV("block_reads", e.self.block_reads);
      w.KV("block_writes", e.self.block_writes);
      w.KV("cache_hits", e.self.cache_hits);
      w.KV("work", e.self.work);
      w.KV("read_calls", e.self.read_calls);
      w.KV("write_calls", e.self.write_calls);
      w.KV("self_wall_ns", e.self_wall_ns);
    }
    for (const auto& [k, v] : e.args) w.KV(k, v);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.KV("displayTimeUnit", "ms");
  w.EndObject();
  os << "\n";
}

Span::Span(const char* name) : c_(CurrentTraceCollector()), name_(name) {
  if (c_ == nullptr) return;
  depth_ = internal::BeginSpanDepth();
  start_ns_ = c_->NowNs();
  // Counter sampling only on the owner thread (the sampler and the counters
  // it reads are not safe from workers); check owner first so worker spans
  // never touch sampler_.
  if (std::this_thread::get_id() == c_->owner() && c_->has_sampler()) {
    before_ = c_->Sample();
    sampling_ = true;
    t_child_accum.emplace_back();
  }
}

void Span::AddArg(const char* key, std::uint64_t value) {
  if (c_ == nullptr) return;
  args_.emplace_back(key, value);
}

Span::~Span() {
  if (c_ == nullptr) return;
  TraceEvent ev;
  ev.name = name_;
  ev.depth = depth_;
  ev.start_ns = start_ns_;
  ev.dur_ns = SatSub(c_->NowNs(), start_ns_);
  ev.self_wall_ns = ev.dur_ns;
  if (sampling_) {
    ChildAccum children = t_child_accum.back();
    t_child_accum.pop_back();
    // The sampler can be gone if the query that installed it already
    // finished (an enclosing script-level span); fall back to wall-only.
    if (std::this_thread::get_id() == c_->owner() && c_->has_sampler()) {
      ev.inclusive = c_->Sample() - before_;
      ev.self = ev.inclusive - children.counters;
      ev.self_wall_ns = SatSub(ev.dur_ns, children.wall_ns);
      ev.has_delta = true;
      if (!t_child_accum.empty()) {
        t_child_accum.back().counters += ev.inclusive;
        t_child_accum.back().wall_ns += ev.dur_ns;
      }
    }
  }
  internal::EndSpanDepth();
  ev.tid = c_->TidForCurrentThread();
  ev.args = std::move(args_);
  c_->Record(std::move(ev));
}

}  // namespace trienum::obs
