// Process-wide metrics: counters, gauges, and log2-bucket latency
// histograms, attached to the real-I/O seams of the EM stack.
//
// Design rules:
//   - The fast path (Add / Set / Observe) is lock-free: relaxed atomics
//     only, safe from any thread including the prefetch I/O workers and
//     the par pool. Registration (GetHistogram etc.) interns by name under
//     a mutex and returns a reference with a stable address, so seam code
//     resolves its instrument once (function-local static) and never pays
//     the lookup again.
//   - Snapshots read the same atomics, so they are TSan-clean by
//     construction: a snapshot taken mid-burst sees a consistent-enough
//     view (each cell individually atomic; count/sum may trail each other
//     by in-flight observations, never tear).
//   - Metrics are always on. They instrument only real-I/O seams — pread/
//     pwrite calls, prefetch stall waits, retry backoff sleeps, merge-pass
//     walls — where two steady_clock reads are noise against the measured
//     operation. The *counted* charge sequence (IoStats, work) is never
//     touched; see README "Observability" for the invariance contract.
//
// Histogram geometry: 64 fixed buckets. Bucket 0 holds the value 0; bucket
// i >= 1 holds values in [2^(i-1), 2^i - 1]. Values are nanoseconds at
// every current seam, but the histogram itself is unit-agnostic.
#ifndef TRIENUM_OBS_METRICS_H_
#define TRIENUM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace trienum::obs {

class Counter {
 public:
  void Add(std::uint64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void Set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

inline constexpr int kHistogramBuckets = 64;

/// Bucket index for a value: 0 -> 0, else 1 + floor(log2 v), capped at 63.
inline int HistogramBucketIndex(std::uint64_t v) {
  int i = std::bit_width(v);  // 0 for v == 0
  return i > kHistogramBuckets - 1 ? kHistogramBuckets - 1 : i;
}

/// Inclusive lower edge of bucket i (bucket 0 holds only the value 0;
/// bucket 1 starts at 1 = 2^0).
inline std::uint64_t HistogramBucketLo(int i) {
  return i == 0 ? 0 : (std::uint64_t{1} << (i - 1));
}

/// Inclusive upper edge of bucket i (UINT64_MAX for the last bucket).
inline std::uint64_t HistogramBucketHi(int i) {
  if (i == 0) return 0;
  if (i >= kHistogramBuckets - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << i) - 1;
}

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;  // sum of observed values
  std::uint64_t max = 0;  // high-water mark (not resettable by subtraction)
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// Per-bucket / count / sum delta for windowed views (e.g. one query's
  /// worth of observations). `max` keeps the left operand's value: a
  /// high-water mark has no meaningful difference.
  HistogramSnapshot operator-(const HistogramSnapshot& rhs) const;
};

class Histogram {
 public:
  void Observe(std::uint64_t v) {
    buckets_[HistogramBucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }

  /// Observes a duration in nanoseconds.
  void ObserveDuration(std::chrono::steady_clock::duration d) {
    Observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count()));
  }

  HistogramSnapshot Snapshot(std::string name = {}) const;

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// RAII latency timer: observes the scope's wall time (ns) on destruction.
class LatencyTimer {
 public:
  explicit LatencyTimer(Histogram& h)
      : h_(h), t0_(std::chrono::steady_clock::now()) {}
  ~LatencyTimer() { h_.ObserveDuration(std::chrono::steady_clock::now() - t0_); }
  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

 private:
  Histogram& h_;
  std::chrono::steady_clock::time_point t0_;
};

/// The process-wide registry. Instruments live for the process lifetime
/// (stable addresses); snapshotting never blocks the fast path.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<HistogramSnapshot> histograms;
  };
  Snapshot Snap() const;

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

// Well-known histogram names: the real-I/O seams this PR instruments.
// The "_ns" suffix marks the unit.
namespace metric_names {
inline constexpr char kFileReadNs[] = "storage.file.read_syscall_ns";
inline constexpr char kFileWriteNs[] = "storage.file.write_syscall_ns";
inline constexpr char kMmapReadNs[] = "storage.mmap.read_ns";
inline constexpr char kMmapWriteNs[] = "storage.mmap.write_ns";
inline constexpr char kPrefetchStallNs[] = "prefetch.stall_wait_ns";
inline constexpr char kRecoveryBackoffNs[] = "recovery.backoff_sleep_ns";
inline constexpr char kMergePassNs[] = "sort.merge_pass_wall_ns";
}  // namespace metric_names

}  // namespace trienum::obs

#endif  // TRIENUM_OBS_METRICS_H_
