// Minimal JSON emission for the observability outputs (--trace Chrome
// trace-event files, --metrics-json reports, --report=json).
//
// Emission only — the repo never needs to *parse* JSON in production code
// (the round-trip validation lives in the tests and CI's python step). The
// writer is a thin comma/nesting bookkeeper over an ostream: callers state
// structure (BeginObject/Key/Value/EndObject) and the writer guarantees the
// output is syntactically valid JSON, including string escaping and finite
// number formatting (NaN/inf are clamped to 0, which JSON cannot represent).
#ifndef TRIENUM_OBS_JSON_H_
#define TRIENUM_OBS_JSON_H_

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace trienum::obs {

/// Writes `s` to `os` as a quoted JSON string with the mandatory escapes
/// (quote, backslash, control characters).
void JsonEscape(std::ostream& os, std::string_view s);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Object key; must be followed by exactly one Value/Begin* call.
  JsonWriter& Key(std::string_view k);

  JsonWriter& Value(std::string_view v);
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(std::uint64_t v);
  JsonWriter& Value(std::int64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<std::int64_t>(v)); }
  JsonWriter& Value(unsigned v) { return Value(static_cast<std::uint64_t>(v)); }
  JsonWriter& Value(double v);
  JsonWriter& Value(bool v);

  /// Key + value in one call, for the common flat-object case.
  template <typename T>
  JsonWriter& KV(std::string_view k, T v) {
    Key(k);
    return Value(v);
  }

 private:
  void BeforeElement();  // comma management for the enclosing container

  std::ostream& os_;
  std::vector<char> first_;  // one flag per open container
  bool after_key_ = false;
};

}  // namespace trienum::obs

#endif  // TRIENUM_OBS_JSON_H_
