// Minimal Status/Result error-handling primitives, in the style used by
// database engines (Arrow, RocksDB): fallible public APIs return a Status or
// Result<T> instead of throwing.
#ifndef TRIENUM_COMMON_STATUS_H_
#define TRIENUM_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace trienum {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kIoError,
  kNotFound,
  kCapacityExceeded,
  kInternal,
};

/// \brief Outcome of a fallible operation.
///
/// A default-constructed Status is OK. Non-OK statuses carry a code and a
/// human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + msg_;
  }

  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kIoError: return "IoError";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kCapacityExceeded: return "CapacityExceeded";
      case StatusCode::kInternal: return "Internal";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}              // NOLINT implicit
  Result(Status status) : v_(std::move(status)) {}       // NOLINT implicit

  bool ok() const { return std::holds_alternative<T>(v_); }
  const Status& status() const { return std::get<Status>(v_); }

  /// Returns the contained value; aborts if this holds an error.
  T& ValueOrDie() {
    if (!ok()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   status().ToString().c_str());
      std::abort();
    }
    return std::get<T>(v_);
  }
  const T& ValueOrDie() const { return const_cast<Result*>(this)->ValueOrDie(); }

  T& operator*() { return ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace trienum

/// Internal invariant check; aborts with a message on violation. Used for
/// conditions that indicate library bugs, not user errors.
#define TRIENUM_CHECK(cond)                                                      \
  do {                                                                           \
    if (!(cond)) {                                                               \
      std::fprintf(stderr, "TRIENUM_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                             \
      std::abort();                                                              \
    }                                                                            \
  } while (0)

#define TRIENUM_CHECK_MSG(cond, msg)                                             \
  do {                                                                           \
    if (!(cond)) {                                                               \
      std::fprintf(stderr, "TRIENUM_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                        \
      std::abort();                                                              \
    }                                                                            \
  } while (0)

#define TRIENUM_RETURN_NOT_OK(expr)             \
  do {                                          \
    ::trienum::Status _st = (expr);             \
    if (!_st.ok()) return _st;                  \
  } while (0)

#endif  // TRIENUM_COMMON_STATUS_H_
