// Minimal Status/Result error-handling primitives, in the style used by
// database engines (Arrow, RocksDB): fallible public APIs return a Status or
// Result<T> instead of throwing.
#ifndef TRIENUM_COMMON_STATUS_H_
#define TRIENUM_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace trienum {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kIoError,
  kNotFound,
  kCapacityExceeded,
  kInternal,
};

/// \brief Outcome of a fallible operation.
///
/// A default-constructed Status is OK. Non-OK statuses carry a code and a
/// human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + msg_;
  }

  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kIoError: return "IoError";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kCapacityExceeded: return "CapacityExceeded";
      case StatusCode::kInternal: return "Internal";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}              // NOLINT implicit
  Result(Status status) : v_(std::move(status)) {}       // NOLINT implicit

  bool ok() const { return std::holds_alternative<T>(v_); }
  const Status& status() const { return std::get<Status>(v_); }

  /// Returns the contained value; aborts if this holds an error.
  T& ValueOrDie() & {
    if (!ok()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   status().ToString().c_str());
      std::abort();
    }
    return std::get<T>(v_);
  }
  const T& ValueOrDie() const& { return const_cast<Result*>(this)->ValueOrDie(); }
  /// Rvalue overload: moves the value out of a temporary Result, so
  /// `T v = *SomeResultReturningCall();` takes the move path.
  T&& ValueOrDie() && { return std::move(ValueOrDie()); }

  T& operator*() & { return ValueOrDie(); }
  const T& operator*() const& { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the contained value, or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? std::get<T>(v_) : std::move(fallback); }
  T value_or(T fallback) && {
    return ok() ? std::move(std::get<T>(v_)) : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

/// \brief Exception carrier for a non-OK Status.
///
/// Most of the library is Status-returning, but the hot data plane (cache
/// lines, scanners, writers) cannot thread a Status through every word
/// access without poisoning the inner loops. An unrecoverable I/O failure
/// discovered mid-plan throws IoFault instead; the query layer is the only
/// catcher and converts it back into a Status on the QueryResult.
class IoFault : public std::runtime_error {
 public:
  explicit IoFault(Status status)
      : std::runtime_error(status.ToString()), status_(std::move(status)) {}

  const Status& status() const { return status_; }

 private:
  Status status_;
};

}  // namespace trienum

/// Internal invariant check; aborts with a message on violation. Used for
/// conditions that indicate library bugs, not user errors.
#define TRIENUM_CHECK(cond)                                                      \
  do {                                                                           \
    if (!(cond)) {                                                               \
      std::fprintf(stderr, "TRIENUM_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                             \
      std::abort();                                                              \
    }                                                                            \
  } while (0)

#define TRIENUM_CHECK_MSG(cond, msg)                                             \
  do {                                                                           \
    if (!(cond)) {                                                               \
      std::fprintf(stderr, "TRIENUM_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                        \
      std::abort();                                                              \
    }                                                                            \
  } while (0)

#define TRIENUM_RETURN_NOT_OK(expr)             \
  do {                                          \
    ::trienum::Status _st = (expr);             \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates `rexpr` (a Result<T>); on error returns the Status to the
/// caller, otherwise move-assigns the value into `lhs`:
///
///   TRIENUM_ASSIGN_OR_RETURN(auto edges, ReadEdgeListText(path));
#define TRIENUM_ASSIGN_OR_RETURN(lhs, rexpr) \
  TRIENUM_ASSIGN_OR_RETURN_IMPL_(            \
      TRIENUM_STATUS_CONCAT_(_trienum_result_, __LINE__), lhs, rexpr)

#define TRIENUM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = *std::move(tmp)

#define TRIENUM_STATUS_CONCAT_(a, b) TRIENUM_STATUS_CONCAT_IMPL_(a, b)
#define TRIENUM_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // TRIENUM_COMMON_STATUS_H_
