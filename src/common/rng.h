// Deterministic pseudo-random number utilities. All randomized components of
// the library draw seeds through SplitMix64 so that every test, example and
// benchmark is reproducible from a single 64-bit seed.
#ifndef TRIENUM_COMMON_RNG_H_
#define TRIENUM_COMMON_RNG_H_

#include <cstdint>

namespace trienum {

/// \brief SplitMix64: a tiny, high-quality 64-bit mixer/stream generator.
///
/// Used both as a seed sequencer (deterministic schedules for the
/// derandomizer's candidate enumeration) and as a general-purpose PRNG for
/// graph generation.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64 pseudo-random bits.
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). bound must be nonzero.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mix of a single 64-bit value (finalizer of SplitMix64).
inline std::uint64_t Mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace trienum

#endif  // TRIENUM_COMMON_RNG_H_
