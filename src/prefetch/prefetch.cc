#include "prefetch/prefetch.h"

#include <cstring>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace trienum::prefetch {

namespace {

// Advice memory is O(active streams); a runaway adviser (deep recursion
// re-advising released regions) is capped rather than queued unboundedly —
// dropping advice is always safe, it only forgoes overlap.
constexpr std::size_t kMaxRanges = 64;

// Wall time the demand path burns waiting on a slot still in flight: the
// partial-overlap cost PrefetchStats::stalls counts, now with a latency
// distribution behind it.
obs::Histogram& StallHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      obs::metric_names::kPrefetchStallNs);
  return h;
}

}  // namespace

PrefetchPool::PrefetchPool(em::StorageBackend* backend,
                           std::size_t block_words, std::size_t depth,
                           std::size_t threads)
    : backend_(backend), block_words_(block_words), depth_(depth) {
  TRIENUM_CHECK(backend_ != nullptr);
  TRIENUM_CHECK(block_words_ > 0);
  TRIENUM_CHECK_MSG(depth_ > 0, "PrefetchPool needs depth >= 1");
  TRIENUM_CHECK_MSG(threads > 0, "PrefetchPool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] {
      // Named tracks in --trace output: staged reads show up on their own
      // tid, making I/O-vs-compute overlap visible in chrome://tracing.
      obs::SetCurrentThreadName("prefetch-io-" + std::to_string(i));
      WorkerLoop();
    });
  }
}

PrefetchPool::~PrefetchPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void PrefetchPool::Advise(em::Addr addr, std::size_t words,
                          em::AdviseKind kind) {
  // Write advice never queues read-ahead (reading under a pure output
  // stream could only waste device reads); the backend-level madvise half
  // of the hint was already applied by GraphStore::Advise.
  if (kind != em::AdviseKind::kSequentialRead || words == 0) return;
  const auto first = static_cast<std::int64_t>(addr / block_words_);
  const auto last = static_cast<std::int64_t>((addr + words - 1) / block_words_);
  std::lock_guard<std::mutex> lk(mu_);
  if (ranges_.size() >= kMaxRanges) return;
  for (const Range& r : ranges_) {
    // Already queued (typical for a Scanner's refill windows, which the
    // construction-time whole-range advice covers).
    if (r.cur <= first && last < r.end) return;
  }
  ranges_.push_back(Range{first, last + 1});
  work_cv_.notify_one();
}

void PrefetchPool::WorkerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || HasWorkLocked(); });
    if (stop_) return;
    // Round-robin one line per pop across the advised streams, so an (M/B)-
    // way merge's run heads all stay warm instead of one run hogging the
    // staging slots.
    Range r = ranges_.front();
    ranges_.pop_front();
    const std::int64_t line = r.cur++;
    if (r.cur < r.end) ranges_.push_back(r);
    if (slots_.count(line) != 0) {
      // Already staged or in flight (overlapping advice): nothing to do,
      // but the queue state changed — wake anyone draining it.
      idle_cv_.notify_all();
      continue;
    }
    auto slot = std::make_shared<Slot>();
    slots_.emplace(line, slot);
    ++in_flight_;
    ++stats_.issued;
    lk.unlock();

    std::vector<em::Word> buf(block_words_);
    Status st;
    {
      // All backend I/O serializes here — the decorated stack below is not
      // thread-safe. The overlap win is this read running while the main
      // thread computes, not parallel device traffic.
      TRIENUM_SPAN("prefetch.read");
      std::lock_guard<std::mutex> io(io_mu_);
      st = backend_->ReadWords(static_cast<em::Addr>(line) * block_words_,
                               block_words_, buf.data());
    }

    lk.lock();
    --in_flight_;
    if (slot->cancelled) {
      // Invalidated while in flight (the table entry is already gone): the
      // bytes predate the write that cancelled them — drop on the floor.
      ++stats_.wasted;
    } else {
      slot->state = st.ok() ? Slot::State::kReady : Slot::State::kFailed;
      if (st.ok()) slot->data = std::move(buf);
    }
    slot->ready_cv.notify_all();
    idle_cv_.notify_all();
  }
}

bool PrefetchPool::Consume(em::Addr line_base, std::size_t words,
                           em::Word* out) {
  TRIENUM_CHECK(words == block_words_);
  std::unique_lock<std::mutex> lk(mu_);
  const auto line = static_cast<std::int64_t>(line_base / block_words_);
  // Trim: when the demand stream outpaces the workers, advance the matching
  // range fronts — after this miss the line is cache-resident, so fetching
  // it later could only be wasted.
  for (auto it = ranges_.begin(); it != ranges_.end();) {
    if (it->cur == line) ++it->cur;
    it = it->cur >= it->end ? ranges_.erase(it) : it + 1;
  }
  auto found = slots_.find(line);
  if (found == slots_.end()) return false;
  std::shared_ptr<Slot> slot = found->second;
  if (slot->state == Slot::State::kPending && !slot->cancelled) {
    // In flight: wait for the per-slot completion handshake. Charged as a
    // stall — the overlap was only partial — but still cheaper than
    // re-issuing the read after the worker finishes it anyway.
    ++stats_.stalls;
    obs::LatencyTimer stall_timer(StallHist());
    slot->ready_cv.wait(lk, [&] {
      return slot->state != Slot::State::kPending || slot->cancelled;
    });
  }
  // Re-find: the table may have changed across the wait (Invalidate/Clear
  // erase entries; only erase the slot if it is still ours).
  auto again = slots_.find(line);
  const bool still_present = again != slots_.end() && again->second == slot;
  if (slot->cancelled || slot->state != Slot::State::kReady) {
    if (still_present) {
      // A failed worker read is never served: drop it so the demand path
      // re-issues the read with full retry/fault-latch semantics.
      slots_.erase(again);
      ++stats_.wasted;
    }
    work_cv_.notify_all();
    return false;
  }
  std::memcpy(out, slot->data.data(), words * sizeof(em::Word));
  if (still_present) slots_.erase(again);
  ++stats_.useful;
  work_cv_.notify_all();
  idle_cv_.notify_all();
  return true;
}

void PrefetchPool::Invalidate(em::Addr addr, std::size_t words) {
  if (words == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (slots_.empty()) return;
  const auto first = static_cast<std::int64_t>(addr / block_words_);
  const auto last = static_cast<std::int64_t>((addr + words - 1) / block_words_);
  // Walk the table (O(depth)), never the address range: bulk uncounted
  // writes can span millions of lines.
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->first < first || it->first > last) {
      ++it;
      continue;
    }
    const std::shared_ptr<Slot>& slot = it->second;
    slot->cancelled = true;
    // Ready data dropped here counts wasted now; an in-flight fetch is
    // counted by its worker on completion (exactly once either way).
    if (slot->state != Slot::State::kPending) ++stats_.wasted;
    slot->ready_cv.notify_all();
    it = slots_.erase(it);
  }
  work_cv_.notify_all();
  idle_cv_.notify_all();
}

void PrefetchPool::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  ranges_.clear();
  for (auto& [line, slot] : slots_) {
    (void)line;
    slot->cancelled = true;
    if (slot->state != Slot::State::kPending) ++stats_.wasted;
    slot->ready_cv.notify_all();
  }
  slots_.clear();
  work_cv_.notify_all();
  idle_cv_.notify_all();
}

em::PrefetchStats PrefetchPool::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void PrefetchPool::WaitIdle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [&] {
    return in_flight_ == 0 && (ranges_.empty() || slots_.size() >= depth_);
  });
}

Status ApplyPrefetchConfig(em::EmConfig& cfg) {
  if (cfg.prefetch_depth == 0) {
    // Off is the default path: no hook, no pool, no background threads.
    cfg.make_prefetcher = nullptr;
    return Status::OK();
  }
  if (cfg.prefetch_threads == 0) {
    return Status::InvalidArgument(
        "prefetch_threads must be >= 1 when prefetch_depth > 0");
  }
  cfg.make_prefetcher = [](em::StorageBackend* backend,
                           const em::EmConfig& c) {
    return std::unique_ptr<em::LinePrefetcher>(std::make_unique<PrefetchPool>(
        backend, c.block_words, c.prefetch_depth, c.prefetch_threads));
  };
  return Status::OK();
}

}  // namespace trienum::prefetch
