// PrefetchPool: asynchronous scan-predictable read-ahead for the staged
// cache, bit-invisible to counted state.
//
// The paper's algorithms are sorts and scans whose block access patterns are
// fully known before they execute; Scanner/Writer announce those patterns
// through the advice hook (GraphStore::Advise), and this pool turns read
// advice into background block fetches that overlap with host compute. The
// hard contract — the same one threads (PR 5), kernels (PR 7) and faults
// (PR 8) obey — is that prefetch can never change triangles, emission order,
// counted IoStats, or work:
//
//   * the counted path is unchanged: Cache::TouchLine fires the identical
//     LRU charge sequence at the identical point; when the missed block is
//     already staged here, the *physical* read becomes a memcpy from the
//     staging slot instead of a blocking backend read;
//   * staging composes below the Recovering/FaultInjecting stack: workers
//     read through the same decorated backend demand reads use, so retries
//     and checksums see real device reads (a failed worker read is simply
//     not consumed — the demand path re-issues it with full fault latching);
//   * every backend call — worker read-ahead, demand staging I/O, and
//     allocation growth — serializes under io_mutex(), because backends and
//     their decorators are not thread-safe. Overlap comes from prefetch I/O
//     vs host compute, never from parallel I/O;
//   * completion is a mutex + condvar handshake per staging slot: a counted
//     miss either consumes a ready slot, waits for an in-flight one (a
//     "stall"), or falls back to a synchronous read. No speculative cache
//     mutation ever happens.
//
// Layering mirrors src/faults/: the em layer defines the LinePrefetcher
// interface and carries the configuration (EmConfig::prefetch_depth /
// prefetch_threads / make_prefetcher); ApplyPrefetchConfig installs the
// factory, and GraphStore instantiates the pool only when the cache stages
// real data. Depth 0 is the default: no hook, no threads, zero overhead.
#ifndef TRIENUM_PREFETCH_PREFETCH_H_
#define TRIENUM_PREFETCH_PREFETCH_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "em/defs.h"
#include "em/storage.h"

namespace trienum::prefetch {

class PrefetchPool final : public em::LinePrefetcher {
 public:
  /// `backend` is the (possibly decorated) stack the cache stages against;
  /// the pool holds at most `depth` staged blocks and runs `threads`
  /// dedicated I/O workers. depth >= 1, threads >= 1.
  PrefetchPool(em::StorageBackend* backend, std::size_t block_words,
               std::size_t depth, std::size_t threads);
  ~PrefetchPool() override;
  PrefetchPool(const PrefetchPool&) = delete;
  PrefetchPool& operator=(const PrefetchPool&) = delete;

  // --- em::LinePrefetcher ---------------------------------------------------
  void Advise(em::Addr addr, std::size_t words, em::AdviseKind kind) override;
  bool Consume(em::Addr line_base, std::size_t words, em::Word* out) override;
  void Invalidate(em::Addr addr, std::size_t words) override;
  void Clear() override;
  em::PrefetchStats stats() const override;
  std::mutex& io_mutex() override { return io_mu_; }

  /// Blocks until the workers have drained everything currently actionable
  /// (no fetch in flight, and the advice queue is empty or staging is at
  /// capacity). Determinism hook for tests and benches; never needed for
  /// correctness.
  void WaitIdle();

  std::size_t depth() const { return depth_; }
  std::size_t threads() const { return workers_.size(); }

 private:
  /// One staged (or in-flight) block. Held by shared_ptr so a consumer can
  /// wait on the handshake even if the table entry is invalidated meanwhile.
  struct Slot {
    enum class State { kPending, kReady, kFailed };
    State state = State::kPending;
    bool cancelled = false;  // invalidated while in flight; never consume
    std::vector<em::Word> data;
    std::condition_variable ready_cv;  // completion handshake (uses mu_)
  };

  /// An advised line range [cur, end) still to be fetched. Whole remaining
  /// scans are stored as ranges, so advice memory is O(active streams), not
  /// O(lines).
  struct Range {
    std::int64_t cur;
    std::int64_t end;
  };

  void WorkerLoop();
  bool HasWorkLocked() const {
    return !ranges_.empty() && slots_.size() < depth_;
  }

  em::StorageBackend* backend_;
  const std::size_t block_words_;
  const std::size_t depth_;

  std::mutex io_mu_;  // serializes ALL backend I/O (workers + cache)

  mutable std::mutex mu_;  // pool state below
  std::condition_variable work_cv_;  // workers: advice arrived / slot freed
  std::condition_variable idle_cv_;  // WaitIdle
  std::deque<Range> ranges_;
  std::unordered_map<std::int64_t, std::shared_ptr<Slot>> slots_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  em::PrefetchStats stats_;

  std::vector<std::thread> workers_;
};

/// Validates cfg.prefetch_depth/prefetch_threads and installs
/// cfg.make_prefetcher (cleared when depth is 0, leaving the default path
/// with no background machinery at all) — the exact pattern of
/// faults::ApplyFaultConfig. Returns InvalidArgument on a zero thread count
/// with a nonzero depth.
Status ApplyPrefetchConfig(em::EmConfig& cfg);

}  // namespace trienum::prefetch

#endif  // TRIENUM_PREFETCH_PREFETCH_H_
