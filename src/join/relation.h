// Minimal relational layer for the paper's introductory database example:
// the table Sells(salesperson, brand, productType), its 5th-normal-form
// decomposition into three binary relations, and value dictionaries mapping
// attribute domains to graph vertices.
#ifndef TRIENUM_JOIN_RELATION_H_
#define TRIENUM_JOIN_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace trienum::join {

/// A ternary tuple of the Sells table.
struct Tuple3 {
  std::uint32_t a = 0;  // salesperson
  std::uint32_t b = 0;  // brand
  std::uint32_t c = 0;  // productType

  friend bool operator==(const Tuple3& x, const Tuple3& y) {
    return x.a == y.a && x.b == y.b && x.c == y.c;
  }
  friend bool operator<(const Tuple3& x, const Tuple3& y) {
    if (x.a != y.a) return x.a < y.a;
    if (x.b != y.b) return x.b < y.b;
    return x.c < y.c;
  }
};

/// A binary relation over two attribute columns.
struct BinaryRelation {
  std::string lhs;  ///< attribute name of the first column
  std::string rhs;  ///< attribute name of the second column
  std::vector<std::pair<std::uint32_t, std::uint32_t>> rows;
};

/// The 5NF decomposition of a ternary table: projections onto each
/// attribute pair.
struct Decomposition {
  BinaryRelation ab;  // (salesperson, brand)
  BinaryRelation bc;  // (brand, productType)
  BinaryRelation ac;  // (salesperson, productType)
};

/// Projects `sells` onto its three attribute pairs (deduplicated, sorted).
Decomposition Decompose(const std::vector<Tuple3>& sells);

/// True if the table equals the natural join of its three projections —
/// i.e. the table violates no join dependency and the 5NF decomposition is
/// lossless (paper footnote 1).
bool IsFifthNormalFormDecomposable(const std::vector<Tuple3>& sells);

/// Reference natural join of the three projections (host hash join), for
/// verifying the triangle-based join.
std::vector<Tuple3> NaturalJoinReference(const Decomposition& d);

}  // namespace trienum::join

#endif  // TRIENUM_JOIN_RELATION_H_
