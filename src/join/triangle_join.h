// The paper's motivating application: computing the natural join
// R(A,B) |x| S(B,C) |x| T(A,C) — e.g. reconstructing a 5NF-decomposed
// Sells table — *is* triangle enumeration on the union of the three
// bipartite graphs (§1, "computing Sells is exactly the task of enumerating
// all triangles in the union of these three graphs").
//
// Attribute values are mapped into three disjoint vertex ranges, the three
// relations become one edge list, and each enumerated triangle is decoded
// back into an output tuple. Any registered enumeration algorithm can drive
// the join; emission order is pipelined straight into the consumer.
#ifndef TRIENUM_JOIN_TRIANGLE_JOIN_H_
#define TRIENUM_JOIN_TRIANGLE_JOIN_H_

#include <string_view>
#include <vector>

#include "em/context.h"
#include "join/relation.h"

namespace trienum::join {

struct TriangleJoinStats {
  std::uint64_t output_tuples = 0;
  em::IoStats io;
  std::size_t graph_edges = 0;
  std::uint32_t graph_vertices = 0;
};

/// Joins the three binary relations via triangle enumeration under the EM
/// context `ctx` using the named algorithm (see core::FindAlgorithm).
/// Returns the joined tuples, sorted; fills `stats` if non-null.
Result<std::vector<Tuple3>> TriangleJoin(em::QuerySession& ctx, const Decomposition& d,
                                         std::string_view algorithm,
                                         TriangleJoinStats* stats = nullptr);

}  // namespace trienum::join

#endif  // TRIENUM_JOIN_TRIANGLE_JOIN_H_
