#include "join/relation.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace trienum::join {
namespace {

void Dedup(BinaryRelation* r) {
  std::sort(r->rows.begin(), r->rows.end());
  r->rows.erase(std::unique(r->rows.begin(), r->rows.end()), r->rows.end());
}

}  // namespace

Decomposition Decompose(const std::vector<Tuple3>& sells) {
  Decomposition d;
  d.ab = BinaryRelation{"salesperson", "brand", {}};
  d.bc = BinaryRelation{"brand", "productType", {}};
  d.ac = BinaryRelation{"salesperson", "productType", {}};
  for (const Tuple3& t : sells) {
    d.ab.rows.emplace_back(t.a, t.b);
    d.bc.rows.emplace_back(t.b, t.c);
    d.ac.rows.emplace_back(t.a, t.c);
  }
  Dedup(&d.ab);
  Dedup(&d.bc);
  Dedup(&d.ac);
  return d;
}

std::vector<Tuple3> NaturalJoinReference(const Decomposition& d) {
  // Hash the (brand -> productType) relation and probe per (a, b) row, then
  // verify (a, c) membership.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> bc;
  for (const auto& [b, c] : d.bc.rows) bc[b].push_back(c);
  std::unordered_set<std::uint64_t> ac;
  for (const auto& [a, c] : d.ac.rows) {
    ac.insert((static_cast<std::uint64_t>(a) << 32) | c);
  }
  std::vector<Tuple3> out;
  for (const auto& [a, b] : d.ab.rows) {
    auto it = bc.find(b);
    if (it == bc.end()) continue;
    for (std::uint32_t c : it->second) {
      if (ac.count((static_cast<std::uint64_t>(a) << 32) | c) != 0) {
        out.push_back(Tuple3{a, b, c});
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool IsFifthNormalFormDecomposable(const std::vector<Tuple3>& sells) {
  std::vector<Tuple3> canon = sells;
  std::sort(canon.begin(), canon.end());
  canon.erase(std::unique(canon.begin(), canon.end()), canon.end());
  std::vector<Tuple3> joined = NaturalJoinReference(Decompose(canon));
  return joined == canon;
}

}  // namespace trienum::join
