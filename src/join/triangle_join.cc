#include "join/triangle_join.h"

#include <algorithm>
#include <unordered_map>

#include "core/algorithms.h"
#include "core/sink.h"
#include "graph/normalize.h"

namespace trienum::join {
namespace {

/// Dictionary: attribute value <-> dense index.
class Dictionary {
 public:
  std::uint32_t Intern(std::uint32_t value) {
    auto [it, fresh] = index_.try_emplace(value, values_.size());
    if (fresh) values_.push_back(value);
    return it->second;
  }
  std::uint32_t size() const { return static_cast<std::uint32_t>(values_.size()); }
  std::uint32_t ValueAt(std::uint32_t idx) const { return values_[idx]; }

 private:
  std::unordered_map<std::uint32_t, std::uint32_t> index_;
  std::vector<std::uint32_t> values_;
};

}  // namespace

Result<std::vector<Tuple3>> TriangleJoin(em::QuerySession& ctx, const Decomposition& d,
                                         std::string_view algorithm,
                                         TriangleJoinStats* stats) {
  const core::AlgorithmInfo* algo = core::FindAlgorithm(algorithm);
  if (algo == nullptr) {
    return Status::NotFound("unknown algorithm: " + std::string(algorithm));
  }

  // Intern all attribute values into three disjoint vertex ranges.
  Dictionary da, db, dc;
  for (const auto& [a, b] : d.ab.rows) {
    da.Intern(a);
    db.Intern(b);
  }
  for (const auto& [b, c] : d.bc.rows) {
    db.Intern(b);
    dc.Intern(c);
  }
  for (const auto& [a, c] : d.ac.rows) {
    da.Intern(a);
    dc.Intern(c);
  }
  const std::uint32_t base_b = da.size();
  const std::uint32_t base_c = base_b + db.size();

  std::vector<graph::Edge> edges;
  edges.reserve(d.ab.rows.size() + d.bc.rows.size() + d.ac.rows.size());
  for (const auto& [a, b] : d.ab.rows) {
    edges.push_back(graph::Edge{da.Intern(a), base_b + db.Intern(b)});
  }
  for (const auto& [b, c] : d.bc.rows) {
    edges.push_back(graph::Edge{base_b + db.Intern(b), base_c + dc.Intern(c)});
  }
  for (const auto& [a, c] : d.ac.rows) {
    edges.push_back(graph::Edge{da.Intern(a), base_c + dc.Intern(c)});
  }

  std::vector<graph::VertexId> new_to_old;
  graph::EmGraph g = graph::BuildEmGraph(ctx, edges, &new_to_old);

  em::IoStats before = ctx.cache().stats();
  std::vector<Tuple3> out;
  core::CallbackSink sink([&](graph::VertexId x, graph::VertexId y,
                              graph::VertexId z) {
    // The union graph is tripartite, so each triangle has exactly one vertex
    // per attribute range; decode back to attribute values.
    Tuple3 t;
    bool seen_a = false, seen_b = false, seen_c = false;
    for (graph::VertexId v : {x, y, z}) {
      graph::VertexId orig = new_to_old[v];
      if (orig < base_b) {
        t.a = da.ValueAt(orig);
        seen_a = true;
      } else if (orig < base_c) {
        t.b = db.ValueAt(orig - base_b);
        seen_b = true;
      } else {
        t.c = dc.ValueAt(orig - base_c);
        seen_c = true;
      }
    }
    TRIENUM_CHECK_MSG(seen_a && seen_b && seen_c,
                      "triangle join produced a non-tripartite triangle");
    out.push_back(t);
  });
  algo->run(ctx, g, sink);
  ctx.cache().FlushAll();

  if (stats != nullptr) {
    stats->output_tuples = out.size();
    stats->io = ctx.cache().stats() - before;
    stats->graph_edges = g.num_edges();
    stats->graph_vertices = g.num_vertices;
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace trienum::join
