// Typed views over device storage with I/O-accounted element access, plus
// streaming Scanner/Writer helpers used throughout the algorithms.
#ifndef TRIENUM_EM_ARRAY_H_
#define TRIENUM_EM_ARRAY_H_

#include <cstring>
#include <type_traits>
#include <vector>

#include "common/status.h"
#include "em/context.h"

namespace trienum::em {

/// \brief A fixed-size array of trivially-copyable records on the device.
///
/// Every element access touches the covering cache lines, so reading or
/// writing an Array is exactly what costs I/Os in this library. Records are
/// padded to whole words; an Edge (two 32-bit ids) is one word, matching the
/// paper's "an edge requires one memory word" accounting.
///
/// All data moves through Context::ReadWords/WriteWords, so an Array works
/// identically — same values, same IoStats — over the in-memory and the
/// file-backed storage backend (see em/storage.h).
template <typename T>
class Array {
  static_assert(std::is_trivially_copyable_v<T>,
                "EM arrays hold trivially copyable records");

 public:
  /// Words occupied by one record.
  static constexpr std::size_t kWordsPer = (sizeof(T) + sizeof(Word) - 1) / sizeof(Word);
  /// True when records fill their words exactly (no per-record padding), so
  /// a bulk transfer is one contiguous byte range.
  static constexpr bool kPacked = sizeof(T) == kWordsPer * sizeof(Word);

  Array() = default;
  Array(Context* ctx, Addr base, std::size_t n) : ctx_(ctx), base_(base), n_(n) {}

  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  Addr base() const { return base_; }
  Context* context() const { return ctx_; }

  /// Word address of element `i` (for witness/residency checks).
  Addr AddrOf(std::size_t i) const { return base_ + i * kWordsPer; }

  /// Reads element `i` (counts I/O on a cache miss).
  T Get(std::size_t i) const {
    TRIENUM_CHECK(i < n_);
    Word tmp[kWordsPer];
    ctx_->ReadWords(base_ + i * kWordsPer, kWordsPer, tmp);
    T out;
    std::memcpy(static_cast<void*>(&out), static_cast<const void*>(tmp), sizeof(T));
    return out;
  }

  /// Writes element `i` (counts I/O on a cache miss; sequential aligned
  /// writes are charged as pure output).
  void Set(std::size_t i, const T& v) {
    TRIENUM_CHECK(i < n_);
    Word tmp[kWordsPer];
    tmp[kWordsPer - 1] = 0;  // deterministic padding in the tail word
    std::memcpy(static_cast<void*>(tmp), static_cast<const void*>(&v), sizeof(T));
    ctx_->WriteWords(base_ + i * kWordsPer, kWordsPer, tmp);
  }

  /// Subrange view [off, off+len).
  Array Slice(std::size_t off, std::size_t len) const {
    TRIENUM_CHECK(off + len <= n_);
    return Array(ctx_, base_ + off * kWordsPer, len);
  }

  /// Bulk read of [begin, end) into a host buffer; touches each covered line
  /// once (simulated DMA into internal memory).
  void ReadTo(std::size_t begin, std::size_t end, T* out) const {
    TRIENUM_CHECK(begin <= end && end <= n_);
    if (begin == end) return;
    Addr a = base_ + begin * kWordsPer;
    std::size_t words = (end - begin) * kWordsPer;
    if constexpr (kPacked) {
      ctx_->ReadWords(a, words, static_cast<void*>(out));
    } else {
      std::vector<Word> tmp(words);
      ctx_->ReadWords(a, words, tmp.data());
      for (std::size_t i = begin; i < end; ++i) {
        std::memcpy(static_cast<void*>(out + (i - begin)),
                    static_cast<const void*>(tmp.data() + (i - begin) * kWordsPer),
                    sizeof(T));
      }
    }
  }

  /// Bulk write of a host buffer into [begin, end).
  void WriteFrom(std::size_t begin, std::size_t end, const T* in) {
    TRIENUM_CHECK(begin <= end && end <= n_);
    if (begin == end) return;
    Addr a = base_ + begin * kWordsPer;
    std::size_t words = (end - begin) * kWordsPer;
    if constexpr (kPacked) {
      ctx_->WriteWords(a, words, static_cast<const void*>(in));
    } else {
      std::vector<Word> tmp(words, 0);
      for (std::size_t i = begin; i < end; ++i) {
        std::memcpy(static_cast<void*>(tmp.data() + (i - begin) * kWordsPer),
                    static_cast<const void*>(in + (i - begin)), sizeof(T));
      }
      ctx_->WriteWords(a, words, tmp.data());
    }
  }

 private:
  Context* ctx_ = nullptr;
  Addr base_ = 0;
  std::size_t n_ = 0;
};

template <typename T>
Array<T> Context::Alloc(std::size_t n) {
  Addr base = device_.Allocate(n * Array<T>::kWordsPer, cfg_.block_words);
  return Array<T>(this, base, n);
}

/// \brief Forward sequential reader over an Array (one scan = n/B reads).
template <typename T>
class Scanner {
 public:
  Scanner() = default;
  explicit Scanner(Array<T> a) : a_(a) {}
  Scanner(Array<T> a, std::size_t begin, std::size_t end)
      : a_(a.Slice(begin, end - begin)) {}

  bool HasNext() const { return pos_ < a_.size(); }
  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return a_.size() - pos_; }

  /// Reads the current element without advancing.
  T Peek() const { return a_.Get(pos_); }

  /// Reads and advances.
  T Next() { return a_.Get(pos_++); }

  void Skip() { ++pos_; }

 private:
  Array<T> a_;
  std::size_t pos_ = 0;
};

/// \brief Forward sequential writer into a pre-allocated Array.
template <typename T>
class Writer {
 public:
  Writer() = default;
  explicit Writer(Array<T> a) : a_(a) {}

  void Push(const T& v) { a_.Set(pos_++, v); }
  std::size_t count() const { return pos_; }

  /// View of everything written so far.
  Array<T> Written() const { return a_.Slice(0, pos_); }

 private:
  Array<T> a_;
  std::size_t pos_ = 0;
};

/// Copies `src` into a fresh array allocated from `ctx` (sequential scan).
template <typename T>
Array<T> CloneArray(Context& ctx, const Array<T>& src) {
  Array<T> dst = ctx.Alloc<T>(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) dst.Set(i, src.Get(i));
  return dst;
}

}  // namespace trienum::em

#endif  // TRIENUM_EM_ARRAY_H_
