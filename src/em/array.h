// Typed views over device storage with I/O-accounted element access, plus
// streaming Scanner/Writer helpers used throughout the algorithms.
//
// Scanner and Writer are *block-buffered*: they move one B-word-aligned cache
// line per refill/flush (a single Context::ReadScan/WriteScan call) instead
// of one transfer per record, while charging the touch sequence the
// record-by-record path would — coalesced per line. IoStats come out
// bit-for-bit identical whenever every active stream's current line stays
// resident between consecutive records (one line per stream — true for the
// library's scans, filters and bounded-fan-in merges); under capacity
// pressure the coalescing coarsens LRU recency, so whole-algorithm totals
// agree only within a small band (see tests/test_hotpath.cc for both
// contracts). The element-wise path is kept selectable
// (ScanMode::kElementwise) as the reference implementation for differential
// tests and benchmarks.
#ifndef TRIENUM_EM_ARRAY_H_
#define TRIENUM_EM_ARRAY_H_

#include <atomic>
#include <cstring>
#include <mutex>
#include <type_traits>
#include <vector>

#include "common/status.h"
#include "em/context.h"

namespace trienum::em {

// ScanMode itself is defined in em/defs.h (so the QuerySession can carry a
// per-query preference); the process-wide default lives here with the
// streams that consume it.

namespace internal {
inline std::atomic<ScanMode>& DefaultScanModeStorage() {
  static std::atomic<ScanMode> mode{ScanMode::kBuffered};
  return mode;
}
}  // namespace internal

/// Process-wide default mode for newly constructed Scanner/Writer. The
/// differential suite and benches flip this to run whole algorithms down
/// either path; IoStats must not change (asserted by tests/test_hotpath.cc).
/// The storage is atomic so a read never tears against a concurrent flip,
/// but the mode is process-wide configuration, not per-thread state: all
/// Scanner/Writer construction — like every em:: charge — happens on the
/// main thread, and pool workers (src/par/) must neither flip the default
/// nor expect a ScopedScanMode on another thread to be visible mid-region.
inline ScanMode DefaultScanMode() {
  return internal::DefaultScanModeStorage().load(std::memory_order_relaxed);
}
inline void SetDefaultScanMode(ScanMode m) {
  internal::DefaultScanModeStorage().store(m, std::memory_order_relaxed);
}

/// RAII scope flipping the default scan mode (used by tests/benches).
/// Process-wide, like the default it guards: construct and destroy on the
/// main thread only — a scoped override must never cross pool workers.
class ScopedScanMode {
 public:
  explicit ScopedScanMode(ScanMode m) : saved_(DefaultScanMode()) {
    SetDefaultScanMode(m);
  }
  ~ScopedScanMode() { SetDefaultScanMode(saved_); }
  ScopedScanMode(const ScopedScanMode&) = delete;
  ScopedScanMode& operator=(const ScopedScanMode&) = delete;

 private:
  ScanMode saved_;
};

/// \brief A fixed-size array of trivially-copyable records on the device.
///
/// Every element access touches the covering cache lines, so reading or
/// writing an Array is exactly what costs I/Os in this library. Records are
/// padded to whole words; an Edge (two 32-bit ids) is one word, matching the
/// paper's "an edge requires one memory word" accounting.
///
/// All data moves through Context::ReadWords/WriteWords (or their scan-exact
/// bulk duals ReadScan/WriteScan), so an Array works identically — same
/// values, same IoStats — over the in-memory and the file-backed storage
/// backend (see em/storage.h).
template <typename T>
class Array {
  static_assert(std::is_trivially_copyable_v<T>,
                "EM arrays hold trivially copyable records");

 public:
  /// Words occupied by one record.
  static constexpr std::size_t kWordsPer = (sizeof(T) + sizeof(Word) - 1) / sizeof(Word);
  /// True when records fill their words exactly (no per-record padding), so
  /// a bulk transfer is one contiguous byte range.
  static constexpr bool kPacked = sizeof(T) == kWordsPer * sizeof(Word);

  Array() = default;
  Array(GraphStore* store, Addr base, std::size_t n)
      : ctx_(store), base_(base), n_(n) {}

  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  Addr base() const { return base_; }
  /// The store the array's words live on. Arrays are graph-lifetime state:
  /// they are bound to a GraphStore, never to a QuerySession, so data
  /// written under one session stays readable under every later one.
  GraphStore* store() const { return ctx_; }

  /// Word address of element `i` (for witness/residency checks).
  Addr AddrOf(std::size_t i) const { return base_ + i * kWordsPer; }

  /// Reads element `i` (counts I/O on a cache miss).
  T Get(std::size_t i) const {
    TRIENUM_CHECK(i < n_);
    Word tmp[kWordsPer];
    ctx_->ReadWords(base_ + i * kWordsPer, kWordsPer, tmp);
    T out;
    std::memcpy(static_cast<void*>(&out), static_cast<const void*>(tmp), sizeof(T));
    return out;
  }

  /// Writes element `i` (counts I/O on a cache miss; sequential aligned
  /// writes are charged as pure output).
  void Set(std::size_t i, const T& v) {
    TRIENUM_CHECK(i < n_);
    Word tmp[kWordsPer];
    tmp[kWordsPer - 1] = 0;  // deterministic padding in the tail word
    std::memcpy(static_cast<void*>(tmp), static_cast<const void*>(&v), sizeof(T));
    ctx_->WriteWords(base_ + i * kWordsPer, kWordsPer, tmp);
  }

  /// Charges the touch of element `i` without moving data — what a
  /// Get would cost. The buffered Scanner uses this to keep Peek's
  /// accounting identical to the element-wise path.
  void TouchGet(std::size_t i) const {
    TRIENUM_CHECK(i < n_);
    ctx_->TouchRange(base_ + i * kWordsPer, kWordsPer, /*write=*/false);
  }

  /// Charges the touch of element `i` as a write — what a Set would cost.
  void TouchSet(std::size_t i) const {
    TRIENUM_CHECK(i < n_);
    ctx_->TouchRange(base_ + i * kWordsPer, kWordsPer, /*write=*/true);
  }

  /// Memory-backend zero-copy view of the records: a typed pointer into the
  /// direct view (records start word-aligned, so the cast is valid), or
  /// nullptr when the device stages real data. Accesses through it move no
  /// accounted data — callers charge TouchGet/TouchSet at exactly the points
  /// a Get/Set would occur, which keeps IoStats identical across backends
  /// (asserted by the storage differential matrix). Invalidated by Alloc.
  T* MemRef() const {
    // Only packed records line up with a T[] view; padded ones would stride
    // wrong. Over-aligned types can't alias the word store either.
    if constexpr (!kPacked || alignof(T) > alignof(Word)) {
      return nullptr;
    } else {
      Word* p = ctx_->DirectData(base_);
      return p == nullptr ? nullptr : reinterpret_cast<T*>(p);
    }
  }
  /// Record stride, in Words, of the MemRef view (== 1 record when packed).
  static constexpr std::size_t kStrideWords = kWordsPer;

  /// Subrange view [off, off+len).
  Array Slice(std::size_t off, std::size_t len) const {
    TRIENUM_CHECK(off + len <= n_);
    return Array(ctx_, base_ + off * kWordsPer, len);
  }

  /// Bulk read of [begin, end) into a host buffer; touches each covered line
  /// once (simulated DMA into internal memory).
  void ReadTo(std::size_t begin, std::size_t end, T* out) const {
    TRIENUM_CHECK(begin <= end && end <= n_);
    if (begin == end) return;
    Addr a = base_ + begin * kWordsPer;
    std::size_t words = (end - begin) * kWordsPer;
    if constexpr (kPacked) {
      ctx_->ReadWords(a, words, static_cast<void*>(out));
    } else {
      std::vector<Word> tmp(words);
      ctx_->ReadWords(a, words, tmp.data());
      UnpackRecords(tmp.data(), end - begin, out);
    }
  }

  /// Bulk write of a host buffer into [begin, end).
  void WriteFrom(std::size_t begin, std::size_t end, const T* in) {
    TRIENUM_CHECK(begin <= end && end <= n_);
    if (begin == end) return;
    Addr a = base_ + begin * kWordsPer;
    std::size_t words = (end - begin) * kWordsPer;
    if constexpr (kPacked) {
      ctx_->WriteWords(a, words, static_cast<const void*>(in));
    } else {
      std::vector<Word> tmp(words, 0);
      PackRecords(in, end - begin, tmp.data());
      ctx_->WriteWords(a, words, tmp.data());
    }
  }

  /// Scan-exact bulk read of [begin, end): one transfer, charged exactly
  /// like per-record Get calls (the buffered Scanner's refill).
  void ReadScanInto(std::size_t begin, std::size_t end, T* out) const {
    TRIENUM_CHECK(begin <= end && end <= n_);
    if (begin == end) return;
    Addr a = base_ + begin * kWordsPer;
    std::size_t words = (end - begin) * kWordsPer;
    if constexpr (kPacked) {
      ctx_->ReadScan(a, words, kWordsPer, static_cast<void*>(out));
    } else {
      std::vector<Word> tmp(words);
      ctx_->ReadScan(a, words, kWordsPer, tmp.data());
      UnpackRecords(tmp.data(), end - begin, out);
    }
  }

  /// Charges a forward scan of [begin, end) like per-record Gets, moving no
  /// data (for re-passes over records a caller already holds host-side).
  void TouchScanRange(std::size_t begin, std::size_t end) const {
    TRIENUM_CHECK(begin <= end && end <= n_);
    if (begin == end) return;
    ctx_->TouchScan(base_ + begin * kWordsPer, (end - begin) * kWordsPer,
                    kWordsPer);
  }

  /// Advises the store that [begin, end) is about to be streamed over (see
  /// GraphStore::Advise). A pure hint — uncounted and bit-invisible.
  void AdviseRange(std::size_t begin, std::size_t end, AdviseKind kind) const {
    if (ctx_ == nullptr || begin >= end) return;
    ctx_->Advise(base_ + begin * kWordsPer, (end - begin) * kWordsPer, kind);
  }

  /// Scan-exact bulk write into [begin, end): one transfer, charged exactly
  /// like per-record Set calls (the buffered Writer's flush).
  void WriteScanFrom(std::size_t begin, std::size_t end, const T* in) {
    TRIENUM_CHECK(begin <= end && end <= n_);
    if (begin == end) return;
    Addr a = base_ + begin * kWordsPer;
    std::size_t words = (end - begin) * kWordsPer;
    if constexpr (kPacked) {
      ctx_->WriteScan(a, words, kWordsPer, static_cast<const void*>(in));
    } else {
      std::vector<Word> tmp(words, 0);
      PackRecords(in, end - begin, tmp.data());
      ctx_->WriteScan(a, words, kWordsPer, tmp.data());
    }
  }

 private:
  static void UnpackRecords(const Word* words, std::size_t n, T* out) {
    for (std::size_t i = 0; i < n; ++i) {
      std::memcpy(static_cast<void*>(out + i),
                  static_cast<const void*>(words + i * kWordsPer), sizeof(T));
    }
  }
  static void PackRecords(const T* in, std::size_t n, Word* words) {
    for (std::size_t i = 0; i < n; ++i) {
      std::memcpy(static_cast<void*>(words + i * kWordsPer),
                  static_cast<const void*>(in + i), sizeof(T));
    }
  }

  GraphStore* ctx_ = nullptr;
  Addr base_ = 0;
  std::size_t n_ = 0;
};

template <typename T>
Array<T> GraphStore::Alloc(std::size_t n) {
  Addr base;
  if (prefetch_ != nullptr) {
    // Allocation can grow the backend (ftruncate / vector resize / remap)
    // while prefetch workers are mid-read; like every backend call, it
    // serializes under the pool's io_mutex.
    std::lock_guard<std::mutex> io(prefetch_->io_mutex());
    base = device_.Allocate(n * Array<T>::kWordsPer, cfg_.block_words);
  } else {
    base = device_.Allocate(n * Array<T>::kWordsPer, cfg_.block_words);
  }
  return Array<T>(this, base, n);
}

template <typename T>
Array<T> QuerySession::Alloc(std::size_t n) {
  return store_->Alloc<T>(n);
}

/// \brief Forward sequential reader over an Array (one scan = n/B reads).
///
/// Buffered mode refills one cache line at a time: the refill issues a
/// single ReadScan charging exactly what record-by-record Gets would (the
/// skipped-ahead records are charged as the cache hits they would have
/// been), then Next/Peek serve from the host buffer. Peek additionally
/// charges one touch per call, mirroring the element-wise path where every
/// Peek is a Get. Skip never touches (a seek is free in the EM model); note
/// that records already buffered were charged at refill, so a Skip inside a
/// buffered line does not un-charge them.
template <typename T>
class Scanner {
 public:
  Scanner() = default;
  // A scanner knows its entire future access sequence at construction —
  // exactly the property the advice hook exists for. Both modes advise: the
  // physical pattern is identical, only the charging granularity differs.
  explicit Scanner(Array<T> a, ScanMode mode = DefaultScanMode())
      : a_(a), mode_(mode) {
    a_.AdviseRange(0, a_.size(), AdviseKind::kSequentialRead);
  }
  Scanner(Array<T> a, std::size_t begin, std::size_t end,
          ScanMode mode = DefaultScanMode())
      : a_(a.Slice(begin, end - begin)), mode_(mode) {
    a_.AdviseRange(0, a_.size(), AdviseKind::kSequentialRead);
  }

  bool HasNext() const { return pos_ < a_.size(); }
  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return a_.size() - pos_; }

  /// Reads the current element without advancing (charges one touch, like
  /// the element-wise Get it replaces).
  T Peek() {
    if (mode_ == ScanMode::kElementwise) return a_.Get(pos_);
    if (pos_ < buf_lo_ || pos_ >= buf_hi_) Refill();
    a_.TouchGet(pos_);
    return buf_[pos_ - buf_lo_];
  }

  /// Reads and advances.
  T Next() {
    if (mode_ == ScanMode::kElementwise) return a_.Get(pos_++);
    if (pos_ < buf_lo_ || pos_ >= buf_hi_) Refill();
    return buf_[pos_++ - buf_lo_];
  }

  void Skip() { ++pos_; }

 private:
  void Refill() {
    const std::size_t n = a_.size();
    TRIENUM_CHECK(pos_ < n);
    constexpr std::size_t w = Array<T>::kWordsPer;
    const std::size_t b = a_.store()->block_words();
    const Addr a0 = a_.AddrOf(pos_);
    // End of the last line touched by the current record; buffer every
    // record that finishes within it (at least the current one).
    const Addr line_end = ((a0 + w - 1) / b + 1) * b;
    std::size_t j = static_cast<std::size_t>((line_end - a_.base()) / w);
    if (j <= pos_) j = pos_ + 1;
    if (j > n) j = n;
    // Grow-only buffer: ReadScanInto overwrites [0, j - pos_), so no
    // per-refill value-initialization is needed.
    if (buf_.size() < j - pos_) buf_.resize(j - pos_);
    a_.ReadScanInto(pos_, j, buf_.data());
    buf_lo_ = pos_;
    buf_hi_ = j;
    // Advice refresh: re-advertise a short window past the line just
    // buffered. The construction-time range usually covers it (the pool
    // dedupes overlapping advice); this keeps the hint alive for scanners
    // whose range was advised before counting was enabled, and re-arms
    // madvise on very long streams.
    if (j < n) {
      const std::size_t ahead = (8 * b) / w + 1;
      a_.AdviseRange(j, std::min(n, j + ahead), AdviseKind::kSequentialRead);
    }
  }

  Array<T> a_;
  std::size_t pos_ = 0;
  std::size_t buf_lo_ = 0;
  std::size_t buf_hi_ = 0;  // buffered records: [buf_lo_, buf_hi_)
  std::vector<T> buf_;
  ScanMode mode_ = ScanMode::kBuffered;
};

/// \brief Forward sequential writer into a pre-allocated Array.
///
/// Buffered mode accumulates records host-side and flushes one cache line
/// per WriteScan, charged exactly like the record-by-record Sets it
/// replaces. The buffered data becomes visible to *other* readers of the
/// target array only at Flush; Written() flushes, and the destructor is a
/// safety net — code that reads the target array directly while the Writer
/// is still alive must call Flush() first.
template <typename T>
class Writer {
 public:
  Writer() = default;
  // Write advice reaches the backend only (madvise SEQUENTIAL); the
  // prefetcher ignores it — reading ahead under a pure output stream could
  // only waste device reads.
  explicit Writer(Array<T> a, ScanMode mode = DefaultScanMode())
      : a_(a), mode_(mode) {
    a_.AdviseRange(0, a_.size(), AdviseKind::kSequentialWrite);
  }
  ~Writer() {
    // Flush can hit a staged-I/O fault; the destructor must not throw. The
    // cache latches the fault (Cache::fault()), which the query layer checks
    // after every run, so swallowing here loses nothing.
    try {
      Flush();
    } catch (const IoFault&) {
    }
  }
  Writer(Writer&& o) noexcept
      : a_(o.a_), pos_(o.pos_), flush_lo_(o.flush_lo_), flush_at_(o.flush_at_),
        buf_(std::move(o.buf_)), mode_(o.mode_) {
    o.buf_.clear();
    o.a_ = Array<T>();
  }
  Writer& operator=(Writer&& o) noexcept {
    if (this != &o) {
      try {
        Flush();  // same fault-latch contract as the destructor
      } catch (const IoFault&) {
      }
      a_ = o.a_;
      pos_ = o.pos_;
      flush_lo_ = o.flush_lo_;
      flush_at_ = o.flush_at_;
      buf_ = std::move(o.buf_);
      mode_ = o.mode_;
      o.buf_.clear();
      o.a_ = Array<T>();
    }
    return *this;
  }
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  void Push(const T& v) {
    if (mode_ == ScanMode::kElementwise) {
      a_.Set(pos_++, v);
      return;
    }
    TRIENUM_CHECK(pos_ < a_.size());
    if (buf_.empty()) {
      // Flush once the pending run reaches the end of the line its first
      // record starts in (one WriteScan per line on a long stream).
      constexpr std::size_t w = Array<T>::kWordsPer;
      const std::size_t b = a_.store()->block_words();
      const Addr line_end = (a_.AddrOf(pos_) / b + 1) * b;
      flush_at_ = static_cast<std::size_t>((line_end - a_.base() + w - 1) / w);
    }
    buf_.push_back(v);
    if (++pos_ >= flush_at_) Flush();
  }

  std::size_t count() const { return pos_; }

  /// Writes out any buffered records (no-op in element-wise mode).
  void Flush() {
    if (buf_.empty()) return;
    a_.WriteScanFrom(flush_lo_, flush_lo_ + buf_.size(), buf_.data());
    flush_lo_ += buf_.size();
    buf_.clear();
  }

  /// View of everything written so far (flushes pending records first).
  Array<T> Written() {
    Flush();
    return a_.Slice(0, pos_);
  }

 private:
  Array<T> a_;
  std::size_t pos_ = 0;
  std::size_t flush_lo_ = 0;  // first record not yet flushed
  std::size_t flush_at_ = 0;  // record index triggering the next flush
  std::vector<T> buf_;
  ScanMode mode_ = ScanMode::kBuffered;
};

/// Copies `src` into a fresh array allocated from `ctx`, staging chunks of
/// at most M/4 words of host scratch (a sequential block-granular scan; the
/// old record-at-a-time copy cost the same block I/Os but B× the touches).
template <typename T>
Array<T> CloneArray(QuerySession& ctx, const Array<T>& src) {
  Array<T> dst = ctx.Alloc<T>(src.size());
  if (src.empty()) return dst;
  constexpr std::size_t w = Array<T>::kWordsPer;
  std::size_t chunk = std::max<std::size_t>(1, ctx.memory_words() / (4 * w));
  chunk = std::min(chunk, src.size());
  ScratchLease lease = ctx.LeaseScratch(chunk * w);
  std::vector<T> buf(chunk);
  for (std::size_t lo = 0; lo < src.size(); lo += chunk) {
    const std::size_t hi = std::min(src.size(), lo + chunk);
    src.ReadTo(lo, hi, buf.data());
    dst.WriteFrom(lo, hi, buf.data());
  }
  return dst;
}

}  // namespace trienum::em

#endif  // TRIENUM_EM_ARRAY_H_
