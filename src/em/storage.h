// Pluggable storage backends for the external-memory device.
//
// The paper's I/O model is agnostic to what "external memory" physically is;
// this library offers two realizations behind one interface:
//
//   * MemoryBackend — a flat std::vector<Word>. The store is RAM-resident and
//     exposes a direct pointer view, so word access is a memcpy and every I/O
//     is purely simulated (counted by the LRU cache, never performed). This is
//     the default and is bit-for-bit the original simulator.
//
//   * FileBackend — an unlinked temporary file accessed with pread/pwrite.
//     The LRU cache becomes a real cache: misses fetch a B-word block from
//     disk into a resident line buffer and dirty evictions write blocks back,
//     so total resident memory is O(M) and device footprints far beyond RAM
//     are runnable. Simulated IoStats are backend-independent by construction
//     (the counting logic is shared); the backend additionally reports the
//     *real* transfer telemetry (syscalls and bytes moved).
//
// See README.md "Storage backends" for when each applies.
#ifndef TRIENUM_EM_STORAGE_H_
#define TRIENUM_EM_STORAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "em/defs.h"

namespace trienum::em {

/// Real (not simulated) transfer counters of a storage backend. For the
/// MemoryBackend these stay zero on the direct-view path; for the FileBackend
/// they count actual pread/pwrite syscalls and bytes.
struct StorageTelemetry {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t read_calls = 0;
  std::uint64_t write_calls = 0;

  StorageTelemetry operator-(const StorageTelemetry& o) const {
    return StorageTelemetry{bytes_read - o.bytes_read,
                            bytes_written - o.bytes_written,
                            read_calls - o.read_calls,
                            write_calls - o.write_calls};
  }
};

/// Counters of the recovery machinery (src/faults/). All of this is
/// *uncounted* traffic with respect to the paper's I/O accounting: a retry or
/// a checksum verification never changes IoStats, which stay bit-identical to
/// a clean run under any transient fault schedule.
struct RecoveryStats {
  std::uint64_t retries = 0;             ///< I/O attempts repeated after a fault
  std::uint64_t faults_injected = 0;     ///< faults fired by the injector
  std::uint64_t checksum_failures = 0;   ///< torn/corrupt lines detected on fetch

  RecoveryStats operator-(const RecoveryStats& o) const {
    return RecoveryStats{retries - o.retries,
                         faults_injected - o.faults_injected,
                         checksum_failures - o.checksum_failures};
  }
};

/// \brief Abstract word store backing a Device.
///
/// Addresses are word-granular and the store is logically unbounded;
/// EnsureSize grows the backing storage (amortized doubling) and never-written
/// words read as zero, matching the zero-initialized vector of the original
/// simulator.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Grows the store so that addresses [0, words) are valid. Returns
  /// kIoError when the underlying storage cannot grow (e.g. ENOSPC).
  virtual Status EnsureSize(std::size_t words) = 0;

  /// Current capacity in words.
  virtual std::size_t size_words() const = 0;

  /// True when the whole store is RAM-resident and DirectView is usable.
  /// Fixed for the backend's lifetime: it decides (at Context construction)
  /// whether the cache runs counting-only or stages real data.
  virtual bool memory_resident() const = 0;

  /// Direct pointer view of the whole store; only meaningful when
  /// memory_resident() (may still be null before the first allocation).
  /// The pointer is invalidated by EnsureSize.
  virtual Word* DirectView() { return nullptr; }
  virtual const Word* DirectView() const { return nullptr; }

  /// Block-granular transfer path used by the cache's staged data mode (and
  /// by uncounted write-through/read-through accesses). A non-OK Status means
  /// the operation did not complete; callers may retry (the call is
  /// idempotent: a failed attempt may have transferred a prefix, but a
  /// successful re-issue transfers the whole range).
  virtual Status ReadWords(Addr addr, std::size_t words, Word* out) = 0;
  virtual Status WriteWords(Addr addr, std::size_t words, const Word* in) = 0;

  /// Access-pattern advice for an upcoming sequential pass over
  /// [addr, addr+words). A pure hint: default no-op, never counted, never
  /// observable in results or IoStats. The MmapBackend forwards it to
  /// madvise; decorators (src/faults/) forward it to the wrapped backend.
  virtual void Advise(Addr addr, std::size_t words, AdviseKind kind) {
    (void)addr;
    (void)words;
    (void)kind;
  }

  /// Whether construction succeeded. Backends cannot report failure from a
  /// constructor; a backend that failed to initialize (e.g. mkstemp on a bad
  /// temp dir) latches the error here and fails every subsequent operation
  /// with it. Checked once at LoadedGraph/Context creation.
  virtual Status init_status() const { return Status::OK(); }

  /// Real-transfer counters (monotone over the backend's lifetime).
  /// Virtual so decorators (src/faults/) can forward to the wrapped backend.
  virtual const StorageTelemetry& telemetry() const { return telemetry_; }

  /// Recovery counters (retries, injected faults, checksum failures);
  /// aggregated across the decorator stack. Zero for plain backends.
  virtual RecoveryStats recovery() const { return RecoveryStats{}; }

  /// Times the backing storage actually grew (vector resize / ftruncate).
  /// A GraphStore reused across queries must warm up once and then stay
  /// flat: queries allocate inside released regions, so no re-create and no
  /// re-truncate per query (asserted by tests/test_device_properties.cc).
  virtual std::uint64_t grow_calls() const { return grow_calls_; }

  /// Backend identifier ("memory", "file", or a decorated composition such
  /// as "file+faults+recovery"), for reports.
  virtual const char* name() const = 0;

 protected:
  StorageTelemetry telemetry_;
  std::uint64_t grow_calls_ = 0;
};

/// \brief RAM-resident store: the original simulator's flat vector.
class MemoryBackend final : public StorageBackend {
 public:
  Status EnsureSize(std::size_t words) override;
  std::size_t size_words() const override { return storage_.size(); }
  bool memory_resident() const override { return true; }
  Word* DirectView() override { return storage_.data(); }
  const Word* DirectView() const override { return storage_.data(); }
  Status ReadWords(Addr addr, std::size_t words, Word* out) override;
  Status WriteWords(Addr addr, std::size_t words, const Word* in) override;
  const char* name() const override { return "memory"; }

 private:
  std::vector<Word> storage_;
};

/// \brief File-backed store: an unlinked temp file driven by pread/pwrite.
///
/// The file is unlinked immediately after creation, so the space is reclaimed
/// by the OS even on a crash. Growth is via ftruncate (sparse, so reserving
/// capacity is free until blocks are actually written). POSIX only.
class FileBackend final : public StorageBackend {
 public:
  /// Creates the backing file in `dir`; empty means $TMPDIR, falling back
  /// to /tmp.
  explicit FileBackend(std::string dir = "");
  ~FileBackend() override;
  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  Status EnsureSize(std::size_t words) override;
  std::size_t size_words() const override { return size_words_; }
  bool memory_resident() const override { return false; }
  Status ReadWords(Addr addr, std::size_t words, Word* out) override;
  Status WriteWords(Addr addr, std::size_t words, const Word* in) override;
  Status init_status() const override { return init_status_; }
  const char* name() const override { return "file"; }

  /// Path the backing file was created at (already unlinked; informational).
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::size_t size_words_ = 0;
  std::string path_;
  Status init_status_;
};

/// \brief Memory-mapped store: an unlinked temp file mapped MAP_SHARED.
///
/// The third backend implementation, differential-tested against the other
/// two. It is memory_resident(): the mapping is the direct view, so the
/// cache runs counting-only and the *OS* pages blocks in and out — the
/// related-repo approach of leaning on page-cache prefetch instead of
/// explicit staging. Advise() turns the scan-advice hook into
/// madvise(MADV_SEQUENTIAL / MADV_WILLNEED). Growth is ftruncate + remap
/// (the direct view is invalidated by EnsureSize, same contract as the
/// MemoryBackend's vector resize). When wrapped by fault decorators the
/// cache stages against the decorated stack exactly as it does over kMemory
/// (decorators report memory_resident() == false), so mmap composes with
/// faults/recovery unchanged. POSIX only.
class MmapBackend final : public StorageBackend {
 public:
  /// Creates the backing file in `dir`; empty means $TMPDIR, falling back
  /// to /tmp.
  explicit MmapBackend(std::string dir = "");
  ~MmapBackend() override;
  MmapBackend(const MmapBackend&) = delete;
  MmapBackend& operator=(const MmapBackend&) = delete;

  Status EnsureSize(std::size_t words) override;
  std::size_t size_words() const override { return size_words_; }
  bool memory_resident() const override { return true; }
  Word* DirectView() override { return map_; }
  const Word* DirectView() const override { return map_; }
  Status ReadWords(Addr addr, std::size_t words, Word* out) override;
  Status WriteWords(Addr addr, std::size_t words, const Word* in) override;
  void Advise(Addr addr, std::size_t words, AdviseKind kind) override;
  Status init_status() const override { return init_status_; }
  const char* name() const override { return "mmap"; }

  /// Path the backing file was created at (already unlinked; informational).
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  Word* map_ = nullptr;
  std::size_t size_words_ = 0;
  std::string path_;
  Status init_status_;
};

/// Factory from the context configuration.
std::unique_ptr<StorageBackend> MakeStorageBackend(const EmConfig& cfg);

}  // namespace trienum::em

#endif  // TRIENUM_EM_STORAGE_H_
