#include "em/context.h"

namespace trienum::em {

Context::Context(const EmConfig& cfg)
    : cfg_(cfg),
      device_(MakeStorageBackend(cfg)),
      cache_(cfg.memory_words, cfg.block_words, device_.staging_backend(),
             cfg.line_map_dense_limit) {
  TRIENUM_CHECK_MSG(cfg.memory_words >= cfg.block_words,
                    "internal memory must hold at least one block");
}

ScratchLease::ScratchLease(Context* ctx, std::size_t words)
    : ctx_(ctx), words_(words) {
  ctx_->scratch_used_ += words_;
  TRIENUM_CHECK_MSG(ctx_->scratch_used_ <= ctx_->memory_words(),
                    "host scratch exceeds internal memory budget M");
}

ScratchLease::~ScratchLease() {
  if (ctx_ != nullptr) ctx_->scratch_used_ -= words_;
}

ScratchLease::ScratchLease(ScratchLease&& o) noexcept
    : ctx_(o.ctx_), words_(o.words_) {
  o.ctx_ = nullptr;
  o.words_ = 0;
}

ScratchLease& ScratchLease::operator=(ScratchLease&& o) noexcept {
  if (this != &o) {
    if (ctx_ != nullptr) ctx_->scratch_used_ -= words_;
    ctx_ = o.ctx_;
    words_ = o.words_;
    o.ctx_ = nullptr;
    o.words_ = 0;
  }
  return *this;
}

DeviceRegion::DeviceRegion(Context* ctx) : ctx_(ctx), mark_(ctx->device().Mark()) {}

DeviceRegion::~DeviceRegion() { ctx_->device().Release(mark_); }

}  // namespace trienum::em
