#include "em/context.h"

namespace trienum::em {

GraphStore::GraphStore(const EmConfig& cfg)
    : cfg_(cfg),
      device_(MakeStorageBackend(cfg)),
      cache_(cfg.memory_words, cfg.block_words, device_.staging_backend(),
             cfg.line_map_dense_limit) {
  TRIENUM_CHECK_MSG(cfg.memory_words >= cfg.block_words,
                    "internal memory must hold at least one block");
  // Read-ahead engine (src/prefetch/, injected like the faults decorators):
  // only meaningful when the cache stages real data — a counting-only cache
  // has no physical reads to overlap. The pool reads through the *decorated*
  // backend stack, so prefetch I/O exercises the same retry/checksum
  // machinery as demand I/O.
  if (cfg_.make_prefetcher && cache_.staged()) {
    prefetch_ = cfg_.make_prefetcher(&device_.backend(), cfg_);
    cache_.set_prefetcher(prefetch_.get());
  }
}

GraphStore::~GraphStore() {
  // Detach before the members unwind so no dangling prefetcher pointer
  // survives inside the cache while the pool joins its workers.
  cache_.set_prefetcher(nullptr);
}

ScratchLease::ScratchLease(QuerySession* session, std::size_t words)
    : session_(session), words_(words) {
  session_->scratch_used_ += words_;
  TRIENUM_CHECK_MSG(session_->scratch_used_ <= session_->memory_words(),
                    "host scratch exceeds internal memory budget M");
}

ScratchLease::~ScratchLease() {
  if (session_ != nullptr) session_->scratch_used_ -= words_;
}

ScratchLease::ScratchLease(ScratchLease&& o) noexcept
    : session_(o.session_), words_(o.words_) {
  o.session_ = nullptr;
  o.words_ = 0;
}

ScratchLease& ScratchLease::operator=(ScratchLease&& o) noexcept {
  if (this != &o) {
    if (session_ != nullptr) session_->scratch_used_ -= words_;
    session_ = o.session_;
    words_ = o.words_;
    o.session_ = nullptr;
    o.words_ = 0;
  }
  return *this;
}

DeviceRegion::DeviceRegion(GraphStore* store)
    : store_(store), mark_(store->device().Mark()) {}

DeviceRegion::~DeviceRegion() { store_->device().Release(mark_); }

}  // namespace trienum::em
