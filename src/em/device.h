// The external memory ("disk"): a flat, word-addressable store with
// stack-discipline (region) allocation, backed by a pluggable storage
// backend (em/storage.h) — RAM-resident by default, file-backed for
// out-of-core runs.
#ifndef TRIENUM_EM_DEVICE_H_
#define TRIENUM_EM_DEVICE_H_

#include <cstddef>
#include <memory>

#include "common/status.h"
#include "em/defs.h"
#include "em/storage.h"

namespace trienum::em {

/// \brief Unbounded external storage backing all em::Array allocations.
///
/// Allocation is a bump pointer with LIFO regions: callers take a Mark,
/// allocate freely, and Release back to the mark when a phase (e.g. a
/// recursive subproblem) completes. This mirrors how the paper bounds disk
/// usage to O(E) words: subproblem inputs are freed on return.
///
/// The allocator is backend-independent: where the words physically live
/// (a vector or a temp file) is the backend's concern, so address assignment
/// — and therefore every simulated I/O — is identical across backends.
class Device {
 public:
  /// Default device: RAM-resident MemoryBackend (the original simulator).
  Device() : backend_(std::make_unique<MemoryBackend>()) {}

  /// Device over an explicit backend (e.g. FileBackend for out-of-core).
  explicit Device(std::unique_ptr<StorageBackend> backend)
      : backend_(std::move(backend)) {
    TRIENUM_CHECK(backend_ != nullptr);
  }

  /// Allocates `words` words aligned to `align` words; returns the base
  /// address. Alignment to the block size keeps distinct arrays from sharing
  /// a cache line, so I/O accounting never charges one array for another's
  /// traffic.
  Addr Allocate(std::size_t words, std::size_t align);

  /// Current top of the allocation stack, usable as a region mark.
  Addr Mark() const { return top_; }

  /// Pops every allocation made since `mark` was taken.
  void Release(Addr mark);

  /// The storage backend (for real-transfer telemetry and reports).
  StorageBackend& backend() { return *backend_; }
  const StorageBackend& backend() const { return *backend_; }

  /// Direct view of the store; only meaningful when the backend is
  /// memory-resident (otherwise all data moves through the staged cache).
  Word* direct_view() { return backend_->DirectView(); }
  const Word* direct_view() const { return backend_->DirectView(); }

  /// Backend to hand to the Cache for staged (real-data) operation: non-null
  /// exactly when the store is not memory-resident. The choice is structural
  /// (backend type), never dependent on current allocation state.
  StorageBackend* staging_backend() {
    return backend_->memory_resident() ? nullptr : backend_.get();
  }

  /// Words currently allocated.
  std::size_t allocated_words() const { return top_; }

  /// High-water mark of allocated words over the device's lifetime; the
  /// paper's "O(E) words on disk" claims are checked against this.
  std::size_t peak_words() const { return peak_; }

  /// Resets the peak-tracking counter to the current allocation level.
  void ResetPeak() { peak_ = top_; }

 private:
  std::unique_ptr<StorageBackend> backend_;
  Addr top_ = 0;
  Addr peak_ = 0;
};

}  // namespace trienum::em

#endif  // TRIENUM_EM_DEVICE_H_
