// The simulated external memory ("disk"): a flat, word-addressable store with
// stack-discipline (region) allocation.
#ifndef TRIENUM_EM_DEVICE_H_
#define TRIENUM_EM_DEVICE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "em/defs.h"

namespace trienum::em {

/// \brief Unbounded external storage backing all em::Array allocations.
///
/// Allocation is a bump pointer with LIFO regions: callers take a Mark,
/// allocate freely, and Release back to the mark when a phase (e.g. a
/// recursive subproblem) completes. This mirrors how the paper bounds disk
/// usage to O(E) words: subproblem inputs are freed on return.
class Device {
 public:
  Device() = default;

  /// Allocates `words` words aligned to `align` words; returns the base
  /// address. Alignment to the block size keeps distinct arrays from sharing
  /// a cache line, so I/O accounting never charges one array for another's
  /// traffic.
  Addr Allocate(std::size_t words, std::size_t align);

  /// Current top of the allocation stack, usable as a region mark.
  Addr Mark() const { return top_; }

  /// Pops every allocation made since `mark` was taken.
  void Release(Addr mark);

  /// Direct pointer into backing storage (for simulated DMA). Valid only
  /// until the next Allocate.
  Word* raw(Addr a) { return storage_.data() + a; }
  const Word* raw(Addr a) const { return storage_.data() + a; }

  /// Words currently allocated.
  std::size_t allocated_words() const { return top_; }

  /// High-water mark of allocated words over the device's lifetime; the
  /// paper's "O(E) words on disk" claims are checked against this.
  std::size_t peak_words() const { return peak_; }

  /// Resets the peak-tracking counter to the current allocation level.
  void ResetPeak() { peak_ = top_; }

 private:
  std::vector<Word> storage_;
  Addr top_ = 0;
  Addr peak_ = 0;
};

}  // namespace trienum::em

#endif  // TRIENUM_EM_DEVICE_H_
