// LRU internal-memory simulator: the I/O-accounting heart of the library.
//
// Internal memory holds M/B lines of B words. Each word touch either hits a
// resident line or faults it in (one block read); evicting a dirty line costs
// one block write. The paper's cache-oblivious analysis is stated for an
// optimal replacement policy and transfers to LRU by [Frigo et al. 2012,
// Lemma 6.4]; measuring under LRU is therefore the standard way to evaluate
// a cache-oblivious algorithm at arbitrary (M, B).
#ifndef TRIENUM_EM_CACHE_H_
#define TRIENUM_EM_CACHE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "em/defs.h"

namespace trienum::em {

/// \brief LRU cache of M words in B-word lines with I/O counting.
///
/// Writes that start at a line boundary allocate the line without fetching it
/// (a purely sequential output stream costs n/B writes and no reads, matching
/// the EM model's scan semantics); any other miss costs a block read.
class Cache {
 public:
  Cache(std::size_t memory_words, std::size_t block_words);

  /// Registers a touch of `words` consecutive words starting at `addr`.
  void TouchRange(Addr addr, std::size_t words, bool write);

  /// Single-word convenience wrapper.
  void Touch(Addr addr, bool write) { TouchRange(addr, 1, write); }

  /// Writes back all dirty lines (counting block writes) and empties the
  /// cache. Call at the end of a measured run so pending output is charged.
  void FlushAll();

  /// Empties the cache and zeroes all counters; the next run starts cold.
  void Reset();

  /// Enables/disables accounting. While disabled, touches are no-ops; used
  /// when building inputs or verifying outputs outside the measured region.
  void set_counting(bool on) { counting_ = on; }
  bool counting() const { return counting_; }

  const IoStats& stats() const { return stats_; }

  std::size_t memory_words() const { return memory_words_; }
  std::size_t block_words() const { return block_words_; }
  std::size_t num_lines() const { return num_slots_; }

  /// True if the line containing `addr` is resident (for witness checks).
  bool IsResident(Addr addr) const;

 private:
  struct Slot {
    std::int32_t prev;
    std::int32_t next;
    std::int64_t line;  // line id, or -1 if free
    bool dirty;
  };

  void TouchLine(std::int64_t line, bool write, bool aligned_write);
  std::int32_t GrabSlot();           // free slot or evict LRU tail
  void MoveToFront(std::int32_t s);
  void PushFront(std::int32_t s);
  void Unlink(std::int32_t s);
  std::int32_t Lookup(std::int64_t line) const;

  std::size_t memory_words_;
  std::size_t block_words_;
  std::size_t num_slots_;

  std::vector<Slot> slots_;
  std::vector<std::int32_t> where_;  // line id -> slot or -1
  std::int32_t head_ = -1;           // MRU
  std::int32_t tail_ = -1;           // LRU
  std::int32_t free_head_ = -1;
  std::int64_t last_line_ = -1;      // fast path for streaming access

  bool counting_ = true;
  IoStats stats_;
};

}  // namespace trienum::em

#endif  // TRIENUM_EM_CACHE_H_
