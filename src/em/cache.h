// LRU internal-memory cache: the I/O-accounting heart of the library.
//
// Internal memory holds M/B lines of B words. Each word touch either hits a
// resident line or faults it in (one block read); evicting a dirty line costs
// one block write. The paper's cache-oblivious analysis is stated for an
// optimal replacement policy and transfers to LRU by [Frigo et al. 2012,
// Lemma 6.4]; measuring under LRU is therefore the standard way to evaluate
// a cache-oblivious algorithm at arbitrary (M, B).
//
// The cache runs in one of two modes, fixed at construction:
//
//   * counting-only (no staging backend): touches only update the LRU state
//     and the IoStats counters; data lives elsewhere (the MemoryBackend's
//     direct view). This is the original simulator, bit-for-bit.
//
//   * staged (a StorageBackend* is supplied): the cache additionally owns a
//     B-word buffer per line and becomes the real data path — misses fetch
//     the block from the backend, dirty evictions write it back, so resident
//     memory is O(M). The counting code is shared between the modes, which is
//     what guarantees IoStats are backend-independent (asserted by
//     tests/test_storage_backends.cc).
#ifndef TRIENUM_EM_CACHE_H_
#define TRIENUM_EM_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "em/defs.h"
#include "em/storage.h"

namespace trienum::em {

/// \brief Line id -> slot index map: dense vector for small line ids, hash
/// map past `dense_limit`.
///
/// The dense regime keeps the hot lookup a single vector load; the sparse
/// regime bounds host memory at O(resident lines) instead of O(device lines),
/// which is what lets a file-backed device grow to many TiB without the map
/// alone eating device/(2B) bytes of RAM. Evicted lines are erased from the
/// hash map, so its size never exceeds the number of cache slots.
class LineMap {
 public:
  explicit LineMap(std::size_t dense_limit) : dense_limit_(dense_limit) {}

  std::int32_t Get(std::int64_t line) const {
    const std::size_t l = static_cast<std::size_t>(line);
    if (l < dense_.size()) return dense_[l];
    if (l < dense_limit_) return -1;  // dense regime, not grown this far yet
    auto it = sparse_.find(l);
    return it == sparse_.end() ? -1 : it->second;
  }

  void Set(std::int64_t line, std::int32_t slot) {
    const std::size_t l = static_cast<std::size_t>(line);
    if (l < dense_limit_) {
      if (l >= dense_.size()) {
        std::size_t grown = dense_.size() < 64 ? 64 : dense_.size() * 2;
        if (grown < l + 1) grown = l + 1;
        if (grown > dense_limit_) grown = dense_limit_;
        dense_.resize(grown, -1);
      }
      dense_[l] = slot;
    } else if (slot < 0) {
      sparse_.erase(l);
    } else {
      sparse_[l] = slot;
    }
  }

  /// Drops every mapping (Cache::Discard). Keeps the dense vector's capacity.
  void Clear() {
    std::fill(dense_.begin(), dense_.end(), -1);
    sparse_.clear();
  }

  std::size_t dense_limit() const { return dense_limit_; }
  std::size_t sparse_entries() const { return sparse_.size(); }

 private:
  std::size_t dense_limit_;
  std::vector<std::int32_t> dense_;
  std::unordered_map<std::size_t, std::int32_t> sparse_;
};

/// \brief LRU cache of M words in B-word lines with I/O counting and an
/// optional real (staged) data path.
///
/// Writes that start at a line boundary allocate the line without charging a
/// fetch (a purely sequential output stream costs n/B writes and no reads,
/// matching the EM model's scan semantics); any other miss costs a block read.
class Cache {
 public:
  /// `staging` selects the mode: nullptr = counting-only (default);
  /// otherwise the cache stages real data against that backend.
  Cache(std::size_t memory_words, std::size_t block_words,
        StorageBackend* staging = nullptr,
        std::size_t line_map_dense_limit = std::size_t{1} << 22);

  /// Registers a touch of `words` consecutive words starting at `addr`.
  /// (In staged mode, missed lines are fetched so buffers stay coherent,
  /// but no data is returned — prefer ReadRange/WriteRange.) Inlined
  /// streaming fast path: a repeat touch of the MRU line is a handful of
  /// instructions — this is the dominant call on every per-record hot loop.
  void TouchRange(Addr addr, std::size_t words, bool write) {
    if (!counting_ || words == 0) return;
    const std::int64_t first = LineOf(addr);
    const std::int64_t last = LineOf(addr + words - 1);
    if (first == last && first == last_line_ && head_ >= 0 &&
        slots_[head_].line == first) {
      slots_[head_].dirty |= write;
      ++stats_.cache_hits;
      return;
    }
    TouchRangeSlow(addr, first, last, write);
  }

  /// Single-word convenience wrapper.
  void Touch(Addr addr, bool write) { TouchRange(addr, 1, write); }

  /// Batched scan charge: registers the exact touch sequence that a forward
  /// element-wise pass over [addr, addr+words) in records of `elem_words`
  /// words would — one TouchLine per covered line plus one cache hit for
  /// every further record touching that line — in O(lines) instead of
  /// O(records) work. This is the accounting fast path under the buffered
  /// Scanner/Writer: IoStats (reads, writes AND hits) come out bit-for-bit
  /// identical to per-record TouchRange calls. `addr` must be the first
  /// record's start and `words` a multiple of `elem_words`.
  void ScanRange(Addr addr, std::size_t words, std::size_t elem_words,
                 bool write);

  /// Staged-mode data path: reads/writes `words` words at `addr` through the
  /// resident line buffers, counting I/Os exactly like TouchRange. While
  /// counting is disabled the access bypasses the LRU state entirely
  /// (read-through/write-through to the backend), mirroring the simulator's
  /// uncounted raw-pointer accesses. Staged mode only.
  void ReadRange(Addr addr, std::size_t words, void* out);
  void WriteRange(Addr addr, std::size_t words, const void* in);

  /// Staged-mode duals of ScanRange: move data through the line buffers
  /// while charging exactly like an element-wise pass. A counted full-line
  /// WriteScan skips the backend fetch entirely (every word is overwritten),
  /// which is where the file backend's real read traffic drops to block
  /// granularity. Uncounted calls fall back to the bypass semantics of
  /// ReadRange/WriteRange. Staged mode only.
  void ReadScan(Addr addr, std::size_t words, std::size_t elem_words,
                void* out);
  void WriteScan(Addr addr, std::size_t words, std::size_t elem_words,
                 const void* in);

  /// Pins the line containing `addr`, charging exactly like Touch(addr,
  /// write), and returns its slot. A pinned line is never chosen for
  /// eviction; pins nest (each Pin needs one Unpin). Requires counting to be
  /// enabled (uncounted phases use the ReadRange/WriteRange bypass instead).
  /// In staged mode `slot_buffer` exposes the line's B-word buffer; write
  /// pins mark the line dirty, so the data placed in the buffer is written
  /// back on eventual eviction or flush.
  std::int32_t Pin(Addr addr, bool write);
  void Unpin(std::int32_t slot);
  /// Direct pointer to a (pinned) slot's B-word line buffer; staged only.
  Word* slot_buffer(std::int32_t s) {
    TRIENUM_CHECK(staging_ != nullptr);
    return line_buf(s);
  }
  bool IsPinned(Addr addr) const;
  std::size_t pinned_lines() const { return pinned_lines_; }

  /// True if this cache stages real data (file-backed device).
  bool staged() const { return staging_ != nullptr; }

  /// Attaches a read-ahead engine (see em/defs.h LinePrefetcher). Staged
  /// mode only; installed once at GraphStore construction. With a prefetcher
  /// attached, every backend call the cache makes is serialized under the
  /// prefetcher's io_mutex (backends and decorators are not thread-safe),
  /// a counted miss first tries to consume a staged block, and every write
  /// invalidates overlapping staging so it never serves stale bytes. All of
  /// this is below the charging layer: IoStats are prefetch-invariant by
  /// construction.
  void set_prefetcher(LinePrefetcher* p) {
    TRIENUM_CHECK_MSG(p == nullptr || staging_ != nullptr,
                      "a prefetcher needs staged mode (real reads to overlap)");
    prefetch_ = p;
  }
  LinePrefetcher* prefetcher() const { return prefetch_; }

  /// Writes back all dirty lines (counting block writes) and empties the
  /// cache. Call at the end of a measured run so pending output is charged.
  void FlushAll();

  /// Empties the cache and zeroes all counters; the next run starts cold.
  /// (Staged dirty data is written back, never dropped.)
  void Reset();

  /// Crash-consistency reset: drops every line *without* write-back, clears
  /// pins, counters, and the latched fault. After a failed query the dirty
  /// lines hold scratch data from an abandoned plan — writing them back could
  /// itself fault, and nothing will ever read them (the query's region is
  /// released). The frozen graph pages are clean by construction, so
  /// discarding cannot lose graph data.
  void Discard();

  /// First staged-I/O failure observed by this cache, latched until
  /// Discard(). The query layer checks this after a run: a fault swallowed
  /// during unwinding (Writer destructors) still fails the query.
  const Status& fault() const { return fault_; }

  /// Zeroes the IoStats counters only, leaving residency, recency, dirty
  /// bits and pins untouched — per-session counting reset without
  /// disturbing resident lines. A query that must match a fresh context
  /// bit-for-bit still needs a cold cache (Reset); ResetCounters is for
  /// re-baselining accounting over a deliberately warm store.
  void ResetCounters() { stats_ = IoStats{}; }

  /// Number of lines currently resident (in the LRU list), for tests that
  /// assert ResetCounters leaves residency alone.
  std::size_t resident_lines() const {
    std::size_t n = 0;
    for (std::int32_t s = head_; s >= 0; s = slots_[s].next) ++n;
    return n;
  }

  /// Enables/disables accounting. While disabled, touches are no-ops; used
  /// when building inputs or verifying outputs outside the measured region.
  void set_counting(bool on) { counting_ = on; }
  bool counting() const { return counting_; }

  const IoStats& stats() const { return stats_; }

  std::size_t memory_words() const { return memory_words_; }
  std::size_t block_words() const { return block_words_; }
  std::size_t num_lines() const { return num_slots_; }

  /// True if the line containing `addr` is resident (for witness checks).
  bool IsResident(Addr addr) const;

 private:
  struct Slot {
    std::int32_t prev;
    std::int32_t next;
    std::int64_t line;   // line id, or -1 if free
    std::int32_t pins;   // >0 = never evicted
    bool dirty;
  };

  enum class ScanOpKind { kCharge, kRead, kWrite };

  /// Core touch: updates LRU/counters and returns the slot now holding
  /// `line`. `fetch` controls whether a staged miss loads the block from the
  /// backend (false only when the caller overwrites the whole line).
  std::int32_t TouchLine(std::int64_t line, bool write, bool aligned_write,
                         bool fetch);
  void TouchRangeSlow(Addr addr, std::int64_t first, std::int64_t last,
                      bool write);
  /// Shared walk behind ScanRange/ReadScan/WriteScan.
  void ScanOp(Addr addr, std::size_t words, std::size_t elem_words,
              ScanOpKind kind, void* out, const void* in);
  /// Staged backend I/O with fault latching. On a backend error the Status
  /// is latched into fault_ and an IoFault is thrown — unless the stack is
  /// already unwinding (a Writer flushing from a destructor), in which case
  /// the op degrades to a no-op (reads zero-fill) and the latch alone
  /// carries the failure to the query layer. Once latched, every further
  /// staged op behaves the same way: fail fast, never touch the backend.
  void StagedRead(Addr addr, std::size_t words, Word* out);
  void StagedWrite(Addr addr, std::size_t words, const Word* in);
  /// The physical read behind a counted staged miss: serves the block from
  /// the prefetcher's staging when available (memcpy, no blocking I/O),
  /// falling back to a synchronous StagedRead. The charge was already made
  /// by TouchLine — where the bytes come from is invisible to IoStats.
  void FetchLine(std::int64_t line, Word* out);
  std::int32_t GrabSlot();           // free (or unpinned LRU) slot
  void MoveToFront(std::int32_t s);
  void PushFront(std::int32_t s);
  void Unlink(std::int32_t s);
  std::int32_t Lookup(std::int64_t line) const { return where_.Get(line); }
  Word* line_buf(std::int32_t s) {
    return line_data_.data() + static_cast<std::size_t>(s) * block_words_;
  }
  /// Line id / in-line offset of `addr`; a shift/mask when B is a power of
  /// two (the common case — two fewer 64-bit divisions on every touch).
  std::int64_t LineOf(Addr a) const {
    return static_cast<std::int64_t>(line_shift_ >= 0 ? a >> line_shift_
                                                      : a / block_words_);
  }
  std::size_t OffsetIn(Addr a) const {
    return static_cast<std::size_t>(
        line_shift_ >= 0 ? a & (block_words_ - 1) : a % block_words_);
  }

  std::size_t memory_words_;
  std::size_t block_words_;
  std::size_t num_slots_;
  int line_shift_ = -1;  // log2(block_words) when a power of two, else -1

  std::vector<Slot> slots_;
  LineMap where_;                    // line id -> slot or -1
  std::int32_t head_ = -1;           // MRU
  std::int32_t tail_ = -1;           // LRU
  std::int32_t free_head_ = -1;
  std::int64_t last_line_ = -1;      // fast path for streaming access
  std::size_t pinned_lines_ = 0;

  StorageBackend* staging_ = nullptr;  // non-null = staged data mode
  LinePrefetcher* prefetch_ = nullptr;  // optional read-ahead (staged only)
  std::vector<Word> line_data_;        // num_slots_ * block_words_ (staged)

  bool counting_ = true;
  IoStats stats_;
  Status fault_;  // first staged-I/O failure; cleared by Discard()
};

}  // namespace trienum::em

#endif  // TRIENUM_EM_CACHE_H_
