// LRU internal-memory cache: the I/O-accounting heart of the library.
//
// Internal memory holds M/B lines of B words. Each word touch either hits a
// resident line or faults it in (one block read); evicting a dirty line costs
// one block write. The paper's cache-oblivious analysis is stated for an
// optimal replacement policy and transfers to LRU by [Frigo et al. 2012,
// Lemma 6.4]; measuring under LRU is therefore the standard way to evaluate
// a cache-oblivious algorithm at arbitrary (M, B).
//
// The cache runs in one of two modes, fixed at construction:
//
//   * counting-only (no staging backend): touches only update the LRU state
//     and the IoStats counters; data lives elsewhere (the MemoryBackend's
//     direct view). This is the original simulator, bit-for-bit.
//
//   * staged (a StorageBackend* is supplied): the cache additionally owns a
//     B-word buffer per line and becomes the real data path — misses fetch
//     the block from the backend, dirty evictions write it back, so resident
//     memory is O(M). The counting code is shared between the modes, which is
//     what guarantees IoStats are backend-independent (asserted by
//     tests/test_storage_backends.cc).
#ifndef TRIENUM_EM_CACHE_H_
#define TRIENUM_EM_CACHE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "em/defs.h"
#include "em/storage.h"

namespace trienum::em {

/// \brief LRU cache of M words in B-word lines with I/O counting and an
/// optional real (staged) data path.
///
/// Writes that start at a line boundary allocate the line without charging a
/// fetch (a purely sequential output stream costs n/B writes and no reads,
/// matching the EM model's scan semantics); any other miss costs a block read.
class Cache {
 public:
  /// `staging` selects the mode: nullptr = counting-only (default);
  /// otherwise the cache stages real data against that backend.
  Cache(std::size_t memory_words, std::size_t block_words,
        StorageBackend* staging = nullptr);

  /// Registers a touch of `words` consecutive words starting at `addr`.
  /// (In staged mode, missed lines are fetched so buffers stay coherent,
  /// but no data is returned — prefer ReadRange/WriteRange.)
  void TouchRange(Addr addr, std::size_t words, bool write);

  /// Single-word convenience wrapper.
  void Touch(Addr addr, bool write) { TouchRange(addr, 1, write); }

  /// Staged-mode data path: reads/writes `words` words at `addr` through the
  /// resident line buffers, counting I/Os exactly like TouchRange. While
  /// counting is disabled the access bypasses the LRU state entirely
  /// (read-through/write-through to the backend), mirroring the simulator's
  /// uncounted raw-pointer accesses. Staged mode only.
  void ReadRange(Addr addr, std::size_t words, void* out);
  void WriteRange(Addr addr, std::size_t words, const void* in);

  /// True if this cache stages real data (file-backed device).
  bool staged() const { return staging_ != nullptr; }

  /// Writes back all dirty lines (counting block writes) and empties the
  /// cache. Call at the end of a measured run so pending output is charged.
  void FlushAll();

  /// Empties the cache and zeroes all counters; the next run starts cold.
  /// (Staged dirty data is written back, never dropped.)
  void Reset();

  /// Enables/disables accounting. While disabled, touches are no-ops; used
  /// when building inputs or verifying outputs outside the measured region.
  void set_counting(bool on) { counting_ = on; }
  bool counting() const { return counting_; }

  const IoStats& stats() const { return stats_; }

  std::size_t memory_words() const { return memory_words_; }
  std::size_t block_words() const { return block_words_; }
  std::size_t num_lines() const { return num_slots_; }

  /// True if the line containing `addr` is resident (for witness checks).
  bool IsResident(Addr addr) const;

 private:
  struct Slot {
    std::int32_t prev;
    std::int32_t next;
    std::int64_t line;  // line id, or -1 if free
    bool dirty;
  };

  /// Core touch: updates LRU/counters and returns the slot now holding
  /// `line`. `fetch` controls whether a staged miss loads the block from the
  /// backend (false only when the caller overwrites the whole line).
  std::int32_t TouchLine(std::int64_t line, bool write, bool aligned_write,
                         bool fetch);
  std::int32_t GrabSlot();           // free slot or evict LRU tail
  void MoveToFront(std::int32_t s);
  void PushFront(std::int32_t s);
  void Unlink(std::int32_t s);
  std::int32_t Lookup(std::int64_t line) const;
  Word* line_buf(std::int32_t s) {
    return line_data_.data() + static_cast<std::size_t>(s) * block_words_;
  }

  std::size_t memory_words_;
  std::size_t block_words_;
  std::size_t num_slots_;

  std::vector<Slot> slots_;
  std::vector<std::int32_t> where_;  // line id -> slot or -1
  std::int32_t head_ = -1;           // MRU
  std::int32_t tail_ = -1;           // LRU
  std::int32_t free_head_ = -1;
  std::int64_t last_line_ = -1;      // fast path for streaming access

  StorageBackend* staging_ = nullptr;  // non-null = staged data mode
  std::vector<Word> line_data_;        // num_slots_ * block_words_ (staged)

  bool counting_ = true;
  IoStats stats_;
};

}  // namespace trienum::em

#endif  // TRIENUM_EM_CACHE_H_
