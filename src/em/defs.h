// Basic definitions for the external-memory (EM) model simulator.
//
// The simulator realizes the model of Aggarwal & Vitter used by the paper: an
// internal memory of M words, an external memory (the Device) of unbounded
// size, and transfers in blocks of B consecutive words. The I/O complexity of
// an algorithm is the number of block transfers it performs, which we measure
// as misses/evictions of an LRU cache of M words organized in B-word lines.
#ifndef TRIENUM_EM_DEFS_H_
#define TRIENUM_EM_DEFS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

namespace trienum::em {

/// One machine word of external memory. The paper assumes a vertex or an edge
/// occupies one word; our Edge type (two 32-bit vertex ids) is exactly one.
using Word = std::uint64_t;

/// Word address in the device's flat address space.
using Addr = std::uint64_t;

/// How Scanner/Writer (em/array.h) move data: block-buffered (the fast
/// path) or record-by-record (the reference accounting path, kept for
/// differential testing and as the before-side of benchmarks). Defined here
/// so query-lifetime state (em/context.h) can carry a preference without a
/// cyclic include.
enum class ScanMode { kBuffered, kElementwise };

/// Which storage backend realizes the external memory (see em/storage.h).
enum class StorageKind {
  /// RAM-resident flat vector; every I/O is simulated (the default).
  kMemory,
  /// Unlinked temp file via pread/pwrite; resident memory is O(M) and the
  /// LRU cache performs real block fetches and dirty write-backs.
  kFile,
  /// Unlinked temp file mapped with mmap; the OS pages blocks in and out and
  /// `madvise` consumes the scan-advice hook. Memory-resident from the
  /// cache's point of view (counting-only, like kMemory), so it is a cheap
  /// third implementation to differential-test the other two against.
  kMmap,
};

class StorageBackend;  // em/storage.h

/// Access-pattern advice for a device range that a caller is about to stream
/// over. Purely a performance hint: advice is uncounted, carries no data, and
/// must never change results or IoStats.
enum class AdviseKind {
  kSequentialRead,   ///< the range will be read front to back
  kSequentialWrite,  ///< the range will be written front to back
};

/// Counters of the asynchronous read-ahead machinery (src/prefetch/). Like
/// RecoveryStats, all of this is *uncounted* traffic: a prefetched line never
/// changes IoStats, which stay bit-identical to a depth-0 run.
struct PrefetchStats {
  std::uint64_t issued = 0;  ///< read-ahead block fetches started by workers
  std::uint64_t useful = 0;  ///< staged blocks consumed by a counted miss
  std::uint64_t wasted = 0;  ///< staged blocks dropped unconsumed
  std::uint64_t stalls = 0;  ///< consumes that waited on an in-flight fetch

  PrefetchStats operator-(const PrefetchStats& o) const {
    return PrefetchStats{issued - o.issued, useful - o.useful,
                         wasted - o.wasted, stalls - o.stalls};
  }
};

/// \brief Abstract read-ahead engine the staged cache can consult on a miss.
///
/// The em layer defines only this interface; the implementation
/// (prefetch::PrefetchPool) lives in src/prefetch/ and is injected through
/// EmConfig::make_prefetcher, mirroring the faults layer's wrap_backend hook.
/// Contract: the prefetcher reads through the same (possibly decorated)
/// backend the cache stages against, so retries/checksums see real device
/// reads; it never touches LRU state or IoStats; and all backend I/O — its
/// workers' and the cache's own — is serialized under io_mutex(), because
/// backends and their decorators are not thread-safe.
class LinePrefetcher {
 public:
  virtual ~LinePrefetcher() = default;

  /// Registers an upcoming sequential pass over [addr, addr+words).
  /// Uncounted; never blocks on I/O.
  virtual void Advise(Addr addr, std::size_t words, AdviseKind kind) = 0;

  /// If the block at `line_base` is staged (or in flight), copies its
  /// `words` words into `out` and returns true; returns false when the
  /// caller must perform the demand read itself. Main thread only.
  virtual bool Consume(Addr line_base, std::size_t words, Word* out) = 0;

  /// Drops any staged or in-flight data overlapping [addr, addr+words).
  /// Must be called after every backend write so staging never serves stale
  /// bytes. Main thread only.
  virtual void Invalidate(Addr addr, std::size_t words) = 0;

  /// Drops all advice and staged data (cold-start reset between queries).
  virtual void Clear() = 0;

  /// Lifetime-monotone counters (thread-safe snapshot).
  virtual PrefetchStats stats() const = 0;

  /// Serializes every backend ReadWords/WriteWords/EnsureSize — the cache
  /// locks this around its own staged I/O whenever a prefetcher is attached.
  virtual std::mutex& io_mutex() = 0;
};

/// Parameters of the simulated memory hierarchy.
struct EmConfig {
  /// Internal memory size M, in words.
  std::size_t memory_words = std::size_t{1} << 14;
  /// Block (transfer unit) size B, in words.
  std::size_t block_words = 64;
  /// Master seed for all randomized components run under this context.
  std::uint64_t seed = 0x5117E57121ULL;
  /// Storage backend for the device. IoStats are backend-independent; kFile
  /// additionally bounds resident memory and reports real transfers.
  StorageKind storage = StorageKind::kMemory;
  /// Directory for the FileBackend's temp file; empty = $TMPDIR or /tmp.
  std::string temp_dir;
  /// Device lines below this id use a dense line->slot vector in the cache;
  /// lines at or above it fall back to a hash map. The default caps the dense
  /// map at 16 MiB of host RAM while keeping the hot lookup a vector load, so
  /// a multi-TB file-backed device no longer needs device/(2B) bytes of host
  /// memory for the map. Lowered in tests to exercise the sparse regime.
  std::size_t line_map_dense_limit = std::size_t{1} << 22;

  // --- Fault injection & recovery (src/faults/) -----------------------------
  // The em layer carries the configuration but never depends on the faults
  // layer: faults::ApplyFaultConfig parses fault_spec and installs
  // wrap_backend, which MakeStorageBackend applies to whatever backend it
  // builds. An empty spec with verify_checksums=false leaves the backend
  // unwrapped (zero overhead on the default path).

  /// Deterministic fault schedule (see faults/fault_spec.h for the grammar);
  /// empty = no injection.
  std::string fault_spec;
  /// Bounded retry budget for transient I/O faults (per operation).
  int io_retries = 4;
  /// Base backoff in milliseconds between retries (doubles per attempt);
  /// 0 = retry immediately (the test/bench default).
  int io_retry_backoff_ms = 0;
  /// Maintain per-line checksums on write and verify them on full-line
  /// fetches, detecting torn or corrupted blocks.
  bool verify_checksums = false;
  /// Decorator hook applied by MakeStorageBackend around the backend it
  /// constructs. Installed by faults::ApplyFaultConfig; null = identity.
  std::function<std::unique_ptr<StorageBackend>(std::unique_ptr<StorageBackend>)>
      wrap_backend;

  // --- Asynchronous prefetch (src/prefetch/) --------------------------------
  // Same layering as faults: the em layer carries the configuration but never
  // depends on the prefetch layer. prefetch::ApplyPrefetchConfig installs
  // make_prefetcher when prefetch_depth > 0; GraphStore applies it iff the
  // cache stages real data (a counting-only cache has no physical reads to
  // overlap). Depth 0 with a null hook is the default: zero overhead, no
  // background threads.

  /// Read-ahead depth in blocks (staging slots); 0 = prefetch off.
  std::size_t prefetch_depth = 0;
  /// Dedicated background I/O workers serving the read-ahead queue.
  std::size_t prefetch_threads = 1;
  /// Factory applied by GraphStore over the (decorated) backend the cache
  /// stages against. Installed by prefetch::ApplyPrefetchConfig; null = off.
  std::function<std::unique_ptr<LinePrefetcher>(StorageBackend*,
                                                const EmConfig&)>
      make_prefetcher;
};

/// Counters of simulated block transfers.
struct IoStats {
  std::uint64_t block_reads = 0;    ///< lines fetched from external memory
  std::uint64_t block_writes = 0;   ///< dirty lines written back
  std::uint64_t cache_hits = 0;     ///< word touches served from internal memory

  std::uint64_t total_ios() const { return block_reads + block_writes; }

  IoStats operator-(const IoStats& o) const {
    return IoStats{block_reads - o.block_reads, block_writes - o.block_writes,
                   cache_hits - o.cache_hits};
  }
};

}  // namespace trienum::em

#endif  // TRIENUM_EM_DEFS_H_
