// Basic definitions for the external-memory (EM) model simulator.
//
// The simulator realizes the model of Aggarwal & Vitter used by the paper: an
// internal memory of M words, an external memory (the Device) of unbounded
// size, and transfers in blocks of B consecutive words. The I/O complexity of
// an algorithm is the number of block transfers it performs, which we measure
// as misses/evictions of an LRU cache of M words organized in B-word lines.
#ifndef TRIENUM_EM_DEFS_H_
#define TRIENUM_EM_DEFS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace trienum::em {

/// One machine word of external memory. The paper assumes a vertex or an edge
/// occupies one word; our Edge type (two 32-bit vertex ids) is exactly one.
using Word = std::uint64_t;

/// Word address in the device's flat address space.
using Addr = std::uint64_t;

/// How Scanner/Writer (em/array.h) move data: block-buffered (the fast
/// path) or record-by-record (the reference accounting path, kept for
/// differential testing and as the before-side of benchmarks). Defined here
/// so query-lifetime state (em/context.h) can carry a preference without a
/// cyclic include.
enum class ScanMode { kBuffered, kElementwise };

/// Which storage backend realizes the external memory (see em/storage.h).
enum class StorageKind {
  /// RAM-resident flat vector; every I/O is simulated (the default).
  kMemory,
  /// Unlinked temp file via pread/pwrite; resident memory is O(M) and the
  /// LRU cache performs real block fetches and dirty write-backs.
  kFile,
};

class StorageBackend;  // em/storage.h

/// Parameters of the simulated memory hierarchy.
struct EmConfig {
  /// Internal memory size M, in words.
  std::size_t memory_words = std::size_t{1} << 14;
  /// Block (transfer unit) size B, in words.
  std::size_t block_words = 64;
  /// Master seed for all randomized components run under this context.
  std::uint64_t seed = 0x5117E57121ULL;
  /// Storage backend for the device. IoStats are backend-independent; kFile
  /// additionally bounds resident memory and reports real transfers.
  StorageKind storage = StorageKind::kMemory;
  /// Directory for the FileBackend's temp file; empty = $TMPDIR or /tmp.
  std::string temp_dir;
  /// Device lines below this id use a dense line->slot vector in the cache;
  /// lines at or above it fall back to a hash map. The default caps the dense
  /// map at 16 MiB of host RAM while keeping the hot lookup a vector load, so
  /// a multi-TB file-backed device no longer needs device/(2B) bytes of host
  /// memory for the map. Lowered in tests to exercise the sparse regime.
  std::size_t line_map_dense_limit = std::size_t{1} << 22;

  // --- Fault injection & recovery (src/faults/) -----------------------------
  // The em layer carries the configuration but never depends on the faults
  // layer: faults::ApplyFaultConfig parses fault_spec and installs
  // wrap_backend, which MakeStorageBackend applies to whatever backend it
  // builds. An empty spec with verify_checksums=false leaves the backend
  // unwrapped (zero overhead on the default path).

  /// Deterministic fault schedule (see faults/fault_spec.h for the grammar);
  /// empty = no injection.
  std::string fault_spec;
  /// Bounded retry budget for transient I/O faults (per operation).
  int io_retries = 4;
  /// Base backoff in milliseconds between retries (doubles per attempt);
  /// 0 = retry immediately (the test/bench default).
  int io_retry_backoff_ms = 0;
  /// Maintain per-line checksums on write and verify them on full-line
  /// fetches, detecting torn or corrupted blocks.
  bool verify_checksums = false;
  /// Decorator hook applied by MakeStorageBackend around the backend it
  /// constructs. Installed by faults::ApplyFaultConfig; null = identity.
  std::function<std::unique_ptr<StorageBackend>(std::unique_ptr<StorageBackend>)>
      wrap_backend;
};

/// Counters of simulated block transfers.
struct IoStats {
  std::uint64_t block_reads = 0;    ///< lines fetched from external memory
  std::uint64_t block_writes = 0;   ///< dirty lines written back
  std::uint64_t cache_hits = 0;     ///< word touches served from internal memory

  std::uint64_t total_ios() const { return block_reads + block_writes; }

  IoStats operator-(const IoStats& o) const {
    return IoStats{block_reads - o.block_reads, block_writes - o.block_writes,
                   cache_hits - o.cache_hits};
  }
};

}  // namespace trienum::em

#endif  // TRIENUM_EM_DEFS_H_
