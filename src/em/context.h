// Execution context binding together the device (memory- or file-backed,
// see em/storage.h), the LRU cache, the hierarchy parameters (M, B),
// scratch-memory accounting and the work counter. Every EM algorithm in the
// library takes a Context&.
#ifndef TRIENUM_EM_CONTEXT_H_
#define TRIENUM_EM_CONTEXT_H_

#include <cstdint>
#include <cstring>
#include <memory>

#include "common/status.h"
#include "em/cache.h"
#include "em/defs.h"
#include "em/device.h"

namespace trienum::em {

class Context;

// Typed device array; defined in array.h.
template <typename T>
class Array;

/// \brief RAII accounting of host-side working buffers ("internal memory").
///
/// Cache-aware algorithms stage data in buffers of at most M words (run
/// formation, pivot chunks, merge heaps). Each such buffer takes a lease; the
/// context checks that the total leased at any instant never exceeds M, which
/// enforces the model's internal-memory budget. Cache-oblivious algorithms
/// lease only O(1)-sized buffers.
class ScratchLease {
 public:
  ScratchLease() = default;
  ScratchLease(Context* ctx, std::size_t words);
  ~ScratchLease();
  ScratchLease(ScratchLease&& o) noexcept;
  ScratchLease& operator=(ScratchLease&& o) noexcept;
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  std::size_t words() const { return words_; }

 private:
  Context* ctx_ = nullptr;
  std::size_t words_ = 0;
};

/// \brief RAII pin of one cache line, giving zero-copy access to its B
/// words.
///
/// While alive, the line is exempt from eviction, so `data()` stays valid:
/// it points at the staged line buffer (file backend) or straight into the
/// MemoryBackend's view. Obtained via Context::PinLine, which charges
/// exactly one word touch; any further per-record charging is the caller's
/// job (via Context::TouchRange), keeping IoStats independent of how the
/// data is physically reached. Do not allocate device memory while holding a
/// pin (a MemoryBackend grow may move the view).
class PinnedLine {
 public:
  PinnedLine() = default;
  PinnedLine(Cache* cache, std::int32_t slot, Word* data, Addr base,
             std::size_t words)
      : cache_(cache), slot_(slot), data_(data), base_(base), words_(words) {}
  ~PinnedLine() {
    if (cache_ != nullptr) cache_->Unpin(slot_);
  }
  PinnedLine(PinnedLine&& o) noexcept
      : cache_(o.cache_), slot_(o.slot_), data_(o.data_), base_(o.base_),
        words_(o.words_) {
    o.cache_ = nullptr;
  }
  PinnedLine& operator=(PinnedLine&& o) noexcept {
    if (this != &o) {
      if (cache_ != nullptr) cache_->Unpin(slot_);
      cache_ = o.cache_;
      slot_ = o.slot_;
      data_ = o.data_;
      base_ = o.base_;
      words_ = o.words_;
      o.cache_ = nullptr;
    }
    return *this;
  }
  PinnedLine(const PinnedLine&) = delete;
  PinnedLine& operator=(const PinnedLine&) = delete;

  /// The line's B words.
  Word* data() const { return data_; }
  /// Word address of data()[0].
  Addr base() const { return base_; }
  /// Line size in words (= B).
  std::size_t size_words() const { return words_; }

 private:
  Cache* cache_ = nullptr;
  std::int32_t slot_ = -1;
  Word* data_ = nullptr;
  Addr base_ = 0;
  std::size_t words_ = 0;
};

/// \brief RAII region of device allocations, popped on destruction.
class DeviceRegion {
 public:
  explicit DeviceRegion(Context* ctx);
  ~DeviceRegion();
  DeviceRegion(const DeviceRegion&) = delete;
  DeviceRegion& operator=(const DeviceRegion&) = delete;

 private:
  Context* ctx_;
  Addr mark_;
};

/// \brief Simulation context: device + cache + (M, B) + counters.
class Context {
 public:
  explicit Context(const EmConfig& cfg);

  Device& device() { return device_; }
  Cache& cache() { return cache_; }
  const Cache& cache() const { return cache_; }

  /// Registers a word-range touch with the primary cache and, if attached,
  /// the passive probe cache.
  void TouchRange(Addr addr, std::size_t words, bool write) {
    cache_.TouchRange(addr, words, write);
    if (probe_ != nullptr && cache_.counting()) {
      probe_->TouchRange(addr, words, write);
    }
  }

  /// Reads `words` device words at `a` into `out`, charging I/Os exactly as
  /// a TouchRange of the same span. All em::Array accesses route through
  /// here (and WriteWords below), which is what makes the storage backend
  /// swappable: with a direct view (memory backend) this is a touch plus a
  /// memcpy; otherwise the staged cache moves real blocks.
  void ReadWords(Addr a, std::size_t words, void* out) {
    if (!cache_.staged()) {
      TouchRange(a, words, /*write=*/false);
      std::memcpy(out, device_.direct_view() + a, words * sizeof(Word));
    } else {
      cache_.ReadRange(a, words, out);
      if (probe_ != nullptr && cache_.counting()) {
        probe_->TouchRange(a, words, /*write=*/false);
      }
    }
  }

  /// Writes `words` device words at `a` from `in`; the I/O-accounting dual
  /// of ReadWords (sequential block-aligned writes are charged as pure
  /// output).
  void WriteWords(Addr a, std::size_t words, const void* in) {
    if (!cache_.staged()) {
      TouchRange(a, words, /*write=*/true);
      std::memcpy(device_.direct_view() + a, in, words * sizeof(Word));
    } else {
      cache_.WriteRange(a, words, in);
      if (probe_ != nullptr && cache_.counting()) {
        probe_->TouchRange(a, words, /*write=*/true);
      }
    }
  }

  /// Block-buffered stream transfers: move [a, a+words) in one call while
  /// charging the exact touch sequence of a record-by-record pass in
  /// `elem_words`-word records (see Cache::ScanRange). These back the
  /// buffered Scanner/Writer in em/array.h: same IoStats as the element-wise
  /// path, a fraction of the bookkeeping work.
  void ReadScan(Addr a, std::size_t words, std::size_t elem_words, void* out) {
    if (!cache_.staged()) {
      cache_.ScanRange(a, words, elem_words, /*write=*/false);
      std::memcpy(out, device_.direct_view() + a, words * sizeof(Word));
    } else {
      cache_.ReadScan(a, words, elem_words, out);
    }
    if (probe_ != nullptr && cache_.counting()) {
      probe_->ScanRange(a, words, elem_words, /*write=*/false);
    }
  }

  /// The charge half of ReadScan alone: registers the element-wise forward
  /// scan without moving any data (callers already hold the records).
  void TouchScan(Addr a, std::size_t words, std::size_t elem_words) {
    cache_.ScanRange(a, words, elem_words, /*write=*/false);
    if (probe_ != nullptr && cache_.counting()) {
      probe_->ScanRange(a, words, elem_words, /*write=*/false);
    }
  }

  void WriteScan(Addr a, std::size_t words, std::size_t elem_words,
                 const void* in) {
    if (!cache_.staged()) {
      cache_.ScanRange(a, words, elem_words, /*write=*/true);
      std::memcpy(device_.direct_view() + a, in, words * sizeof(Word));
    } else {
      cache_.WriteScan(a, words, elem_words, in);
    }
    if (probe_ != nullptr && cache_.counting()) {
      probe_->ScanRange(a, words, elem_words, /*write=*/true);
    }
  }

  /// Memory-backend pointer to device word `a` (the raw simulator view), or
  /// nullptr when the device stages real data. Callers pair it with explicit
  /// TouchRange charges to keep IoStats exact while skipping the per-record
  /// copy chain (see Array::MemRef). Invalidated by Alloc.
  Word* DirectData(Addr a) {
    return cache_.staged() ? nullptr : device_.direct_view() + a;
  }

  /// Pins the cache line containing `addr` and returns a handle exposing its
  /// B-word buffer (see PinnedLine). Charges like Touch(addr, write); a write
  /// pin marks the line dirty so buffer edits reach the backend on eventual
  /// write-back. Counting must be enabled.
  PinnedLine PinLine(Addr addr, bool write) {
    std::int32_t s = cache_.Pin(addr, write);
    const Addr base = addr - addr % cfg_.block_words;
    Word* data = cache_.staged() ? cache_.slot_buffer(s)
                                 : device_.direct_view() + base;
    if (probe_ != nullptr) probe_->Touch(addr, write);
    return PinnedLine(&cache_, s, data, base, cfg_.block_words);
  }

  /// Attaches a second, passive LRU cache observing the same access stream —
  /// the paper's multilevel-cache corollary (a cache-oblivious algorithm is
  /// simultaneously optimal at every level of an LRU hierarchy) becomes
  /// directly measurable: one run, two levels, two miss counts.
  void AttachProbe(std::size_t memory_words, std::size_t block_words) {
    probe_ = std::make_unique<Cache>(memory_words, block_words);
  }
  Cache* probe() { return probe_.get(); }

  /// Internal memory size M in words. Only cache-aware algorithms may
  /// consult this.
  std::size_t memory_words() const { return cfg_.memory_words; }

  /// Block size B in words. Only cache-aware algorithms may consult this.
  std::size_t block_words() const { return cfg_.block_words; }

  const EmConfig& config() const { return cfg_; }

  /// Allocates `n` elements of T on the device, block-aligned.
  /// (Declared here; defined in array.h to avoid a cyclic include.)
  template <typename T>
  Array<T> Alloc(std::size_t n);

  /// Opens a device allocation region (freed when the returned object dies).
  DeviceRegion Region() { return DeviceRegion(this); }

  /// Leases `words` of host scratch; aborts if the total would exceed M.
  ScratchLease LeaseScratch(std::size_t words) { return ScratchLease(this, words); }
  std::size_t scratch_in_use() const { return scratch_used_; }

  /// Internal-work counter (RAM operations), for the paper's O(E^{3/2}) work
  /// optimality remark.
  void AddWork(std::uint64_t n) { work_ += n; }
  std::uint64_t work() const { return work_; }
  void ResetWork() { work_ = 0; }

 private:
  friend class ScratchLease;
  friend class DeviceRegion;

  EmConfig cfg_;
  Device device_;
  Cache cache_;
  std::unique_ptr<Cache> probe_;
  std::size_t scratch_used_ = 0;
  std::uint64_t work_ = 0;
};

}  // namespace trienum::em

#endif  // TRIENUM_EM_CONTEXT_H_
