// The state model of the external-memory layer, split by lifetime:
//
//   * GraphStore — graph-lifetime state: the device (memory- or file-backed,
//     see em/storage.h), the LRU cache with its geometry (M, B), and the
//     optional probe cache. One store holds one resident data set (typically
//     a normalized graph) and serves any number of queries over it.
//
//   * QuerySession — query-lifetime state: scratch-memory accounting, the
//     internal-work counter, the RNG seed and the scan-mode preference of
//     one measured run. A session borrows a GraphStore and forwards its data
//     path, so algorithm code sees one handle. Sessions are cheap; reusing
//     one across queries is equivalent (bit-for-bit, including IoStats) to a
//     fresh session per query as long as each query starts cold
//     (Cache::Reset) and releases its device region.
//
//   * Context — the historical fused object, kept as "a store plus one
//     session over it": it owns a GraphStore and IS-A QuerySession. Existing
//     single-run call sites (tests, benches, examples) construct a Context
//     and hand it to algorithms, which take QuerySession&.
//
// See README.md "Query sessions" for the lifetime rules and what is charged
// when.
#ifndef TRIENUM_EM_CONTEXT_H_
#define TRIENUM_EM_CONTEXT_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>

#include "common/status.h"
#include "em/cache.h"
#include "em/defs.h"
#include "em/device.h"

namespace trienum::em {

class GraphStore;
class QuerySession;

// Typed device array; defined in array.h.
template <typename T>
class Array;

/// \brief RAII accounting of host-side working buffers ("internal memory").
///
/// Cache-aware algorithms stage data in buffers of at most M words (run
/// formation, pivot chunks, merge heaps). Each such buffer takes a lease; the
/// session checks that the total leased at any instant never exceeds M, which
/// enforces the model's internal-memory budget. Cache-oblivious algorithms
/// lease only O(1)-sized buffers. Leases are query-lifetime state: they live
/// on the QuerySession, never on the store.
class ScratchLease {
 public:
  ScratchLease() = default;
  ScratchLease(QuerySession* session, std::size_t words);
  ~ScratchLease();
  ScratchLease(ScratchLease&& o) noexcept;
  ScratchLease& operator=(ScratchLease&& o) noexcept;
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  std::size_t words() const { return words_; }

 private:
  QuerySession* session_ = nullptr;
  std::size_t words_ = 0;
};

/// \brief RAII pin of one cache line, giving zero-copy access to its B
/// words.
///
/// While alive, the line is exempt from eviction, so `data()` stays valid:
/// it points at the staged line buffer (file backend) or straight into the
/// MemoryBackend's view. Obtained via GraphStore::PinLine, which charges
/// exactly one word touch; any further per-record charging is the caller's
/// job (via TouchRange), keeping IoStats independent of how the data is
/// physically reached. Do not allocate device memory while holding a pin (a
/// MemoryBackend grow may move the view).
class PinnedLine {
 public:
  PinnedLine() = default;
  PinnedLine(Cache* cache, std::int32_t slot, Word* data, Addr base,
             std::size_t words)
      : cache_(cache), slot_(slot), data_(data), base_(base), words_(words) {}
  ~PinnedLine() {
    if (cache_ != nullptr) cache_->Unpin(slot_);
  }
  PinnedLine(PinnedLine&& o) noexcept
      : cache_(o.cache_), slot_(o.slot_), data_(o.data_), base_(o.base_),
        words_(o.words_) {
    o.cache_ = nullptr;
  }
  PinnedLine& operator=(PinnedLine&& o) noexcept {
    if (this != &o) {
      if (cache_ != nullptr) cache_->Unpin(slot_);
      cache_ = o.cache_;
      slot_ = o.slot_;
      data_ = o.data_;
      base_ = o.base_;
      words_ = o.words_;
      o.cache_ = nullptr;
    }
    return *this;
  }
  PinnedLine(const PinnedLine&) = delete;
  PinnedLine& operator=(const PinnedLine&) = delete;

  /// The line's B words.
  Word* data() const { return data_; }
  /// Word address of data()[0].
  Addr base() const { return base_; }
  /// Line size in words (= B).
  std::size_t size_words() const { return words_; }

 private:
  Cache* cache_ = nullptr;
  std::int32_t slot_ = -1;
  Word* data_ = nullptr;
  Addr base_ = 0;
  std::size_t words_ = 0;
};

/// \brief RAII region of device allocations, popped on destruction.
class DeviceRegion {
 public:
  explicit DeviceRegion(GraphStore* store);
  ~DeviceRegion();
  DeviceRegion(const DeviceRegion&) = delete;
  DeviceRegion& operator=(const DeviceRegion&) = delete;

 private:
  GraphStore* store_;
  Addr mark_;
};

/// \brief Graph-lifetime state: device + backend + cache geometry (M, B).
///
/// The store is the data plane. Every em::Array is bound to a store (not to
/// a session), so arrays written by one session — e.g. the normalized graph
/// produced by an uncounted ingest — are readable by every later session
/// over the same store. The store outlives all of its sessions; it is
/// neither copyable nor movable (arrays and sessions hold pointers into it).
class GraphStore {
 public:
  explicit GraphStore(const EmConfig& cfg);
  ~GraphStore();
  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  Device& device() { return device_; }
  const Device& device() const { return device_; }
  Cache& cache() { return cache_; }
  const Cache& cache() const { return cache_; }

  /// Registers a word-range touch with the primary cache and, if attached,
  /// the passive probe cache.
  void TouchRange(Addr addr, std::size_t words, bool write) {
    cache_.TouchRange(addr, words, write);
    if (probe_ != nullptr && cache_.counting()) {
      probe_->TouchRange(addr, words, write);
    }
  }

  /// Reads `words` device words at `a` into `out`, charging I/Os exactly as
  /// a TouchRange of the same span. All em::Array accesses route through
  /// here (and WriteWords below), which is what makes the storage backend
  /// swappable: with a direct view (memory backend) this is a touch plus a
  /// memcpy; otherwise the staged cache moves real blocks.
  void ReadWords(Addr a, std::size_t words, void* out) {
    if (!cache_.staged()) {
      TouchRange(a, words, /*write=*/false);
      std::memcpy(out, device_.direct_view() + a, words * sizeof(Word));
    } else {
      cache_.ReadRange(a, words, out);
      if (probe_ != nullptr && cache_.counting()) {
        probe_->TouchRange(a, words, /*write=*/false);
      }
    }
  }

  /// Writes `words` device words at `a` from `in`; the I/O-accounting dual
  /// of ReadWords (sequential block-aligned writes are charged as pure
  /// output).
  void WriteWords(Addr a, std::size_t words, const void* in) {
    if (!cache_.staged()) {
      TouchRange(a, words, /*write=*/true);
      std::memcpy(device_.direct_view() + a, in, words * sizeof(Word));
    } else {
      cache_.WriteRange(a, words, in);
      if (probe_ != nullptr && cache_.counting()) {
        probe_->TouchRange(a, words, /*write=*/true);
      }
    }
  }

  /// Block-buffered stream transfers: move [a, a+words) in one call while
  /// charging the exact touch sequence of a record-by-record pass in
  /// `elem_words`-word records (see Cache::ScanRange). These back the
  /// buffered Scanner/Writer in em/array.h: same IoStats as the element-wise
  /// path, a fraction of the bookkeeping work.
  void ReadScan(Addr a, std::size_t words, std::size_t elem_words, void* out) {
    if (!cache_.staged()) {
      cache_.ScanRange(a, words, elem_words, /*write=*/false);
      std::memcpy(out, device_.direct_view() + a, words * sizeof(Word));
    } else {
      cache_.ReadScan(a, words, elem_words, out);
    }
    if (probe_ != nullptr && cache_.counting()) {
      probe_->ScanRange(a, words, elem_words, /*write=*/false);
    }
  }

  /// The charge half of ReadScan alone: registers the element-wise forward
  /// scan without moving any data (callers already hold the records).
  void TouchScan(Addr a, std::size_t words, std::size_t elem_words) {
    cache_.ScanRange(a, words, elem_words, /*write=*/false);
    if (probe_ != nullptr && cache_.counting()) {
      probe_->ScanRange(a, words, elem_words, /*write=*/false);
    }
  }

  void WriteScan(Addr a, std::size_t words, std::size_t elem_words,
                 const void* in) {
    if (!cache_.staged()) {
      cache_.ScanRange(a, words, elem_words, /*write=*/true);
      std::memcpy(device_.direct_view() + a, in, words * sizeof(Word));
    } else {
      cache_.WriteScan(a, words, elem_words, in);
    }
    if (probe_ != nullptr && cache_.counting()) {
      probe_->ScanRange(a, words, elem_words, /*write=*/true);
    }
  }

  /// Memory-backend pointer to device word `a` (the raw simulator view), or
  /// nullptr when the device stages real data. Callers pair it with explicit
  /// TouchRange charges to keep IoStats exact while skipping the per-record
  /// copy chain (see Array::MemRef). Invalidated by Alloc.
  Word* DirectData(Addr a) {
    return cache_.staged() ? nullptr : device_.direct_view() + a;
  }

  /// Pins the cache line containing `addr` and returns a handle exposing its
  /// B-word buffer (see PinnedLine). Charges like Touch(addr, write); a write
  /// pin marks the line dirty so buffer edits reach the backend on eventual
  /// write-back. Counting must be enabled.
  PinnedLine PinLine(Addr addr, bool write) {
    std::int32_t s = cache_.Pin(addr, write);
    const Addr base = addr - addr % cfg_.block_words;
    Word* data = cache_.staged() ? cache_.slot_buffer(s)
                                 : device_.direct_view() + base;
    if (probe_ != nullptr) probe_->Touch(addr, write);
    return PinnedLine(&cache_, s, data, base, cfg_.block_words);
  }

  /// Registers an upcoming sequential pass over device words
  /// [a, a+words) — the scan-advice hook. Scanner/Writer (and the merge in
  /// extsort) call this with their exact future access range; the backend
  /// turns it into madvise (MmapBackend) and the prefetcher, when attached,
  /// into background read-ahead. Advice is a pure hint: uncounted, never
  /// blocking, and bit-invisible to results and IoStats. Read-ahead is only
  /// accepted while counting is on — uncounted phases (ingest) bypass the
  /// line buffers, so staging their ranges could only waste reads.
  void Advise(Addr a, std::size_t words, AdviseKind kind) {
    device_.backend().Advise(a, words, kind);
    if (prefetch_ != nullptr && cache_.counting()) {
      prefetch_->Advise(a, words, kind);
    }
  }

  /// The attached read-ahead engine, or null (depth 0 / counting-only
  /// cache).
  LinePrefetcher* prefetcher() { return prefetch_.get(); }

  /// Lifetime-monotone prefetch counters (all zero when no engine is
  /// attached); query::RunQuery diffs snapshots into per-query stats.
  PrefetchStats prefetch_stats() const {
    return prefetch_ != nullptr ? prefetch_->stats() : PrefetchStats{};
  }

  /// Thread-safe snapshots of the backend's real-transfer / recovery
  /// counters. With prefetch workers alive these advance on I/O threads, so
  /// the read serializes under the pool's io_mutex; without a pool they are
  /// plain reads, same as ever.
  StorageTelemetry telemetry_snapshot() {
    if (prefetch_ == nullptr) return device_.backend().telemetry();
    std::lock_guard<std::mutex> io(prefetch_->io_mutex());
    return device_.backend().telemetry();
  }
  RecoveryStats recovery_snapshot() {
    if (prefetch_ == nullptr) return device_.backend().recovery();
    std::lock_guard<std::mutex> io(prefetch_->io_mutex());
    return device_.backend().recovery();
  }

  /// Attaches a second, passive LRU cache observing the same access stream —
  /// the paper's multilevel-cache corollary (a cache-oblivious algorithm is
  /// simultaneously optimal at every level of an LRU hierarchy) becomes
  /// directly measurable: one run, two levels, two miss counts.
  void AttachProbe(std::size_t memory_words, std::size_t block_words) {
    probe_ = std::make_unique<Cache>(memory_words, block_words);
  }
  Cache* probe() { return probe_.get(); }

  /// Internal memory size M in words. Only cache-aware algorithms may
  /// consult this.
  std::size_t memory_words() const { return cfg_.memory_words; }

  /// Block size B in words. Only cache-aware algorithms may consult this.
  std::size_t block_words() const { return cfg_.block_words; }

  const EmConfig& config() const { return cfg_; }

  /// Allocates `n` elements of T on the device, block-aligned. The returned
  /// array is bound to this store, not to any session.
  /// (Declared here; defined in array.h to avoid a cyclic include.)
  template <typename T>
  Array<T> Alloc(std::size_t n);

  /// Opens a device allocation region (freed when the returned object dies).
  DeviceRegion Region() { return DeviceRegion(this); }

 private:
  EmConfig cfg_;
  Device device_;
  Cache cache_;
  std::unique_ptr<Cache> probe_;
  // Declared last: destroyed first, so the I/O workers are joined while the
  // device/backend they read through are still alive.
  std::unique_ptr<LinePrefetcher> prefetch_;
};

/// \brief Query-lifetime state over a borrowed GraphStore.
///
/// Every EM algorithm in the library takes a QuerySession&: the session
/// forwards the store's data path unchanged and adds the per-query
/// accounting — host-scratch leases, the internal-work counter, the RNG
/// seed, and the preferred scan mode. Reusing one session for many queries
/// is supported and bit-identical to fresh sessions provided each query
/// starts cold (see query::RunQuery, which enforces the contract).
class QuerySession {
 public:
  explicit QuerySession(GraphStore& store)
      : store_(&store), seed_(store.config().seed) {}
  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  GraphStore& store() { return *store_; }
  const GraphStore& store() const { return *store_; }

  // --- forwarded data plane (graph-lifetime state) ---------------------
  Device& device() { return store_->device(); }
  Cache& cache() { return store_->cache(); }
  const Cache& cache() const {
    return static_cast<const GraphStore*>(store_)->cache();
  }
  void TouchRange(Addr addr, std::size_t words, bool write) {
    store_->TouchRange(addr, words, write);
  }
  void ReadWords(Addr a, std::size_t words, void* out) {
    store_->ReadWords(a, words, out);
  }
  void WriteWords(Addr a, std::size_t words, const void* in) {
    store_->WriteWords(a, words, in);
  }
  void ReadScan(Addr a, std::size_t words, std::size_t elem_words, void* out) {
    store_->ReadScan(a, words, elem_words, out);
  }
  void TouchScan(Addr a, std::size_t words, std::size_t elem_words) {
    store_->TouchScan(a, words, elem_words);
  }
  void WriteScan(Addr a, std::size_t words, std::size_t elem_words,
                 const void* in) {
    store_->WriteScan(a, words, elem_words, in);
  }
  Word* DirectData(Addr a) { return store_->DirectData(a); }
  void Advise(Addr a, std::size_t words, AdviseKind kind) {
    store_->Advise(a, words, kind);
  }
  PrefetchStats prefetch_stats() const { return store_->prefetch_stats(); }
  StorageTelemetry telemetry_snapshot() { return store_->telemetry_snapshot(); }
  RecoveryStats recovery_snapshot() { return store_->recovery_snapshot(); }
  PinnedLine PinLine(Addr addr, bool write) {
    return store_->PinLine(addr, write);
  }
  void AttachProbe(std::size_t memory_words, std::size_t block_words) {
    store_->AttachProbe(memory_words, block_words);
  }
  Cache* probe() { return store_->probe(); }
  std::size_t memory_words() const { return store_->memory_words(); }
  std::size_t block_words() const { return store_->block_words(); }
  const EmConfig& config() const { return store_->config(); }

  /// Allocates on the store's device (the array is store-bound; it may
  /// outlive this session if the caller intends graph-lifetime data).
  /// (Declared here; defined in array.h to avoid a cyclic include.)
  template <typename T>
  Array<T> Alloc(std::size_t n);

  DeviceRegion Region() { return store_->Region(); }

  // --- query-lifetime state --------------------------------------------
  /// Leases `words` of host scratch; aborts if the total would exceed M.
  ScratchLease LeaseScratch(std::size_t words) {
    return ScratchLease(this, words);
  }
  std::size_t scratch_in_use() const { return scratch_used_; }

  /// Internal-work counter (RAM operations), for the paper's O(E^{3/2}) work
  /// optimality remark.
  void AddWork(std::uint64_t n) { work_ += n; }
  std::uint64_t work() const { return work_; }
  void ResetWork() { work_ = 0; }

  /// Seed of this query's randomized components. Defaults to the store's
  /// configured master seed; a per-query override makes a reused session
  /// reproduce exactly what a fresh run with --seed=<s> would.
  std::uint64_t seed() const { return seed_; }
  void set_seed(std::uint64_t s) { seed_ = s; }

  /// Preferred Scanner/Writer data path for this query. Advisory: the
  /// process-wide default (em/array.h) is what Scanner/Writer constructors
  /// read; query::RunQuery installs this value via ScopedScanMode for the
  /// duration of the run.
  ScanMode scan_mode() const { return scan_mode_; }
  void set_scan_mode(ScanMode m) { scan_mode_ = m; }

 private:
  friend class ScratchLease;

  GraphStore* store_;
  std::size_t scratch_used_ = 0;
  std::uint64_t work_ = 0;
  std::uint64_t seed_ = 0;
  ScanMode scan_mode_ = ScanMode::kBuffered;
};

namespace internal {
/// Holds the store of a fused Context; a private base so it is constructed
/// before the QuerySession base that borrows it.
struct OwnedStore {
  explicit OwnedStore(const EmConfig& cfg) : store(cfg) {}
  GraphStore store;
};
}  // namespace internal

/// \brief The fused store + session: one device, one measured run.
///
/// Kept as the convenience type for single-query call sites (tests, benches,
/// examples): constructing a Context is exactly "make a GraphStore, open one
/// QuerySession over it". Long-lived services hold a GraphStore (via
/// query::LoadedGraph) and open sessions per query instead.
class Context : private internal::OwnedStore, public QuerySession {
 public:
  explicit Context(const EmConfig& cfg)
      : internal::OwnedStore(cfg), QuerySession(this->internal::OwnedStore::store) {}
};

}  // namespace trienum::em

#endif  // TRIENUM_EM_CONTEXT_H_
