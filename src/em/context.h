// Execution context binding together the device (memory- or file-backed,
// see em/storage.h), the LRU cache, the hierarchy parameters (M, B),
// scratch-memory accounting and the work counter. Every EM algorithm in the
// library takes a Context&.
#ifndef TRIENUM_EM_CONTEXT_H_
#define TRIENUM_EM_CONTEXT_H_

#include <cstdint>
#include <cstring>
#include <memory>

#include "common/status.h"
#include "em/cache.h"
#include "em/defs.h"
#include "em/device.h"

namespace trienum::em {

class Context;

// Typed device array; defined in array.h.
template <typename T>
class Array;

/// \brief RAII accounting of host-side working buffers ("internal memory").
///
/// Cache-aware algorithms stage data in buffers of at most M words (run
/// formation, pivot chunks, merge heaps). Each such buffer takes a lease; the
/// context checks that the total leased at any instant never exceeds M, which
/// enforces the model's internal-memory budget. Cache-oblivious algorithms
/// lease only O(1)-sized buffers.
class ScratchLease {
 public:
  ScratchLease() = default;
  ScratchLease(Context* ctx, std::size_t words);
  ~ScratchLease();
  ScratchLease(ScratchLease&& o) noexcept;
  ScratchLease& operator=(ScratchLease&& o) noexcept;
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  std::size_t words() const { return words_; }

 private:
  Context* ctx_ = nullptr;
  std::size_t words_ = 0;
};

/// \brief RAII region of device allocations, popped on destruction.
class DeviceRegion {
 public:
  explicit DeviceRegion(Context* ctx);
  ~DeviceRegion();
  DeviceRegion(const DeviceRegion&) = delete;
  DeviceRegion& operator=(const DeviceRegion&) = delete;

 private:
  Context* ctx_;
  Addr mark_;
};

/// \brief Simulation context: device + cache + (M, B) + counters.
class Context {
 public:
  explicit Context(const EmConfig& cfg);

  Device& device() { return device_; }
  Cache& cache() { return cache_; }
  const Cache& cache() const { return cache_; }

  /// Registers a word-range touch with the primary cache and, if attached,
  /// the passive probe cache.
  void TouchRange(Addr addr, std::size_t words, bool write) {
    cache_.TouchRange(addr, words, write);
    if (probe_ != nullptr && cache_.counting()) {
      probe_->TouchRange(addr, words, write);
    }
  }

  /// Reads `words` device words at `a` into `out`, charging I/Os exactly as
  /// a TouchRange of the same span. All em::Array accesses route through
  /// here (and WriteWords below), which is what makes the storage backend
  /// swappable: with a direct view (memory backend) this is a touch plus a
  /// memcpy; otherwise the staged cache moves real blocks.
  void ReadWords(Addr a, std::size_t words, void* out) {
    if (!cache_.staged()) {
      TouchRange(a, words, /*write=*/false);
      std::memcpy(out, device_.direct_view() + a, words * sizeof(Word));
    } else {
      cache_.ReadRange(a, words, out);
      if (probe_ != nullptr && cache_.counting()) {
        probe_->TouchRange(a, words, /*write=*/false);
      }
    }
  }

  /// Writes `words` device words at `a` from `in`; the I/O-accounting dual
  /// of ReadWords (sequential block-aligned writes are charged as pure
  /// output).
  void WriteWords(Addr a, std::size_t words, const void* in) {
    if (!cache_.staged()) {
      TouchRange(a, words, /*write=*/true);
      std::memcpy(device_.direct_view() + a, in, words * sizeof(Word));
    } else {
      cache_.WriteRange(a, words, in);
      if (probe_ != nullptr && cache_.counting()) {
        probe_->TouchRange(a, words, /*write=*/true);
      }
    }
  }

  /// Attaches a second, passive LRU cache observing the same access stream —
  /// the paper's multilevel-cache corollary (a cache-oblivious algorithm is
  /// simultaneously optimal at every level of an LRU hierarchy) becomes
  /// directly measurable: one run, two levels, two miss counts.
  void AttachProbe(std::size_t memory_words, std::size_t block_words) {
    probe_ = std::make_unique<Cache>(memory_words, block_words);
  }
  Cache* probe() { return probe_.get(); }

  /// Internal memory size M in words. Only cache-aware algorithms may
  /// consult this.
  std::size_t memory_words() const { return cfg_.memory_words; }

  /// Block size B in words. Only cache-aware algorithms may consult this.
  std::size_t block_words() const { return cfg_.block_words; }

  const EmConfig& config() const { return cfg_; }

  /// Allocates `n` elements of T on the device, block-aligned.
  /// (Declared here; defined in array.h to avoid a cyclic include.)
  template <typename T>
  Array<T> Alloc(std::size_t n);

  /// Opens a device allocation region (freed when the returned object dies).
  DeviceRegion Region() { return DeviceRegion(this); }

  /// Leases `words` of host scratch; aborts if the total would exceed M.
  ScratchLease LeaseScratch(std::size_t words) { return ScratchLease(this, words); }
  std::size_t scratch_in_use() const { return scratch_used_; }

  /// Internal-work counter (RAM operations), for the paper's O(E^{3/2}) work
  /// optimality remark.
  void AddWork(std::uint64_t n) { work_ += n; }
  std::uint64_t work() const { return work_; }
  void ResetWork() { work_ = 0; }

 private:
  friend class ScratchLease;
  friend class DeviceRegion;

  EmConfig cfg_;
  Device device_;
  Cache cache_;
  std::unique_ptr<Cache> probe_;
  std::size_t scratch_used_ = 0;
  std::uint64_t work_ = 0;
};

}  // namespace trienum::em

#endif  // TRIENUM_EM_CONTEXT_H_
