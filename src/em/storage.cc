#include "em/storage.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#endif

#include "obs/metrics.h"

namespace trienum::em {

namespace {

// Real-I/O latency seams. The histograms live in the process-wide registry
// and are resolved once; observing is a relaxed atomic bump around the
// actual transfer — never inside the counted charge sequence, which lives
// a layer up in the cache.
obs::Histogram& FileReadHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      obs::metric_names::kFileReadNs);
  return h;
}
obs::Histogram& FileWriteHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      obs::metric_names::kFileWriteNs);
  return h;
}
obs::Histogram& MmapReadHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      obs::metric_names::kMmapReadNs);
  return h;
}
obs::Histogram& MmapWriteHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      obs::metric_names::kMmapWriteNs);
  return h;
}

// Shared amortized-doubling capacity policy: both backends must grow
// identically so allocation behavior never depends on the backend.
std::size_t GrownCapacity(std::size_t current, std::size_t want) {
  std::size_t grown = current == 0 ? 1024 : current;
  while (grown < want) grown *= 2;
  return grown;
}

}  // namespace

// ---------------------------------------------------------------------------
// MemoryBackend

Status MemoryBackend::EnsureSize(std::size_t words) {
  if (words <= storage_.size()) return Status::OK();
  storage_.resize(GrownCapacity(storage_.size(), words), 0);
  ++grow_calls_;
  return Status::OK();
}

Status MemoryBackend::ReadWords(Addr addr, std::size_t words, Word* out) {
  // Reads past the current size yield zeros, matching a zero-initialized
  // store (the staged cache may fetch a whole line whose tail was never
  // allocated).
  std::size_t avail =
      addr < storage_.size()
          ? std::min(words, storage_.size() - static_cast<std::size_t>(addr))
          : 0;
  if (avail > 0) {
    std::memcpy(out, storage_.data() + addr, avail * sizeof(Word));
  }
  if (avail < words) std::memset(out + avail, 0, (words - avail) * sizeof(Word));
  ++telemetry_.read_calls;
  telemetry_.bytes_read += words * sizeof(Word);
  return Status::OK();
}

Status MemoryBackend::WriteWords(Addr addr, std::size_t words, const Word* in) {
  TRIENUM_RETURN_NOT_OK(EnsureSize(static_cast<std::size_t>(addr) + words));
  std::memcpy(storage_.data() + addr, in, words * sizeof(Word));
  ++telemetry_.write_calls;
  telemetry_.bytes_written += words * sizeof(Word);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FileBackend

#ifndef _WIN32

// The file backend exists to hold devices far beyond RAM; a 32-bit off_t
// would silently wrap offsets past 2GB. Build with _FILE_OFFSET_BITS=64 on
// 32-bit platforms.
static_assert(sizeof(off_t) >= 8, "FileBackend needs 64-bit file offsets");

FileBackend::FileBackend(std::string dir) {
  if (dir.empty()) {
    const char* t = std::getenv("TMPDIR");
    dir = (t != nullptr && *t != '\0') ? t : "/tmp";
  }
  std::string tmpl_str = dir + "/trienum-device-XXXXXX";
  std::vector<char> tmpl(tmpl_str.begin(), tmpl_str.end());
  tmpl.push_back('\0');
  fd_ = ::mkstemp(tmpl.data());
  if (fd_ < 0) {
    // Constructors cannot return a Status; latch it and fail every later
    // operation. Callers check init_status() before first use.
    init_status_ = Status::IoError("FileBackend: mkstemp in '" + dir +
                                   "' failed: " + std::strerror(errno) +
                                   " (check --temp-dir)");
    return;
  }
  path_.assign(tmpl.data());
  // Unlink immediately: the fd keeps the storage alive, and the OS reclaims
  // it even if the process crashes.
  ::unlink(tmpl.data());
}

FileBackend::~FileBackend() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileBackend::EnsureSize(std::size_t words) {
  TRIENUM_RETURN_NOT_OK(init_status_);
  if (words <= size_words_) return Status::OK();
  std::size_t grown = GrownCapacity(size_words_, words);
  if (::ftruncate(fd_, static_cast<off_t>(grown * sizeof(Word))) != 0) {
    return Status::IoError(std::string("FileBackend: ftruncate failed: ") +
                           std::strerror(errno));
  }
  size_words_ = grown;
  ++grow_calls_;
  return Status::OK();
}

Status FileBackend::ReadWords(Addr addr, std::size_t words, Word* out) {
  TRIENUM_RETURN_NOT_OK(init_status_);
  obs::LatencyTimer timer(FileReadHist());
  std::size_t nbytes = words * sizeof(Word);
  off_t off = static_cast<off_t>(addr * sizeof(Word));
  char* dst = reinterpret_cast<char*>(out);
  while (nbytes > 0) {
    ssize_t got = ::pread(fd_, dst, nbytes, off);
    if (got < 0 && errno == EINTR) continue;
    if (got < 0) {
      return Status::IoError(std::string("FileBackend: pread failed: ") +
                             std::strerror(errno));
    }
    ++telemetry_.read_calls;
    if (got == 0) {
      // Past EOF: never-written words read as zero (ftruncate holes do the
      // same in-range, so the whole address space is zero-initialized).
      std::memset(dst, 0, nbytes);
      break;
    }
    telemetry_.bytes_read += static_cast<std::uint64_t>(got);
    dst += got;
    off += got;
    nbytes -= static_cast<std::size_t>(got);
  }
  return Status::OK();
}

Status FileBackend::WriteWords(Addr addr, std::size_t words, const Word* in) {
  TRIENUM_RETURN_NOT_OK(init_status_);
  obs::LatencyTimer timer(FileWriteHist());
  std::size_t nbytes = words * sizeof(Word);
  off_t off = static_cast<off_t>(addr * sizeof(Word));
  const char* src = reinterpret_cast<const char*>(in);
  // pwrite may legally write a short count (or 0 on some filesystems when
  // interrupted); loop on progress and only treat *persistent* zero-progress
  // or a hard errno as failure.
  int zero_progress = 0;
  while (nbytes > 0) {
    ssize_t put = ::pwrite(fd_, src, nbytes, off);
    if (put < 0 && errno == EINTR) continue;
    if (put < 0) {
      return Status::IoError(std::string("FileBackend: pwrite failed: ") +
                             std::strerror(errno));
    }
    if (put == 0) {
      if (++zero_progress >= 8) {
        return Status::IoError(
            "FileBackend: pwrite made no progress after 8 attempts");
      }
      continue;
    }
    zero_progress = 0;
    ++telemetry_.write_calls;
    telemetry_.bytes_written += static_cast<std::uint64_t>(put);
    src += put;
    off += put;
    nbytes -= static_cast<std::size_t>(put);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// MmapBackend

MmapBackend::MmapBackend(std::string dir) {
  if (dir.empty()) {
    const char* t = std::getenv("TMPDIR");
    dir = (t != nullptr && *t != '\0') ? t : "/tmp";
  }
  std::string tmpl_str = dir + "/trienum-mmap-XXXXXX";
  std::vector<char> tmpl(tmpl_str.begin(), tmpl_str.end());
  tmpl.push_back('\0');
  fd_ = ::mkstemp(tmpl.data());
  if (fd_ < 0) {
    init_status_ = Status::IoError("MmapBackend: mkstemp in '" + dir +
                                   "' failed: " + std::strerror(errno) +
                                   " (check --temp-dir)");
    return;
  }
  path_.assign(tmpl.data());
  ::unlink(tmpl.data());
}

MmapBackend::~MmapBackend() {
  if (map_ != nullptr) ::munmap(map_, size_words_ * sizeof(Word));
  if (fd_ >= 0) ::close(fd_);
}

Status MmapBackend::EnsureSize(std::size_t words) {
  TRIENUM_RETURN_NOT_OK(init_status_);
  if (words <= size_words_) return Status::OK();
  std::size_t grown = GrownCapacity(size_words_, words);
  if (::ftruncate(fd_, static_cast<off_t>(grown * sizeof(Word))) != 0) {
    return Status::IoError(std::string("MmapBackend: ftruncate failed: ") +
                           std::strerror(errno));
  }
  // Remap at the new size: mmap has no portable in-place grow, and the
  // DirectView contract already declares the pointer invalidated by
  // EnsureSize. Holes from ftruncate read as zero, matching the other
  // backends' zero-initialized address space.
  void* remapped = ::mmap(nullptr, grown * sizeof(Word),
                          PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  if (remapped == MAP_FAILED) {
    return Status::IoError(std::string("MmapBackend: mmap failed: ") +
                           std::strerror(errno));
  }
  if (map_ != nullptr) ::munmap(map_, size_words_ * sizeof(Word));
  map_ = static_cast<Word*>(remapped);
  size_words_ = grown;
  ++grow_calls_;
  return Status::OK();
}

Status MmapBackend::ReadWords(Addr addr, std::size_t words, Word* out) {
  TRIENUM_RETURN_NOT_OK(init_status_);
  obs::LatencyTimer timer(MmapReadHist());
  // Same semantics as MemoryBackend: reads past the current size yield
  // zeros (the staged cache may fetch a whole line whose tail was never
  // allocated). Only used when fault decorators wrap this backend and force
  // staged mode; the unwrapped path goes through DirectView.
  std::size_t avail =
      addr < size_words_
          ? std::min(words, size_words_ - static_cast<std::size_t>(addr))
          : 0;
  if (avail > 0) std::memcpy(out, map_ + addr, avail * sizeof(Word));
  if (avail < words) std::memset(out + avail, 0, (words - avail) * sizeof(Word));
  ++telemetry_.read_calls;
  telemetry_.bytes_read += words * sizeof(Word);
  return Status::OK();
}

Status MmapBackend::WriteWords(Addr addr, std::size_t words, const Word* in) {
  TRIENUM_RETURN_NOT_OK(EnsureSize(static_cast<std::size_t>(addr) + words));
  obs::LatencyTimer timer(MmapWriteHist());
  std::memcpy(map_ + addr, in, words * sizeof(Word));
  ++telemetry_.write_calls;
  telemetry_.bytes_written += words * sizeof(Word);
  return Status::OK();
}

void MmapBackend::Advise(Addr addr, std::size_t words, AdviseKind kind) {
  if (map_ == nullptr || words == 0 || addr >= size_words_) return;
  words = std::min(words, size_words_ - static_cast<std::size_t>(addr));
  // madvise wants a page-aligned start; round the byte range outward.
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) return;
  const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(map_);
  std::uintptr_t lo = base + addr * sizeof(Word);
  std::uintptr_t hi = lo + words * sizeof(Word);
  lo -= lo % static_cast<std::uintptr_t>(page);
  // Advice is best-effort: errors are ignored (the hint simply has no
  // effect), and it never counts toward any telemetry.
  ::madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_SEQUENTIAL);
  if (kind == AdviseKind::kSequentialRead) {
    ::madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_WILLNEED);
  }
}

#else  // _WIN32

FileBackend::FileBackend(std::string) {
  init_status_ = Status::IoError("FileBackend requires a POSIX platform");
}
FileBackend::~FileBackend() = default;
Status FileBackend::EnsureSize(std::size_t) { return init_status_; }
Status FileBackend::ReadWords(Addr, std::size_t, Word*) { return init_status_; }
Status FileBackend::WriteWords(Addr, std::size_t, const Word*) {
  return init_status_;
}

MmapBackend::MmapBackend(std::string) {
  init_status_ = Status::IoError("MmapBackend requires a POSIX platform");
}
MmapBackend::~MmapBackend() = default;
Status MmapBackend::EnsureSize(std::size_t) { return init_status_; }
Status MmapBackend::ReadWords(Addr, std::size_t, Word*) { return init_status_; }
Status MmapBackend::WriteWords(Addr, std::size_t, const Word*) {
  return init_status_;
}
void MmapBackend::Advise(Addr, std::size_t, AdviseKind) {}

#endif  // _WIN32

std::unique_ptr<StorageBackend> MakeStorageBackend(const EmConfig& cfg) {
  std::unique_ptr<StorageBackend> backend;
  switch (cfg.storage) {
    case StorageKind::kFile:
      backend = std::make_unique<FileBackend>(cfg.temp_dir);
      break;
    case StorageKind::kMemory:
      backend = std::make_unique<MemoryBackend>();
      break;
    case StorageKind::kMmap:
      backend = std::make_unique<MmapBackend>(cfg.temp_dir);
      break;
  }
  if (cfg.wrap_backend) backend = cfg.wrap_backend(std::move(backend));
  return backend;
}

}  // namespace trienum::em
