#include "em/cache.h"

#include <algorithm>

namespace trienum::em {

Cache::Cache(std::size_t memory_words, std::size_t block_words)
    : memory_words_(memory_words), block_words_(block_words) {
  TRIENUM_CHECK(block_words_ > 0);
  num_slots_ = std::max<std::size_t>(1, memory_words_ / block_words_);
  slots_.resize(num_slots_);
  for (std::size_t i = 0; i < num_slots_; ++i) {
    slots_[i].line = -1;
    slots_[i].dirty = false;
    slots_[i].next = static_cast<std::int32_t>(i) + 1;
    slots_[i].prev = -1;
  }
  slots_[num_slots_ - 1].next = -1;
  free_head_ = 0;
}

std::int32_t Cache::Lookup(std::int64_t line) const {
  if (static_cast<std::size_t>(line) >= where_.size()) return -1;
  return where_[static_cast<std::size_t>(line)];
}

void Cache::Unlink(std::int32_t s) {
  Slot& slot = slots_[s];
  if (slot.prev >= 0) slots_[slot.prev].next = slot.next;
  if (slot.next >= 0) slots_[slot.next].prev = slot.prev;
  if (head_ == s) head_ = slot.next;
  if (tail_ == s) tail_ = slot.prev;
}

void Cache::PushFront(std::int32_t s) {
  slots_[s].prev = -1;
  slots_[s].next = head_;
  if (head_ >= 0) slots_[head_].prev = s;
  head_ = s;
  if (tail_ < 0) tail_ = s;
}

void Cache::MoveToFront(std::int32_t s) {
  if (head_ == s) return;
  Unlink(s);
  PushFront(s);
}

std::int32_t Cache::GrabSlot() {
  if (free_head_ >= 0) {
    std::int32_t s = free_head_;
    free_head_ = slots_[s].next;
    return s;
  }
  // Evict the least-recently-used line.
  std::int32_t s = tail_;
  TRIENUM_CHECK(s >= 0);
  Unlink(s);
  if (slots_[s].dirty) ++stats_.block_writes;
  where_[static_cast<std::size_t>(slots_[s].line)] = -1;
  slots_[s].line = -1;
  slots_[s].dirty = false;
  return s;
}

void Cache::TouchLine(std::int64_t line, bool write, bool aligned_write) {
  if (line == last_line_ && head_ >= 0 && slots_[head_].line == line) {
    // Fast path: streaming access to the MRU line.
    slots_[head_].dirty |= write;
    ++stats_.cache_hits;
    return;
  }
  std::int32_t s = Lookup(line);
  if (s >= 0) {
    MoveToFront(s);
    slots_[s].dirty |= write;
    ++stats_.cache_hits;
  } else {
    s = GrabSlot();
    if (static_cast<std::size_t>(line) >= where_.size()) {
      where_.resize(std::max<std::size_t>(where_.size() * 2,
                                          static_cast<std::size_t>(line) + 1),
                    -1);
    }
    where_[static_cast<std::size_t>(line)] = s;
    slots_[s].line = line;
    if (write && aligned_write) {
      // Fresh full-line output: allocate without fetching.
      slots_[s].dirty = true;
    } else {
      ++stats_.block_reads;
      slots_[s].dirty = write;
    }
    PushFront(s);
  }
  last_line_ = line;
}

void Cache::TouchRange(Addr addr, std::size_t words, bool write) {
  if (!counting_ || words == 0) return;
  std::int64_t first = static_cast<std::int64_t>(addr / block_words_);
  std::int64_t last = static_cast<std::int64_t>((addr + words - 1) / block_words_);
  for (std::int64_t line = first; line <= last; ++line) {
    bool aligned = write && (line > first || addr % block_words_ == 0);
    TouchLine(line, write, aligned);
  }
}

void Cache::FlushAll() {
  for (std::int32_t s = head_; s >= 0;) {
    std::int32_t next = slots_[s].next;
    if (slots_[s].dirty && counting_) ++stats_.block_writes;
    where_[static_cast<std::size_t>(slots_[s].line)] = -1;
    slots_[s].line = -1;
    slots_[s].dirty = false;
    slots_[s].prev = -1;
    slots_[s].next = free_head_;
    free_head_ = s;
    s = next;
  }
  head_ = tail_ = -1;
  last_line_ = -1;
}

void Cache::Reset() {
  bool saved = counting_;
  counting_ = false;
  FlushAll();
  counting_ = saved;
  stats_ = IoStats{};
}

bool Cache::IsResident(Addr addr) const {
  return Lookup(static_cast<std::int64_t>(addr / block_words_)) >= 0;
}

}  // namespace trienum::em
