#include "em/cache.h"

#include <algorithm>
#include <cstring>

namespace trienum::em {

Cache::Cache(std::size_t memory_words, std::size_t block_words,
             StorageBackend* staging)
    : memory_words_(memory_words), block_words_(block_words), staging_(staging) {
  TRIENUM_CHECK(block_words_ > 0);
  num_slots_ = std::max<std::size_t>(1, memory_words_ / block_words_);
  slots_.resize(num_slots_);
  for (std::size_t i = 0; i < num_slots_; ++i) {
    slots_[i].line = -1;
    slots_[i].dirty = false;
    slots_[i].next = static_cast<std::int32_t>(i) + 1;
    slots_[i].prev = -1;
  }
  slots_[num_slots_ - 1].next = -1;
  free_head_ = 0;
  if (staging_ != nullptr) {
    // Resident line buffers: the only device *data* kept in RAM, so data
    // residency is O(M). (The line-to-slot map `where_` still grows with the
    // touched address range — one int32 per device line — which caps how far
    // beyond RAM a device can go; see ROADMAP.)
    line_data_.resize(num_slots_ * block_words_, 0);
  }
}

std::int32_t Cache::Lookup(std::int64_t line) const {
  if (static_cast<std::size_t>(line) >= where_.size()) return -1;
  return where_[static_cast<std::size_t>(line)];
}

void Cache::Unlink(std::int32_t s) {
  Slot& slot = slots_[s];
  if (slot.prev >= 0) slots_[slot.prev].next = slot.next;
  if (slot.next >= 0) slots_[slot.next].prev = slot.prev;
  if (head_ == s) head_ = slot.next;
  if (tail_ == s) tail_ = slot.prev;
}

void Cache::PushFront(std::int32_t s) {
  slots_[s].prev = -1;
  slots_[s].next = head_;
  if (head_ >= 0) slots_[head_].prev = s;
  head_ = s;
  if (tail_ < 0) tail_ = s;
}

void Cache::MoveToFront(std::int32_t s) {
  if (head_ == s) return;
  Unlink(s);
  PushFront(s);
}

std::int32_t Cache::GrabSlot() {
  if (free_head_ >= 0) {
    std::int32_t s = free_head_;
    free_head_ = slots_[s].next;
    return s;
  }
  // Evict the least-recently-used line.
  std::int32_t s = tail_;
  TRIENUM_CHECK(s >= 0);
  Unlink(s);
  if (slots_[s].dirty) {
    if (staging_ != nullptr) {
      staging_->WriteWords(static_cast<Addr>(slots_[s].line) * block_words_,
                           block_words_, line_buf(s));
    }
    ++stats_.block_writes;
  }
  where_[static_cast<std::size_t>(slots_[s].line)] = -1;
  slots_[s].line = -1;
  slots_[s].dirty = false;
  return s;
}

std::int32_t Cache::TouchLine(std::int64_t line, bool write, bool aligned_write,
                              bool fetch) {
  if (line == last_line_ && head_ >= 0 && slots_[head_].line == line) {
    // Fast path: streaming access to the MRU line.
    slots_[head_].dirty |= write;
    ++stats_.cache_hits;
    return head_;
  }
  std::int32_t s = Lookup(line);
  if (s >= 0) {
    MoveToFront(s);
    slots_[s].dirty |= write;
    ++stats_.cache_hits;
  } else {
    s = GrabSlot();
    if (static_cast<std::size_t>(line) >= where_.size()) {
      where_.resize(std::max<std::size_t>(where_.size() * 2,
                                          static_cast<std::size_t>(line) + 1),
                    -1);
    }
    where_[static_cast<std::size_t>(line)] = s;
    slots_[s].line = line;
    if (staging_ != nullptr && fetch) {
      // Real block fetch. Deliberately independent of the charging decision
      // below: a block-aligned fresh write is not charged a read by the
      // model, but a partially-covered line must still be loaded so its
      // untouched words survive the eventual write-back.
      staging_->ReadWords(static_cast<Addr>(line) * block_words_, block_words_,
                          line_buf(s));
    }
    if (write && aligned_write) {
      // Fresh full-line output: allocate without charging a fetch.
      slots_[s].dirty = true;
    } else {
      ++stats_.block_reads;
      slots_[s].dirty = write;
    }
    PushFront(s);
  }
  last_line_ = line;
  return s;
}

void Cache::TouchRange(Addr addr, std::size_t words, bool write) {
  if (!counting_ || words == 0) return;
  std::int64_t first = static_cast<std::int64_t>(addr / block_words_);
  std::int64_t last = static_cast<std::int64_t>((addr + words - 1) / block_words_);
  for (std::int64_t line = first; line <= last; ++line) {
    bool aligned = write && (line > first || addr % block_words_ == 0);
    // Data-less touch: always fetch on a staged miss, since we cannot know
    // which words the caller will overwrite.
    TouchLine(line, write, aligned, /*fetch=*/true);
  }
}

void Cache::ReadRange(Addr addr, std::size_t words, void* out) {
  TRIENUM_CHECK_MSG(staging_ != nullptr, "ReadRange requires staged mode");
  if (words == 0) return;
  char* dst = static_cast<char*>(out);
  const Addr end = addr + words;
  std::int64_t first = static_cast<std::int64_t>(addr / block_words_);
  std::int64_t last = static_cast<std::int64_t>((end - 1) / block_words_);
  if (!counting_) {
    // Uncounted bypass: no insertion, no recency update, no counters —
    // exactly like the simulator's raw pointer. Resident lines are served
    // from their buffer (the authoritative copy when dirty); maximal runs
    // of non-resident lines coalesce into one backend read each, so a bulk
    // upload/download costs O(1) syscalls, not one per line.
    Addr run_start = addr;  // pending non-resident span [run_start, ...)
    for (std::int64_t line = first; line <= last; ++line) {
      Addr line_base = static_cast<Addr>(line) * block_words_;
      std::int32_t s = Lookup(line);
      if (s < 0) continue;
      Addr lo = std::max<Addr>(addr, line_base);
      Addr hi = std::min<Addr>(end, line_base + block_words_);
      if (lo > run_start) {
        staging_->ReadWords(run_start, static_cast<std::size_t>(lo - run_start),
                            reinterpret_cast<Word*>(dst + (run_start - addr) * sizeof(Word)));
      }
      std::memcpy(dst + (lo - addr) * sizeof(Word), line_buf(s) + (lo - line_base),
                  static_cast<std::size_t>(hi - lo) * sizeof(Word));
      run_start = hi;
    }
    if (end > run_start) {
      staging_->ReadWords(run_start, static_cast<std::size_t>(end - run_start),
                          reinterpret_cast<Word*>(dst + (run_start - addr) * sizeof(Word)));
    }
    return;
  }
  for (std::int64_t line = first; line <= last; ++line) {
    Addr line_base = static_cast<Addr>(line) * block_words_;
    Addr lo = std::max<Addr>(addr, line_base);
    Addr hi = std::min<Addr>(end, line_base + block_words_);
    std::size_t n = static_cast<std::size_t>(hi - lo);
    std::int32_t s = TouchLine(line, /*write=*/false, /*aligned_write=*/false,
                               /*fetch=*/true);
    std::memcpy(dst, line_buf(s) + (lo - line_base), n * sizeof(Word));
    dst += n * sizeof(Word);
  }
}

void Cache::WriteRange(Addr addr, std::size_t words, const void* in) {
  TRIENUM_CHECK_MSG(staging_ != nullptr, "WriteRange requires staged mode");
  if (words == 0) return;
  const char* src = static_cast<const char*>(in);
  const Addr end = addr + words;
  std::int64_t first = static_cast<std::int64_t>(addr / block_words_);
  std::int64_t last = static_cast<std::int64_t>((end - 1) / block_words_);
  if (!counting_) {
    // Uncounted write: one write-through of the whole range (so a clean
    // line can later be dropped without losing this data, at O(1) syscalls
    // for bulk uploads), plus buffer updates for any resident lines so they
    // stay authoritative. Dirty flags and recency stay untouched, so the
    // counted-region IoStats remain identical to the simulator's.
    staging_->WriteWords(addr, words, reinterpret_cast<const Word*>(src));
    for (std::int64_t line = first; line <= last; ++line) {
      std::int32_t s = Lookup(line);
      if (s < 0) continue;
      Addr line_base = static_cast<Addr>(line) * block_words_;
      Addr lo = std::max<Addr>(addr, line_base);
      Addr hi = std::min<Addr>(end, line_base + block_words_);
      std::memcpy(line_buf(s) + (lo - line_base), src + (lo - addr) * sizeof(Word),
                  static_cast<std::size_t>(hi - lo) * sizeof(Word));
    }
    return;
  }
  for (std::int64_t line = first; line <= last; ++line) {
    Addr line_base = static_cast<Addr>(line) * block_words_;
    Addr lo = std::max<Addr>(addr, line_base);
    Addr hi = std::min<Addr>(end, line_base + block_words_);
    std::size_t n = static_cast<std::size_t>(hi - lo);
    // Same charging rule as TouchRange: a write starting at a line boundary
    // is "aligned" (no read charged); the block is still fetched unless this
    // write covers the whole line.
    bool aligned = lo == line_base;
    bool full_cover = n == block_words_;
    std::int32_t s =
        TouchLine(line, /*write=*/true, aligned, /*fetch=*/!full_cover);
    std::memcpy(line_buf(s) + (lo - line_base), src, n * sizeof(Word));
    src += n * sizeof(Word);
  }
}

void Cache::FlushAll() {
  for (std::int32_t s = head_; s >= 0;) {
    std::int32_t next = slots_[s].next;
    if (slots_[s].dirty) {
      if (staging_ != nullptr) {
        // Data is never dropped, even when the flush itself is uncounted
        // (e.g. Reset between phases).
        staging_->WriteWords(static_cast<Addr>(slots_[s].line) * block_words_,
                             block_words_, line_buf(s));
      }
      if (counting_) ++stats_.block_writes;
    }
    where_[static_cast<std::size_t>(slots_[s].line)] = -1;
    slots_[s].line = -1;
    slots_[s].dirty = false;
    slots_[s].prev = -1;
    slots_[s].next = free_head_;
    free_head_ = s;
    s = next;
  }
  head_ = tail_ = -1;
  last_line_ = -1;
}

void Cache::Reset() {
  bool saved = counting_;
  counting_ = false;
  FlushAll();
  counting_ = saved;
  stats_ = IoStats{};
}

bool Cache::IsResident(Addr addr) const {
  return Lookup(static_cast<std::int64_t>(addr / block_words_)) >= 0;
}

}  // namespace trienum::em
