#include "em/cache.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <mutex>

namespace trienum::em {

void Cache::StagedRead(Addr addr, std::size_t words, Word* out) {
  if (fault_.ok()) {
    Status st;
    if (prefetch_ != nullptr) {
      // Backends (and the fault decorators) are not thread-safe; with
      // prefetch workers alive, every backend call serializes under the
      // pool's io_mutex. Overlap comes from prefetch I/O running while the
      // host computes, not from parallel I/O.
      std::lock_guard<std::mutex> io(prefetch_->io_mutex());
      st = staging_->ReadWords(addr, words, out);
    } else {
      st = staging_->ReadWords(addr, words, out);
    }
    if (st.ok()) return;
    fault_ = st;
  }
  // Latched: zero-fill so callers see deterministic data, then either
  // propagate or — mid-unwind, where throwing would terminate — rely on the
  // latch (checked by RunQuery after the plan exits).
  std::memset(out, 0, words * sizeof(Word));
  if (std::uncaught_exceptions() == 0) throw IoFault(fault_);
}

void Cache::StagedWrite(Addr addr, std::size_t words, const Word* in) {
  if (fault_.ok()) {
    Status st;
    if (prefetch_ != nullptr) {
      {
        std::lock_guard<std::mutex> io(prefetch_->io_mutex());
        st = staging_->WriteWords(addr, words, in);
      }
      // Coherence: staged read-ahead overlapping this write is now stale.
      // Invalidate even on failure — a short write may have landed a prefix.
      prefetch_->Invalidate(addr, words);
    } else {
      st = staging_->WriteWords(addr, words, in);
    }
    if (st.ok()) return;
    fault_ = st;
  }
  if (std::uncaught_exceptions() == 0) throw IoFault(fault_);
}

void Cache::FetchLine(std::int64_t line, Word* out) {
  const Addr addr = static_cast<Addr>(line) * block_words_;
  if (prefetch_ != nullptr && fault_.ok() &&
      prefetch_->Consume(addr, block_words_, out)) {
    // Served from staging: the physical read already happened on a worker,
    // through the same decorated backend a demand read would use. A failed
    // worker read is never consumed — the demand path below re-issues it so
    // fault latching and retry semantics stay on the counted path.
    return;
  }
  StagedRead(addr, block_words_, out);
}

Cache::Cache(std::size_t memory_words, std::size_t block_words,
             StorageBackend* staging, std::size_t line_map_dense_limit)
    : memory_words_(memory_words),
      block_words_(block_words),
      where_(line_map_dense_limit),
      staging_(staging) {
  TRIENUM_CHECK(block_words_ > 0);
  if ((block_words_ & (block_words_ - 1)) == 0) {
    line_shift_ = 0;
    while ((std::size_t{1} << line_shift_) < block_words_) ++line_shift_;
  }
  num_slots_ = std::max<std::size_t>(1, memory_words_ / block_words_);
  slots_.resize(num_slots_);
  for (std::size_t i = 0; i < num_slots_; ++i) {
    slots_[i].line = -1;
    slots_[i].dirty = false;
    slots_[i].pins = 0;
    slots_[i].next = static_cast<std::int32_t>(i) + 1;
    slots_[i].prev = -1;
  }
  slots_[num_slots_ - 1].next = -1;
  free_head_ = 0;
  if (staging_ != nullptr) {
    // Resident line buffers: the only device *data* kept in RAM, so data
    // residency is O(M). The line-to-slot map is dense (one int32 per device
    // line) only below the configured limit; past it, a hash map over the
    // resident lines keeps host memory independent of device size.
    line_data_.resize(num_slots_ * block_words_, 0);
  }
}

void Cache::Unlink(std::int32_t s) {
  Slot& slot = slots_[s];
  if (slot.prev >= 0) slots_[slot.prev].next = slot.next;
  if (slot.next >= 0) slots_[slot.next].prev = slot.prev;
  if (head_ == s) head_ = slot.next;
  if (tail_ == s) tail_ = slot.prev;
}

void Cache::PushFront(std::int32_t s) {
  slots_[s].prev = -1;
  slots_[s].next = head_;
  if (head_ >= 0) slots_[head_].prev = s;
  head_ = s;
  if (tail_ < 0) tail_ = s;
}

void Cache::MoveToFront(std::int32_t s) {
  if (head_ == s) return;
  Unlink(s);
  PushFront(s);
}

std::int32_t Cache::GrabSlot() {
  if (free_head_ >= 0) {
    std::int32_t s = free_head_;
    free_head_ = slots_[s].next;
    return s;
  }
  // Evict the least-recently-used *unpinned* line.
  std::int32_t s = tail_;
  while (s >= 0 && slots_[s].pins > 0) s = slots_[s].prev;
  TRIENUM_CHECK_MSG(s >= 0, "every cache line is pinned; cannot evict");
  Unlink(s);
  // Unmap before the write-back: StagedWrite can throw IoFault, and the
  // unwind may run more cache ops (Writer flushes) — the map and list must
  // already be consistent. A throw here leaks slot s until Discard().
  const std::int64_t evicted = slots_[s].line;
  const bool was_dirty = slots_[s].dirty;
  where_.Set(evicted, -1);
  slots_[s].line = -1;
  slots_[s].dirty = false;
  if (was_dirty) {
    ++stats_.block_writes;
    if (staging_ != nullptr) {
      StagedWrite(static_cast<Addr>(evicted) * block_words_, block_words_,
                  line_buf(s));
    }
  }
  return s;
}

std::int32_t Cache::TouchLine(std::int64_t line, bool write, bool aligned_write,
                              bool fetch) {
  if (line == last_line_ && head_ >= 0 && slots_[head_].line == line) {
    // Fast path: streaming access to the MRU line.
    slots_[head_].dirty |= write;
    ++stats_.cache_hits;
    return head_;
  }
  std::int32_t s = Lookup(line);
  if (s >= 0) {
    MoveToFront(s);
    slots_[s].dirty |= write;
    ++stats_.cache_hits;
  } else {
    s = GrabSlot();
    where_.Set(line, s);
    slots_[s].line = line;
    if (write && aligned_write) {
      // Fresh full-line output: allocate without charging a fetch.
      slots_[s].dirty = true;
    } else {
      ++stats_.block_reads;
      slots_[s].dirty = write;
    }
    PushFront(s);
    if (staging_ != nullptr && fetch) {
      // Real block fetch, after the slot is fully linked so an IoFault here
      // leaves the LRU state consistent. Deliberately independent of the
      // charging decision above: a block-aligned fresh write is not charged
      // a read by the model, but a partially-covered line must still be
      // loaded so its untouched words survive the eventual write-back.
      FetchLine(line, line_buf(s));
    }
  }
  last_line_ = line;
  return s;
}

void Cache::TouchRangeSlow(Addr addr, std::int64_t first, std::int64_t last,
                           bool write) {
  for (std::int64_t line = first; line <= last; ++line) {
    bool aligned = write && (line > first || OffsetIn(addr) == 0);
    // Data-less touch: always fetch on a staged miss, since we cannot know
    // which words the caller will overwrite.
    TouchLine(line, write, aligned, /*fetch=*/true);
  }
}

void Cache::ScanOp(Addr addr, std::size_t words, std::size_t elem_words,
                   ScanOpKind kind, void* out, const void* in) {
  TRIENUM_CHECK(elem_words > 0 && words % elem_words == 0);
  const bool write = kind == ScanOpKind::kWrite;
  const Addr end = addr + words;
  char* dst = static_cast<char*>(out);
  const char* src = static_cast<const char*>(in);
  std::int64_t first = LineOf(addr);
  std::int64_t last = LineOf(end - 1);
  for (std::int64_t line = first; line <= last; ++line) {
    const Addr line_base = static_cast<Addr>(line) * block_words_;
    const Addr lo = std::max<Addr>(addr, line_base);
    const Addr hi = std::min<Addr>(end, line_base + block_words_);
    const std::size_t n = static_cast<std::size_t>(hi - lo);
    // Records overlapping this line: the one containing word `lo` through
    // the one containing word `hi - 1`. An element-wise pass would call
    // TouchLine once per such record; after the first, the line is MRU, so
    // all further touches are hits — charge them as a batch.
    const std::size_t i_lo = static_cast<std::size_t>(lo - addr) / elem_words;
    const std::size_t i_hi = static_cast<std::size_t>(hi - 1 - addr) / elem_words;
    const Addr first_rec_start = addr + i_lo * elem_words;
    // First toucher's alignment, exactly as its own TouchRange would see it:
    // a record starting at the line boundary, or one crossing in from the
    // previous line, makes a write "aligned" (no read charged on a miss).
    const bool aligned = write && first_rec_start <= line_base;
    // A full-line write with data overwrites every word: skip the real
    // fetch. Data-less charges mirror TouchRange (always fetch on a staged
    // miss). Fetching is never part of the charging decision.
    const bool fetch =
        !(kind == ScanOpKind::kWrite && in != nullptr && n == block_words_);
    std::int32_t s = TouchLine(line, write, aligned, fetch);
    stats_.cache_hits += i_hi - i_lo;
    if (kind == ScanOpKind::kRead) {
      std::memcpy(dst, line_buf(s) + (lo - line_base), n * sizeof(Word));
      dst += n * sizeof(Word);
    } else if (kind == ScanOpKind::kWrite && src != nullptr) {
      std::memcpy(line_buf(s) + (lo - line_base), src, n * sizeof(Word));
      src += n * sizeof(Word);
    }
  }
}

void Cache::ScanRange(Addr addr, std::size_t words, std::size_t elem_words,
                      bool write) {
  if (!counting_ || words == 0) return;
  ScanOp(addr, words, elem_words,
         write ? ScanOpKind::kWrite : ScanOpKind::kCharge, nullptr, nullptr);
}

void Cache::ReadScan(Addr addr, std::size_t words, std::size_t elem_words,
                     void* out) {
  TRIENUM_CHECK_MSG(staging_ != nullptr, "ReadScan requires staged mode");
  if (words == 0) return;
  if (!counting_) {
    ReadRange(addr, words, out);
    return;
  }
  ScanOp(addr, words, elem_words, ScanOpKind::kRead, out, nullptr);
}

void Cache::WriteScan(Addr addr, std::size_t words, std::size_t elem_words,
                      const void* in) {
  TRIENUM_CHECK_MSG(staging_ != nullptr, "WriteScan requires staged mode");
  if (words == 0) return;
  if (!counting_) {
    WriteRange(addr, words, in);
    return;
  }
  ScanOp(addr, words, elem_words, ScanOpKind::kWrite, nullptr, in);
}

std::int32_t Cache::Pin(Addr addr, bool write) {
  TRIENUM_CHECK_MSG(counting_,
                    "Pin requires counting; uncounted phases use the "
                    "ReadRange/WriteRange bypass");
  std::int32_t s = TouchLine(LineOf(addr), write, /*aligned_write=*/false,
                             /*fetch=*/true);
  if (slots_[s].pins == 0) ++pinned_lines_;
  ++slots_[s].pins;
  TRIENUM_CHECK_MSG(pinned_lines_ < num_slots_ || num_slots_ == 1,
                    "pinning would leave no evictable line");
  return s;
}

void Cache::Unpin(std::int32_t slot) {
  TRIENUM_CHECK(slot >= 0 && static_cast<std::size_t>(slot) < num_slots_);
  TRIENUM_CHECK_MSG(slots_[slot].pins > 0, "Unpin of an unpinned slot");
  if (--slots_[slot].pins == 0) --pinned_lines_;
}

bool Cache::IsPinned(Addr addr) const {
  std::int32_t s = Lookup(LineOf(addr));
  return s >= 0 && slots_[s].pins > 0;
}

void Cache::ReadRange(Addr addr, std::size_t words, void* out) {
  TRIENUM_CHECK_MSG(staging_ != nullptr, "ReadRange requires staged mode");
  if (words == 0) return;
  char* dst = static_cast<char*>(out);
  const Addr end = addr + words;
  std::int64_t first = LineOf(addr);
  std::int64_t last = LineOf(end - 1);
  if (!counting_) {
    // Uncounted bypass: no insertion, no recency update, no counters —
    // exactly like the simulator's raw pointer. Resident lines are served
    // from their buffer (the authoritative copy when dirty); maximal runs
    // of non-resident lines coalesce into one backend read each, so a bulk
    // upload/download costs O(1) syscalls, not one per line.
    Addr run_start = addr;  // pending non-resident span [run_start, ...)
    for (std::int64_t line = first; line <= last; ++line) {
      Addr line_base = static_cast<Addr>(line) * block_words_;
      std::int32_t s = Lookup(line);
      if (s < 0) continue;
      Addr lo = std::max<Addr>(addr, line_base);
      Addr hi = std::min<Addr>(end, line_base + block_words_);
      if (lo > run_start) {
        StagedRead(run_start, static_cast<std::size_t>(lo - run_start),
                   reinterpret_cast<Word*>(dst + (run_start - addr) * sizeof(Word)));
      }
      std::memcpy(dst + (lo - addr) * sizeof(Word), line_buf(s) + (lo - line_base),
                  static_cast<std::size_t>(hi - lo) * sizeof(Word));
      run_start = hi;
    }
    if (end > run_start) {
      StagedRead(run_start, static_cast<std::size_t>(end - run_start),
                 reinterpret_cast<Word*>(dst + (run_start - addr) * sizeof(Word)));
    }
    return;
  }
  for (std::int64_t line = first; line <= last; ++line) {
    Addr line_base = static_cast<Addr>(line) * block_words_;
    Addr lo = std::max<Addr>(addr, line_base);
    Addr hi = std::min<Addr>(end, line_base + block_words_);
    std::size_t n = static_cast<std::size_t>(hi - lo);
    std::int32_t s = TouchLine(line, /*write=*/false, /*aligned_write=*/false,
                               /*fetch=*/true);
    std::memcpy(dst, line_buf(s) + (lo - line_base), n * sizeof(Word));
    dst += n * sizeof(Word);
  }
}

void Cache::WriteRange(Addr addr, std::size_t words, const void* in) {
  TRIENUM_CHECK_MSG(staging_ != nullptr, "WriteRange requires staged mode");
  if (words == 0) return;
  const char* src = static_cast<const char*>(in);
  const Addr end = addr + words;
  std::int64_t first = LineOf(addr);
  std::int64_t last = LineOf(end - 1);
  if (!counting_) {
    // Uncounted write: one write-through of the whole range (so a clean
    // line can later be dropped without losing this data, at O(1) syscalls
    // for bulk uploads), plus buffer updates for any resident lines so they
    // stay authoritative. Dirty flags and recency stay untouched, so the
    // counted-region IoStats remain identical to the simulator's.
    StagedWrite(addr, words, reinterpret_cast<const Word*>(src));
    for (std::int64_t line = first; line <= last; ++line) {
      std::int32_t s = Lookup(line);
      if (s < 0) continue;
      Addr line_base = static_cast<Addr>(line) * block_words_;
      Addr lo = std::max<Addr>(addr, line_base);
      Addr hi = std::min<Addr>(end, line_base + block_words_);
      std::memcpy(line_buf(s) + (lo - line_base), src + (lo - addr) * sizeof(Word),
                  static_cast<std::size_t>(hi - lo) * sizeof(Word));
    }
    return;
  }
  for (std::int64_t line = first; line <= last; ++line) {
    Addr line_base = static_cast<Addr>(line) * block_words_;
    Addr lo = std::max<Addr>(addr, line_base);
    Addr hi = std::min<Addr>(end, line_base + block_words_);
    std::size_t n = static_cast<std::size_t>(hi - lo);
    // Same charging rule as TouchRange: a write starting at a line boundary
    // is "aligned" (no read charged); the block is still fetched unless this
    // write covers the whole line.
    bool aligned = lo == line_base;
    bool full_cover = n == block_words_;
    std::int32_t s =
        TouchLine(line, /*write=*/true, aligned, /*fetch=*/!full_cover);
    std::memcpy(line_buf(s) + (lo - line_base), src, n * sizeof(Word));
    src += n * sizeof(Word);
  }
}

void Cache::FlushAll() {
  TRIENUM_CHECK_MSG(pinned_lines_ == 0, "FlushAll with lines still pinned");
  for (std::int32_t s = head_; s >= 0;) {
    std::int32_t next = slots_[s].next;
    if (slots_[s].dirty) {
      if (staging_ != nullptr) {
        // Data is never dropped, even when the flush itself is uncounted
        // (e.g. Reset between phases).
        StagedWrite(static_cast<Addr>(slots_[s].line) * block_words_,
                    block_words_, line_buf(s));
      }
      if (counting_) ++stats_.block_writes;
    }
    where_.Set(slots_[s].line, -1);
    slots_[s].line = -1;
    slots_[s].dirty = false;
    slots_[s].prev = -1;
    slots_[s].next = free_head_;
    free_head_ = s;
    s = next;
  }
  head_ = tail_ = -1;
  last_line_ = -1;
}

void Cache::Reset() {
  bool saved = counting_;
  counting_ = false;
  FlushAll();
  counting_ = saved;
  stats_ = IoStats{};
  // Cold start extends to the read-ahead engine: leftover staging from a
  // previous query is dropped (counted as wasted there, before the next
  // query's stats snapshot).
  if (prefetch_ != nullptr) prefetch_->Clear();
}

void Cache::Discard() {
  // Rebuild the slot array wholesale rather than walking the lists: a fault
  // can abandon the cache in a partial state (a grabbed-but-unlinked slot, a
  // half-flushed LRU chain), and this reconstruction is correct from any of
  // them.
  for (std::size_t i = 0; i < num_slots_; ++i) {
    slots_[i].line = -1;
    slots_[i].dirty = false;
    slots_[i].pins = 0;
    slots_[i].next = static_cast<std::int32_t>(i) + 1;
    slots_[i].prev = -1;
  }
  slots_[num_slots_ - 1].next = -1;
  free_head_ = 0;
  head_ = tail_ = -1;
  last_line_ = -1;
  pinned_lines_ = 0;
  where_.Clear();
  stats_ = IoStats{};
  fault_ = Status::OK();
  if (prefetch_ != nullptr) prefetch_->Clear();
}

bool Cache::IsResident(Addr addr) const {
  return Lookup(LineOf(addr)) >= 0;
}

}  // namespace trienum::em
