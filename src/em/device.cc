#include "em/device.h"

namespace trienum::em {

Addr Device::Allocate(std::size_t words, std::size_t align) {
  TRIENUM_CHECK(align > 0);
  Addr base = (top_ + align - 1) / align * align;
  Addr new_top = base + words;
  if (new_top > storage_.size()) {
    std::size_t grown = storage_.size() == 0 ? 1024 : storage_.size();
    while (grown < new_top) grown *= 2;
    storage_.resize(grown, 0);
  }
  top_ = new_top;
  if (top_ > peak_) peak_ = top_;
  return base;
}

void Device::Release(Addr mark) {
  TRIENUM_CHECK(mark <= top_);
  top_ = mark;
}

}  // namespace trienum::em
