#include "em/device.h"

namespace trienum::em {

Addr Device::Allocate(std::size_t words, std::size_t align) {
  TRIENUM_CHECK(align > 0);
  Addr base = (top_ + align - 1) / align * align;
  Addr new_top = base + words;
  backend_->EnsureSize(new_top);
  top_ = new_top;
  if (top_ > peak_) peak_ = top_;
  return base;
}

void Device::Release(Addr mark) {
  TRIENUM_CHECK(mark <= top_);
  top_ = mark;
}

}  // namespace trienum::em
