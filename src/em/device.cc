#include "em/device.h"

namespace trienum::em {

Addr Device::Allocate(std::size_t words, std::size_t align) {
  TRIENUM_CHECK(align > 0);
  Addr base = (top_ + align - 1) / align * align;
  Addr new_top = base + words;
  // A grow failure (ENOSPC, bad backing file) cannot be returned through the
  // allocation-heavy data plane; throw and let the query layer convert it
  // back to a Status. top_ is untouched, so the device stays consistent.
  Status st = backend_->EnsureSize(new_top);
  if (!st.ok()) throw IoFault(std::move(st));
  top_ = new_top;
  if (top_ > peak_) peak_ = top_;
  return base;
}

void Device::Release(Addr mark) {
  TRIENUM_CHECK(mark <= top_);
  top_ = mark;
}

}  // namespace trienum::em
