// Run formation of the sort engine: host-side sorting of one memory load
// (at most M/2 words), shared by `ExternalMergeSort`'s run loop and
// `FunnelSort`'s base case.
//
// Keyed comparators (see sort_key.h) go down an LSD byte-radix on the
// extracted 64-bit keys — narrow records are scattered directly, wide ones
// through an index-permute gather — with passes whose byte is constant
// across the load skipped outright (the common case: 32-bit vertex ids
// leave half the key bytes empty). Prefix keys finish equal-key runs with
// the comparator; keyless comparators fall back to a comparison sort.
//
// Every path is stable, so SortRun(rec, n, less) == std::stable_sort(rec,
// rec + n, less) record-for-record — the determinism contract the
// differential suite (tests/test_sort_engine.cc) pins. None of this touches
// the device: run formation changes host work only, never the I/O charge
// sequence around it.
#ifndef TRIENUM_EXTSORT_RUN_FORMATION_H_
#define TRIENUM_EXTSORT_RUN_FORMATION_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "extsort/sort_key.h"

namespace trienum::extsort {
namespace internal {

/// Below this many records the constant costs of key extraction and
/// histogramming beat any radix win; a stable insertion sort (no allocation
/// — this path runs once per funnel base case) takes over.
inline constexpr std::size_t kRadixMinRecords = 48;

/// Records up to this size are moved directly through the scatter passes
/// (with constant-byte skipping, usually ~4 of them); wider ones are
/// radixed as 16-byte (key, index) pairs and permuted in place at the end.
/// 24 bytes covers every record type in the library (wedge and incidence
/// records), and keeps the direct path's scratch at one run of records —
/// the amount the run-formation scratch lease accounts for.
inline constexpr std::size_t kDirectScatterMaxBytes = 24;

/// Stable insertion sort for tiny loads.
template <typename T, typename Less>
void InsertionSort(T* rec, std::size_t n, Less less) {
  for (std::size_t i = 1; i < n; ++i) {
    T v = rec[i];
    std::size_t j = i;
    while (j > 0 && less(v, rec[j - 1])) {
      rec[j] = rec[j - 1];
      --j;
    }
    rec[j] = v;
  }
}

/// Radix element for the index-permute path.
struct KeyIdx {
  std::uint64_t k = 0;
  std::uint32_t i = 0;
  std::uint32_t pad = 0;
};

/// LSD byte-radix over `a` by `key_of(a[i])`. Stable. One histogram pass
/// builds all eight tables; scatter passes whose byte is constant across
/// the whole load are skipped (a multiset property, so the first element of
/// the *original* order decides for every pass).
template <typename Rec, typename KeyOf>
void RadixSortByKey(Rec* a, std::size_t n, std::vector<Rec>& scratch,
                    KeyOf key_of) {
  if (n < 2) return;
  std::uint32_t cnt[8][256] = {};
  const std::uint64_t k0 = key_of(a[0]);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = key_of(a[i]);
    for (int p = 0; p < 8; ++p) ++cnt[p][(k >> (8 * p)) & 0xFF];
  }
  Rec* src = a;
  Rec* dst = nullptr;  // the ping-pong copy is sized only if a pass scatters
  for (int p = 0; p < 8; ++p) {
    if (cnt[p][(k0 >> (8 * p)) & 0xFF] == n) continue;  // constant byte
    if (dst == nullptr) {
      if (scratch.size() < n) scratch.resize(n);
      dst = scratch.data();
    }
    std::uint32_t pos[256];
    std::uint32_t run = 0;
    for (int b = 0; b < 256; ++b) {
      pos[b] = run;
      run += cnt[p][b];
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[pos[(key_of(src[i]) >> (8 * p)) & 0xFF]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != a) std::memcpy(a, src, n * sizeof(Rec));
}

}  // namespace internal

/// Reusable host buffers for run formation, so a run loop pays one
/// allocation per sort rather than one per run.
template <typename T>
struct RunScratch {
  std::vector<T> recs;
  std::vector<internal::KeyIdx> keys;
  std::vector<internal::KeyIdx> keys_tmp;
};

/// \brief Sorts the host load [rec, rec + n) under `less`.
///
/// Output is record-for-record what std::stable_sort would produce, down
/// every path (radix is LSD-stable, tie runs and fallbacks use stable
/// sorts).
template <typename T, typename Less>
void SortRun(T* rec, std::size_t n, RunScratch<T>& rs, Less less) {
  using Traits = SortKeyTraits<Less, T>;
  if (n < 2) return;
  if constexpr (!Traits::kHasKey) {
    std::stable_sort(rec, rec + n, less);
  } else {
    if (n < internal::kRadixMinRecords) {
      internal::InsertionSort(rec, n, less);
      return;
    }
    if constexpr (sizeof(T) <= internal::kDirectScatterMaxBytes) {
      internal::RadixSortByKey(rec, n, rs.recs,
                               [](const T& r) { return Traits::Key(r); });
    } else {
      // Index-permute gather: move 16-byte (key, index) pairs through the
      // scatter passes, then apply the permutation to the wide records in
      // place (cycle-following, O(1) record scratch). The pair arrays are 4
      // words per record — at most the records' own width on this path — so
      // the caller's 2x-run scratch lease covers the whole working set.
      if (rs.keys.size() < n) rs.keys.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        rs.keys[i].k = Traits::Key(rec[i]);
        rs.keys[i].i = static_cast<std::uint32_t>(i);
      }
      internal::RadixSortByKey(rs.keys.data(), n, rs.keys_tmp,
                               [](const internal::KeyIdx& e) { return e.k; });
      for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t j = rs.keys[i].i;
        if (j == static_cast<std::uint32_t>(i)) continue;
        T t = rec[i];
        std::size_t cur = i;
        while (j != static_cast<std::uint32_t>(i)) {
          rec[cur] = rec[j];
          rs.keys[cur].i = static_cast<std::uint32_t>(cur);  // mark done
          cur = j;
          j = rs.keys[cur].i;
        }
        rec[cur] = t;
        rs.keys[cur].i = static_cast<std::uint32_t>(cur);
      }
    }
    if constexpr (!Traits::kComplete) {
      // Prefix key: finish equal-key runs with the full comparator (stable,
      // so the composition equals one stable_sort under `less`). Small runs
      // insertion-sort in place — no temp, and the scratch buffers stay
      // warm for the next load. A large run (one key class spanning much of
      // the load) goes through std::stable_sort, whose internal temp can
      // reach a full run; the now-dead radix buffers are released first so
      // the peak working set stays at load buffer + temp — within the
      // caller's 2x-run lease — even when one class spans everything.
      bool released = false;
      std::size_t lo = 0;
      while (lo < n) {
        const std::uint64_t k = Traits::Key(rec[lo]);
        std::size_t hi = lo + 1;
        while (hi < n && Traits::Key(rec[hi]) == k) ++hi;
        if (hi - lo > 1) {
          if (hi - lo < internal::kRadixMinRecords) {
            internal::InsertionSort(rec + lo, hi - lo, less);
          } else {
            if (!released) {
              rs.recs = std::vector<T>();
              rs.keys = std::vector<internal::KeyIdx>();
              rs.keys_tmp = std::vector<internal::KeyIdx>();
              released = true;
            }
            std::stable_sort(rec + lo, rec + hi, less);
          }
        }
        lo = hi;
      }
    }
  }
}

/// Single-shot convenience overload (allocates its own scratch).
template <typename T, typename Less>
void SortRun(T* rec, std::size_t n, Less less) {
  RunScratch<T> rs;
  SortRun(rec, n, rs, less);
}

}  // namespace trienum::extsort

#endif  // TRIENUM_EXTSORT_RUN_FORMATION_H_
