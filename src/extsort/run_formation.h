// Run formation of the sort engine: host-side sorting of one memory load
// (at most M/2 words), shared by `ExternalMergeSort`'s run loop and
// `FunnelSort`'s base case.
//
// Keyed comparators (see sort_key.h) go down an LSD byte-radix on the
// extracted 64-bit keys — narrow records are scattered directly, wide ones
// through an index-permute gather — with passes whose byte is constant
// across the load skipped outright (the common case: 32-bit vertex ids
// leave half the key bytes empty). Prefix keys finish equal-key runs with
// the comparator; keyless comparators fall back to a comparison sort.
//
// Every path is stable, so SortRun(rec, n, less) == std::stable_sort(rec,
// rec + n, less) record-for-record — the determinism contract the
// differential suite (tests/test_sort_engine.cc) pins. None of this touches
// the device: run formation changes host work only, never the I/O charge
// sequence around it.
//
// Under par::SetThreads(N > 1), large loads run the radix passes in
// parallel: per-partition histograms and scatters over the stable splits of
// partition.h, with scatter cursors laid out so the merged result is the
// serial LSD order bit-for-bit (tests/test_parallel.cc pins SortRun against
// std::stable_sort at several thread counts). Runs are still emitted
// serially by the caller through the same WriteScan charges.
#ifndef TRIENUM_EXTSORT_RUN_FORMATION_H_
#define TRIENUM_EXTSORT_RUN_FORMATION_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "extsort/merge_runs.h"
#include "extsort/sort_key.h"
#include "par/thread_pool.h"

namespace trienum::extsort {
namespace internal {

/// Below this many records the constant costs of key extraction and
/// histogramming beat any radix win; a stable insertion sort (no allocation
/// — this path runs once per funnel base case) takes over.
inline constexpr std::size_t kRadixMinRecords = 48;

/// Records up to this size are moved directly through the scatter passes
/// (with constant-byte skipping, usually ~4 of them); wider ones are
/// radixed as 16-byte (key, index) pairs and permuted in place at the end.
/// 24 bytes covers every record type in the library (wedge and incidence
/// records), and keeps the direct path's scratch at one run of records —
/// the amount the run-formation scratch lease accounts for.
inline constexpr std::size_t kDirectScatterMaxBytes = 24;

/// Stable insertion sort for tiny loads.
template <typename T, typename Less>
void InsertionSort(T* rec, std::size_t n, Less less) {
  for (std::size_t i = 1; i < n; ++i) {
    T v = rec[i];
    std::size_t j = i;
    while (j > 0 && less(v, rec[j - 1])) {
      rec[j] = rec[j - 1];
      --j;
    }
    rec[j] = v;
  }
}

/// Radix element for the index-permute path.
struct KeyIdx {
  std::uint64_t k = 0;
  std::uint32_t i = 0;
  std::uint32_t pad = 0;
};

/// Records per pool partition below which the parallel radix cannot recoup
/// its per-pass fork/join handshakes; loads smaller than 2x this stay on
/// the serial single-histogram path. 4096 keeps the reference operating
/// point's 8192-record loads (M = 2^14 words of one-word edges) eligible
/// for a 2-way split while a partition still carries tens of microseconds
/// of histogram + scatter work per pass.
inline constexpr std::size_t kParGrainRecords = std::size_t{1} << 12;

/// Parallel LSD byte-radix: bit-identical to the serial RadixSortByKey.
///
/// Per pass: a parallel per-partition histogram of that byte over the
/// array's *current* order, one serial 256 x parts prefix walk turning
/// counts into scatter cursors laid out byte-major then partition-major —
/// exactly the order the serial scan visits records — and a parallel
/// per-partition scatter where each worker advances only its own cursors.
/// Stability (and therefore the std::stable_sort contract) follows from the
/// cursor layout; no two workers ever write the same destination slot.
/// Constant bytes are detected from the pass histogram and skipped like the
/// serial path (skipping a constant byte's scatter is the identity
/// permutation, so output is unchanged either way).
template <typename Rec, typename KeyOf>
void RadixSortByKeyParallel(Rec* a, std::size_t n, std::vector<Rec>& scratch,
                            KeyOf key_of, std::size_t parts) {
  if (scratch.size() < n) scratch.resize(n);
  Rec* src = a;
  Rec* dst = scratch.data();
  std::vector<std::array<std::uint32_t, 256>> cnt(parts);
  for (int p = 0; p < 8; ++p) {
    const int shift = 8 * p;
    par::ParallelFor(parts, 1, [&](std::size_t q0, std::size_t q1) {
      for (std::size_t q = q0; q < q1; ++q) {
        auto& c = cnt[q];
        c.fill(0);
        const par::Range r = par::PartRange(n, parts, q);
        for (std::size_t i = r.lo; i < r.hi; ++i) {
          ++c[(key_of(src[i]) >> shift) & 0xFF];
        }
      }
    });
    const std::uint32_t b0 =
        static_cast<std::uint32_t>((key_of(src[0]) >> shift) & 0xFF);
    std::uint64_t b0_total = 0;
    for (std::size_t q = 0; q < parts; ++q) b0_total += cnt[q][b0];
    if (b0_total == n) continue;  // constant byte: scatter would be identity
    std::uint32_t run = 0;
    for (int b = 0; b < 256; ++b) {
      for (std::size_t q = 0; q < parts; ++q) {
        const std::uint32_t c = cnt[q][b];
        cnt[q][b] = run;  // count -> this partition's scatter cursor
        run += c;
      }
    }
    par::ParallelFor(parts, 1, [&](std::size_t q0, std::size_t q1) {
      for (std::size_t q = q0; q < q1; ++q) {
        auto& pos = cnt[q];
        const par::Range r = par::PartRange(n, parts, q);
        for (std::size_t i = r.lo; i < r.hi; ++i) {
          dst[pos[(key_of(src[i]) >> shift) & 0xFF]++] = src[i];
        }
      }
    });
    std::swap(src, dst);
  }
  if (src != a) std::memcpy(a, src, n * sizeof(Rec));
}

/// LSD byte-radix over `a` by `key_of(a[i])`. Stable. One histogram pass
/// builds all eight tables; scatter passes whose byte is constant across
/// the whole load are skipped (a multiset property, so the first element of
/// the *original* order decides for every pass).
template <typename Rec, typename KeyOf>
void RadixSortByKey(Rec* a, std::size_t n, std::vector<Rec>& scratch,
                    KeyOf key_of) {
  if (n < 2) return;
  // Pool fan-out when the load is large enough and threads are configured;
  // the parallel path reproduces this function's output bit-for-bit (see
  // tests/test_parallel.cc, SortRunParallel.*).
  const std::size_t parts =
      par::PartsFor(n, par::Threads(), kParGrainRecords);
  if (parts > 1) {
    RadixSortByKeyParallel(a, n, scratch, key_of, parts);
    return;
  }
  std::uint32_t cnt[8][256] = {};
  const std::uint64_t k0 = key_of(a[0]);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = key_of(a[i]);
    for (int p = 0; p < 8; ++p) ++cnt[p][(k >> (8 * p)) & 0xFF];
  }
  Rec* src = a;
  Rec* dst = nullptr;  // the ping-pong copy is sized only if a pass scatters
  for (int p = 0; p < 8; ++p) {
    if (cnt[p][(k0 >> (8 * p)) & 0xFF] == n) continue;  // constant byte
    if (dst == nullptr) {
      if (scratch.size() < n) scratch.resize(n);
      dst = scratch.data();
    }
    std::uint32_t pos[256];
    std::uint32_t run = 0;
    for (int b = 0; b < 256; ++b) {
      pos[b] = run;
      run += cnt[p][b];
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[pos[(key_of(src[i]) >> (8 * p)) & 0xFF]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != a) std::memcpy(a, src, n * sizeof(Rec));
}

}  // namespace internal

/// Reusable host buffers for run formation, so a run loop pays one
/// allocation per sort rather than one per run.
template <typename T>
struct RunScratch {
  std::vector<T> recs;
  std::vector<internal::KeyIdx> keys;
  std::vector<internal::KeyIdx> keys_tmp;
};

/// \brief Sorts the host load [rec, rec + n) under `less`.
///
/// Output is record-for-record what std::stable_sort would produce, down
/// every path (radix is LSD-stable, tie runs and fallbacks use stable
/// sorts).
template <typename T, typename Less>
void SortRun(T* rec, std::size_t n, RunScratch<T>& rs, Less less) {
  using Traits = SortKeyTraits<Less, T>;
  if (n < 2) return;
  if constexpr (!Traits::kHasKey) {
    // Keyless comparator: comparison sort. Under par::SetThreads(N > 1) a
    // large load splits into stable-sorted chunks merged by the key-space-
    // partitioned loser-tree merge — chunk i precedes chunk j in the
    // original order and the merge breaks ties toward the lower chunk, so
    // the composition equals one std::stable_sort record for record
    // (tests/test_sort_engine.cc, MergeRuns*).
    const std::size_t parts =
        par::PartsFor(n, par::Threads(), internal::kParGrainRecords);
    if (parts <= 1) {
      std::stable_sort(rec, rec + n, less);
    } else {
      par::ParallelFor(parts, 1, [&](std::size_t q0, std::size_t q1) {
        for (std::size_t q = q0; q < q1; ++q) {
          const par::Range r = par::PartRange(n, parts, q);
          std::stable_sort(rec + r.lo, rec + r.hi, less);
        }
      });
      std::vector<RunView<T>> views(parts);
      for (std::size_t q = 0; q < parts; ++q) {
        const par::Range r = par::PartRange(n, parts, q);
        views[q] = RunView<T>{rec + r.lo, r.hi - r.lo};
      }
      if (rs.recs.size() < n) rs.recs.resize(n);
      MergeSortedRuns(views, rs.recs.data(), less);
      std::copy(rs.recs.begin(), rs.recs.begin() + static_cast<std::ptrdiff_t>(n), rec);
    }
  } else {
    if (n < internal::kRadixMinRecords) {
      internal::InsertionSort(rec, n, less);
      return;
    }
    if constexpr (sizeof(T) <= internal::kDirectScatterMaxBytes) {
      internal::RadixSortByKey(rec, n, rs.recs,
                               [](const T& r) { return Traits::Key(r); });
    } else {
      // Index-permute gather: move 16-byte (key, index) pairs through the
      // scatter passes, then apply the permutation to the wide records in
      // place (cycle-following, O(1) record scratch). The pair arrays are 4
      // words per record — at most the records' own width on this path — so
      // the caller's 2x-run scratch lease covers the whole working set.
      if (rs.keys.size() < n) rs.keys.resize(n);
      par::ParallelFor(n, internal::kParGrainRecords,
                       [&](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) {
                           rs.keys[i].k = Traits::Key(rec[i]);
                           rs.keys[i].i = static_cast<std::uint32_t>(i);
                         }
                       });
      internal::RadixSortByKey(rs.keys.data(), n, rs.keys_tmp,
                               [](const internal::KeyIdx& e) { return e.k; });
      for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t j = rs.keys[i].i;
        if (j == static_cast<std::uint32_t>(i)) continue;
        T t = rec[i];
        std::size_t cur = i;
        while (j != static_cast<std::uint32_t>(i)) {
          rec[cur] = rec[j];
          rs.keys[cur].i = static_cast<std::uint32_t>(cur);  // mark done
          cur = j;
          j = rs.keys[cur].i;
        }
        rec[cur] = t;
        rs.keys[cur].i = static_cast<std::uint32_t>(cur);
      }
    }
    if constexpr (!Traits::kComplete) {
      // Prefix key: finish equal-key runs with the full comparator (stable,
      // so the composition equals one stable_sort under `less`). Small runs
      // insertion-sort in place — no temp, and the scratch buffers stay
      // warm for the next load. A large run (one key class spanning much of
      // the load) goes through std::stable_sort, whose internal temp can
      // reach a full run; the now-dead radix buffers are released first so
      // the peak working set stays at load buffer + temp — within the
      // caller's 2x-run lease — even when one class spans everything.
      bool released = false;
      std::size_t lo = 0;
      while (lo < n) {
        const std::uint64_t k = Traits::Key(rec[lo]);
        std::size_t hi = lo + 1;
        while (hi < n && Traits::Key(rec[hi]) == k) ++hi;
        if (hi - lo > 1) {
          if (hi - lo < internal::kRadixMinRecords) {
            internal::InsertionSort(rec + lo, hi - lo, less);
          } else {
            if (!released) {
              rs.recs = std::vector<T>();
              rs.keys = std::vector<internal::KeyIdx>();
              rs.keys_tmp = std::vector<internal::KeyIdx>();
              released = true;
            }
            std::stable_sort(rec + lo, rec + hi, less);
          }
        }
        lo = hi;
      }
    }
  }
}

/// Single-shot convenience overload (allocates its own scratch).
template <typename T, typename Less>
void SortRun(T* rec, std::size_t n, Less less) {
  RunScratch<T> rs;
  SortRun(rec, n, rs, less);
}

}  // namespace trienum::extsort

#endif  // TRIENUM_EXTSORT_RUN_FORMATION_H_
