// Cache-aware external merge sort: run formation with M/2-word loads followed
// by (M/B)-way merge passes. This is the sort(n) = O((n/B) log_{M/B}(n/B))
// primitive the paper's cache-aware algorithms (Theorems 2 and 4) rely on.
//
// The host-compute layers are pluggable engine pieces: run formation goes
// through SortRun (radix on extracted keys when the comparator has them, see
// run_formation.h) and the multiway merge through a tournament loser tree
// (loser_tree.h). Both change host work only — the ReadTo/WriteFrom and
// Scanner/Writer charge sequence is the one the std::sort + priority-queue
// implementation issued, so IoStats are engine-independent (pinned by
// tests/test_sort_engine.cc against a reference implementation).
#ifndef TRIENUM_EXTSORT_EXT_MERGE_SORT_H_
#define TRIENUM_EXTSORT_EXT_MERGE_SORT_H_

#include <algorithm>
#include <vector>

#include "em/array.h"
#include "extsort/io_bounds.h"
#include "extsort/loser_tree.h"
#include "extsort/run_formation.h"
#include "extsort/scan_ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace trienum::extsort {

/// \brief Sorts `data` in place with a cache-aware multiway external merge
/// sort. Stable (== std::stable_sort order under `less`).
///
/// Internal-memory usage: one run buffer of at most M/2 words during run
/// formation, and during merging one loser tree of fan-in
/// k = max(2, M/(2B)) entries; both are accounted via scratch leases.
template <typename T, typename Less>
void ExternalMergeSort(em::QuerySession& ctx, em::Array<T> data, Less less) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  const std::size_t words_per = em::Array<T>::kWordsPer;

  auto region = ctx.Region();

  // --- Run formation -------------------------------------------------------
  // Run boundaries are host bookkeeping, O(n/run_items) words: metadata of
  // the same order as the number of runs, standard for EM sorting.
  const std::size_t run_items =
      std::max<std::size_t>(1, (ctx.memory_words() / 2) / words_per);
  em::Array<T> ping = ctx.Alloc<T>(n);
  std::vector<std::pair<std::size_t, std::size_t>> runs;
  runs.reserve((n + run_items - 1) / run_items);
  // One sequential read + one sequential write of the whole input is the
  // textbook prediction for a formation or merge pass; the spans carry it
  // so tools/trace_summary.py can flag phases whose measured share drifts.
  const std::size_t pass_predicted_ios =
      2 * ((n * words_per + ctx.block_words() - 1) / ctx.block_words());
  {
    obs::Span span("sort.run_formation");
    span.AddArg("items", n);
    span.AddArg("predicted_ios", pass_predicted_ios);
    // 2x the run — together exactly M, the model's internal-memory budget —
    // covering the load buffer plus run formation's scratch down every
    // path: the direct-scatter ping-pong copy (records <= 24 B), the
    // (key, index) pair arrays of the wide-record path (4 words/record, at
    // most the records' own width there; the permutation applies in place),
    // or std::stable_sort's internal temp buffer on the keyless fallback.
    em::ScratchLease lease = ctx.LeaseScratch(2 * run_items * words_per);
    // Run formation is one fully predictable pass: a sequential read of the
    // whole input and a sequential write of the runs. Announce both so the
    // prefetcher overlaps the M/2-word loads with SortRun's host compute
    // (the bulk ReadTo below issues no Scanner of its own).
    data.AdviseRange(0, n, em::AdviseKind::kSequentialRead);
    ping.AdviseRange(0, n, em::AdviseKind::kSequentialWrite);
    std::vector<T> buf(std::min(run_items, n));
    RunScratch<T> rs;
    for (std::size_t lo = 0; lo < n; lo += run_items) {
      std::size_t hi = std::min(n, lo + run_items);
      data.ReadTo(lo, hi, buf.data());
      SortRun(buf.data(), hi - lo, rs, less);
      ctx.AddWork((hi - lo) * 4);
      ping.WriteFrom(lo, hi, buf.data());
      runs.emplace_back(lo, hi);
    }
  }

  const std::size_t fan =
      std::max<std::size_t>(2, ctx.memory_words() / (2 * ctx.block_words()));

  em::Array<T> pong = runs.size() > 1 ? ctx.Alloc<T>(n) : em::Array<T>();
  em::Array<T> src = ping;
  // --- Merge passes ---------------------------------------------------------
  while (runs.size() > 1) {
    obs::Span span("sort.merge_pass");
    span.AddArg("runs_in", runs.size());
    span.AddArg("fan", fan);
    span.AddArg("predicted_ios", pass_predicted_ios);
    // Merge-pass wall latency: the loser-tree pass is the sort's dominant
    // real-I/O phase out of core, so its wall distribution is a seam metric
    // alongside the span.
    static obs::Histogram& merge_hist =
        obs::MetricsRegistry::Global().GetHistogram(
            obs::metric_names::kMergePassNs);
    obs::LatencyTimer pass_timer(merge_hist);
    std::vector<std::pair<std::size_t, std::size_t>> next_runs;
    em::Writer<T> out(pong);
    // Advise every run head of the pass up front — not just the current
    // group's — so later groups' head blocks are already warming while this
    // group merges. Each group's Scanners then advise their whole runs at
    // construction (the Scanner ctor hook), which is what keeps the (M/B)-way
    // merge's active heads staged.
    {
      const std::size_t head_records =
          (4 * ctx.block_words()) / words_per + 1;
      for (const auto& run : runs) {
        src.AdviseRange(run.first,
                        std::min(run.second, run.first + head_records),
                        em::AdviseKind::kSequentialRead);
      }
    }
    for (std::size_t g = 0; g < runs.size(); g += fan) {
      std::size_t g_end = std::min(runs.size(), g + fan);
      std::size_t out_lo = out.count();

      // The loser tree pads its sources to a power of two; lease the padded
      // size (value slot + tie flag + loser node per leaf fits words_per+2).
      std::size_t cap2 = 1;
      while (cap2 < g_end - g) cap2 <<= 1;
      em::ScratchLease lease = ctx.LeaseScratch(cap2 * (words_per + 2));
      std::vector<em::Scanner<T>> streams;
      streams.reserve(g_end - g);
      for (std::size_t r = g; r < g_end; ++r) {
        streams.emplace_back(src, runs[r].first, runs[r].second);
      }
      LoserTree<T, Less> tree(streams.size(), less);
      for (std::size_t s = 0; s < streams.size(); ++s) {
        if (streams[s].HasNext()) tree.SetInitial(s, streams[s].Next());
      }
      tree.Init();
      std::size_t merged = 0;
      while (tree.HasWinner()) {
        const std::size_t s = tree.WinnerSource();
        out.Push(tree.WinnerValue());
        ++merged;
        if (streams[s].HasNext()) {
          tree.ReplaceWinner(streams[s].Next());
        } else {
          tree.ExhaustWinner();
        }
      }
      ctx.AddWork(merged * 4);
      next_runs.emplace_back(out_lo, out.count());
    }
    out.Flush();  // pending records must land before the next pass reads them
    runs.swap(next_runs);
    std::swap(src, pong);
  }

  // Copy the final run back into `data` unless it is already there.
  if (src.base() != data.base()) Copy(src, data);
}

}  // namespace trienum::extsort

#endif  // TRIENUM_EXTSORT_EXT_MERGE_SORT_H_
