// Cache-aware external merge sort: run formation with M/2-word loads followed
// by (M/B)-way merge passes. This is the sort(n) = O((n/B) log_{M/B}(n/B))
// primitive the paper's cache-aware algorithms (Theorems 2 and 4) rely on.
#ifndef TRIENUM_EXTSORT_EXT_MERGE_SORT_H_
#define TRIENUM_EXTSORT_EXT_MERGE_SORT_H_

#include <algorithm>
#include <queue>
#include <vector>

#include "em/array.h"
#include "extsort/scan_ops.h"

namespace trienum::extsort {

/// Predicted I/O cost of sorting n records of `words_per` words each:
/// ceil(n*w/B) * (1 + number of merge passes) * 2 (read+write per pass).
/// Used by tests and benches to sanity-check the substrate.
inline double SortIoBound(std::size_t n, std::size_t words_per, std::size_t m,
                          std::size_t b) {
  if (n <= 1) return 0;
  double nw = static_cast<double>(n) * static_cast<double>(words_per);
  double runs = std::max(1.0, nw / (static_cast<double>(m) / 2));
  double fan = std::max(2.0, static_cast<double>(m) / (2.0 * b));
  double passes = 1.0;
  while (runs > 1.0) {
    runs /= fan;
    passes += 1.0;
  }
  return 2.0 * passes * (nw / static_cast<double>(b) + 1.0);
}

/// \brief Sorts `data` in place with a cache-aware multiway external merge
/// sort.
///
/// Internal-memory usage: one run buffer of at most M/2 words during run
/// formation, and during merging one (value, run) heap of fan-in
/// k = max(2, M/(2B)) entries; both are accounted via scratch leases.
template <typename T, typename Less>
void ExternalMergeSort(em::Context& ctx, em::Array<T> data, Less less) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  const std::size_t words_per = em::Array<T>::kWordsPer;

  auto region = ctx.Region();

  // --- Run formation -------------------------------------------------------
  const std::size_t run_items =
      std::max<std::size_t>(1, (ctx.memory_words() / 2) / words_per);
  em::Array<T> ping = ctx.Alloc<T>(n);
  {
    em::ScratchLease lease = ctx.LeaseScratch(run_items * words_per);
    std::vector<T> buf(std::min(run_items, n));
    for (std::size_t lo = 0; lo < n; lo += run_items) {
      std::size_t hi = std::min(n, lo + run_items);
      data.ReadTo(lo, hi, buf.data());
      std::sort(buf.begin(), buf.begin() + (hi - lo), less);
      ctx.AddWork((hi - lo) * 4);
      ping.WriteFrom(lo, hi, buf.data());
    }
  }

  // Run boundaries (host bookkeeping, O(n/run_items) words: this is metadata
  // of the same order as the number of runs, standard for EM sorting).
  std::vector<std::pair<std::size_t, std::size_t>> runs;
  for (std::size_t lo = 0; lo < n; lo += run_items) {
    runs.emplace_back(lo, std::min(n, lo + run_items));
  }

  const std::size_t fan =
      std::max<std::size_t>(2, ctx.memory_words() / (2 * ctx.block_words()));

  em::Array<T> pong = runs.size() > 1 ? ctx.Alloc<T>(n) : em::Array<T>();
  em::Array<T> src = ping;
  // --- Merge passes ---------------------------------------------------------
  while (runs.size() > 1) {
    std::vector<std::pair<std::size_t, std::size_t>> next_runs;
    em::Writer<T> out(pong);
    for (std::size_t g = 0; g < runs.size(); g += fan) {
      std::size_t g_end = std::min(runs.size(), g + fan);
      std::size_t out_lo = out.count();

      em::ScratchLease lease = ctx.LeaseScratch((g_end - g) * (words_per + 2));
      std::vector<em::Scanner<T>> streams;
      streams.reserve(g_end - g);
      for (std::size_t r = g; r < g_end; ++r) {
        streams.emplace_back(src, runs[r].first, runs[r].second);
      }
      // (element, stream) min-heap.
      auto heap_less = [&less](const std::pair<T, std::size_t>& a,
                               const std::pair<T, std::size_t>& b) {
        return less(b.first, a.first);  // max-heap inverted
      };
      std::vector<std::pair<T, std::size_t>> heap;
      for (std::size_t s = 0; s < streams.size(); ++s) {
        if (streams[s].HasNext()) heap.emplace_back(streams[s].Next(), s);
      }
      std::make_heap(heap.begin(), heap.end(), heap_less);
      while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), heap_less);
        auto [v, s] = heap.back();
        heap.pop_back();
        out.Push(v);
        ctx.AddWork(4);
        if (streams[s].HasNext()) {
          heap.emplace_back(streams[s].Next(), s);
          std::push_heap(heap.begin(), heap.end(), heap_less);
        }
      }
      next_runs.emplace_back(out_lo, out.count());
    }
    out.Flush();  // pending records must land before the next pass reads them
    runs.swap(next_runs);
    std::swap(src, pong);
  }

  // Copy the final run back into `data` unless it is already there.
  if (src.base() != data.base()) Copy(src, data);
}

}  // namespace trienum::extsort

#endif  // TRIENUM_EXTSORT_EXT_MERGE_SORT_H_
