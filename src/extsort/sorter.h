// Sort policies: the paper's subroutines (Lemma 1, the recursion of §3, the
// wedge join) are parameterized by which sort primitive they use — the
// cache-aware algorithms plug in the multiway merge sort, the cache-oblivious
// algorithm plugs in funnelsort. Passing the policy as a template parameter
// keeps the cache-oblivious code path free of any M/B-dependent choice.
//
// Both policies sit on the same layered engine: trait-driven key extraction
// (sort_key.h) feeds radix run formation (run_formation.h), and merging goes
// through the stable loser-tree winner rule (loser_tree.h) — so a comparator
// converted to the key protocol speeds up every algorithm through either
// policy at once. Signatures are unchanged; callers of RunLemma1 /
// PivotEnumerate / WedgeJoinEnumerate ride along for free.
#ifndef TRIENUM_EXTSORT_SORTER_H_
#define TRIENUM_EXTSORT_SORTER_H_

#include "extsort/ext_merge_sort.h"
#include "extsort/funnel_sort.h"

namespace trienum::extsort {

/// Cache-aware sort policy (uses M and B).
struct AwareSorter {
  template <typename T, typename Less>
  void operator()(em::QuerySession& ctx, em::Array<T> data, Less less) const {
    ExternalMergeSort(ctx, data, less);
  }
};

/// Cache-oblivious sort policy (funnelsort; never consults M or B).
struct ObliviousSorter {
  template <typename T, typename Less>
  void operator()(em::QuerySession& ctx, em::Array<T> data, Less less) const {
    FunnelSort(ctx, data, less);
  }
};

}  // namespace trienum::extsort

#endif  // TRIENUM_EXTSORT_SORTER_H_
