// Merge layer of the sort engine: a cache-friendly tournament loser tree.
//
// Replacing the (value, stream) binary heap of the multiway merge: popping a
// heap costs a sift-down *and* the following push a sift-up, each moving
// pair-sized entries around a pointer-chased array. A loser tree replays one
// leaf-to-root path of log2(k) comparisons per emitted record, values stay
// put in a flat per-source slot array, and the internal nodes are a flat
// uint32 vector that fits in a cache line or two for any realistic fan-in.
//
// Tie-breaking is by source index (lower source wins), which makes the merge
// *stable*: combined with stable run formation (run i precedes run j on
// stream i < j), the whole external merge sort is a stable sort — the
// determinism contract the differential suite pins against a stable
// reference merge.
#ifndef TRIENUM_EXTSORT_LOSER_TREE_H_
#define TRIENUM_EXTSORT_LOSER_TREE_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace trienum::extsort {

/// Winner rule shared by the loser tree and the funnel's binary mergers
/// (a k-funnel's base case is exactly the k = 2 loser tree): strict `less`
/// wins, ties go to the lower source index.
template <typename T, typename Less>
inline bool WinsOver(const T& a, const T& b, std::size_t ia, std::size_t ib,
                     Less less) {
  if (less(a, b)) return true;
  if (less(b, a)) return false;
  return ia < ib;
}

/// \brief Stable k-way tournament tree over pull-style sources.
///
/// Usage: SetInitial(s, v) for every non-empty source, Init(), then loop
/// { read WinnerSource()/WinnerValue(), consume it, ReplaceWinner(next) or
/// ExhaustWinner() } while HasWinner().
template <typename T, typename Less>
class LoserTree {
 public:
  LoserTree(std::size_t k, Less less) : less_(less) {
    cap_ = 1;
    while (cap_ < k) cap_ <<= 1;
    entries_.resize(cap_);
    loser_.assign(cap_, 0);
  }

  /// Seeds source `s` with its first value (call before Init).
  void SetInitial(std::size_t s, const T& v) {
    entries_[s].v = v;
    entries_[s].alive = true;
  }

  /// Plays the initial tournament.
  void Init() { winner_ = cap_ == 1 ? 0 : InitNode(1); }

  bool HasWinner() const { return entries_[winner_].alive; }
  std::size_t WinnerSource() const { return winner_; }
  const T& WinnerValue() const { return entries_[winner_].v; }

  /// The winner's source produced its next value; replay its path.
  void ReplaceWinner(const T& v) {
    entries_[winner_].v = v;
    Replay();
  }

  /// The winner's source is drained; replay its path.
  void ExhaustWinner() {
    entries_[winner_].alive = false;
    Replay();
  }

 private:
  struct Entry {
    T v{};
    bool alive = false;
  };

  bool Wins(std::uint32_t a, std::uint32_t b) const {
    const Entry& ea = entries_[a];
    const Entry& eb = entries_[b];
    if (!eb.alive) return true;
    if (!ea.alive) return false;
    return WinsOver(ea.v, eb.v, a, b, less_);
  }

  /// Bottom-up initial matches; internal node `node` stores the loser of
  /// its subtree's final, the winner bubbles up.
  std::uint32_t InitNode(std::uint32_t node) {
    if (node >= cap_) return node - cap_;
    std::uint32_t l = InitNode(2 * node);
    std::uint32_t r = InitNode(2 * node + 1);
    if (Wins(l, r)) {
      loser_[node] = r;
      return l;
    }
    loser_[node] = l;
    return r;
  }

  /// Replays the matches on the ex-winner's leaf-to-root path.
  void Replay() {
    std::uint32_t w = winner_;
    for (std::uint32_t node = (cap_ + w) >> 1; node >= 1; node >>= 1) {
      if (Wins(loser_[node], w)) std::swap(loser_[node], w);
    }
    winner_ = w;
  }

  Less less_;
  std::size_t cap_ = 1;                // leaves, padded to a power of two
  std::vector<Entry> entries_;         // per-source current value slots
  std::vector<std::uint32_t> loser_;   // internal nodes [1, cap_)
  std::uint32_t winner_ = 0;

};

}  // namespace trienum::extsort

#endif  // TRIENUM_EXTSORT_LOSER_TREE_H_
