// Predicted I/O cost of the sorting substrate, separated from the sort
// implementation so that code which only *prices* I/O (benches, bound
// checks, `dementiev.cc`'s sort(E^{3/2}) citation) does not pull in the
// whole engine.
#ifndef TRIENUM_EXTSORT_IO_BOUNDS_H_
#define TRIENUM_EXTSORT_IO_BOUNDS_H_

#include <algorithm>
#include <cstddef>

namespace trienum::extsort {

/// Predicted I/O cost of sorting n records of `words_per` words each:
/// ceil(n*w/B) * (1 + number of merge passes) * 2 (read+write per pass).
/// Used by tests and benches to sanity-check the substrate.
inline double SortIoBound(std::size_t n, std::size_t words_per, std::size_t m,
                          std::size_t b) {
  if (n <= 1) return 0;
  double nw = static_cast<double>(n) * static_cast<double>(words_per);
  double runs = std::max(1.0, nw / (static_cast<double>(m) / 2));
  double fan = std::max(2.0, static_cast<double>(m) / (2.0 * b));
  double passes = 1.0;
  while (runs > 1.0) {
    runs /= fan;
    passes += 1.0;
  }
  return 2.0 * passes * (nw / static_cast<double>(b) + 1.0);
}

}  // namespace trienum::extsort

#endif  // TRIENUM_EXTSORT_IO_BOUNDS_H_
