// Streaming scan primitives over em::Array: map/filter/copy/reduce. All cost
// O(n/B) I/Os and are the glue of every algorithm in the paper (which are all
// built from sorts and scans). Each runs over the block-buffered
// Scanner/Writer, so the I/O charges are identical to a record-by-record
// pass while the per-record work is a host-buffer access.
#ifndef TRIENUM_EXTSORT_SCAN_OPS_H_
#define TRIENUM_EXTSORT_SCAN_OPS_H_

#include <cstddef>

#include "em/array.h"

namespace trienum::extsort {

/// Copies elements of `src` satisfying `pred` into the front of `dst`;
/// returns how many were kept. `dst` must have capacity >= src.size() (it may
/// alias `src`, since writes trail reads — the buffered Writer flushes a line
/// only after the Scanner has moved past it).
template <typename T, typename Pred>
std::size_t Filter(const em::Array<T>& src, em::Array<T> dst, Pred pred) {
  em::Scanner<T> in(src);
  em::Writer<T> out(dst);
  while (in.HasNext()) {
    T v = in.Next();
    if (pred(v)) out.Push(v);
  }
  out.Flush();
  return out.count();
}

/// Applies `fn` to each element of `src`, writing results to `dst`.
template <typename T, typename U, typename Fn>
void Transform(const em::Array<T>& src, em::Array<U> dst, Fn fn) {
  em::Scanner<T> in(src);
  em::Writer<U> out(dst);
  while (in.HasNext()) out.Push(fn(in.Next()));
  out.Flush();
}

/// Invokes `fn(element)` for each element in order.
template <typename T, typename Fn>
void ForEach(const em::Array<T>& src, Fn fn) {
  em::Scanner<T> in(src);
  while (in.HasNext()) fn(in.Next());
}

/// Copies src into dst (same length).
template <typename T>
void Copy(const em::Array<T>& src, em::Array<T> dst) {
  TRIENUM_CHECK(dst.size() >= src.size());
  em::Scanner<T> in(src);
  em::Writer<T> out(dst);
  while (in.HasNext()) out.Push(in.Next());
  out.Flush();
}

/// Removes consecutive duplicates (under `eq`) in place; returns new length.
/// On sorted input this deduplicates globally.
template <typename T, typename Eq>
std::size_t UniqueConsecutive(em::Array<T> a, Eq eq) {
  if (a.empty()) return 0;
  em::Scanner<T> in(a);
  em::Writer<T> out(a);
  T prev = in.Next();
  out.Push(prev);
  while (in.HasNext()) {
    T v = in.Next();
    if (!eq(prev, v)) {
      out.Push(v);
      prev = v;
    }
  }
  out.Flush();
  return out.count();
}

/// Counts elements satisfying `pred`.
template <typename T, typename Pred>
std::size_t CountIf(const em::Array<T>& src, Pred pred) {
  std::size_t n = 0;
  em::Scanner<T> in(src);
  while (in.HasNext()) {
    if (pred(in.Next())) ++n;
  }
  return n;
}

/// True if the array is sorted under `less` (one scan).
template <typename T, typename Less>
bool IsSorted(const em::Array<T>& a, Less less) {
  if (a.size() < 2) return true;
  em::Scanner<T> in(a);
  T prev = in.Next();
  while (in.HasNext()) {
    T v = in.Next();
    if (less(v, prev)) return false;
    prev = v;
  }
  return true;
}

}  // namespace trienum::extsort

#endif  // TRIENUM_EXTSORT_SCAN_OPS_H_
