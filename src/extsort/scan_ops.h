// Streaming scan primitives over em::Array: map/filter/copy/reduce. All cost
// O(n/B) I/Os and are the glue of every algorithm in the paper (which are all
// built from sorts and scans).
#ifndef TRIENUM_EXTSORT_SCAN_OPS_H_
#define TRIENUM_EXTSORT_SCAN_OPS_H_

#include <cstddef>

#include "em/array.h"

namespace trienum::extsort {

/// Copies elements of `src` satisfying `pred` into the front of `dst`;
/// returns how many were kept. `dst` must have capacity >= src.size() (it may
/// alias `src`, since writes trail reads).
template <typename T, typename Pred>
std::size_t Filter(const em::Array<T>& src, em::Array<T> dst, Pred pred) {
  std::size_t out = 0;
  for (std::size_t i = 0; i < src.size(); ++i) {
    T v = src.Get(i);
    if (pred(v)) dst.Set(out++, v);
  }
  return out;
}

/// Applies `fn` to each element of `src`, writing results to `dst`.
template <typename T, typename U, typename Fn>
void Transform(const em::Array<T>& src, em::Array<U> dst, Fn fn) {
  for (std::size_t i = 0; i < src.size(); ++i) dst.Set(i, fn(src.Get(i)));
}

/// Invokes `fn(element)` for each element in order.
template <typename T, typename Fn>
void ForEach(const em::Array<T>& src, Fn fn) {
  for (std::size_t i = 0; i < src.size(); ++i) fn(src.Get(i));
}

/// Copies src into dst (same length).
template <typename T>
void Copy(const em::Array<T>& src, em::Array<T> dst) {
  TRIENUM_CHECK(dst.size() >= src.size());
  for (std::size_t i = 0; i < src.size(); ++i) dst.Set(i, src.Get(i));
}

/// Removes consecutive duplicates (under `eq`) in place; returns new length.
/// On sorted input this deduplicates globally.
template <typename T, typename Eq>
std::size_t UniqueConsecutive(em::Array<T> a, Eq eq) {
  if (a.empty()) return 0;
  std::size_t out = 1;
  T prev = a.Get(0);
  for (std::size_t i = 1; i < a.size(); ++i) {
    T v = a.Get(i);
    if (!eq(prev, v)) {
      a.Set(out++, v);
      prev = v;
    }
  }
  return out;
}

/// Counts elements satisfying `pred`.
template <typename T, typename Pred>
std::size_t CountIf(const em::Array<T>& src, Pred pred) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (pred(src.Get(i))) ++n;
  }
  return n;
}

/// True if the array is sorted under `less` (one scan).
template <typename T, typename Less>
bool IsSorted(const em::Array<T>& a, Less less) {
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (less(a.Get(i), a.Get(i - 1))) return false;
  }
  return true;
}

}  // namespace trienum::extsort

#endif  // TRIENUM_EXTSORT_SCAN_OPS_H_
