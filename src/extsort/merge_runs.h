// Host-memory k-way merge of sorted runs, serial or key-space partitioned
// across the par pool — one loser tree per worker, outputs concatenated in
// partition order.
//
// Why this lives host-side: the engine's charged (M/B)-way merge pass
// (ext_merge_sort.h) interleaves Scanner refills and Writer flushes in
// winner order, and that interleaving IS the pinned LRU charge sequence the
// differential suite asserts (tests/test_sort_engine.cc's
// ReferenceMergeSort mirrors it call for call). Reordering those charges
// across workers would change cache hit/miss accounting under capacity
// pressure, so the charged pass stays winner-order serial. What CAN fan out
// under the PR-5 charge rule is pure host compute between charges — and run
// formation's keyless fallback (SortRun) has exactly that shape: sort
// chunks, merge them, all on one staged host load. MergeSortedRuns is that
// merge.
//
// Determinism contract: MergeSortedRuns(runs) == MergeRunsSerial(runs)
// record for record, at every thread count. Partition boundaries are value
// splitters applied to every run with lower_bound under the same
// comparator, so a class of mutually-equal records can never straddle a
// boundary; within a partition each worker's loser tree breaks ties by
// global run index exactly like the serial tree. Concatenating the
// partitions in order therefore reproduces the serial stable merge
// bit-for-bit (tests/test_sort_engine.cc, MergeRuns*).
#ifndef TRIENUM_EXTSORT_MERGE_RUNS_H_
#define TRIENUM_EXTSORT_MERGE_RUNS_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "extsort/loser_tree.h"
#include "par/partition.h"
#include "par/thread_pool.h"

namespace trienum::extsort {

/// One sorted input run (host-resident).
template <typename T>
struct RunView {
  const T* data = nullptr;
  std::size_t len = 0;
};

/// Records per partition below which the fork/join handshake outweighs the
/// merge work (same calibration as run formation's radix grain).
inline constexpr std::size_t kMergeParGrainRecords = std::size_t{1} << 12;

namespace internal {

/// Serial stable k-way merge of `runs[r]` slices [lo[r], hi[r]) into `out`,
/// tie-breaking by run index r — the reference semantics every partition
/// reproduces. `lo`/`hi` may be null for whole runs.
template <typename T, typename Less>
void MergeSlices(const std::vector<RunView<T>>& runs, const std::size_t* lo,
                 const std::size_t* hi, T* out, Less less) {
  const std::size_t k = runs.size();
  std::vector<std::size_t> cur(k), end(k);
  LoserTree<T, Less> tree(k == 0 ? 1 : k, less);
  for (std::size_t r = 0; r < k; ++r) {
    cur[r] = lo == nullptr ? 0 : lo[r];
    end[r] = hi == nullptr ? runs[r].len : hi[r];
    if (cur[r] < end[r]) tree.SetInitial(r, runs[r].data[cur[r]]);
  }
  tree.Init();
  std::size_t n = 0;
  while (tree.HasWinner()) {
    const std::size_t r = tree.WinnerSource();
    out[n++] = tree.WinnerValue();
    if (++cur[r] < end[r]) {
      tree.ReplaceWinner(runs[r].data[cur[r]]);
    } else {
      tree.ExhaustWinner();
    }
  }
}

}  // namespace internal

/// Serial stable merge of whole runs (the reference the parallel path must
/// reproduce bit-for-bit; also the parts <= 1 fast path).
template <typename T, typename Less>
void MergeRunsSerial(const std::vector<RunView<T>>& runs, T* out, Less less) {
  internal::MergeSlices<T, Less>(runs, nullptr, nullptr, out, less);
}

/// Stable merge of `runs` into `out`, fanned out over the par pool when
/// par::Threads() > 1 and the total is large enough. Identical output to
/// MergeRunsSerial at every thread count.
template <typename T, typename Less>
void MergeSortedRuns(const std::vector<RunView<T>>& runs, T* out, Less less) {
  const std::size_t k = runs.size();
  std::size_t total = 0;
  std::size_t longest = 0;
  for (std::size_t r = 0; r < k; ++r) {
    total += runs[r].len;
    if (runs[r].len > runs[longest].len) longest = r;
  }
  if (total == 0) return;
  const std::size_t parts =
      par::PartsFor(total, par::Threads(), kMergeParGrainRecords);
  if (parts <= 1 || k == 0 || runs[longest].len == 0) {
    MergeRunsSerial(runs, out, less);
    return;
  }

  // Key-space split: splitter p is the value at rank p/parts of the longest
  // run; every run is cut at lower_bound(splitter), so records equal to a
  // splitter land wholly in the partition at its right. Skewed inputs (one
  // value dominating) degrade to lopsided partitions, never to wrong
  // output.
  std::vector<std::size_t> bounds((parts + 1) * k);
  for (std::size_t r = 0; r < k; ++r) {
    bounds[r] = 0;                     // partition 0 starts at the front
    bounds[parts * k + r] = runs[r].len;  // last partition ends at the back
  }
  for (std::size_t p = 1; p < parts; ++p) {
    const T& splitter =
        runs[longest].data[runs[longest].len * p / parts];
    for (std::size_t r = 0; r < k; ++r) {
      bounds[p * k + r] = static_cast<std::size_t>(
          std::lower_bound(runs[r].data, runs[r].data + runs[r].len, splitter,
                           less) -
          runs[r].data);
    }
  }
  // Monotonicity guard: lower_bound of non-decreasing splitters is
  // non-decreasing per run, but a pathological comparator could break that;
  // clamp so every slice is well-formed.
  for (std::size_t p = 1; p < parts; ++p) {
    for (std::size_t r = 0; r < k; ++r) {
      bounds[p * k + r] =
          std::max(bounds[p * k + r], bounds[(p - 1) * k + r]);
    }
  }
  std::vector<std::size_t> offset(parts + 1, 0);
  for (std::size_t p = 0; p < parts; ++p) {
    std::size_t size = 0;
    for (std::size_t r = 0; r < k; ++r) {
      size += bounds[(p + 1) * k + r] - bounds[p * k + r];
    }
    offset[p + 1] = offset[p] + size;
  }
  par::ParallelFor(parts, 1, [&](std::size_t p0, std::size_t p1) {
    for (std::size_t p = p0; p < p1; ++p) {
      internal::MergeSlices<T, Less>(runs, &bounds[p * k],
                                     &bounds[(p + 1) * k], out + offset[p],
                                     less);
    }
  });
}

}  // namespace trienum::extsort

#endif  // TRIENUM_EXTSORT_MERGE_RUNS_H_
