// Trait layer of the sort engine: comparators opt into radix run formation
// by exposing an order-preserving 64-bit key.
//
// Protocol — a comparator `Less` over records `T` may declare
//
//   static std::uint64_t Key(const T& rec);   // less(a,b) implies Key(a) <= Key(b)
//   static constexpr bool kKeyComplete;       // Key(a) == Key(b) implies a, b
//                                             // are equivalent under less
//
// With a *complete* key the radix pass alone establishes the order; with a
// *prefix* key (kKeyComplete == false, e.g. a 128-bit order truncated to its
// leading color pair) run formation radix-sorts on the key and finishes
// equal-key runs with the comparator. Comparators without a Key fall back to
// a comparison sort (`KeyLess` path) — nothing in the engine requires keys,
// they only make it faster. Every path is deterministically stable, so the
// engine's contract is: output == std::stable_sort under `less` (asserted by
// tests/test_sort_engine.cc).
//
// The engine reads the protocol through SortKeyTraits, which also grants
// `std::less` over unsigned integral records the identity key — plain
// `std::less<std::uint64_t>` sorts radix for free.
#ifndef TRIENUM_EXTSORT_SORT_KEY_H_
#define TRIENUM_EXTSORT_SORT_KEY_H_

#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>

namespace trienum::extsort {

/// Compile-time view of a comparator's key protocol (primary template: no
/// key — the comparison-sort fallback).
template <typename Less, typename T, typename = void>
struct SortKeyTraits {
  static constexpr bool kHasKey = false;
  static constexpr bool kComplete = false;
};

template <typename Less, typename T>
struct SortKeyTraits<
    Less, T, std::void_t<decltype(Less::Key(std::declval<const T&>()))>> {
  static constexpr bool kHasKey =
      std::is_same_v<decltype(Less::Key(std::declval<const T&>())),
                     std::uint64_t>;
  static constexpr bool kComplete = Less::kKeyComplete;
  static std::uint64_t Key(const T& rec) { return Less::Key(rec); }
};

/// `std::less` (and transparent `std::less<>`) over unsigned integral
/// records: the value is its own complete key.
template <typename Less, typename T>
struct SortKeyTraits<
    Less, T,
    std::enable_if_t<(std::is_same_v<Less, std::less<T>> ||
                      std::is_same_v<Less, std::less<>>)&&std::is_unsigned_v<T> &&
                     sizeof(T) <= sizeof(std::uint64_t)>> {
  static constexpr bool kHasKey = true;
  static constexpr bool kComplete = true;
  static std::uint64_t Key(const T& v) { return v; }
};

/// Packs a (hi, lo) 32-bit pair into one radix key; the workhorse for every
/// two-field lexicographic order over 32-bit ids.
inline std::uint64_t PackKey(std::uint32_t hi, std::uint32_t lo) {
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

/// Ascending order on unsigned integral records with the identity key — the
/// keyed replacement for `std::less` / `a < b` lambdas on u64/u32 arrays.
template <typename T>
struct ValueLess {
  static_assert(std::is_unsigned_v<T> && sizeof(T) <= sizeof(std::uint64_t),
                "ValueLess keys unsigned records of at most 64 bits");
  static constexpr bool kKeyComplete = true;
  bool operator()(T a, T b) const { return a < b; }
  static std::uint64_t Key(const T& v) { return v; }
};

}  // namespace trienum::extsort

#endif  // TRIENUM_EXTSORT_SORT_KEY_H_
