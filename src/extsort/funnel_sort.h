// Cache-oblivious lazy funnelsort (Brodal & Fagerberg), the sort primitive of
// the paper's Theorem 1 algorithm.
//
// Sorting splits the input into ~n^(1/3) segments of size ~n^(2/3), sorts
// them recursively, and merges them with a k-funnel: a binary tree of lazy
// binary mergers in which the buffer hanging under a node of height h holds
// 2^(ceil(3h/2)) elements, so a subtree over j inputs owns Theta(j^(3/2))
// buffer space. Buffers and merger state live on the simulated device and are
// laid out in DFS order (each subtree contiguous), so the recursive-locality
// argument behind the O((n/B) log_{M/B}(n/B)) bound applies under the LRU
// cache simulator. No M- or B-dependent constant appears anywhere below.
#ifndef TRIENUM_EXTSORT_FUNNEL_SORT_H_
#define TRIENUM_EXTSORT_FUNNEL_SORT_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "em/array.h"
#include "extsort/run_formation.h"
#include "extsort/scan_ops.h"

namespace trienum::extsort {

/// Size below which a segment is sorted with an O(1)-sized host buffer.
inline constexpr std::size_t kFunnelBaseSize = 64;

namespace internal {

/// Merger-tree node, resident on the device so that funnel traffic is
/// charged I/Os like any other data structure.
struct FunnelNode {
  std::int32_t left = -1;    // child node indices; -1 marks a leaf
  std::int32_t right = -1;
  std::uint32_t buf_off = 0;  // offset of this node's buffer in the pool
  std::uint32_t buf_cap = 0;
  std::uint32_t head = 0;     // read cursor within the buffer
  std::uint32_t tail = 0;     // fill cursor within the buffer
  std::uint32_t seg_pos = 0;  // leaves: cursor into the input segment
  std::uint32_t seg_end = 0;
  std::uint32_t exhausted = 0;
  std::uint32_t height = 0;
};

inline std::uint32_t FunnelBufferCap(std::uint32_t height) {
  // 2^(ceil(3h/2)); height 1 -> 4, 2 -> 8, 3 -> 32, 4 -> 64, 5 -> 256 ...
  return std::uint32_t{1} << ((3 * height + 1) / 2);
}

/// Builds the merger tree over `num_leaves` (power of two) leaves in
/// pre-order (DFS), so every subtree occupies a contiguous index range.
/// Returns the index of the subtree root.
inline std::int32_t BuildFunnelTree(std::vector<FunnelNode>& nodes,
                                    std::uint32_t leaves_below,
                                    std::uint32_t& next_leaf,
                                    const std::vector<std::pair<std::size_t, std::size_t>>& segs) {
  std::int32_t idx = static_cast<std::int32_t>(nodes.size());
  nodes.emplace_back();
  if (leaves_below == 1) {
    std::uint32_t leaf = next_leaf++;
    FunnelNode& nd = nodes[idx];
    if (leaf < segs.size()) {
      nd.seg_pos = static_cast<std::uint32_t>(segs[leaf].first);
      nd.seg_end = static_cast<std::uint32_t>(segs[leaf].second);
    }
    nd.height = 0;
    return idx;
  }
  std::int32_t l = BuildFunnelTree(nodes, leaves_below / 2, next_leaf, segs);
  std::int32_t r = BuildFunnelTree(nodes, leaves_below / 2, next_leaf, segs);
  FunnelNode& nd = nodes[idx];
  nd.left = l;
  nd.right = r;
  std::uint32_t h = 1;
  for (std::uint32_t lb = leaves_below; lb > 2; lb /= 2) ++h;
  nd.height = h;
  nd.buf_cap = FunnelBufferCap(h);
  return idx;
}

/// \brief Lazy k-funnel merging `segs` (sorted subranges of `input`) into
/// `out`.
template <typename T, typename Less>
class FunnelMerger {
 public:
  FunnelMerger(em::QuerySession& ctx, em::Array<T> input,
               const std::vector<std::pair<std::size_t, std::size_t>>& segs,
               Less less)
      : ctx_(ctx), input_(input), less_(less) {
    std::uint32_t k = 1;
    while (k < segs.size()) k *= 2;
    std::vector<FunnelNode> host_nodes;
    std::uint32_t next_leaf = 0;
    BuildFunnelTree(host_nodes, k, next_leaf, segs);
    // Assign buffer offsets in node (pre-)order: subtree-contiguous layout.
    std::uint32_t pool_elems = 0;
    for (FunnelNode& nd : host_nodes) {
      nd.buf_off = pool_elems;
      pool_elems += nd.buf_cap;
    }
    nodes_ = ctx_.Alloc<FunnelNode>(host_nodes.size());
    for (std::size_t i = 0; i < host_nodes.size(); ++i) nodes_.Set(i, host_nodes[i]);
    pool_ = ctx_.Alloc<T>(std::max<std::uint32_t>(pool_elems, 1));
    // Memory backend: run the merge over zero-copy views, charging the
    // identical touch sequence (same IoStats as the staged path — asserted
    // by the storage differential matrix). No allocations happen past this
    // point, so the views stay valid for the whole merge.
    nodes_ref_ = nodes_.MemRef();
    pool_ref_ = pool_.MemRef();
    input_ref_ = input_.MemRef();
    if (pool_ref_ == nullptr || input_ref_ == nullptr) nodes_ref_ = nullptr;
  }

  /// Runs the merge to completion, writing all elements to `out`.
  void Run(em::Writer<T>& out) {
    FunnelNode root = nodes_.Get(0);
    if (root.left < 0) {
      // Single segment: plain copy.
      em::Scanner<T> in(input_, root.seg_pos, root.seg_end);
      while (in.HasNext()) out.Push(in.Next());
      return;
    }
    std::vector<T> drained;
    while (true) {
      Fill(0);
      root = nodes_.Get(0);
      // Drain the root buffer in one scan-exact bulk read (charged like the
      // per-record Gets it replaces).
      if (root.tail > root.head) {
        drained.resize(root.tail - root.head);
        pool_.ReadScanInto(root.buf_off + root.head, root.buf_off + root.tail,
                           drained.data());
        for (const T& v : drained) out.Push(v);
      }
      root.head = root.tail;
      nodes_.Set(0, root);
      if (root.exhausted != 0) break;
    }
  }

 private:
  static bool IsLeaf(const FunnelNode& nd) { return nd.left < 0; }

  void Fill(std::int32_t idx) {
    if (nodes_ref_ != nullptr) {
      FillRef(idx);
    } else {
      FillCopy(idx);
    }
  }

  // --- Staged (copying) merge path -----------------------------------------
  // The reference implementation: every node/record access is a full
  // Get/Set. The ref path below must charge the identical touch sequence.

  /// Makes sure node `idx` has at least one readable element (refilling an
  /// empty internal buffer); returns false iff the node is drained for good.
  bool EnsureData(std::int32_t idx) {
    FunnelNode nd = nodes_.Get(idx);
    if (IsLeaf(nd)) return nd.seg_pos < nd.seg_end;
    if (nd.head < nd.tail) return true;
    if (nd.exhausted != 0) return false;
    FillCopy(idx);
    nd = nodes_.Get(idx);
    return nd.head < nd.tail;
  }

  T PeekNode(std::int32_t idx) {
    FunnelNode nd = nodes_.Get(idx);
    if (IsLeaf(nd)) return input_.Get(nd.seg_pos);
    return pool_.Get(nd.buf_off + nd.head);
  }

  void PopNode(std::int32_t idx) {
    FunnelNode nd = nodes_.Get(idx);
    if (IsLeaf(nd)) {
      ++nd.seg_pos;
    } else {
      ++nd.head;
    }
    nodes_.Set(idx, nd);
  }

  /// Lazy refill: fills node `idx`'s buffer to capacity or until its subtree
  /// is exhausted.
  void FillCopy(std::int32_t idx) {
    FunnelNode nd = nodes_.Get(idx);
    nd.head = 0;
    nd.tail = 0;
    nodes_.Set(idx, nd);
    while (nd.tail < nd.buf_cap) {
      bool lhas = EnsureData(nd.left);
      bool rhas = EnsureData(nd.right);
      if (!lhas && !rhas) {
        nd.exhausted = 1;
        break;
      }
      std::int32_t pick;
      if (!lhas) {
        pick = nd.right;
      } else if (!rhas) {
        pick = nd.left;
      } else {
        T lv = PeekNode(nd.left);
        T rv = PeekNode(nd.right);
        // One-call form of the k = 2 loser-tree winner rule WinsOver(rv, lv,
        // 1, 0): strict less wins, ties to the left/earlier source — funnel
        // output matches the engine's stable-merge order.
        pick = less_(rv, lv) ? nd.right : nd.left;
      }
      T v = PeekNode(pick);
      PopNode(pick);
      pool_.Set(nd.buf_off + nd.tail, v);
      ++nd.tail;
      ctx_.AddWork(6);
    }
    nodes_.Set(idx, nd);
  }

  // --- Memory-backend (zero-copy) merge path -------------------------------
  // Same control flow, same touch charges at the same points, but node and
  // record data is reached through the direct view instead of per-record
  // copies — this is where the funnel's wall-clock goes.

  bool EnsureDataRef(std::int32_t idx) {
    nodes_.TouchGet(idx);
    FunnelNode& nd = nodes_ref_[idx];
    if (IsLeaf(nd)) return nd.seg_pos < nd.seg_end;
    if (nd.head < nd.tail) return true;
    if (nd.exhausted != 0) return false;
    FillRef(idx);
    nodes_.TouchGet(idx);
    return nd.head < nd.tail;
  }

  const T& PeekNodeRef(std::int32_t idx) {
    nodes_.TouchGet(idx);
    const FunnelNode& nd = nodes_ref_[idx];
    if (IsLeaf(nd)) {
      input_.TouchGet(nd.seg_pos);
      return input_ref_[nd.seg_pos];
    }
    pool_.TouchGet(nd.buf_off + nd.head);
    return pool_ref_[nd.buf_off + nd.head];
  }

  void PopNodeRef(std::int32_t idx) {
    nodes_.TouchGet(idx);
    FunnelNode& nd = nodes_ref_[idx];
    if (IsLeaf(nd)) {
      ++nd.seg_pos;
    } else {
      ++nd.head;
    }
    nodes_.TouchSet(idx);
  }

  void FillRef(std::int32_t idx) {
    nodes_.TouchGet(idx);
    FunnelNode& nd = nodes_ref_[idx];
    nd.head = 0;
    nd.tail = 0;
    nodes_.TouchSet(idx);
    while (nd.tail < nd.buf_cap) {
      bool lhas = EnsureDataRef(nd.left);
      bool rhas = EnsureDataRef(nd.right);
      if (!lhas && !rhas) {
        nd.exhausted = 1;
        break;
      }
      std::int32_t pick;
      if (!lhas) {
        pick = nd.right;
      } else if (!rhas) {
        pick = nd.left;
      } else {
        const T& lv = PeekNodeRef(nd.left);
        const T& rv = PeekNodeRef(nd.right);
        pick = less_(rv, lv) ? nd.right : nd.left;  // k = 2 winner rule
      }
      T v = PeekNodeRef(pick);
      PopNodeRef(pick);
      pool_.TouchSet(nd.buf_off + nd.tail);
      pool_ref_[nd.buf_off + nd.tail] = v;
      ++nd.tail;
      ctx_.AddWork(6);
    }
    nodes_.TouchSet(idx);
  }

  em::QuerySession& ctx_;
  em::Array<T> input_;
  Less less_;
  em::Array<FunnelNode> nodes_;
  em::Array<T> pool_;
  FunnelNode* nodes_ref_ = nullptr;  // non-null = zero-copy (memory) mode
  T* pool_ref_ = nullptr;
  T* input_ref_ = nullptr;
};

}  // namespace internal

namespace internal {

template <typename T, typename Less>
void FunnelSortImpl(em::QuerySession& ctx, em::Array<T> data, Less less,
                    std::vector<T>& base_buf) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  if (n <= kFunnelBaseSize) {
    em::ScratchLease lease =
        ctx.LeaseScratch(kFunnelBaseSize * em::Array<T>::kWordsPer);
    if (base_buf.size() < n) base_buf.resize(n);
    data.ReadTo(0, n, base_buf.data());
    // The engine's in-place stable kernel (run_formation.h): no scratch
    // beyond the leased base buffer — at tiny M the O(1) lease is already
    // close to the budget — and the stability contract of the big sorts
    // holds here too. The I/O around it is unchanged.
    internal::InsertionSort(base_buf.data(), n, less);
    ctx.AddWork(n * 4);
    data.WriteFrom(0, n, base_buf.data());
    return;
  }

  // Split into ~n^(1/3) segments of size ~n^(2/3) and sort them recursively.
  std::size_t k = static_cast<std::size_t>(std::llround(std::cbrt(static_cast<double>(n))));
  k = std::max<std::size_t>(2, k);
  std::size_t seg = (n + k - 1) / k;
  std::vector<std::pair<std::size_t, std::size_t>> segs;
  for (std::size_t lo = 0; lo < n; lo += seg) {
    segs.emplace_back(lo, std::min(n, lo + seg));
  }
  for (const auto& [lo, hi] : segs) {
    FunnelSortImpl(ctx, data.Slice(lo, hi - lo), less, base_buf);
  }

  // Merge the sorted segments with a k-funnel into fresh space, then copy
  // back (the funnel state and buffers are released with the region).
  auto region = ctx.Region();
  em::Array<T> out = ctx.Alloc<T>(n);
  internal::FunnelMerger<T, Less> merger(ctx, data, segs, less);
  em::Writer<T> w(out);
  merger.Run(w);
  w.Flush();  // `out` is read below while `w` is still alive
  TRIENUM_CHECK(w.count() == n);
  Copy(out, data);
}

}  // namespace internal

/// \brief Sorts `data` in place, cache-obliviously (lazy funnelsort).
/// Stable (== std::stable_sort order under `less`): base cases run the
/// engine's stable run formation and the mergers use the stable winner rule.
template <typename T, typename Less>
void FunnelSort(em::QuerySession& ctx, em::Array<T> data, Less less) {
  // One host buffer shared across every base case of the recursion.
  std::vector<T> base_buf;
  internal::FunnelSortImpl(ctx, data, less, base_buf);
}

}  // namespace trienum::extsort

#endif  // TRIENUM_EXTSORT_FUNNEL_SORT_H_
