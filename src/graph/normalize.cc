#include "graph/normalize.h"

#include <tuple>

#include "extsort/ext_merge_sort.h"
#include "extsort/scan_ops.h"
#include "extsort/sort_key.h"

namespace trienum::graph {
namespace {

/// (vertex, degree) pair produced by the degree-counting scan.
struct DegRec {
  VertexId v = 0;
  std::uint32_t deg = 0;
};

/// old-id -> new-id mapping entry.
struct MapRec {
  VertexId old_id = 0;
  VertexId new_id = 0;
};

/// Degree-rank order (deg, v): position after this sort is the new id.
struct DegRankLess {
  static constexpr bool kKeyComplete = true;
  static std::uint64_t Key(const DegRec& d) { return extsort::PackKey(d.deg, d.v); }
  bool operator()(const DegRec& a, const DegRec& b) const {
    return std::tie(a.deg, a.v) < std::tie(b.deg, b.v);
  }
};

/// Relabeling-table order by old id (old ids are unique after dedup).
struct ByOldIdLess {
  static constexpr bool kKeyComplete = true;
  static std::uint64_t Key(const MapRec& m) { return m.old_id; }
  bool operator()(const MapRec& a, const MapRec& b) const {
    return a.old_id < b.old_id;
  }
};

}  // namespace

EmGraph NormalizeEdges(em::QuerySession& ctx, em::Array<Edge> raw,
                       std::vector<VertexId>* new_to_old) {
  if (raw.empty()) {
    if (new_to_old != nullptr) new_to_old->clear();
    return EmGraph{ctx.Alloc<Edge>(0), 0, ctx.Alloc<std::uint32_t>(0)};
  }

  // 1. Reorient to (min, max), dropping self-loops.
  em::Array<Edge> work = ctx.Alloc<Edge>(raw.size());
  std::size_t m;
  {
    em::Scanner<Edge> in(raw);
    em::Writer<Edge> out(work);
    while (in.HasNext()) {
      Edge e = in.Next();
      if (e.u == e.v) continue;
      out.Push(Edge{std::min(e.u, e.v), std::max(e.u, e.v)});
    }
    out.Flush();
    m = out.count();
  }
  em::Array<Edge> edges = work.Slice(0, m);

  // 2. Sort lexicographically and remove duplicates.
  extsort::ExternalMergeSort(ctx, edges, LexLess{});
  m = extsort::UniqueConsecutive(edges,
                                 [](const Edge& a, const Edge& b) { return a == b; });
  edges = edges.Slice(0, m);
  if (m == 0) {
    if (new_to_old != nullptr) new_to_old->clear();
    return EmGraph{ctx.Alloc<Edge>(0), 0, ctx.Alloc<std::uint32_t>(0)};
  }

  // 3. Degrees: scatter endpoints, sort, and run-length encode.
  em::Array<VertexId> ends = ctx.Alloc<VertexId>(2 * m);
  {
    em::Scanner<Edge> in(edges);
    em::Writer<VertexId> out(ends);
    while (in.HasNext()) {
      Edge e = in.Next();
      out.Push(e.u);
      out.Push(e.v);
    }
  }
  extsort::ExternalMergeSort(ctx, ends, extsort::ValueLess<VertexId>{});
  em::Array<DegRec> dv = ctx.Alloc<DegRec>(2 * m);
  em::Writer<DegRec> dvw(dv);
  {
    em::Scanner<VertexId> in(ends);
    VertexId cur = in.Next();
    std::uint32_t cnt = 1;
    while (in.HasNext()) {
      VertexId x = in.Next();
      if (x == cur) {
        ++cnt;
      } else {
        dvw.Push(DegRec{cur, cnt});
        cur = x;
        cnt = 1;
      }
    }
    dvw.Push(DegRec{cur, cnt});
  }
  em::Array<DegRec> degs = dvw.Written();
  VertexId nv = static_cast<VertexId>(degs.size());

  // 4. Degree rank: sort by (degree, id); position becomes the new id.
  extsort::ExternalMergeSort(ctx, degs, DegRankLess{});

  // 5. Relabeling table sorted by old id.
  em::Array<MapRec> map = ctx.Alloc<MapRec>(nv);
  {
    em::Scanner<DegRec> in(degs);
    em::Writer<MapRec> out(map);
    VertexId i = 0;
    while (in.HasNext()) out.Push(MapRec{in.Next().v, i++});
  }
  extsort::ExternalMergeSort(ctx, map, ByOldIdLess{});

  // 6. Relabel edges with two merge-join passes (edges sorted by u, then v).
  {
    em::Scanner<MapRec> ms(map);
    em::Scanner<Edge> in(edges);
    em::Writer<Edge> out(edges);  // in place: writes trail reads
    MapRec cur = ms.Next();
    while (in.HasNext()) {
      Edge e = in.Next();
      while (cur.old_id < e.u && ms.HasNext()) cur = ms.Next();
      TRIENUM_CHECK(cur.old_id == e.u);
      out.Push(Edge{cur.new_id, e.v});
    }
    out.Flush();
  }
  // (v, u) order == ByMaxLess, which carries the packed radix key.
  extsort::ExternalMergeSort(ctx, edges, ByMaxLess{});
  {
    em::Scanner<MapRec> ms(map);
    em::Scanner<Edge> in(edges);
    em::Writer<Edge> out(edges);  // in place: writes trail reads
    MapRec cur = ms.Next();
    while (in.HasNext()) {
      Edge e = in.Next();
      while (cur.old_id < e.v && ms.HasNext()) cur = ms.Next();
      TRIENUM_CHECK(cur.old_id == e.v);
      VertexId a = e.u, b = cur.new_id;
      out.Push(Edge{std::min(a, b), std::max(a, b)});
    }
    out.Flush();
  }
  extsort::ExternalMergeSort(ctx, edges, LexLess{});

  // 7. Final arrays: normalized edge list and degree-by-new-id.
  em::Array<Edge> out_edges = ctx.Alloc<Edge>(m);
  extsort::Copy(edges, out_edges);
  em::Array<std::uint32_t> out_deg = ctx.Alloc<std::uint32_t>(nv);
  extsort::Transform(degs, out_deg, [](const DegRec& d) { return d.deg; });

  if (new_to_old != nullptr) {
    new_to_old->resize(nv);
    em::Scanner<DegRec> in(degs);
    VertexId i = 0;
    while (in.HasNext()) (*new_to_old)[i++] = in.Next().v;
  }
  return EmGraph{out_edges, nv, out_deg};
}

EmGraph BuildEmGraph(em::QuerySession& ctx, const std::vector<Edge>& raw,
                     std::vector<VertexId>* new_to_old) {
  em::Array<Edge> dev = ctx.Alloc<Edge>(raw.size());
  bool was_counting = ctx.cache().counting();
  ctx.cache().set_counting(false);  // the input is assumed to be on disk
  // Bulk upload: one transfer for the whole range (on the file backend this
  // is one write-through per covered line instead of one per edge).
  dev.WriteFrom(0, raw.size(), raw.data());
  ctx.cache().set_counting(was_counting);
  return NormalizeEdges(ctx, dev, new_to_old);
}

std::vector<Edge> DownloadEdges(const EmGraph& g) {
  std::vector<Edge> out(g.num_edges());
  if (g.num_edges() == 0) return out;
  em::GraphStore* store = g.edges.store();
  bool was_counting = store->cache().counting();
  store->cache().set_counting(false);
  g.edges.ReadTo(0, g.num_edges(), out.data());
  store->cache().set_counting(was_counting);
  return out;
}

}  // namespace trienum::graph
