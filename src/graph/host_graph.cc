#include "graph/host_graph.h"

#include <algorithm>

#include "common/status.h"

namespace trienum::graph {

HostGraph::HostGraph(const std::vector<Edge>& edges) {
  canonical_.reserve(edges.size());
  for (const Edge& e : edges) {
    if (e.u == e.v) continue;
    canonical_.push_back(Edge{std::min(e.u, e.v), std::max(e.u, e.v)});
  }
  std::sort(canonical_.begin(), canonical_.end());
  canonical_.erase(std::unique(canonical_.begin(), canonical_.end()),
                   canonical_.end());
  num_edges_ = canonical_.size();

  vertices_.reserve(2 * canonical_.size());
  for (const Edge& e : canonical_) {
    vertices_.push_back(e.u);
    vertices_.push_back(e.v);
  }
  std::sort(vertices_.begin(), vertices_.end());
  vertices_.erase(std::unique(vertices_.begin(), vertices_.end()),
                  vertices_.end());

  forward_.assign(vertices_.size(), {});
  degree_.assign(vertices_.size(), 0);
  for (const Edge& e : canonical_) {
    forward_[IndexOf(e.u)].push_back(e.v);
    ++degree_[IndexOf(e.u)];
    ++degree_[IndexOf(e.v)];
  }
  // Canonical edges are lex-sorted, so forward lists are already ascending.
}

std::size_t HostGraph::IndexOf(VertexId v) const {
  auto it = std::lower_bound(vertices_.begin(), vertices_.end(), v);
  if (it == vertices_.end() || *it != v) return vertices_.size();
  return static_cast<std::size_t>(it - vertices_.begin());
}

const std::vector<VertexId>& HostGraph::Forward(VertexId v) const {
  static const std::vector<VertexId> kEmpty;
  std::size_t i = IndexOf(v);
  if (i == vertices_.size()) return kEmpty;
  return forward_[i];
}

std::size_t HostGraph::Degree(VertexId v) const {
  std::size_t i = IndexOf(v);
  if (i == vertices_.size()) return 0;
  return degree_[i];
}

bool HostGraph::HasEdge(VertexId a, VertexId b) const {
  if (a == b) return false;
  VertexId lo = std::min(a, b), hi = std::max(a, b);
  const std::vector<VertexId>& fwd = Forward(lo);
  return std::binary_search(fwd.begin(), fwd.end(), hi);
}

}  // namespace trienum::graph
