// Host-memory adjacency structure used by the reference enumerator and by
// tests; not part of the measured EM algorithms.
#ifndef TRIENUM_GRAPH_HOST_GRAPH_H_
#define TRIENUM_GRAPH_HOST_GRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace trienum::graph {

/// \brief Compressed sparse adjacency over (possibly sparse) vertex ids.
///
/// Stores, for every vertex, its forward neighbours (neighbours with larger
/// id), sorted — the layout used by in-memory triangle algorithms.
class HostGraph {
 public:
  /// Builds from an arbitrary edge list: self-loops dropped, duplicates
  /// merged, edges reoriented to (min, max).
  explicit HostGraph(const std::vector<Edge>& edges);

  std::size_t num_edges() const { return num_edges_; }
  std::size_t num_vertices() const { return vertices_.size(); }

  /// Distinct vertex ids, sorted.
  const std::vector<VertexId>& vertices() const { return vertices_; }

  /// Forward (larger-id) neighbours of v, sorted ascending; empty if v has
  /// none.
  const std::vector<VertexId>& Forward(VertexId v) const;

  /// Total degree of v (forward + backward).
  std::size_t Degree(VertexId v) const;

  /// True if the (undirected) edge {a, b} exists.
  bool HasEdge(VertexId a, VertexId b) const;

  /// The deduplicated (min, max) edge list, lexicographically sorted.
  const std::vector<Edge>& CanonicalEdges() const { return canonical_; }

 private:
  std::size_t IndexOf(VertexId v) const;  // position in vertices_ or npos

  std::vector<VertexId> vertices_;
  std::vector<std::vector<VertexId>> forward_;
  std::vector<std::size_t> degree_;
  std::vector<Edge> canonical_;
  std::size_t num_edges_ = 0;
};

}  // namespace trienum::graph

#endif  // TRIENUM_GRAPH_HOST_GRAPH_H_
