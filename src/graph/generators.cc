#include "graph/generators.h"

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"
#include "common/status.h"

namespace trienum::graph {
namespace {

std::uint64_t EdgeKey(VertexId a, VertexId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

std::vector<Edge> Gnm(VertexId n, std::size_t m, std::uint64_t seed) {
  TRIENUM_CHECK(n >= 2);
  std::size_t max_edges = static_cast<std::size_t>(n) * (n - 1) / 2;
  TRIENUM_CHECK_MSG(m <= max_edges, "G(n,m): too many edges requested");
  SplitMix64 rng(seed);
  std::unordered_set<std::uint64_t> seen;
  std::vector<Edge> out;
  out.reserve(m);
  while (out.size() < m) {
    VertexId a = static_cast<VertexId>(rng.Below(n));
    VertexId b = static_cast<VertexId>(rng.Below(n));
    if (a == b) continue;
    std::uint64_t key = EdgeKey(a, b);
    if (!seen.insert(key).second) continue;
    out.push_back(Edge{std::min(a, b), std::max(a, b)});
  }
  return out;
}

std::vector<Edge> Clique(VertexId k) {
  std::vector<Edge> out;
  out.reserve(static_cast<std::size_t>(k) * (k - 1) / 2);
  for (VertexId i = 0; i < k; ++i) {
    for (VertexId j = i + 1; j < k; ++j) out.push_back(Edge{i, j});
  }
  return out;
}

std::vector<Edge> CliquePlusPath(VertexId k, VertexId path_len) {
  std::vector<Edge> out = Clique(k);
  VertexId prev = 0;
  for (VertexId i = 0; i < path_len; ++i) {
    VertexId next = k + i;
    out.push_back(Edge{std::min(prev, next), std::max(prev, next)});
    prev = next;
  }
  return out;
}

std::vector<Edge> CompleteTripartite(VertexId a, VertexId b, VertexId c) {
  std::vector<Edge> out;
  out.reserve(static_cast<std::size_t>(a) * b + static_cast<std::size_t>(b) * c +
              static_cast<std::size_t>(a) * c);
  VertexId b0 = a, c0 = a + b;
  for (VertexId i = 0; i < a; ++i) {
    for (VertexId j = 0; j < b; ++j) out.push_back(Edge{i, b0 + j});
  }
  for (VertexId j = 0; j < b; ++j) {
    for (VertexId k = 0; k < c; ++k) out.push_back(Edge{b0 + j, c0 + k});
  }
  for (VertexId i = 0; i < a; ++i) {
    for (VertexId k = 0; k < c; ++k) out.push_back(Edge{i, c0 + k});
  }
  return out;
}

std::vector<Edge> Rmat(int scale, std::size_t m, double pa, double pb, double pc,
                       std::uint64_t seed) {
  TRIENUM_CHECK(scale >= 1 && scale <= 30);
  TRIENUM_CHECK(pa + pb + pc <= 1.0);
  SplitMix64 rng(seed);
  std::unordered_set<std::uint64_t> seen;
  std::vector<Edge> out;
  out.reserve(m);
  VertexId n = VertexId{1} << scale;
  std::size_t attempts = 0;
  while (out.size() < m && attempts < 64 * m + 1024) {
    ++attempts;
    VertexId a = 0, b = 0;
    for (int level = 0; level < scale; ++level) {
      double r = rng.NextDouble();
      int quadrant = r < pa ? 0 : (r < pa + pb ? 1 : (r < pa + pb + pc ? 2 : 3));
      a = (a << 1) | static_cast<VertexId>(quadrant >> 1);
      b = (b << 1) | static_cast<VertexId>(quadrant & 1);
    }
    if (a == b || a >= n || b >= n) continue;
    if (!seen.insert(EdgeKey(a, b)).second) continue;
    out.push_back(Edge{std::min(a, b), std::max(a, b)});
  }
  return out;
}

std::vector<Edge> PlantedTriangles(VertexId n, std::size_t base_edges,
                                   std::size_t planted, std::uint64_t seed) {
  TRIENUM_CHECK(3 * planted <= n);
  std::vector<Edge> out = Gnm(n, base_edges, seed);
  // Plant vertex-disjoint triangles on the first 3*planted ids; duplicates
  // with random edges are merged by normalization.
  for (std::size_t t = 0; t < planted; ++t) {
    VertexId v = static_cast<VertexId>(3 * t);
    out.push_back(Edge{v, v + 1});
    out.push_back(Edge{v + 1, v + 2});
    out.push_back(Edge{v, v + 2});
  }
  return out;
}

std::vector<Edge> Star(VertexId n) {
  std::vector<Edge> out;
  out.reserve(n);
  for (VertexId i = 1; i <= n; ++i) out.push_back(Edge{0, i});
  return out;
}

std::vector<Edge> PathGraph(VertexId n) {
  std::vector<Edge> out;
  for (VertexId i = 0; i + 1 < n; ++i) out.push_back(Edge{i, i + 1});
  return out;
}

std::vector<Edge> CycleGraph(VertexId n) {
  std::vector<Edge> out = PathGraph(n);
  if (n >= 3) out.push_back(Edge{0, n - 1});
  return out;
}

std::vector<Edge> BipartiteRandom(VertexId left, VertexId right, std::size_t m,
                                  std::uint64_t seed) {
  TRIENUM_CHECK(m <= static_cast<std::size_t>(left) * right);
  SplitMix64 rng(seed);
  std::unordered_set<std::uint64_t> seen;
  std::vector<Edge> out;
  while (out.size() < m) {
    VertexId a = static_cast<VertexId>(rng.Below(left));
    VertexId b = static_cast<VertexId>(left + rng.Below(right));
    if (!seen.insert(EdgeKey(a, b)).second) continue;
    out.push_back(Edge{a, b});
  }
  return out;
}

std::vector<Edge> CliqueUnion(VertexId k, VertexId s) {
  std::vector<Edge> out;
  for (VertexId c = 0; c < k; ++c) {
    VertexId base = c * s;
    for (VertexId i = 0; i < s; ++i) {
      for (VertexId j = i + 1; j < s; ++j) out.push_back(Edge{base + i, base + j});
    }
  }
  return out;
}

std::vector<Edge> BarabasiAlbert(VertexId n, VertexId attach, std::uint64_t seed) {
  TRIENUM_CHECK(attach >= 1 && n > attach);
  SplitMix64 rng(seed);
  std::vector<Edge> out;
  // Repeated-endpoint list: sampling a uniform element is sampling a vertex
  // proportionally to its degree (the classic implementation).
  std::vector<VertexId> endpoints;
  // Seed graph: a clique on attach + 1 vertices.
  for (VertexId i = 0; i <= attach; ++i) {
    for (VertexId j = i + 1; j <= attach; ++j) {
      out.push_back(Edge{i, j});
      endpoints.push_back(i);
      endpoints.push_back(j);
    }
  }
  for (VertexId v = attach + 1; v < n; ++v) {
    std::unordered_set<VertexId> chosen;
    std::size_t guard = 0;
    while (chosen.size() < attach && ++guard < 64u * attach) {
      VertexId t = endpoints[rng.Below(endpoints.size())];
      if (t != v) chosen.insert(t);
    }
    for (VertexId t : chosen) {
      out.push_back(Edge{std::min(v, t), std::max(v, t)});
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return out;
}

std::vector<Edge> WattsStrogatz(VertexId n, VertexId k, double beta,
                                std::uint64_t seed) {
  TRIENUM_CHECK(n > 2 * k && k >= 1);
  SplitMix64 rng(seed);
  std::unordered_set<std::uint64_t> seen;
  std::vector<Edge> out;
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId d = 1; d <= k; ++d) {
      VertexId t = (v + d) % n;
      if (rng.NextDouble() < beta) {
        // Rewire to a uniform non-neighbour.
        std::size_t guard = 0;
        do {
          t = static_cast<VertexId>(rng.Below(n));
        } while ((t == v || seen.count(EdgeKey(v, t)) != 0) && ++guard < 64);
        if (t == v || seen.count(EdgeKey(v, t)) != 0) continue;
      }
      if (!seen.insert(EdgeKey(v, t)).second) continue;
      out.push_back(Edge{std::min(v, t), std::max(v, t)});
    }
  }
  return out;
}

}  // namespace trienum::graph
