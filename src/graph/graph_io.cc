#include "graph/graph_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace trienum::graph {

Result<std::vector<Edge>> ReadEdgeListText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<Edge> edges;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    std::uint64_t u, v;
    if (!(ss >> u >> v)) {
      return Status::InvalidArgument("parse error at " + path + ":" +
                                     std::to_string(lineno));
    }
    if (u > 0xFFFFFFFFULL || v > 0xFFFFFFFFULL) {
      return Status::OutOfRange("vertex id exceeds 32 bits at " + path + ":" +
                                std::to_string(lineno));
    }
    edges.push_back(Edge{static_cast<VertexId>(u), static_cast<VertexId>(v)});
  }
  return edges;
}

Status WriteEdgeListText(const std::string& path, const std::vector<Edge>& edges) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (const Edge& e : edges) out << e.u << ' ' << e.v << '\n';
  if (!out) return Status::IoError("write failed on " + path);
  return Status::OK();
}

Result<std::vector<Edge>> ReadEdgeListBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) return Status::IoError("truncated header in " + path);
  std::vector<Edge> edges(count);
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(count * sizeof(Edge)));
  if (!in) return Status::IoError("truncated payload in " + path);
  return edges;
}

Status WriteEdgeListBinary(const std::string& path, const std::vector<Edge>& edges) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  std::uint64_t count = edges.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(edges.data()),
            static_cast<std::streamsize>(count * sizeof(Edge)));
  if (!out) return Status::IoError("write failed on " + path);
  return Status::OK();
}

namespace {

bool IsBinaryPath(const std::string& path) {
  auto ends_with = [&](const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
  };
  return ends_with(".bin") || ends_with(".bedges");
}

}  // namespace

Result<std::vector<Edge>> ReadEdgeListAuto(const std::string& path) {
  if (IsBinaryPath(path)) return ReadEdgeListBinary(path);
  return ReadEdgeListText(path);
}

Status ConvertEdgeList(const std::string& src, const std::string& dst) {
  TRIENUM_ASSIGN_OR_RETURN(std::vector<Edge> edges, ReadEdgeListAuto(src));
  if (IsBinaryPath(dst)) return WriteEdgeListBinary(dst, edges);
  return WriteEdgeListText(dst, edges);
}

}  // namespace trienum::graph
