// Deterministic synthetic graph generators covering every input regime the
// paper's theorems distinguish: sparse random graphs, heavy-tailed degree
// graphs (which exercise the high-degree-vertex step), cliques (the lower
// bound's t = Theta(E^{3/2}) witness), tripartite join graphs (the 5NF
// application of the introduction), and triangle-free controls.
#ifndef TRIENUM_GRAPH_GENERATORS_H_
#define TRIENUM_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace trienum::graph {

/// Erdos-Renyi G(n, m): m distinct edges drawn uniformly; deterministic in
/// `seed`.
std::vector<Edge> Gnm(VertexId n, std::size_t m, std::uint64_t seed);

/// Complete graph K_k: C(k,2) edges and C(k,3) triangles — the lower-bound
/// witness with t = Theta(E^{3/2}).
std::vector<Edge> Clique(VertexId k);

/// K_k plus a path of `path_len` extra vertices hanging off vertex 0: dense
/// core + sparse periphery, stressing the high-degree split.
std::vector<Edge> CliquePlusPath(VertexId k, VertexId path_len);

/// Complete tripartite graph K_{a,b,c}: parts A, B, C with all cross edges;
/// a*b*c triangles. This is the join graph of the paper's Sells example.
std::vector<Edge> CompleteTripartite(VertexId a, VertexId b, VertexId c);

/// R-MAT recursive-matrix graph with skewed (power-law-ish) degrees.
/// `scale` gives n = 2^scale vertices; probabilities (pa, pb, pc) with
/// pd = 1 - pa - pb - pc.
std::vector<Edge> Rmat(int scale, std::size_t m, double pa, double pb, double pc,
                       std::uint64_t seed);

/// `base_edges` random edges plus `planted` vertex-disjoint triangles.
std::vector<Edge> PlantedTriangles(VertexId n, std::size_t base_edges,
                                   std::size_t planted, std::uint64_t seed);

/// Star with `n` leaves (triangle-free, maximally skewed degree).
std::vector<Edge> Star(VertexId n);

/// Simple path on n vertices (triangle-free).
std::vector<Edge> PathGraph(VertexId n);

/// Cycle on n vertices (one triangle iff n == 3).
std::vector<Edge> CycleGraph(VertexId n);

/// Random bipartite graph (triangle-free control with nontrivial structure).
std::vector<Edge> BipartiteRandom(VertexId left, VertexId right, std::size_t m,
                                  std::uint64_t seed);

/// Disjoint union of `k` cliques of size `s` each (many medium-degree hubs).
std::vector<Edge> CliqueUnion(VertexId k, VertexId s);

/// Barabasi-Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices chosen proportionally to degree (heavy tail
/// with a different shape than R-MAT).
std::vector<Edge> BarabasiAlbert(VertexId n, VertexId attach, std::uint64_t seed);

/// Watts-Strogatz small world: ring lattice with `k` nearest neighbours per
/// side, each edge rewired with probability `beta` (high clustering —
/// triangle-rich at low beta).
std::vector<Edge> WattsStrogatz(VertexId n, VertexId k, double beta,
                                std::uint64_t seed);

}  // namespace trienum::graph

#endif  // TRIENUM_GRAPH_GENERATORS_H_
