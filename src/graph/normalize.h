// The paper's §1.3 input normalization, implemented as an external-memory
// pipeline of sorts and scans (O(sort(E)) I/Os): drop self-loops and
// duplicates, relabel vertices by degree rank (ties broken by original id,
// an "arbitrary but consistent" order), orient each edge as (u, v) with
// u < v in the new id space, and sort lexicographically — so every vertex's
// forward neighbour list is contiguous on disk.
#ifndef TRIENUM_GRAPH_NORMALIZE_H_
#define TRIENUM_GRAPH_NORMALIZE_H_

#include <vector>

#include "em/array.h"
#include "graph/types.h"

namespace trienum::graph {

/// \brief A normalized graph resident on the simulated device.
///
/// Invariants: vertex ids are 0..num_vertices-1 in non-decreasing degree
/// order; every edge has u < v; edges are lexicographically sorted; degrees
/// is indexed by (new) vertex id.
struct EmGraph {
  em::Array<Edge> edges;
  VertexId num_vertices = 0;
  em::Array<std::uint32_t> degrees;

  std::size_t num_edges() const { return edges.size(); }
};

/// Normalizes an on-device edge array (arbitrary ids, possible self-loops
/// and duplicates) into an EmGraph. Costs O(sort(E)) I/Os, all counted.
/// If `new_to_old` is non-null it receives the inverse relabeling.
EmGraph NormalizeEdges(em::QuerySession& ctx, em::Array<Edge> raw,
                       std::vector<VertexId>* new_to_old = nullptr);

/// Uploads host edges to the device and normalizes them.
EmGraph BuildEmGraph(em::QuerySession& ctx, const std::vector<Edge>& raw,
                     std::vector<VertexId>* new_to_old = nullptr);

/// Reads the normalized edges back to the host without touching I/O
/// accounting (verification helper).
std::vector<Edge> DownloadEdges(const EmGraph& g);

}  // namespace trienum::graph

#endif  // TRIENUM_GRAPH_NORMALIZE_H_
