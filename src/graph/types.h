// Core graph types. An Edge packs two 32-bit vertex ids into one 64-bit
// word, matching the paper's accounting where an edge occupies one memory
// word. ColoredEdge additionally stores the colors of both endpoints, as the
// cache-oblivious recursion requires ("the color of each vertex is stored
// within the vertex").
#ifndef TRIENUM_GRAPH_TYPES_H_
#define TRIENUM_GRAPH_TYPES_H_

#include <cstdint>
#include <tuple>

#include "extsort/sort_key.h"

namespace trienum::graph {

using VertexId = std::uint32_t;

/// Undirected edge, stored with u < v (after normalization).
struct Edge {
  VertexId u = 0;
  VertexId v = 0;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.u == b.u && a.v == b.v;
  }
  friend bool operator<(const Edge& a, const Edge& b) {
    return std::tie(a.u, a.v) < std::tie(b.u, b.v);
  }
};

/// Edge carrying the current colors of both endpoints (paper Section 3).
struct ColoredEdge {
  VertexId u = 0;
  VertexId v = 0;
  std::uint32_t cu = 0;
  std::uint32_t cv = 0;

  friend bool operator==(const ColoredEdge& a, const ColoredEdge& b) {
    return a.u == b.u && a.v == b.v && a.cu == b.cu && a.cv == b.cv;
  }
};

/// A triangle with vertices in increasing id order.
struct Triangle {
  VertexId a = 0;
  VertexId b = 0;
  VertexId c = 0;

  friend bool operator==(const Triangle& x, const Triangle& y) {
    return x.a == y.a && x.b == y.b && x.c == y.c;
  }
  friend bool operator<(const Triangle& x, const Triangle& y) {
    return std::tie(x.a, x.b, x.c) < std::tie(y.a, y.b, y.c);
  }
};

/// Uniform accessors so the algorithm templates work on both edge types.
template <typename E>
struct EdgeAccess;

template <>
struct EdgeAccess<Edge> {
  static constexpr bool kColored = false;
  static VertexId U(const Edge& e) { return e.u; }
  static VertexId V(const Edge& e) { return e.v; }
  static std::uint32_t CU(const Edge&) { return 0; }
  static std::uint32_t CV(const Edge&) { return 0; }
};

template <>
struct EdgeAccess<ColoredEdge> {
  static constexpr bool kColored = true;
  static VertexId U(const ColoredEdge& e) { return e.u; }
  static VertexId V(const ColoredEdge& e) { return e.v; }
  static std::uint32_t CU(const ColoredEdge& e) { return e.cu; }
  static std::uint32_t CV(const ColoredEdge& e) { return e.cv; }
};

/// Lexicographic (u, v) order; the canonical on-disk order of §1.3 ("these
/// tuples are sorted lexicographically"). The comparators below implement
/// the sort engine's Key/kKeyComplete protocol (extsort/sort_key.h) with
/// extsort::PackKey packing the two 32-bit ids.
struct LexLess {
  /// (u, v) is the full order, so the packed key is complete: equal keys
  /// mean comparator-equivalent records.
  static constexpr bool kKeyComplete = true;
  template <typename E>
  static std::uint64_t Key(const E& e) {
    using A = EdgeAccess<E>;
    return extsort::PackKey(A::U(e), A::V(e));
  }
  template <typename E>
  bool operator()(const E& a, const E& b) const {
    using A = EdgeAccess<E>;
    VertexId au = A::U(a), av = A::V(a), bu = A::U(b), bv = A::V(b);
    return au != bu ? au < bu : av < bv;
  }
};

/// Order by larger endpoint, then smaller (used by Lemma 1's second pass).
struct ByMaxLess {
  static constexpr bool kKeyComplete = true;
  template <typename E>
  static std::uint64_t Key(const E& e) {
    using A = EdgeAccess<E>;
    return extsort::PackKey(A::V(e), A::U(e));
  }
  template <typename E>
  bool operator()(const E& a, const E& b) const {
    using A = EdgeAccess<E>;
    VertexId au = A::U(a), av = A::V(a), bu = A::U(b), bv = A::V(b);
    return av != bv ? av < bv : au < bu;
  }
};

/// Color-class order (cu, cv, u, v): groups a colored edge list by class,
/// ids inside a class — the bucket-sort order of §2 step 2, the §4
/// derandomizer's class grouping, and the 4-clique bucketing. The 128-bit
/// order radix-sorts on its leading (cu, cv) key; the engine finishes
/// equal-class runs with the comparator (kKeyComplete == false).
struct ColorClassLess {
  static constexpr bool kKeyComplete = false;
  static std::uint64_t Key(const ColoredEdge& e) {
    return extsort::PackKey(e.cu, e.cv);
  }
  bool operator()(const ColoredEdge& a, const ColoredEdge& b) const {
    return std::tie(a.cu, a.cv, a.u, a.v) < std::tie(b.cu, b.cv, b.u, b.v);
  }
};

}  // namespace trienum::graph

#endif  // TRIENUM_GRAPH_TYPES_H_
