// Plain-text and binary edge-list persistence (for the examples and for
// interchange with standard graph datasets: one "u v" pair per line,
// '#'-prefixed comment lines ignored — the SNAP convention).
#ifndef TRIENUM_GRAPH_GRAPH_IO_H_
#define TRIENUM_GRAPH_GRAPH_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace trienum::graph {

/// Parses a whitespace-separated edge list. Lines starting with '#' or '%'
/// are comments; blank lines are skipped.
Result<std::vector<Edge>> ReadEdgeListText(const std::string& path);

/// Writes "u v" per line.
Status WriteEdgeListText(const std::string& path, const std::vector<Edge>& edges);

/// Compact binary format: u64 count, then count packed Edge records.
Result<std::vector<Edge>> ReadEdgeListBinary(const std::string& path);
Status WriteEdgeListBinary(const std::string& path, const std::vector<Edge>& edges);

/// Reads an edge list dispatching on extension: `.bin` / `.bedges` load the
/// binary format, everything else the text format.
Result<std::vector<Edge>> ReadEdgeListAuto(const std::string& path);

/// Converts between the two on-disk formats (each side dispatched by
/// extension via ReadEdgeListAuto / the matching writer).
Status ConvertEdgeList(const std::string& src, const std::string& dst);

}  // namespace trienum::graph

#endif  // TRIENUM_GRAPH_GRAPH_IO_H_
