// Fixed-size host thread pool with deterministic fork/join helpers.
//
// The pool exists to parallelize *pure host compute between I/O charges*:
// radix histograms and scatters over run buffers, batched GF(2^61-1)
// refinement bits, Lemma 2 cone probes over a resident chunk. Workers never
// touch the em:: layer — every Scanner/Writer charge stays on the calling
// thread, which is why IoStats are invariant in the thread count by
// construction (and pinned by tests/test_parallel.cc).
//
// Shape: one process-wide pool (Global()), lazily spawning up to N-1
// workers the first time a parallel region actually fans out; the caller
// participates as worker N. One region runs at a time; nested fan-out is a
// library bug and is rejected with a TRIENUM_CHECK. Determinism comes from
// partition.h: ParallelFor splits [0, n) into stable contiguous ranges and
// ParallelReduce combines partial results in partition order, so results
// reproduce the serial left-to-right computation exactly regardless of
// which worker ran which partition when.
#ifndef TRIENUM_PAR_THREAD_POOL_H_
#define TRIENUM_PAR_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "par/par_config.h"
#include "par/partition.h"

namespace trienum::par {

/// \brief The process-wide worker pool.
///
/// Use through ParallelFor / ParallelReduce; Run is the low-level fork/join
/// primitive they share.
class ThreadPool {
 public:
  /// The singleton pool. Workers are not spawned until the first Run that
  /// needs them (lazy spawn), so serial processes never pay for threads.
  static ThreadPool& Global();

  /// Executes task(i) once for every i in [0, parts), distributing parts
  /// over up to `threads` threads (the caller participates), and blocks
  /// until every part has finished. Part-to-worker assignment is dynamic —
  /// callers must make parts independent and merge any results in part
  /// order to stay deterministic. `task` must not throw and must not touch
  /// the em:: accounting layer.
  void Run(std::size_t parts, std::size_t threads,
           const std::function<void(std::size_t)>& task);

  /// True while the current thread is executing inside a parallel region
  /// (used to reject nested fan-out).
  static bool InParallelRegion();

  /// Workers spawned so far (test / telemetry hook; grows lazily, never
  /// shrinks until process exit).
  std::size_t spawned_workers() const;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool() = default;
  ~ThreadPool();

  void EnsureWorkers(std::size_t want);
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_work_;  // workers: a new generation is posted
  std::condition_variable cv_done_;  // caller: all parts of the region done
  std::vector<std::thread> workers_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t parts_ = 0;
  std::size_t next_ = 0;  // next unclaimed part
  std::size_t done_ = 0;  // completed parts
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

/// \brief Runs fn(lo, hi) over a stable contiguous partition of [0, n).
///
/// Grain control: no partition holds fewer than `grain` items, and at most
/// Threads() partitions are made; when that leaves a single partition (small
/// n, or Threads() == 1 — the default) fn runs inline on the caller with no
/// pool interaction at all, so the serial path is exactly the pre-subsystem
/// code. Nested fan-out (a ParallelFor that would use the pool from inside a
/// worker) is rejected; a nested call that resolves to one partition runs
/// inline, which keeps small helper loops composable.
template <typename Fn>
void ParallelFor(std::size_t n, std::size_t grain, Fn&& fn) {
  const std::size_t parts = PartsFor(n, Threads(), grain);
  if (parts == 0) return;
  if (parts == 1) {
    fn(std::size_t{0}, n);
    return;
  }
  TRIENUM_CHECK_MSG(!ThreadPool::InParallelRegion(),
                    "nested ParallelFor fan-out inside a pool worker");
  const std::function<void(std::size_t)> task = [&](std::size_t i) {
    const Range r = PartRange(n, parts, i);
    fn(r.lo, r.hi);
  };
  ThreadPool::Global().Run(parts, Threads(), task);
}

/// \brief Deterministic ordered reduction over [0, n).
///
/// map(lo, hi) produces one partial result per stable partition;
/// combine(acc, partial) folds them *in partition order*, so the result is
/// identical to map(0, n) whenever combine is associative over adjacent
/// ranges (concatenation, sums, counters) — regardless of thread schedule.
template <typename T, typename Map, typename Combine>
T ParallelReduce(std::size_t n, std::size_t grain, T init, Map map,
                 Combine combine) {
  const std::size_t parts = PartsFor(n, Threads(), grain);
  if (parts == 0) return init;
  if (parts == 1) return combine(std::move(init), map(std::size_t{0}, n));
  TRIENUM_CHECK_MSG(!ThreadPool::InParallelRegion(),
                    "nested ParallelReduce fan-out inside a pool worker");
  std::vector<T> partials(parts);
  const std::function<void(std::size_t)> task = [&](std::size_t i) {
    const Range r = PartRange(n, parts, i);
    partials[i] = map(r.lo, r.hi);
  };
  ThreadPool::Global().Run(parts, Threads(), task);
  T acc = std::move(init);
  for (std::size_t i = 0; i < parts; ++i) {
    acc = combine(std::move(acc), std::move(partials[i]));
  }
  return acc;
}

}  // namespace trienum::par

#endif  // TRIENUM_PAR_THREAD_POOL_H_
