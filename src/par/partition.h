// Stable range splitting: the determinism substrate of the par subsystem.
//
// Every parallel kernel in the library decomposes its input into contiguous
// partitions of [0, n), hands partition i to some worker, and merges the
// per-partition results *in partition order*. Because the split depends only
// on (n, parts) — never on thread scheduling — the merged result reproduces
// the serial left-to-right order exactly, which is what makes threads=N
// bit-for-bit equivalent to threads=1 (triangle output, enumeration order,
// radix stability) throughout.
#ifndef TRIENUM_PAR_PARTITION_H_
#define TRIENUM_PAR_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace trienum::par {

/// One contiguous partition [lo, hi) of an index range.
struct Range {
  std::size_t lo = 0;
  std::size_t hi = 0;
  std::size_t size() const { return hi - lo; }
};

/// Number of partitions to split `n` items into under `grain` control: at
/// most `threads`, and never so many that a partition would hold fewer than
/// `grain` items. 0 for an empty range, 1 when parallelism cannot pay.
inline std::size_t PartsFor(std::size_t n, std::size_t threads,
                            std::size_t grain) {
  if (n == 0) return 0;
  if (threads <= 1) return 1;
  if (grain == 0) grain = 1;
  const std::size_t by_grain = n / grain;  // partitions of >= grain items
  const std::size_t parts = threads < by_grain ? threads : by_grain;
  return parts == 0 ? 1 : parts;
}

/// Partition `i` of `n` items split into `parts` contiguous ranges whose
/// sizes differ by at most one (the first n % parts ranges get the extra
/// item). Deterministic in (n, parts, i): concatenating partitions 0..parts-1
/// is exactly [0, n).
inline Range PartRange(std::size_t n, std::size_t parts, std::size_t i) {
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  const std::size_t lo = i * base + (i < extra ? i : extra);
  const std::size_t len = base + (i < extra ? 1 : 0);
  return Range{lo, lo + len};
}

/// All partitions of SplitRange order, materialized (tests / weighted-split
/// callers that iterate the whole decomposition).
inline std::vector<Range> SplitRange(std::size_t n, std::size_t parts) {
  std::vector<Range> out;
  if (n == 0 || parts == 0) return out;
  out.reserve(parts);
  for (std::size_t i = 0; i < parts; ++i) out.push_back(PartRange(n, parts, i));
  return out;
}

/// Splits items 0..weights.size() into at most `parts` contiguous ranges of
/// roughly equal total weight (boundaries at the smallest prefix reaching
/// ceil(k * total / parts)). Deterministic; never returns an empty range;
/// may return fewer than `parts` ranges when weights are concentrated. Used
/// by the Lemma 2 emit loop, where per-item work is a resident pivot run's
/// length rather than a constant.
inline std::vector<Range> SplitWeighted(const std::vector<std::uint64_t>& weights,
                                        std::size_t parts) {
  std::vector<Range> out;
  const std::size_t n = weights.size();
  if (n == 0 || parts == 0) return out;
  std::uint64_t total = 0;
  for (std::uint64_t w : weights) total += w;
  if (parts == 1 || total == 0) {
    out.push_back(Range{0, n});
    return out;
  }
  std::size_t lo = 0;
  std::uint64_t prefix = 0;
  for (std::size_t k = 1; k <= parts && lo < n; ++k) {
    // Target prefix weight for the end of range k (ceil division keeps the
    // last range from going empty).
    const std::uint64_t target = (total * k + parts - 1) / parts;
    std::size_t hi = lo;
    while (hi < n && (prefix < target || hi == lo)) {
      prefix += weights[hi];
      ++hi;
    }
    if (k == parts) hi = n;  // absorb any rounding tail
    out.push_back(Range{lo, hi});
    lo = hi;
  }
  return out;
}

}  // namespace trienum::par

#endif  // TRIENUM_PAR_PARTITION_H_
