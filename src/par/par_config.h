// Global thread configuration for the host-parallel execution subsystem.
//
// The Pagh–Silvestri model counts block transfers, not CPU cycles, so host
// compute (radix scatter, GF(2^61-1) refinement bits, Lemma 2 cone probes)
// may fan out across cores without perturbing a single counted I/O. The
// knob here is the *only* input the subsystem takes: a process-wide thread
// count, default 1, so every serial code path — and every existing test —
// is byte-for-byte unchanged until a caller opts in.
//
// Contract (enforced by tests/test_parallel.cc): for any thread count N,
// every algorithm produces identical triangle output, identical emission
// order, and identical IoStats to threads=1. Parallel kernels achieve this
// by only ever splitting pure host work over stable contiguous partitions
// (see partition.h) and merging results in partition order.
#ifndef TRIENUM_PAR_PAR_CONFIG_H_
#define TRIENUM_PAR_PAR_CONFIG_H_

#include <atomic>
#include <cstddef>
#include <thread>

namespace trienum::par {

/// Upper bound on the configured thread count: a safety clamp against
/// pathological SetThreads arguments, far above any real core count the
/// pool would help on.
inline constexpr std::size_t kMaxThreads = 256;

namespace internal {
inline std::atomic<std::size_t>& ThreadsStorage() {
  static std::atomic<std::size_t> threads{1};
  return threads;
}
}  // namespace internal

/// The machine's hardware concurrency (never 0: falls back to 1 when the
/// runtime cannot tell).
inline std::size_t HardwareThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

/// Current process-wide thread count consulted by ParallelFor /
/// ParallelReduce at entry. Default 1 (fully serial).
inline std::size_t Threads() {
  return internal::ThreadsStorage().load(std::memory_order_relaxed);
}

/// Sets the process-wide thread count. 0 means "use the hardware
/// concurrency"; values above kMaxThreads are clamped. The storage is
/// atomic, so a monitoring thread may read Threads() concurrently, but the
/// intended use is configuration from the main thread between parallel
/// regions — pool workers must never call this.
inline void SetThreads(std::size_t n) {
  if (n == 0) n = HardwareThreads();
  if (n > kMaxThreads) n = kMaxThreads;
  internal::ThreadsStorage().store(n, std::memory_order_relaxed);
}

/// RAII scope flipping the global thread count (tests / benches). Like
/// em::ScopedScanMode, the override is process-wide state: construct and
/// destroy it on the main thread only, never inside a pool worker.
class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) : saved_(Threads()) { SetThreads(n); }
  ~ScopedThreads() { SetThreads(saved_); }
  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  std::size_t saved_;
};

}  // namespace trienum::par

#endif  // TRIENUM_PAR_PAR_CONFIG_H_
