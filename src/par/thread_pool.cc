#include "par/thread_pool.h"

#include <string>

#include "obs/trace.h"

namespace trienum::par {
namespace {

/// Set while the current thread executes a part of some region; consulted by
/// the nested fan-out rejection in ParallelFor / ParallelReduce.
thread_local bool tls_in_region = false;

/// RAII flip of the region flag around one task invocation.
struct RegionScope {
  RegionScope() { tls_in_region = true; }
  ~RegionScope() { tls_in_region = false; }
};

}  // namespace

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::InParallelRegion() { return tls_in_region; }

std::size_t ThreadPool::spawned_workers() const {
  std::lock_guard<std::mutex> lk(mu_);
  return workers_.size();
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::EnsureWorkers(std::size_t want) {
  std::lock_guard<std::mutex> lk(mu_);
  while (workers_.size() < want) {
    const std::size_t id = workers_.size();
    workers_.emplace_back([this, id] {
      // Named tracks in --trace output: pool helpers show as their own
      // tids, so fan-out width and load balance are visible in the viewer.
      obs::SetCurrentThreadName("par-worker-" + std::to_string(id));
      WorkerLoop();
    });
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    cv_work_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    // Claim parts one at a time. Every claim re-checks the generation under
    // the lock, so a worker that drained the queue can never run a stale
    // task pointer against the next region's counters. Parts are coarse
    // (>= grain items each; at most ~Threads() of them), so the per-claim
    // lock is noise next to the work inside a part.
    while (generation_ == seen && next_ < parts_) {
      const std::size_t idx = next_++;
      const std::function<void(std::size_t)>* task = task_;
      lk.unlock();
      {
        // Wall-only span (workers never sample counters): one box per
        // claimed part on the worker's own track. The caller-inline path in
        // Run() is NOT instrumented — at threads=1 every part runs there,
        // and a per-part event flood would drown the phase spans.
        obs::Span span("par.task");
        RegionScope region;
        (*task)(idx);
      }
      lk.lock();
      if (++done_ == parts_) cv_done_.notify_all();
    }
  }
}

void ThreadPool::Run(std::size_t parts, std::size_t threads,
                     const std::function<void(std::size_t)>& task) {
  TRIENUM_CHECK(parts > 0);
  // One region at a time: Run is only entered from the (single) main
  // thread — nested fan-out from workers is rejected before reaching here.
  // The caller participates as one executor, so at most parts - 1 helpers
  // can ever claim a part.
  const std::size_t helpers =
      threads > 0 ? (threads - 1 < parts - 1 ? threads - 1 : parts - 1) : 0;
  EnsureWorkers(helpers);
  std::unique_lock<std::mutex> lk(mu_);
  task_ = &task;
  parts_ = parts;
  next_ = 0;
  done_ = 0;
  ++generation_;
  lk.unlock();
  cv_work_.notify_all();

  // The caller is a worker too; it claims parts alongside the pool.
  lk.lock();
  const std::uint64_t gen = generation_;
  while (generation_ == gen && next_ < parts_) {
    const std::size_t idx = next_++;
    lk.unlock();
    {
      RegionScope region;
      task(idx);
    }
    lk.lock();
    ++done_;
  }
  cv_done_.wait(lk, [&] { return done_ == parts_; });
  task_ = nullptr;
  parts_ = 0;
}

}  // namespace trienum::par
