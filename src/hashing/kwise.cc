#include "hashing/kwise.h"

#include "common/rng.h"

namespace trienum::hashing {

std::uint64_t MulMod61(std::uint64_t a, std::uint64_t b) {
  __uint128_t prod = static_cast<__uint128_t>(a) * b;
  std::uint64_t lo = static_cast<std::uint64_t>(prod & kMersenne61);
  std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
  std::uint64_t s = lo + hi;
  if (s >= kMersenne61) s -= kMersenne61;
  return s;
}

FourWiseHash::FourWiseHash(std::uint64_t seed) : seed_(seed) {
  SplitMix64 rng(seed);
  for (int i = 0; i < 4; ++i) a_[i] = rng.Next() % kMersenne61;
  if (a_[3] == 0) a_[3] = 1;  // keep the polynomial degree exactly 3
}

std::uint64_t FourWiseHash::operator()(std::uint64_t x) const {
  std::uint64_t xm = x % kMersenne61;
  // Horner evaluation: ((a3*x + a2)*x + a1)*x + a0.
  std::uint64_t h = a_[3];
  h = AddMod61(MulMod61(h, xm), a_[2]);
  h = AddMod61(MulMod61(h, xm), a_[1]);
  h = AddMod61(MulMod61(h, xm), a_[0]);
  return h;
}

}  // namespace trienum::hashing
