#include "hashing/kwise.h"

#include "common/rng.h"

namespace trienum::hashing {

FourWiseHash::FourWiseHash(std::uint64_t seed) : seed_(seed) {
  SplitMix64 rng(seed);
  for (int i = 0; i < 4; ++i) a_[i] = rng.Next() % kMersenne61;
  if (a_[3] == 0) a_[3] = 1;  // keep the polynomial degree exactly 3
}

}  // namespace trienum::hashing
