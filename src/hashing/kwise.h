// k-wise independent hashing via random polynomials over GF(p), p = 2^61 - 1.
//
// The paper's algorithms draw vertex colorings from a 4-wise independent
// family (Section 2, step 2; Section 3, step 2). A degree-(k-1) polynomial
// with uniform coefficients over a prime field is the textbook k-wise
// independent family.
#ifndef TRIENUM_HASHING_KWISE_H_
#define TRIENUM_HASHING_KWISE_H_

#include <array>
#include <cstdint>

namespace trienum::hashing {

/// Mersenne prime 2^61 - 1 used as the field modulus.
inline constexpr std::uint64_t kMersenne61 = (std::uint64_t{1} << 61) - 1;

/// (a * b) mod (2^61 - 1) without overflow. Inline: this runs twice per
/// vertex-color evaluation on the recursion's hottest loop.
inline std::uint64_t MulMod61(std::uint64_t a, std::uint64_t b) {
  __uint128_t prod = static_cast<__uint128_t>(a) * b;
  std::uint64_t lo = static_cast<std::uint64_t>(prod & kMersenne61);
  std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
  std::uint64_t s = lo + hi;
  if (s >= kMersenne61) s -= kMersenne61;
  return s;
}

/// (a + b) mod (2^61 - 1).
inline std::uint64_t AddMod61(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a + b;
  if (s >= kMersenne61) s -= kMersenne61;
  return s;
}

/// \brief 4-wise independent hash h : u64 -> [0, 2^61-1).
///
/// h(x) = a3*x^3 + a2*x^2 + a1*x + a0 over GF(2^61 - 1), coefficients drawn
/// deterministically from `seed`.
///
/// Every evaluator is const and touches only the immutable coefficient
/// array, so a constructed hash may be called concurrently from par pool
/// workers — the contract the batched refinement-bit kernel (the §3
/// recursion's counting scan in cache_oblivious.cc) relies on.
class FourWiseHash {
 public:
  FourWiseHash() : FourWiseHash(0) {}
  explicit FourWiseHash(std::uint64_t seed);

  /// Full 61-bit hash value.
  std::uint64_t operator()(std::uint64_t x) const {
    // Vertex ids are < 2^32 < p, so the reduction is almost always the
    // identity — skip the 64-bit division on that path.
    std::uint64_t xm = x < kMersenne61 ? x : x % kMersenne61;
    // Horner evaluation: ((a3*x + a2)*x + a1)*x + a0.
    std::uint64_t h = a_[3];
    h = AddMod61(MulMod61(h, xm), a_[2]);
    h = AddMod61(MulMod61(h, xm), a_[1]);
    h = AddMod61(MulMod61(h, xm), a_[0]);
    return h;
  }

  /// One (pairwise-exactly, 4-wise almost) unbiased bit.
  std::uint32_t Bit(std::uint64_t x) const {
    return static_cast<std::uint32_t>((*this)(x)&1u);
  }

  /// Both refinement bits of an edge's endpoints in one batched evaluation:
  /// Bit(x) | Bit(y) << 1. The two Horner chains are interleaved so their
  /// independent multiply trees pipeline instead of serializing — the §3
  /// recursion evaluates this once per record per node, its hottest hashing
  /// site.
  std::uint32_t PairBits(std::uint64_t x, std::uint64_t y) const {
    std::uint64_t xm = x < kMersenne61 ? x : x % kMersenne61;
    std::uint64_t ym = y < kMersenne61 ? y : y % kMersenne61;
    std::uint64_t hx = a_[3];
    std::uint64_t hy = a_[3];
    hx = AddMod61(MulMod61(hx, xm), a_[2]);
    hy = AddMod61(MulMod61(hy, ym), a_[2]);
    hx = AddMod61(MulMod61(hx, xm), a_[1]);
    hy = AddMod61(MulMod61(hy, ym), a_[1]);
    hx = AddMod61(MulMod61(hx, xm), a_[0]);
    hy = AddMod61(MulMod61(hy, ym), a_[0]);
    return static_cast<std::uint32_t>((hx & 1u) | ((hy & 1u) << 1));
  }

  /// Color in [0, c) for power-of-two c (low bits of the hash).
  std::uint32_t Color(std::uint64_t x, std::uint32_t c_pow2) const {
    return static_cast<std::uint32_t>((*this)(x) & (c_pow2 - 1));
  }

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::array<std::uint64_t, 4> a_;
};

}  // namespace trienum::hashing

#endif  // TRIENUM_HASHING_KWISE_H_
