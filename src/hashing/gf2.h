// Arithmetic in GF(2^m) for the Alon-Goldreich-Hastad-Peralta epsilon-biased
// sample space (paper Lemma 6, used by the Section 4 derandomization).
#ifndef TRIENUM_HASHING_GF2_H_
#define TRIENUM_HASHING_GF2_H_

#include <cstdint>

namespace trienum::hashing {

/// \brief The finite field GF(2^m), 1 <= m <= 30, with a self-found
/// irreducible modulus.
class GF2m {
 public:
  /// Constructs the field, searching for the lexicographically first
  /// irreducible polynomial of degree m (deterministic).
  explicit GF2m(int m);

  int m() const { return m_; }
  std::uint64_t modulus() const { return modulus_; }
  std::uint64_t order() const { return std::uint64_t{1} << m_; }

  /// Carry-less product reduced mod the field polynomial.
  std::uint64_t Mul(std::uint64_t a, std::uint64_t b) const;

  /// a^e by square-and-multiply.
  std::uint64_t Pow(std::uint64_t a, std::uint64_t e) const;

  /// Parity of (a AND b): the standard inner product over GF(2)^m.
  static std::uint32_t InnerProduct(std::uint64_t a, std::uint64_t b);

  /// True if `poly` (with degree = bit length - 1) is irreducible over
  /// GF(2). Exposed for tests.
  static bool IsIrreducible(std::uint64_t poly, int degree);

 private:
  int m_;
  std::uint64_t modulus_;  // degree-m polynomial, bit i = coefficient of x^i
};

}  // namespace trienum::hashing

#endif  // TRIENUM_HASHING_GF2_H_
