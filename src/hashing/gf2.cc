#include "hashing/gf2.h"

#include "common/status.h"

namespace trienum::hashing {
namespace {

// Carry-less multiplication of polynomials over GF(2); inputs must keep the
// result under 64 bits.
std::uint64_t ClMul(std::uint64_t a, std::uint64_t b) {
  std::uint64_t r = 0;
  while (b != 0) {
    if (b & 1) r ^= a;
    a <<= 1;
    b >>= 1;
  }
  return r;
}

int Degree(std::uint64_t p) {
  if (p == 0) return -1;
  return 63 - __builtin_clzll(p);
}

// a mod f in GF(2)[x].
std::uint64_t PolyMod(std::uint64_t a, std::uint64_t f) {
  int df = Degree(f);
  for (int d = Degree(a); d >= df; d = Degree(a)) {
    a ^= f << (d - df);
  }
  return a;
}

std::uint64_t PolyMulMod(std::uint64_t a, std::uint64_t b, std::uint64_t f) {
  return PolyMod(ClMul(a, b), f);
}

std::uint64_t PolyGcd(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    std::uint64_t r = PolyMod(a, b);
    a = b;
    b = r;
  }
  return a;
}

// x^(2^k) mod f, by k successive squarings of x.
std::uint64_t XPow2k(int k, std::uint64_t f) {
  std::uint64_t r = 0b10;  // the polynomial x
  for (int i = 0; i < k; ++i) r = PolyMulMod(r, r, f);
  return r;
}

}  // namespace

bool GF2m::IsIrreducible(std::uint64_t poly, int degree) {
  if (degree <= 0) return false;
  if ((poly & 1) == 0) return false;  // divisible by x
  // Rabin's test: x^(2^m) == x (mod f), and for each prime divisor q of m,
  // gcd(x^(2^(m/q)) - x, f) == 1.
  std::uint64_t xq = XPow2k(degree, poly);
  if (xq != 0b10) return false;
  int m = degree;
  for (int q = 2; q <= m; ++q) {
    if (m % q != 0) continue;
    bool prime = true;
    for (int d = 2; d * d <= q; ++d) {
      if (q % d == 0) {
        prime = false;
        break;
      }
    }
    if (!prime) continue;
    std::uint64_t h = XPow2k(m / q, poly) ^ 0b10;
    if (PolyGcd(poly, h) != 1) return false;
  }
  return true;
}

GF2m::GF2m(int m) : m_(m) {
  TRIENUM_CHECK_MSG(m >= 1 && m <= 30, "GF(2^m) supported for 1 <= m <= 30");
  std::uint64_t top = std::uint64_t{1} << m;
  modulus_ = 0;
  for (std::uint64_t low = 1; low < top; low += 2) {
    std::uint64_t cand = top | low;
    if (IsIrreducible(cand, m)) {
      modulus_ = cand;
      break;
    }
  }
  TRIENUM_CHECK_MSG(modulus_ != 0, "no irreducible polynomial found");
}

std::uint64_t GF2m::Mul(std::uint64_t a, std::uint64_t b) const {
  return PolyMod(ClMul(a, b), modulus_);
}

std::uint64_t GF2m::Pow(std::uint64_t a, std::uint64_t e) const {
  std::uint64_t r = 1;
  std::uint64_t base = a;
  while (e != 0) {
    if (e & 1) r = Mul(r, base);
    base = Mul(base, base);
    e >>= 1;
  }
  return r;
}

std::uint32_t GF2m::InnerProduct(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint32_t>(__builtin_popcountll(a & b) & 1);
}

}  // namespace trienum::hashing
