// Candidate two-coloring families for the Section 4 derandomization.
//
// The paper (Lemma 6, citing Alon-Goldreich-Hastad-Peralta) uses an almost
// 4-wise independent family of t = O((log V / alpha)^2) bit functions and
// scans it for one satisfying the potential inequality (4). Two families are
// provided:
//
//  * AghpBitFunction — the genuine epsilon-biased "powering" construction
//    over GF(2^m): sample point (x, y), bit_v = <x^v, y>. Its bias is
//    verifiable (tested) and the family is deterministically enumerable, but
//    its theoretical size makes exhaustive scans practical only for small
//    inputs.
//  * FourWiseBitCandidates — a fixed deterministic schedule of seeds into
//    the exactly-4-wise polynomial family. The derandomizer's greedy
//    first-fit over this schedule terminates after O(1) candidates in
//    expectation (Markov on the potential), so the deterministic algorithm
//    runs at full speed. See DESIGN.md §2 for why this substitution
//    preserves the algorithmic structure.
#ifndef TRIENUM_HASHING_BIT_FAMILY_H_
#define TRIENUM_HASHING_BIT_FAMILY_H_

#include <cstdint>

#include "hashing/gf2.h"
#include "hashing/kwise.h"

namespace trienum::hashing {

/// \brief One function from the AGHP epsilon-biased space.
///
/// b(v) = <x^(v+1), y> over GF(2^m). For n points the bias is at most
/// (n - 1) / 2^m.
class AghpBitFunction {
 public:
  AghpBitFunction(const GF2m* field, std::uint64_t x, std::uint64_t y)
      : field_(field), x_(x), y_(y) {}

  std::uint32_t Bit(std::uint64_t v) const {
    return GF2m::InnerProduct(field_->Pow(x_, v + 1), y_);
  }

 private:
  const GF2m* field_;
  std::uint64_t x_;
  std::uint64_t y_;
};

/// \brief Deterministic enumeration of the AGHP family (index -> (x, y)).
class AghpFamily {
 public:
  explicit AghpFamily(int m) : field_(m) {}

  std::uint64_t size() const { return field_.order() * field_.order(); }

  AghpBitFunction Get(std::uint64_t index) const {
    std::uint64_t x = index % field_.order();
    std::uint64_t y = index / field_.order();
    return AghpBitFunction(&field_, x, y);
  }

  const GF2m& field() const { return field_; }

 private:
  GF2m field_;
};

/// \brief Deterministic schedule of candidate bit functions for the greedy
/// derandomizer (fixed base seed; candidate j uses SplitMix64 stream j).
class FourWiseBitCandidates {
 public:
  /// Base constant fixed once for the library: the deterministic algorithm's
  /// output never depends on external randomness.
  static constexpr std::uint64_t kScheduleBase = 0xD3C0D3D1A6E5ULL;

  static FourWiseHash Candidate(std::uint64_t round, std::uint64_t j) {
    return FourWiseHash(kScheduleBase ^ (round * 0x9E3779B97F4A7C15ULL) ^
                        Mix(j + 1));
  }

 private:
  static std::uint64_t Mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
};

}  // namespace trienum::hashing

#endif  // TRIENUM_HASHING_BIT_FAMILY_H_
