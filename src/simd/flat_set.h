// Open-addressed membership set over 64-bit keys, with a batched 4-probe
// lookup for the clique4 wedge join.
//
// Replaces std::unordered_set on the join's hot path: linear probing over a
// power-of-two flat array (no per-node mallocs, no bucket chasing), key 0
// reserved as the empty sentinel — packed edges (u << 32 | v with u < v)
// are never 0. The batched ContainsAll4 services one join candidate's four
// membership tests: under the scalar policy it short-circuits like the
// naive `&&` chain; under the vector policies it computes all four hashes
// up front so the (usually cache-missing) slot loads overlap. Results are
// identical either way — membership is pure — which is what the kernels
// on/off differential suite pins.
#ifndef TRIENUM_SIMD_FLAT_SET_H_
#define TRIENUM_SIMD_FLAT_SET_H_

#include <cstdint>
#include <vector>

#include "simd/kernel_policy.h"

namespace trienum::simd {

class FlatU64Set {
 public:
  /// Clears and sizes the table for `expected` keys at <= 50% load.
  void Reset(std::size_t expected) {
    std::size_t cap = 16;
    while (cap < 2 * expected) cap <<= 1;
    slots_.assign(cap, 0);
    mask_ = cap - 1;
  }

  /// Inserts `key` (key != 0; duplicates are fine).
  void Insert(std::uint64_t key) {
    std::size_t i = Hash(key);
    while (slots_[i] != 0 && slots_[i] != key) i = (i + 1) & mask_;
    slots_[i] = key;
  }

  bool Contains(std::uint64_t key) const {
    std::size_t i = Hash(key);
    while (slots_[i] != 0) {
      if (slots_[i] == key) return true;
      i = (i + 1) & mask_;
    }
    return false;
  }

  /// All four keys present? The join's per-candidate test.
  bool ContainsAll4(std::uint64_t k0, std::uint64_t k1, std::uint64_t k2,
                    std::uint64_t k3) const {
    if (ActiveVariant() == KernelVariant::kScalar) {
      return Contains(k0) && Contains(k1) && Contains(k2) && Contains(k3);
    }
    // Batched: hash all four before touching the table, so the four slot
    // loads issue back-to-back instead of serializing behind each other.
    const std::size_t h0 = Hash(k0), h1 = Hash(k1), h2 = Hash(k2),
                      h3 = Hash(k3);
    const std::uint64_t s0 = slots_[h0], s1 = slots_[h1], s2 = slots_[h2],
                        s3 = slots_[h3];
    if (s0 == k0 && s1 == k1 && s2 == k2 && s3 == k3) return true;
    return ContainsFrom(k0, h0, s0) && ContainsFrom(k1, h1, s1) &&
           ContainsFrom(k2, h2, s2) && ContainsFrom(k3, h3, s3);
  }

 private:
  std::size_t Hash(std::uint64_t key) const {
    // splitmix64 finalizer-style mix; high bits feed the mask.
    key ^= key >> 33;
    key *= 0xFF51AFD7ED558CCDull;
    key ^= key >> 33;
    return static_cast<std::size_t>(key) & mask_;
  }

  /// Resumes a probe whose first slot `s = slots_[i]` is already loaded.
  bool ContainsFrom(std::uint64_t key, std::size_t i, std::uint64_t s) const {
    while (s != 0) {
      if (s == key) return true;
      i = (i + 1) & mask_;
      s = slots_[i];
    }
    return false;
  }

  std::vector<std::uint64_t> slots_;
  std::size_t mask_ = 0;
};

}  // namespace trienum::simd

#endif  // TRIENUM_SIMD_FLAT_SET_H_
