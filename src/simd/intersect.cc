#include "simd/intersect.h"

#include <algorithm>
#include <array>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace trienum::simd {
namespace {

constexpr std::uint32_t kEmptySlot = 0xFFFFFFFFu;
constexpr std::uint32_t kFlatMapHashMul = 0x9E3779B1u;

/// Scalar two-pointer from an arbitrary intermediate state — the shared
/// tail of every merge variant, and (from (0, 0)) the reference itself.
IntersectStats ScalarMergeFrom(const std::uint32_t* a, std::size_t na,
                               const std::uint32_t* b, std::size_t nb,
                               std::size_t i, std::size_t j, std::size_t m,
                               std::uint32_t* out) {
  while (i < na && j < nb) {
    const std::uint32_t x = a[i], y = b[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      out[m++] = x;
      ++i;
      ++j;
    }
  }
  return IntersectStats{m, i, j};
}

/// The scalar two-pointer's termination state, in closed form: the side
/// with the smaller maximum exhausts, having consumed the other side up to
/// (and including) that maximum. The blocked kernels advance whole quads /
/// octets and so land past the scalar loop's exact stop point on one side
/// while still short on the other; matches are unaffected (discarded values
/// cannot match), and the consumed counts are reconstructed here.
IntersectStats FinishStats(const std::uint32_t* a, std::size_t na,
                           const std::uint32_t* b, std::size_t nb,
                           std::size_t m) {
  if (na == 0 || nb == 0) return IntersectStats{m, 0, 0};
  const std::uint32_t amax = a[na - 1], bmax = b[nb - 1];
  if (amax < bmax) {
    const std::size_t cb =
        static_cast<std::size_t>(std::upper_bound(b, b + nb, amax) - b);
    return IntersectStats{m, na, cb};
  }
  if (bmax < amax) {
    const std::size_t ca =
        static_cast<std::size_t>(std::upper_bound(a, a + na, bmax) - a);
    return IntersectStats{m, ca, nb};
  }
  return IntersectStats{m, na, nb};
}

/// High bit of each 32-bit half set if that half of `v` is zero. Borrow
/// from the low half can set the high half's bit spuriously (classic SWAR
/// caveat), so this is a no-false-negative *filter*: a set bit demands an
/// exact check, a clear word guarantees no match.
inline std::uint64_t ZeroHalves(std::uint64_t v) {
  return (v - 0x0000000100000001ull) & ~v & 0x8000000080000000ull;
}

inline std::uint64_t Pack2(const std::uint32_t* p) {
  return static_cast<std::uint64_t>(p[0]) |
         (static_cast<std::uint64_t>(p[1]) << 32);
}

#if defined(__AVX2__)
/// kCompact[mask] gathers the set lanes of an 8-lane vector to the front
/// (in lane order) under _mm256_permutevar8x32_epi32.
constexpr std::array<std::array<std::uint32_t, 8>, 256> MakeCompactTable() {
  std::array<std::array<std::uint32_t, 8>, 256> t{};
  for (int mask = 0; mask < 256; ++mask) {
    int k = 0;
    for (int lane = 0; lane < 8; ++lane) {
      if ((mask >> lane) & 1) {
        t[static_cast<std::size_t>(mask)][static_cast<std::size_t>(k++)] =
            static_cast<std::uint32_t>(lane);
      }
    }
  }
  return t;
}
constexpr auto kCompact = MakeCompactTable();
#endif  // __AVX2__

std::uint64_t PopcountScalar(const std::uint64_t* w, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::uint64_t>(__builtin_popcountll(w[i]));
  }
  return total;
}

/// Bit-sliced 64-bit popcount (Hacker's Delight) — the portable vectorized
/// variant: every instruction operates on all 64 bit positions at once.
inline std::uint64_t Popcount64Swar(std::uint64_t v) {
  v = v - ((v >> 1) & 0x5555555555555555ull);
  v = (v & 0x3333333333333333ull) + ((v >> 2) & 0x3333333333333333ull);
  v = (v + (v >> 4)) & 0x0F0F0F0F0F0F0F0Full;
  return (v * 0x0101010101010101ull) >> 56;
}

std::uint64_t PopcountSwar(const std::uint64_t* w, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += Popcount64Swar(w[i]);
  return total;
}

#if defined(__AVX2__)
/// Nibble-LUT popcount: pshufb maps each nibble to its population, psadbw
/// horizontally sums bytes into 64-bit lanes.
std::uint64_t PopcountAvx2(const std::uint64_t* w, std::size_t n) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low4 = _mm256_set1_epi8(0x0F);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  const std::size_t n4 = n & ~std::size_t{3};
  for (; i < n4; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    const __m256i lo = _mm256_and_si256(v, low4);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low4);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                        _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(__builtin_popcountll(w[i]));
  }
  return total;
}
#endif  // __AVX2__

std::uint32_t WalkFlatMap(const std::uint32_t* keys, const std::uint32_t* vals,
                          std::uint32_t mask, std::uint32_t q) {
  std::uint32_t i = (q * kFlatMapHashMul) & mask;
  while (vals[i] != kEmptySlot) {
    if (keys[i] == q) return vals[i];
    i = (i + 1) & mask;
  }
  return kEmptySlot;
}

}  // namespace

// ---------------------------------------------------------------------------
// Merge regime.

namespace internal {

IntersectStats IntersectScalar(const std::uint32_t* a, std::size_t na,
                               const std::uint32_t* b, std::size_t nb,
                               std::uint32_t* out) {
  return ScalarMergeFrom(a, na, b, nb, 0, 0, 0, out);
}

IntersectStats IntersectSwar(const std::uint32_t* a, std::size_t na,
                             const std::uint32_t* b, std::size_t nb,
                             std::uint32_t* out) {
  std::size_t i = 0, j = 0, m = 0;
  // 4x4 block merge: all pairs of one a-quad against one b-quad are tested
  // with two packed XOR + zero-half filters per a value, then the quad
  // whose max is smaller advances. Discarded values can no longer match
  // (strictly increasing inputs), so the blocks converge on the scalar
  // loop's exact endpoint; the scalar tail finishes from there.
  while (i + 4 <= na && j + 4 <= nb) {
    const std::uint64_t b01 = Pack2(b + j);
    const std::uint64_t b23 = Pack2(b + j + 2);
    for (int k = 0; k < 4; ++k) {
      const std::uint32_t x = a[i + static_cast<std::size_t>(k)];
      const std::uint64_t xx = x * 0x0000000100000001ull;
      if ((ZeroHalves(xx ^ b01) | ZeroHalves(xx ^ b23)) != 0) {
        // The filter admits rare borrow artifacts; confirm exactly.
        if (x == b[j] || x == b[j + 1] || x == b[j + 2] || x == b[j + 3]) {
          out[m++] = x;
        }
      }
    }
    const std::uint32_t amax = a[i + 3], bmax = b[j + 3];
    if (amax < bmax) {
      i += 4;
    } else if (bmax < amax) {
      j += 4;
    } else {
      i += 4;
      j += 4;
    }
  }
  const IntersectStats tail = ScalarMergeFrom(a, na, b, nb, i, j, m, out);
  return FinishStats(a, na, b, nb, tail.matches);
}

#if defined(__AVX2__)
IntersectStats IntersectAvx2(const std::uint32_t* a, std::size_t na,
                             const std::uint32_t* b, std::size_t nb,
                             std::uint32_t* out) {
  std::size_t i = 0, j = 0, m = 0;
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  // 8x8 block merge: eight cyclic rotations of the b-block cover all 64
  // pairs; matched a-lanes are compacted front-ward in lane (= ascending)
  // order through the mask-indexed permute table.
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i eq = _mm256_cmpeq_epi32(va, vb);
    for (int r = 1; r < 8; ++r) {
      vb = _mm256_permutevar8x32_epi32(vb, rot1);
      eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, vb));
    }
    const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(eq));
    if (mask != 0) {
      const __m256i shuf = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          kCompact[static_cast<std::size_t>(mask)].data()));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + m),
                          _mm256_permutevar8x32_epi32(va, shuf));
      m += static_cast<std::size_t>(
          __builtin_popcount(static_cast<unsigned>(mask)));
    }
    const std::uint32_t amax = a[i + 7], bmax = b[j + 7];
    if (amax < bmax) {
      i += 8;
    } else if (bmax < amax) {
      j += 8;
    } else {
      i += 8;
      j += 8;
    }
  }
  const IntersectStats tail = ScalarMergeFrom(a, na, b, nb, i, j, m, out);
  return FinishStats(a, na, b, nb, tail.matches);
}
#endif  // __AVX2__

}  // namespace internal

IntersectStats IntersectSorted(const std::uint32_t* a, std::size_t na,
                               const std::uint32_t* b, std::size_t nb,
                               std::uint32_t* out) {
  const KernelVariant v = ActiveVariant();
  CountInvocation(v);
  switch (v) {
    case KernelVariant::kScalar:
      return internal::IntersectScalar(a, na, b, nb, out);
    case KernelVariant::kAvx2:
#if defined(__AVX2__)
      return internal::IntersectAvx2(a, na, b, nb, out);
#else
      [[fallthrough]];  // unreachable: ActiveVariant gates on Avx2Available
#endif
    case KernelVariant::kSwar:
      return internal::IntersectSwar(a, na, b, nb, out);
  }
  return internal::IntersectScalar(a, na, b, nb, out);  // unreachable
}

// ---------------------------------------------------------------------------
// Dense regime.

void DenseBitmap::Build(const std::uint32_t* values, std::size_t n) {
  base_ = values[0];
  span_ = static_cast<std::uint64_t>(values[n - 1]) - base_ + 1;
  count_ = n;
  words_.assign(static_cast<std::size_t>((span_ + 63) >> 6), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t off = values[i] - static_cast<std::uint64_t>(base_);
    words_[static_cast<std::size_t>(off >> 6)] |= std::uint64_t{1}
                                                  << (off & 63);
  }
}

std::size_t DenseBitmap::ProbeScalar(const std::uint32_t* probe, std::size_t n,
                                     std::uint32_t* out) const {
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (Test(probe[i])) out[m++] = probe[i];
  }
  return m;
}

std::size_t DenseBitmap::ProbeSwar(const std::uint32_t* probe, std::size_t n,
                                   std::uint32_t* out) const {
  std::size_t m = 0;
  std::size_t i = 0;
  // Branchless 4-wide: the membership bit advances the cursor, the value is
  // written unconditionally (callers provide kOutSlack of scribble room).
  for (; i + 4 <= n; i += 4) {
    for (int k = 0; k < 4; ++k) {
      const std::uint32_t p = probe[i + static_cast<std::size_t>(k)];
      const std::uint64_t off = static_cast<std::uint64_t>(p) - base_;
      const bool in = off < span_;
      const std::uint64_t word = words_[in ? (off >> 6) : 0];
      const std::uint64_t hit = in ? (word >> (off & 63)) & 1u : 0u;
      out[m] = p;
      m += static_cast<std::size_t>(hit);
    }
  }
  for (; i < n; ++i) {
    if (Test(probe[i])) out[m++] = probe[i];
  }
  return m;
}

#if defined(__AVX2__)
std::size_t DenseBitmap::ProbeAvx2(const std::uint32_t* probe, std::size_t n,
                                   std::uint32_t* out) const {
  // Gathers one 32-bit bitmap word per probe lane and extracts its bit with
  // a variable shift; matched lanes compact through the permute table. The
  // u32 word view is the little-endian reinterpretation of words_, so bit
  // (off & 31) of word (off >> 5) is exactly bit (off & 63) of the 64-bit
  // word — spans above 2^31 fall back to the SWAR path (Probe checks).
  const int* words32 = reinterpret_cast<const int*>(words_.data());
  const __m256i basev = _mm256_set1_epi32(static_cast<int>(base_));
  const __m256i signflip = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i spans = _mm256_set1_epi32(
      static_cast<int>(static_cast<std::uint32_t>(span_) ^ 0x80000000u));
  const __m256i low5 = _mm256_set1_epi32(31);
  const __m256i one = _mm256_set1_epi32(1);
  std::size_t m = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i pv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(probe + i));
    const __m256i off = _mm256_sub_epi32(pv, basev);
    const __m256i in =
        _mm256_cmpgt_epi32(spans, _mm256_xor_si256(off, signflip));
    const __m256i idx =
        _mm256_and_si256(_mm256_srli_epi32(off, 5), in);  // clamp OOR to 0
    const __m256i words = _mm256_i32gather_epi32(words32, idx, 4);
    const __m256i bit = _mm256_and_si256(
        _mm256_srlv_epi32(words, _mm256_and_si256(off, low5)), one);
    const __m256i hit = _mm256_and_si256(_mm256_cmpeq_epi32(bit, one), in);
    const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(hit));
    if (mask != 0) {
      const __m256i shuf = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          kCompact[static_cast<std::size_t>(mask)].data()));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + m),
                          _mm256_permutevar8x32_epi32(pv, shuf));
      m += static_cast<std::size_t>(
          __builtin_popcount(static_cast<unsigned>(mask)));
    }
  }
  for (; i < n; ++i) {
    if (Test(probe[i])) out[m++] = probe[i];
  }
  return m;
}
#endif  // __AVX2__

std::size_t DenseBitmap::Probe(const std::uint32_t* probe, std::size_t n,
                               std::uint32_t* out) const {
  const KernelVariant v = ActiveVariant();
  CountInvocation(v);
  switch (v) {
    case KernelVariant::kScalar:
      return ProbeScalar(probe, n, out);
    case KernelVariant::kAvx2:
#if defined(__AVX2__)
      if (span_ <= (std::uint64_t{1} << 31)) return ProbeAvx2(probe, n, out);
      return ProbeSwar(probe, n, out);
#else
      [[fallthrough]];
#endif
    case KernelVariant::kSwar:
      return ProbeSwar(probe, n, out);
  }
  return ProbeScalar(probe, n, out);  // unreachable
}

std::uint64_t DenseBitmap::CountAnd(const DenseBitmap& other) const {
  if (!built() || !other.built()) return 0;
  const std::uint64_t lo =
      std::max<std::uint64_t>(base_, other.base_);
  const std::uint64_t hi = std::min<std::uint64_t>(base_ + span_,
                                                   other.base_ + other.span_);
  if (lo >= hi) return 0;
  // WordAt(v): the 64 bits covering values [v, v + 64) — two adjacent words
  // stitched with a shift when the bitmaps' bases are not 64-aligned to
  // each other.
  auto word_at = [](const DenseBitmap& bm, std::uint64_t v) {
    const std::uint64_t off = v - bm.base_;
    const std::size_t w = static_cast<std::size_t>(off >> 6);
    const unsigned shift = static_cast<unsigned>(off & 63);
    const std::uint64_t lo_word = w < bm.words_.size() ? bm.words_[w] : 0;
    if (shift == 0) return lo_word;
    const std::uint64_t hi_word =
        w + 1 < bm.words_.size() ? bm.words_[w + 1] : 0;
    return (lo_word >> shift) | (hi_word << (64 - shift));
  };
  // Chunked materialize-then-popcount, so the AND'd words flow through the
  // vectorized PopcountWords kernel.
  constexpr std::size_t kChunkWords = 256;
  std::uint64_t chunk[kChunkWords];
  std::uint64_t total = 0;
  std::size_t filled = 0;
  for (std::uint64_t v = lo; v < hi; v += 64) {
    std::uint64_t x = word_at(*this, v) & word_at(other, v);
    if (hi - v < 64) {
      x &= (std::uint64_t{1} << (hi - v)) - 1;
    }
    chunk[filled++] = x;
    if (filled == kChunkWords) {
      total += PopcountWords(chunk, filled);
      filled = 0;
    }
  }
  if (filled != 0) total += PopcountWords(chunk, filled);
  return total;
}

std::uint64_t PopcountWords(const std::uint64_t* w, std::size_t n) {
  const KernelVariant v = ActiveVariant();
  CountInvocation(v);
  switch (v) {
    case KernelVariant::kScalar:
      return PopcountScalar(w, n);
    case KernelVariant::kAvx2:
#if defined(__AVX2__)
      return PopcountAvx2(w, n);
#else
      [[fallthrough]];
#endif
    case KernelVariant::kSwar:
      return PopcountSwar(w, n);
  }
  return PopcountScalar(w, n);  // unreachable
}

// ---------------------------------------------------------------------------
// Flat-map probe batches.

namespace {

void ProbeFlatMapScalar(const std::uint32_t* keys, const std::uint32_t* vals,
                        std::uint32_t mask, const std::uint32_t* queries,
                        std::size_t n, std::uint32_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = WalkFlatMap(keys, vals, mask, queries[i]);
  }
}

void ProbeFlatMapSwar(const std::uint32_t* keys, const std::uint32_t* vals,
                      std::uint32_t mask, const std::uint32_t* queries,
                      std::size_t n, std::uint32_t* out) {
  std::size_t i = 0;
  // 4-wide software pipeline: all four hashes are computed before any table
  // load, so the (usually cache-missing) slot reads overlap. The common
  // first-slot outcome (empty, or an immediate key hit) resolves inline;
  // collisions take the scalar walk.
  for (; i + 4 <= n; i += 4) {
    std::uint32_t h[4];
    for (int k = 0; k < 4; ++k) {
      h[k] = (queries[i + static_cast<std::size_t>(k)] * kFlatMapHashMul) &
             mask;
    }
    for (int k = 0; k < 4; ++k) {
      const std::size_t qi = i + static_cast<std::size_t>(k);
      const std::uint32_t q = queries[qi];
      const std::uint32_t v = vals[h[k]];
      if (v == kEmptySlot) {
        out[qi] = kEmptySlot;
      } else if (keys[h[k]] == q) {
        out[qi] = v;
      } else {
        out[qi] = WalkFlatMap(keys, vals, mask, q);
      }
    }
  }
  for (; i < n; ++i) out[i] = WalkFlatMap(keys, vals, mask, queries[i]);
}

#if defined(__AVX2__)
void ProbeFlatMapAvx2(const std::uint32_t* keys, const std::uint32_t* vals,
                      std::uint32_t mask, const std::uint32_t* queries,
                      std::size_t n, std::uint32_t* out) {
  const __m256i maskv = _mm256_set1_epi32(static_cast<int>(mask));
  const __m256i mulv = _mm256_set1_epi32(static_cast<int>(kFlatMapHashMul));
  const __m256i emptyv = _mm256_set1_epi32(static_cast<int>(kEmptySlot));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i qv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(queries + i));
    const __m256i h =
        _mm256_and_si256(_mm256_mullo_epi32(qv, mulv), maskv);
    const __m256i vg = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(vals), h, 4);
    const __m256i kg = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(keys), h, 4);
    const __m256i empty = _mm256_cmpeq_epi32(vg, emptyv);
    const __m256i hit =
        _mm256_andnot_si256(empty, _mm256_cmpeq_epi32(kg, qv));
    // Empty slots answer kEmpty, first-slot hits answer their payload;
    // anything else (occupied with a different key) walks the chain.
    const __m256i res = _mm256_blendv_epi8(vg, emptyv, empty);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), res);
    const int resolved =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_or_si256(empty, hit)));
    if (resolved != 0xFF) {
      unsigned pending = static_cast<unsigned>(~resolved) & 0xFFu;
      while (pending != 0) {
        const int lane = __builtin_ctz(pending);
        pending &= pending - 1;
        const std::size_t qi = i + static_cast<std::size_t>(lane);
        out[qi] = WalkFlatMap(keys, vals, mask, queries[qi]);
      }
    }
  }
  for (; i < n; ++i) out[i] = WalkFlatMap(keys, vals, mask, queries[i]);
}
#endif  // __AVX2__

}  // namespace

void ProbeFlatMapU32(const std::uint32_t* keys, const std::uint32_t* vals,
                     std::uint32_t mask, const std::uint32_t* queries,
                     std::size_t n, std::uint32_t* out) {
  const KernelVariant v = ActiveVariant();
  CountInvocation(v);
  switch (v) {
    case KernelVariant::kScalar:
      ProbeFlatMapScalar(keys, vals, mask, queries, n, out);
      return;
    case KernelVariant::kAvx2:
#if defined(__AVX2__)
      ProbeFlatMapAvx2(keys, vals, mask, queries, n, out);
      return;
#else
      [[fallthrough]];
#endif
    case KernelVariant::kSwar:
      ProbeFlatMapSwar(keys, vals, mask, queries, n, out);
      return;
  }
}

}  // namespace trienum::simd
