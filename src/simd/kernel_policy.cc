#include "simd/kernel_policy.h"

namespace trienum::simd {
namespace internal {

std::atomic<int>& ModeStorage() {
  static std::atomic<int> mode{static_cast<int>(KernelMode::kAuto)};
  return mode;
}

std::atomic<std::uint64_t>& VariantCounter(KernelVariant v) {
  static std::atomic<std::uint64_t> counters[kNumKernelVariants]{};
  return counters[static_cast<int>(v)];
}

}  // namespace internal

bool Avx2Compiled() {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

bool Avx2Available() {
#if defined(__AVX2__)
  // Compiled with AVX2 enabled (TRIENUM_NATIVE): still gate on the CPU so a
  // binary built on an AVX2 box degrades instead of faulting elsewhere.
  static const bool avail = __builtin_cpu_supports("avx2");
  return avail;
#else
  return false;
#endif
}

void ResetInvocationCounters() {
  for (int v = 0; v < kNumKernelVariants; ++v) {
    internal::VariantCounter(static_cast<KernelVariant>(v))
        .store(0, std::memory_order_relaxed);
  }
}

const char* KernelModeName(KernelMode m) {
  switch (m) {
    case KernelMode::kAuto:
      return "auto";
    case KernelMode::kScalar:
      return "scalar";
    case KernelMode::kSwar:
      return "swar";
    case KernelMode::kAvx2:
      return "avx2";
  }
  return "?";
}

const char* KernelVariantName(KernelVariant v) {
  switch (v) {
    case KernelVariant::kScalar:
      return "scalar";
    case KernelVariant::kSwar:
      return "swar";
    case KernelVariant::kAvx2:
      return "avx2";
  }
  return "?";
}

bool ParseKernelMode(const std::string& s, KernelMode* out) {
  if (s == "auto") {
    *out = KernelMode::kAuto;
  } else if (s == "scalar") {
    *out = KernelMode::kScalar;
  } else if (s == "swar") {
    *out = KernelMode::kSwar;
  } else if (s == "avx2") {
    *out = KernelMode::kAvx2;
  } else {
    return false;
  }
  return true;
}

}  // namespace trienum::simd
