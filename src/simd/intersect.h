// Two-regime intersection kernels for sorted u32 sets (adjacency lists).
//
// Regime 1 — merge: `IntersectSorted` walks two strictly increasing arrays
// with the scalar two-pointer's exact semantics, returning the matches plus
// how far each side was consumed when the other exhausted. The consumed
// counts let callers reproduce the scalar loop's work accounting to the
// unit: the scalar merge performs exactly (consumed_a + consumed_b -
// matches) iterations, and that total is data-determined — every correct
// merge lands on the same (consumed_a, consumed_b), which the exhaustive
// harness (tests/test_intersect_kernels.cc) verifies across variants.
//
// Regime 2 — bitmap: `DenseBitmap` rasterizes one side once (offset-based,
// one bit per value in [min, max]) and answers membership probes and
// popcount-style AND counts against it. It wins when the rasterized side is
// large and dense and is reused across many probes — the high-degree-hub
// shape Latapy and Berry et al. document for real power-law graphs. The
// `ChooseRegime` dispatcher applies the size/span threshold.
//
// Each operation has three implementations selected by the process-wide
// kernel policy (simd/kernel_policy.h): scalar reference, portable SWAR
// (64-bit packed half-word tricks, always compiled), and AVX2 (compiled
// under __AVX2__, i.e. TRIENUM_NATIVE builds). All variants are bit-exact
// replicas of the scalar reference in results, match order, and consumed
// counts; only the host instruction stream differs. Nothing here touches
// the em:: layer, so kernel choice can never move an I/O charge.
//
// Preconditions shared by all entry points: inputs are strictly increasing
// (sets — adjacency lists have no duplicate neighbours). Output buffers
// need kOutSlack extra slots beyond the worst-case match count: the
// vectorized compaction stores full 8-lane groups and advances by the
// actual match count.
#ifndef TRIENUM_SIMD_INTERSECT_H_
#define TRIENUM_SIMD_INTERSECT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simd/kernel_policy.h"

namespace trienum::simd {

/// Extra output capacity (beyond min(na, nb) possible matches) the
/// vectorized kernels may scribble past the last real match.
inline constexpr std::size_t kOutSlack = 8;

/// What the scalar two-pointer loop would have done: `matches` values
/// written to `out` (ascending), and the i/j positions at which the loop
/// terminated (first side exhausted). The scalar loop's iteration count is
/// consumed_a + consumed_b - matches.
struct IntersectStats {
  std::size_t matches = 0;
  std::size_t consumed_a = 0;
  std::size_t consumed_b = 0;
};

/// Early-exit merge intersection of two strictly increasing arrays; writes
/// the common values (ascending) to `out` (capacity >= min(na, nb) +
/// kOutSlack). Dispatches on the active kernel variant.
IntersectStats IntersectSorted(const std::uint32_t* a, std::size_t na,
                               const std::uint32_t* b, std::size_t nb,
                               std::uint32_t* out);

namespace internal {
// Individual variants, exposed for the differential harness (normal code
// goes through IntersectSorted).
IntersectStats IntersectScalar(const std::uint32_t* a, std::size_t na,
                               const std::uint32_t* b, std::size_t nb,
                               std::uint32_t* out);
IntersectStats IntersectSwar(const std::uint32_t* a, std::size_t na,
                             const std::uint32_t* b, std::size_t nb,
                             std::uint32_t* out);
#if defined(__AVX2__)
IntersectStats IntersectAvx2(const std::uint32_t* a, std::size_t na,
                             const std::uint32_t* b, std::size_t nb,
                             std::uint32_t* out);
#endif
}  // namespace internal

// ---------------------------------------------------------------------------
// Dense regime.

/// Regime chosen by the degree-threshold dispatcher.
enum class Regime { kMerge, kBitmap };

/// The rasterized side must amortize its build: at least this many values.
inline constexpr std::size_t kBitmapMinSize = 64;
/// ...and be dense: span no more than this many positions per value (the
/// bitmap costs span/64 words to build and scan; beyond 16x the set size,
/// the merge kernels win and the bitmap stops fitting the scratch budget).
inline constexpr std::size_t kBitmapMaxSpanPerValue = 16;

/// Picks the regime for intersections against one reused sorted set of
/// `size` values spanning [min_value, max_value]. Pure threshold logic —
/// both regimes produce identical results, so this is performance only.
inline Regime ChooseRegime(std::size_t size, std::uint32_t min_value,
                           std::uint32_t max_value) {
  if (size < kBitmapMinSize) return Regime::kMerge;
  const std::uint64_t span =
      static_cast<std::uint64_t>(max_value) - min_value + 1;
  if (span > static_cast<std::uint64_t>(size) * kBitmapMaxSpanPerValue) {
    return Regime::kMerge;
  }
  return Regime::kBitmap;
}

/// Offset-based bitmap over one strictly increasing array, reused across
/// many probe batches (the high-degree side of the two-regime split).
class DenseBitmap {
 public:
  /// Rasterizes `values[0..n)`; any previous contents are discarded.
  /// Requires n > 0.
  void Build(const std::uint32_t* values, std::size_t n);

  bool built() const { return !words_.empty(); }
  std::size_t size() const { return count_; }

  /// Membership of a single value.
  bool Test(std::uint32_t v) const {
    const std::uint64_t off = static_cast<std::uint64_t>(v) - base_;
    if (off >= span_) return false;
    return (words_[off >> 6] >> (off & 63)) & 1u;
  }

  /// Full-scan probe: writes probe[i] for every member, in probe order, to
  /// `out` (capacity >= n + kOutSlack); returns the match count. Dispatches
  /// on the active kernel variant; all variants emit identical output.
  std::size_t Probe(const std::uint32_t* probe, std::size_t n,
                    std::uint32_t* out) const;

  /// |this AND other| via vectorized popcount over the overlapping word
  /// range (the count-only path of the dense regime).
  std::uint64_t CountAnd(const DenseBitmap& other) const;

 private:
  std::size_t ProbeScalar(const std::uint32_t* probe, std::size_t n,
                          std::uint32_t* out) const;
  std::size_t ProbeSwar(const std::uint32_t* probe, std::size_t n,
                        std::uint32_t* out) const;
#if defined(__AVX2__)
  std::size_t ProbeAvx2(const std::uint32_t* probe, std::size_t n,
                        std::uint32_t* out) const;
#endif

  std::vector<std::uint64_t> words_;
  std::uint32_t base_ = 0;   // value of bit 0
  std::uint64_t span_ = 0;   // number of addressable positions
  std::size_t count_ = 0;    // values rasterized
};

/// Population count over a word array — scalar builtin, SWAR bit-slicing,
/// or AVX2 nibble-LUT (pshufb) per the active variant. Exposed for the
/// harness and benches; CountAnd uses it internally.
std::uint64_t PopcountWords(const std::uint64_t* w, std::size_t n);

// ---------------------------------------------------------------------------
// Open-addressed probe batch (the FlatVertexMap hot loop).

/// Batched lookups against core's FlatVertexMap layout: linear probing over
/// power-of-two tables keyed by `key * 0x9E3779B1 & mask`, empty slots
/// marked by vals[i] == 0xFFFFFFFF. Writes the payload (or the empty
/// sentinel) for each query. The vectorized variants resolve the common
/// first-slot hit 8 (AVX2) or 4 (SWAR) probes at a time and fall back to
/// the scalar walk on collisions; results are identical to per-query Get.
void ProbeFlatMapU32(const std::uint32_t* keys, const std::uint32_t* vals,
                     std::uint32_t mask, const std::uint32_t* queries,
                     std::size_t n, std::uint32_t* out);

}  // namespace trienum::simd

#endif  // TRIENUM_SIMD_INTERSECT_H_
