// Process-wide selection of the intersection kernel variant.
//
// The kernels in simd/intersect.h come in three functionally identical
// implementations: the scalar reference, a portable SWAR (64-bit) blocked
// variant that is always compiled, and an AVX2 variant compiled only when
// the build enables it (TRIENUM_NATIVE on an AVX2 host). Which one services
// a call is a pure performance knob: every variant produces bit-identical
// results, so flipping the mode must never change output, work counters, or
// IoStats — the differential suite (tests/test_simd_invariance.cc) pins
// exactly that.
//
// The mode mirrors par_config.h's pattern: one relaxed atomic, a Scoped
// RAII override for tests, and a resolver (`ActiveVariant`) that clamps
// requests the build or CPU cannot honor down to the best available
// fallback. Per-variant invocation counters let tests prove which path
// actually executed (e.g. that the SWAR fallback runs when AVX2 is masked
// off) instead of trusting the dispatch logic.
#ifndef TRIENUM_SIMD_KERNEL_POLICY_H_
#define TRIENUM_SIMD_KERNEL_POLICY_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace trienum::simd {

/// Requested kernel policy (what the user or a test asked for).
enum class KernelMode : int {
  kAuto = 0,    ///< best available: AVX2 if compiled + supported, else SWAR
  kScalar = 1,  ///< the scalar reference loops ("kernels off")
  kSwar = 2,    ///< portable 64-bit blocked kernels (always compiled)
  kAvx2 = 3,    ///< 256-bit kernels (needs TRIENUM_NATIVE on an AVX2 host)
};

/// The variant a kernel call actually executes (kAuto and unavailable
/// requests resolved).
enum class KernelVariant : int { kScalar = 0, kSwar = 1, kAvx2 = 2 };

inline constexpr int kNumKernelVariants = 3;

namespace internal {
std::atomic<int>& ModeStorage();
std::atomic<std::uint64_t>& VariantCounter(KernelVariant v);
}  // namespace internal

/// True iff the AVX2 kernels are compiled in (__AVX2__ builds) AND the CPU
/// reports AVX2 at runtime.
bool Avx2Available();

/// True iff the AVX2 kernels are compiled into this binary at all —
/// build-provenance (surfaced by `trienum version`), independent of what
/// the running CPU supports.
bool Avx2Compiled();

/// Current requested mode (default kAuto).
inline KernelMode Mode() {
  return static_cast<KernelMode>(
      internal::ModeStorage().load(std::memory_order_relaxed));
}

/// Sets the requested mode. An unsatisfiable request (kAvx2 without AVX2)
/// is kept as requested but resolves to the SWAR fallback at call time —
/// so test matrices can request every mode unconditionally.
inline void SetMode(KernelMode m) {
  internal::ModeStorage().store(static_cast<int>(m),
                                std::memory_order_relaxed);
}

/// Resolves the current mode to the variant kernel calls will run now.
inline KernelVariant ActiveVariant() {
  switch (Mode()) {
    case KernelMode::kScalar:
      return KernelVariant::kScalar;
    case KernelMode::kSwar:
      return KernelVariant::kSwar;
    case KernelMode::kAvx2:
    case KernelMode::kAuto:
      return Avx2Available() ? KernelVariant::kAvx2 : KernelVariant::kSwar;
  }
  return KernelVariant::kSwar;  // unreachable
}

/// Kernel entry points bump their variant's counter (relaxed; kernels are
/// only entered from the calling thread, never from pool workers mid-batch,
/// but relaxed atomics keep the counters safe under any caller).
inline void CountInvocation(KernelVariant v) {
  internal::VariantCounter(v).fetch_add(1, std::memory_order_relaxed);
}

/// Total kernel entries serviced by `v` since the last reset.
inline std::uint64_t Invocations(KernelVariant v) {
  return internal::VariantCounter(v).load(std::memory_order_relaxed);
}

void ResetInvocationCounters();

/// RAII mode override for tests and A/B benches.
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(KernelMode m) : prev_(Mode()) { SetMode(m); }
  ~ScopedKernelMode() { SetMode(prev_); }
  ScopedKernelMode(const ScopedKernelMode&) = delete;
  ScopedKernelMode& operator=(const ScopedKernelMode&) = delete;

 private:
  KernelMode prev_;
};

const char* KernelModeName(KernelMode m);
const char* KernelVariantName(KernelVariant v);

/// Parses "auto" / "scalar" / "swar" / "avx2"; returns false on anything
/// else (the CLI turns that into a usage error).
bool ParseKernelMode(const std::string& s, KernelMode* out);

}  // namespace trienum::simd

#endif  // TRIENUM_SIMD_KERNEL_POLICY_H_
