#include "query/query.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "core/algorithms.h"
#include "core/sink.h"
#include "par/par_config.h"

namespace trienum::query {

namespace {

/// Per-vertex accumulator: every emitted triangle increments its three
/// corners. Order-invariant, so identical for every algorithm.
class PerVertexSink : public core::TriangleSink {
 public:
  explicit PerVertexSink(std::size_t num_vertices) : counts_(num_vertices, 0) {}
  void Emit(graph::VertexId a, graph::VertexId b, graph::VertexId c) override {
    ++counts_[a];
    ++counts_[b];
    ++counts_[c];
    ++total_;
  }
  std::vector<std::uint64_t> TakeCounts() { return std::move(counts_); }
  std::uint64_t total() const { return total_; }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Per-edge accumulator: a triangle (a < b < c) supports its three edges
/// (a,b), (a,c), (b,c). The ordered map makes the output lex-sorted and
/// independent of emission order.
class PerEdgeSink : public core::TriangleSink {
 public:
  void Emit(graph::VertexId a, graph::VertexId b, graph::VertexId c) override {
    ++support_[{a, b}];
    ++support_[{a, c}];
    ++support_[{b, c}];
    ++total_;
  }
  std::vector<EdgeSupport> TakeSupport() const {
    std::vector<EdgeSupport> out;
    out.reserve(support_.size());
    for (const auto& [uv, n] : support_) {
      out.push_back(EdgeSupport{graph::Edge{uv.first, uv.second}, n});
    }
    return out;
  }
  std::uint64_t total() const { return total_; }

 private:
  std::map<std::pair<graph::VertexId, graph::VertexId>, std::uint64_t> support_;
  std::uint64_t total_ = 0;
};

}  // namespace

Result<QueryResult> RunQuery(em::QuerySession& session,
                             const graph::EmGraph& g, const Query& q) {
  const core::AlgorithmInfo* info = core::FindAlgorithm(q.algo);
  if (info == nullptr) {
    return Status::NotFound("unknown algorithm '" + q.algo +
                            "' (see `trienum list`)");
  }

  // Install the run's process-wide knobs for the duration (threads and the
  // Scanner/Writer default mode), and resolve the query seed onto the
  // session. Neither threads nor scan mode may change results or IoStats;
  // the differential suite runs the matrix to prove it.
  par::ScopedThreads threads(q.threads);
  em::ScopedScanMode scan(q.scan_mode);
  session.set_scan_mode(q.scan_mode);
  session.set_seed(q.seed != 0 ? q.seed : session.config().seed);

  // Cold-start contract: the query's allocations live in a region opened at
  // the current (frozen) top, the cache starts empty with zeroed counters,
  // and the work / peak trackers restart. This is exactly the state a fresh
  // em::Context presents right after an uncounted normalize, which is what
  // makes session reuse bit-identical to fresh runs.
  em::DeviceRegion region = session.Region();
  session.cache().Reset();
  session.ResetWork();
  session.device().ResetPeak();

  core::CountingSink count_sink;
  core::CollectingSink collect_sink;
  PerVertexSink vertex_sink(g.num_vertices);
  PerEdgeSink edge_sink;
  core::TriangleSink* sink = nullptr;
  switch (q.kind) {
    case QueryKind::kCount: sink = &count_sink; break;
    case QueryKind::kEnumerate: sink = &collect_sink; break;
    case QueryKind::kPerVertex: sink = &vertex_sink; break;
    case QueryKind::kPerEdge: sink = &edge_sink; break;
  }
  TRIENUM_CHECK(sink != nullptr);

  // The _snapshot accessors serialize against prefetch workers; taken after
  // Reset(), so staging leftovers a previous query abandoned were already
  // cleared (and counted wasted) against that query's epoch.
  em::StorageTelemetry tel_before = session.store().telemetry_snapshot();
  em::RecoveryStats rec_before = session.store().recovery_snapshot();
  em::PrefetchStats pf_before = session.store().prefetch_stats();
  auto t0 = std::chrono::steady_clock::now();
  Status run_status;
  try {
    info->run(session, g, *sink);
    session.cache().FlushAll();
  } catch (const IoFault& fault) {
    run_status = fault.status();
  }
  // A fault swallowed mid-unwind (a Writer flushing from its destructor)
  // never surfaced as an exception; the cache latch still records it.
  if (run_status.ok() && !session.cache().fault().ok()) {
    run_status = session.cache().fault();
  }
  if (!run_status.ok()) {
    // Crash-consistent failure: the query dies, the session survives. Leases
    // and pins were released by unwinding (RAII); Discard drops the
    // abandoned scratch lines without write-back and clears the latch, and
    // the region destructor pops the device back to the frozen mark — so
    // the next query runs the cold-start contract from a clean slate,
    // bit-identical to a fresh context.
    session.cache().Discard();
    return run_status;
  }
  auto t1 = std::chrono::steady_clock::now();

  QueryResult r;
  r.io = session.cache().stats();
  r.work = session.work();
  r.device_peak_words = session.device().peak_words();
  r.telemetry = session.store().telemetry_snapshot() - tel_before;
  r.recovery = session.store().recovery_snapshot() - rec_before;
  r.prefetch = session.store().prefetch_stats() - pf_before;
  r.wall_ms = std::chrono::duration_cast<
                  std::chrono::duration<double, std::milli>>(t1 - t0)
                  .count();
  r.seed_used = session.seed();
  r.threads_used = par::Threads();

  switch (q.kind) {
    case QueryKind::kCount:
      r.triangles = count_sink.count();
      break;
    case QueryKind::kEnumerate:
      r.triangles = collect_sink.triangles().size();
      r.list = std::move(collect_sink.mutable_triangles());
      if (q.limit != 0 && r.list.size() > q.limit) r.list.resize(q.limit);
      break;
    case QueryKind::kPerVertex:
      r.triangles = vertex_sink.total();
      r.per_vertex = vertex_sink.TakeCounts();
      break;
    case QueryKind::kPerEdge:
      r.triangles = edge_sink.total();
      r.per_edge = edge_sink.TakeSupport();
      break;
  }
  return r;
}

Result<LoadedGraph> LoadedGraph::FromEdges(const em::EmConfig& cfg,
                                           const std::vector<graph::Edge>& raw) {
  LoadedGraph lg;
  lg.store_ = std::make_unique<em::GraphStore>(cfg);
  TRIENUM_RETURN_NOT_OK(lg.store_->device().backend().init_status());
  lg.session_ = std::make_unique<em::QuerySession>(*lg.store_);
  // Ingest + normalize uncounted, exactly like the single-run drivers: the
  // input is assumed to already live on disk, so building the canonical
  // layout is not part of any query's measured I/O. A permanent I/O fault
  // here is unrecoverable — there is no frozen graph to fall back to — so
  // the whole load fails.
  lg.store_->cache().set_counting(false);
  try {
    lg.graph_ = graph::BuildEmGraph(*lg.session_, raw);
  } catch (const IoFault& fault) {
    return fault.status();
  }
  lg.store_->cache().set_counting(true);
  if (!lg.store_->cache().fault().ok()) return lg.store_->cache().fault();
  lg.frozen_mark_ = lg.store_->device().Mark();
  return lg;
}

Result<QueryResult> LoadedGraph::Run(const Query& q) {
  // Region discipline must have returned the device to the frozen mark;
  // anything else means a previous query leaked allocations and the
  // address-identity guarantee is gone.
  TRIENUM_CHECK_MSG(store_->device().Mark() == frozen_mark_,
                    "device top drifted from the frozen mark between queries");
  return RunQuery(*session_, graph_, q);
}

}  // namespace trienum::query
