#include "query/query.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "core/algorithms.h"
#include "core/sink.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/par_config.h"

namespace trienum::query {

namespace {

/// Clears the collector's sampler on every exit path: the sampler captures
/// the session by reference, so it must never outlive the RunQuery call
/// that installed it.
struct SamplerGuard {
  obs::TraceCollector* tc;
  ~SamplerGuard() {
    if (tc != nullptr) tc->clear_sampler();
  }
};

/// Per-vertex accumulator: every emitted triangle increments its three
/// corners. Order-invariant, so identical for every algorithm.
class PerVertexSink : public core::TriangleSink {
 public:
  explicit PerVertexSink(std::size_t num_vertices) : counts_(num_vertices, 0) {}
  void Emit(graph::VertexId a, graph::VertexId b, graph::VertexId c) override {
    ++counts_[a];
    ++counts_[b];
    ++counts_[c];
    ++total_;
  }
  std::vector<std::uint64_t> TakeCounts() { return std::move(counts_); }
  std::uint64_t total() const { return total_; }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Per-edge accumulator: a triangle (a < b < c) supports its three edges
/// (a,b), (a,c), (b,c). The ordered map makes the output lex-sorted and
/// independent of emission order.
class PerEdgeSink : public core::TriangleSink {
 public:
  void Emit(graph::VertexId a, graph::VertexId b, graph::VertexId c) override {
    ++support_[{a, b}];
    ++support_[{a, c}];
    ++support_[{b, c}];
    ++total_;
  }
  std::vector<EdgeSupport> TakeSupport() const {
    std::vector<EdgeSupport> out;
    out.reserve(support_.size());
    for (const auto& [uv, n] : support_) {
      out.push_back(EdgeSupport{graph::Edge{uv.first, uv.second}, n});
    }
    return out;
  }
  std::uint64_t total() const { return total_; }

 private:
  std::map<std::pair<graph::VertexId, graph::VertexId>, std::uint64_t> support_;
  std::uint64_t total_ = 0;
};

}  // namespace

Result<QueryResult> RunQuery(em::QuerySession& session,
                             const graph::EmGraph& g, const Query& q) {
  const core::AlgorithmInfo* info = core::FindAlgorithm(q.algo);
  if (info == nullptr) {
    return Status::NotFound("unknown algorithm '" + q.algo +
                            "' (see `trienum list`)");
  }

  // Install the run's process-wide knobs for the duration (threads and the
  // Scanner/Writer default mode), and resolve the query seed onto the
  // session. Neither threads nor scan mode may change results or IoStats;
  // the differential suite runs the matrix to prove it.
  par::ScopedThreads threads(q.threads);
  em::ScopedScanMode scan(q.scan_mode);
  session.set_scan_mode(q.scan_mode);
  session.set_seed(q.seed != 0 ? q.seed : session.config().seed);

  // Cold-start contract: the query's allocations live in a region opened at
  // the current (frozen) top, the cache starts empty with zeroed counters,
  // and the work / peak trackers restart. This is exactly the state a fresh
  // em::Context presents right after an uncounted normalize, which is what
  // makes session reuse bit-identical to fresh runs.
  em::DeviceRegion region = session.Region();
  session.cache().Reset();
  session.ResetWork();
  session.device().ResetPeak();

  core::CountingSink count_sink;
  core::CollectingSink collect_sink;
  PerVertexSink vertex_sink(g.num_vertices);
  PerEdgeSink edge_sink;
  core::TriangleSink* sink = nullptr;
  switch (q.kind) {
    case QueryKind::kCount: sink = &count_sink; break;
    case QueryKind::kEnumerate: sink = &collect_sink; break;
    case QueryKind::kPerVertex: sink = &vertex_sink; break;
    case QueryKind::kPerEdge: sink = &edge_sink; break;
  }
  TRIENUM_CHECK(sink != nullptr);

  // The _snapshot accessors serialize against prefetch workers; taken after
  // Reset(), so staging leftovers a previous query abandoned were already
  // cleared (and counted wasted) against that query's epoch.
  em::StorageTelemetry tel_before = session.store().telemetry_snapshot();
  em::RecoveryStats rec_before = session.store().recovery_snapshot();
  em::PrefetchStats pf_before = session.store().prefetch_stats();

  // Tracing, when a collector is installed: the sampler lets spans opened
  // on this thread attribute counter deltas to phases. Installed *after*
  // the cold-start reset and cleared before this function returns; the
  // root "query.run" span below opens at zeroed counters and closes before
  // the result snapshot, so its inclusive delta — and therefore the sum of
  // all phases' exclusive deltas — equals the query's totals exactly.
  obs::TraceCollector* tc = obs::CurrentTraceCollector();
  const std::size_t ev_mark = tc != nullptr ? tc->event_count() : 0;
  obs::MetricsRegistry::Snapshot hist_before;
  SamplerGuard sampler_guard{tc};
  if (tc != nullptr) {
    hist_before = obs::MetricsRegistry::Global().Snap();
    tc->set_sampler([&session]() {
      obs::CounterSample s;
      const em::IoStats io = session.cache().stats();
      s.block_reads = io.block_reads;
      s.block_writes = io.block_writes;
      s.cache_hits = io.cache_hits;
      s.work = session.work();
      const em::StorageTelemetry t = session.store().telemetry_snapshot();
      s.read_calls = t.read_calls;
      s.write_calls = t.write_calls;
      s.bytes_read = t.bytes_read;
      s.bytes_written = t.bytes_written;
      return s;
    });
  }

  auto t0 = std::chrono::steady_clock::now();
  Status run_status;
  try {
    obs::Span root_span("query.run");
    info->run(session, g, *sink);
    session.cache().FlushAll();
  } catch (const IoFault& fault) {
    run_status = fault.status();
  }
  // A fault swallowed mid-unwind (a Writer flushing from its destructor)
  // never surfaced as an exception; the cache latch still records it.
  if (run_status.ok() && !session.cache().fault().ok()) {
    run_status = session.cache().fault();
  }
  if (!run_status.ok()) {
    // Crash-consistent failure: the query dies, the session survives. Leases
    // and pins were released by unwinding (RAII); Discard drops the
    // abandoned scratch lines without write-back and clears the latch, and
    // the region destructor pops the device back to the frozen mark — so
    // the next query runs the cold-start contract from a clean slate,
    // bit-identical to a fresh context.
    session.cache().Discard();
    return run_status;
  }
  auto t1 = std::chrono::steady_clock::now();

  QueryResult r;
  r.io = session.cache().stats();
  r.work = session.work();
  r.device_peak_words = session.device().peak_words();
  r.telemetry = session.store().telemetry_snapshot() - tel_before;
  r.recovery = session.store().recovery_snapshot() - rec_before;
  r.prefetch = session.store().prefetch_stats() - pf_before;
  r.wall_ms = std::chrono::duration_cast<
                  std::chrono::duration<double, std::milli>>(t1 - t0)
                  .count();
  r.seed_used = session.seed();
  r.threads_used = par::Threads();

  if (tc != nullptr) {
    // Phase table: aggregate the run's sampled spans by name, first
    // appearance first. Exclusive deltas telescope, so the table's columns
    // sum to r.io / r.work with "query.run" holding the unattributed rest.
    for (const obs::TraceEvent& ev : tc->events_since(ev_mark)) {
      if (!ev.has_delta) continue;
      PhaseStat* ps = nullptr;
      for (PhaseStat& p : r.phases) {
        if (p.name == ev.name) {
          ps = &p;
          break;
        }
      }
      if (ps == nullptr) {
        r.phases.emplace_back();
        ps = &r.phases.back();
        ps->name = ev.name;
      }
      ++ps->spans;
      ps->self_wall_ns += ev.self_wall_ns;
      ps->self += ev.self;
    }
    // This query's window of the seam histograms. The registry is
    // append-only, so every pre-existing instrument has a before entry;
    // ones born during the run diff against zero.
    const obs::MetricsRegistry::Snapshot hist_after =
        obs::MetricsRegistry::Global().Snap();
    for (const obs::HistogramSnapshot& after : hist_after.histograms) {
      const obs::HistogramSnapshot* before = nullptr;
      for (const obs::HistogramSnapshot& b : hist_before.histograms) {
        if (b.name == after.name) {
          before = &b;
          break;
        }
      }
      obs::HistogramSnapshot delta = before != nullptr ? after - *before : after;
      if (delta.count != 0) r.histogram_deltas.push_back(std::move(delta));
    }
  }

  switch (q.kind) {
    case QueryKind::kCount:
      r.triangles = count_sink.count();
      break;
    case QueryKind::kEnumerate:
      r.triangles = collect_sink.triangles().size();
      r.list = std::move(collect_sink.mutable_triangles());
      if (q.limit != 0 && r.list.size() > q.limit) r.list.resize(q.limit);
      break;
    case QueryKind::kPerVertex:
      r.triangles = vertex_sink.total();
      r.per_vertex = vertex_sink.TakeCounts();
      break;
    case QueryKind::kPerEdge:
      r.triangles = edge_sink.total();
      r.per_edge = edge_sink.TakeSupport();
      break;
  }
  return r;
}

Result<LoadedGraph> LoadedGraph::FromEdges(const em::EmConfig& cfg,
                                           const std::vector<graph::Edge>& raw) {
  LoadedGraph lg;
  lg.store_ = std::make_unique<em::GraphStore>(cfg);
  TRIENUM_RETURN_NOT_OK(lg.store_->device().backend().init_status());
  lg.session_ = std::make_unique<em::QuerySession>(*lg.store_);
  // Ingest + normalize uncounted, exactly like the single-run drivers: the
  // input is assumed to already live on disk, so building the canonical
  // layout is not part of any query's measured I/O. A permanent I/O fault
  // here is unrecoverable — there is no frozen graph to fall back to — so
  // the whole load fails.
  lg.store_->cache().set_counting(false);
  try {
    // Wall-only span (no sampler installed yet): load/normalize time still
    // shows on the trace timeline, but is never attributed to any query.
    obs::Span span("graph.load");
    span.AddArg("raw_edges", raw.size());
    lg.graph_ = graph::BuildEmGraph(*lg.session_, raw);
  } catch (const IoFault& fault) {
    return fault.status();
  }
  lg.store_->cache().set_counting(true);
  if (!lg.store_->cache().fault().ok()) return lg.store_->cache().fault();
  lg.frozen_mark_ = lg.store_->device().Mark();
  return lg;
}

Result<QueryResult> LoadedGraph::Run(const Query& q) {
  // Region discipline must have returned the device to the frozen mark;
  // anything else means a previous query leaked allocations and the
  // address-identity guarantee is gone.
  TRIENUM_CHECK_MSG(store_->device().Mark() == frozen_mark_,
                    "device top drifted from the frozen mark between queries");
  return RunQuery(*session_, graph_, q);
}

}  // namespace trienum::query
