// The query layer: graph-lifetime loading vs query-lifetime execution.
//
// A LoadedGraph ingests and normalizes an edge list exactly once (uncounted,
// like every single-run driver does) and then freezes: the normalized
// EmGraph and its GraphStore are immutable for the object's lifetime, and
// any number of queries may run over them. RunQuery executes one typed
// Query under the cold-start contract that makes a reused session
// bit-identical — same triangles in the same order, same IoStats, same
// internal-work counter — to a fresh em::Context built for that one query
// (asserted across the full algorithm x backend x scan-mode x threads
// matrix by tests/test_query_session.cc).
//
// The cold-start contract per query:
//   1. a DeviceRegion opens at the frozen mark (the device top right after
//      normalization), so every query allocates at the same addresses;
//   2. Cache::Reset() — the query starts cold, counters zeroed;
//   3. the work counter and the device peak tracker reset;
//   4. the session seed resolves to the query's seed (store's master seed
//      when the query leaves it 0);
//   5. the thread count and scan mode install for the run's duration;
//   6. the algorithm runs, Cache::FlushAll() charges pending output, and
//      the counters are snapshotted into the QueryResult.
//
// See README.md "Query sessions" for the full lifetime discussion.
#ifndef TRIENUM_QUERY_QUERY_H_
#define TRIENUM_QUERY_QUERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "em/array.h"
#include "em/context.h"
#include "graph/normalize.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace trienum::query {

/// What a query asks of the triangle engine. All kinds run the same
/// enumeration algorithm; they differ only in the sink attached to it.
enum class QueryKind {
  kCount,      ///< total triangle count
  kEnumerate,  ///< the triangles themselves (in emission order)
  kPerVertex,  ///< triangle count per (normalized) vertex id
  kPerEdge,    ///< triangle support per (normalized) edge, lex order
};

/// \brief One typed query over a loaded graph.
struct Query {
  QueryKind kind = QueryKind::kCount;
  /// Algorithm name from core::AllAlgorithms() (see `trienum list`).
  std::string algo = "ps-cache-aware";
  /// Seed for the run's randomized components; 0 = the store's master seed.
  std::uint64_t seed = 0;
  /// Cap on the triangles copied into QueryResult::list (kEnumerate only;
  /// 0 = keep all). The sink still sees every emission, so the cap never
  /// changes IoStats.
  std::size_t limit = 0;
  /// Host compute threads for the run (0 = all hardware cores). Never
  /// changes results or IoStats.
  std::size_t threads = 1;
  /// Scanner/Writer data path for the run. Both modes charge identical
  /// IoStats; kElementwise is the reference path for differential tests.
  em::ScanMode scan_mode = em::ScanMode::kBuffered;
};

/// Triangle support of one normalized edge (u < v).
struct EdgeSupport {
  graph::Edge e;
  std::uint64_t count = 0;
};

/// Aggregated exclusive (self) attribution of one phase-span name over a
/// query: every sampled span with this name, summed. Because self deltas
/// telescope (see obs/trace.h), the per-phase columns sum exactly to the
/// query's totals — block_reads, block_writes, cache_hits, work — with the
/// root "query.run" phase carrying whatever no named phase claimed.
struct PhaseStat {
  std::string name;
  std::uint64_t spans = 0;         ///< sampled spans aggregated under `name`
  std::uint64_t self_wall_ns = 0;  ///< wall time minus sampled children
  obs::CounterSample self;         ///< exclusive counter deltas
};

/// \brief Everything one query produced, measured under its own cold cache.
struct QueryResult {
  std::uint64_t triangles = 0;
  /// kEnumerate: emitted triangles in emission order (capped at limit).
  std::vector<graph::Triangle> list;
  /// kPerVertex: count of triangles containing vertex i, indexed by
  /// normalized id (size = num_vertices).
  std::vector<std::uint64_t> per_vertex;
  /// kPerEdge: edges appearing in at least one triangle with their support,
  /// lexicographically sorted (deterministic regardless of emission order).
  std::vector<EdgeSupport> per_edge;

  em::IoStats io;
  std::uint64_t work = 0;
  std::size_t device_peak_words = 0;
  /// Real backend traffic of this query (zero on the memory backend).
  em::StorageTelemetry telemetry;
  /// Recovery traffic of this query (retries, injected faults, checksum
  /// failures) — uncounted with respect to `io`, which stays bit-identical
  /// to a clean run under any transient fault schedule. All zero unless the
  /// store was built with a fault/checksum configuration.
  em::RecoveryStats recovery;
  /// Read-ahead traffic of this query (src/prefetch/) — uncounted with
  /// respect to `io`, which stays bit-identical to a depth-0 run. All zero
  /// unless the store was built with prefetch_depth > 0 over a staged
  /// (non-memory-resident) backend.
  em::PrefetchStats prefetch;
  double wall_ms = 0;
  std::uint64_t seed_used = 0;
  std::size_t threads_used = 0;
  /// Per-phase attribution table, first-appearance order. Populated only
  /// when a TraceCollector was installed for the run (empty otherwise —
  /// the untraced path stays allocation-free here).
  std::vector<PhaseStat> phases;
  /// This query's window of the always-on seam histograms (registry
  /// snapshot after minus before, zero-count entries dropped). Populated
  /// only when a TraceCollector was installed, like `phases`.
  std::vector<obs::HistogramSnapshot> histogram_deltas;
};

/// \brief Runs one query over a normalized graph inside `session`.
///
/// Enforces the cold-start contract documented at the top of this header;
/// the session's device top must be at the frozen mark (i.e. every earlier
/// query released its region — automatic when all access goes through this
/// function). Fails with NotFound for an unknown algorithm name.
Result<QueryResult> RunQuery(em::QuerySession& session,
                             const graph::EmGraph& g, const Query& q);

/// \brief A graph loaded once, queryable many times.
///
/// Owns the GraphStore, the normalized EmGraph resident on it, and one
/// long-lived QuerySession reused by Run(). Movable (the store sits behind a
/// unique_ptr) so factories can return it by value.
class LoadedGraph {
 public:
  /// Ingests + normalizes `raw` (uncounted, exactly like the single-run
  /// drivers) and freezes the result. Fails with kIoError when the backend
  /// cannot initialize (bad temp dir) or ingest hits a permanent I/O fault.
  static Result<LoadedGraph> FromEdges(const em::EmConfig& cfg,
                                       const std::vector<graph::Edge>& raw);

  LoadedGraph(LoadedGraph&&) = default;
  LoadedGraph& operator=(LoadedGraph&&) = default;

  /// Runs `q` on the reused session (bit-identical to a fresh context).
  Result<QueryResult> Run(const Query& q);

  em::GraphStore& store() { return *store_; }
  const graph::EmGraph& graph() const { return graph_; }
  /// Device top right after normalization; every query runs in a region
  /// opened here.
  em::Addr frozen_mark() const { return frozen_mark_; }
  /// The reused session (for callers composing their own RunQuery calls).
  em::QuerySession& session() { return *session_; }

 private:
  LoadedGraph() = default;

  std::unique_ptr<em::GraphStore> store_;
  std::unique_ptr<em::QuerySession> session_;
  graph::EmGraph graph_;
  em::Addr frozen_mark_ = 0;
};

}  // namespace trienum::query

#endif  // TRIENUM_QUERY_QUERY_H_
