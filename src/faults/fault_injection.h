// FaultInjectingBackend: a StorageBackend decorator that fires deterministic,
// seeded fault schedules against the wrapped backend.
//
// The injector sits *below* the recovery layer and *above* the real backend:
//
//   Cache -> RecoveringBackend -> FaultInjectingBackend -> File/MemoryBackend
//
// so injected faults exercise exactly the retry/checksum machinery a real
// misbehaving disk would. Determinism: every decision is a pure function of
// the (seed, clause index, per-op counter) triple, so the same spec over the
// same access sequence fires the same faults — which is what lets tests
// assert bit-identity between a faulted and a clean run.
//
// The injector always reports memory_resident() == false, forcing the cache
// into staged data mode even over a MemoryBackend. That gives every backend
// the same injection surface (all counted traffic is full-line ReadWords/
// WriteWords), and IoStats are staged-vs-direct invariant by construction.
#ifndef TRIENUM_FAULTS_FAULT_INJECTION_H_
#define TRIENUM_FAULTS_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "em/storage.h"
#include "faults/fault_spec.h"

namespace trienum::faults {

class FaultInjectingBackend final : public em::StorageBackend {
 public:
  FaultInjectingBackend(std::unique_ptr<em::StorageBackend> inner,
                        std::vector<FaultClause> clauses, std::uint64_t seed,
                        std::size_t block_words);

  Status EnsureSize(std::size_t words) override;
  std::size_t size_words() const override { return inner_->size_words(); }
  bool memory_resident() const override { return false; }
  Status ReadWords(em::Addr addr, std::size_t words, em::Word* out) override;
  Status WriteWords(em::Addr addr, std::size_t words,
                    const em::Word* in) override;
  // Advice is a pure hint: it passes through unfaulted (there is no I/O to
  // fault) and does not advance the per-op counters, so a prefetch-advised
  // run fires the same schedule as an unadvised one.
  void Advise(em::Addr addr, std::size_t words, em::AdviseKind kind) override {
    inner_->Advise(addr, words, kind);
  }
  Status init_status() const override { return inner_->init_status(); }
  const em::StorageTelemetry& telemetry() const override {
    return inner_->telemetry();
  }
  em::RecoveryStats recovery() const override;
  std::uint64_t grow_calls() const override { return inner_->grow_calls(); }
  const char* name() const override { return name_.c_str(); }

  /// While disarmed the injector is a pure pass-through: clause counters do
  /// not advance and nothing fires. Tests arm it only around the measured
  /// query so ingest traffic stays clean.
  void set_armed(bool armed) { armed_ = armed; }
  bool armed() const { return armed_; }

  /// Faults fired so far (monotone).
  std::uint64_t faults_injected() const { return faults_injected_; }

  /// 1-based ordinal of the last operation of `op` seen while armed. Test
  /// introspection: lets a harness place an `at=` clause at a known point
  /// (e.g. mid-query) by probing an identical run first.
  std::uint64_t op_count(FaultOp op) const {
    return ops_[static_cast<int>(op)];
  }

  em::StorageBackend& inner() { return *inner_; }

 private:
  /// Returns the firing clause for this op (advancing its counter), or
  /// nullptr. `counter` receives the 1-based op ordinal for flip-bit mixing.
  const FaultClause* NextFault(FaultOp op, std::uint64_t* counter);

  std::unique_ptr<em::StorageBackend> inner_;
  std::vector<FaultClause> clauses_;
  std::vector<std::uint64_t> fired_;  // per-clause firing counts
  std::vector<bool> latched_;         // per-clause perm latch
  std::uint64_t seed_;
  std::size_t block_words_;
  std::string name_;
  bool armed_ = true;
  std::uint64_t ops_[3] = {0, 0, 0};  // per-FaultOp 1-based counters
  std::uint64_t faults_injected_ = 0;
};

}  // namespace trienum::faults

#endif  // TRIENUM_FAULTS_FAULT_INJECTION_H_
