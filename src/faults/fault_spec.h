// Deterministic fault-schedule grammar for the fault-injection backend.
//
// A spec is a ';'-separated list of clauses:
//
//   clause  := op ':' kind [':' param (',' param)*]
//   op      := 'read' | 'write' | 'grow'
//   kind    := 'eio' | 'eintr' | 'short' | 'flip' | 'enospc'
//   param   := 'every=N' | 'at=N' | 'count=K' | 'perm=1' | 'p=F'
//
// Examples:
//
//   read:eio:every=7              every 7th read fails with EIO (transient)
//   write:short:every=5,count=3   3 short writes, then clean
//   read:eio:at=12,perm=1         the 12th read fails, and so does every
//                                 read after it (a permanent fault)
//   grow:enospc:at=1              the first real grow hits ENOSPC
//   read:flip:every=97            every 97th full-line read is returned with
//                                 one bit flipped (silent corruption — only
//                                 checksums catch it)
//   read:eio:p=0.01               each read fails with probability 1%,
//                                 seeded and reproducible
//
// Clause counters advance per matching operation (1-based), so `every=N`
// fires on operations N, 2N, 3N, ...; `at=N` fires exactly on operation N.
// With `perm=1` a clause that has fired once fires on every later matching
// operation. `count=K` caps total firings. The first firing clause in spec
// order wins for an operation.
//
// Kind/op compatibility: eio and eintr apply to all ops; short to read and
// write; flip to read only (and only fires on block-aligned full-line reads,
// where a torn block is meaningful); enospc to grow only. `grow` counts only
// EnsureSize calls that would actually extend the store.
#ifndef TRIENUM_FAULTS_FAULT_SPEC_H_
#define TRIENUM_FAULTS_FAULT_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace trienum::faults {

enum class FaultOp { kRead, kWrite, kGrow };
enum class FaultKind { kEio, kEintr, kShort, kFlip, kEnospc };

const char* FaultOpName(FaultOp op);
const char* FaultKindName(FaultKind kind);

/// One parsed clause of a fault spec.
struct FaultClause {
  FaultOp op = FaultOp::kRead;
  FaultKind kind = FaultKind::kEio;
  std::uint64_t every = 0;  ///< fire when op counter % every == 0 (0 = off)
  std::uint64_t at = 0;     ///< fire when op counter == at (0 = off)
  std::uint64_t count = 0;  ///< max firings (0 = unlimited)
  bool perm = false;        ///< once fired, fire on every later matching op
  double p = 0.0;           ///< per-op firing probability (seeded; 0 = off)
};

/// Parses a spec string; empty input yields an empty schedule.
Result<std::vector<FaultClause>> ParseFaultSpec(const std::string& spec);

}  // namespace trienum::faults

#endif  // TRIENUM_FAULTS_FAULT_SPEC_H_
