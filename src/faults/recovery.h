// RecoveringBackend: bounded retry with exponential backoff plus optional
// per-line checksums, as a StorageBackend decorator.
//
// All recovery traffic — repeated attempts, checksum verification re-reads,
// partial-write read-backs — happens *below* the cache, so it never touches
// IoStats: under any transient fault schedule the counted block reads/writes
// are bit-identical to a clean run, and the recovery work is reported
// separately through RecoveryStats.
//
// Checksums are maintained from writes only (one 64-bit FNV-1a per B-word
// line) and verified on block-aligned reads of lines that have been written.
// Recording a checksum from a *read* would let a corrupted first read poison
// the baseline, turning every later clean read into a false failure — so
// reads never update the table. A verification mismatch is treated like a
// transient read fault: count it, re-read, and only give up after the retry
// budget.
#ifndef TRIENUM_FAULTS_RECOVERY_H_
#define TRIENUM_FAULTS_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "em/defs.h"
#include "em/storage.h"
#include "faults/fault_injection.h"

namespace trienum::faults {

/// Retry discipline for transient faults.
struct RetryPolicy {
  int max_retries = 4;      ///< re-attempts after the first failure
  int backoff_ms = 0;       ///< base backoff, doubling per attempt (0 = none)
  bool verify_checksums = false;
};

class RecoveringBackend final : public em::StorageBackend {
 public:
  RecoveringBackend(std::unique_ptr<em::StorageBackend> inner,
                    RetryPolicy policy, std::size_t block_words);

  Status EnsureSize(std::size_t words) override;
  std::size_t size_words() const override { return inner_->size_words(); }
  bool memory_resident() const override { return false; }
  Status ReadWords(em::Addr addr, std::size_t words, em::Word* out) override;
  Status WriteWords(em::Addr addr, std::size_t words,
                    const em::Word* in) override;
  void Advise(em::Addr addr, std::size_t words, em::AdviseKind kind) override {
    inner_->Advise(addr, words, kind);
  }
  Status init_status() const override { return inner_->init_status(); }
  const em::StorageTelemetry& telemetry() const override {
    return inner_->telemetry();
  }
  em::RecoveryStats recovery() const override;
  std::uint64_t grow_calls() const override { return inner_->grow_calls(); }
  const char* name() const override { return name_.c_str(); }

  em::StorageBackend& inner() { return *inner_; }

 private:
  /// One bounded-retry attempt loop around `op`; sleeps between attempts
  /// when backoff is configured.
  template <typename Op>
  Status Retry(const Op& op);

  /// Verifies stored checksums over a block-aligned read's result. Returns
  /// false (and counts the failure) on a mismatch.
  bool ChecksumsOk(em::Addr addr, std::size_t words, const em::Word* data);
  /// Updates the checksum table after a successful write.
  void RecordWrite(em::Addr addr, std::size_t words, const em::Word* in);

  std::unique_ptr<em::StorageBackend> inner_;
  RetryPolicy policy_;
  std::size_t block_words_;
  std::string name_;
  std::unordered_map<std::uint64_t, std::uint64_t> line_crc_;
  std::uint64_t retries_ = 0;
  std::uint64_t checksum_failures_ = 0;
};

/// Parses cfg.fault_spec and installs cfg.wrap_backend so MakeStorageBackend
/// builds the decorated stack (injector below, recovery on top). With an
/// empty spec and verify_checksums off, the hook is cleared and the default
/// path stays completely unwrapped. Returns InvalidArgument on a bad spec.
Status ApplyFaultConfig(em::EmConfig& cfg);

/// Finds the fault injector inside a decorated backend chain (for tests and
/// tools that arm/disarm it around the measured region); null if absent.
FaultInjectingBackend* FindInjector(em::StorageBackend& backend);

}  // namespace trienum::faults

#endif  // TRIENUM_FAULTS_RECOVERY_H_
