#include "faults/recovery.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "obs/metrics.h"

namespace trienum::faults {

namespace {

// Wall time lost to retry backoff sleeps: invisible to every counted
// metric (retries are uncounted by design), so the histogram is the only
// place this latency shows up.
obs::Histogram& BackoffHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      obs::metric_names::kRecoveryBackoffNs);
  return h;
}

// FNV-1a over the line's words: cheap, order-sensitive, and good enough to
// catch any single-bit flip (the threat model is torn/corrupt blocks, not an
// adversary).
std::uint64_t LineCrc(const em::Word* data, std::size_t words) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < words; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

RecoveringBackend::RecoveringBackend(std::unique_ptr<em::StorageBackend> inner,
                                     RetryPolicy policy,
                                     std::size_t block_words)
    : inner_(std::move(inner)), policy_(policy), block_words_(block_words) {
  name_ = std::string(inner_->name()) + "+recovery";
}

template <typename Op>
Status RecoveringBackend::Retry(const Op& op) {
  Status st = op();
  for (int attempt = 0; !st.ok() && attempt < policy_.max_retries; ++attempt) {
    if (policy_.backoff_ms > 0) {
      obs::LatencyTimer timer(BackoffHist());
      std::this_thread::sleep_for(
          std::chrono::milliseconds(policy_.backoff_ms) * (1 << attempt));
    }
    ++retries_;
    st = op();
  }
  return st;
}

Status RecoveringBackend::EnsureSize(std::size_t words) {
  return Retry([&] { return inner_->EnsureSize(words); });
}

bool RecoveringBackend::ChecksumsOk(em::Addr addr, std::size_t words,
                                    const em::Word* data) {
  const std::uint64_t first = addr / block_words_;
  const std::uint64_t count = words / block_words_;
  for (std::uint64_t i = 0; i < count; ++i) {
    auto it = line_crc_.find(first + i);
    if (it == line_crc_.end()) continue;  // never written: nothing to check
    if (LineCrc(data + i * block_words_, block_words_) != it->second) {
      ++checksum_failures_;
      return false;
    }
  }
  return true;
}

Status RecoveringBackend::ReadWords(em::Addr addr, std::size_t words,
                                    em::Word* out) {
  const bool verifiable = policy_.verify_checksums && block_words_ > 0 &&
                          addr % block_words_ == 0 && words % block_words_ == 0;
  return Retry([&]() -> Status {
    TRIENUM_RETURN_NOT_OK(inner_->ReadWords(addr, words, out));
    if (verifiable && !ChecksumsOk(addr, words, out)) {
      // A corrupt block reads "successfully" with wrong bits; surface it as
      // a transient fault so the retry loop re-reads it.
      return Status::IoError("checksum mismatch on read");
    }
    return Status::OK();
  });
}

void RecoveringBackend::RecordWrite(em::Addr addr, std::size_t words,
                                    const em::Word* in) {
  const em::Addr end = addr + words;
  const std::uint64_t first = addr / block_words_;
  const std::uint64_t last = (end - 1) / block_words_;
  std::vector<em::Word> full(block_words_);
  std::vector<em::Word> again(block_words_);
  for (std::uint64_t line = first; line <= last; ++line) {
    const em::Addr base = static_cast<em::Addr>(line) * block_words_;
    if (addr <= base && base + block_words_ <= end) {
      line_crc_[line] = LineCrc(in + (base - addr), block_words_);
      continue;
    }
    // Partially covered boundary line (only uncounted ingest traffic is ever
    // unaligned): the new checksum must cover the merged contents, so read
    // the full line back. The read-back has no prior checksum to verify
    // against, and silent corruption striking it would poison the recorded
    // CRC forever — so require two consecutive reads to agree before
    // trusting the contents (a flip corrupts each read differently). On
    // persistent failure drop the entry: losing verification for one line,
    // never correctness.
    Status st = Retry([&]() -> Status {
      TRIENUM_RETURN_NOT_OK(inner_->ReadWords(base, block_words_, full.data()));
      TRIENUM_RETURN_NOT_OK(
          inner_->ReadWords(base, block_words_, again.data()));
      if (std::memcmp(full.data(), again.data(),
                      block_words_ * sizeof(em::Word)) != 0) {
        return Status::IoError("read-back mismatch");
      }
      return Status::OK();
    });
    if (st.ok()) {
      line_crc_[line] = LineCrc(full.data(), block_words_);
    } else {
      line_crc_.erase(line);
    }
  }
}

Status RecoveringBackend::WriteWords(em::Addr addr, std::size_t words,
                                     const em::Word* in) {
  Status st = Retry([&] { return inner_->WriteWords(addr, words, in); });
  if (st.ok() && policy_.verify_checksums && block_words_ > 0 && words > 0) {
    RecordWrite(addr, words, in);
  }
  return st;
}

em::RecoveryStats RecoveringBackend::recovery() const {
  em::RecoveryStats r = inner_->recovery();
  r.retries += retries_;
  r.checksum_failures += checksum_failures_;
  return r;
}

Status ApplyFaultConfig(em::EmConfig& cfg) {
  const bool wrap = !cfg.fault_spec.empty() || cfg.verify_checksums;
  if (!wrap) {
    cfg.wrap_backend = nullptr;
    return Status::OK();
  }
  TRIENUM_ASSIGN_OR_RETURN(std::vector<FaultClause> clauses,
                           ParseFaultSpec(cfg.fault_spec));
  if (cfg.io_retries < 0) {
    return Status::InvalidArgument("io_retries must be >= 0");
  }
  if (cfg.io_retry_backoff_ms < 0) {
    return Status::InvalidArgument("io_retry_backoff_ms must be >= 0");
  }
  RetryPolicy policy;
  policy.max_retries = cfg.io_retries;
  policy.backoff_ms = cfg.io_retry_backoff_ms;
  policy.verify_checksums = cfg.verify_checksums;
  const std::uint64_t seed = cfg.seed;
  const std::size_t block = cfg.block_words;
  // By-value captures: the hook outlives this call and may wrap several
  // stores (each gets its own injector/recovery state).
  cfg.wrap_backend = [clauses, policy, seed,
                      block](std::unique_ptr<em::StorageBackend> inner)
      -> std::unique_ptr<em::StorageBackend> {
    std::unique_ptr<em::StorageBackend> stack = std::move(inner);
    if (!clauses.empty()) {
      stack = std::make_unique<FaultInjectingBackend>(std::move(stack), clauses,
                                                      seed, block);
    }
    return std::make_unique<RecoveringBackend>(std::move(stack), policy, block);
  };
  return Status::OK();
}

FaultInjectingBackend* FindInjector(em::StorageBackend& backend) {
  em::StorageBackend* b = &backend;
  while (b != nullptr) {
    if (auto* inj = dynamic_cast<FaultInjectingBackend*>(b)) return inj;
    if (auto* rec = dynamic_cast<RecoveringBackend*>(b)) {
      b = &rec->inner();
      continue;
    }
    return nullptr;
  }
  return nullptr;
}

}  // namespace trienum::faults
