#include "faults/fault_spec.h"

#include <cerrno>
#include <cstdlib>

namespace trienum::faults {

namespace {

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

Status ParseU64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return Status::InvalidArgument("empty number");
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad number '" + text + "'");
  }
  *out = static_cast<std::uint64_t>(v);
  return Status::OK();
}

bool Compatible(FaultOp op, FaultKind kind) {
  switch (kind) {
    case FaultKind::kEio:
    case FaultKind::kEintr:
      return true;
    case FaultKind::kShort:
      return op == FaultOp::kRead || op == FaultOp::kWrite;
    case FaultKind::kFlip:
      return op == FaultOp::kRead;
    case FaultKind::kEnospc:
      return op == FaultOp::kGrow;
  }
  return false;
}

}  // namespace

const char* FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kRead: return "read";
    case FaultOp::kWrite: return "write";
    case FaultOp::kGrow: return "grow";
  }
  return "?";
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kEio: return "eio";
    case FaultKind::kEintr: return "eintr";
    case FaultKind::kShort: return "short";
    case FaultKind::kFlip: return "flip";
    case FaultKind::kEnospc: return "enospc";
  }
  return "?";
}

Result<std::vector<FaultClause>> ParseFaultSpec(const std::string& spec) {
  std::vector<FaultClause> clauses;
  if (spec.empty()) return clauses;
  for (const std::string& text : Split(spec, ';')) {
    if (text.empty()) {
      return Status::InvalidArgument("fault spec: empty clause");
    }
    std::vector<std::string> parts = Split(text, ':');
    if (parts.size() < 2 || parts.size() > 3) {
      return Status::InvalidArgument("fault spec: clause '" + text +
                                     "' is not op:kind[:params]");
    }
    FaultClause c;
    if (parts[0] == "read") {
      c.op = FaultOp::kRead;
    } else if (parts[0] == "write") {
      c.op = FaultOp::kWrite;
    } else if (parts[0] == "grow") {
      c.op = FaultOp::kGrow;
    } else {
      return Status::InvalidArgument("fault spec: unknown op '" + parts[0] +
                                     "' (read|write|grow)");
    }
    if (parts[1] == "eio") {
      c.kind = FaultKind::kEio;
    } else if (parts[1] == "eintr") {
      c.kind = FaultKind::kEintr;
    } else if (parts[1] == "short") {
      c.kind = FaultKind::kShort;
    } else if (parts[1] == "flip") {
      c.kind = FaultKind::kFlip;
    } else if (parts[1] == "enospc") {
      c.kind = FaultKind::kEnospc;
    } else {
      return Status::InvalidArgument("fault spec: unknown kind '" + parts[1] +
                                     "' (eio|eintr|short|flip|enospc)");
    }
    if (!Compatible(c.op, c.kind)) {
      return Status::InvalidArgument(
          std::string("fault spec: kind '") + FaultKindName(c.kind) +
          "' does not apply to op '" + FaultOpName(c.op) + "'");
    }
    if (parts.size() == 3) {
      for (const std::string& kv : Split(parts[2], ',')) {
        std::size_t eq = kv.find('=');
        if (eq == std::string::npos) {
          return Status::InvalidArgument("fault spec: param '" + kv +
                                         "' is not key=value");
        }
        std::string key = kv.substr(0, eq);
        std::string val = kv.substr(eq + 1);
        if (key == "every") {
          TRIENUM_RETURN_NOT_OK(ParseU64(val, &c.every));
          if (c.every == 0) {
            return Status::InvalidArgument("fault spec: every=0 is invalid");
          }
        } else if (key == "at") {
          TRIENUM_RETURN_NOT_OK(ParseU64(val, &c.at));
          if (c.at == 0) {
            return Status::InvalidArgument("fault spec: at=0 is invalid "
                                           "(operation counters are 1-based)");
          }
        } else if (key == "count") {
          TRIENUM_RETURN_NOT_OK(ParseU64(val, &c.count));
        } else if (key == "perm") {
          std::uint64_t v = 0;
          TRIENUM_RETURN_NOT_OK(ParseU64(val, &v));
          c.perm = v != 0;
        } else if (key == "p") {
          char* end = nullptr;
          c.p = std::strtod(val.c_str(), &end);
          if (end == val.c_str() || *end != '\0' || c.p < 0.0 || c.p > 1.0) {
            return Status::InvalidArgument("fault spec: p must be in [0,1]");
          }
        } else {
          return Status::InvalidArgument(
              "fault spec: unknown param '" + key +
              "' (every|at|count|perm|p)");
        }
      }
    }
    if (c.every == 0 && c.at == 0 && c.p == 0.0) {
      return Status::InvalidArgument("fault spec: clause '" + text +
                                     "' needs a trigger (every=, at= or p=)");
    }
    clauses.push_back(c);
  }
  return clauses;
}

}  // namespace trienum::faults
