#include "faults/fault_injection.h"

#include <cstring>

namespace trienum::faults {

namespace {

// splitmix64: the library's standard seeded mixer (see hashing/), reused so
// probabilistic clauses are reproducible across platforms.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjectingBackend::FaultInjectingBackend(
    std::unique_ptr<em::StorageBackend> inner, std::vector<FaultClause> clauses,
    std::uint64_t seed, std::size_t block_words)
    : inner_(std::move(inner)),
      clauses_(std::move(clauses)),
      fired_(clauses_.size(), 0),
      latched_(clauses_.size(), false),
      seed_(seed),
      block_words_(block_words) {
  name_ = std::string(inner_->name()) + "+faults";
}

const FaultClause* FaultInjectingBackend::NextFault(FaultOp op,
                                                    std::uint64_t* counter) {
  const std::uint64_t n = ++ops_[static_cast<int>(op)];
  if (counter != nullptr) *counter = n;
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    const FaultClause& c = clauses_[i];
    if (c.op != op) continue;
    bool fire = latched_[i];
    if (!fire && c.every != 0 && n % c.every == 0) fire = true;
    if (!fire && c.at != 0 && n == c.at) fire = true;
    if (!fire && c.p > 0.0) {
      const std::uint64_t h = Mix64(seed_ ^ Mix64(i + 1) ^ Mix64(n));
      fire = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0) < c.p;
    }
    if (!fire) continue;
    if (c.count != 0 && fired_[i] >= c.count && !latched_[i]) continue;
    ++fired_[i];
    if (c.perm) latched_[i] = true;
    ++faults_injected_;
    return &c;
  }
  return nullptr;
}

Status FaultInjectingBackend::EnsureSize(std::size_t words) {
  // Only a call that would actually extend the store counts as a grow
  // operation; re-validations of an already-large store stay invisible.
  if (armed_ && words > inner_->size_words()) {
    if (const FaultClause* c = NextFault(FaultOp::kGrow, nullptr)) {
      switch (c->kind) {
        case FaultKind::kEnospc:
          return Status::IoError("injected ENOSPC on grow");
        case FaultKind::kEintr:
          return Status::IoError("injected EINTR storm on grow");
        case FaultKind::kEio:
        default:
          return Status::IoError("injected EIO on grow");
      }
    }
  }
  return inner_->EnsureSize(words);
}

Status FaultInjectingBackend::ReadWords(em::Addr addr, std::size_t words,
                                        em::Word* out) {
  if (!armed_) return inner_->ReadWords(addr, words, out);
  std::uint64_t n = 0;
  const FaultClause* c = NextFault(FaultOp::kRead, &n);
  if (c == nullptr) return inner_->ReadWords(addr, words, out);
  switch (c->kind) {
    case FaultKind::kEio:
      return Status::IoError("injected EIO on read");
    case FaultKind::kEintr:
      return Status::IoError("injected EINTR storm on read");
    case FaultKind::kShort: {
      // Transfer a prefix, then fail: the caller must not trust partial
      // output. A clean retry re-issues the whole range (idempotent).
      const std::size_t half = words / 2;
      if (half > 0) {
        Status st = inner_->ReadWords(addr, half, out);
        if (!st.ok()) return st;
      }
      return Status::IoError("injected short read");
    }
    case FaultKind::kFlip: {
      // Silent corruption: a successful-looking read with one bit wrong.
      // Only on whole-line block-aligned reads (a torn block) — exactly the
      // shape the recovery layer can checksum-verify; other shapes pass
      // through clean so corruption is never injected where it is
      // undetectable by design.
      Status st = inner_->ReadWords(addr, words, out);
      if (!st.ok()) return st;
      if (block_words_ > 0 && words > 0 && addr % block_words_ == 0 &&
          words % block_words_ == 0) {
        const std::uint64_t h = Mix64(seed_ ^ Mix64(n));
        out[h % words] ^= em::Word{1} << ((h >> 32) % 64);
      }
      return Status::OK();
    }
    case FaultKind::kEnospc:
      break;  // unreachable: parser rejects enospc on read
  }
  return inner_->ReadWords(addr, words, out);
}

Status FaultInjectingBackend::WriteWords(em::Addr addr, std::size_t words,
                                         const em::Word* in) {
  if (!armed_) return inner_->WriteWords(addr, words, in);
  const FaultClause* c = NextFault(FaultOp::kWrite, nullptr);
  if (c == nullptr) return inner_->WriteWords(addr, words, in);
  switch (c->kind) {
    case FaultKind::kEio:
      return Status::IoError("injected EIO on write");
    case FaultKind::kEintr:
      return Status::IoError("injected EINTR storm on write");
    case FaultKind::kShort: {
      const std::size_t half = words / 2;
      if (half > 0) {
        Status st = inner_->WriteWords(addr, half, in);
        if (!st.ok()) return st;
      }
      return Status::IoError("injected short write");
    }
    case FaultKind::kFlip:
    case FaultKind::kEnospc:
      break;  // unreachable: parser rejects these on write
  }
  return inner_->WriteWords(addr, words, in);
}

em::RecoveryStats FaultInjectingBackend::recovery() const {
  em::RecoveryStats r = inner_->recovery();
  r.faults_injected += faults_injected_;
  return r;
}

}  // namespace trienum::faults
