#include "core/coloring.h"

#include <tuple>

#include "extsort/ext_merge_sort.h"
#include "extsort/scan_ops.h"
#include "extsort/sort_key.h"

namespace trienum::core {
namespace {

/// One edge endpoint within a color class.
struct IncidenceRec {
  std::uint64_t class_key = 0;
  graph::VertexId v = 0;
  std::uint32_t pad = 0;
};

/// (class_key, v) is 96 bits; radix on the class key, comparator finishes
/// the per-class runs.
struct IncidenceLess {
  static constexpr bool kKeyComplete = false;
  static std::uint64_t Key(const IncidenceRec& r) { return r.class_key; }
  bool operator()(const IncidenceRec& a, const IncidenceRec& b) const {
    return std::tie(a.class_key, a.v) < std::tie(b.class_key, b.v);
  }
};

double Choose2(double n) { return n * (n - 1) / 2.0; }

}  // namespace

ColoringStats ComputeColoringStats(em::QuerySession& ctx, em::Array<graph::Edge> edges,
                                   const ColorFn& color, std::uint32_t c) {
  ColoringStats out;
  const std::size_t m = edges.size();
  if (m == 0) return out;
  auto region = ctx.Region();

  // Class keys, sorted: class sizes by run-length.
  em::Array<std::uint64_t> keys = ctx.Alloc<std::uint64_t>(m);
  extsort::Transform(edges, keys, [&](const graph::Edge& e) {
    return static_cast<std::uint64_t>(color(e.u)) * c + color(e.v);
  });
  extsort::ExternalMergeSort(ctx, keys, extsort::ValueLess<std::uint64_t>{});
  {
    em::Scanner<std::uint64_t> in(keys);
    std::uint64_t cur = in.Next();
    std::uint64_t cnt = 1;
    auto close_run = [&]() {
      out.x_total += Choose2(static_cast<double>(cnt));
      ++out.nonempty_classes;
      out.max_class_size = std::max(out.max_class_size, cnt);
    };
    while (in.HasNext()) {
      std::uint64_t k = in.Next();
      if (k == cur) {
        ++cnt;
      } else {
        close_run();
        cur = k;
        cnt = 1;
      }
    }
    close_run();
  }

  // Adjacent pairs: per (class, vertex) incident-edge counts. Two same-class
  // edges share at most one vertex (no parallel edges), so summing
  // C(count, 2) over (class, vertex) counts each adjacent pair exactly once.
  em::Array<IncidenceRec> inc = ctx.Alloc<IncidenceRec>(2 * m);
  {
    em::Scanner<graph::Edge> in(edges);
    em::Writer<IncidenceRec> out_w(inc);
    while (in.HasNext()) {
      graph::Edge e = in.Next();
      std::uint64_t key =
          static_cast<std::uint64_t>(color(e.u)) * c + color(e.v);
      out_w.Push(IncidenceRec{key, e.u, 0});
      out_w.Push(IncidenceRec{key, e.v, 0});
    }
  }
  extsort::ExternalMergeSort(ctx, inc, IncidenceLess{});
  {
    em::Scanner<IncidenceRec> in(inc);
    IncidenceRec cur = in.Next();
    std::uint64_t cnt = 1;
    while (in.HasNext()) {
      IncidenceRec r = in.Next();
      if (r.class_key == cur.class_key && r.v == cur.v) {
        ++cnt;
      } else {
        out.x_adj += Choose2(static_cast<double>(cnt));
        cur = r;
        cnt = 1;
      }
    }
    out.x_adj += Choose2(static_cast<double>(cnt));
  }
  out.x_nonadj = out.x_total - out.x_adj;
  return out;
}

double Lemma3Bound(std::size_t num_edges, std::size_t memory_words) {
  return static_cast<double>(num_edges) * static_cast<double>(memory_words);
}

double DerandomizedBound(std::size_t num_edges, std::size_t memory_words) {
  return 2.718281828459045 * static_cast<double>(num_edges) *
         static_cast<double>(memory_words);
}

}  // namespace trienum::core
