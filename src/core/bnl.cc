#include "core/bnl.h"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "em/array.h"
#include "obs/trace.h"

namespace trienum::core {
namespace {

struct PathCand {
  graph::VertexId v1, v2, v3;
};

// Verifies buffered paths (v1, v2, v3) against the edge relation: sort by
// (v1, v3) and merge-scan E once; matches close triangles.
void FlushCandidates(em::QuerySession& ctx, const graph::EmGraph& g,
                     std::vector<PathCand>& cand, TriangleSink& sink) {
  if (cand.empty()) return;
  std::sort(cand.begin(), cand.end(), [](const PathCand& a, const PathCand& b) {
    return std::tie(a.v1, a.v3, a.v2) < std::tie(b.v1, b.v3, b.v2);
  });
  ctx.AddWork(cand.size() * 2);
  std::size_t ci = 0;
  em::Scanner<graph::Edge> es(g.edges);
  while (es.HasNext() && ci < cand.size()) {
    graph::Edge e = es.Next();
    while (ci < cand.size() &&
           std::tie(cand[ci].v1, cand[ci].v3) < std::tie(e.u, e.v)) {
      ++ci;
    }
    while (ci < cand.size() && cand[ci].v1 == e.u && cand[ci].v3 == e.v) {
      sink.Emit(cand[ci].v1, cand[ci].v2, cand[ci].v3);
      ++ci;
    }
  }
  cand.clear();
}

}  // namespace

void EnumerateBnl(em::QuerySession& ctx, const graph::EmGraph& g, TriangleSink& sink,
                  const BnlOptions& opts) {
  using graph::VertexId;
  const std::size_t m = g.num_edges();
  if (m < 3) return;

  std::size_t chunk_items = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(ctx.memory_words()) *
                                  opts.chunk_fraction));
  std::size_t cand_cap = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(ctx.memory_words()) *
                                  opts.candidate_fraction / 2));

  for (std::size_t c0 = 0; c0 < m; c0 += chunk_items) {
    std::size_t c1 = std::min(m, c0 + chunk_items);
    obs::Span span("bnl.chunk_join");
    span.AddArg("chunk_items", c1 - c0);
    em::ScratchLease lease =
        ctx.LeaseScratch((c1 - c0) * 3 + cand_cap * 2);

    // Resident outer chunk, indexed by its larger endpoint v2.
    std::vector<graph::Edge> chunk(c1 - c0);
    g.edges.ReadTo(c0, c1, chunk.data());
    std::unordered_map<VertexId, std::vector<VertexId>> by_second;
    by_second.reserve(chunk.size());
    for (const graph::Edge& e : chunk) by_second[e.v].push_back(e.u);

    std::vector<PathCand> cand;
    cand.reserve(cand_cap);

    // Inner scan: join (v1, v2) with (v2, v3) on v2.
    em::Scanner<graph::Edge> es(g.edges);
    while (es.HasNext()) {
      graph::Edge e = es.Next();
      ctx.AddWork(1);
      auto it = by_second.find(e.u);
      if (it == by_second.end()) continue;
      for (VertexId v1 : it->second) {
        cand.push_back(PathCand{v1, e.u, e.v});
        if (cand.size() >= cand_cap) FlushCandidates(ctx, g, cand, sink);
      }
    }
    FlushCandidates(ctx, g, cand, sink);
  }
}

double BnlIoBound(std::size_t num_edges, std::size_t m, std::size_t b,
                  const BnlOptions& opts) {
  double e = static_cast<double>(num_edges);
  double mm = static_cast<double>(m);
  double chunk = std::max(1.0, mm * opts.chunk_fraction);
  double cand_cap = std::max(1.0, mm * opts.candidate_fraction / 2);
  double chunks = std::ceil(e / chunk);
  // Paths generated per chunk are at most chunk * max_v deg(v) <= chunk * E;
  // the worst-case flush count is paths / cand_cap, each costing a scan.
  double paths = chunk * e;
  double flush_scans = std::ceil(paths / cand_cap);
  return chunks * ((1.0 + flush_scans) * e / static_cast<double>(b) +
                   chunk / static_cast<double>(b));
}

}  // namespace trienum::core
