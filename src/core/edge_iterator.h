// Edge-iterator triangle listing in the style of Menegola's external-memory
// algorithm [18]: build a CSR forward-adjacency structure, then for every
// edge (u, v) intersect the tail of N+(u) with N+(v). Each edge incurs one
// unblocked random access into the adjacency array, giving the paper's
// O(E + E^{3/2}/B) bound — the "weak temporal locality" comparison point of
// §1.1 (no dependence on M at all).
#ifndef TRIENUM_CORE_EDGE_ITERATOR_H_
#define TRIENUM_CORE_EDGE_ITERATOR_H_

#include "core/sink.h"
#include "graph/normalize.h"

namespace trienum::core {

void EnumerateEdgeIterator(em::QuerySession& ctx, const graph::EmGraph& g,
                           TriangleSink& sink);

/// Predicted O(E + E^{3/2}/B) cost with implementation constants.
double EdgeIteratorIoBound(std::size_t num_edges, std::size_t b);

}  // namespace trienum::core

#endif  // TRIENUM_CORE_EDGE_ITERATOR_H_
