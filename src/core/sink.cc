#include "core/sink.h"

#include "common/rng.h"
#include "common/status.h"

namespace trienum::core {

void ChecksumSink::Emit(graph::VertexId a, graph::VertexId b, graph::VertexId c) {
  TRIENUM_CHECK(a < b && b < c);
  std::uint64_t key = Mix64((static_cast<std::uint64_t>(a) << 40) ^
                            (static_cast<std::uint64_t>(b) << 20) ^ c);
  ++count_;
  sum_ += key;
  xored_ ^= key;
}

std::uint64_t ChecksumSink::checksum() const {
  // Mix the commutative sum before combining so that the two order-invariant
  // digests cannot cancel (sum ^ xor of a single emission would always be 0).
  return Mix64(sum_ + count_) ^ xored_;
}

}  // namespace trienum::core
