#include "core/count.h"

#include "core/algorithms.h"
#include "core/sink.h"
#include "extsort/scan_ops.h"
#include "hashing/kwise.h"

namespace trienum::core {

Result<std::uint64_t> CountTriangles(em::QuerySession& ctx, const graph::EmGraph& g,
                                     std::string_view algorithm) {
  const AlgorithmInfo* algo = FindAlgorithm(algorithm);
  if (algo == nullptr) {
    return Status::NotFound("unknown algorithm: " + std::string(algorithm));
  }
  CountingSink sink;
  algo->run(ctx, g, sink);
  return sink.count();
}

Result<SampledCountResult> EstimateTriangles(em::QuerySession& ctx,
                                             const graph::EmGraph& g, double p,
                                             std::string_view algorithm,
                                             std::uint64_t seed) {
  if (!(p > 0.0 && p <= 1.0)) {
    return Status::InvalidArgument("sampling rate must be in (0, 1]");
  }
  const AlgorithmInfo* algo = FindAlgorithm(algorithm);
  if (algo == nullptr) {
    return Status::NotFound("unknown algorithm: " + std::string(algorithm));
  }

  em::IoStats before = ctx.cache().stats();
  auto region = ctx.Region();

  // Edge sampling by hashing the (u, v) pair: deterministic in the seed,
  // one filtering scan. Sampling preserves the §1.3 invariants (subset of a
  // lex-sorted list), so no renormalization is needed — only the degree
  // array would be stale, and the enumerators that use it (high-degree
  // split) see a conservative superset threshold, which stays correct.
  hashing::FourWiseHash h(seed);
  const auto threshold = static_cast<std::uint64_t>(
      p * static_cast<double>(hashing::kMersenne61));
  em::Array<graph::Edge> sampled = ctx.Alloc<graph::Edge>(g.num_edges());
  std::size_t kept = extsort::Filter(
      g.edges, sampled, [&](const graph::Edge& e) {
        std::uint64_t key =
            (static_cast<std::uint64_t>(e.u) << 32) | e.v;
        return h(key) < threshold;
      });

  graph::EmGraph sub;
  sub.edges = sampled.Slice(0, kept);
  sub.num_vertices = g.num_vertices;
  sub.degrees = g.degrees;

  CountingSink sink;
  algo->run(ctx, sub, sink);
  ctx.cache().FlushAll();

  SampledCountResult out;
  out.sampled_triangles = sink.count();
  out.sampled_edges = kept;
  out.estimate = static_cast<double>(sink.count()) / (p * p * p);
  out.io = ctx.cache().stats() - before;
  return out;
}

}  // namespace trienum::core
