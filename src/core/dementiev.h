// Dementiev's external-memory triangle listing (PhD thesis, 2006),
// reconstructed as a degree-ordered wedge join: orient every edge from its
// lower-(degree, id) endpoint to the higher one, generate all out-wedges
// (s; t1, t2), and merge-join the wedge queries {t1, t2} against the edge
// list. Out-degrees under this orientation are O(sqrt(E)), so at most
// O(E^{3/2}) wedges are generated and the whole algorithm runs in
// O(sort(E^{3/2})) I/Os — the bound the paper cites for [9].
//
// The routine is templated on the sort policy because it doubles as the
// *base case* of the cache-oblivious recursion (paper §3.1: "triangles are
// enumerated with the deterministic algorithm by Dementiev, which relies on
// sort and scan operations, and can be trivially made oblivious using any
// oblivious sorting algorithm"), where it runs with FunnelSort and a
// (c0,c1,c2)-properness filter.
#ifndef TRIENUM_CORE_DEMENTIEV_H_
#define TRIENUM_CORE_DEMENTIEV_H_

#include <tuple>

#include "core/sink.h"
#include "core/vertex_enum.h"
#include "em/array.h"
#include "extsort/scan_ops.h"
#include "extsort/sort_key.h"
#include "extsort/sorter.h"
#include "graph/normalize.h"
#include "graph/types.h"

namespace trienum::core {
namespace internal {

/// Per-vertex degree record local to the input edge set.
struct LocalDeg {
  graph::VertexId v = 0;
  std::uint32_t deg = 0;
};

/// Edge annotated with both endpoint degrees (and colors, zero if unused).
struct WedgeDegEdge {
  graph::VertexId u = 0, v = 0;
  std::uint32_t du = 0, dv = 0;
  std::uint32_t cu = 0, cv = 0;
};

/// Degree-oriented edge: s is the endpoint with the smaller (deg, id) key.
struct WedgeOriented {
  graph::VertexId s = 0, t = 0;
  std::uint32_t cs = 0, ct = 0;
};

/// Wedge query: does edge {a, b} (a < b by id) exist? s is the cone vertex.
struct WedgeQuery {
  graph::VertexId a = 0, b = 0, s = 0;
  std::uint32_t ca = 0, cb = 0, cs = 0;
};

// Keyed orders for the engine (see extsort/sort_key.h): each comparator
// compares exactly the two ids its key packs, so all three keys are
// complete; payload fields ride on the engine's stability.

/// (v, u): the second degree-attach pass groups edges by larger endpoint.
struct ByTargetLess {
  static constexpr bool kKeyComplete = true;
  static std::uint64_t Key(const WedgeDegEdge& e) {
    return extsort::PackKey(e.v, e.u);
  }
  bool operator()(const WedgeDegEdge& a, const WedgeDegEdge& b) const {
    return std::tie(a.v, a.u) < std::tie(b.v, b.u);
  }
};

/// (s, t): wedge generation groups oriented edges by source.
struct BySourceLess {
  static constexpr bool kKeyComplete = true;
  static std::uint64_t Key(const WedgeOriented& e) {
    return extsort::PackKey(e.s, e.t);
  }
  bool operator()(const WedgeOriented& a, const WedgeOriented& b) const {
    return std::tie(a.s, a.t) < std::tie(b.s, b.t);
  }
};

/// (a, b): the join order of the query stream (duplicates-heavy — many
/// wedges probe the same edge).
struct ByQueryEdgeLess {
  static constexpr bool kKeyComplete = true;
  static std::uint64_t Key(const WedgeQuery& q) {
    return extsort::PackKey(q.a, q.b);
  }
  bool operator()(const WedgeQuery& a, const WedgeQuery& b) const {
    return std::tie(a.a, a.b) < std::tie(b.a, b.b);
  }
};

}  // namespace internal

/// \brief Wedge-join triangle enumeration over a lex-sorted edge array.
///
/// `filter(tri, c0, c1, c2)` receives each candidate triangle (vertices
/// ordered, colors positional) and decides whether to emit — the oblivious
/// recursion passes the (c0,c1,c2)-properness predicate, the standalone
/// baseline passes always-true.
template <typename EdgeT, typename Sorter, typename Filter>
void WedgeJoinEnumerate(em::QuerySession& ctx, em::Array<EdgeT> edges, Sorter sorter,
                        Filter filter, TriangleSink& sink) {
  using Access = graph::EdgeAccess<EdgeT>;
  using internal::LocalDeg;
  using internal::WedgeDegEdge;
  using internal::WedgeOriented;
  using internal::WedgeQuery;
  using graph::VertexId;

  const std::size_t m = edges.size();
  if (m < 3) return;
  auto region = ctx.Region();

  // --- Local degrees ---------------------------------------------------------
  em::Array<VertexId> ends = ctx.Alloc<VertexId>(2 * m);
  {
    em::Scanner<EdgeT> es(edges);
    em::Writer<VertexId> ew(ends);
    while (es.HasNext()) {
      EdgeT e = es.Next();
      ew.Push(Access::U(e));
      ew.Push(Access::V(e));
    }
  }
  sorter(ctx, ends, extsort::ValueLess<VertexId>{});
  em::Array<LocalDeg> degs = ctx.Alloc<LocalDeg>(2 * m);
  em::Writer<LocalDeg> dw(degs);
  {
    em::Scanner<VertexId> es(ends);
    VertexId cur = es.Next();
    std::uint32_t cnt = 1;
    while (es.HasNext()) {
      VertexId x = es.Next();
      if (x == cur) {
        ++cnt;
      } else {
        dw.Push(LocalDeg{cur, cnt});
        cur = x;
        cnt = 1;
      }
    }
    dw.Push(LocalDeg{cur, cnt});
  }
  em::Array<LocalDeg> dv = dw.Written();

  // --- Attach degrees (merge on u, then on v) --------------------------------
  em::Array<WedgeDegEdge> de = ctx.Alloc<WedgeDegEdge>(m);
  {
    em::Scanner<EdgeT> es(edges);
    em::Writer<WedgeDegEdge> dew(de);
    em::Scanner<LocalDeg> ds(dv);
    LocalDeg cur = ds.Next();
    while (es.HasNext()) {
      EdgeT e = es.Next();
      while (cur.v < Access::U(e) && ds.HasNext()) cur = ds.Next();
      TRIENUM_CHECK(cur.v == Access::U(e));
      dew.Push(WedgeDegEdge{Access::U(e), Access::V(e), cur.deg, 0, Access::CU(e),
                            Access::CV(e)});
    }
  }
  sorter(ctx, de, internal::ByTargetLess{});
  {
    em::Scanner<WedgeDegEdge> des(de);
    em::Writer<WedgeDegEdge> dew(de);  // in place: writes trail reads
    em::Scanner<LocalDeg> ds(dv);
    LocalDeg cur = ds.Next();
    while (des.HasNext()) {
      WedgeDegEdge e = des.Next();
      while (cur.v < e.v && ds.HasNext()) cur = ds.Next();
      TRIENUM_CHECK(cur.v == e.v);
      e.dv = cur.deg;
      dew.Push(e);
    }
  }

  // --- Orient by (degree, id) and group by source ----------------------------
  em::Array<WedgeOriented> ow = ctx.Alloc<WedgeOriented>(m);
  {
    em::Scanner<WedgeDegEdge> des(de);
    em::Writer<WedgeOriented> oww(ow);
    while (des.HasNext()) {
      WedgeDegEdge e = des.Next();
      bool u_first = std::tie(e.du, e.u) < std::tie(e.dv, e.v);
      if (u_first) {
        oww.Push(WedgeOriented{e.u, e.v, e.cu, e.cv});
      } else {
        oww.Push(WedgeOriented{e.v, e.u, e.cv, e.cu});
      }
    }
  }
  sorter(ctx, ow, internal::BySourceLess{});

  // --- Count wedges, then generate them --------------------------------------
  std::uint64_t num_wedges = 0;
  {
    std::size_t i = 0;
    while (i < m) {
      VertexId s = ow.Get(i).s;
      std::size_t j = i;
      while (j < m && ow.Get(j).s == s) ++j;
      std::uint64_t g = j - i;
      num_wedges += g * (g - 1) / 2;
      i = j;
    }
  }
  if (num_wedges == 0) return;

  em::Array<WedgeQuery> queries = ctx.Alloc<WedgeQuery>(num_wedges);
  em::Writer<WedgeQuery> qw(queries);
  {
    std::size_t i = 0;
    while (i < m) {
      VertexId s = ow.Get(i).s;
      std::size_t j = i;
      while (j < m && ow.Get(j).s == s) ++j;
      for (std::size_t p = i; p < j; ++p) {
        WedgeOriented ep = ow.Get(p);
        // The quadratic wedge pass re-scans the group suffix per p; a
        // buffered Scanner turns those re-reads into host-buffer hits (tiny
        // suffixes go element-wise — identical charges, no buffer alloc).
        em::Scanner<WedgeOriented> gsuf(ow, p + 1, j,
                                        j - p - 1 >= 32
                                            ? em::DefaultScanMode()
                                            : em::ScanMode::kElementwise);
        while (gsuf.HasNext()) {
          WedgeOriented eq = gsuf.Next();
          ctx.AddWork(1);
          WedgeQuery rec;
          rec.s = s;
          rec.cs = ep.cs;
          if (ep.t < eq.t) {
            rec = WedgeQuery{ep.t, eq.t, s, ep.ct, eq.ct, ep.cs};
          } else {
            rec = WedgeQuery{eq.t, ep.t, s, eq.ct, ep.ct, ep.cs};
          }
          qw.Push(rec);
        }
      }
      i = j;
    }
  }
  qw.Flush();  // the sorter below reads `queries` while qw is still alive

  // --- Sort queries and merge-join against the edge list ---------------------
  sorter(ctx, queries, internal::ByQueryEdgeLess{});
  {
    em::Scanner<WedgeQuery> qs(queries);
    em::Scanner<EdgeT> es(edges);
    while (es.HasNext() && qs.HasNext()) {
      EdgeT e = es.Next();
      VertexId eu = Access::U(e), ev = Access::V(e);
      while (qs.HasNext()) {
        WedgeQuery q = qs.Peek();
        if (std::tie(q.a, q.b) < std::tie(eu, ev)) {
          qs.Next();
          continue;
        }
        break;
      }
      while (qs.HasNext()) {
        WedgeQuery q = qs.Peek();
        if (q.a != eu || q.b != ev) break;
        qs.Next();
        auto [tri, c0, c1, c2] =
            OrderColoredTriple(q.s, q.cs, q.a, q.ca, q.b, q.cb);
        ctx.AddWork(1);
        if (filter(tri, c0, c1, c2)) sink.Emit(tri.a, tri.b, tri.c);
      }
    }
  }
}

struct DementievOptions {};

/// Standalone Dementiev baseline over a normalized graph (cache-aware sort,
/// no filter): O(sort(E^{3/2})) I/Os.
void EnumerateDementiev(em::QuerySession& ctx, const graph::EmGraph& g,
                        TriangleSink& sink);

/// Predicted I/O cost sort(E^{3/2}) with the implementation's constants.
double DementievIoBound(std::size_t num_edges, std::size_t m, std::size_t b);

}  // namespace trienum::core

#endif  // TRIENUM_CORE_DEMENTIEV_H_
