// Lemma 1: enumerate all triangles containing a given vertex x in
// O(sort(E)) I/Os.
//
// Following the paper's proof: (i) one scan collects Gamma_x, the neighbours
// of x; (ii) Gamma_x is sorted and merged against the lex-sorted edge list to
// keep E_x, the edges whose smaller endpoint lies in Gamma_x; (iii) E_x is
// re-sorted by larger endpoint and merged against Gamma_x again to keep
// E'_x, the edges with *both* endpoints adjacent to x. Every edge
// {u, w} in E'_x closes a triangle {x, u, w}.
#ifndef TRIENUM_CORE_VERTEX_ENUM_H_
#define TRIENUM_CORE_VERTEX_ENUM_H_

#include <tuple>

#include "em/array.h"
#include "extsort/scan_ops.h"
#include "extsort/sorter.h"
#include "graph/types.h"

namespace trienum::core {

/// Neighbour record: vertex plus (for colored runs) its color.
struct NeighborRec {
  graph::VertexId v = 0;
  std::uint32_t color = 0;
};

/// Order by neighbour id (the color is payload); keyed for the engine's
/// radix run formation.
struct NeighborByIdLess {
  static constexpr bool kKeyComplete = true;
  static std::uint64_t Key(const NeighborRec& r) { return r.v; }
  bool operator()(const NeighborRec& a, const NeighborRec& b) const {
    return a.v < b.v;
  }
};

/// \brief Enumerates all triangles through `x` within `edges`.
///
/// Preconditions: `edges` is lex-sorted with u < v per edge (the §1.3
/// canonical layout). For every closing edge {u, w} (u < w, both adjacent to
/// x) calls `on_edge(u, w, cu, cw, cx)` where c* are endpoint colors (zero
/// for uncolored edges). The *caller* orders the triple {x,u,w}, applies any
/// properness filter, and emits. Costs O(sort(E)) I/Os.
template <typename EdgeT, typename Sorter, typename Fn>
void EnumerateTrianglesContaining(em::QuerySession& ctx, em::Array<EdgeT> edges,
                                  graph::VertexId x, Sorter sorter, Fn on_edge) {
  using Access = graph::EdgeAccess<EdgeT>;
  if (edges.size() < 3) return;

  auto region = ctx.Region();

  // (i) Gamma_x: neighbours of x (with their colors), then sort by id.
  em::Array<NeighborRec> gamma = ctx.Alloc<NeighborRec>(edges.size());
  em::Writer<NeighborRec> gw(gamma);
  std::uint32_t x_color = 0;
  {
    em::Scanner<EdgeT> es(edges);
    while (es.HasNext()) {
      EdgeT e = es.Next();
      if (Access::U(e) == x) {
        gw.Push(NeighborRec{Access::V(e), Access::CV(e)});
        x_color = Access::CU(e);
      } else if (Access::V(e) == x) {
        gw.Push(NeighborRec{Access::U(e), Access::CU(e)});
        x_color = Access::CV(e);
      }
    }
  }
  em::Array<NeighborRec> g = gw.Written();
  if (g.size() < 2) return;
  sorter(ctx, g, NeighborByIdLess{});

  // (ii) E_x: edges whose smaller endpoint is in Gamma_x (merge on u; the
  // edge list is sorted by smaller endpoint already).
  em::Array<EdgeT> ex = ctx.Alloc<EdgeT>(edges.size());
  em::Writer<EdgeT> exw(ex);
  {
    em::Scanner<EdgeT> es(edges);
    em::Scanner<NeighborRec> gs(g);
    NeighborRec cur = gs.Next();
    while (es.HasNext()) {
      EdgeT e = es.Next();
      while (cur.v < Access::U(e) && gs.HasNext()) cur = gs.Next();
      if (cur.v == Access::U(e)) exw.Push(e);
    }
  }
  em::Array<EdgeT> exv = exw.Written();
  if (exv.empty()) return;

  // (iii) E'_x: of those, edges whose larger endpoint is also in Gamma_x
  // (re-sort by larger endpoint, merge on v).
  sorter(ctx, exv, graph::ByMaxLess{});
  {
    em::Scanner<EdgeT> es(exv);
    em::Scanner<NeighborRec> gs(g);
    NeighborRec cur = gs.Next();
    while (es.HasNext()) {
      EdgeT e = es.Next();
      while (cur.v < Access::V(e) && gs.HasNext()) cur = gs.Next();
      if (cur.v == Access::V(e)) {
        on_edge(Access::U(e), Access::V(e), Access::CU(e), Access::CV(e), x_color);
        ctx.AddWork(1);
      }
    }
  }
}

/// Orders the triple {x, u, w} (u < w, x distinct) as a < b < c.
inline graph::Triangle OrderTriple(graph::VertexId x, graph::VertexId u,
                                   graph::VertexId w) {
  if (x < u) return graph::Triangle{x, u, w};
  if (x < w) return graph::Triangle{u, x, w};
  return graph::Triangle{u, w, x};
}

/// Orders the colored triple consistently with OrderTriple, returning the
/// triangle and its per-position colors.
inline std::tuple<graph::Triangle, std::uint32_t, std::uint32_t, std::uint32_t>
OrderColoredTriple(graph::VertexId x, std::uint32_t cx, graph::VertexId u,
                   std::uint32_t cu, graph::VertexId w, std::uint32_t cw) {
  if (x < u) return {graph::Triangle{x, u, w}, cx, cu, cw};
  if (x < w) return {graph::Triangle{u, x, w}, cu, cx, cw};
  return {graph::Triangle{u, w, x}, cu, cw, cx};
}

}  // namespace trienum::core

#endif  // TRIENUM_CORE_VERTEX_ENUM_H_
