#include "core/mgt.h"

#include <cmath>

#include "obs/trace.h"

namespace trienum::core {

void EnumerateMgt(em::QuerySession& ctx, const graph::EmGraph& g, TriangleSink& sink,
                  const MgtOptions& opts) {
  obs::Span span("mgt.pivot_enum");
  span.AddArg("edges", g.num_edges());
  PivotEnumOptions popts;
  popts.chunk_fraction = opts.chunk_fraction;
  // Lemma 2 with the pivot set equal to the whole edge set: every triangle
  // has its (unique) pivot edge somewhere in E, so all are enumerated. The
  // adjacency intersections (resident pivot runs vs Gamma_3) run on the
  // src/simd/ two-regime kernels inside PivotEnumerate.
  PivotEnumerate<graph::Edge>(ctx, g.edges, g.edges, g.edges, sink, popts);
}

double MgtIoBound(std::size_t num_edges, std::size_t m, std::size_t b,
                  double chunk_fraction) {
  double e = static_cast<double>(num_edges);
  double chunk = std::max(1.0, static_cast<double>(m) * chunk_fraction);
  double chunks = std::ceil(e / chunk);
  // Each chunk costs one scan of E (cone stream) plus reading the chunk.
  return chunks * (e / static_cast<double>(b) + chunk / static_cast<double>(b)) +
         1.0;
}

}  // namespace trienum::core
