// Section 4: derandomizing the cache-aware algorithm.
//
// The coloring xi is built one bit at a time: starting from the constant
// coloring xi_0 = 1, round i picks a two-coloring b_{i-1} and refines
// xi_i(v) = 2*xi_{i-1}(v) - b_{i-1}(v). The greedy choice maintains the
// paper's potential inequality (4):
//
//   4^i * X^nonadj_i / c^2  +  2^i * X^adj_i / c  <=  (1+alpha)^i * E * M
//
// with alpha = 1/log2(c). At i = log2(c) the left side *is* X_xi, giving the
// deterministic guarantee X_xi < e*E*M that Theorem 2 needs. Candidates come
// from a fixed deterministic schedule (see hashing/bit_family.h and
// DESIGN.md §2 for the substitution of the AGHP family); for each candidate
// the potential is evaluated exactly with two scans (class-grouped edges for
// the subclass counts, (class, vertex)-grouped incidences for the adjacent
// pairs), and the first candidate satisfying (4) is accepted — by Markov's
// inequality an expected O(1) candidates are inspected per round.
#ifndef TRIENUM_CORE_DERANDOMIZE_H_
#define TRIENUM_CORE_DERANDOMIZE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "em/array.h"
#include "graph/types.h"
#include "hashing/kwise.h"

namespace trienum::core {

struct DerandOptions {
  /// Cap on candidates inspected per round; if none satisfies (4) the best
  /// seen is used (the final X_xi is still verified by tests/benches).
  std::size_t max_candidates = 64;
  /// Slack alpha in (4); <= 0 means the paper's 1/log2(c).
  double alpha = -1.0;
  /// Draw candidates from the genuine AGHP epsilon-biased family over
  /// GF(2^aghp_m) (the paper's Lemma 6 source) instead of the fast 4-wise
  /// schedule. Evaluation is O(log V) field multiplications per vertex, so
  /// this is practical for small inputs only.
  bool use_aghp_family = false;
  int aghp_m = 12;
};

/// \brief The deterministic coloring xi : V -> [0, c) of §4.
class DeterministicColoring {
 public:
  using BitFn = std::function<std::uint32_t(graph::VertexId)>;

  DeterministicColoring() = default;
  DeterministicColoring(std::uint32_t c, std::vector<std::uint64_t> seeds);
  DeterministicColoring(std::uint32_t c, std::vector<BitFn> bits);

  /// Color of vertex v, assembled from the accepted round bit functions.
  std::uint32_t Color(graph::VertexId v) const;

  std::uint32_t num_colors() const { return c_; }
  const std::vector<std::uint64_t>& round_seeds() const { return seeds_; }
  void set_round_seeds(std::vector<std::uint64_t> seeds) {
    seeds_ = std::move(seeds);
  }

  /// Bit function of round r applied to vertex v (for diagnostics/tests).
  std::uint32_t RoundBit(std::size_t r, graph::VertexId v) const;

  /// Final potential value (== X_xi at the last level), for diagnostics.
  double final_potential() const { return final_potential_; }
  void set_final_potential(double p) { final_potential_ = p; }

  /// Number of candidate evaluations performed across all rounds.
  std::uint64_t candidates_tried() const { return candidates_tried_; }
  void set_candidates_tried(std::uint64_t n) { candidates_tried_ = n; }

 private:
  std::uint32_t c_ = 1;
  std::vector<std::uint64_t> seeds_;
  std::vector<BitFn> bits_;
  double final_potential_ = 0;
  std::uint64_t candidates_tried_ = 0;
};

/// Runs the greedy bit-fixing over `edges` (lex-sorted, low-degree part of
/// the graph) for c colors (power of two). O(E log(E/M) / B)-ish I/Os plus
/// one sort per round, as in the paper's Theorem 2 proof.
DeterministicColoring BuildDeterministicColoring(em::QuerySession& ctx,
                                                 em::Array<graph::Edge> edges,
                                                 std::uint32_t c,
                                                 const DerandOptions& opts = {});

}  // namespace trienum::core

#endif  // TRIENUM_CORE_DERANDOMIZE_H_
