// Registry of every triangle-enumeration algorithm in the library, used by
// the test matrix, the benches and the examples to sweep uniformly.
#ifndef TRIENUM_CORE_ALGORITHMS_H_
#define TRIENUM_CORE_ALGORITHMS_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/sink.h"
#include "graph/normalize.h"

namespace trienum::core {

struct AlgorithmInfo {
  std::string name;
  std::string description;
  /// True if the algorithm reads M/B (cache-aware); false for oblivious.
  bool cache_aware = true;
  /// True if the algorithm uses randomization (seeded from the context).
  bool randomized = false;
  std::function<void(em::QuerySession&, const graph::EmGraph&, TriangleSink&)> run;
};

/// All algorithms: the paper's three plus every baseline it cites.
const std::vector<AlgorithmInfo>& AllAlgorithms();

/// Lookup by name; nullptr if absent. Names: "ps-cache-aware",
/// "ps-cache-oblivious", "ps-deterministic", "mgt", "dementiev",
/// "edge-iterator", "chu-cheng", "bnl".
/// (tests/test_registry_names.cc asserts this list stays in sync with
/// AllAlgorithms(); update both together.)
const AlgorithmInfo* FindAlgorithm(std::string_view name);

}  // namespace trienum::core

#endif  // TRIENUM_CORE_ALGORITHMS_H_
