// Color-class statistics: the random variable X_xi of the paper's equation
// (1), split into adjacent / non-adjacent edge-pair contributions as in §4.
//
//   X_xi = sum over color classes (tau1,tau2) of C(|E_{tau1,tau2}|, 2)
//
// Lemma 3 bounds E[X_xi] <= E*M for the 4-wise random coloring with
// c = sqrt(E/M) colors; §4's greedy coloring guarantees X_xi < e*E*M
// deterministically. Benches (EXP-L3) and tests measure both here.
#ifndef TRIENUM_CORE_COLORING_H_
#define TRIENUM_CORE_COLORING_H_

#include <cstdint>
#include <functional>

#include "em/array.h"
#include "graph/types.h"

namespace trienum::core {

/// Vertex coloring abstraction: color in [0, num_colors).
using ColorFn = std::function<std::uint32_t(graph::VertexId)>;

struct ColoringStats {
  double x_total = 0;    ///< X_xi: same-class edge pairs
  double x_adj = 0;      ///< ... that share a vertex
  double x_nonadj = 0;   ///< ... that are vertex-disjoint
  std::uint64_t nonempty_classes = 0;
  std::uint64_t max_class_size = 0;
};

/// Computes X_xi and its adjacent/non-adjacent split for `edges` under
/// `color` with c colors. O(sort(E)) I/Os.
ColoringStats ComputeColoringStats(em::QuerySession& ctx, em::Array<graph::Edge> edges,
                                   const ColorFn& color, std::uint32_t c);

/// Lemma 3's bound E*M on E[X_xi] (what the random coloring must meet in
/// expectation) — for benches/tests.
double Lemma3Bound(std::size_t num_edges, std::size_t memory_words);

/// §4's deterministic bound e*E*M on X_xi for the greedy coloring.
double DerandomizedBound(std::size_t num_edges, std::size_t memory_words);

}  // namespace trienum::core

#endif  // TRIENUM_CORE_COLORING_H_
