// Triangle emission interface.
//
// Following the paper's problem definition, algorithms do not *list*
// triangles to external memory: for each triangle they make exactly one call
// to emit(v1, v2, v3) (with v1 < v2 < v3) at a moment when all three edges
// are present in internal memory. A sink decides what to do with the emission
// (count it, checksum it, collect it, forward it to an application pipeline)
// — this is the "pipelining" that makes enumeration cheaper than listing.
#ifndef TRIENUM_CORE_SINK_H_
#define TRIENUM_CORE_SINK_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/types.h"

namespace trienum::core {

/// \brief Receiver of triangle emissions.
class TriangleSink {
 public:
  virtual ~TriangleSink() = default;

  /// Called exactly once per triangle, with a < b < c.
  virtual void Emit(graph::VertexId a, graph::VertexId b, graph::VertexId c) = 0;
};

/// Counts emissions.
class CountingSink : public TriangleSink {
 public:
  void Emit(graph::VertexId, graph::VertexId, graph::VertexId) override {
    ++count_;
  }
  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

/// Order-invariant checksum + count; cheap equality evidence on large runs.
class ChecksumSink : public TriangleSink {
 public:
  void Emit(graph::VertexId a, graph::VertexId b, graph::VertexId c) override;

  std::uint64_t count() const { return count_; }
  std::uint64_t checksum() const;

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;    // commutative sum of mixed keys
  std::uint64_t xored_ = 0;  // commutative xor of mixed keys
};

/// Stores all triangles (tests / small inputs / applications).
class CollectingSink : public TriangleSink {
 public:
  void Emit(graph::VertexId a, graph::VertexId b, graph::VertexId c) override {
    triangles_.push_back(graph::Triangle{a, b, c});
  }
  const std::vector<graph::Triangle>& triangles() const { return triangles_; }
  std::vector<graph::Triangle>& mutable_triangles() { return triangles_; }

 private:
  std::vector<graph::Triangle> triangles_;
};

/// Forwards to a callable (application pipelines, e.g. the 5NF join).
class CallbackSink : public TriangleSink {
 public:
  using Fn = std::function<void(graph::VertexId, graph::VertexId, graph::VertexId)>;
  explicit CallbackSink(Fn fn) : fn_(std::move(fn)) {}
  void Emit(graph::VertexId a, graph::VertexId b, graph::VertexId c) override {
    fn_(a, b, c);
  }

 private:
  Fn fn_;
};

/// Duplicates every emission to two sinks.
class TeeSink : public TriangleSink {
 public:
  TeeSink(TriangleSink* first, TriangleSink* second) : a_(first), b_(second) {}
  void Emit(graph::VertexId a, graph::VertexId b, graph::VertexId c) override {
    a_->Emit(a, b, c);
    b_->Emit(a, b, c);
  }

 private:
  TriangleSink* a_;
  TriangleSink* b_;
};

}  // namespace trienum::core

#endif  // TRIENUM_CORE_SINK_H_
