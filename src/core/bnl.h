// Pipelined block-nested-loop ternary join, the naive database baseline of
// §1.1: "it is possible to use two block-nested loop joins (in a pipelined
// fashion) to solve the problem incurring O(E^3/(M^2 B)) I/Os."
//
// Chunks of alpha*M edges (v1, v2) are held resident; one scan of E joins
// them with edges (v2, v3); the resulting partial paths are buffered (never
// materialized to disk — pipelining) and verified against the third relation
// with batched probe scans of E.
#ifndef TRIENUM_CORE_BNL_H_
#define TRIENUM_CORE_BNL_H_

#include "core/sink.h"
#include "graph/normalize.h"

namespace trienum::core {

struct BnlOptions {
  double chunk_fraction = 1.0 / 8.0;      ///< resident edge chunk, alpha*M
  double candidate_fraction = 1.0 / 8.0;  ///< in-memory path buffer size
};

void EnumerateBnl(em::QuerySession& ctx, const graph::EmGraph& g, TriangleSink& sink,
                  const BnlOptions& opts = {});

/// Worst-case prediction O(E^3/(M^2 B)) with implementation constants.
double BnlIoBound(std::size_t num_edges, std::size_t m, std::size_t b,
                  const BnlOptions& opts = {});

}  // namespace trienum::core

#endif  // TRIENUM_CORE_BNL_H_
