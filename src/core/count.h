// Triangle counting on top of enumeration.
//
// §1.2 notes that the paper's algorithms (unlike "weak" enumerators) can
// compute exact triangle counts; and §1.1 points to the rich literature on
// *approximate* counting [17]. This module provides both: exact counting
// through any registered enumerator, and a DOULION-style sampled estimator
// (keep each edge with probability p, count on the sparsified graph, scale
// by 1/p^3) whose I/O cost drops superlinearly because the enumeration bound
// is E^{3/2}.
#ifndef TRIENUM_CORE_COUNT_H_
#define TRIENUM_CORE_COUNT_H_

#include <cstdint>
#include <string_view>

#include "common/status.h"
#include "graph/normalize.h"

namespace trienum::core {

/// Exact triangle count via the named enumeration algorithm.
Result<std::uint64_t> CountTriangles(em::QuerySession& ctx, const graph::EmGraph& g,
                                     std::string_view algorithm);

struct SampledCountResult {
  double estimate = 0;             ///< t_hat = triangles(G_p) / p^3
  std::uint64_t sampled_triangles = 0;
  std::size_t sampled_edges = 0;
  em::IoStats io;                  ///< I/O of sparsify + enumerate
};

/// DOULION-style estimator: sparsify by 4-wise-hash edge sampling at rate
/// `p` (deterministic in `seed`), enumerate the sample with the named
/// algorithm, scale by 1/p^3. Unbiased over the seed choice.
Result<SampledCountResult> EstimateTriangles(em::QuerySession& ctx,
                                             const graph::EmGraph& g, double p,
                                             std::string_view algorithm,
                                             std::uint64_t seed);

}  // namespace trienum::core

#endif  // TRIENUM_CORE_COUNT_H_
