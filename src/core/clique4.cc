#include "core/clique4.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/rng.h"
#include "core/cache_aware.h"
#include "core/sink.h"
#include "core/vertex_enum.h"
#include "extsort/ext_merge_sort.h"
#include "extsort/scan_ops.h"
#include "graph/host_graph.h"
#include "hashing/kwise.h"
#include "par/thread_pool.h"
#include "simd/flat_set.h"

namespace trienum::core {
namespace {

using graph::Edge;
using graph::VertexId;

std::uint64_t PackEdge(VertexId a, VertexId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// Emits the sorted 4-tuple {x} union {a < b < c}.
void EmitWith(CliqueSink& sink, VertexId x, VertexId a, VertexId b, VertexId c) {
  if (x < a) {
    sink.Emit4(x, a, b, c);
  } else if (x < b) {
    sink.Emit4(a, x, b, c);
  } else if (x < c) {
    sink.Emit4(a, b, x, c);
  } else {
    sink.Emit4(a, b, c, x);
  }
}

/// One color-4-tuple subproblem: six device slices, one per vertex-pair
/// slot. Oversized subproblems are split with a fresh 4-wise bit (the §3
/// refinement) until they fit in memory.
class QuadRecursor {
 public:
  QuadRecursor(em::QuerySession& ctx, CliqueSink& sink, std::size_t capacity_items,
               SplitMix64* rng)
      : ctx_(ctx), sink_(sink), capacity_(capacity_items), rng_(rng) {}

  void Solve(std::array<em::Array<Edge>, 6> slots, int depth) {
    std::size_t total = 0;
    for (const auto& s : slots) total += s.size();
    // A 4-clique needs one edge per slot.
    for (const auto& s : slots) {
      if (s.empty()) return;
    }
    if (total <= capacity_) {
      // Internal-memory layout: host copies of the two pair-generating
      // slots plus one membership hash over the union (~3 words/edge).
      em::ScratchLease lease = ctx_.LeaseScratch(total * 3);
      std::vector<Edge> b12(slots[0].size());
      slots[0].ReadTo(0, slots[0].size(), b12.data());
      std::vector<Edge> b34(slots[5].size());
      slots[5].ReadTo(0, slots[5].size(), b34.data());
      // Membership over all six slots: a flat open-addressed set (packed
      // edges are never 0, the empty sentinel), probed four-at-a-time by
      // the join below. ContainsAll4's batched variant overlaps the four
      // (usually cache-missing) slot loads; the result — and therefore the
      // join's emissions — is identical under every kernel policy.
      simd::FlatU64Set has;
      has.Reset(total);
      std::vector<Edge> tmp;
      for (int i = 0; i < 6; ++i) {
        tmp.resize(slots[i].size());
        slots[i].ReadTo(0, slots[i].size(), tmp.data());
        for (const Edge& e : tmp) has.Insert(PackEdge(e.u, e.v));
      }
      // The pair join is pure host work on the staged copies — everything
      // below runs after the slots' charged reads and emits straight to the
      // sink, so it fans out over the par pool: contiguous b12 row blocks
      // per worker, per-worker emit buffers flushed in partition order.
      // Emission order and the work counter are identical to the fused
      // serial loop (kept below for the default threads=1).
      ctx_.AddWork(b12.size() * b34.size());
      auto match = [&](const Edge& e12, const Edge& e34) {
        return e12.v < e34.u &&  // enforce v2 < v3
               has.ContainsAll4(
                   PackEdge(e12.u, e34.u), PackEdge(e12.u, e34.v),
                   PackEdge(e12.v, e34.u), PackEdge(e12.v, e34.v));
      };
      const std::size_t parts = par::PartsFor(
          b12.size() * b34.size(), par::Threads(), kJoinGrainPairs);
      if (parts <= 1) {
        for (const Edge& e12 : b12) {
          for (const Edge& e34 : b34) {
            if (match(e12, e34)) sink_.Emit4(e12.u, e12.v, e34.u, e34.v);
          }
        }
        return;
      }
      std::vector<std::vector<std::array<VertexId, 4>>> bufs(parts);
      par::ParallelFor(parts, 1, [&](std::size_t k0, std::size_t k1) {
        for (std::size_t k = k0; k < k1; ++k) {
          const par::Range rows = par::PartRange(b12.size(), parts, k);
          for (std::size_t i = rows.lo; i < rows.hi; ++i) {
            for (const Edge& e34 : b34) {
              if (match(b12[i], e34)) {
                bufs[k].push_back({b12[i].u, b12[i].v, e34.u, e34.v});
              }
            }
          }
        }
      });
      for (const auto& buf : bufs) {
        for (const auto& q : buf) sink_.Emit4(q[0], q[1], q[2], q[3]);
      }
      return;
    }
    TRIENUM_CHECK_MSG(depth < 64, "color refinement failed to shrink subproblem");

    // Refine: one fresh 4-wise bit; each of the 16 sign patterns of the four
    // positions is a child; slot (i, j) edges route on (bit(u), bit(v)).
    hashing::FourWiseHash bh(rng_->Next());
    static constexpr int kSlotPos[6][2] = {{0, 1}, {0, 2}, {0, 3},
                                           {1, 2}, {1, 3}, {2, 3}};
    for (int pattern = 0; pattern < 16; ++pattern) {
      em::DeviceRegion region = ctx_.Region();
      std::array<em::Array<Edge>, 6> child;
      bool viable = true;
      for (int s = 0; s < 6 && viable; ++s) {
        std::uint32_t want_u = (pattern >> kSlotPos[s][0]) & 1;
        std::uint32_t want_v = (pattern >> kSlotPos[s][1]) & 1;
        em::Array<Edge> out = ctx_.Alloc<Edge>(slots[s].size());
        em::Writer<Edge> w(out);
        em::Scanner<Edge> in(slots[s]);
        // The refine scan stays fused (read, hash, push per record): its
        // reads interleave with the child Writer's flushes, and that
        // interleaving is part of the pinned LRU charge sequence. The
        // parallel window of this algorithm is the in-memory join above —
        // charge-free between its staging reads and its emissions.
        while (in.HasNext()) {
          Edge e = in.Next();
          ctx_.AddWork(1);
          const std::uint32_t pb = bh.PairBits(e.u, e.v);
          if ((pb & 1u) == want_u && (pb >> 1) == want_v) w.Push(e);
        }
        if (w.count() == 0) viable = false;
        child[s] = w.Written();
      }
      if (viable) Solve(child, depth + 1);
    }
  }

  /// Candidate pairs per pool partition below which the in-memory join
  /// stays serial (a hash-set probe is tens of nanoseconds; a partition
  /// must amortize the fork/join handshake).
  static constexpr std::size_t kJoinGrainPairs = std::size_t{1} << 12;

 private:
  em::QuerySession& ctx_;
  CliqueSink& sink_;
  std::size_t capacity_;
  SplitMix64* rng_;
};

}  // namespace

void EnumerateFourCliques(em::QuerySession& ctx, const graph::EmGraph& g,
                          CliqueSink& sink, const Clique4Options& opts) {
  const std::size_t m0 = g.num_edges();
  if (m0 < 6) return;
  auto region = ctx.Region();
  SplitMix64 rng(opts.seed != 0 ? opts.seed : ctx.seed() ^ 0x4C14);

  em::Array<Edge> work = ctx.Alloc<Edge>(m0);
  extsort::Copy(g.edges, work);
  std::size_t wlen = m0;

  // ---- Step 1: 4-cliques through high-degree vertices -----------------------
  // For each x with deg > sqrt(E*M) (highest rank first): materialize E'_x,
  // the edges with both endpoints adjacent to x; its *triangles* are x's
  // 4-cliques. E'_x is renormalized into its own little EmGraph and handed
  // to the §2 triangle algorithm; emissions are mapped back.
  const double threshold =
      std::sqrt(static_cast<double>(m0) * static_cast<double>(ctx.memory_words()));
  VertexId h0 = g.num_vertices;
  for (VertexId i = 0; i < g.num_vertices; ++i) {
    if (static_cast<double>(g.degrees.Get(i)) > threshold) {
      h0 = i;
      break;
    }
  }
  for (VertexId x = g.num_vertices; x-- > h0;) {
    em::Array<Edge> cur = work.Slice(0, wlen);
    em::DeviceRegion sub_region = ctx.Region();
    em::Array<Edge> gamma_edges = ctx.Alloc<Edge>(wlen);
    em::Writer<Edge> gw(gamma_edges);
    EnumerateTrianglesContaining<Edge>(
        ctx, cur, x, extsort::AwareSorter{},
        [&](VertexId u, VertexId w, std::uint32_t, std::uint32_t,
            std::uint32_t) { gw.Push(Edge{u, w}); });
    if (gw.count() >= 3) {
      std::vector<VertexId> back;
      graph::EmGraph sub = graph::NormalizeEdges(ctx, gw.Written(), &back);
      CallbackSink tri_sink([&](VertexId a, VertexId b, VertexId c) {
        VertexId oa = back[a], ob = back[b], oc = back[c];
        // Renormalization may permute; restore id order before emitting.
        VertexId lo = std::min({oa, ob, oc});
        VertexId hi = std::max({oa, ob, oc});
        VertexId mid = oa ^ ob ^ oc ^ lo ^ hi;
        EmitWith(sink, x, lo, mid, hi);
      });
      EnumerateCacheAware(ctx, sub, tri_sink);
    }
    wlen = extsort::Filter(cur, work, [x](const Edge& e) {
      return e.u != x && e.v != x;
    });
  }
  if (wlen < 6) return;
  em::Array<Edge> low = work.Slice(0, wlen);

  // ---- Step 2: coloring and bucketing (as in §2) -----------------------------
  std::uint32_t c = 1;
  while (static_cast<std::uint64_t>(c) * c * ctx.memory_words() < wlen) c <<= 1;
  hashing::FourWiseHash color_hash(rng.Next());
  auto color = [&](VertexId v) { return color_hash.Color(v, c); };

  em::Array<graph::ColoredEdge> colored = ctx.Alloc<graph::ColoredEdge>(wlen);
  for (std::size_t i = 0; i < wlen; ++i) {
    Edge e = low.Get(i);
    colored.Set(i, graph::ColoredEdge{e.u, e.v, color(e.u), color(e.v)});
  }
  extsort::ExternalMergeSort(ctx, colored, graph::ColorClassLess{});
  const std::size_t num_keys = static_cast<std::size_t>(c) * c;
  em::Array<std::uint64_t> offsets = ctx.Alloc<std::uint64_t>(num_keys + 1);
  em::Array<Edge> buckets = ctx.Alloc<Edge>(wlen);
  for (std::size_t k = 0; k <= num_keys; ++k) offsets.Set(k, 0);
  for (std::size_t i = 0; i < wlen; ++i) {
    graph::ColoredEdge e = colored.Get(i);
    std::size_t key = static_cast<std::size_t>(e.cu) * c + e.cv;
    offsets.Set(key + 1, offsets.Get(key + 1) + 1);
    buckets.Set(i, Edge{e.u, e.v});
  }
  {
    std::uint64_t run = 0;
    for (std::size_t k = 0; k <= num_keys; ++k) {
      run += offsets.Get(k);
      offsets.Set(k, run);
    }
  }
  auto bucket = [&](std::uint32_t a, std::uint32_t b) {
    std::size_t key = static_cast<std::size_t>(a) * c + b;
    std::size_t lo = offsets.Get(key);
    std::size_t hi = offsets.Get(key + 1);
    return buckets.Slice(lo, hi - lo);
  };

  // ---- Step 3: all ordered color 4-tuples ------------------------------------
  std::size_t capacity = std::max<std::size_t>(
      16, static_cast<std::size_t>(static_cast<double>(ctx.memory_words()) *
                                   opts.capacity_fraction) -
              16);
  QuadRecursor recursor(ctx, sink, capacity, &rng);
  for (std::uint32_t t1 = 0; t1 < c; ++t1) {
    for (std::uint32_t t2 = 0; t2 < c; ++t2) {
      if (bucket(t1, t2).empty()) continue;
      for (std::uint32_t t3 = 0; t3 < c; ++t3) {
        if (bucket(t2, t3).empty() || bucket(t1, t3).empty()) continue;
        for (std::uint32_t t4 = 0; t4 < c; ++t4) {
          std::array<em::Array<Edge>, 6> slots = {
              bucket(t1, t2), bucket(t1, t3), bucket(t1, t4),
              bucket(t2, t3), bucket(t2, t4), bucket(t3, t4)};
          recursor.Solve(slots, 0);
        }
      }
    }
  }
}

std::uint64_t CountFourCliquesHost(const std::vector<Edge>& edges) {
  graph::HostGraph g(edges);
  std::uint64_t count = 0;
  // For each triangle (u, v, w): count common forward neighbours beyond w.
  for (const Edge& e : g.CanonicalEdges()) {
    const auto& fu = g.Forward(e.u);
    const auto& fv = g.Forward(e.v);
    std::size_t i = 0, j = 0;
    while (i < fu.size() && j < fv.size()) {
      if (fu[i] < fv[j]) {
        ++i;
      } else if (fv[j] < fu[i]) {
        ++j;
      } else {
        VertexId w = fu[i];
        // (u, v, w) is a triangle; extend with x > w adjacent to all three.
        const auto& fw = g.Forward(w);
        for (VertexId x : fw) {
          if (x > w && g.HasEdge(e.u, x) && g.HasEdge(e.v, x)) ++count;
        }
        ++i;
        ++j;
      }
    }
  }
  return count;
}

double Clique4IoBound(std::size_t num_edges, std::size_t m, std::size_t b) {
  double e = static_cast<double>(num_edges);
  return e * e / (static_cast<double>(m) * static_cast<double>(b));
}

}  // namespace trienum::core
