#include "core/algorithms.h"

#include "core/bnl.h"
#include "core/cache_aware.h"
#include "core/cache_oblivious.h"
#include "core/chu_cheng.h"
#include "core/dementiev.h"
#include "core/edge_iterator.h"
#include "core/mgt.h"

namespace trienum::core {

const std::vector<AlgorithmInfo>& AllAlgorithms() {
  static const std::vector<AlgorithmInfo>* algorithms = [] {
    auto* v = new std::vector<AlgorithmInfo>();
    v->push_back(AlgorithmInfo{
        "ps-cache-aware",
        "Pagh-Silvestri Section 2: randomized color coding, "
        "O(E^1.5/(sqrt(M)B)) expected I/Os",
        /*cache_aware=*/true, /*randomized=*/true,
        [](em::QuerySession& ctx, const graph::EmGraph& g, TriangleSink& sink) {
          EnumerateCacheAware(ctx, g, sink);
        }});
    v->push_back(AlgorithmInfo{
        "ps-cache-oblivious",
        "Pagh-Silvestri Section 3: recursive color refinement, "
        "cache-oblivious, O(E^1.5/(sqrt(M)B)) expected I/Os",
        /*cache_aware=*/false, /*randomized=*/true,
        [](em::QuerySession& ctx, const graph::EmGraph& g, TriangleSink& sink) {
          EnumerateCacheOblivious(ctx, g, sink);
        }});
    v->push_back(AlgorithmInfo{
        "ps-deterministic",
        "Pagh-Silvestri Section 4: greedy derandomized coloring, "
        "deterministic O(E^1.5/(sqrt(M)B)) I/Os",
        /*cache_aware=*/true, /*randomized=*/false,
        [](em::QuerySession& ctx, const graph::EmGraph& g, TriangleSink& sink) {
          CacheAwareOptions opts;
          opts.deterministic_coloring = true;
          EnumerateCacheAware(ctx, g, sink, opts);
        }});
    v->push_back(AlgorithmInfo{
        "mgt",
        "Hu-Tao-Chung (SIGMOD'13): O(E^2/(MB)) I/Os",
        /*cache_aware=*/true, /*randomized=*/false,
        [](em::QuerySession& ctx, const graph::EmGraph& g, TriangleSink& sink) {
          EnumerateMgt(ctx, g, sink);
        }});
    v->push_back(AlgorithmInfo{
        "dementiev",
        "Dementiev (2006): wedge join, O(sort(E^1.5)) I/Os",
        /*cache_aware=*/true, /*randomized=*/false,
        [](em::QuerySession& ctx, const graph::EmGraph& g, TriangleSink& sink) {
          EnumerateDementiev(ctx, g, sink);
        }});
    v->push_back(AlgorithmInfo{
        "edge-iterator",
        "Menegola-style edge iterator: O(E + E^1.5/B) I/Os",
        /*cache_aware=*/false, /*randomized=*/false,
        [](em::QuerySession& ctx, const graph::EmGraph& g, TriangleSink& sink) {
          EnumerateEdgeIterator(ctx, g, sink);
        }});
    v->push_back(AlgorithmInfo{
        "chu-cheng",
        "Chu-Cheng (TKDD'12): vertex partitioning, O(E^2/(MB) + t/B) "
        "for partition-friendly graphs",
        /*cache_aware=*/true, /*randomized=*/false,
        [](em::QuerySession& ctx, const graph::EmGraph& g, TriangleSink& sink) {
          EnumerateChuCheng(ctx, g, sink);
        }});
    v->push_back(AlgorithmInfo{
        "bnl",
        "Pipelined block-nested-loop ternary join: O(E^3/(M^2 B)) I/Os",
        /*cache_aware=*/true, /*randomized=*/false,
        [](em::QuerySession& ctx, const graph::EmGraph& g, TriangleSink& sink) {
          EnumerateBnl(ctx, g, sink);
        }});
    return v;
  }();
  return *algorithms;
}

const AlgorithmInfo* FindAlgorithm(std::string_view name) {
  for (const AlgorithmInfo& a : AllAlgorithms()) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

}  // namespace trienum::core
