#include "core/chu_cheng.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/vertex_enum.h"
#include "extsort/scan_ops.h"
#include "extsort/sorter.h"
#include "obs/trace.h"

namespace trienum::core {
namespace {

using graph::Edge;
using graph::VertexId;

std::uint64_t PackEdge(VertexId a, VertexId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

class PartitionRunner {
 public:
  PartitionRunner(em::QuerySession& ctx, const graph::EmGraph& g, TriangleSink& sink,
                  std::size_t capacity_words)
      : ctx_(ctx), g_(g), sink_(sink), capacity_(capacity_words) {}

  /// Processes the vertex range [lo, hi): enumerates every triangle whose
  /// smallest vertex lies in the range.
  void ProcessRange(VertexId lo, VertexId hi) {
    if (lo >= hi) return;
    obs::Span span("cc.partition");
    span.AddArg("range_lo", lo);
    span.AddArg("range_hi", hi);
    if (TryInMemory(lo, hi)) return;
    if (hi - lo > 1) {
      VertexId mid = lo + (hi - lo) / 2;
      ProcessRange(lo, mid);
      ProcessRange(mid, hi);
      return;
    }
    // A single vertex whose extended subgraph overflows memory: Lemma 1
    // always works; keep only triangles where x is the smallest vertex (the
    // part-assignment rule), which is automatic since Gamma contains only
    // larger... not so after degree ranking — filter explicitly. The sorts
    // inside Lemma 1 ride on the keyed engine via the AwareSorter policy.
    VertexId x = lo;
    EnumerateTrianglesContaining<Edge>(
        ctx_, g_.edges, x, extsort::AwareSorter{},
        [&](VertexId u, VertexId w, std::uint32_t, std::uint32_t,
            std::uint32_t) {
          graph::Triangle t = OrderTriple(x, u, w);
          if (t.a == x) sink_.Emit(t.a, t.b, t.c);
        });
  }

 private:
  /// Attempts the in-memory path; returns false if the extended subgraph
  /// would not fit.
  bool TryInMemory(VertexId lo, VertexId hi) {
    // Cone edges: every (u, v) with u in [lo, hi) — a contiguous run of the
    // lex-sorted edge list, located by scanning forward from a remembered
    // cursor (parts are processed left to right).
    const std::size_t m = g_.num_edges();
    std::size_t begin = cursor_;
    while (begin < m && g_.edges.Get(begin).u < lo) ++begin;
    std::size_t end = begin;

    std::vector<Edge> cone;
    std::unordered_set<VertexId> gamma;
    std::size_t budget_items = capacity_ / 4;  // cone + B_i + hash + adj
    while (end < m) {
      Edge e = g_.edges.Get(end);
      if (e.u >= hi) break;
      if (cone.size() + 1 > budget_items) return false;  // part too big
      cone.push_back(e);
      gamma.insert(e.v);
      ++end;
    }
    if (cone.empty()) {
      cursor_ = end;
      return true;  // no triangles with smallest vertex here
    }

    // Closing edges: both endpoints in Gamma+(V_i). One scan of E; bail out
    // if the extended subgraph exceeds the budget (caller will split).
    em::ScratchLease lease = ctx_.LeaseScratch(capacity_);
    std::unordered_set<std::uint64_t> closing;
    closing.reserve(budget_items);
    for (std::size_t i = 0; i < m; ++i) {
      Edge e = g_.edges.Get(i);
      ctx_.AddWork(1);
      if (gamma.count(e.u) != 0 && gamma.count(e.v) != 0) {
        if (closing.size() + 1 > budget_items) return false;
        closing.insert(PackEdge(e.u, e.v));
      }
    }
    // In-memory listing: for each cone vertex u, check its neighbour pairs.
    std::size_t i = 0;
    while (i < cone.size()) {
      std::size_t j = i;
      while (j < cone.size() && cone[j].u == cone[i].u) ++j;
      for (std::size_t p = i; p < j; ++p) {
        for (std::size_t q = p + 1; q < j; ++q) {
          ctx_.AddWork(1);
          if (closing.count(PackEdge(cone[p].v, cone[q].v)) != 0) {
            sink_.Emit(cone[i].u, cone[p].v, cone[q].v);
          }
        }
      }
      i = j;
    }
    cursor_ = end;
    return true;
  }

  em::QuerySession& ctx_;
  const graph::EmGraph& g_;
  TriangleSink& sink_;
  std::size_t capacity_;
  std::size_t cursor_ = 0;  // edge-list position of the next unprocessed part
};

}  // namespace

void EnumerateChuCheng(em::QuerySession& ctx, const graph::EmGraph& g,
                       TriangleSink& sink, const ChuChengOptions& opts) {
  if (g.num_edges() < 3) return;
  const std::size_t capacity = std::max<std::size_t>(
      64, static_cast<std::size_t>(static_cast<double>(ctx.memory_words()) *
                                   opts.part_fraction));
  PartitionRunner runner(ctx, g, sink, capacity);

  // Greedy partition into consecutive ranges of incident-edge mass <= the
  // budget (degree array scan); ranges that still overflow their *extended*
  // subgraph are split inside ProcessRange.
  const std::size_t budget_items = capacity / 4;
  VertexId lo = 0;
  std::uint64_t mass = 0;
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    std::uint64_t d = g.degrees.Get(v);
    if (v > lo && mass + d > budget_items) {
      runner.ProcessRange(lo, v);
      lo = v;
      mass = 0;
    }
    mass += d;
  }
  runner.ProcessRange(lo, g.num_vertices);
}

}  // namespace trienum::core
