#include "core/reference.h"

#include <algorithm>

#include "graph/host_graph.h"

namespace trienum::core {
namespace {

// Intersects the two sorted forward lists, invoking fn(w) for every common
// forward neighbour of both endpoints.
template <typename Fn>
void IntersectForward(const std::vector<graph::VertexId>& a,
                      const std::vector<graph::VertexId>& b, Fn fn) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      fn(a[i]);
      ++i;
      ++j;
    }
  }
}

}  // namespace

std::uint64_t CountTrianglesHost(const std::vector<graph::Edge>& edges) {
  graph::HostGraph g(edges);
  std::uint64_t count = 0;
  for (const graph::Edge& e : g.CanonicalEdges()) {
    IntersectForward(g.Forward(e.u), g.Forward(e.v),
                     [&count](graph::VertexId) { ++count; });
  }
  return count;
}

std::vector<graph::Triangle> ListTrianglesHost(const std::vector<graph::Edge>& edges) {
  graph::HostGraph g(edges);
  std::vector<graph::Triangle> out;
  for (const graph::Edge& e : g.CanonicalEdges()) {
    IntersectForward(g.Forward(e.u), g.Forward(e.v), [&](graph::VertexId w) {
      out.push_back(graph::Triangle{e.u, e.v, w});
    });
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace trienum::core
