#include "core/cache_aware.h"

#include <cmath>
#include <vector>

#include "core/coloring.h"
#include "core/derandomize.h"
#include "core/pivot_enum.h"
#include "core/vertex_enum.h"
#include "extsort/ext_merge_sort.h"
#include "extsort/scan_ops.h"
#include "hashing/kwise.h"
#include "obs/trace.h"

namespace trienum::core {

void EnumerateCacheAware(em::QuerySession& ctx, const graph::EmGraph& g,
                         TriangleSink& sink, const CacheAwareOptions& opts) {
  using graph::ColoredEdge;
  using graph::Edge;
  using graph::VertexId;

  const std::size_t m0 = g.num_edges();
  if (m0 < 3) return;
  auto region = ctx.Region();

  // Working copy of the edge set; shrinks as high-degree vertices are pulled
  // out.
  em::Array<Edge> work = ctx.Alloc<Edge>(m0);
  extsort::Copy(g.edges, work);
  std::size_t wlen = m0;

  // ---- Step 1: triangles with a high-degree vertex (Lemma 1 each) ----------
  if (opts.high_degree_step) {
    obs::Span span("ca.high_degree");
    const double threshold = std::sqrt(static_cast<double>(m0) *
                                       static_cast<double>(ctx.memory_words()));
    // Ids are in non-decreasing degree order, so V_h is a suffix.
    VertexId h0 = g.num_vertices;
    for (VertexId i = 0; i < g.num_vertices; ++i) {
      if (static_cast<double>(g.degrees.Get(i)) > threshold) {
        h0 = i;
        break;
      }
    }
    for (VertexId x = g.num_vertices; x-- > h0;) {
      em::Array<Edge> cur = work.Slice(0, wlen);
      EnumerateTrianglesContaining<Edge>(
          ctx, cur, x, extsort::AwareSorter{},
          [&](VertexId u, VertexId w, std::uint32_t, std::uint32_t,
              std::uint32_t) {
            graph::Triangle t = OrderTriple(x, u, w);
            sink.Emit(t.a, t.b, t.c);
          });
      wlen = extsort::Filter(cur, work, [x](const Edge& e) {
        return e.u != x && e.v != x;
      });
    }
  }
  if (wlen == 0) return;
  em::Array<Edge> low = work.Slice(0, wlen);

  // ---- Step 2: coloring and bucketing ---------------------------------------
  std::uint32_t c = 1;
  while (static_cast<std::uint64_t>(c) * c * ctx.memory_words() < wlen) c <<= 1;
  if (opts.force_colors != 0) c = opts.force_colors;

  ColorFn color;
  if (opts.deterministic_coloring) {
    DeterministicColoring det = BuildDeterministicColoring(ctx, low, c);
    color = [det](VertexId v) { return det.Color(v); };
  } else {
    std::uint64_t seed = opts.seed != 0 ? opts.seed : ctx.seed();
    hashing::FourWiseHash h(seed);
    std::uint32_t cc = c;
    color = [h, cc](VertexId v) { return h.Color(v, cc); };
  }

  // Colors attached once (stored with the edge, then stripped after the
  // bucket sort so step 3 streams one-word edges as the paper assumes).
  // The transform stays fused (read, color, push per record): its Scanner
  // reads interleave with Writer flushes, and that interleaving is part of
  // the pinned LRU charge sequence — batching reads ahead of the writes
  // would perturb IoStats under capacity pressure. Parallelism enters this
  // algorithm through charge-safe windows instead: run formation inside
  // the ExternalMergeSort below and the Lemma 2 cone probes of step 3
  // (see pivot_enum.h), both invariant in the thread count.
  const std::size_t num_keys = static_cast<std::size_t>(c) * c;
  em::Array<std::uint64_t> offsets;
  em::Array<Edge> buckets;
  {
    obs::Span span("ca.coloring");
    span.AddArg("colors", c);
    em::Array<ColoredEdge> colored = ctx.Alloc<ColoredEdge>(wlen);
    extsort::Transform(low, colored, [&](const Edge& e) {
      return ColoredEdge{e.u, e.v, color(e.u), color(e.v)};
    });
    extsort::ExternalMergeSort(ctx, colored, graph::ColorClassLess{});

    // Bucket offsets live on the device (c^2 + 1 words, built with one
    // counting scan and a prefix sum), so no internal-memory assumption
    // beyond the paper's is needed and their accesses are I/O-accounted.
    offsets = ctx.Alloc<std::uint64_t>(num_keys + 1);
    buckets = ctx.Alloc<Edge>(wlen);
    for (std::size_t k = 0; k <= num_keys; ++k) offsets.Set(k, 0);
    {
      em::Scanner<ColoredEdge> in(colored);
      em::Writer<Edge> out(buckets);
      while (in.HasNext()) {
        ColoredEdge e = in.Next();
        std::size_t key = static_cast<std::size_t>(e.cu) * c + e.cv;
        offsets.Set(key + 1, offsets.Get(key + 1) + 1);
        out.Push(Edge{e.u, e.v});
      }
      out.Flush();  // step 3 reads `buckets` below
    }
    {
      std::uint64_t run = 0;
      for (std::size_t k = 0; k <= num_keys; ++k) {
        run += offsets.Get(k);
        offsets.Set(k, run);
      }
    }
  }

  auto bucket = [&](std::uint32_t a, std::uint32_t b) {
    std::size_t key = static_cast<std::size_t>(a) * c + b;
    std::size_t lo = offsets.Get(key);
    std::size_t hi = offsets.Get(key + 1);
    return buckets.Slice(lo, hi - lo);
  };

  // ---- Step 3: Lemma 2 per color triple -------------------------------------
  obs::Span span("ca.color_triples");
  span.AddArg("colors", c);
  PivotEnumOptions popts;
  popts.chunk_fraction = opts.chunk_fraction;
  for (std::uint32_t t1 = 0; t1 < c; ++t1) {
    for (std::uint32_t t2 = 0; t2 < c; ++t2) {
      em::Array<Edge> cone_a = bucket(t1, t2);
      if (cone_a.empty()) continue;
      for (std::uint32_t t3 = 0; t3 < c; ++t3) {
        em::Array<Edge> pivot = bucket(t2, t3);
        if (pivot.empty()) continue;
        em::Array<Edge> cone_b = t2 == t3 ? cone_a : bucket(t1, t3);
        if (cone_b.empty()) continue;
        PivotEnumerate<Edge>(ctx, cone_a, cone_b, pivot, sink, popts);
      }
    }
  }
}

double PaghSilvestriIoBound(std::size_t num_edges, std::size_t m, std::size_t b) {
  double e = static_cast<double>(num_edges);
  return std::pow(e, 1.5) /
         (std::sqrt(static_cast<double>(m)) * static_cast<double>(b));
}

}  // namespace trienum::core
