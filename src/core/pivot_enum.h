// Lemma 2 (Hu, Tao, Chung): enumerate all triangles whose pivot edge lies in
// a designated edge set, in O(E/B + E'·E/(MB)) I/Os.
//
// The pivot set is consumed in chunks of alpha*M edges held in internal
// memory. For each chunk, one scan of the cone edge stream(s) — grouped by
// smaller endpoint v, which the §1.3 lex order provides for free — collects
// Gamma_v, the neighbours of v that appear in the resident chunk, and every
// resident pivot edge {u, w} with u, w in Gamma_v closes the triangle
// (v, u, w).
//
// The same engine serves three callers:
//   * the full Hu-Tao-Chung baseline (cone = pivot = E);
//   * step 3 of the paper's cache-aware algorithm, where the cone edges come
//     from color buckets (tau1,tau2) and (tau1,tau3) and the pivot from
//     (tau2,tau3) — which makes the paper's "ignore triangles whose cone
//     vertex is not colored tau1" a structural no-op;
//   * ablation benches sweeping the chunk fraction alpha.
#ifndef TRIENUM_CORE_PIVOT_ENUM_H_
#define TRIENUM_CORE_PIVOT_ENUM_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "core/sink.h"
#include "em/array.h"
#include "graph/types.h"

namespace trienum::core {
namespace internal {

/// Minimal open-addressed map VertexId -> u32 payload (linear probing,
/// power-of-two capacity). The pivot chunk's adjacency index is rebuilt and
/// probed millions of times per run; a flat table beats both
/// std::unordered_map (per-node mallocs, bucket chasing) and binary search
/// (log-n mispredicted branches) on this hot path. Host-side only: no effect
/// on I/O accounting.
class FlatVertexMap {
 public:
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;

  void Reset(std::size_t expected) {
    std::size_t cap = 16;
    while (cap < 2 * expected) cap <<= 1;
    keys_.assign(cap, 0);
    vals_.assign(cap, kEmpty);
    mask_ = static_cast<std::uint32_t>(cap - 1);
  }

  /// Inserts or overwrites.
  void Put(graph::VertexId key, std::uint32_t val) {
    std::uint32_t i = Hash(key);
    while (vals_[i] != kEmpty && keys_[i] != key) i = (i + 1) & mask_;
    keys_[i] = key;
    vals_[i] = val;
  }

  /// ORs `bits` into the payload for `key` (inserting it if absent) — lets
  /// one table carry several roles per vertex, so the cone-stream hot loop
  /// pays one probe instead of one per role.
  void Add(graph::VertexId key, std::uint32_t bits) {
    std::uint32_t i = Hash(key);
    while (vals_[i] != kEmpty && keys_[i] != key) i = (i + 1) & mask_;
    keys_[i] = key;
    vals_[i] = vals_[i] == kEmpty ? bits : (vals_[i] | bits);
  }

  /// Payload for `key`, or kEmpty.
  std::uint32_t Get(graph::VertexId key) const {
    std::uint32_t i = Hash(key);
    while (vals_[i] != kEmpty) {
      if (keys_[i] == key) return vals_[i];
      i = (i + 1) & mask_;
    }
    return kEmpty;
  }

 private:
  std::uint32_t Hash(graph::VertexId key) const {
    return (static_cast<std::uint32_t>(key) * 0x9E3779B1u) & mask_;
  }

  std::vector<graph::VertexId> keys_;
  std::vector<std::uint32_t> vals_;
  std::uint32_t mask_ = 0;
};

}  // namespace internal

struct PivotEnumOptions {
  /// Fraction alpha of internal memory used for the resident pivot chunk.
  double chunk_fraction = 1.0 / 8.0;
};

/// \brief Enumerates all triangles (v, u, w), v < u < w, with cone edges
/// {v,u} in `cone_a`, {v,w} in `cone_b` and pivot edge {u,w} in `pivot`.
///
/// Preconditions: all three arrays are lex-sorted with u < v per edge. Pass
/// the same array as `cone_a` and `cone_b` when they coincide (detected by
/// base address; the stream is then scanned once and feeds both roles).
template <typename EdgeT>
void PivotEnumerate(em::Context& ctx, em::Array<EdgeT> cone_a,
                    em::Array<EdgeT> cone_b, em::Array<EdgeT> pivot,
                    TriangleSink& sink, const PivotEnumOptions& opts = {}) {
  using Access = graph::EdgeAccess<EdgeT>;
  using graph::VertexId;
  if (pivot.empty() || cone_a.empty() || cone_b.empty()) return;

  const bool same_cone = cone_a.base() == cone_b.base();
  const std::size_t words_per = em::Array<EdgeT>::kWordsPer;
  std::size_t chunk_items = static_cast<std::size_t>(
      static_cast<double>(ctx.memory_words()) * opts.chunk_fraction /
      static_cast<double>(words_per));
  // The resident structures cost ~(words_per + 6) words per chunk record
  // (chunk + adjacency index + endpoint filter + per-v buffers), so cap the
  // chunk to keep the scratch lease within M even for aggressive alpha.
  chunk_items =
      std::min(chunk_items, ctx.memory_words() / (words_per + 6));
  chunk_items = std::max<std::size_t>(chunk_items, 1);

  for (std::size_t p0 = 0; p0 < pivot.size(); p0 += chunk_items) {
    const std::size_t p1 = std::min(pivot.size(), p0 + chunk_items);
    const std::size_t csize = p1 - p0;

    // Internal-memory working set for this chunk: the chunk itself, its
    // adjacency index, the endpoint filters, and the per-v buffers.
    em::ScratchLease lease = ctx.LeaseScratch(csize * (words_per + 6));

    std::vector<EdgeT> chunk(csize);
    pivot.ReadTo(p0, p1, chunk.data());
    // Every caller passes lex-sorted pivot edges (whole edge list or color
    // buckets cut from one), so the chunk is almost always already sorted —
    // verify in one sweep and skip the sort. The fallback stays std::sort:
    // edges are unique under LexLess, so stability is moot, and the
    // in-place sort keeps the chunk lease the honest account of this
    // chunk's internal-memory footprint.
    if (!std::is_sorted(chunk.begin(), chunk.end(), graph::LexLess{})) {
      std::sort(chunk.begin(), chunk.end(), graph::LexLess{});
    }
    ctx.AddWork(csize * 2);

    // Adjacency over the resident pivot edges, keyed by smaller endpoint:
    // the sorted chunk itself is the index. `ranges` lists each distinct u's
    // [first, last) run. One flat open-addressed table carries both roles a
    // vertex can play — payload bit 0 marks max-side membership, bits 1+
    // hold 1 + the `ranges` index of its u-side run — so the cone hot loop
    // answers both membership probes with a single lookup. (The packed
    // payload would alias the empty sentinel only at 2^30 resident ranges;
    // chunks are capped at M/(w+6) records, orders of magnitude below.)
    std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
    internal::FlatVertexMap roles;
    ranges.reserve(csize);
    roles.Reset(2 * csize);
    for (std::size_t i = 0; i < csize; ++i) {
      VertexId u = Access::U(chunk[i]);
      if (ranges.empty() ||
          Access::U(chunk[i - 1]) != u) {  // chunk sorted: runs are contiguous
        roles.Add(u, (static_cast<std::uint32_t>(ranges.size()) + 1) << 1);
        ranges.emplace_back(static_cast<std::uint32_t>(i),
                            static_cast<std::uint32_t>(i + 1));
      } else {
        ranges.back().second = static_cast<std::uint32_t>(i + 1);
      }
      roles.Add(Access::V(chunk[i]), 1u);
    }
    auto in_max_side = [&](VertexId v) {
      std::uint32_t r = roles.Get(v);
      return r != internal::FlatVertexMap::kEmpty && (r & 1u) != 0;
    };

    // One pass over the cone stream(s), grouped by cone vertex v.
    em::Scanner<EdgeT> sa(cone_a);
    em::Scanner<EdgeT> sb;
    if (!same_cone) sb = em::Scanner<EdgeT>(cone_b);
    // Gamma_v split by role: u-side neighbours carry their resolved ranges
    // index (no re-probe in the emit loop), w-side is membership only.
    std::vector<std::pair<VertexId, std::uint32_t>> g2;
    std::vector<VertexId> g3;

    while (sa.HasNext() || (!same_cone && sb.HasNext())) {
      VertexId v;
      if (!sa.HasNext()) {
        v = Access::U(sb.Peek());
      } else if (same_cone || !sb.HasNext()) {
        v = Access::U(sa.Peek());
      } else {
        v = std::min(Access::U(sa.Peek()), Access::U(sb.Peek()));
      }
      g2.clear();
      g3.clear();
      while (sa.HasNext() && Access::U(sa.Peek()) == v) {
        EdgeT e = sa.Next();
        VertexId nbr = Access::V(e);
        ctx.AddWork(1);
        // Single probe resolves both roles of nbr (u-side head, max-side
        // member) — this runs once per cone edge per chunk, the hottest
        // host loop of Lemma 2.
        const std::uint32_t r = roles.Get(nbr);
        if (r != internal::FlatVertexMap::kEmpty) {
          if ((r >> 1) != 0) g2.emplace_back(nbr, (r >> 1) - 1);
          if (same_cone && (r & 1u) != 0) g3.push_back(nbr);
        }
      }
      if (!same_cone) {
        while (sb.HasNext() && Access::U(sb.Peek()) == v) {
          EdgeT e = sb.Next();
          VertexId nbr = Access::V(e);
          ctx.AddWork(1);
          if (in_max_side(nbr)) g3.push_back(nbr);
        }
      }
      if (g2.empty() || g3.empty()) continue;

      // The lex-sort precondition makes neighbours within a group arrive
      // v-ascending, so g3 is already sorted for the binary searches below;
      // verify in one sweep (and repair) rather than trust the caller.
      if (!std::is_sorted(g3.begin(), g3.end())) {
        std::sort(g3.begin(), g3.end());
      }
      for (const auto& [u, ri] : g2) {
        const auto& range = ranges[ri];
        for (std::uint32_t i = range.first; i < range.second; ++i) {
          VertexId w = Access::V(chunk[i]);
          ctx.AddWork(1);
          if (std::binary_search(g3.begin(), g3.end(), w)) {
            sink.Emit(v, u, w);
          }
        }
      }
    }
  }
}

}  // namespace trienum::core

#endif  // TRIENUM_CORE_PIVOT_ENUM_H_
