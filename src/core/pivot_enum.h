// Lemma 2 (Hu, Tao, Chung): enumerate all triangles whose pivot edge lies in
// a designated edge set, in O(E/B + E'·E/(MB)) I/Os.
//
// The pivot set is consumed in chunks of alpha*M edges held in internal
// memory. For each chunk, one scan of the cone edge stream(s) — grouped by
// smaller endpoint v, which the §1.3 lex order provides for free — collects
// Gamma_v, the neighbours of v that appear in the resident chunk, and every
// resident pivot edge {u, w} with u, w in Gamma_v closes the triangle
// (v, u, w).
//
// The same engine serves three callers:
//   * the full Hu-Tao-Chung baseline (cone = pivot = E);
//   * step 3 of the paper's cache-aware algorithm, where the cone edges come
//     from color buckets (tau1,tau2) and (tau1,tau3) and the pivot from
//     (tau2,tau3) — which makes the paper's "ignore triangles whose cone
//     vertex is not colored tau1" a structural no-op;
//   * ablation benches sweeping the chunk fraction alpha.
#ifndef TRIENUM_CORE_PIVOT_ENUM_H_
#define TRIENUM_CORE_PIVOT_ENUM_H_

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/sink.h"
#include "em/array.h"
#include "graph/types.h"

namespace trienum::core {

struct PivotEnumOptions {
  /// Fraction alpha of internal memory used for the resident pivot chunk.
  double chunk_fraction = 1.0 / 8.0;
};

/// \brief Enumerates all triangles (v, u, w), v < u < w, with cone edges
/// {v,u} in `cone_a`, {v,w} in `cone_b` and pivot edge {u,w} in `pivot`.
///
/// Preconditions: all three arrays are lex-sorted with u < v per edge. Pass
/// the same array as `cone_a` and `cone_b` when they coincide (detected by
/// base address; the stream is then scanned once and feeds both roles).
template <typename EdgeT>
void PivotEnumerate(em::Context& ctx, em::Array<EdgeT> cone_a,
                    em::Array<EdgeT> cone_b, em::Array<EdgeT> pivot,
                    TriangleSink& sink, const PivotEnumOptions& opts = {}) {
  using Access = graph::EdgeAccess<EdgeT>;
  using graph::VertexId;
  if (pivot.empty() || cone_a.empty() || cone_b.empty()) return;

  const bool same_cone = cone_a.base() == cone_b.base();
  const std::size_t words_per = em::Array<EdgeT>::kWordsPer;
  std::size_t chunk_items = static_cast<std::size_t>(
      static_cast<double>(ctx.memory_words()) * opts.chunk_fraction /
      static_cast<double>(words_per));
  chunk_items = std::max<std::size_t>(chunk_items, 1);

  for (std::size_t p0 = 0; p0 < pivot.size(); p0 += chunk_items) {
    const std::size_t p1 = std::min(pivot.size(), p0 + chunk_items);
    const std::size_t csize = p1 - p0;

    // Internal-memory working set for this chunk: the chunk itself, its
    // adjacency index, the endpoint filters, and the per-v buffers.
    em::ScratchLease lease = ctx.LeaseScratch(csize * (words_per + 6));

    std::vector<EdgeT> chunk(csize);
    pivot.ReadTo(p0, p1, chunk.data());
    std::sort(chunk.begin(), chunk.end(), graph::LexLess{});
    ctx.AddWork(csize * 2);

    // Adjacency over the resident pivot edges, keyed by smaller endpoint.
    std::unordered_map<VertexId, std::pair<std::uint32_t, std::uint32_t>> adj;
    std::unordered_set<VertexId> pivot_max_side;
    adj.reserve(csize);
    pivot_max_side.reserve(csize);
    for (std::size_t i = 0; i < csize; ++i) {
      VertexId u = Access::U(chunk[i]);
      auto [it, fresh] = adj.try_emplace(u, i, i + 1);
      if (!fresh) it->second.second = static_cast<std::uint32_t>(i + 1);
      pivot_max_side.insert(Access::V(chunk[i]));
    }

    // One pass over the cone stream(s), grouped by cone vertex v.
    em::Scanner<EdgeT> sa(cone_a);
    em::Scanner<EdgeT> sb;
    if (!same_cone) sb = em::Scanner<EdgeT>(cone_b);
    std::vector<VertexId> g2, g3;  // Gamma_v split by role (u-side / w-side)
    std::unordered_set<VertexId> g3_set;

    while (sa.HasNext() || (!same_cone && sb.HasNext())) {
      VertexId v;
      if (!sa.HasNext()) {
        v = Access::U(sb.Peek());
      } else if (same_cone || !sb.HasNext()) {
        v = Access::U(sa.Peek());
      } else {
        v = std::min(Access::U(sa.Peek()), Access::U(sb.Peek()));
      }
      g2.clear();
      g3.clear();
      while (sa.HasNext() && Access::U(sa.Peek()) == v) {
        EdgeT e = sa.Next();
        VertexId nbr = Access::V(e);
        ctx.AddWork(1);
        if (adj.count(nbr) != 0) g2.push_back(nbr);
        if (same_cone && pivot_max_side.count(nbr) != 0) g3.push_back(nbr);
      }
      if (!same_cone) {
        while (sb.HasNext() && Access::U(sb.Peek()) == v) {
          EdgeT e = sb.Next();
          VertexId nbr = Access::V(e);
          ctx.AddWork(1);
          if (pivot_max_side.count(nbr) != 0) g3.push_back(nbr);
        }
      }
      if (g2.empty() || g3.empty()) continue;

      g3_set.clear();
      g3_set.insert(g3.begin(), g3.end());
      for (VertexId u : g2) {
        auto it = adj.find(u);
        if (it == adj.end()) continue;
        for (std::uint32_t i = it->second.first; i < it->second.second; ++i) {
          VertexId w = Access::V(chunk[i]);
          ctx.AddWork(1);
          if (g3_set.count(w) != 0) {
            sink.Emit(v, u, w);
          }
        }
      }
    }
  }
}

}  // namespace trienum::core

#endif  // TRIENUM_CORE_PIVOT_ENUM_H_
