// Lemma 2 (Hu, Tao, Chung): enumerate all triangles whose pivot edge lies in
// a designated edge set, in O(E/B + E'·E/(MB)) I/Os.
//
// The pivot set is consumed in chunks of alpha*M edges held in internal
// memory. For each chunk, one scan of the cone edge stream(s) — grouped by
// smaller endpoint v, which the §1.3 lex order provides for free — collects
// Gamma_v, the neighbours of v that appear in the resident chunk, and every
// resident pivot edge {u, w} with u, w in Gamma_v closes the triangle
// (v, u, w).
//
// The same engine serves three callers:
//   * the full Hu-Tao-Chung baseline (cone = pivot = E);
//   * step 3 of the paper's cache-aware algorithm, where the cone edges come
//     from color buckets (tau1,tau2) and (tau1,tau3) and the pivot from
//     (tau2,tau3) — which makes the paper's "ignore triangles whose cone
//     vertex is not colored tau1" a structural no-op;
//   * ablation benches sweeping the chunk fraction alpha.
//
// Two loop engines share the chunk loading and indexing:
//   * serial (threads=1, the default): the fused probe-as-you-scan loop —
//     kept verbatim as its own small function so its codegen is untouched
//     by the pool machinery;
//   * pooled (par::SetThreads(N > 1)): neighbour collection issues the
//     exact same Peek/Next charge sequence, then the role probes and the
//     resident-run membership tests — pure reads of chunk-resident state —
//     fan out over stable partitions with per-worker emit buffers flushed
//     in partition order. Output order, IoStats and work counters are
//     identical to the serial engine (pinned by tests/test_parallel.cc).
//
// Both engines drive the src/simd/ two-regime intersection kernels: the
// cone-stream role probes go through batched flat-map lookups, and the
// emit phase intersects each resident pivot run against Gamma_3 either by
// merge kernel or — when Gamma_3 is large and dense (the high-degree-hub
// shape) — through a per-group offset bitmap. Kernel variant and regime
// are pure host-performance choices: output order, work totals, and the
// Peek/Next charge sequence are identical with kernels on or off
// (tests/test_simd_invariance.cc).
#ifndef TRIENUM_CORE_PIVOT_ENUM_H_
#define TRIENUM_CORE_PIVOT_ENUM_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/sink.h"
#include "em/array.h"
#include "graph/types.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "simd/intersect.h"

namespace trienum::core {
namespace internal {

/// Minimal open-addressed map VertexId -> u32 payload (linear probing,
/// power-of-two capacity). The pivot chunk's adjacency index is rebuilt and
/// probed millions of times per run; a flat table beats both
/// std::unordered_map (per-node mallocs, bucket chasing) and binary search
/// (log-n mispredicted branches) on this hot path. Host-side only: no effect
/// on I/O accounting. Concurrent Get from pool workers is safe once the
/// build (Put/Add) phase is done.
class FlatVertexMap {
 public:
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;

  void Reset(std::size_t expected) {
    std::size_t cap = 16;
    while (cap < 2 * expected) cap <<= 1;
    keys_.assign(cap, 0);
    vals_.assign(cap, kEmpty);
    mask_ = static_cast<std::uint32_t>(cap - 1);
  }

  /// Inserts or overwrites.
  void Put(graph::VertexId key, std::uint32_t val) {
    std::uint32_t i = Hash(key);
    while (vals_[i] != kEmpty && keys_[i] != key) i = (i + 1) & mask_;
    keys_[i] = key;
    vals_[i] = val;
  }

  /// ORs `bits` into the payload for `key` (inserting it if absent) — lets
  /// one table carry several roles per vertex, so the cone-stream hot loop
  /// pays one probe instead of one per role.
  void Add(graph::VertexId key, std::uint32_t bits) {
    std::uint32_t i = Hash(key);
    while (vals_[i] != kEmpty && keys_[i] != key) i = (i + 1) & mask_;
    keys_[i] = key;
    vals_[i] = vals_[i] == kEmpty ? bits : (vals_[i] | bits);
  }

  /// Payload for `key`, or kEmpty.
  std::uint32_t Get(graph::VertexId key) const {
    std::uint32_t i = Hash(key);
    while (vals_[i] != kEmpty) {
      if (keys_[i] == key) return vals_[i];
      i = (i + 1) & mask_;
    }
    return kEmpty;
  }

  /// Raw-pointer read view. The probe loops call Get millions of times
  /// between opaque calls (sink emission, work accounting); a by-value View
  /// lets the compiler keep the table pointers and mask in registers
  /// instead of reloading them after every such call. Invalidated by Reset.
  struct View {
    const graph::VertexId* keys;
    const std::uint32_t* vals;
    std::uint32_t mask;

    std::uint32_t Get(graph::VertexId key) const {
      std::uint32_t i = (static_cast<std::uint32_t>(key) * 0x9E3779B1u) & mask;
      while (vals[i] != kEmpty) {
        if (keys[i] == key) return vals[i];
        i = (i + 1) & mask;
      }
      return kEmpty;
    }
  };
  View view() const { return View{keys_.data(), vals_.data(), mask_}; }

 private:
  std::uint32_t Hash(graph::VertexId key) const {
    return (static_cast<std::uint32_t>(key) * 0x9E3779B1u) & mask_;
  }

  std::vector<graph::VertexId> keys_;
  std::vector<std::uint32_t> vals_;
  std::uint32_t mask_ = 0;
};

/// Probes per pool partition below which the pooled engine's batches stay
/// serial: a flat-map lookup or a binary search is tens of nanoseconds, so
/// a partition must amortize the fork/join handshake.
inline constexpr std::size_t kPivotParGrain = std::size_t{1} << 11;

/// One resident pivot chunk with its host-side index: the sorted chunk, the
/// per-u run table, and the role map. Shared by both loop engines.
template <typename EdgeT>
struct ResidentChunk {
  using Access = graph::EdgeAccess<EdgeT>;

  std::vector<EdgeT> chunk;
  /// Each distinct smaller-endpoint u's [first, last) run in `chunk`.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
  /// chunk[i]'s larger endpoint, extracted once so each u-run is a
  /// contiguous strictly-increasing u32 array — the shape the intersection
  /// kernels take directly (no per-element EdgeAccess in the emit loop).
  std::vector<std::uint32_t> vmax;
  /// Payload bit 0: max-side membership; bits 1+: 1 + `ranges` index of the
  /// vertex's u-side run. (The packed payload would alias the empty
  /// sentinel only at 2^30 resident ranges; chunks are capped at M/(w+6)
  /// records, orders of magnitude below.)
  FlatVertexMap roles;

  void Load(em::QuerySession& ctx, em::Array<EdgeT> pivot, std::size_t p0,
            std::size_t p1) {
    const std::size_t csize = p1 - p0;
    chunk.resize(csize);
    pivot.ReadTo(p0, p1, chunk.data());
    // Every caller passes lex-sorted pivot edges (whole edge list or color
    // buckets cut from one), so the chunk is almost always already sorted —
    // verify in one sweep and skip the sort. The fallback stays std::sort:
    // edges are unique under LexLess, so stability is moot, and the
    // in-place sort keeps the chunk lease the honest account of this
    // chunk's internal-memory footprint.
    if (!std::is_sorted(chunk.begin(), chunk.end(), graph::LexLess{})) {
      std::sort(chunk.begin(), chunk.end(), graph::LexLess{});
    }
    ctx.AddWork(csize * 2);

    ranges.clear();
    ranges.reserve(csize);
    vmax.resize(csize);
    roles.Reset(2 * csize);
    for (std::size_t i = 0; i < csize; ++i) {
      graph::VertexId u = Access::U(chunk[i]);
      if (ranges.empty() ||
          Access::U(chunk[i - 1]) != u) {  // chunk sorted: runs are contiguous
        roles.Add(u, (static_cast<std::uint32_t>(ranges.size()) + 1) << 1);
        ranges.emplace_back(static_cast<std::uint32_t>(i),
                            static_cast<std::uint32_t>(i + 1));
      } else {
        ranges.back().second = static_cast<std::uint32_t>(i + 1);
      }
      vmax[i] = static_cast<std::uint32_t>(Access::V(chunk[i]));
      roles.Add(Access::V(chunk[i]), 1u);
    }
  }
};

/// The serial loop engine: the exact Peek/Next charge sequence of the old
/// fused loop, with the pure host compute between charges reorganized into
/// kernel batches — one ProbeFlatMapU32 call per cone group resolves every
/// neighbour's roles, and the emit phase intersects each resident pivot run
/// against Gamma_3 through the two-regime kernels. A pivot run's larger
/// endpoints are strictly increasing (lex-sorted unique edges), so the
/// kernels' ascending match output IS the old run-scan emit order; work is
/// charged per batch with totals equal to the old per-item counts.
template <typename EdgeT>
void ScanConesSerial(em::QuerySession& ctx, const ResidentChunk<EdgeT>& rc,
                     em::Array<EdgeT> cone_a, em::Array<EdgeT> cone_b,
                     bool same_cone, TriangleSink& sink) {
  using Access = graph::EdgeAccess<EdgeT>;
  using graph::VertexId;
  // One pass over the cone stream(s), grouped by cone vertex v.
  em::Scanner<EdgeT> sa(cone_a);
  em::Scanner<EdgeT> sb;
  if (!same_cone) sb = em::Scanner<EdgeT>(cone_b);
  // Hot-state locals (see FlatVertexMap::View): the chunk, run table and
  // role map never change inside this scan, and keeping raw pointers in
  // locals stops the opaque sink/work calls from forcing reloads.
  const std::uint32_t* const vmax = rc.vmax.data();
  const std::pair<std::uint32_t, std::uint32_t>* const ranges =
      rc.ranges.data();
  const FlatVertexMap::View roles = rc.roles.view();
  // Gamma_v split by role: u-side neighbours carry their resolved ranges
  // index (no re-probe in the emit loop), w-side is membership only.
  std::vector<std::pair<VertexId, std::uint32_t>> g2;
  std::vector<VertexId> g3;
  std::vector<VertexId> nbrs;       // one group's neighbours, arrival order
  std::vector<std::uint32_t> role;  // their batch-probed role payloads
  std::vector<std::uint32_t> match;  // one run's kernel match output
  simd::DenseBitmap bitmap;

  while (sa.HasNext() || (!same_cone && sb.HasNext())) {
    VertexId v;
    if (!sa.HasNext()) {
      v = Access::U(sb.Peek());
    } else if (same_cone || !sb.HasNext()) {
      v = Access::U(sa.Peek());
    } else {
      v = std::min(Access::U(sa.Peek()), Access::U(sb.Peek()));
    }
    g2.clear();
    g3.clear();
    // Neighbour collection keeps the old loop's Peek/Next sequence; the
    // (pure) role probes move into one batched kernel call per group —
    // still one probe per cone edge per chunk, the hottest host loop of
    // Lemma 2.
    nbrs.clear();
    while (sa.HasNext() && Access::U(sa.Peek()) == v) {
      nbrs.push_back(Access::V(sa.Next()));
    }
    ctx.AddWork(nbrs.size());
    if (role.size() < nbrs.size()) role.resize(nbrs.size());
    simd::ProbeFlatMapU32(roles.keys, roles.vals, roles.mask, nbrs.data(),
                          nbrs.size(), role.data());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const std::uint32_t r = role[i];
      if (r != FlatVertexMap::kEmpty) {
        if ((r >> 1) != 0) g2.emplace_back(nbrs[i], (r >> 1) - 1);
        if (same_cone && (r & 1u) != 0) g3.push_back(nbrs[i]);
      }
    }
    if (!same_cone) {
      nbrs.clear();
      while (sb.HasNext() && Access::U(sb.Peek()) == v) {
        nbrs.push_back(Access::V(sb.Next()));
      }
      ctx.AddWork(nbrs.size());
      if (role.size() < nbrs.size()) role.resize(nbrs.size());
      simd::ProbeFlatMapU32(roles.keys, roles.vals, roles.mask, nbrs.data(),
                            nbrs.size(), role.data());
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (role[i] != FlatVertexMap::kEmpty && (role[i] & 1u) != 0) {
          g3.push_back(nbrs[i]);
        }
      }
    }
    if (g2.empty() || g3.empty()) continue;

    // The lex-sort precondition makes neighbours within a group arrive
    // v-ascending, so g3 is already sorted for the intersections below;
    // verify in one sweep (and repair) rather than trust the caller.
    if (!std::is_sorted(g3.begin(), g3.end())) {
      std::sort(g3.begin(), g3.end());
    }
    // Emit phase: intersect each g2 entry's resident pivot run with g3.
    // Regime choice is per group — dense Gamma_3 builds one offset bitmap
    // reused across every run; sparse Gamma_3 goes through the merge
    // kernel. Work is the run length, exactly the old per-element count.
    const simd::Regime regime =
        simd::ChooseRegime(g3.size(), g3.front(), g3.back());
    if (regime == simd::Regime::kBitmap) bitmap.Build(g3.data(), g3.size());
    for (const auto& [u, ri] : g2) {
      const auto& range = ranges[ri];
      const std::uint32_t* run = vmax + range.first;
      const std::size_t len = range.second - range.first;
      ctx.AddWork(len);
      if (match.size() < len + simd::kOutSlack) {
        match.resize(len + simd::kOutSlack);
      }
      std::size_t m;
      if (regime == simd::Regime::kBitmap) {
        m = bitmap.Probe(run, len, match.data());
      } else {
        m = simd::IntersectSorted(run, len, g3.data(), g3.size(),
                                  match.data())
                .matches;
      }
      for (std::size_t i = 0; i < m; ++i) sink.Emit(v, u, match[i]);
    }
  }
}

/// The pooled loop engine: identical charges and output (see the header
/// comment), with the per-group probe and emit phases fanned out over the
/// par pool. Work accounting moves from per-item to per-batch AddWork calls
/// of equal totals.
template <typename EdgeT>
void ScanConesPooled(em::QuerySession& ctx, const ResidentChunk<EdgeT>& rc,
                     em::Array<EdgeT> cone_a, em::Array<EdgeT> cone_b,
                     bool same_cone, TriangleSink& sink) {
  using Access = graph::EdgeAccess<EdgeT>;
  using graph::VertexId;
  em::Scanner<EdgeT> sa(cone_a);
  em::Scanner<EdgeT> sb;
  if (!same_cone) sb = em::Scanner<EdgeT>(cone_b);
  const std::uint32_t* const vmax = rc.vmax.data();
  const std::pair<std::uint32_t, std::uint32_t>* const ranges =
      rc.ranges.data();
  const FlatVertexMap::View roles = rc.roles.view();
  std::vector<std::pair<VertexId, std::uint32_t>> g2;
  std::vector<VertexId> g3;
  std::vector<VertexId> nbrs;       // one group's neighbours, arrival order
  std::vector<std::uint32_t> role;  // their probed role payloads
  std::vector<std::uint64_t> g2_probes;  // per-g2-entry pivot-run lengths
  std::vector<std::vector<std::pair<VertexId, VertexId>>> emit_bufs;
  std::vector<std::vector<std::uint32_t>> match_bufs;  // per-worker scratch
  std::vector<std::uint32_t> match;  // single-partition fast-path scratch
  simd::DenseBitmap bitmap;

  // Batched role probe: role[i] = roles.Get(nbrs[i]) over stable
  // partitions, each serviced by the flat-map probe kernel.
  auto probe_group = [&](std::size_t count) {
    if (role.size() < count) role.resize(count);
    par::ParallelFor(count, kPivotParGrain,
                     [&](std::size_t lo, std::size_t hi) {
                       simd::ProbeFlatMapU32(roles.keys, roles.vals,
                                             roles.mask, nbrs.data() + lo,
                                             hi - lo, role.data() + lo);
                     });
  };
  // One run's two-regime intersection into `out` (kOutSlack slack);
  // returns the match count. Read-only on shared state once the group's
  // bitmap is built, so pool workers may call it concurrently.
  auto intersect_run = [&](const std::pair<std::uint32_t, std::uint32_t>& range,
                           simd::Regime regime,
                           std::uint32_t* out) -> std::size_t {
    const std::uint32_t* run = vmax + range.first;
    const std::size_t len = range.second - range.first;
    if (regime == simd::Regime::kBitmap) return bitmap.Probe(run, len, out);
    return simd::IntersectSorted(run, len, g3.data(), g3.size(), out).matches;
  };

  while (sa.HasNext() || (!same_cone && sb.HasNext())) {
    VertexId v;
    if (!sa.HasNext()) {
      v = Access::U(sb.Peek());
    } else if (same_cone || !sb.HasNext()) {
      v = Access::U(sa.Peek());
    } else {
      v = std::min(Access::U(sa.Peek()), Access::U(sb.Peek()));
    }
    g2.clear();
    g3.clear();
    // Neighbour collection: the exact Peek/Next sequence of the serial
    // engine, so the I/O charges are untouched; only the (pure) probes are
    // deferred into the batch.
    nbrs.clear();
    while (sa.HasNext() && Access::U(sa.Peek()) == v) {
      nbrs.push_back(Access::V(sa.Next()));
    }
    ctx.AddWork(nbrs.size());
    probe_group(nbrs.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const std::uint32_t r = role[i];
      if (r != FlatVertexMap::kEmpty) {
        if ((r >> 1) != 0) g2.emplace_back(nbrs[i], (r >> 1) - 1);
        if (same_cone && (r & 1u) != 0) g3.push_back(nbrs[i]);
      }
    }
    if (!same_cone) {
      nbrs.clear();
      while (sb.HasNext() && Access::U(sb.Peek()) == v) {
        nbrs.push_back(Access::V(sb.Next()));
      }
      ctx.AddWork(nbrs.size());
      probe_group(nbrs.size());
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (role[i] != FlatVertexMap::kEmpty && (role[i] & 1u) != 0) {
          g3.push_back(nbrs[i]);
        }
      }
    }
    if (g2.empty() || g3.empty()) continue;

    if (!std::is_sorted(g3.begin(), g3.end())) {
      std::sort(g3.begin(), g3.end());
    }
    // Emit phase: each g2 entry intersects its resident pivot run with g3
    // through the two-regime kernels (regime chosen once per group; a
    // bitmap, once built, is read-only and shared across workers). Work is
    // the run length, not a constant, so the partitioning is weighted;
    // per-worker emit buffers are flushed to the sink in partition order.
    // A single partition (small group) emits directly — the order is the
    // same either way.
    g2_probes.resize(g2.size());
    std::uint64_t total_probes = 0;
    std::uint64_t max_run = 0;
    for (std::size_t k = 0; k < g2.size(); ++k) {
      g2_probes[k] =
          ranges[g2[k].second].second - ranges[g2[k].second].first;
      total_probes += g2_probes[k];
      max_run = std::max(max_run, g2_probes[k]);
    }
    ctx.AddWork(total_probes);
    const simd::Regime regime =
        simd::ChooseRegime(g3.size(), g3.front(), g3.back());
    if (regime == simd::Regime::kBitmap) bitmap.Build(g3.data(), g3.size());
    const std::size_t match_cap =
        static_cast<std::size_t>(max_run) + simd::kOutSlack;
    const std::size_t parts =
        par::PartsFor(static_cast<std::size_t>(total_probes), par::Threads(),
                      kPivotParGrain);
    if (parts <= 1) {
      if (match.size() < match_cap) match.resize(match_cap);
      for (const auto& [u, ri] : g2) {
        const std::size_t m = intersect_run(ranges[ri], regime, match.data());
        for (std::size_t i = 0; i < m; ++i) sink.Emit(v, u, match[i]);
      }
      continue;
    }
    const std::vector<par::Range> splits = par::SplitWeighted(g2_probes, parts);
    if (emit_bufs.size() < splits.size()) emit_bufs.resize(splits.size());
    if (match_bufs.size() < splits.size()) match_bufs.resize(splits.size());
    par::ParallelFor(splits.size(), 1, [&](std::size_t k0, std::size_t k1) {
      for (std::size_t k = k0; k < k1; ++k) {
        auto& buf = emit_bufs[k];
        auto& mbuf = match_bufs[k];
        buf.clear();
        if (mbuf.size() < match_cap) mbuf.resize(match_cap);
        for (std::size_t gi = splits[k].lo; gi < splits[k].hi; ++gi) {
          const auto& [u, ri] = g2[gi];
          const std::size_t m = intersect_run(ranges[ri], regime, mbuf.data());
          for (std::size_t i = 0; i < m; ++i) buf.emplace_back(u, mbuf[i]);
        }
      }
    });
    for (std::size_t k = 0; k < splits.size(); ++k) {
      for (const auto& [u, w] : emit_bufs[k]) sink.Emit(v, u, w);
    }
  }
}

}  // namespace internal

struct PivotEnumOptions {
  /// Fraction alpha of internal memory used for the resident pivot chunk.
  double chunk_fraction = 1.0 / 8.0;
};

/// \brief Enumerates all triangles (v, u, w), v < u < w, with cone edges
/// {v,u} in `cone_a`, {v,w} in `cone_b` and pivot edge {u,w} in `pivot`.
///
/// Preconditions: all three arrays are lex-sorted with u < v per edge. Pass
/// the same array as `cone_a` and `cone_b` when they coincide (detected by
/// base address; the stream is then scanned once and feeds both roles).
template <typename EdgeT>
void PivotEnumerate(em::QuerySession& ctx, em::Array<EdgeT> cone_a,
                    em::Array<EdgeT> cone_b, em::Array<EdgeT> pivot,
                    TriangleSink& sink, const PivotEnumOptions& opts = {}) {
  if (pivot.empty() || cone_a.empty() || cone_b.empty()) return;

  const bool same_cone = cone_a.base() == cone_b.base();
  const std::size_t words_per = em::Array<EdgeT>::kWordsPer;
  std::size_t chunk_items = static_cast<std::size_t>(
      static_cast<double>(ctx.memory_words()) * opts.chunk_fraction /
      static_cast<double>(words_per));
  // The resident structures cost ~(words_per + 6) words per chunk record
  // (chunk + adjacency index + endpoint filter + per-v buffers; the kernel
  // sidecars — extracted endpoints, group bitmap, match scratch — add
  // ~1.25 words/record, inside the slack the power-of-two role table
  // leaves), so cap the chunk to keep the scratch lease within M even for
  // aggressive alpha.
  chunk_items =
      std::min(chunk_items, ctx.memory_words() / (words_per + 6));
  chunk_items = std::max<std::size_t>(chunk_items, 1);

  const bool pool_active = par::Threads() > 1;
  internal::ResidentChunk<EdgeT> rc;
  for (std::size_t p0 = 0; p0 < pivot.size(); p0 += chunk_items) {
    const std::size_t p1 = std::min(pivot.size(), p0 + chunk_items);
    const std::size_t csize = p1 - p0;

    // Internal-memory working set for this chunk: the chunk itself, its
    // adjacency index, the endpoint filters, and the per-v buffers.
    em::ScratchLease lease = ctx.LeaseScratch(csize * (words_per + 6));
    {
      obs::Span span("pivot.chunk_load");
      span.AddArg("chunk_items", csize);
      rc.Load(ctx, pivot, p0, p1);
    }

    {
      obs::Span span("pivot.cone_scan");
      span.AddArg("chunk_items", csize);
      if (pool_active) {
        internal::ScanConesPooled<EdgeT>(ctx, rc, cone_a, cone_b, same_cone,
                                         sink);
      } else {
        internal::ScanConesSerial<EdgeT>(ctx, rc, cone_a, cone_b, same_cone,
                                         sink);
      }
    }
  }
}

}  // namespace trienum::core

#endif  // TRIENUM_CORE_PIVOT_ENUM_H_
