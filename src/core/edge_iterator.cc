#include "core/edge_iterator.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "em/array.h"
#include "extsort/scan_ops.h"
#include "obs/trace.h"
#include "simd/intersect.h"

namespace trienum::core {

void EnumerateEdgeIterator(em::QuerySession& ctx, const graph::EmGraph& g,
                           TriangleSink& sink) {
  using graph::VertexId;
  const std::size_t m = g.num_edges();
  const VertexId nv = g.num_vertices;
  if (m < 3) return;
  auto region = ctx.Region();

  // CSR: the lex-sorted edge list *is* the concatenated forward-neighbour
  // array; offsets come from one counting scan plus a prefix sum.
  em::Array<std::uint64_t> offsets = ctx.Alloc<std::uint64_t>(nv + 1);
  em::Array<VertexId> nbr;
  {
    obs::Span span("ei.csr_build");
    span.AddArg("edges", m);
    em::Array<std::uint32_t> outdeg = ctx.Alloc<std::uint32_t>(nv);
    {
      em::Writer<std::uint32_t> zero(outdeg);
      for (VertexId v = 0; v < nv; ++v) zero.Push(0);
    }
    extsort::ForEach(g.edges, [&](const graph::Edge& e) {
      outdeg.Set(e.u, outdeg.Get(e.u) + 1);
    });
    std::uint64_t run = 0;
    for (VertexId v = 0; v < nv; ++v) {
      offsets.Set(v, run);
      run += outdeg.Get(v);
    }
    offsets.Set(nv, run);
    nbr = ctx.Alloc<VertexId>(m);
    extsort::Transform(g.edges, nbr, [](const graph::Edge& e) { return e.v; });
  }

  // For each edge (u, v): intersect N+(u) beyond v with N+(v). Both runs
  // are staged host-side with scan-exact reads and handed to the merge
  // kernel, whose ascending match output is exactly the old interleaved
  // two-pointer loop's emit order. Work stays the merge's iteration count,
  // consumed_a + consumed_b - matches: the consumed-at-exhaustion counts
  // are determined by the data alone, so every kernel variant reproduces
  // the scalar total exactly (tests/test_intersect_kernels.cc).
  obs::Span span("ei.intersect");
  span.AddArg("edges", m);
  std::vector<VertexId> run_a, run_b, matches;
  for (VertexId u = 0; u < nv; ++u) {
    std::uint64_t lo = offsets.Get(u), hi = offsets.Get(u + 1);
    for (std::uint64_t idx = lo; idx < hi; ++idx) {
      VertexId v = nbr.Get(idx);
      std::uint64_t i = idx + 1;               // suffix of N+(u): values > v
      std::uint64_t j = offsets.Get(v);        // random access per edge
      std::uint64_t j_end = offsets.Get(v + 1);
      const std::size_t la = static_cast<std::size_t>(hi - i);
      const std::size_t lb = static_cast<std::size_t>(j_end - j);
      if (la == 0 || lb == 0) continue;
      if (run_a.size() < la) run_a.resize(la);
      if (run_b.size() < lb) run_b.resize(lb);
      nbr.ReadScanInto(i, hi, run_a.data());
      nbr.ReadScanInto(j, j_end, run_b.data());
      const std::size_t cap = std::min(la, lb) + simd::kOutSlack;
      if (matches.size() < cap) matches.resize(cap);
      const simd::IntersectStats st = simd::IntersectSorted(
          run_a.data(), la, run_b.data(), lb, matches.data());
      ctx.AddWork(st.consumed_a + st.consumed_b - st.matches);
      for (std::size_t k = 0; k < st.matches; ++k) sink.Emit(u, v, matches[k]);
    }
  }
}

double EdgeIteratorIoBound(std::size_t num_edges, std::size_t b) {
  double e = static_cast<double>(num_edges);
  // One random access per edge plus streaming through O(sqrt(E))-length
  // adjacency lists per edge.
  return 2.0 * e + 4.0 * std::pow(e, 1.5) / static_cast<double>(b);
}

}  // namespace trienum::core
