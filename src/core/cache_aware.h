// Section 2: the cache-aware color-coding triangle enumeration algorithm —
// O(E^{3/2} / (sqrt(M) B)) expected I/Os (Theorem 4), and with the §4
// deterministic coloring the worst-case bound of Theorem 2.
//
// Steps (paper §2.1):
//  1. High-degree split: vertices with deg > sqrt(E*M) (fewer than
//     2*sqrt(E/M) of them) are handled one by one with Lemma 1, removing
//     each vertex's edges afterwards so every such triangle is emitted
//     exactly once.
//  2. The remaining low-degree edges are colored with a 4-wise independent
//     xi : V -> {0..c-1}, c = sqrt(E/M) (rounded up to a power of two), and
//     bucketed into the c^2 classes E_{tau1,tau2} by one sort.
//  3. For each ordered triple (tau1,tau2,tau3): Lemma 2 with pivot set
//     E_{tau2,tau3} and cone streams E_{tau1,tau2}, E_{tau1,tau3}.
#ifndef TRIENUM_CORE_CACHE_AWARE_H_
#define TRIENUM_CORE_CACHE_AWARE_H_

#include <cstdint>

#include "core/sink.h"
#include "graph/normalize.h"

namespace trienum::core {

struct CacheAwareOptions {
  /// Seed of the random coloring; 0 means "use the context's master seed".
  std::uint64_t seed = 0;
  /// Use the §4 greedy derandomized coloring (Theorem 2) instead of the
  /// random 4-wise one.
  bool deterministic_coloring = false;
  /// Ablation: disable the high-degree-vertex step (step 1).
  bool high_degree_step = true;
  /// Fraction alpha of M used for pivot chunks in Lemma 2.
  double chunk_fraction = 1.0 / 8.0;
  /// Force the number of colors (power of two); 0 = the paper's
  /// sqrt(E/M) rounded up.
  std::uint32_t force_colors = 0;
};

/// Enumerates all triangles of the normalized graph `g`.
void EnumerateCacheAware(em::QuerySession& ctx, const graph::EmGraph& g,
                         TriangleSink& sink, const CacheAwareOptions& opts = {});

/// The paper's bound E^{3/2} / (sqrt(M) B) (no constants): the yardstick all
/// EXP-* benches normalize measured I/Os against.
double PaghSilvestriIoBound(std::size_t num_edges, std::size_t m, std::size_t b);

}  // namespace trienum::core

#endif  // TRIENUM_CORE_CACHE_AWARE_H_
