#include "core/cache_oblivious.h"

#include <algorithm>
#include <array>
#include <vector>

#include "common/rng.h"
#include "core/dementiev.h"
#include "core/vertex_enum.h"
#include "extsort/scan_ops.h"
#include "extsort/sorter.h"
#include "hashing/kwise.h"
#include "obs/trace.h"
#include "par/thread_pool.h"

namespace trienum::core {
namespace {

using graph::ColoredEdge;
using graph::VertexId;

class CoRunner {
 public:
  CoRunner(em::QuerySession& ctx, TriangleSink& sink,
           const CacheObliviousOptions& opts, int max_depth,
           CacheObliviousReport* report)
      : ctx_(ctx),
        sink_(sink),
        opts_(opts),
        max_depth_(max_depth),
        rng_(opts.seed != 0 ? opts.seed : ctx.seed()),
        report_(report) {}

  void Recurse(em::Array<ColoredEdge> a, std::array<std::uint32_t, 3> col,
               int depth) {
    std::size_t len = a.size();
    // A proper triangle needs all three of its edges inside the subproblem,
    // so fewer than three edges cannot contain one (the paper's "E empty"
    // base, tightened to the trivially sound constant).
    if (len < 3) return;
    if (report_ != nullptr) {
      ++report_->subproblems;
      report_->max_depth_reached = std::max(report_->max_depth_reached, depth);
    }
    if (depth >= max_depth_ ||
        (opts_.base_cutoff != 0 && len <= opts_.base_cutoff)) {
      BaseCase(a, col);
      return;
    }

    // ---- Step 1: local high-degree vertices ---------------------------------
    len = HighDegreeStep(a, col, len);
    if (len < 3) return;
    a = a.Slice(0, len);

    // ---- Step 2: refine the coloring with one fresh 4-wise random bit -------
    hashing::FourWiseHash bh(rng_.Next());

    // ---- Step 3: the 8 child color vectors ----------------------------------
    // All eight compatible-edge subsets are materialized with two scans of
    // the parent (count, then write) rather than one scan per child; the
    // recursion itself stays depth-first.
    em::DeviceRegion region = ctx_.Region();
    std::array<std::array<std::uint32_t, 3>, 8> cc;
    std::array<std::size_t, 8> child_len{};
    std::array<std::array<std::uint64_t, 3>, 8> slots{};
    for (int z = 0; z < 8; ++z) {
      cc[z] = {2 * col[0] - ((z >> 0) & 1), 2 * col[1] - ((z >> 1) & 1),
               2 * col[2] - ((z >> 2) & 1)};
    }
    // Closed-form child dispatch: a slot-(i,j) match pins two of z's three
    // bits (z's bit k is position k's refinement bit), leaving exactly two
    // candidate children per slot class. Equivalent to comparing (nu, nv)
    // against all eight cc[z] rows, at a fraction of the work.
    auto route = [&](const ColoredEdge& e, std::uint32_t bu, std::uint32_t bv,
                     auto&& per_child) {
      const std::uint32_t nu = 2 * e.cu - bu;
      const std::uint32_t nv = 2 * e.cv - bv;
      ctx_.AddWork(2);
      std::uint8_t fl[8] = {};
      if (e.cu == col[0] && e.cv == col[1]) {
        std::uint32_t z = bu | (bv << 1);
        fl[z] |= 1;
        fl[z | 4] |= 1;
      }
      if (e.cu == col[1] && e.cv == col[2]) {
        std::uint32_t z = (bu << 1) | (bv << 2);
        fl[z] |= 2;
        fl[z | 1] |= 2;
      }
      if (e.cu == col[0] && e.cv == col[2]) {
        std::uint32_t z = bu | (bv << 2);
        fl[z] |= 4;
        fl[z | 2] |= 4;
      }
      for (int z = 0; z < 8; ++z) {
        if (fl[z] != 0) {
          per_child(z, ColoredEdge{e.u, e.v, nu, nv}, (fl[z] & 1) != 0,
                    (fl[z] & 2) != 0, (fl[z] & 4) != 0);
        }
      }
    };
    std::array<em::Writer<ColoredEdge>, 8> writers;
    if (len < kSmallNode) {
      // Small-subproblem fast path (the recursion spends most of its nodes
      // here: millions of subproblems of a dozen edges). One charged read
      // brings the records host-side; the second pass re-charges the scan
      // without re-moving data, and the refinement bits are computed once
      // and reused. The touch sequence is identical to the two-scan path.
      std::array<ColoredEdge, kSmallNode> ebuf;
      std::array<std::uint8_t, kSmallNode> ebits;
      a.ReadScanInto(0, len, ebuf.data());
      for (std::size_t i = 0; i < len; ++i) {
        ebits[i] = static_cast<std::uint8_t>(bh.PairBits(ebuf[i].u, ebuf[i].v));
        route(ebuf[i], ebits[i] & 1u, ebits[i] >> 1,
              [&](int z, const ColoredEdge&, bool s01, bool s12, bool s02) {
                ++child_len[z];
                slots[z][0] += s01 ? 1 : 0;
                slots[z][1] += s12 ? 1 : 0;
                slots[z][2] += s02 ? 1 : 0;
              });
      }
      for (int z = 0; z < 8; ++z) {
        writers[z] = em::Writer<ColoredEdge>(
            ctx_.Alloc<ColoredEdge>(child_len[z]), em::ScanMode::kElementwise);
      }
      a.TouchScanRange(0, len);  // the routing pass's read charges
      for (std::size_t i = 0; i < len; ++i) {
        route(ebuf[i], ebits[i] & 1u, ebits[i] >> 1,
              [&](int z, const ColoredEdge& ce, bool, bool, bool) {
                writers[z].Push(ce);
              });
      }
    } else {
      // Refinement bits are GF(2^61-1) polynomial evaluations — the
      // recursion's hottest host work. Each record's two bits are evaluated
      // once (one batched two-point evaluation on the counting scan) and
      // replayed on the write scan from a host-side bit cache, instead of
      // re-deriving them per pass. The cache is 2 bits per record packed in
      // a byte, capped by a fixed (M-independent, so still oblivious)
      // constant; nodes beyond the cap fall back to re-evaluating on the
      // second scan. Either way both scans stay real Scanner passes — the
      // I/O charge sequence is untouched.
      // One buffer shared down the whole recursion (children reuse it only
      // after the parent's second scan has drained it).
      const bool cache_bits = len <= kBitCacheMax;
      std::vector<std::uint8_t>& bits = bit_cache_;
      if (cache_bits && bits.size() < len) bits.resize(len);
      // When the par pool is active, the counting scan stages records in
      // batches and fans the two-point evaluations out across workers
      // (independent pure GF(2^61-1) work). This is charge-exact: the scan
      // is read-only, records are pulled with the same Next() sequence
      // either way, and routing stays on this thread. The write scan is
      // NOT batched — its Scanner reads interleave with the eight child
      // Writers' flushes, and that interleaving is part of the pinned LRU
      // charge sequence — so nodes over the bit-cache cap re-evaluate
      // serially there; for every cacheable node the expensive hashing ran
      // exactly once, in parallel, on the counting scan. Nodes below two
      // grains can never fan out, so they skip the batch staging entirely.
      const bool pool_active =
          par::Threads() > 1 && len >= 2 * kHashGrain;
      std::vector<ColoredEdge>& batch = hash_batch_;
      std::vector<std::uint8_t>& pbv = hash_bits_;
      auto fill_batch = [&](em::Scanner<ColoredEdge>& in) {
        batch.clear();
        while (in.HasNext() && batch.size() < kHashBatch) {
          batch.push_back(in.Next());
        }
        if (pbv.size() < batch.size()) pbv.resize(batch.size());
        par::ParallelFor(batch.size(), kHashGrain,
                         [&](std::size_t lo, std::size_t hi) {
                           for (std::size_t j = lo; j < hi; ++j) {
                             pbv[j] = static_cast<std::uint8_t>(
                                 bh.PairBits(batch[j].u, batch[j].v));
                           }
                         });
        return batch.size();
      };
      {
        em::Scanner<ColoredEdge> in(a.Slice(0, len));
        std::size_t i = 0;
        auto count_child = [&](int z, const ColoredEdge&, bool s01, bool s12,
                               bool s02) {
          ++child_len[z];
          slots[z][0] += s01 ? 1 : 0;
          slots[z][1] += s12 ? 1 : 0;
          slots[z][2] += s02 ? 1 : 0;
        };
        if (!pool_active) {
          while (in.HasNext()) {
            ColoredEdge e = in.Next();
            const std::uint32_t pb = bh.PairBits(e.u, e.v);
            if (cache_bits) bits[i++] = static_cast<std::uint8_t>(pb);
            route(e, pb & 1u, pb >> 1, count_child);
          }
        } else {
          while (in.HasNext()) {
            const std::size_t bn = fill_batch(in);
            for (std::size_t j = 0; j < bn; ++j) {
              if (cache_bits) bits[i + j] = pbv[j];
              route(batch[j], pbv[j] & 1u, pbv[j] >> 1, count_child);
            }
            i += bn;
          }
        }
      }
      for (int z = 0; z < 8; ++z) {
        writers[z] =
            em::Writer<ColoredEdge>(ctx_.Alloc<ColoredEdge>(child_len[z]));
      }
      {
        em::Scanner<ColoredEdge> in(a.Slice(0, len));
        auto push_child = [&](int z, const ColoredEdge& ce, bool, bool, bool) {
          writers[z].Push(ce);
        };
        if (cache_bits) {
          std::size_t i = 0;
          while (in.HasNext()) {
            ColoredEdge e = in.Next();
            const std::uint32_t pb = bits[i++];
            route(e, pb & 1u, pb >> 1, push_child);
          }
        } else {
          while (in.HasNext()) {
            ColoredEdge e = in.Next();
            const std::uint32_t pb = bh.PairBits(e.u, e.v);
            route(e, pb & 1u, pb >> 1, push_child);
          }
        }
      }
    }
    for (int z = 0; z < 8; ++z) {
      if (report_ != nullptr) report_->total_child_edges += child_len[z];
      if (opts_.prune_empty_slots &&
          (slots[z][0] == 0 || slots[z][1] == 0 || slots[z][2] == 0)) {
        continue;  // a proper triangle needs one edge in each slot class
      }
      Recurse(writers[z].Written(), cc[z], depth + 1);
    }
  }

  /// Below this size a subproblem's materialization runs from a host copy
  /// (one charged read + a charge-only second scan) instead of the streaming
  /// two-pass — identical IoStats, none of the per-node stream setup.
  static constexpr std::size_t kSmallNode = 64;

  /// Largest subproblem whose refinement bits are cached between the two
  /// materialization scans (2 bits/record, 1 MiB of host metadata at the
  /// cap). A fixed constant — the oblivious code path still never consults
  /// M or B.
  static constexpr std::size_t kBitCacheMax = std::size_t{1} << 20;

  /// Records pulled from the Scanner per hashing batch. Bounds the host
  /// staging the parallel refinement-bit evaluation needs (a batch of
  /// records + one byte each, 256 KiB at the cap) independent of subproblem
  /// size, while leaving headroom for kHashBatch / kHashGrain = 8-way
  /// fan-out. A fixed constant — the oblivious code path never consults M
  /// or the thread count.
  static constexpr std::size_t kHashBatch = std::size_t{1} << 14;

  /// Pair evaluations per pool partition below which fan-out cannot pay;
  /// batches under 2x this run inline on the calling thread.
  static constexpr std::size_t kHashGrain = std::size_t{1} << 11;

 private:
  /// Enumerates proper triangles through vertices of degree >= E/8 within
  /// the subproblem and removes those vertices' edges; returns the new
  /// length of `a`.
  std::size_t HighDegreeStep(em::Array<ColoredEdge> a,
                             std::array<std::uint32_t, 3> col, std::size_t len) {
    // For subproblems so small that the degree threshold E/8 is a trivial
    // constant, the step is vacuous for the analysis (it exists to cap the
    // maximum degree in the variance argument); skip it.
    if (len < 24) return len;

    // Degrees within the subproblem: at most 2E/(E/8) = 16 vertices can
    // qualify, so a Misra-Gries heavy-hitter pass with 31 counters (finds
    // everything with frequency > 2E/32 <= E/8 among the 2E endpoints)
    // followed by one exact counting pass identifies them with two scans and
    // O(1) internal memory — cheaper than the endpoint sort and still
    // oblivious.
    const std::size_t threshold = std::max<std::size_t>(1, len / 8);
    std::vector<VertexId> high;
    {
      constexpr std::size_t kCounters = 31;
      // Misra-Gries state laid out for the hot loop: occupied slots hold
      // their key, free slots hold a sentinel no vertex id can equal (ids
      // are 32-bit), so the match scan is a branchless sweep and the lowest
      // free slot comes from a bitmask — identical semantics to the
      // original find-match/find-empty scans at a fraction of the work.
      // This runs twice per edge of every subproblem.
      constexpr std::uint64_t kFree = ~std::uint64_t{0};
      std::array<std::uint64_t, kCounters> key;
      std::array<std::uint32_t, kCounters> cnt{};
      key.fill(kFree);
      std::uint32_t free_mask = (1u << kCounters) - 1;
      auto offer = [&](VertexId v) {
        const std::uint64_t vv = v;
        int match = -1;
        for (int k = 0; k < static_cast<int>(kCounters); ++k) {
          match = key[k] == vv ? k : match;
        }
        if (match >= 0) {
          ++cnt[match];
        } else if (free_mask != 0) {
          int empty = __builtin_ctz(free_mask);  // lowest free slot first
          key[empty] = vv;
          cnt[empty] = 1;
          free_mask &= ~(1u << empty);
        } else {
          for (std::size_t k = 0; k < kCounters; ++k) {
            if (--cnt[k] == 0) {
              key[k] = kFree;
              free_mask |= 1u << k;
            }
          }
        }
      };
      {
        const em::ScanMode mode =
            len >= 64 ? em::DefaultScanMode() : em::ScanMode::kElementwise;
        em::Scanner<ColoredEdge> in(a.Slice(0, len), mode);
        while (in.HasNext()) {
          ColoredEdge e = in.Next();
          offer(e.u);
          offer(e.v);
          ctx_.AddWork(2);
        }
      }
      // Exact verification pass, compacted to the surviving candidates so
      // the inner loop is a tight array sweep.
      std::array<VertexId, kCounters> cand_key{};
      std::array<std::size_t, kCounters> cand_exact{};
      std::size_t nc = 0;
      for (std::size_t k = 0; k < kCounters; ++k) {
        if (cnt[k] != 0) cand_key[nc++] = static_cast<VertexId>(key[k]);
      }
      {
        const em::ScanMode mode =
            len >= 64 ? em::DefaultScanMode() : em::ScanMode::kElementwise;
        em::Scanner<ColoredEdge> in(a.Slice(0, len), mode);
        while (in.HasNext()) {
          ColoredEdge e = in.Next();
          for (std::size_t k = 0; k < nc; ++k) {
            cand_exact[k] += (cand_key[k] == e.u) + (cand_key[k] == e.v);
          }
        }
      }
      for (std::size_t k = 0; k < nc; ++k) {
        if (cand_exact[k] >= threshold) high.push_back(cand_key[k]);
      }
    }

    for (VertexId x : high) {
      if (report_ != nullptr) ++report_->high_degree_calls;
      em::Array<ColoredEdge> cur = a.Slice(0, len);
      EnumerateTrianglesContaining<ColoredEdge>(
          ctx_, cur, x, extsort::ObliviousSorter{},
          [&](VertexId u, VertexId w, std::uint32_t cu, std::uint32_t cw,
              std::uint32_t cx) {
            auto [tri, c0, c1, c2] = OrderColoredTriple(x, cx, u, cu, w, cw);
            if (c0 == col[0] && c1 == col[1] && c2 == col[2]) {
              sink_.Emit(tri.a, tri.b, tri.c);
            }
          });
      len = extsort::Filter(cur, a, [x](const ColoredEdge& e) {
        return e.u != x && e.v != x;
      });
    }
    return len;
  }

  /// Base case. Constant-size subproblems (<= kTinyBase edges) are solved
  /// directly in an O(1)-sized host buffer — one read of the input, no
  /// allocations; larger depth-capped subproblems run Dementiev's sort/scan
  /// listing in its oblivious (funnelsort) flavor. Both filter to proper
  /// triangles.
  static constexpr std::size_t kTinyBase = 64;

  void BaseCase(em::Array<ColoredEdge> a, std::array<std::uint32_t, 3> col) {
    if (report_ != nullptr) ++report_->base_cases;
    const std::size_t len = a.size();
    if (len <= kTinyBase) {
      em::ScratchLease lease = ctx_.LeaseScratch(2 * kTinyBase + 8);
      std::array<ColoredEdge, kTinyBase> buf;
      a.ReadTo(0, len, buf.data());
      std::sort(buf.begin(), buf.begin() + len, graph::LexLess{});
      ctx_.AddWork(len * 4);
      // Wedges at the smallest vertex: edges (u,v), (u,w) with v < w close a
      // triangle iff (v,w) is present (binary search in the sorted buffer).
      for (std::size_t i = 0; i < len; ++i) {
        for (std::size_t j = i + 1; j < len && buf[j].u == buf[i].u; ++j) {
          ColoredEdge probe;
          probe.u = buf[i].v;
          probe.v = buf[j].v;
          ctx_.AddWork(1);
          auto it = std::lower_bound(buf.begin(), buf.begin() + len, probe,
                                     graph::LexLess{});
          if (it == buf.begin() + len || it->u != probe.u || it->v != probe.v) {
            continue;
          }
          // Triangle u < v < w with positional colors from the edge records.
          if (buf[i].cu == col[0] && buf[i].cv == col[1] && it->cv == col[2]) {
            sink_.Emit(buf[i].u, buf[i].v, buf[j].v);
          }
        }
      }
      return;
    }
    WedgeJoinEnumerate<ColoredEdge>(
        ctx_, a, extsort::ObliviousSorter{},
        [col](const graph::Triangle&, std::uint32_t c0, std::uint32_t c1,
              std::uint32_t c2) {
          return c0 == col[0] && c1 == col[1] && c2 == col[2];
        },
        sink_);
  }

  em::QuerySession& ctx_;
  TriangleSink& sink_;
  CacheObliviousOptions opts_;
  int max_depth_;
  SplitMix64 rng_;
  CacheObliviousReport* report_;
  std::vector<std::uint8_t> bit_cache_;  // refinement bits, node-local use
  std::vector<graph::ColoredEdge> hash_batch_;  // staged records, one batch
  std::vector<std::uint8_t> hash_bits_;         // their PairBits results
};

}  // namespace

void EnumerateCacheOblivious(em::QuerySession& ctx, const graph::EmGraph& g,
                             TriangleSink& sink,
                             const CacheObliviousOptions& opts,
                             CacheObliviousReport* report) {
  const std::size_t m = g.num_edges();
  if (m < 3) return;
  auto region = ctx.Region();

  // The (1,1,1)-problem under the constant coloring xi = 1.
  em::Array<ColoredEdge> root = ctx.Alloc<ColoredEdge>(m);
  extsort::Transform(g.edges, root, [](const graph::Edge& e) {
    return ColoredEdge{e.u, e.v, 1, 1};
  });

  int max_depth = 0;  // ceil(log4 E)
  while ((std::uint64_t{1} << (2 * max_depth)) < m) ++max_depth;
  if (opts.max_depth_override >= 0) max_depth = opts.max_depth_override;

  // One span for the whole recursion: per-node spans would emit millions of
  // events (the tree has ~E subproblems), so attribution stays at the root.
  obs::Span span("co.recurse");
  span.AddArg("edges", m);
  span.AddArg("max_depth", static_cast<std::uint64_t>(max_depth));
  CoRunner runner(ctx, sink, opts, max_depth, report);
  runner.Recurse(root, {1, 1, 1}, 0);
}

}  // namespace trienum::core
