// Section 6 extension: enumerating 4-cliques with the paper's color-coding
// technique.
//
// The conclusion notes that the §2 cache-aware algorithm "can be extended to
// the enumeration of a given subgraph with k vertices ... (which includes
// k-cliques) with O(E^{k/2}/(M^{k/2-1} B)) expected I/Os": decompose into
// O((E/M)^{k/2}) subproblems of expected size O(M) by the random coloring
// and solve each in memory. This module implements k = 4:
//
//  1. High-degree vertices (deg > sqrt(EM)) are peeled one at a time: the
//     edges E'_x induced on Gamma_x (computed with the Lemma 1 machinery)
//     form a graph whose *triangles* are exactly x's 4-cliques; they are
//     enumerated with the §2 triangle algorithm and x's edges removed — the
//     k-clique analog of step 1, exactly once overall.
//  2. Low-degree edges are colored with c = sqrt(E/M) colors and bucketed.
//  3. For every ordered color 4-tuple, the union of the six buckets
//     E_{tau_i,tau_j} is loaded into internal memory (expected size O(M))
//     and scanned for 4-cliques honoring the color positions; oversized
//     tuples are recursively split with one fresh 4-wise bit (the §3
//     refinement idea) until they fit. Expected cost O(E^2/(MB)).
#ifndef TRIENUM_CORE_CLIQUE4_H_
#define TRIENUM_CORE_CLIQUE4_H_

#include <array>
#include <cstdint>
#include <vector>

#include "graph/normalize.h"

namespace trienum::core {

/// \brief Receiver of 4-clique emissions (a < b < c < d).
class CliqueSink {
 public:
  virtual ~CliqueSink() = default;
  virtual void Emit4(graph::VertexId a, graph::VertexId b, graph::VertexId c,
                     graph::VertexId d) = 0;
};

class CountingCliqueSink : public CliqueSink {
 public:
  void Emit4(graph::VertexId, graph::VertexId, graph::VertexId,
             graph::VertexId) override {
    ++count_;
  }
  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

class CollectingCliqueSink : public CliqueSink {
 public:
  void Emit4(graph::VertexId a, graph::VertexId b, graph::VertexId c,
             graph::VertexId d) override {
    cliques_.push_back({a, b, c, d});
  }
  const std::vector<std::array<graph::VertexId, 4>>& cliques() const {
    return cliques_;
  }

 private:
  std::vector<std::array<graph::VertexId, 4>> cliques_;
};

struct Clique4Options {
  std::uint64_t seed = 0;              ///< 0 = the context's master seed
  double capacity_fraction = 1.0 / 3;  ///< in-memory subproblem budget
};

/// Enumerates every 4-clique of the normalized graph exactly once.
void EnumerateFourCliques(em::QuerySession& ctx, const graph::EmGraph& g,
                          CliqueSink& sink, const Clique4Options& opts = {});

/// Host-memory reference count (verification).
std::uint64_t CountFourCliquesHost(const std::vector<graph::Edge>& edges);

/// The §6 bound E^{k/2}/(M^{k/2-1} B) at k = 4, i.e. E^2/(M B).
double Clique4IoBound(std::size_t num_edges, std::size_t m, std::size_t b);

}  // namespace trienum::core

#endif  // TRIENUM_CORE_CLIQUE4_H_
