// Host-memory ground-truth triangle enumeration (compact-forward /
// edge-iterator with sorted adjacency intersection). Used to verify every EM
// algorithm; not itself part of the measured system.
#ifndef TRIENUM_CORE_REFERENCE_H_
#define TRIENUM_CORE_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace trienum::core {

/// Number of triangles in the (arbitrary, possibly unnormalized) edge list.
std::uint64_t CountTrianglesHost(const std::vector<graph::Edge>& edges);

/// All triangles, each with a < b < c, sorted lexicographically.
std::vector<graph::Triangle> ListTrianglesHost(const std::vector<graph::Edge>& edges);

}  // namespace trienum::core

#endif  // TRIENUM_CORE_REFERENCE_H_
