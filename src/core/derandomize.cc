#include "core/derandomize.h"

#include <cmath>
#include <memory>
#include <tuple>

#include "extsort/ext_merge_sort.h"
#include "extsort/sort_key.h"
#include "hashing/bit_family.h"

namespace trienum::core {
namespace {

using graph::ColoredEdge;
using graph::VertexId;

/// One endpoint incidence within a color class (side 0: v is the smaller
/// endpoint of the edge; side 1: the larger).
struct IncRec {
  std::uint32_t cu = 0, cv = 0;  // class of the incident edge
  VertexId v = 0;                // the vertex this record belongs to
  VertexId other = 0;            // the opposite endpoint
  std::uint32_t side = 0;
  std::uint32_t pad = 0;
};

/// (cu, cv, v) grouping order; radix on the packed class pair, comparator
/// finishes the per-class runs. (other, side) are payload, so the engine's
/// stability keeps the scans deterministic.
struct IncClassLess {
  static constexpr bool kKeyComplete = false;
  static std::uint64_t Key(const IncRec& r) {
    return extsort::PackKey(r.cu, r.cv);
  }
  bool operator()(const IncRec& a, const IncRec& b) const {
    return std::tie(a.cu, a.cv, a.v) < std::tie(b.cu, b.cv, b.v);
  }
};

double Choose2(double n) { return n * (n - 1) / 2.0; }

struct LevelStats {
  double x_total = 0;
  double x_adj = 0;
};

/// X statistics of the *current* coloring (no candidate bit applied).
LevelStats CurrentStats(em::Array<ColoredEdge> ce, em::Array<IncRec> inc) {
  LevelStats s;
  if (ce.empty()) return s;
  {
    ColoredEdge cur = ce.Get(0);
    double cnt = 1;
    for (std::size_t i = 1; i < ce.size(); ++i) {
      ColoredEdge e = ce.Get(i);
      if (e.cu == cur.cu && e.cv == cur.cv) {
        ++cnt;
      } else {
        s.x_total += Choose2(cnt);
        cur = e;
        cnt = 1;
      }
    }
    s.x_total += Choose2(cnt);
  }
  {
    IncRec cur = inc.Get(0);
    double cnt = 1;
    for (std::size_t i = 1; i < inc.size(); ++i) {
      IncRec r = inc.Get(i);
      if (r.cu == cur.cu && r.cv == cur.cv && r.v == cur.v) {
        ++cnt;
      } else {
        s.x_adj += Choose2(cnt);
        cur = r;
        cnt = 1;
      }
    }
    s.x_adj += Choose2(cnt);
  }
  return s;
}

/// X statistics of the coloring refined by candidate bit function `bh`,
/// evaluated with one scan of the class-grouped edges (subclass counts) and
/// one scan of the (class, vertex)-grouped incidences (adjacent pairs).
template <typename BitFn>
LevelStats CandidateStats(em::QuerySession& ctx, em::Array<ColoredEdge> ce,
                          em::Array<IncRec> inc, const BitFn& bh) {
  LevelStats s;
  if (ce.empty()) return s;
  {
    // Subclass counts: each class splits into 4 by (b(u), b(v)).
    double cells[4] = {0, 0, 0, 0};
    ColoredEdge cur = ce.Get(0);
    auto close_run = [&]() {
      for (double& cell : cells) {
        s.x_total += Choose2(cell);
        cell = 0;
      }
    };
    for (std::size_t i = 0; i < ce.size(); ++i) {
      ColoredEdge e = ce.Get(i);
      if (i > 0 && (e.cu != cur.cu || e.cv != cur.cv)) {
        close_run();
        cur = e;
      }
      cells[2 * bh(e.u) + bh(e.v)] += 1;
      ctx.AddWork(2);
    }
    close_run();
  }
  {
    // Adjacent pairs at each (class, vertex): edges where v sits on the same
    // side collide iff the opposite endpoints get equal bits; min-side /
    // max-side cross pairs (possible only in diagonal classes) collide iff
    // both opposite bits equal b(v).
    double lr[2][2] = {{0, 0}, {0, 0}};  // [side][b(other)]
    IncRec cur = inc.Get(0);
    auto close_run = [&]() {
      std::uint32_t bv = bh(cur.v);
      s.x_adj += Choose2(lr[0][0]) + Choose2(lr[0][1]) + Choose2(lr[1][0]) +
                 Choose2(lr[1][1]);
      s.x_adj += lr[0][bv] * lr[1][bv];
      lr[0][0] = lr[0][1] = lr[1][0] = lr[1][1] = 0;
    };
    for (std::size_t i = 0; i < inc.size(); ++i) {
      IncRec r = inc.Get(i);
      if (i > 0 && (r.cu != cur.cu || r.cv != cur.cv || r.v != cur.v)) {
        close_run();
        cur = r;
      }
      lr[r.side][bh(r.other)] += 1;
      ctx.AddWork(2);
    }
    close_run();
  }
  return s;
}

double Potential(const LevelStats& s, int level, std::uint32_t c) {
  double cc = static_cast<double>(c);
  return std::ldexp(s.x_total - s.x_adj, 2 * level) / (cc * cc) +
         std::ldexp(s.x_adj, level) / cc;
}

void SortStructures(em::QuerySession& ctx, em::Array<ColoredEdge> ce,
                    em::Array<IncRec> inc) {
  extsort::ExternalMergeSort(ctx, ce, graph::ColorClassLess{});
  extsort::ExternalMergeSort(ctx, inc, IncClassLess{});
}

void RebuildIncidences(em::Array<ColoredEdge> ce, em::Array<IncRec> inc) {
  for (std::size_t i = 0; i < ce.size(); ++i) {
    ColoredEdge e = ce.Get(i);
    inc.Set(2 * i, IncRec{e.cu, e.cv, e.u, e.v, 0, 0});
    inc.Set(2 * i + 1, IncRec{e.cu, e.cv, e.v, e.u, 1, 0});
  }
}

}  // namespace

DeterministicColoring::DeterministicColoring(std::uint32_t c,
                                             std::vector<std::uint64_t> seeds)
    : c_(c), seeds_(std::move(seeds)) {
  bits_.reserve(seeds_.size());
  for (std::uint64_t s : seeds_) {
    bits_.push_back([h = hashing::FourWiseHash(s)](graph::VertexId v) {
      return h.Bit(v);
    });
  }
}

DeterministicColoring::DeterministicColoring(std::uint32_t c,
                                             std::vector<BitFn> bits)
    : c_(c), bits_(std::move(bits)) {}

std::uint32_t DeterministicColoring::Color(graph::VertexId v) const {
  std::uint32_t idx = 0;
  for (const BitFn& bh : bits_) idx = (idx << 1) | bh(v);
  return idx;
}

std::uint32_t DeterministicColoring::RoundBit(std::size_t r,
                                              graph::VertexId v) const {
  TRIENUM_CHECK(r < bits_.size());
  return bits_[r](v);
}

DeterministicColoring BuildDeterministicColoring(em::QuerySession& ctx,
                                                 em::Array<graph::Edge> edges,
                                                 std::uint32_t c,
                                                 const DerandOptions& opts) {
  TRIENUM_CHECK_MSG((c & (c - 1)) == 0, "color count must be a power of two");
  int levels = 0;
  while ((std::uint32_t{1} << levels) < c) ++levels;
  if (levels == 0 || edges.empty()) {
    return DeterministicColoring(c, std::vector<std::uint64_t>{});
  }
  const double alpha =
      opts.alpha > 0 ? opts.alpha : 1.0 / static_cast<double>(levels);

  auto region = ctx.Region();
  const std::size_t m = edges.size();
  em::Array<ColoredEdge> ce = ctx.Alloc<ColoredEdge>(m);
  for (std::size_t i = 0; i < m; ++i) {
    graph::Edge e = edges.Get(i);
    ce.Set(i, ColoredEdge{e.u, e.v, 1, 1});
  }
  em::Array<IncRec> inc = ctx.Alloc<IncRec>(2 * m);
  RebuildIncidences(ce, inc);
  SortStructures(ctx, ce, inc);

  LevelStats cur = CurrentStats(ce, inc);
  double phi = Potential(cur, 0, c);
  std::vector<std::uint64_t> seeds;
  std::vector<DeterministicColoring::BitFn> bits;
  std::uint64_t tried = 0;

  // Candidate source: the fast deterministic 4-wise schedule, or the
  // genuine AGHP epsilon-biased family of the paper's Lemma 6. The family is
  // shared into the returned bit closures (they reference its GF(2^m)
  // field), so it must outlive the coloring object.
  std::shared_ptr<hashing::AghpFamily> aghp;
  if (opts.use_aghp_family) {
    aghp = std::make_shared<hashing::AghpFamily>(opts.aghp_m);
  }
  auto candidate = [&](int round, std::size_t j) -> DeterministicColoring::BitFn {
    if (aghp != nullptr) {
      // A fixed low-discrepancy walk through the family indices.
      std::uint64_t index =
          (static_cast<std::uint64_t>(round) * 0x9E3779B97F4A7C15ULL +
           j * 0x632BE59BD9B4E019ULL) %
          aghp->size();
      return [fam = aghp, index](graph::VertexId v) {
        return fam->Get(index).Bit(v);
      };
    }
    hashing::FourWiseHash h = hashing::FourWiseBitCandidates::Candidate(
        static_cast<std::uint64_t>(round), j);
    return [h](graph::VertexId v) { return h.Bit(v); };
  };

  for (int round = 1; round <= levels; ++round) {
    const double target = (1.0 + alpha) * phi;
    DeterministicColoring::BitFn best_fn;
    std::uint64_t best_seed = 0;
    double best_phi = -1.0;
    for (std::size_t j = 0; j < opts.max_candidates; ++j) {
      DeterministicColoring::BitFn bh = candidate(round, j);
      ++tried;
      LevelStats cand = CandidateStats(ctx, ce, inc, bh);
      double cand_phi = Potential(cand, round, c);
      if (best_phi < 0 || cand_phi < best_phi) {
        best_phi = cand_phi;
        best_fn = bh;
        best_seed = j;
      }
      if (cand_phi <= target) break;  // first fit, as in the greedy argument
    }
    seeds.push_back(best_seed);
    bits.push_back(best_fn);
    phi = best_phi;

    // Apply the accepted bit: refine colors, rebuild and re-sort by class.
    for (std::size_t i = 0; i < m; ++i) {
      ColoredEdge e = ce.Get(i);
      e.cu = 2 * e.cu - best_fn(e.u);
      e.cv = 2 * e.cv - best_fn(e.v);
      ce.Set(i, e);
    }
    RebuildIncidences(ce, inc);
    SortStructures(ctx, ce, inc);
  }

  DeterministicColoring out(c, std::move(bits));
  out.set_round_seeds(std::move(seeds));
  out.set_final_potential(phi);  // at the last level the potential IS X_xi
  out.set_candidates_tried(tried);
  return out;
}

}  // namespace trienum::core
