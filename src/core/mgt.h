// The Hu-Tao-Chung "massive graph triangulation" algorithm (SIGMOD 2013),
// adapted to enumeration as in the paper: Lemma 2 applied with E' = E, for a
// total of O(E/B + E^2/(MB)) I/Os. This is the main prior-art comparator the
// paper improves on by a factor min(sqrt(E/M), sqrt(M)).
//
// Host compute (the Lemma 2 cone probes, which dominate mgt's wall clock)
// fans out over the src/par/ pool when par::SetThreads(N > 1) is active;
// the I/O charge sequence — and therefore MgtIoBound's accounting — is
// unaffected at any thread count (see pivot_enum.h).
#ifndef TRIENUM_CORE_MGT_H_
#define TRIENUM_CORE_MGT_H_

#include "core/pivot_enum.h"
#include "core/sink.h"
#include "graph/normalize.h"

namespace trienum::core {

struct MgtOptions {
  /// Fraction alpha of internal memory holding the resident pivot chunk.
  double chunk_fraction = 1.0 / 8.0;
};

/// Enumerates every triangle of the normalized graph `g`.
void EnumerateMgt(em::QuerySession& ctx, const graph::EmGraph& g, TriangleSink& sink,
                  const MgtOptions& opts = {});

/// Predicted I/O cost O(E/B + E^2/(MB)) with the implementation's constants
/// (for bound tests and benches).
double MgtIoBound(std::size_t num_edges, std::size_t m, std::size_t b,
                  double chunk_fraction = 1.0 / 8.0);

}  // namespace trienum::core

#endif  // TRIENUM_CORE_MGT_H_
