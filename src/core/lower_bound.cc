#include "core/lower_bound.h"

#include <algorithm>
#include <cmath>

namespace trienum::core {

double MaxTrianglesWithEdges(double m) {
  return std::pow(2.0 * m, 1.5) / 6.0;
}

double IoLowerBound(std::uint64_t t, std::size_t m, std::size_t b) {
  double td = static_cast<double>(t);
  double bd = static_cast<double>(b);
  return td / (std::sqrt(static_cast<double>(m)) * bd) +
         std::pow(td, 2.0 / 3.0) / bd;
}

double IoLowerBoundEpoch(std::uint64_t t, std::size_t m, std::size_t b) {
  double td = static_cast<double>(t);
  double md = static_cast<double>(m);
  double bd = static_cast<double>(b);
  // Per the proof's simulation: epochs of M/B I/Os on memory 2M; each epoch
  // emits at most T(2M) = (4M)^{3/2}/6 distinct triangles.
  double per_epoch = MaxTrianglesWithEdges(2.0 * md);
  double epochs = std::floor(td / per_epoch);
  double term1 = epochs * (md / bd);
  double term2 = std::pow(td, 2.0 / 3.0) / bd;
  return std::max(term1, term2);
}

std::uint64_t CliqueTriangles(std::uint64_t k) {
  if (k < 3) return 0;
  return k * (k - 1) * (k - 2) / 6;
}

}  // namespace trienum::core
