#include "core/dementiev.h"

#include <cmath>

#include "extsort/io_bounds.h"
#include "obs/trace.h"

namespace trienum::core {

void EnumerateDementiev(em::QuerySession& ctx, const graph::EmGraph& g,
                        TriangleSink& sink) {
  obs::Span span("dementiev.wedge_join");
  span.AddArg("edges", g.num_edges());
  WedgeJoinEnumerate<graph::Edge>(
      ctx, g.edges, extsort::AwareSorter{},
      [](const graph::Triangle&, std::uint32_t, std::uint32_t, std::uint32_t) {
        return true;
      },
      sink);
}

double DementievIoBound(std::size_t num_edges, std::size_t m, std::size_t b) {
  // sort(E^{3/2}) on 3-word wedge records, plus lower-order sorts of E.
  double e = static_cast<double>(num_edges);
  double wedges = std::pow(e, 1.5);
  return extsort::SortIoBound(static_cast<std::size_t>(wedges), 3, m, b) +
         4.0 * extsort::SortIoBound(num_edges, 3, m, b);
}

}  // namespace trienum::core
