// Theorem 3: any algorithm enumerating t distinct triangles performs
// Omega(t / (sqrt(M) B) + t^{2/3} / B) I/Os, even in the best case.
//
// The proof simulates any execution in epochs of M/B I/Os on a doubled
// memory; within an epoch at most O(M^{3/2}) distinct triangles can be
// emitted (at most 2M edges are touchable, and by Kruskal-Katona a graph
// with m edges has at most (2m)^{3/2}/6 triangles), and Omega(t^{2/3})
// edges must be read overall. These functions evaluate both the clean
// asymptotic form and the constant-explicit epoch form, so benches can
// report the true optimality *gap* of each algorithm.
#ifndef TRIENUM_CORE_LOWER_BOUND_H_
#define TRIENUM_CORE_LOWER_BOUND_H_

#include <cstddef>
#include <cstdint>

namespace trienum::core {

/// Kruskal-Katona: the maximum number of triangles in a graph of m edges,
/// (2m)^{3/2} / 6 (attained by cliques).
double MaxTrianglesWithEdges(double m);

/// Asymptotic lower-bound form t/(sqrt(M)*B) + t^{2/3}/B (no constants).
double IoLowerBound(std::uint64_t t, std::size_t m, std::size_t b);

/// Constant-explicit epoch-argument bound: floor(t / T(2M)) * (M/B) with
/// T(x) = (2x)^{3/2}/6 the per-epoch emission cap, combined with the
/// t^{2/3}/B edge-reading term.
double IoLowerBoundEpoch(std::uint64_t t, std::size_t m, std::size_t b);

/// Number of triangles in K_k (the lower-bound witness family).
std::uint64_t CliqueTriangles(std::uint64_t k);

}  // namespace trienum::core

#endif  // TRIENUM_CORE_LOWER_BOUND_H_
