// Section 3: the cache-oblivious randomized algorithm (Theorem 1) —
// O(E^{3/2} / (sqrt(M) B)) expected I/Os without ever reading M or B.
//
// The generalized (c0,c1,c2)-enumeration problem is solved recursively:
//   1. triangles through "local high degree" vertices (degree >= E/8 within
//      the subproblem; at most 16 of them) are enumerated with Lemma 1
//      (using funnelsort) and those vertices' edges removed;
//   2. one fresh 4-wise-independent random bit refines the coloring,
//      xi'(v) = 2*xi(v) - b(v);
//   3. the 8 child color vectors in {2c0-1,2c0}x{2c1-1,2c1}x{2c2-1,2c2} are
//      solved recursively on the compatible-edge subsets.
// Recursion ends at depth log4(E) with Dementiev's sort/scan algorithm
// (funnelsort flavor) filtered to proper triangles. Triangle enumeration is
// the (1,1,1)-problem under the constant coloring.
#ifndef TRIENUM_CORE_CACHE_OBLIVIOUS_H_
#define TRIENUM_CORE_CACHE_OBLIVIOUS_H_

#include <cstdint>

#include "core/sink.h"
#include "graph/normalize.h"

namespace trienum::core {

struct CacheObliviousOptions {
  /// Seed for the per-node refinement bits; 0 means the context's seed.
  std::uint64_t seed = 0;
  /// Ablation: skip a child whose edge set misses one of the three slot
  /// classes its proper triangles would need (not in the paper; default off).
  bool prune_empty_slots = false;
  /// Fall to the base case when a subproblem has at most this many edges,
  /// in addition to the paper's depth-log4(E) rule. The paper's analysis
  /// already treats constant-size subproblems as free (its degenerate
  /// high-degree step empties them); terminating them in one wedge join is
  /// semantically identical and keeps the simulated constants honest.
  /// 0 = paper-exact depth-only termination (ablation bench EXP-AB).
  std::size_t base_cutoff = 16;
  /// Override of the maximum recursion depth (< 0 = the paper's log4(E)).
  int max_depth_override = -1;
};

/// Statistics of one run, for the recursion-shape benches.
struct CacheObliviousReport {
  std::uint64_t subproblems = 0;       ///< recursion nodes entered
  std::uint64_t base_cases = 0;        ///< Dementiev leaves executed
  std::uint64_t high_degree_calls = 0; ///< Lemma-1 invocations
  std::uint64_t total_child_edges = 0; ///< sum of child edge-set sizes
  int max_depth_reached = 0;
};

/// Enumerates all triangles of `g`, cache-obliviously.
void EnumerateCacheOblivious(em::QuerySession& ctx, const graph::EmGraph& g,
                             TriangleSink& sink,
                             const CacheObliviousOptions& opts = {},
                             CacheObliviousReport* report = nullptr);

}  // namespace trienum::core

#endif  // TRIENUM_CORE_CACHE_OBLIVIOUS_H_
