// EXP-T1 / EXP-T2 / EXP-T4 — I/O scaling in E at fixed (M, B).
//
// Paper claims: the three Pagh-Silvestri algorithms cost
// O(E^{3/2}/(sqrt(M)B)) I/Os (Theorems 1, 2, 4); MGT costs O(E^2/(MB));
// Dementiev sort(E^{3/2}); the edge iterator O(E + E^{3/2}/B).
// Each row reports measured I/Os and the measured/bound ratio against the
// algorithm's own bound — a flat `io_over_bound` column across the E sweep
// is the reproduction of the claimed exponent.
#include "bench_util.h"
#include "core/cache_aware.h"
#include "core/dementiev.h"
#include "core/edge_iterator.h"
#include "core/mgt.h"

namespace trienum::bench {
namespace {

constexpr std::size_t kM = 1 << 10;
constexpr std::size_t kB = 16;

double BoundFor(const std::string& algo, std::size_t e) {
  if (algo == "mgt") return core::MgtIoBound(e, kM, kB);
  if (algo == "dementiev") return core::DementievIoBound(e, kM, kB);
  if (algo == "edge-iterator") return core::EdgeIteratorIoBound(e, kB);
  return core::PaghSilvestriIoBound(e, kM, kB);
}

void BM_ScalingE(benchmark::State& state, const std::string& algo) {
  const std::size_t e = static_cast<std::size_t>(state.range(0));
  auto raw = graph::Gnm(static_cast<graph::VertexId>(e / 4), e, 1001);
  RunOutcome out;
  for (auto _ : state) {
    out = MeasureAlgorithm(algo, raw, kM, kB);
  }
  ReportIo(state, out, BoundFor(algo, e));
  state.counters["E"] = static_cast<double>(e);
  state.counters["M"] = static_cast<double>(kM);
}

#define SCALING_E(algo_id, algo_name)                                   \
  BENCHMARK_CAPTURE(BM_ScalingE, algo_id, algo_name)                    \
      ->RangeMultiplier(2)                                              \
      ->Range(1 << 12, 1 << 16)                                         \
      ->Iterations(1)                                                   \
      ->Unit(benchmark::kMillisecond)

SCALING_E(ps_cache_aware, "ps-cache-aware");
SCALING_E(ps_cache_oblivious, "ps-cache-oblivious");
SCALING_E(ps_deterministic, "ps-deterministic");
SCALING_E(mgt, "mgt");
SCALING_E(chu_cheng, "chu-cheng");
SCALING_E(dementiev, "dementiev");
SCALING_E(edge_iterator, "edge-iterator");

#undef SCALING_E

}  // namespace
}  // namespace trienum::bench
