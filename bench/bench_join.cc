// EXP-JOIN — the introduction's database application: reconstructing a
// 5NF-decomposed Sells table as a ternary natural join, driven by triangle
// enumeration vs. the block-nested-loop join plan. Reports output tuples and
// the I/O cost of each plan.
#include <benchmark/benchmark.h>

#include "bench_threads.h"

#include "common/rng.h"
#include "join/relation.h"
#include "join/triangle_join.h"

namespace trienum::bench {
namespace {

// Product-form Sells instance: `people` salespeople, each selling all
// products in a random brand-set x type-set rectangle.
std::vector<join::Tuple3> MakeSells(int people, int brands, int types,
                                    std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<join::Tuple3> out;
  for (int p = 0; p < people; ++p) {
    for (int b = 0; b < brands; ++b) {
      if (rng.NextDouble() >= 0.3) continue;
      for (int t = 0; t < types; ++t) {
        if (rng.NextDouble() < 0.4) {
          out.push_back(join::Tuple3{static_cast<std::uint32_t>(p),
                                     static_cast<std::uint32_t>(1000 + b),
                                     static_cast<std::uint32_t>(2000 + t)});
        }
      }
    }
  }
  return out;
}

void BM_TriangleJoin(benchmark::State& state, const std::string& algo) {
  const int people = static_cast<int>(state.range(0));
  join::Decomposition d =
      join::Decompose(MakeSells(people, 48, 32, 1014));
  join::TriangleJoinStats stats;
  std::size_t tuples = 0;
  for (auto _ : state) {
    em::EmConfig cfg;
    cfg.memory_words = 1 << 10;
    cfg.block_words = 16;
    em::Context ctx(cfg);
    auto result = join::TriangleJoin(ctx, d, algo, &stats);
    tuples = result.ok() ? result->size() : 0;
  }
  state.counters["people"] = static_cast<double>(people);
  state.counters["relation_rows"] = static_cast<double>(
      d.ab.rows.size() + d.bc.rows.size() + d.ac.rows.size());
  state.counters["output_tuples"] = static_cast<double>(tuples);
  state.counters["join_ios"] = static_cast<double>(stats.io.total_ios());
}

BENCHMARK_CAPTURE(BM_TriangleJoin, ps_cache_aware, "ps-cache-aware")
    ->Arg(64)->Arg(128)->Arg(256)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TriangleJoin, ps_cache_oblivious, "ps-cache-oblivious")
    ->Arg(64)->Arg(128)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TriangleJoin, mgt, "mgt")
    ->Arg(64)->Arg(128)->Arg(256)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TriangleJoin, bnl, "bnl")
    ->Arg(64)->Arg(128)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace trienum::bench
