// EXP-W — the §1.2 work-optimality remark: all three Pagh-Silvestri
// algorithms perform O(E^{3/2}) RAM operations, matching the Omega(t) output
// bound on the witness family. `work_over_E15` should stay flat as E grows.
#include <cmath>

#include "bench_util.h"

namespace trienum::bench {
namespace {

constexpr std::size_t kM = 1 << 10;
constexpr std::size_t kB = 16;

void BM_Work(benchmark::State& state, const std::string& algo) {
  const std::size_t e = static_cast<std::size_t>(state.range(0));
  auto raw = graph::Gnm(static_cast<graph::VertexId>(e / 4), e, 1010);
  RunOutcome out;
  for (auto _ : state) {
    out = MeasureAlgorithm(algo, raw, kM, kB);
  }
  double e15 = std::pow(static_cast<double>(e), 1.5);
  state.counters["E"] = static_cast<double>(e);
  state.counters["work"] = static_cast<double>(out.work);
  state.counters["work_over_E15"] = static_cast<double>(out.work) / e15;
  state.counters["triangles"] = static_cast<double>(out.triangles);
}

#define WORK(algo_id, algo_name)                                        \
  BENCHMARK_CAPTURE(BM_Work, algo_id, algo_name)                        \
      ->RangeMultiplier(4)                                              \
      ->Range(1 << 12, 1 << 16)                                         \
      ->Iterations(1)                                                   \
      ->Unit(benchmark::kMillisecond)

WORK(ps_cache_aware, "ps-cache-aware");
WORK(ps_cache_oblivious, "ps-cache-oblivious");
WORK(ps_deterministic, "ps-deterministic");

#undef WORK

}  // namespace
}  // namespace trienum::bench
