#!/usr/bin/env bash
# Runs every built bench binary with --benchmark_format=json, writing one
# BENCH_<name>.json per bench into the output directory — the perf trajectory
# the repo accumulates across PRs.
#
#   $ cmake -B build -S . -DTRIENUM_BUILD_BENCHMARKS=ON
#   $ cmake --build build -j
#   $ bench/run_benches.sh [build-dir] [out-dir] [extra benchmark args...]
set -euo pipefail

build_dir="${1:-build}"
out_dir="${2:-.}"
shift $(( $# > 2 ? 2 : $# )) || true

bench_dir="${build_dir}/bench"
if [[ ! -d "${bench_dir}" ]]; then
  echo "error: ${bench_dir} not found." >&2
  echo "Configure with -DTRIENUM_BUILD_BENCHMARKS=ON and build first." >&2
  exit 1
fi

# bench_backends (simulated vs. real storage I/O) anchors the real-I/O
# trajectory; refuse to emit a partial set without it.
if [[ ! -x "${bench_dir}/bench_backends" ]]; then
  echo "error: ${bench_dir}/bench_backends not built; rebuild the tree" >&2
  exit 1
fi

mkdir -p "${out_dir}"
found=0
for bin in "${bench_dir}"/bench_*; do
  [[ -f "${bin}" && -x "${bin}" ]] || continue
  found=1
  name="$(basename "${bin}")"
  out="${out_dir}/BENCH_${name#bench_}.json"
  echo "== ${name} -> ${out}"
  "${bin}" --benchmark_format=json "$@" > "${out}"
done

if [[ "${found}" -eq 0 ]]; then
  echo "error: no bench_* executables in ${bench_dir}" >&2
  exit 1
fi
echo "done. (BENCH_backends.json carries the simulated-vs-real I/O counters.)"
