#!/usr/bin/env bash
# Runs every built bench binary with --benchmark_format=json, writing one
# BENCH_<name>.json per bench into the output directory — the perf trajectory
# the repo accumulates across PRs.
#
#   $ cmake -B build -S . -DTRIENUM_BUILD_BENCHMARKS=ON
#   $ cmake --build build -j
#   $ bench/run_benches.sh [build-dir] [out-dir] [extra benchmark args...]
#
# Every emitted JSON's context records the host core count and the default
# par-pool thread count (TRIENUM_BENCH_THREADS, default 1) so the committed
# trajectory stays comparable across machines; bench_parallel additionally
# sweeps explicit per-case thread counts as a `threads` counter.
set -euo pipefail

build_dir="${1:-build}"
out_dir="${2:-.}"
shift $(( $# > 2 ? 2 : $# )) || true

bench_dir="${build_dir}/bench"
if [[ ! -d "${bench_dir}" ]]; then
  echo "error: ${bench_dir} not found." >&2
  echo "Configure with -DTRIENUM_BUILD_BENCHMARKS=ON and build first." >&2
  exit 1
fi

# bench_backends (simulated vs. real storage I/O) anchors the real-I/O
# trajectory; refuse to emit a partial set without it.
if [[ ! -x "${bench_dir}/bench_backends" ]]; then
  echo "error: ${bench_dir}/bench_backends not built; rebuild the tree" >&2
  exit 1
fi

mkdir -p "${out_dir}"

# Every benchmark entry carries wall_ms: benches that measure the run
# themselves report it as a counter; for the rest, derive it from
# google-benchmark's real_time so the committed perf trajectory always has
# a comparable wall-clock column. Also stamps machine/knob provenance into
# the JSON context.
postprocess() {
  python3 - "$1" <<'PYEOF'
import json, os, sys
path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}
for b in doc.get("benchmarks", []):
    if "wall_ms" not in b:
        b["wall_ms"] = b.get("real_time", 0.0) * scale.get(b.get("time_unit", "ns"), 1e-6)
# Parallel-scaling provenance: how many cores this machine has and what the
# pool default was (per-case sweeps report their own `threads` counter).
# The prefetch depth is stamped the same way (TRIENUM_BENCH_PREFETCH,
# default 0); bench_prefetch additionally sweeps explicit per-case depths
# as a `depth` counter. `traced` records whether a TraceCollector was
# installed for the run (TRIENUM_BENCH_TRACE=1).
ctx = doc.setdefault("context", {})
ctx["host_cores"] = os.cpu_count() or 1
ctx["threads"] = int(os.environ.get("TRIENUM_BENCH_THREADS", "1"))
ctx["prefetch"] = int(os.environ.get("TRIENUM_BENCH_PREFETCH", "0"))
ctx["traced"] = int(os.environ.get("TRIENUM_BENCH_TRACE", "0") not in ("", "0"))
with open(path, "w") as f:
    json.dump(doc, f, indent=1)
missing = [b["name"] for b in doc.get("benchmarks", []) if "wall_ms" not in b]
if missing:
    sys.exit(f"wall_ms missing for: {missing}")
PYEOF
}

found=0
for bin in "${bench_dir}"/bench_*; do
  [[ -f "${bin}" && -x "${bin}" ]] || continue
  found=1
  name="$(basename "${bin}")"
  out="${out_dir}/BENCH_${name#bench_}.json"
  echo "== ${name} -> ${out}"
  "${bin}" --benchmark_format=json "$@" > "${out}"
  postprocess "${out}"
done

if [[ "${found}" -eq 0 ]]; then
  echo "error: no bench_* executables in ${bench_dir}" >&2
  exit 1
fi

# The observability overhead probe: the session bench again, this time with
# a TraceCollector installed (spans recording, sampler attributing). CI
# gates BENCH_session_traced.json against BENCH_session.json at 1.05x —
# tracing must be nearly free or the always-on seams are mis-placed.
if [[ -x "${bench_dir}/bench_session" ]]; then
  out="${out_dir}/BENCH_session_traced.json"
  echo "== bench_session (traced) -> ${out}"
  TRIENUM_BENCH_TRACE=1 "${bench_dir}/bench_session" \
    --benchmark_format=json "$@" > "${out}"
  postprocess "${out}"
fi

echo "done. (BENCH_backends.json carries the simulated-vs-real I/O counters;"
echo " BENCH_hotpath.json the buffered-vs-element-wise wall-clock ratios;"
echo " BENCH_session_traced.json the tracing-overhead probe.)"
