// EXP-M — I/O scaling in M at fixed (E, B).
//
// Paper claim: the Pagh-Silvestri algorithms scale as 1/sqrt(M) while MGT
// scales as 1/M; the improvement factor over MGT is min(sqrt(E/M), sqrt(M)).
// The `io_x_sqrtM` column (measured I/Os * sqrt(M)) should be flat for the
// paper's algorithms; `io_x_M` should be flat for MGT.
#include <cmath>

#include "bench_util.h"
#include "core/cache_aware.h"
#include "core/mgt.h"

namespace trienum::bench {
namespace {

constexpr std::size_t kE = 1 << 15;
constexpr std::size_t kB = 16;

void BM_ScalingM(benchmark::State& state, const std::string& algo) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  auto raw = graph::Gnm(1 << 13, kE, 1002);
  RunOutcome out;
  for (auto _ : state) {
    out = MeasureAlgorithm(algo, raw, m, kB);
  }
  double bound = algo == "mgt" ? core::MgtIoBound(kE, m, kB)
                               : core::PaghSilvestriIoBound(kE, m, kB);
  ReportIo(state, out, bound);
  state.counters["M"] = static_cast<double>(m);
  state.counters["io_x_sqrtM"] =
      static_cast<double>(out.io.total_ios()) * std::sqrt(static_cast<double>(m));
  state.counters["io_x_M"] =
      static_cast<double>(out.io.total_ios()) * static_cast<double>(m);
}

#define SCALING_M(algo_id, algo_name)                                   \
  BENCHMARK_CAPTURE(BM_ScalingM, algo_id, algo_name)                    \
      ->RangeMultiplier(4)                                              \
      ->Range(1 << 8, 1 << 14)                                          \
      ->Iterations(1)                                                   \
      ->Unit(benchmark::kMillisecond)

SCALING_M(ps_cache_aware, "ps-cache-aware");
SCALING_M(ps_cache_oblivious, "ps-cache-oblivious");
SCALING_M(ps_deterministic, "ps-deterministic");
SCALING_M(mgt, "mgt");

#undef SCALING_M

}  // namespace
}  // namespace trienum::bench
