// Intersection-kernel benchmarks: the two-regime split (blocked merge vs
// dense bitmap) measured per kernel variant, plus the end-to-end A/B that
// the committed BENCH_intersect.json records — the same algorithm run with
// kernels forced scalar and with the best available vectorized policy.
// Every kernel mode produces bit-identical results, IoStats, and work
// counters (tests/test_simd_invariance.cc pins that), so the wall-clock
// ratio here is the whole story of what the src/simd/ subsystem buys.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "simd/intersect.h"
#include "simd/kernel_policy.h"

namespace trienum::bench {
namespace {

using simd::KernelMode;

// Sorted unique u32 set of `n` values with roughly `stride` spacing.
std::vector<std::uint32_t> MakeSet(std::size_t n, std::uint32_t stride,
                                   std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<std::uint32_t> v;
  v.reserve(n);
  std::uint32_t cur = static_cast<std::uint32_t>(rng.Next() % 17);
  for (std::size_t i = 0; i < n; ++i) {
    cur += 1 + static_cast<std::uint32_t>(rng.Next() % (2 * stride));
    v.push_back(cur);
  }
  return v;
}

KernelMode ModeOf(const benchmark::State& state) {
  switch (state.range(0)) {
    case 0: return KernelMode::kScalar;
    case 1: return KernelMode::kSwar;
    default: return KernelMode::kAuto;
  }
}

void SetVariantLabel(benchmark::State& state) {
  state.SetLabel(simd::KernelVariantName(simd::ActiveVariant()));
}

// --- Merge regime: sorted-array intersection per variant --------------------

void BM_MergeIntersect(benchmark::State& state, std::size_t n,
                       std::uint32_t stride) {
  simd::ScopedKernelMode kscope(ModeOf(state));
  // Overlapping strides: both sets draw from the same value range, so the
  // match density is data-typical rather than degenerate.
  const std::vector<std::uint32_t> a = MakeSet(n, stride, 0xBEEF01);
  const std::vector<std::uint32_t> b = MakeSet(n, stride, 0xBEEF02);
  std::vector<std::uint32_t> out(n + simd::kOutSlack);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    const simd::IntersectStats st = simd::IntersectSorted(
        a.data(), a.size(), b.data(), b.size(), out.data());
    acc += st.matches;
    benchmark::DoNotOptimize(acc);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * n) *
                          state.iterations());
  SetVariantLabel(state);
}

#define MERGE_BENCH(id, n, stride)                          \
  BENCHMARK_CAPTURE(BM_MergeIntersect, id, n, stride)       \
      ->Arg(0)                                              \
      ->Arg(1)                                              \
      ->Arg(2)                                              \
      ->Unit(benchmark::kMicrosecond)

MERGE_BENCH(dense_4k, std::size_t{1} << 12, 2);     // ~50% match rate
MERGE_BENCH(dense_64k, std::size_t{1} << 16, 2);
MERGE_BENCH(sparse_4k, std::size_t{1} << 12, 64);   // rare matches, long skips
MERGE_BENCH(sparse_64k, std::size_t{1} << 16, 64);

#undef MERGE_BENCH

// --- Dense regime: bitmap probe and popcount-AND per variant ----------------

void BM_BitmapProbe(benchmark::State& state) {
  simd::ScopedKernelMode kscope(ModeOf(state));
  // A dense hub set (unit-ish stride) probed by many short runs — the shape
  // ChooseRegime routes to the bitmap.
  const std::size_t hub = std::size_t{1} << 14;
  const std::vector<std::uint32_t> dense = MakeSet(hub, 1, 0xD0D0);
  simd::DenseBitmap bitmap;
  bitmap.Build(dense.data(), dense.size());
  const std::size_t n = std::size_t{1} << 12;
  const std::vector<std::uint32_t> probe = MakeSet(n, 3, 0xD0D1);
  std::vector<std::uint32_t> out(n + simd::kOutSlack);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc += bitmap.Probe(probe.data(), probe.size(), out.data());
    benchmark::DoNotOptimize(acc);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
  SetVariantLabel(state);
}
BENCHMARK(BM_BitmapProbe)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

void BM_BitmapCountAnd(benchmark::State& state) {
  simd::ScopedKernelMode kscope(ModeOf(state));
  const std::size_t hub = std::size_t{1} << 15;
  const std::vector<std::uint32_t> a = MakeSet(hub, 1, 0xC0C0);
  const std::vector<std::uint32_t> b = MakeSet(hub, 1, 0xC0C1);
  simd::DenseBitmap ba, bb;
  ba.Build(a.data(), a.size());
  bb.Build(b.data(), b.size());
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc += ba.CountAnd(bb);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(hub) * state.iterations());
  SetVariantLabel(state);
}
BENCHMARK(BM_BitmapCountAnd)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond);

// --- Flat-map probe batches (the pivot-cone hot loop) -----------------------

void BM_FlatMapProbe(benchmark::State& state) {
  simd::ScopedKernelMode kscope(ModeOf(state));
  // The FlatVertexMap layout: power-of-two table, multiplicative hash,
  // 0xFFFFFFFF marks empty. Half-full, like the resident-chunk role maps.
  const std::uint32_t kEmpty = 0xFFFFFFFFu;
  const std::size_t cap = std::size_t{1} << 15;
  const std::uint32_t mask = static_cast<std::uint32_t>(cap - 1);
  std::vector<std::uint32_t> keys(cap, kEmpty), vals(cap, kEmpty);
  SplitMix64 rng(0xF1A7);
  std::vector<std::uint32_t> inserted;
  for (std::size_t i = 0; i < cap / 2; ++i) {
    const std::uint32_t k = static_cast<std::uint32_t>(rng.Next()) & 0x0FFFFFFF;
    std::uint32_t slot = (k * 0x9E3779B1u) & mask;
    while (vals[slot] != kEmpty && keys[slot] != k) slot = (slot + 1) & mask;
    if (vals[slot] == kEmpty) inserted.push_back(k);
    keys[slot] = k;
    vals[slot] = static_cast<std::uint32_t>(i);
  }
  // Query mix: half hits drawn from the inserted keys, half misses.
  const std::size_t n = std::size_t{1} << 12;
  std::vector<std::uint32_t> queries(n);
  for (std::size_t i = 0; i < n; ++i) {
    queries[i] = (i & 1) ? inserted[rng.Next() % inserted.size()]
                         : (static_cast<std::uint32_t>(rng.Next()) | 0x10000000);
  }
  std::vector<std::uint32_t> out(n);
  for (auto _ : state) {
    simd::ProbeFlatMapU32(keys.data(), vals.data(), mask, queries.data(), n,
                          out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
  SetVariantLabel(state);
}
BENCHMARK(BM_FlatMapProbe)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

// --- End-to-end A/B: kernels off vs on --------------------------------------

void BM_EndToEndKernels(benchmark::State& state, const std::string& algo) {
  simd::ScopedKernelMode kscope(ModeOf(state));
  const std::size_t e = std::size_t{1} << 16;
  auto raw = graph::Rmat(14, e, 0.45, 0.22, 0.22, 77);
  RunOutcome out;
  for (auto _ : state) {
    out = MeasureAlgorithm(algo, raw, /*m_words=*/std::size_t{1} << 14,
                           /*b_words=*/64);
  }
  state.counters["wall_ms"] = out.wall_ms;
  state.counters["ios"] = static_cast<double>(out.io.total_ios());
  state.counters["triangles"] = static_cast<double>(out.triangles);
  state.counters["work"] = static_cast<double>(out.work);
  SetVariantLabel(state);
}

#define KERNEL_E2E(id, algo)                       \
  BENCHMARK_CAPTURE(BM_EndToEndKernels, id, algo)  \
      ->Arg(0)                                     \
      ->Arg(2)                                     \
      ->Iterations(1)                              \
      ->Unit(benchmark::kMillisecond)

KERNEL_E2E(mgt, "mgt");
KERNEL_E2E(ps_cache_aware, "ps-cache-aware");
KERNEL_E2E(edge_iterator, "edge-iterator");

#undef KERNEL_E2E

}  // namespace
}  // namespace trienum::bench
