// Amortized query latency of the session architecture: answering k queries
// over one LoadedGraph (ingest + normalize once, cold cache per query)
// versus k full single-query runs (fresh context, re-ingest, re-normalize
// every time). The gap is exactly the load cost the query layer amortizes;
// per-query I/O is bit-identical on both sides by the session-reuse
// contract, so the counters double as a standing check that reuse never
// drifts. BENCH_session.json commits the amortization curve (k = 1, 4, 16).
// With TRIENUM_BENCH_TRACE=1 every iteration runs with a TraceCollector
// installed (spans recording, sampler attributing, histograms windowed).
// bench/run_benches.sh writes that mode to BENCH_session_traced.json and CI
// gates it against the untraced BENCH_session.json: tracing must cost <= 5%
// wall clock, or the "bit-invisible and cheap" contract is broken.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/trace.h"
#include "query/query.h"

namespace trienum::bench {
namespace {

/// The process-wide collector for traced mode, or nullptr when untraced.
/// Static storage: installed once, lives for the whole bench process.
obs::TraceCollector* BenchCollector() {
  static obs::TraceCollector* tc = []() -> obs::TraceCollector* {
    const char* env = std::getenv("TRIENUM_BENCH_TRACE");
    if (env == nullptr || env[0] == '\0' || std::string(env) == "0") {
      return nullptr;
    }
    static obs::TraceCollector collector;
    obs::InstallTraceCollector(&collector);
    return &collector;
  }();
  return tc;
}

constexpr std::size_t kMemWords = 4096;
constexpr std::size_t kBlockWords = 64;
constexpr std::uint64_t kSeed = 0xB0B;

std::vector<graph::Edge> BenchEdges() {
  return graph::Rmat(10, 8192, 0.45, 0.22, 0.22, 7);
}

em::EmConfig BenchConfig() {
  em::EmConfig cfg;
  cfg.memory_words = kMemWords;
  cfg.block_words = kBlockWords;
  cfg.seed = kSeed;
  return cfg;
}

/// Load once, answer k count queries through the reused session.
void BM_SessionLoadOncePlusKQueries(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const std::vector<graph::Edge> raw = BenchEdges();
  query::Query q;
  q.algo = "ps-cache-aware";

  double wall_ms = 0;
  std::uint64_t triangles = 0;
  em::IoStats per_query_io;
  for (auto _ : state) {
    // Traced mode: drop the previous iteration's events so the recording
    // buffer stays bounded (the cost measured is span capture, not realloc).
    if (obs::TraceCollector* tc = BenchCollector()) tc->Clear();
    auto t0 = std::chrono::steady_clock::now();
    query::LoadedGraph lg = *query::LoadedGraph::FromEdges(BenchConfig(), raw);
    for (std::size_t i = 0; i < k; ++i) {
      query::QueryResult r = *lg.Run(q);
      triangles = r.triangles;
      // Session-reuse sanity: every query in the batch must charge the same
      // I/Os as the first (the bit-identity contract, kept hot in the bench).
      if (i == 0) {
        per_query_io = r.io;
      } else {
        TRIENUM_CHECK(r.io.block_reads == per_query_io.block_reads &&
                      r.io.block_writes == per_query_io.block_writes &&
                      r.io.cache_hits == per_query_io.cache_hits);
      }
    }
    auto t1 = std::chrono::steady_clock::now();
    wall_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["wall_ms"] = wall_ms / iters;
  state.counters["per_query_ms"] =
      wall_ms / iters / static_cast<double>(k);
  state.counters["ios_per_query"] =
      static_cast<double>(per_query_io.total_ios());
  state.counters["triangles"] = static_cast<double>(triangles);
  state.SetLabel("load_once");
}
BENCHMARK(BM_SessionLoadOncePlusKQueries)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

/// The baseline it amortizes against: k independent full runs, each paying
/// ingest + normalize again.
void BM_SessionKFullRuns(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const std::vector<graph::Edge> raw = BenchEdges();

  double wall_ms = 0;
  RunOutcome out;
  for (auto _ : state) {
    if (obs::TraceCollector* tc = BenchCollector()) tc->Clear();
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < k; ++i) {
      out = MeasureAlgorithm("ps-cache-aware", raw, kMemWords, kBlockWords,
                             kSeed);
    }
    auto t1 = std::chrono::steady_clock::now();
    wall_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["wall_ms"] = wall_ms / iters;
  state.counters["per_query_ms"] =
      wall_ms / iters / static_cast<double>(k);
  state.counters["ios_per_query"] = static_cast<double>(out.io.total_ios());
  state.counters["triangles"] = static_cast<double>(out.triangles);
  state.SetLabel("full_runs");
}
BENCHMARK(BM_SessionKFullRuns)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace trienum::bench
