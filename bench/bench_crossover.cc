// EXP-X — the improvement-factor table of the paper's abstract: the
// Pagh-Silvestri algorithms improve on O(E^2/(MB)) (MGT) by
// min(sqrt(E/M), sqrt(M)), and on block-nested-loop joins by far more.
//
// The sweep holds M fixed and grows E, so E/M grows; `mgt_over_ps` is the
// measured improvement and `sqrt_E_over_M` the predicted one — the two
// columns should track each other up to a constant.
#include <cmath>

#include "bench_util.h"

namespace trienum::bench {
namespace {

constexpr std::size_t kM = 1 << 9;
constexpr std::size_t kB = 16;

void BM_Crossover(benchmark::State& state) {
  const std::size_t e = static_cast<std::size_t>(state.range(0));
  auto raw = graph::Gnm(static_cast<graph::VertexId>(e / 4), e, 1004);
  RunOutcome ours, mgt;
  for (auto _ : state) {
    ours = MeasureAlgorithm("ps-cache-aware", raw, kM, kB);
    mgt = MeasureAlgorithm("mgt", raw, kM, kB);
  }
  state.counters["E_over_M"] = static_cast<double>(e) / kM;
  state.counters["ps_ios"] = static_cast<double>(ours.io.total_ios());
  state.counters["mgt_ios"] = static_cast<double>(mgt.io.total_ios());
  state.counters["mgt_over_ps"] = static_cast<double>(mgt.io.total_ios()) /
                                  static_cast<double>(ours.io.total_ios());
  state.counters["sqrt_E_over_M"] =
      std::sqrt(static_cast<double>(e) / static_cast<double>(kM));
}

BENCHMARK(BM_Crossover)
    ->RangeMultiplier(2)
    ->Range(1 << 12, 1 << 17)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// The oblivious algorithm against MGT: same separation, bigger constants.
void BM_CrossoverOblivious(benchmark::State& state) {
  const std::size_t e = static_cast<std::size_t>(state.range(0));
  auto raw = graph::Gnm(static_cast<graph::VertexId>(e / 4), e, 1004);
  RunOutcome ours, mgt;
  for (auto _ : state) {
    ours = MeasureAlgorithm("ps-cache-oblivious", raw, kM, kB);
    mgt = MeasureAlgorithm("mgt", raw, kM, kB);
  }
  state.counters["E_over_M"] = static_cast<double>(e) / kM;
  state.counters["mgt_over_ps"] = static_cast<double>(mgt.io.total_ios()) /
                                  static_cast<double>(ours.io.total_ios());
  state.counters["sqrt_E_over_M"] =
      std::sqrt(static_cast<double>(e) / static_cast<double>(kM));
}

BENCHMARK(BM_CrossoverOblivious)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// BNL positioning (§1.1): the naive join baseline is a further E/M factor
// behind MGT; kept to small instances.
void BM_CrossoverBnl(benchmark::State& state) {
  const std::size_t e = static_cast<std::size_t>(state.range(0));
  auto raw = graph::Gnm(static_cast<graph::VertexId>(e / 4), e, 1004);
  RunOutcome ours, bnl;
  for (auto _ : state) {
    ours = MeasureAlgorithm("ps-cache-aware", raw, kM, kB);
    bnl = MeasureAlgorithm("bnl", raw, kM, kB);
  }
  state.counters["E_over_M"] = static_cast<double>(e) / kM;
  state.counters["bnl_over_ps"] = static_cast<double>(bnl.io.total_ios()) /
                                  static_cast<double>(ours.io.total_ios());
}

BENCHMARK(BM_CrossoverBnl)
    ->RangeMultiplier(2)
    ->Range(1 << 11, 1 << 13)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace trienum::bench
