// EXP-K4 — the §6 extension: 4-clique enumeration via color coding at
// O(E^{k/2}/(M^{k/2-1}B)) = O(E^2/(MB)) expected I/Os for k = 4.
// `io_over_bound` should stay flat across the E sweep and `io_x_M` across
// the M sweep (one power of M stronger than the triangle case).
#include <benchmark/benchmark.h>

#include "bench_threads.h"

#include "core/clique4.h"
#include "em/context.h"
#include "graph/generators.h"

namespace trienum::bench {
namespace {

constexpr std::size_t kB = 16;

void BM_Clique4ScalingE(benchmark::State& state) {
  const std::size_t e = static_cast<std::size_t>(state.range(0));
  const std::size_t m = 1 << 10;
  auto raw = graph::Gnm(static_cast<graph::VertexId>(e / 4), e, 1015);
  std::uint64_t ios = 0, cliques = 0;
  for (auto _ : state) {
    em::EmConfig cfg;
    cfg.memory_words = m;
    cfg.block_words = kB;
    em::Context ctx(cfg);
    ctx.cache().set_counting(false);
    graph::EmGraph g = graph::BuildEmGraph(ctx, raw);
    ctx.cache().set_counting(true);
    ctx.cache().Reset();
    core::CountingCliqueSink sink;
    core::EnumerateFourCliques(ctx, g, sink);
    ctx.cache().FlushAll();
    ios = ctx.cache().stats().total_ios();
    cliques = sink.count();
  }
  double bound = core::Clique4IoBound(e, m, kB);
  state.counters["E"] = static_cast<double>(e);
  state.counters["ios"] = static_cast<double>(ios);
  state.counters["cliques"] = static_cast<double>(cliques);
  state.counters["bound"] = bound;
  state.counters["io_over_bound"] = static_cast<double>(ios) / bound;
}

BENCHMARK(BM_Clique4ScalingE)
    ->RangeMultiplier(2)
    ->Range(1 << 11, 1 << 13)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_Clique4ScalingM(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const std::size_t e = 1 << 12;
  auto raw = graph::Gnm(1 << 11, e, 1016);
  std::uint64_t ios = 0;
  for (auto _ : state) {
    em::EmConfig cfg;
    cfg.memory_words = m;
    cfg.block_words = kB;
    em::Context ctx(cfg);
    ctx.cache().set_counting(false);
    graph::EmGraph g = graph::BuildEmGraph(ctx, raw);
    ctx.cache().set_counting(true);
    ctx.cache().Reset();
    core::CountingCliqueSink sink;
    core::EnumerateFourCliques(ctx, g, sink);
    ctx.cache().FlushAll();
    ios = ctx.cache().stats().total_ios();
  }
  state.counters["M"] = static_cast<double>(m);
  state.counters["ios"] = static_cast<double>(ios);
  state.counters["io_x_M"] =
      static_cast<double>(ios) * static_cast<double>(m);
}

BENCHMARK(BM_Clique4ScalingM)
    ->RangeMultiplier(4)
    ->Range(1 << 9, 1 << 13)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace trienum::bench
