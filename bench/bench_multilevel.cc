// EXP-ML — the multilevel-cache corollary: one cache-oblivious run is
// simultaneously measured at two LRU levels (a small "L1" probe and the main
// "L2"); each level's misses should track E^{3/2}/(sqrt(M_level)·B) — one
// program, optimal everywhere, which no single cache-aware tuning achieves.
#include <benchmark/benchmark.h>

#include "bench_threads.h"

#include "core/cache_aware.h"
#include "core/cache_oblivious.h"
#include "core/sink.h"
#include "em/context.h"
#include "graph/generators.h"
#include "graph/normalize.h"

namespace trienum::bench {
namespace {

constexpr std::size_t kL1 = 1 << 8;
constexpr std::size_t kL2 = 1 << 12;
constexpr std::size_t kB = 16;

void BM_ObliviousTwoLevels(benchmark::State& state) {
  const std::size_t e = static_cast<std::size_t>(state.range(0));
  auto raw = graph::Gnm(static_cast<graph::VertexId>(e / 4), e, 1020);
  std::uint64_t l1 = 0, l2 = 0;
  for (auto _ : state) {
    em::EmConfig cfg;
    cfg.memory_words = kL2;
    cfg.block_words = kB;
    em::Context ctx(cfg);
    ctx.AttachProbe(kL1, kB);
    ctx.cache().set_counting(false);
    graph::EmGraph g = graph::BuildEmGraph(ctx, raw);
    ctx.cache().set_counting(true);
    ctx.cache().Reset();
    ctx.probe()->Reset();
    core::CountingSink sink;
    core::CacheObliviousOptions opts;
    opts.seed = 4242;
    core::EnumerateCacheOblivious(ctx, g, sink, opts);
    ctx.cache().FlushAll();
    ctx.probe()->FlushAll();
    l1 = ctx.probe()->stats().total_ios();
    l2 = ctx.cache().stats().total_ios();
  }
  state.counters["E"] = static_cast<double>(e);
  state.counters["l1_ios"] = static_cast<double>(l1);
  state.counters["l2_ios"] = static_cast<double>(l2);
  state.counters["l1_over_bound"] =
      static_cast<double>(l1) / core::PaghSilvestriIoBound(e, kL1, kB);
  state.counters["l2_over_bound"] =
      static_cast<double>(l2) / core::PaghSilvestriIoBound(e, kL2, kB);
}

BENCHMARK(BM_ObliviousTwoLevels)
    ->RangeMultiplier(2)
    ->Range(1 << 12, 1 << 15)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace trienum::bench
