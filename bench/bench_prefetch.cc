// Asynchronous read-ahead on a cold file store: the same query measured at
// prefetch depth 0 / 4 / 16 for the three scan-heavy engines (mgt,
// ps-cache-aware, dementiev) on an E = 2^16 graph under M = 2^14, B = 64.
// The overlap win is prefetch I/O vs host compute, so the wall-clock delta
// only materializes on hardware with real spare cores; what this bench pins
// on every machine is the contract: the counted IoStats of each iteration
// are checked in-loop against the depth-0 baseline (bit-identity stays hot),
// and the prefetch_* counters land in BENCH_prefetch.json next to the wall
// clock so the committed trajectory shows how much read-ahead engaged.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "bench_util.h"
#include "prefetch/prefetch.h"
#include "query/query.h"

namespace trienum::bench {
namespace {

constexpr std::size_t kMemWords = 1 << 14;
constexpr std::size_t kBlockWords = 64;
constexpr std::uint64_t kSeed = 0xF00D;

std::vector<graph::Edge> BenchEdges() {
  return graph::Rmat(13, std::size_t{1} << 16, 0.45, 0.22, 0.22, 7);
}

em::EmConfig DepthConfig(std::size_t depth) {
  em::EmConfig cfg;
  cfg.memory_words = kMemWords;
  cfg.block_words = kBlockWords;
  cfg.seed = kSeed;
  cfg.storage = em::StorageKind::kFile;
  cfg.prefetch_depth = depth;
  cfg.prefetch_threads = 2;
  TRIENUM_CHECK(prefetch::ApplyPrefetchConfig(cfg).ok());
  return cfg;
}

void RunPrefetchDepth(benchmark::State& state, const std::string& algo) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const std::vector<graph::Edge> raw = BenchEdges();
  query::Query q;
  q.algo = algo;

  // The depth-0 answer and counted I/Os, established once: every measured
  // iteration at any depth must reproduce them exactly.
  query::LoadedGraph base = *query::LoadedGraph::FromEdges(DepthConfig(0), raw);
  const query::QueryResult expected = *base.Run(q);

  query::LoadedGraph lg = *query::LoadedGraph::FromEdges(DepthConfig(depth), raw);
  double wall_ms = 0;
  em::PrefetchStats prefetch;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    query::QueryResult r = *lg.Run(q);
    auto t1 = std::chrono::steady_clock::now();
    // In-loop flatness: counted state is depth-invariant, every iteration.
    TRIENUM_CHECK(r.triangles == expected.triangles);
    TRIENUM_CHECK(r.io.block_reads == expected.io.block_reads);
    TRIENUM_CHECK(r.io.block_writes == expected.io.block_writes);
    TRIENUM_CHECK(r.work == expected.work);
    wall_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
    prefetch = r.prefetch;
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["wall_ms"] = wall_ms / iters;
  state.counters["block_ios"] = static_cast<double>(expected.io.total_ios());
  state.counters["depth"] = static_cast<double>(depth);
  state.counters["prefetch_issued"] = static_cast<double>(prefetch.issued);
  state.counters["prefetch_useful"] = static_cast<double>(prefetch.useful);
  state.counters["prefetch_wasted"] = static_cast<double>(prefetch.wasted);
  state.counters["prefetch_stalls"] = static_cast<double>(prefetch.stalls);
  state.SetLabel(algo + "/depth=" + std::to_string(depth));
}

void BM_PrefetchMgt(benchmark::State& state) {
  RunPrefetchDepth(state, "mgt");
}
BENCHMARK(BM_PrefetchMgt)->Arg(0)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_PrefetchCacheAware(benchmark::State& state) {
  RunPrefetchDepth(state, "ps-cache-aware");
}
BENCHMARK(BM_PrefetchCacheAware)
    ->Arg(0)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_PrefetchDementiev(benchmark::State& state) {
  RunPrefetchDepth(state, "dementiev");
}
BENCHMARK(BM_PrefetchDementiev)
    ->Arg(0)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace trienum::bench
