// EXP-GC — robustness across graph classes at fixed E.
//
// The paper's bounds are input-agnostic (they depend only on E, M, B). This
// table runs the main algorithms on structurally extreme inputs of the same
// edge count: uniform random, heavy-tailed RMAT, complete tripartite (the
// 5NF join shape), planted triangles, many medium hubs, and a near-clique
// core. `io_over_bound` should stay within a bounded band across rows.
#include "bench_util.h"
#include "core/cache_aware.h"

namespace trienum::bench {
namespace {

constexpr std::size_t kM = 1 << 10;
constexpr std::size_t kB = 16;
constexpr std::size_t kE = 1 << 14;

std::vector<graph::Edge> ClassWorkload(int which) {
  switch (which) {
    case 0: return graph::Gnm(1 << 12, kE, 1007);                   // uniform
    case 1: return graph::Rmat(14, kE, 0.5, 0.2, 0.2, 1008);        // skewed
    case 2: return graph::CompleteTripartite(74, 74, 74);           // join
    case 3: return graph::PlantedTriangles(1 << 12, kE - 3000, 1000, 1009);
    case 4: return graph::CliqueUnion(26, 36);                      // hubs
    default: return graph::CliquePlusPath(180, 256);                // core
  }
}

const char* kClassNames[] = {"gnm",     "rmat",       "tripartite",
                             "planted", "cliqueunion", "dense_core"};

void BM_GraphClass(benchmark::State& state, const std::string& algo) {
  const int which = static_cast<int>(state.range(0));
  auto raw = ClassWorkload(which);
  RunOutcome out;
  for (auto _ : state) {
    out = MeasureAlgorithm(algo, raw, kM, kB);
  }
  ReportIo(state, out, core::PaghSilvestriIoBound(out.num_edges, kM, kB));
  state.SetLabel(kClassNames[which]);
  state.counters["E"] = static_cast<double>(out.num_edges);
}

#define GRAPH_CLASS(algo_id, algo_name)                                 \
  BENCHMARK_CAPTURE(BM_GraphClass, algo_id, algo_name)                  \
      ->DenseRange(0, 5)                                                \
      ->Iterations(1)                                                   \
      ->Unit(benchmark::kMillisecond)

GRAPH_CLASS(ps_cache_aware, "ps-cache-aware");
GRAPH_CLASS(ps_cache_oblivious, "ps-cache-oblivious");
GRAPH_CLASS(mgt, "mgt");

#undef GRAPH_CLASS

}  // namespace
}  // namespace trienum::bench
