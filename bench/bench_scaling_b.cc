// EXP-B — I/O scaling in the block size B at fixed (E, M).
//
// All the bounds in the paper carry a 1/B factor; with the tall-cache
// assumption M >= B^2 respected, measured I/Os times B (`io_x_B`) should be
// flat across the sweep for every algorithm.
#include "bench_util.h"
#include "core/cache_aware.h"
#include "core/mgt.h"

namespace trienum::bench {
namespace {

constexpr std::size_t kE = 1 << 14;
constexpr std::size_t kM = 1 << 14;  // >= B^2 for B up to 128

void BM_ScalingB(benchmark::State& state, const std::string& algo) {
  const std::size_t b = static_cast<std::size_t>(state.range(0));
  auto raw = graph::Gnm(1 << 12, kE, 1003);
  RunOutcome out;
  for (auto _ : state) {
    out = MeasureAlgorithm(algo, raw, kM, b);
  }
  double bound = algo == "mgt" ? core::MgtIoBound(kE, kM, b)
                               : core::PaghSilvestriIoBound(kE, kM, b);
  ReportIo(state, out, bound);
  state.counters["B"] = static_cast<double>(b);
  state.counters["io_x_B"] =
      static_cast<double>(out.io.total_ios()) * static_cast<double>(b);
}

#define SCALING_B(algo_id, algo_name)                                   \
  BENCHMARK_CAPTURE(BM_ScalingB, algo_id, algo_name)                    \
      ->RangeMultiplier(2)                                              \
      ->Range(8, 128)                                                   \
      ->Iterations(1)                                                   \
      ->Unit(benchmark::kMillisecond)

SCALING_B(ps_cache_aware, "ps-cache-aware");
SCALING_B(ps_cache_oblivious, "ps-cache-oblivious");
SCALING_B(mgt, "mgt");

#undef SCALING_B

}  // namespace
}  // namespace trienum::bench
