// Hot-path microbenchmarks for the block-buffered Scanner/Writer rebuild:
// scan/write/merge/clone throughput down the buffered vs the element-wise
// path (same IoStats, different wall clock — the whole point), the pinned-
// line zero-copy sweep, and end-to-end enumeration per algorithm in both
// modes. The `mode_speedup`-style ratios in BENCH_hotpath.json are the
// committed record of what block-granular transfers buy at each level.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "em/array.h"
#include "extsort/ext_merge_sort.h"
#include "extsort/scan_ops.h"

namespace trienum::bench {
namespace {

em::Context MakeCtx(em::StorageKind storage = em::StorageKind::kMemory) {
  em::EmConfig cfg;
  cfg.memory_words = 1 << 14;
  cfg.block_words = 64;
  cfg.storage = storage;
  return em::Context(cfg);
}

em::ScanMode ModeOf(const benchmark::State& state) {
  return state.range(0) == 0 ? em::ScanMode::kElementwise
                             : em::ScanMode::kBuffered;
}

void SetModeLabel(benchmark::State& state) {
  state.SetLabel(state.range(0) == 0 ? "elementwise" : "buffered");
}

// --- Stream micro-throughput ------------------------------------------------

void BM_ScanThroughput(benchmark::State& state) {
  const std::size_t n = 1 << 20;
  em::Context ctx = MakeCtx();
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
  ctx.cache().set_counting(false);
  std::vector<std::uint64_t> host(n);
  for (std::size_t i = 0; i < n; ++i) host[i] = i * 31;
  a.WriteFrom(0, n, host.data());
  ctx.cache().set_counting(true);
  em::ScopedScanMode sm(ModeOf(state));
  std::uint64_t acc = 0;
  for (auto _ : state) {
    ctx.cache().Reset();
    em::Scanner<std::uint64_t> in(a);
    while (in.HasNext()) acc += in.Next();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
  state.counters["ios"] = static_cast<double>(ctx.cache().stats().total_ios());
  SetModeLabel(state);
}
BENCHMARK(BM_ScanThroughput)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_WriteThroughput(benchmark::State& state) {
  const std::size_t n = 1 << 20;
  em::Context ctx = MakeCtx();
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
  em::ScopedScanMode sm(ModeOf(state));
  for (auto _ : state) {
    ctx.cache().Reset();
    em::Writer<std::uint64_t> w(a);
    for (std::size_t i = 0; i < n; ++i) w.Push(i * 7);
    w.Flush();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
  state.counters["ios"] = static_cast<double>(ctx.cache().stats().total_ios());
  SetModeLabel(state);
}
BENCHMARK(BM_WriteThroughput)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_FilterThroughput(benchmark::State& state) {
  const std::size_t n = 1 << 20;
  em::Context ctx = MakeCtx();
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
  em::Array<std::uint64_t> b = ctx.Alloc<std::uint64_t>(n);
  ctx.cache().set_counting(false);
  std::vector<std::uint64_t> host(n);
  for (std::size_t i = 0; i < n; ++i) host[i] = i;
  a.WriteFrom(0, n, host.data());
  ctx.cache().set_counting(true);
  em::ScopedScanMode sm(ModeOf(state));
  for (auto _ : state) {
    ctx.cache().Reset();
    std::size_t kept =
        extsort::Filter(a, b, [](std::uint64_t v) { return (v & 3) != 0; });
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
  SetModeLabel(state);
}
BENCHMARK(BM_FilterThroughput)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_MergeSortWall(benchmark::State& state) {
  const std::size_t n = 1 << 18;
  em::Context ctx = MakeCtx();
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
  std::vector<std::uint64_t> host(n);
  SplitMix64 rng(42);
  for (std::size_t i = 0; i < n; ++i) host[i] = rng.Next();
  em::ScopedScanMode sm(ModeOf(state));
  for (auto _ : state) {
    state.PauseTiming();
    ctx.cache().set_counting(false);
    a.WriteFrom(0, n, host.data());
    ctx.cache().set_counting(true);
    ctx.cache().Reset();
    state.ResumeTiming();
    extsort::ExternalMergeSort(
        ctx, a, [](std::uint64_t x, std::uint64_t y) { return x < y; });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
  state.counters["ios"] = static_cast<double>(ctx.cache().stats().total_ios());
  SetModeLabel(state);
}
BENCHMARK(BM_MergeSortWall)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_CloneThroughput(benchmark::State& state) {
  const std::size_t n = 1 << 19;
  em::Context ctx = MakeCtx();
  em::Array<std::uint64_t> src = ctx.Alloc<std::uint64_t>(n);
  ctx.cache().set_counting(false);
  std::vector<std::uint64_t> host(n);
  for (std::size_t i = 0; i < n; ++i) host[i] = i ^ 0xABCD;
  src.WriteFrom(0, n, host.data());
  ctx.cache().set_counting(true);
  const bool chunked = state.range(0) == 1;
  for (auto _ : state) {
    ctx.cache().Reset();
    auto region = ctx.Region();
    if (chunked) {
      em::Array<std::uint64_t> dst = em::CloneArray(ctx, src);
      benchmark::DoNotOptimize(dst.base());
    } else {
      // The old record-at-a-time clone, kept as the before-side.
      em::Array<std::uint64_t> dst = ctx.Alloc<std::uint64_t>(n);
      for (std::size_t i = 0; i < n; ++i) dst.Set(i, src.Get(i));
      benchmark::DoNotOptimize(dst.base());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
  state.SetLabel(chunked ? "chunked" : "per_record");
}
BENCHMARK(BM_CloneThroughput)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_PinnedLineSweep(benchmark::State& state) {
  // Reading one line's records through a pinned pointer vs per-record Gets:
  // identical charges (one touch per record), no per-record copy chain.
  const std::size_t n = 1 << 18;
  em::Context ctx = MakeCtx();
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
  ctx.cache().set_counting(false);
  std::vector<std::uint64_t> host(n);
  for (std::size_t i = 0; i < n; ++i) host[i] = i;
  a.WriteFrom(0, n, host.data());
  ctx.cache().set_counting(true);
  const std::size_t b = ctx.block_words();
  const bool pinned = state.range(0) == 1;
  std::uint64_t acc = 0;
  for (auto _ : state) {
    ctx.cache().Reset();
    if (pinned) {
      for (std::size_t lo = 0; lo < n; lo += b) {
        em::PinnedLine pin = ctx.PinLine(a.AddrOf(lo), /*write=*/false);
        for (std::size_t i = 1; i < b; ++i) {
          ctx.TouchRange(pin.base() + i, 1, false);
        }
        const em::Word* words = pin.data();
        for (std::size_t i = 0; i < b; ++i) acc += words[i];
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) acc += a.Get(i);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
  state.counters["ios"] = static_cast<double>(ctx.cache().stats().total_ios());
  state.SetLabel(pinned ? "pinned_line" : "per_record_get");
}
BENCHMARK(BM_PinnedLineSweep)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// --- End-to-end enumeration, both modes ------------------------------------

void BM_EndToEnd(benchmark::State& state, const std::string& algo,
                 em::StorageKind storage) {
  const std::size_t e = 1 << 16;
  auto raw = graph::Gnm(static_cast<graph::VertexId>(e / 4), e, 1001);
  em::ScopedScanMode sm(ModeOf(state));
  RunOutcome out;
  for (auto _ : state) {
    em::EmConfig cfg;
    cfg.memory_words = 1 << 14;
    cfg.block_words = 64;
    cfg.storage = storage;
    em::Context ctx(cfg);
    ctx.cache().set_counting(false);
    graph::EmGraph g = graph::BuildEmGraph(ctx, raw);
    ctx.cache().set_counting(true);
    ctx.cache().Reset();
    core::ChecksumSink sink;
    auto t0 = std::chrono::steady_clock::now();
    core::FindAlgorithm(algo)->run(ctx, g, sink);
    ctx.cache().FlushAll();
    auto t1 = std::chrono::steady_clock::now();
    out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    out.triangles = sink.count();
    out.io = ctx.cache().stats();
  }
  state.counters["wall_ms"] = out.wall_ms;
  state.counters["ios"] = static_cast<double>(out.io.total_ios());
  state.counters["triangles"] = static_cast<double>(out.triangles);
  SetModeLabel(state);
}

#define HOTPATH_E2E(id, algo)                                             \
  BENCHMARK_CAPTURE(BM_EndToEnd, id, algo, em::StorageKind::kMemory)      \
      ->Arg(0)                                                            \
      ->Arg(1)                                                            \
      ->Iterations(1)                                                     \
      ->Unit(benchmark::kMillisecond);                                    \
  BENCHMARK_CAPTURE(BM_EndToEnd, id##_file, algo, em::StorageKind::kFile) \
      ->Arg(0)                                                            \
      ->Arg(1)                                                            \
      ->Iterations(1)                                                     \
      ->Unit(benchmark::kMillisecond)

HOTPATH_E2E(ps_cache_aware, "ps-cache-aware");
HOTPATH_E2E(mgt, "mgt");
HOTPATH_E2E(dementiev, "dementiev");
HOTPATH_E2E(edge_iterator, "edge-iterator");

#undef HOTPATH_E2E

}  // namespace
}  // namespace trienum::bench
