// Applies TRIENUM_BENCH_THREADS to the par pool before google-benchmark's
// main() runs, so the thread count run_benches.sh stamps into every
// BENCH_*.json context is the one the benches actually executed with.
// Unset means the pool default (1, fully serial); "0" means all hardware
// cores, matching the CLI's --threads semantics. bench_parallel's explicit
// per-case ScopedThreads sweeps override this for their own rows and report
// the real value as a `threads` counter.
//
// Included by bench_util.h and by the standalone benches that skip it, so
// every bench binary honors the variable.
#ifndef TRIENUM_BENCH_BENCH_THREADS_H_
#define TRIENUM_BENCH_BENCH_THREADS_H_

#include <cstdlib>

#include "par/par_config.h"

namespace trienum::bench::internal {

[[maybe_unused]] static const bool kBenchThreadsApplied = [] {
  if (const char* env = std::getenv("TRIENUM_BENCH_THREADS")) {
    par::SetThreads(
        static_cast<std::size_t>(std::strtoull(env, nullptr, 10)));
  }
  return true;
}();

}  // namespace trienum::bench::internal

#endif  // TRIENUM_BENCH_BENCH_THREADS_H_
