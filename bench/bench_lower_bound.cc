// EXP-LB — Theorem 3 optimality gaps.
//
// On cliques (t = Theta(E^{3/2}), the paper's witness family) every
// algorithm's measured I/Os must exceed the lower bound
// Omega(t/(sqrt(M)B) + t^{2/3}/B); `io_over_lb` reports the measured
// optimality gap. The paper's algorithms should show a bounded gap as the
// clique grows, MGT/BNL a growing one.
#include "bench_util.h"
#include "core/lower_bound.h"

namespace trienum::bench {
namespace {

constexpr std::size_t kM = 1 << 9;
constexpr std::size_t kB = 16;

void BM_LowerBoundGap(benchmark::State& state, const std::string& algo) {
  const std::uint64_t k = static_cast<std::uint64_t>(state.range(0));
  auto raw = graph::Clique(static_cast<graph::VertexId>(k));
  RunOutcome out;
  for (auto _ : state) {
    out = MeasureAlgorithm(algo, raw, kM, kB);
  }
  const std::uint64_t t = core::CliqueTriangles(k);
  double lb = core::IoLowerBound(t, kM, kB);
  state.counters["k"] = static_cast<double>(k);
  state.counters["E"] = static_cast<double>(out.num_edges);
  state.counters["t"] = static_cast<double>(t);
  state.counters["ios"] = static_cast<double>(out.io.total_ios());
  state.counters["lb"] = lb;
  state.counters["lb_epoch"] = core::IoLowerBoundEpoch(t, kM, kB);
  state.counters["io_over_lb"] = static_cast<double>(out.io.total_ios()) / lb;
}

#define LB_GAP(algo_id, algo_name)                                      \
  BENCHMARK_CAPTURE(BM_LowerBoundGap, algo_id, algo_name)               \
      ->Arg(32)                                                         \
      ->Arg(48)                                                         \
      ->Arg(64)                                                         \
      ->Arg(96)                                                         \
      ->Iterations(1)                                                   \
      ->Unit(benchmark::kMillisecond)

LB_GAP(ps_cache_aware, "ps-cache-aware");
LB_GAP(ps_cache_oblivious, "ps-cache-oblivious");
LB_GAP(ps_deterministic, "ps-deterministic");
LB_GAP(mgt, "mgt");
LB_GAP(dementiev, "dementiev");

#undef LB_GAP

}  // namespace
}  // namespace trienum::bench
