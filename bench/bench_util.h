// Shared helpers for the experiment benches. Every bench runs an algorithm
// once inside a google-benchmark iteration and reports *measured block I/Os*
// (the paper's complexity measure) as custom counters, alongside the
// theorem-predicted bound and the measured/bound ratio — the "shape"
// evidence EXPERIMENTS.md records.
#ifndef TRIENUM_BENCH_BENCH_UTIL_H_
#define TRIENUM_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include "bench_threads.h"

#include <chrono>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "core/sink.h"
#include "em/context.h"
#include "graph/generators.h"
#include "graph/normalize.h"

namespace trienum::bench {

struct RunOutcome {
  std::uint64_t triangles = 0;
  std::uint64_t checksum = 0;
  em::IoStats io;
  std::uint64_t work = 0;
  std::size_t num_edges = 0;
  std::size_t peak_disk_words = 0;
  double wall_ms = 0;  ///< wall clock of the measured run (build excluded)
};

/// Builds the graph (uncounted), resets the cache cold, runs the named
/// algorithm once, flushes, and returns the measured I/O statistics.
inline RunOutcome MeasureAlgorithm(const std::string& algo_name,
                                   const std::vector<graph::Edge>& raw,
                                   std::size_t m_words, std::size_t b_words,
                                   std::uint64_t seed = 0xB0B) {
  em::EmConfig cfg;
  cfg.memory_words = m_words;
  cfg.block_words = b_words;
  cfg.seed = seed;
  em::Context ctx(cfg);
  ctx.cache().set_counting(false);
  graph::EmGraph g = graph::BuildEmGraph(ctx, raw);
  ctx.cache().set_counting(true);
  ctx.cache().Reset();
  ctx.ResetWork();
  ctx.device().ResetPeak();
  std::size_t disk_before = ctx.device().peak_words();

  core::ChecksumSink sink;
  const core::AlgorithmInfo* algo = core::FindAlgorithm(algo_name);
  auto t0 = std::chrono::steady_clock::now();
  algo->run(ctx, g, sink);
  ctx.cache().FlushAll();
  auto t1 = std::chrono::steady_clock::now();

  RunOutcome out;
  out.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.triangles = sink.count();
  out.checksum = sink.checksum();
  out.io = ctx.cache().stats();
  out.work = ctx.work();
  out.num_edges = g.num_edges();
  out.peak_disk_words = ctx.device().peak_words() - disk_before;
  return out;
}

/// Attaches the standard counters to a benchmark state.
inline void ReportIo(benchmark::State& state, const RunOutcome& out,
                     double predicted_bound) {
  state.counters["wall_ms"] = out.wall_ms;
  state.counters["ios"] = static_cast<double>(out.io.total_ios());
  state.counters["reads"] = static_cast<double>(out.io.block_reads);
  state.counters["writes"] = static_cast<double>(out.io.block_writes);
  state.counters["triangles"] = static_cast<double>(out.triangles);
  state.counters["bound"] = predicted_bound;
  if (predicted_bound > 0) {
    state.counters["io_over_bound"] =
        static_cast<double>(out.io.total_ios()) / predicted_bound;
  }
}

}  // namespace trienum::bench

#endif  // TRIENUM_BENCH_BENCH_UTIL_H_
