// EXP-AB — ablations of the design choices DESIGN.md calls out.
//
//  * high-degree step (§2 step 1) on/off, on a hub-heavy graph: without it,
//    color classes containing hub edges blow up and step 3 degrades;
//  * empty-slot pruning in the §3 recursion (off in the paper);
//  * the recursion's base-case cutoff (0 = paper-exact, depth-only);
//  * Lemma 2's chunk fraction alpha.
#include "bench_util.h"
#include "core/cache_aware.h"
#include "core/cache_oblivious.h"
#include "core/mgt.h"

namespace trienum::bench {
namespace {

constexpr std::size_t kM = 1 << 9;
constexpr std::size_t kB = 16;

RunOutcome MeasureAware(const std::vector<graph::Edge>& raw,
                        const core::CacheAwareOptions& opts) {
  em::EmConfig cfg;
  cfg.memory_words = kM;
  cfg.block_words = kB;
  em::Context ctx(cfg);
  ctx.cache().set_counting(false);
  graph::EmGraph g = graph::BuildEmGraph(ctx, raw);
  ctx.cache().set_counting(true);
  ctx.cache().Reset();
  core::ChecksumSink sink;
  core::EnumerateCacheAware(ctx, g, sink, opts);
  ctx.cache().FlushAll();
  RunOutcome out;
  out.triangles = sink.count();
  out.io = ctx.cache().stats();
  out.num_edges = g.num_edges();
  return out;
}

RunOutcome MeasureOblivious(const std::vector<graph::Edge>& raw,
                            const core::CacheObliviousOptions& opts,
                            core::CacheObliviousReport* rep = nullptr) {
  em::EmConfig cfg;
  cfg.memory_words = kM;
  cfg.block_words = kB;
  em::Context ctx(cfg);
  ctx.cache().set_counting(false);
  graph::EmGraph g = graph::BuildEmGraph(ctx, raw);
  ctx.cache().set_counting(true);
  ctx.cache().Reset();
  core::ChecksumSink sink;
  core::EnumerateCacheOblivious(ctx, g, sink, opts, rep);
  ctx.cache().FlushAll();
  RunOutcome out;
  out.triangles = sink.count();
  out.io = ctx.cache().stats();
  out.num_edges = g.num_edges();
  return out;
}

// Hub-heavy workload: a K_128 core plus random sparse periphery.
std::vector<graph::Edge> HubWorkload() {
  auto raw = graph::CliquePlusPath(128, 4000);
  auto extra = graph::Gnm(4128, 1 << 12, 1011);
  raw.insert(raw.end(), extra.begin(), extra.end());
  return raw;
}

void BM_HighDegreeStep(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  core::CacheAwareOptions opts;
  opts.high_degree_step = enabled;
  RunOutcome out;
  for (auto _ : state) {
    out = MeasureAware(HubWorkload(), opts);
  }
  state.SetLabel(enabled ? "with_high_degree_step" : "without");
  state.counters["ios"] = static_cast<double>(out.io.total_ios());
  state.counters["triangles"] = static_cast<double>(out.triangles);
}

BENCHMARK(BM_HighDegreeStep)->Arg(1)->Arg(0)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_PruneEmptySlots(benchmark::State& state) {
  const bool prune = state.range(0) != 0;
  core::CacheObliviousOptions opts;
  opts.seed = 77;
  opts.prune_empty_slots = prune;
  core::CacheObliviousReport rep;
  RunOutcome out;
  for (auto _ : state) {
    out = MeasureOblivious(graph::Gnm(1 << 12, 1 << 14, 1012), opts, &rep);
  }
  state.SetLabel(prune ? "prune_on" : "paper_default_off");
  state.counters["ios"] = static_cast<double>(out.io.total_ios());
  state.counters["subproblems"] = static_cast<double>(rep.subproblems);
}

BENCHMARK(BM_PruneEmptySlots)->Arg(0)->Arg(1)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_BaseCutoff(benchmark::State& state) {
  core::CacheObliviousOptions opts;
  opts.seed = 77;
  opts.base_cutoff = static_cast<std::size_t>(state.range(0));
  core::CacheObliviousReport rep;
  RunOutcome out;
  for (auto _ : state) {
    out = MeasureOblivious(graph::Gnm(1 << 12, 1 << 14, 1012), opts, &rep);
  }
  state.SetLabel(opts.base_cutoff == 0 ? "paper_exact_depth_only" : "cutoff");
  state.counters["cutoff"] = static_cast<double>(opts.base_cutoff);
  state.counters["ios"] = static_cast<double>(out.io.total_ios());
  state.counters["base_cases"] = static_cast<double>(rep.base_cases);
  state.counters["subproblems"] = static_cast<double>(rep.subproblems);
}

BENCHMARK(BM_BaseCutoff)->Arg(0)->Arg(8)->Arg(16)->Arg(64)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ChunkFraction(benchmark::State& state) {
  core::CacheAwareOptions opts;
  opts.chunk_fraction = 1.0 / static_cast<double>(state.range(0));
  RunOutcome out;
  for (auto _ : state) {
    out = MeasureAware(graph::Gnm(1 << 12, 1 << 14, 1013), opts);
  }
  state.counters["one_over_alpha"] = static_cast<double>(state.range(0));
  state.counters["ios"] = static_cast<double>(out.io.total_ios());
}

BENCHMARK(BM_ChunkFraction)->Arg(32)->Arg(16)->Arg(8)->Arg(4)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ForcedColors(benchmark::State& state) {
  // Sweeping c around the paper's sqrt(E/M) shows the optimum sits there.
  core::CacheAwareOptions opts;
  opts.force_colors = static_cast<std::uint32_t>(state.range(0));
  RunOutcome out;
  for (auto _ : state) {
    out = MeasureAware(graph::Gnm(1 << 12, 1 << 14, 1013), opts);
  }
  state.counters["colors"] = static_cast<double>(state.range(0));
  state.counters["ios"] = static_cast<double>(out.io.total_ios());
}

BENCHMARK(BM_ForcedColors)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace trienum::bench
