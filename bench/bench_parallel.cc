// EXP-PARALLEL — host-parallel scaling under the IoStats-invariance
// contract: the same runs at threads in {1, 2, 4, 8} must report the same
// block I/Os (asserted here via the checksum/io counters) while wall_ms
// drops with the core count.
//
// Three stages at the engine's reference operating point (E = 2^16 edges,
// M = 2^14 words, B = 64):
//   * BM_RunFormation — the parallel radix kernel alone, sorting one
//     E-record host load (the sort engine's hottest host loop);
//   * BM_MgtEndToEnd / BM_CacheAwareEndToEnd — whole-algorithm scaling,
//     where Lemma 2 cone probes (mgt, ps-cache-aware) and the coloring
//     transform ride the pool.
//
// On a single-core runner (such as the committed baseline's) every thread
// count collapses to the same wall clock — the interesting column there is
// that `ios` stays flat. Multi-core machines show the speedup; the
// committed baseline pins the no-regression floor for threads=1.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "extsort/run_formation.h"
#include "graph/types.h"
#include "par/par_config.h"

namespace trienum::bench {
namespace {

constexpr std::size_t kM = 1 << 14;
constexpr std::size_t kB = 64;
constexpr std::size_t kE = 1 << 16;

void BM_RunFormation(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  par::ScopedThreads scope(threads);
  SplitMix64 rng(0x60D);
  std::vector<graph::Edge> input(kE);
  for (auto& e : input) {
    e.u = static_cast<graph::VertexId>(rng.Next() % (kE / 4));
    e.v = static_cast<graph::VertexId>(rng.Next() % (kE / 4));
  }
  extsort::RunScratch<graph::Edge> rs;
  std::vector<graph::Edge> load;
  for (auto _ : state) {
    state.PauseTiming();
    load = input;
    state.ResumeTiming();
    extsort::SortRun(load.data(), load.size(), rs, graph::LexLess{});
    benchmark::DoNotOptimize(load.data());
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["records"] = static_cast<double>(kE);
}

void RunAlgoScaling(benchmark::State& state, const char* algo) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  par::ScopedThreads scope(threads);
  const std::vector<graph::Edge> raw =
      graph::Rmat(14, kE, 0.45, 0.22, 0.22, 2014);
  RunOutcome out;
  for (auto _ : state) {
    out = MeasureAlgorithm(algo, raw, kM, kB);
  }
  ReportIo(state, out, 0.0);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["checksum"] = static_cast<double>(out.checksum % 1000000007);
}

void BM_MgtEndToEnd(benchmark::State& state) {
  RunAlgoScaling(state, "mgt");
}

void BM_CacheAwareEndToEnd(benchmark::State& state) {
  RunAlgoScaling(state, "ps-cache-aware");
}

BENCHMARK(BM_RunFormation)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MgtEndToEnd)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CacheAwareEndToEnd)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace trienum::bench
