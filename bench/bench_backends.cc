// Storage-backend comparison: the same algorithm under the same (M, B) on
// the in-memory simulator vs. the file-backed device. Reports simulated
// block I/Os next to the *real* transfer counts (pread/pwrite syscalls and
// bytes), so the perf trajectory tracks how closely the simulated cost model
// matches actual storage traffic. The simulated counters must be identical
// across backends (asserted by tests/test_storage_backends.cc); the real
// counters exist only on the file backend.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.h"
#include "core/cache_aware.h"
#include "em/storage.h"

namespace {

using namespace trienum;

bench::RunOutcome MeasureOnBackend(em::StorageKind kind,
                                   const std::string& algo_name,
                                   const std::vector<graph::Edge>& raw,
                                   std::size_t m, std::size_t b,
                                   em::StorageTelemetry* tel) {
  em::EmConfig cfg;
  cfg.memory_words = m;
  cfg.block_words = b;
  cfg.seed = 0xB0B;
  cfg.storage = kind;
  em::Context ctx(cfg);
  ctx.cache().set_counting(false);
  graph::EmGraph g = graph::BuildEmGraph(ctx, raw);
  ctx.cache().set_counting(true);
  ctx.cache().Reset();
  ctx.ResetWork();

  em::StorageTelemetry before = ctx.device().backend().telemetry();
  core::ChecksumSink sink;
  core::FindAlgorithm(algo_name)->run(ctx, g, sink);
  ctx.cache().FlushAll();
  *tel = ctx.device().backend().telemetry() - before;

  bench::RunOutcome out;
  out.triangles = sink.count();
  out.checksum = sink.checksum();
  out.io = ctx.cache().stats();
  out.work = ctx.work();
  out.num_edges = g.num_edges();
  return out;
}

void ReportBackend(benchmark::State& state, const bench::RunOutcome& out,
                   const em::StorageTelemetry& tel) {
  state.counters["sim_ios"] = static_cast<double>(out.io.total_ios());
  state.counters["sim_reads"] = static_cast<double>(out.io.block_reads);
  state.counters["sim_writes"] = static_cast<double>(out.io.block_writes);
  state.counters["real_read_calls"] = static_cast<double>(tel.read_calls);
  state.counters["real_write_calls"] = static_cast<double>(tel.write_calls);
  state.counters["real_bytes_read"] = static_cast<double>(tel.bytes_read);
  state.counters["real_bytes_written"] = static_cast<double>(tel.bytes_written);
  // Real syscalls per simulated block transfer: ~1 means the cost model and
  // the storage traffic agree; >1 measures the uncounted coherence fetches.
  double sim = static_cast<double>(out.io.total_ios());
  if (sim > 0) {
    state.counters["real_over_sim"] =
        static_cast<double>(tel.read_calls + tel.write_calls) / sim;
  }
  state.counters["triangles"] = static_cast<double>(out.triangles);
}

void BM_Backend(benchmark::State& state, em::StorageKind kind,
                const std::string& algo) {
  const std::size_t e = static_cast<std::size_t>(state.range(0));
  const std::size_t m = 1 << 10, b = 16;
  auto raw = graph::Gnm(static_cast<graph::VertexId>(e / 4), e, 77);
  bench::RunOutcome out;
  em::StorageTelemetry tel;
  for (auto _ : state) {
    out = MeasureOnBackend(kind, algo, raw, m, b, &tel);
    benchmark::DoNotOptimize(out.checksum);
  }
  ReportBackend(state, out, tel);
}

void BM_MemoryBackend_CacheAware(benchmark::State& state) {
  BM_Backend(state, em::StorageKind::kMemory, "ps-cache-aware");
}
void BM_FileBackend_CacheAware(benchmark::State& state) {
  BM_Backend(state, em::StorageKind::kFile, "ps-cache-aware");
}
void BM_MemoryBackend_CacheOblivious(benchmark::State& state) {
  BM_Backend(state, em::StorageKind::kMemory, "ps-cache-oblivious");
}
void BM_FileBackend_CacheOblivious(benchmark::State& state) {
  BM_Backend(state, em::StorageKind::kFile, "ps-cache-oblivious");
}
void BM_MemoryBackend_Mgt(benchmark::State& state) {
  BM_Backend(state, em::StorageKind::kMemory, "mgt");
}
void BM_FileBackend_Mgt(benchmark::State& state) {
  BM_Backend(state, em::StorageKind::kFile, "mgt");
}

}  // namespace

BENCHMARK(BM_MemoryBackend_CacheAware)->Arg(1 << 13)->Arg(1 << 15);
BENCHMARK(BM_FileBackend_CacheAware)->Arg(1 << 13)->Arg(1 << 15);
BENCHMARK(BM_MemoryBackend_CacheOblivious)->Arg(1 << 13);
BENCHMARK(BM_FileBackend_CacheOblivious)->Arg(1 << 13);
BENCHMARK(BM_MemoryBackend_Mgt)->Arg(1 << 13);
BENCHMARK(BM_FileBackend_Mgt)->Arg(1 << 13);
