#!/usr/bin/env python3
"""Fail if any benchmark's wall_ms regressed past a loose band vs baseline.

Usage: check_wall_regression.py NEW_JSON BASELINE_JSON [--max-ratio 2.0]
                                [--min-ms 1.0]

Rows are matched by benchmark name; rows present on only one side are
ignored (renames and new benches don't break the gate). Rows whose baseline
wall_ms is below --min-ms are skipped as noise. The default 2x band is
deliberately loose: it tolerates machine variance between the committed
baseline and the CI runner and catches only accidental slow paths (an
engine fallback kicking in, a debug assert left on, quadratic bookkeeping).

Note: the JSON context's "library_build_type" describes how the
google-benchmark *library* was built (the distro package reports "debug");
the benchmarked code itself is Release (-O3 -DNDEBUG) both in the committed
baselines and in the CI bench-smoke job, so the comparison is like-for-like.
"""
import argparse
import json
import sys


def load_wall(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if "wall_ms" in b:
            out[b["name"]] = float(b["wall_ms"])
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("new_json")
    ap.add_argument("baseline_json")
    ap.add_argument("--max-ratio", type=float, default=2.0)
    ap.add_argument("--min-ms", type=float, default=1.0)
    args = ap.parse_args()

    new = load_wall(args.new_json)
    base = load_wall(args.baseline_json)
    common = sorted(set(new) & set(base))
    if not common:
        sys.exit(f"no common benchmark rows between {args.new_json} and "
                 f"{args.baseline_json}")

    failures = []
    for name in common:
        if base[name] < args.min_ms:
            continue
        ratio = new[name] / base[name]
        marker = " <-- REGRESSION" if ratio > args.max_ratio else ""
        print(f"{name}: {base[name]:.2f} ms -> {new[name]:.2f} ms "
              f"({ratio:.2f}x){marker}")
        if ratio > args.max_ratio:
            failures.append(name)

    if failures:
        sys.exit(f"{len(failures)} benchmark(s) regressed >"
                 f"{args.max_ratio}x: {', '.join(failures)}")
    print(f"OK: {len(common)} rows within the {args.max_ratio}x band")


if __name__ == "__main__":
    main()
