// EXP-SORT — substrate sanity: both sort primitives track the
// sort(n) = Theta((n/B) log_{M/B}(n/B)) model. `io_over_sortbound` should be
// ~1-3x for the cache-aware merge sort and a larger but flat constant for
// funnelsort (which also moves merger state).
//
// Since the PR 4 sort-engine overhaul this runs at the engine's reference
// operating point (M = 2^14 words, B = 64 — the config the end-to-end
// benches use), and wall_ms doubles as the engine's committed perf record:
// the CI bench-smoke job fails if it regresses >2x against
// bench/baselines/BENCH_sort.json.
#include <benchmark/benchmark.h>

#include "bench_threads.h"

#include "common/rng.h"
#include "em/array.h"
#include "extsort/ext_merge_sort.h"
#include "extsort/funnel_sort.h"
#include "extsort/io_bounds.h"

namespace trienum::bench {
namespace {

constexpr std::size_t kM = 1 << 14;
constexpr std::size_t kB = 64;

template <typename SortFn>
void RunSortBench(benchmark::State& state, SortFn sort_fn) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  em::EmConfig cfg;
  cfg.memory_words = kM;
  cfg.block_words = kB;
  em::Context ctx(cfg);
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
  std::uint64_t ios = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SplitMix64 rng(55);
    ctx.cache().set_counting(false);
    for (std::size_t i = 0; i < n; ++i) a.Set(i, rng.Next());
    ctx.cache().set_counting(true);
    ctx.cache().Reset();
    state.ResumeTiming();
    sort_fn(ctx, a);
    ctx.cache().FlushAll();
    ios = ctx.cache().stats().total_ios();
  }
  double bound = extsort::SortIoBound(n, 1, kM, kB);
  state.counters["n"] = static_cast<double>(n);
  state.counters["ios"] = static_cast<double>(ios);
  state.counters["sort_bound"] = bound;
  state.counters["io_over_sortbound"] = static_cast<double>(ios) / bound;
}

void BM_ExternalMergeSort(benchmark::State& state) {
  RunSortBench(state, [](em::Context& ctx, em::Array<std::uint64_t> a) {
    extsort::ExternalMergeSort(ctx, a, std::less<std::uint64_t>{});
  });
}

void BM_FunnelSort(benchmark::State& state) {
  RunSortBench(state, [](em::Context& ctx, em::Array<std::uint64_t> a) {
    extsort::FunnelSort(ctx, a, std::less<std::uint64_t>{});
  });
}

BENCHMARK(BM_ExternalMergeSort)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 18)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FunnelSort)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 18)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace trienum::bench
