// Overhead of the fault-tolerance stack: the same query measured over a
// plain store, a checksummed store (per-line FNV-1a maintained on write,
// verified on fetch), and a store under a live transient fault schedule
// (every recovered by retry). The triangle count is checked in-loop against
// the clean run — the bit-identity contract stays hot in the bench — and
// BENCH_faults.json commits the overhead trajectory. Recovery traffic is
// reported as counters (retries per query) next to the counted I/Os it
// deliberately never touches.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "bench_util.h"
#include "faults/recovery.h"
#include "query/query.h"

namespace trienum::bench {
namespace {

constexpr std::size_t kMemWords = 4096;
constexpr std::size_t kBlockWords = 64;
constexpr std::uint64_t kSeed = 0xB0B;

std::vector<graph::Edge> BenchEdges() {
  return graph::Rmat(10, 8192, 0.45, 0.22, 0.22, 7);
}

enum class Mode { kClean, kChecksums, kTransientFaults };

em::EmConfig ModeConfig(Mode mode) {
  em::EmConfig cfg;
  cfg.memory_words = kMemWords;
  cfg.block_words = kBlockWords;
  cfg.seed = kSeed;
  switch (mode) {
    case Mode::kClean:
      break;
    case Mode::kChecksums:
      cfg.verify_checksums = true;
      break;
    case Mode::kTransientFaults:
      cfg.fault_spec = "read:eio:every=101;write:short:every=103";
      break;
  }
  TRIENUM_CHECK(faults::ApplyFaultConfig(cfg).ok());
  return cfg;
}

void RunFaultMode(benchmark::State& state, Mode mode, const char* label) {
  const std::vector<graph::Edge> raw = BenchEdges();
  query::Query q;
  q.algo = "ps-cache-aware";

  // The clean answer, established once: every measured run must match it.
  query::LoadedGraph clean =
      *query::LoadedGraph::FromEdges(ModeConfig(Mode::kClean), raw);
  const std::uint64_t expected = (*clean.Run(q)).triangles;

  query::LoadedGraph lg = *query::LoadedGraph::FromEdges(ModeConfig(mode), raw);
  double wall_ms = 0;
  em::IoStats io;
  em::RecoveryStats recovery;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    query::QueryResult r = *lg.Run(q);
    auto t1 = std::chrono::steady_clock::now();
    TRIENUM_CHECK(r.triangles == expected);
    wall_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
    io = r.io;
    recovery = r.recovery;
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["wall_ms"] = wall_ms / iters;
  state.counters["block_ios"] = static_cast<double>(io.total_ios());
  state.counters["retries_per_query"] = static_cast<double>(recovery.retries);
  state.counters["checksum_failures"] =
      static_cast<double>(recovery.checksum_failures);
  state.SetLabel(label);
}

void BM_FaultStackClean(benchmark::State& state) {
  RunFaultMode(state, Mode::kClean, "clean");
}
BENCHMARK(BM_FaultStackClean)->Unit(benchmark::kMillisecond);

void BM_FaultStackChecksums(benchmark::State& state) {
  RunFaultMode(state, Mode::kChecksums, "checksums");
}
BENCHMARK(BM_FaultStackChecksums)->Unit(benchmark::kMillisecond);

void BM_FaultStackTransientFaults(benchmark::State& state) {
  RunFaultMode(state, Mode::kTransientFaults, "transient_faults");
}
BENCHMARK(BM_FaultStackTransientFaults)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace trienum::bench
