// EXP-L3 — Lemma 3 and the §4 derandomization guarantee.
//
// Lemma 3: for the random 4-wise coloring with c = sqrt(E/M) colors,
// E[X_xi] <= E*M. §4: the greedy deterministic coloring achieves
// X_xi < e*E*M outright. `x_over_EM` reports X_xi/(E*M): Lemma 3 predicts
// ~<= 1 on average for random colorings, and < e = 2.718 always for the
// derandomized one.
#include "bench_util.h"
#include "core/coloring.h"
#include "core/derandomize.h"
#include "hashing/kwise.h"

namespace trienum::bench {
namespace {

constexpr std::size_t kM = 1 << 9;

std::vector<graph::Edge> Workload(int which, std::size_t e) {
  switch (which) {
    case 0: return graph::Gnm(static_cast<graph::VertexId>(e / 4), e, 1005);
    case 1: return graph::Rmat(14, e, 0.45, 0.2, 0.2, 1006);
    default: return graph::CliqueUnion(32, 40);  // many medium hubs
  }
}

void BM_RandomColoringX(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const std::size_t e = 1 << 14;
  em::EmConfig cfg;
  cfg.memory_words = 1 << 14;  // analysis context; coloring stats only
  em::Context ctx(cfg);
  graph::EmGraph g = graph::BuildEmGraph(ctx, Workload(which, e));
  std::uint32_t c = 1;
  while (static_cast<std::uint64_t>(c) * c * kM < g.num_edges()) c <<= 1;

  double x_avg = 0, x_max = 0;
  const int kTrials = 8;
  for (auto _ : state) {
    for (int t = 0; t < kTrials; ++t) {
      hashing::FourWiseHash h(2000 + t);
      std::uint32_t cc = c;
      core::ColoringStats s = core::ComputeColoringStats(
          ctx, g.edges,
          [h, cc](graph::VertexId v) { return h.Color(v, cc); }, c);
      x_avg += s.x_total / kTrials;
      x_max = std::max(x_max, s.x_total);
    }
  }
  double em_bound = core::Lemma3Bound(g.num_edges(), kM);
  state.counters["E"] = static_cast<double>(g.num_edges());
  state.counters["colors"] = static_cast<double>(c);
  state.counters["x_avg"] = x_avg;
  state.counters["x_over_EM"] = x_avg / em_bound;
  state.counters["x_max_over_EM"] = x_max / em_bound;
}

BENCHMARK(BM_RandomColoringX)->Arg(0)->Arg(1)->Arg(2)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_DerandomizedColoringX(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const std::size_t e = 1 << 14;
  em::EmConfig cfg;
  cfg.memory_words = 1 << 14;
  em::Context ctx(cfg);
  graph::EmGraph g = graph::BuildEmGraph(ctx, Workload(which, e));
  std::uint32_t c = 1;
  while (static_cast<std::uint64_t>(c) * c * kM < g.num_edges()) c <<= 1;

  core::DeterministicColoring det;
  for (auto _ : state) {
    det = core::BuildDeterministicColoring(ctx, g.edges, c);
  }
  double em_bound = core::Lemma3Bound(g.num_edges(), kM);
  state.counters["E"] = static_cast<double>(g.num_edges());
  state.counters["colors"] = static_cast<double>(c);
  state.counters["x_xi"] = det.final_potential();
  state.counters["x_over_EM"] = det.final_potential() / em_bound;
  state.counters["e_bound"] = 2.718281828;  // the guarantee to stay under
  state.counters["candidates_tried"] =
      static_cast<double>(det.candidates_tried());
}

BENCHMARK(BM_DerandomizedColoringX)->Arg(0)->Arg(1)->Arg(2)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace trienum::bench
