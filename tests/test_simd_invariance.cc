// Kernels-on vs kernels-off differential: the hard contract of the simd
// subsystem is that kernel choice is invisible to everything the I/O model
// observes. For every registered algorithm, across storage backends, scan
// modes and thread counts, a run under the vectorized policies (kSwar,
// kAuto, and a forced kAvx2 request) must reproduce the scalar-policy run
// byte-for-byte: the same triangles IN THE SAME EMISSION ORDER, identical
// IoStats (block reads, block writes AND cache hits), and an identical
// host work counter. The invocation counters additionally prove the
// vectorized runs actually exercised the kernels — the equalities are not
// vacuous.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/clique4.h"
#include "em/cache.h"
#include "em/context.h"
#include "graph/generators.h"
#include "par/par_config.h"
#include "simd/kernel_policy.h"
#include "test_util.h"

namespace trienum {
namespace {

using simd::KernelMode;
using simd::KernelVariant;

const char* const kAllAlgorithms[] = {
    "ps-cache-aware", "ps-cache-oblivious", "ps-deterministic", "mgt",
    "dementiev",      "edge-iterator",      "chu-cheng",        "bnl"};

struct KernelRun {
  std::vector<graph::Triangle> triangles;  // in EMISSION order
  em::IoStats io;
  std::uint64_t work = 0;
};

KernelRun RunWithMode(const std::string& algo,
                      const std::vector<graph::Edge>& raw, KernelMode kmode,
                      std::size_t threads, em::StorageKind storage,
                      em::ScanMode smode) {
  simd::ScopedKernelMode kscope(kmode);
  par::ScopedThreads tscope(threads);
  em::ScopedScanMode mscope(smode);
  em::Context ctx = test::MakeContext(1 << 11, 32, 0x7001, storage);
  graph::EmGraph g = graph::BuildEmGraph(ctx, raw);
  ctx.cache().Reset();
  ctx.ResetWork();
  core::CollectingSink sink;
  const core::AlgorithmInfo* info = core::FindAlgorithm(algo);
  EXPECT_NE(info, nullptr) << algo;
  info->run(ctx, g, sink);
  ctx.cache().FlushAll();
  KernelRun out;
  out.triangles = sink.triangles();
  out.io = ctx.cache().stats();
  out.work = ctx.work();
  return out;
}

void ExpectIdentical(const KernelRun& got, const KernelRun& base,
                     const std::string& label) {
  ASSERT_EQ(got.triangles, base.triangles) << label;
  EXPECT_EQ(got.io.block_reads, base.io.block_reads) << label;
  EXPECT_EQ(got.io.block_writes, base.io.block_writes) << label;
  EXPECT_EQ(got.io.cache_hits, base.io.cache_hits) << label;
  EXPECT_EQ(got.work, base.work) << label;
}

TEST(SimdInvariance, EveryAlgorithmAcrossBackendsAndScanModes) {
  // Threads fixed at 1; the backend x scan-mode plane under every kernel
  // policy. (The thread axis gets its own matrix below.)
  const std::vector<graph::Edge> raw =
      graph::Rmat(9, 1200, 0.45, 0.22, 0.22, 31);
  const em::StorageKind backends[] = {em::StorageKind::kMemory,
                                      em::StorageKind::kFile};
  const em::ScanMode smodes[] = {em::ScanMode::kBuffered,
                                 em::ScanMode::kElementwise};
  for (const char* algo : kAllAlgorithms) {
    for (em::StorageKind storage : backends) {
      for (em::ScanMode smode : smodes) {
        const KernelRun base =
            RunWithMode(algo, raw, KernelMode::kScalar, 1, storage, smode);
        ASSERT_FALSE(base.triangles.empty()) << algo;
        for (KernelMode kmode : {KernelMode::kSwar, KernelMode::kAuto}) {
          const KernelRun got =
              RunWithMode(algo, raw, kmode, 1, storage, smode);
          ExpectIdentical(
              got, base,
              std::string(algo) + " kernels=" + simd::KernelModeName(kmode) +
                  (storage == em::StorageKind::kFile ? " file" : " memory") +
                  (smode == em::ScanMode::kElementwise ? " elementwise"
                                                       : " buffered"));
        }
      }
    }
  }
}

TEST(SimdInvariance, EveryAlgorithmAcrossThreadCounts) {
  // The kernel x thread-pool interaction: at each thread count the scalar
  // and vectorized runs must agree with each other (and, through
  // test_parallel.cc's matrix, with the serial run).
  const std::vector<graph::Edge> raw =
      graph::Rmat(9, 1200, 0.45, 0.22, 0.22, 31);
  for (const char* algo : kAllAlgorithms) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
      const KernelRun base =
          RunWithMode(algo, raw, KernelMode::kScalar, threads,
                      em::StorageKind::kMemory, em::ScanMode::kBuffered);
      ASSERT_FALSE(base.triangles.empty()) << algo;
      const KernelRun got =
          RunWithMode(algo, raw, KernelMode::kAuto, threads,
                      em::StorageKind::kMemory, em::ScanMode::kBuffered);
      ExpectIdentical(got, base,
                      std::string(algo) + " threads=" +
                          std::to_string(threads) + " kernels=auto");
    }
  }
}

TEST(SimdInvariance, ForcedAvx2RequestMatchesScalarEverywhere) {
  // A kAvx2 request runs AVX2 where available and degrades to SWAR
  // elsewhere — either way the run must equal the scalar baseline, which
  // is exactly why test matrices may request every mode unconditionally.
  const std::vector<graph::Edge> raw = graph::Gnm(200, 900, 47);
  for (const char* algo : {"mgt", "ps-cache-aware", "edge-iterator"}) {
    const KernelRun base =
        RunWithMode(algo, raw, KernelMode::kScalar, 1,
                    em::StorageKind::kMemory, em::ScanMode::kBuffered);
    const KernelRun got =
        RunWithMode(algo, raw, KernelMode::kAvx2, 1, em::StorageKind::kMemory,
                    em::ScanMode::kBuffered);
    ExpectIdentical(got, base, std::string(algo) + " kernels=avx2(forced)");
  }
}

TEST(SimdInvariance, VectorizedRunsActuallyEnterTheKernels) {
  // Guard against the suite passing vacuously: a kAuto mgt run must
  // service kernel calls on the resolved vectorized variant, and a kScalar
  // run must keep the vectorized counters at zero.
  const std::vector<graph::Edge> raw = graph::Clique(24);
  simd::ResetInvocationCounters();
  RunWithMode("mgt", raw, KernelMode::kAuto, 1, em::StorageKind::kMemory,
              em::ScanMode::kBuffered);
  const KernelVariant resolved =
      simd::Avx2Available() ? KernelVariant::kAvx2 : KernelVariant::kSwar;
  EXPECT_GT(simd::Invocations(resolved), 0u);
  EXPECT_EQ(simd::Invocations(KernelVariant::kScalar), 0u);

  simd::ResetInvocationCounters();
  RunWithMode("mgt", raw, KernelMode::kScalar, 1, em::StorageKind::kMemory,
              em::ScanMode::kBuffered);
  EXPECT_GT(simd::Invocations(KernelVariant::kScalar), 0u);
  EXPECT_EQ(simd::Invocations(KernelVariant::kSwar), 0u);
  EXPECT_EQ(simd::Invocations(KernelVariant::kAvx2), 0u);
}

TEST(SimdInvariance, DenseHubDrivesTheBitmapRegimeToTheSameAnswer) {
  // A clique pushes Gamma_3 into the dense-bitmap regime (size >= 64,
  // unit-stride span); the regime choice must be as invisible as the
  // variant choice.
  const std::vector<graph::Edge> raw = graph::Clique(80);
  const KernelRun base =
      RunWithMode("mgt", raw, KernelMode::kScalar, 1, em::StorageKind::kMemory,
                  em::ScanMode::kBuffered);
  ASSERT_EQ(base.triangles.size(), 80u * 79u * 78u / 6u);
  for (KernelMode kmode : {KernelMode::kSwar, KernelMode::kAuto}) {
    const KernelRun got = RunWithMode("mgt", raw, kmode, 1,
                                      em::StorageKind::kMemory,
                                      em::ScanMode::kBuffered);
    ExpectIdentical(got, base, std::string("dense hub kernels=") +
                                   simd::KernelModeName(kmode));
  }
}

TEST(SimdInvariance, Clique4JoinIsKernelPolicyInvariant) {
  // The 4-clique wedge join's flat-set membership batches.
  const std::vector<graph::Edge> raw = graph::CliqueUnion(4, 9);
  auto run = [&](KernelMode kmode, std::size_t threads) {
    simd::ScopedKernelMode kscope(kmode);
    par::ScopedThreads tscope(threads);
    em::Context ctx = test::MakeContext(1 << 11, 32);
    graph::EmGraph g = graph::BuildEmGraph(ctx, raw);
    ctx.cache().Reset();
    core::CollectingCliqueSink sink;
    core::EnumerateFourCliques(ctx, g, sink);
    ctx.cache().FlushAll();
    return std::make_pair(sink.cliques(), ctx.cache().stats());
  };
  for (std::size_t threads : {std::size_t{1}, std::size_t{7}}) {
    const auto [base_quads, base_io] = run(KernelMode::kScalar, threads);
    EXPECT_FALSE(base_quads.empty());
    for (KernelMode kmode : {KernelMode::kSwar, KernelMode::kAuto}) {
      const auto [quads, io] = run(kmode, threads);
      const std::string label = std::string("clique4 threads=") +
                                std::to_string(threads) + " kernels=" +
                                simd::KernelModeName(kmode);
      EXPECT_EQ(quads, base_quads) << label;
      EXPECT_EQ(io.block_reads, base_io.block_reads) << label;
      EXPECT_EQ(io.block_writes, base_io.block_writes) << label;
      EXPECT_EQ(io.cache_hits, base_io.cache_hits) << label;
    }
  }
}

}  // namespace
}  // namespace trienum
