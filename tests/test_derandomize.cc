// Section 4 derandomization: the greedy coloring must achieve the paper's
// deterministic guarantee X_xi < e*E*M, be fully deterministic, and plug
// into the cache-aware algorithm as Theorem 2's algorithm.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cache_aware.h"
#include "core/coloring.h"
#include "core/derandomize.h"
#include "test_util.h"

namespace trienum {
namespace {

using namespace trienum::graph;

TEST(Derandomize, PotentialMeetsTheDeterministicBound) {
  for (std::uint64_t seed : {4ull, 5ull, 6ull}) {
    const std::size_t m_words = 1 << 8;
    em::Context ctx = test::MakeContext(m_words, 16);
    EmGraph g = BuildEmGraph(ctx, Gnm(400, 4000, seed));
    // c = smallest power of two with c^2 * M >= E.
    std::uint32_t c = 1;
    while (static_cast<std::uint64_t>(c) * c * m_words < g.num_edges()) c <<= 1;
    core::DeterministicColoring det =
        core::BuildDeterministicColoring(ctx, g.edges, c);
    EXPECT_LT(det.final_potential(),
              core::DerandomizedBound(g.num_edges(), m_words))
        << "seed " << seed;
  }
}

TEST(Derandomize, FinalPotentialEqualsMeasuredXxi) {
  // At the last level the potential *is* X_xi; cross-check against the
  // independent ComputeColoringStats measurement.
  const std::size_t m_words = 1 << 8;
  em::Context ctx = test::MakeContext(m_words, 16);
  EmGraph g = BuildEmGraph(ctx, Gnm(300, 2500, 8));
  std::uint32_t c = 4;
  core::DeterministicColoring det =
      core::BuildDeterministicColoring(ctx, g.edges, c);
  core::ColoringStats stats = core::ComputeColoringStats(
      ctx, g.edges, [&det](VertexId v) { return det.Color(v); }, c);
  EXPECT_DOUBLE_EQ(stats.x_total, det.final_potential());
}

TEST(Derandomize, FullyDeterministic) {
  em::Context ctx = test::MakeContext(1 << 8, 16);
  EmGraph g = BuildEmGraph(ctx, Gnm(200, 1500, 12));
  core::DeterministicColoring a = core::BuildDeterministicColoring(ctx, g.edges, 8);
  core::DeterministicColoring b = core::BuildDeterministicColoring(ctx, g.edges, 8);
  EXPECT_EQ(a.round_seeds(), b.round_seeds());
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    ASSERT_EQ(a.Color(v), b.Color(v));
  }
}

TEST(Derandomize, ColorsLieInRangeAndUseLog2CBits) {
  em::Context ctx = test::MakeContext(1 << 8, 16);
  EmGraph g = BuildEmGraph(ctx, Gnm(200, 1500, 12));
  core::DeterministicColoring det =
      core::BuildDeterministicColoring(ctx, g.edges, 8);
  EXPECT_EQ(det.num_colors(), 8u);
  EXPECT_EQ(det.round_seeds().size(), 3u);
  for (VertexId v = 0; v < 500; ++v) EXPECT_LT(det.Color(v), 8u);
}

TEST(Derandomize, TrivialSingleColor) {
  em::Context ctx = test::MakeContext();
  EmGraph g = BuildEmGraph(ctx, Gnm(50, 200, 1));
  core::DeterministicColoring det =
      core::BuildDeterministicColoring(ctx, g.edges, 1);
  EXPECT_EQ(det.Color(17), 0u);
  EXPECT_TRUE(det.round_seeds().empty());
}

TEST(Derandomize, GreedyAcceptsQuickly) {
  // Markov: a random candidate fails the (1+alpha) target with probability
  // <= 1/(1+alpha); the first-fit search should inspect only a handful of
  // candidates per round.
  em::Context ctx = test::MakeContext(1 << 8, 16);
  EmGraph g = BuildEmGraph(ctx, Gnm(400, 4000, 15));
  core::DeterministicColoring det =
      core::BuildDeterministicColoring(ctx, g.edges, 8);
  EXPECT_LE(det.candidates_tried(), 3u * det.round_seeds().size() + 8u);
}

TEST(Derandomize, DeterministicAlgorithmIsRepeatable) {
  // Theorem 2's algorithm end-to-end: two runs emit the identical sequence
  // (not just set) of triangles.
  auto raw = Gnm(150, 1100, 3);
  auto run_once = [&raw]() {
    em::Context ctx = test::MakeContext(1 << 9, 16);
    EmGraph g = BuildEmGraph(ctx, raw);
    core::CollectingSink sink;
    core::CacheAwareOptions opts;
    opts.deterministic_coloring = true;
    core::EnumerateCacheAware(ctx, g, sink, opts);
    return sink.triangles();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Derandomize, SkewedDegreesWithinBoundAfterHighDegreeRemoval) {
  // The X_adj term of the bound needs max degree <= sqrt(E*M); emulate the
  // §2 pipeline: strip high-degree vertices first, then derandomize.
  const std::size_t m_words = 1 << 8;
  em::Context ctx = test::MakeContext(m_words, 16);
  EmGraph g = BuildEmGraph(ctx, CliquePlusPath(40, 2000));
  double threshold =
      std::sqrt(static_cast<double>(g.num_edges()) * m_words);
  // Filter out edges touching vertices above the threshold (host-side prep).
  std::vector<Edge> low;
  ctx.cache().set_counting(false);
  std::vector<std::uint32_t> deg(g.num_vertices);
  for (VertexId v = 0; v < g.num_vertices; ++v) deg[v] = g.degrees.Get(v);
  for (const Edge& e : DownloadEdges(g)) {
    if (deg[e.u] <= threshold && deg[e.v] <= threshold) low.push_back(e);
  }
  ctx.cache().set_counting(true);
  em::Array<Edge> low_dev = ctx.Alloc<Edge>(low.size());
  for (std::size_t i = 0; i < low.size(); ++i) low_dev.Set(i, low[i]);

  std::uint32_t c = 1;
  while (static_cast<std::uint64_t>(c) * c * m_words < low.size()) c <<= 1;
  core::DeterministicColoring det =
      core::BuildDeterministicColoring(ctx, low_dev, c);
  EXPECT_LT(det.final_potential(), core::DerandomizedBound(low.size(), m_words));
}

TEST(Derandomize, AghpFamilySourceAlsoMeetsTheBound) {
  // The paper's actual Lemma 6 family (AGHP over GF(2^m)) as candidate
  // source: slower, but the greedy inequality and final guarantee must hold
  // just the same on a small input.
  const std::size_t m_words = 1 << 8;
  em::Context ctx = test::MakeContext(m_words, 16);
  EmGraph g = BuildEmGraph(ctx, Gnm(120, 900, 4));
  core::DerandOptions opts;
  opts.use_aghp_family = true;
  opts.aghp_m = 12;
  core::DeterministicColoring det =
      core::BuildDeterministicColoring(ctx, g.edges, 4, opts);
  EXPECT_LT(det.final_potential(),
            core::DerandomizedBound(g.num_edges(), m_words));
  // Deterministic across rebuilds.
  core::DeterministicColoring det2 =
      core::BuildDeterministicColoring(ctx, g.edges, 4, opts);
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    ASSERT_EQ(det.Color(v), det2.Color(v));
  }
  // Cross-check against independent stats measurement.
  core::ColoringStats stats = core::ComputeColoringStats(
      ctx, g.edges, [&det](VertexId v) { return det.Color(v); }, 4);
  EXPECT_DOUBLE_EQ(stats.x_total, det.final_potential());
}

}  // namespace
}  // namespace trienum
