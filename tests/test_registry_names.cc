// Keeps the algorithm-name list documented on FindAlgorithm (and mirrored in
// README.md's table) in sync with the actual registry.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/algorithms.h"

namespace trienum::core {
namespace {

// The names promised by the FindAlgorithm comment in core/algorithms.h, in
// registry order. If this test fails you changed one side only: update the
// registry, the header comment, README.md, and this list together.
const std::vector<std::string> kDocumentedNames = {
    "ps-cache-aware", "ps-cache-oblivious", "ps-deterministic", "mgt",
    "dementiev",      "edge-iterator",      "chu-cheng",        "bnl",
};

TEST(RegistryNames, MatchesHeaderComment) {
  std::vector<std::string> actual;
  for (const AlgorithmInfo& a : AllAlgorithms()) actual.push_back(a.name);
  EXPECT_EQ(actual, kDocumentedNames);
}

TEST(RegistryNames, FindAlgorithmResolvesEveryDocumentedName) {
  for (const std::string& name : kDocumentedNames) {
    const AlgorithmInfo* info = FindAlgorithm(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_EQ(info->name, name);
    EXPECT_TRUE(static_cast<bool>(info->run)) << name;
    EXPECT_FALSE(info->description.empty()) << name;
  }
}

TEST(RegistryNames, UnknownNameIsNull) {
  EXPECT_EQ(FindAlgorithm("no-such-algorithm"), nullptr);
  // `reference` is a CLI-level pseudo-algorithm, not a registry entry.
  EXPECT_EQ(FindAlgorithm("reference"), nullptr);
}

}  // namespace
}  // namespace trienum::core
