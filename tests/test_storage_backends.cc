// Differential matrix locking the file-backed and memory-mapped storage
// backends to the in-memory simulator: every registered algorithm, run on
// all backends over a spread of generator specs, must produce the identical
// triangle set AND identical IoStats. The simulator is the spec — any
// divergence in block_reads, block_writes or cache_hits is a bug in the
// staged data path (file) or the mapped view (mmap).
//
// Also covers the data-integrity invariants the backends must share (zero
// initialization, uncounted bypass windows, bulk DMA of padded records) and
// the out-of-core acceptance criterion: a device footprint >= 100x M.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "em/array.h"
#include "em/storage.h"
#include "test_util.h"

namespace trienum {
namespace {

using namespace trienum::graph;

struct BackendRun {
  std::vector<Triangle> triangles;
  em::IoStats io;
};

BackendRun RunOn(em::StorageKind kind, const std::string& algo_name,
                 const std::vector<Edge>& raw, std::size_t m, std::size_t b,
                 std::uint64_t seed) {
  em::Context ctx = test::MakeContext(m, b, seed, kind);
  EmGraph g = BuildEmGraph(ctx, raw);
  ctx.cache().Reset();
  core::CollectingSink sink;
  core::FindAlgorithm(algo_name)->run(ctx, g, sink);
  ctx.cache().FlushAll();
  BackendRun out;
  out.triangles = sink.triangles();
  std::sort(out.triangles.begin(), out.triangles.end());
  out.io = ctx.cache().stats();
  return out;
}

/// The generator specs of the differential matrix: a random graph, a skewed
/// R-MAT, a dense core with periphery, and a planted-triangle instance —
/// plus a triangle-free control.
std::vector<test::GraphCase> DifferentialCases() {
  std::vector<test::GraphCase> cases;
  cases.push_back({"gnm", Gnm(512, 2048, 7)});
  cases.push_back({"rmat", Rmat(9, 1500, 0.45, 0.22, 0.22, 13)});
  cases.push_back({"clique_plus_path", CliquePlusPath(14, 60)});
  cases.push_back({"planted", PlantedTriangles(300, 600, 40, 99)});
  cases.push_back({"bipartite_control", BipartiteRandom(40, 40, 300, 5)});
  return cases;
}

TEST(StorageBackends, FullAlgorithmMatrixIsObservationallyIdentical) {
  const std::size_t m = 1 << 10, b = 16;
  for (const test::GraphCase& gc : DifferentialCases()) {
    for (const core::AlgorithmInfo& a : core::AllAlgorithms()) {
      SCOPED_TRACE(gc.name + " / " + a.name);
      BackendRun mem = RunOn(em::StorageKind::kMemory, a.name, gc.edges, m, b,
                             /*seed=*/0xD1FF);
      for (em::StorageKind kind :
           {em::StorageKind::kFile, em::StorageKind::kMmap}) {
        SCOPED_TRACE(kind == em::StorageKind::kFile ? "file" : "mmap");
        BackendRun other = RunOn(kind, a.name, gc.edges, m, b,
                                 /*seed=*/0xD1FF);
        EXPECT_EQ(mem.triangles, other.triangles);
        EXPECT_EQ(mem.io.block_reads, other.io.block_reads);
        EXPECT_EQ(mem.io.block_writes, other.io.block_writes);
        EXPECT_EQ(mem.io.cache_hits, other.io.cache_hits);
      }
    }
  }
}

TEST(StorageBackends, MatrixAcrossHierarchyShapes) {
  // Same differential, sweeping (M, B) so line granularity and cache
  // pressure both vary; one algorithm per family keeps runtime sane.
  const std::vector<Edge> raw = Gnm(400, 1600, 21);
  for (auto [m, b] : std::vector<std::pair<std::size_t, std::size_t>>{
           {256, 8}, {1 << 10, 16}, {1 << 12, 64}}) {
    for (const char* name : {"ps-cache-aware", "ps-cache-oblivious", "mgt"}) {
      SCOPED_TRACE(std::string(name) + " M=" + std::to_string(m) +
                   " B=" + std::to_string(b));
      BackendRun mem =
          RunOn(em::StorageKind::kMemory, name, raw, m, b, /*seed=*/0xABCD);
      for (em::StorageKind kind :
           {em::StorageKind::kFile, em::StorageKind::kMmap}) {
        SCOPED_TRACE(kind == em::StorageKind::kFile ? "file" : "mmap");
        BackendRun other = RunOn(kind, name, raw, m, b, /*seed=*/0xABCD);
        EXPECT_EQ(mem.triangles, other.triangles);
        EXPECT_EQ(mem.io.block_reads, other.io.block_reads);
        EXPECT_EQ(mem.io.block_writes, other.io.block_writes);
        EXPECT_EQ(mem.io.cache_hits, other.io.cache_hits);
      }
    }
  }
}

TEST(StorageBackends, FileBackendSurvivesDeviceFootprint100xM) {
  // Out-of-core acceptance: device footprint >= 100x the internal memory.
  // Only O(M) words may be resident; everything else round-trips the file.
  const std::size_t m = 1 << 10, b = 16;
  em::Context ctx = test::MakeFileContext(m, b);
  const std::size_t n = 100 * m + 1;
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
  ASSERT_GE(ctx.device().peak_words(), 100 * m);
  for (std::size_t i = 0; i < n; ++i) a.Set(i, i * 2654435761ULL);
  for (std::size_t i = 0; i < n; i += 997) {
    ASSERT_EQ(a.Get(i), i * 2654435761ULL) << i;
  }
  // The cache really evicted to disk: real traffic must exceed M words.
  const em::StorageTelemetry& tel = ctx.device().backend().telemetry();
  EXPECT_GT(tel.bytes_written, m * sizeof(em::Word));
}

TEST(StorageBackends, NeverWrittenWordsReadAsZeroOnBothBackends) {
  for (em::StorageKind kind :
       {em::StorageKind::kMemory, em::StorageKind::kFile,
        em::StorageKind::kMmap}) {
    em::Context ctx = test::MakeContext(256, 16, 0x7001, kind);
    em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(4096);
    for (std::size_t i = 0; i < 4096; i += 313) EXPECT_EQ(a.Get(i), 0u);
  }
}

TEST(StorageBackends, UncountedWindowsPreserveDataAndStats) {
  // Mixed counted/uncounted access, as the normalization pipeline does it:
  // uncounted writes must be durable on both backends (write-through on the
  // file backend) and must leave the counted-region stats identical.
  auto drive = [](em::StorageKind kind) {
    em::Context ctx = test::MakeContext(/*m=*/128, /*b=*/8, 0x7001, kind);
    em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(2048);
    ctx.cache().set_counting(false);
    for (std::size_t i = 0; i < 2048; ++i) a.Set(i, i + 1);
    ctx.cache().set_counting(true);
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < 2048; ++i) sum += a.Get(i);
    ctx.cache().set_counting(false);
    for (std::size_t i = 0; i < 2048; i += 2) a.Set(i, 0);  // uncounted patch
    ctx.cache().set_counting(true);
    for (std::size_t i = 0; i < 2048; ++i) sum += 3 * a.Get(i);
    ctx.cache().FlushAll();
    return std::pair<std::uint64_t, em::IoStats>(sum, ctx.cache().stats());
  };
  auto [sum_mem, io_mem] = drive(em::StorageKind::kMemory);
  auto [sum_file, io_file] = drive(em::StorageKind::kFile);
  EXPECT_EQ(sum_mem, sum_file);
  EXPECT_EQ(io_mem.block_reads, io_file.block_reads);
  EXPECT_EQ(io_mem.block_writes, io_file.block_writes);
  EXPECT_EQ(io_mem.cache_hits, io_file.cache_hits);
}

TEST(StorageBackends, BulkDmaOfPaddedRecordsRoundTrips) {
  // uint32 records are word-padded: the bulk DMA path must pack/unpack
  // identically on every backend.
  for (em::StorageKind kind :
       {em::StorageKind::kMemory, em::StorageKind::kFile,
        em::StorageKind::kMmap}) {
    em::Context ctx = test::MakeContext(128, 8, 0x7001, kind);
    em::Array<std::uint32_t> a = ctx.Alloc<std::uint32_t>(1000);
    std::vector<std::uint32_t> host(1000);
    for (std::size_t i = 0; i < 1000; ++i) host[i] = static_cast<std::uint32_t>(i * 7 + 1);
    a.WriteFrom(0, 1000, host.data());
    std::vector<std::uint32_t> back(1000, 0);
    a.ReadTo(0, 1000, back.data());
    EXPECT_EQ(host, back);
    // Element access agrees with bulk access.
    EXPECT_EQ(a.Get(999), host[999]);
  }
}

TEST(StorageBackends, FileBackendReportsRealTraffic) {
  em::Context ctx = test::MakeFileContext(/*m=*/128, /*b=*/8);
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(4096);
  for (std::size_t i = 0; i < 4096; ++i) a.Set(i, i);
  ctx.cache().FlushAll();
  const em::StorageTelemetry& tel = ctx.device().backend().telemetry();
  EXPECT_EQ(std::string(ctx.device().backend().name()), "file");
  // A 4096-word sequential write through a 16-line cache must move real
  // bytes: all data ends up in the file.
  EXPECT_GE(tel.bytes_written, 4096 * sizeof(em::Word));
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < 4096; ++i) sum += a.Get(i);
  EXPECT_EQ(sum, 4096ull * 4095 / 2);
  EXPECT_GT(tel.bytes_read, 0u);
}

TEST(StorageBackends, MemoryBackendPerformsNoRealTransfers) {
  // The counting-only path must never move data through the backend API —
  // that is what "every I/O is simulated" means.
  em::Context ctx = test::MakeContext(128, 8);
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(4096);
  for (std::size_t i = 0; i < 4096; ++i) a.Set(i, i);
  ctx.cache().FlushAll();
  const em::StorageTelemetry& tel = ctx.device().backend().telemetry();
  EXPECT_EQ(tel.bytes_read, 0u);
  EXPECT_EQ(tel.bytes_written, 0u);
}

TEST(StorageBackends, ResetPreservesStagedData) {
  // Reset drops accounting state, never data — dirty staged lines must be
  // flushed to the file, not discarded.
  em::Context ctx = test::MakeFileContext(128, 8);
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(512);
  for (std::size_t i = 0; i < 512; ++i) a.Set(i, i ^ 0xABCDULL);
  ctx.cache().Reset();
  EXPECT_EQ(ctx.cache().stats().total_ios(), 0u);
  for (std::size_t i = 0; i < 512; ++i) ASSERT_EQ(a.Get(i), i ^ 0xABCDULL);
}

TEST(StorageBackends, RegionReuseIsCoherentOnFileBackend) {
  // Release + re-Allocate reuses device addresses; stale resident lines from
  // the previous region must not resurrect old data over new writes.
  em::Context ctx = test::MakeFileContext(128, 8);
  em::Addr base0;
  {
    auto region = ctx.Region();
    em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(1024);
    base0 = a.base();
    for (std::size_t i = 0; i < 1024; ++i) a.Set(i, 111);
  }
  {
    auto region = ctx.Region();
    em::Array<std::uint64_t> b = ctx.Alloc<std::uint64_t>(1024);
    ASSERT_EQ(b.base(), base0);  // same addresses, new lifetime
    for (std::size_t i = 0; i < 1024; ++i) b.Set(i, 222);
    for (std::size_t i = 0; i < 1024; i += 101) ASSERT_EQ(b.Get(i), 222u);
  }
}

// ---------------------------------------------------------------------------
// MmapBackend unit coverage: the mapped view, growth-by-remap, zero
// initialization, telemetry, and failure latching — the properties the
// differential matrix above relies on.

TEST(MmapBackend, InitializesAndReportsName) {
  em::MmapBackend b;
  ASSERT_TRUE(b.init_status().ok()) << b.init_status().ToString();
  EXPECT_EQ(std::string(b.name()), "mmap");
  EXPECT_TRUE(b.memory_resident());
  EXPECT_FALSE(b.path().empty());
  EXPECT_EQ(b.size_words(), 0u);
}

TEST(MmapBackend, BadTempDirLatchesInitStatus) {
  em::MmapBackend b("/nonexistent/trienum-mmap-test-dir");
  EXPECT_FALSE(b.init_status().ok());
  // The latched status must keep failing I/O cleanly, not crash.
  em::Word w = 0;
  EXPECT_FALSE(b.ReadWords(0, 1, &w).ok());
  EXPECT_FALSE(b.WriteWords(0, 1, &w).ok());
}

TEST(MmapBackend, GrowByRemapPreservesDataAndZeroFills) {
  em::MmapBackend b;
  ASSERT_TRUE(b.init_status().ok());
  std::vector<em::Word> first(512);
  for (std::size_t i = 0; i < first.size(); ++i) first[i] = i * 0x9E3779B9ULL;
  ASSERT_TRUE(b.WriteWords(0, first.size(), first.data()).ok());
  const std::uint64_t grows_before = b.grow_calls();
  // Force several remaps; earlier data must survive each one and the new
  // tail must read as zero (fresh file pages).
  ASSERT_TRUE(b.EnsureSize(1 << 16).ok());
  ASSERT_TRUE(b.EnsureSize(1 << 18).ok());
  EXPECT_GT(b.grow_calls(), grows_before);
  EXPECT_GE(b.size_words(), std::size_t{1} << 18);
  std::vector<em::Word> back(first.size());
  ASSERT_TRUE(b.ReadWords(0, back.size(), back.data()).ok());
  EXPECT_EQ(first, back);
  std::vector<em::Word> tail(64, 0xFFFFFFFFFFFFFFFFULL);
  ASSERT_TRUE(b.ReadWords((1 << 18) - 64, 64, tail.data()).ok());
  for (em::Word w : tail) EXPECT_EQ(w, 0u);
}

TEST(MmapBackend, ReadPastSizeZeroFillsLikeMemoryBackend) {
  em::MmapBackend b;
  ASSERT_TRUE(b.init_status().ok());
  em::Word one = 42;
  ASSERT_TRUE(b.WriteWords(0, 1, &one).ok());
  // Straddling read: the in-range prefix comes from the map, the rest zero.
  std::vector<em::Word> out(8, 0xAAULL);
  ASSERT_TRUE(b.ReadWords(0, out.size(), out.data()).ok());
  EXPECT_EQ(out[0], 42u);
  for (std::size_t i = b.size_words(); i < out.size(); ++i) {
    EXPECT_EQ(out[i], 0u) << i;
  }
}

TEST(MmapBackend, DirectViewTracksWrites) {
  em::MmapBackend b;
  ASSERT_TRUE(b.init_status().ok());
  std::vector<em::Word> data(128);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = ~i;
  ASSERT_TRUE(b.WriteWords(0, data.size(), data.data()).ok());
  const em::Word* view = b.DirectView();
  ASSERT_NE(view, nullptr);
  for (std::size_t i = 0; i < data.size(); ++i) ASSERT_EQ(view[i], ~i);
}

TEST(MmapBackend, CountsTelemetry) {
  em::MmapBackend b;
  ASSERT_TRUE(b.init_status().ok());
  std::vector<em::Word> buf(32, 7);
  ASSERT_TRUE(b.WriteWords(0, buf.size(), buf.data()).ok());
  ASSERT_TRUE(b.ReadWords(0, buf.size(), buf.data()).ok());
  const em::StorageTelemetry& tel = b.telemetry();
  EXPECT_EQ(tel.write_calls, 1u);
  EXPECT_EQ(tel.read_calls, 1u);
  EXPECT_EQ(tel.bytes_written, buf.size() * sizeof(em::Word));
  EXPECT_EQ(tel.bytes_read, buf.size() * sizeof(em::Word));
}

TEST(MmapBackend, AdviseIsHarmlessIncludingPastEnd) {
  em::MmapBackend b;
  ASSERT_TRUE(b.init_status().ok());
  std::vector<em::Word> data(256);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = i + 1;
  ASSERT_TRUE(b.WriteWords(0, data.size(), data.data()).ok());
  // Advice over live data, past-the-end ranges, and an empty map region must
  // all be no-ops for correctness (madvise is a hint).
  b.Advise(0, data.size(), em::AdviseKind::kSequentialRead);
  b.Advise(0, 1 << 20, em::AdviseKind::kSequentialRead);
  b.Advise(data.size() + 1000, 64, em::AdviseKind::kSequentialWrite);
  std::vector<em::Word> back(data.size());
  ASSERT_TRUE(b.ReadWords(0, back.size(), back.data()).ok());
  EXPECT_EQ(data, back);
}

TEST(MmapBackend, SelectableThroughMakeStorageBackend) {
  em::EmConfig cfg;
  cfg.storage = em::StorageKind::kMmap;
  std::unique_ptr<em::StorageBackend> b = em::MakeStorageBackend(cfg);
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->init_status().ok()) << b->init_status().ToString();
  EXPECT_EQ(std::string(b->name()), "mmap");
}

}  // namespace
}  // namespace trienum
