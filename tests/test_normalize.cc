// The §1.3 normalization pipeline: canonical invariants (lex order, u < v,
// degree-ranked ids), correctness of the degree array, the inverse
// relabeling, duplicate/self-loop removal, idempotence, and its O(sort E)
// I/O envelope.
#include <gtest/gtest.h>

#include "extsort/ext_merge_sort.h"
#include "graph/host_graph.h"
#include "test_util.h"

namespace trienum {
namespace {

using namespace trienum::graph;

TEST(Normalize, CanonicalInvariants) {
  em::Context ctx = test::MakeContext();
  auto raw = Gnm(150, 600, 21);
  EmGraph g = BuildEmGraph(ctx, raw);
  std::vector<Edge> edges = DownloadEdges(g);

  ASSERT_EQ(edges.size(), 600u);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_LT(edges[i].u, edges[i].v);
    EXPECT_LT(edges[i].v, g.num_vertices);
    if (i > 0) {
      EXPECT_TRUE(edges[i - 1] < edges[i]);  // strict lex order
    }
  }
}

TEST(Normalize, DegreeArrayMatchesAndIsSorted) {
  em::Context ctx = test::MakeContext();
  auto raw = Gnm(80, 400, 4);
  EmGraph g = BuildEmGraph(ctx, raw);
  std::vector<Edge> edges = DownloadEdges(g);

  std::vector<std::uint32_t> deg(g.num_vertices, 0);
  for (const Edge& e : edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  ctx.cache().set_counting(false);
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    EXPECT_EQ(g.degrees.Get(v), deg[v]) << "vertex " << v;
    if (v > 0) {
      EXPECT_LE(g.degrees.Get(v - 1), g.degrees.Get(v));
    }
  }
}

TEST(Normalize, RemovesSelfLoopsAndDuplicates) {
  em::Context ctx = test::MakeContext();
  std::vector<Edge> raw = {Edge{1, 2}, Edge{2, 1}, Edge{1, 2}, Edge{3, 3},
                           Edge{2, 3}, Edge{5, 5}, Edge{3, 2}};
  EmGraph g = BuildEmGraph(ctx, raw);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.num_vertices, 3u);
}

TEST(Normalize, EmptyAndAllLoopInputs) {
  em::Context ctx = test::MakeContext();
  EXPECT_EQ(BuildEmGraph(ctx, {}).num_edges(), 0u);
  EXPECT_EQ(BuildEmGraph(ctx, {Edge{4, 4}, Edge{9, 9}}).num_edges(), 0u);
}

TEST(Normalize, InverseMappingReconstructsInput) {
  em::Context ctx = test::MakeContext();
  auto raw = Gnm(60, 250, 77);
  std::vector<VertexId> new_to_old;
  EmGraph g = BuildEmGraph(ctx, raw, &new_to_old);
  ASSERT_EQ(new_to_old.size(), g.num_vertices);

  HostGraph original(raw);
  std::vector<Edge> mapped;
  for (const Edge& e : DownloadEdges(g)) {
    VertexId a = new_to_old[e.u], b = new_to_old[e.v];
    mapped.push_back(Edge{std::min(a, b), std::max(a, b)});
  }
  HostGraph roundtrip(mapped);
  EXPECT_EQ(roundtrip.CanonicalEdges(), original.CanonicalEdges());
}

TEST(Normalize, SparseHugeIdsCompressed) {
  em::Context ctx = test::MakeContext();
  std::vector<Edge> raw = {Edge{1000000, 2000000}, Edge{2000000, 3000000},
                           Edge{1000000, 3000000}};
  EmGraph g = BuildEmGraph(ctx, raw);
  EXPECT_EQ(g.num_vertices, 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  // Triangle structure preserved.
  EXPECT_EQ(core::ListTrianglesHost(DownloadEdges(g)).size(), 1u);
}

TEST(Normalize, IdempotentOnNormalizedInput) {
  em::Context ctx = test::MakeContext();
  auto raw = Gnm(50, 200, 9);
  EmGraph g1 = BuildEmGraph(ctx, raw);
  std::vector<Edge> once = DownloadEdges(g1);
  EmGraph g2 = BuildEmGraph(ctx, once);
  std::vector<Edge> twice = DownloadEdges(g2);
  EXPECT_EQ(once, twice);  // degree-ranked ids are a fixed point
}

TEST(Normalize, DegreeOrderingPutsHubsLast) {
  em::Context ctx = test::MakeContext();
  // Star: the center has degree 40, every leaf degree 1 => the center must
  // be the largest id after relabeling.
  EmGraph g = BuildEmGraph(ctx, Star(40));
  ctx.cache().set_counting(false);
  EXPECT_EQ(g.degrees.Get(g.num_vertices - 1), 40u);
  for (VertexId v = 0; v + 1 < g.num_vertices; ++v) {
    EXPECT_EQ(g.degrees.Get(v), 1u);
  }
}

TEST(Normalize, IoWithinSortEnvelope) {
  const std::size_t n = 1 << 14;
  const std::size_t m = 1 << 10, b = 16;
  em::Context ctx = test::MakeContext(m, b);
  auto raw = Gnm(5000, n, 31);
  em::Array<Edge> dev = ctx.Alloc<Edge>(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) dev.Set(i, raw[i]);
  ctx.cache().Reset();
  NormalizeEdges(ctx, dev);
  ctx.cache().FlushAll();
  double measured = static_cast<double>(ctx.cache().stats().total_ios());
  // The pipeline is a constant number of sorts and scans of <= 2E records.
  double bound = 12.0 * extsort::SortIoBound(2 * n, 1, m, b);
  EXPECT_LE(measured, bound);
}

}  // namespace
}  // namespace trienum
