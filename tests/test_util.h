// Shared helpers for the test suite: context factories, algorithm runners,
// and triangle-set comparison utilities.
#ifndef TRIENUM_TESTS_TEST_UTIL_H_
#define TRIENUM_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "core/reference.h"
#include "core/sink.h"
#include "em/context.h"
#include "graph/generators.h"
#include "graph/normalize.h"

namespace trienum::test {

inline em::Context MakeContext(std::size_t m_words = 1 << 12,
                               std::size_t b_words = 16,
                               std::uint64_t seed = 0x7001,
                               em::StorageKind storage = em::StorageKind::kMemory) {
  em::EmConfig cfg;
  cfg.memory_words = m_words;
  cfg.block_words = b_words;
  cfg.seed = seed;
  cfg.storage = storage;
  return em::Context(cfg);
}

/// Context whose device lives in a temp file (out-of-core storage backend).
inline em::Context MakeFileContext(std::size_t m_words = 1 << 12,
                                   std::size_t b_words = 16,
                                   std::uint64_t seed = 0x7001) {
  return MakeContext(m_words, b_words, seed, em::StorageKind::kFile);
}

/// Runs the named algorithm on raw host edges; returns the collected
/// triangles (in normalized-id space), sorted.
inline std::vector<graph::Triangle> RunCollect(const std::string& algo_name,
                                               const std::vector<graph::Edge>& raw,
                                               std::size_t m_words = 1 << 12,
                                               std::size_t b_words = 16,
                                               std::uint64_t seed = 0x7001) {
  em::Context ctx = MakeContext(m_words, b_words, seed);
  graph::EmGraph g = graph::BuildEmGraph(ctx, raw);
  core::CollectingSink sink;
  const core::AlgorithmInfo* algo = core::FindAlgorithm(algo_name);
  if (algo == nullptr) ADD_FAILURE() << "unknown algorithm " << algo_name;
  algo->run(ctx, g, sink);
  std::vector<graph::Triangle> out = sink.triangles();
  std::sort(out.begin(), out.end());
  return out;
}

/// Ground truth in normalized-id space: normalize through an (uncounted)
/// context, download, and run the host reference.
inline std::vector<graph::Triangle> ReferenceNormalized(
    const std::vector<graph::Edge>& raw) {
  em::Context ctx = MakeContext();
  graph::EmGraph g = graph::BuildEmGraph(ctx, raw);
  return core::ListTrianglesHost(graph::DownloadEdges(g));
}

/// True if `tris` contains no duplicate entries (exactly-once check).
inline bool NoDuplicates(std::vector<graph::Triangle> tris) {
  std::sort(tris.begin(), tris.end());
  return std::adjacent_find(tris.begin(), tris.end()) == tris.end();
}

/// A named raw-edge workload for parameterized suites.
struct GraphCase {
  std::string name;
  std::vector<graph::Edge> edges;
};

/// The standard menagerie used across suites: covers empty/trivial inputs,
/// triangle-free controls, dense cores, skewed degrees, random graphs, and
/// the tripartite join shape.
inline std::vector<GraphCase> StandardGraphCases() {
  using namespace trienum::graph;
  std::vector<GraphCase> cases;
  cases.push_back({"empty", {}});
  cases.push_back({"single_edge", {Edge{0, 1}}});
  cases.push_back({"one_triangle", {Edge{0, 1}, Edge{1, 2}, Edge{0, 2}}});
  cases.push_back({"two_triangles_shared_edge",
                   {Edge{0, 1}, Edge{1, 2}, Edge{0, 2}, Edge{1, 3}, Edge{2, 3}}});
  cases.push_back({"path16", PathGraph(16)});
  cases.push_back({"star32", Star(32)});
  cases.push_back({"cycle3", CycleGraph(3)});
  cases.push_back({"bipartite", BipartiteRandom(12, 12, 60, 11)});
  cases.push_back({"k4", Clique(4)});
  cases.push_back({"k16", Clique(16)});
  cases.push_back({"clique_plus_path", CliquePlusPath(12, 40)});
  cases.push_back({"clique_union", CliqueUnion(5, 7)});
  cases.push_back({"tripartite", CompleteTripartite(6, 5, 4)});
  cases.push_back({"gnm_sparse", Gnm(200, 400, 42)});
  cases.push_back({"gnm_dense", Gnm(60, 900, 43)});
  cases.push_back({"rmat", Rmat(9, 800, 0.45, 0.2, 0.2, 44)});
  cases.push_back({"planted", PlantedTriangles(120, 200, 20, 45)});
  return cases;
}

}  // namespace trienum::test

#endif  // TRIENUM_TESTS_TEST_UTIL_H_
