// Theorem-shaped I/O envelope tests: every algorithm's measured I/Os stay
// within a constant of its claimed bound on random graphs, and the paper's
// algorithms stay within a constant of E^{3/2}/(sqrt(M)B).
#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/bnl.h"
#include "core/cache_aware.h"
#include "core/dementiev.h"
#include "core/edge_iterator.h"
#include "core/mgt.h"
#include "test_util.h"

namespace trienum {
namespace {

using namespace trienum::graph;

double MeasureIos(const std::string& algo_name, const std::vector<Edge>& raw,
                  std::size_t m, std::size_t b, std::uint64_t* tris = nullptr) {
  em::Context ctx = test::MakeContext(m, b);
  EmGraph g = BuildEmGraph(ctx, raw);
  ctx.cache().Reset();
  core::CountingSink sink;
  core::FindAlgorithm(algo_name)->run(ctx, g, sink);
  ctx.cache().FlushAll();
  if (tris != nullptr) *tris = sink.count();
  return static_cast<double>(ctx.cache().stats().total_ios());
}

constexpr std::size_t kM = 1 << 10;
constexpr std::size_t kB = 16;
constexpr std::size_t kE = 1 << 14;

std::vector<Edge> TestGraph() { return Gnm(1 << 12, kE, 101); }

TEST(IoBounds, CacheAwareWithinTheoremBound) {
  double ios = MeasureIos("ps-cache-aware", TestGraph(), kM, kB);
  EXPECT_LE(ios, 60.0 * core::PaghSilvestriIoBound(kE, kM, kB));
}

TEST(IoBounds, DeterministicWithinTheoremBound) {
  double ios = MeasureIos("ps-deterministic", TestGraph(), kM, kB);
  EXPECT_LE(ios, 120.0 * core::PaghSilvestriIoBound(kE, kM, kB));
}

TEST(IoBounds, CacheObliviousWithinTheoremBound) {
  double ios = MeasureIos("ps-cache-oblivious", TestGraph(), kM, kB);
  EXPECT_LE(ios, 300.0 * core::PaghSilvestriIoBound(kE, kM, kB));
}

TEST(IoBounds, MgtWithinModel) {
  double ios = MeasureIos("mgt", TestGraph(), kM, kB);
  EXPECT_LE(ios, 3.0 * core::MgtIoBound(kE, kM, kB));
}

TEST(IoBounds, DementievWithinModel) {
  double ios = MeasureIos("dementiev", TestGraph(), kM, kB);
  EXPECT_LE(ios, 6.0 * core::DementievIoBound(kE, kM, kB));
}

TEST(IoBounds, EdgeIteratorWithinModel) {
  double ios = MeasureIos("edge-iterator", TestGraph(), kM, kB);
  EXPECT_LE(ios, 4.0 * core::EdgeIteratorIoBound(kE, kB));
}

TEST(IoBounds, BnlWithinModel) {
  // BNL is O(E^3/(M^2 B)); use a smaller instance to keep runtime sane.
  const std::size_t e = 1 << 12;
  double ios = MeasureIos("bnl", Gnm(1 << 10, e, 5), kM, kB);
  core::BnlOptions opts;
  EXPECT_LE(ios, 2.0 * core::BnlIoBound(e, kM, kB, opts));
}

TEST(IoBounds, EveryAlgorithmAtLeastScansTheInput) {
  // Sanity floor: nobody can enumerate without reading the edges once.
  for (const core::AlgorithmInfo& a : core::AllAlgorithms()) {
    if (a.name == "bnl") continue;  // measured above on the smaller instance
    double ios = MeasureIos(a.name, TestGraph(), kM, kB);
    EXPECT_GE(ios, static_cast<double>(kE) / kB) << a.name;
  }
}

// ---------------------------------------------------------------------------
// Pinned I/O regressions: exact measured block I/Os on a fixed seeded input
// (Gnm(2^12, 2^14, seed 101) under M=2^10, B=16, context seed 0x7001),
// with a ±10% tolerance band. A cache or algorithm refactor that silently
// changes I/O behavior beyond noise must show up here and be re-pinned
// deliberately. The triangle count is pinned exactly: it is seed-determined
// and any drift means the algorithm (not just the accounting) changed.

constexpr double kPinTolerance = 0.10;

void ExpectPinnedIos(const std::string& algo, std::uint64_t pinned_tris,
                     double pinned_ios) {
  std::uint64_t tris = 0;
  double ios = MeasureIos(algo, TestGraph(), kM, kB, &tris);
  EXPECT_EQ(tris, pinned_tris) << algo << ": seed-determined count drifted";
  EXPECT_GE(ios, (1.0 - kPinTolerance) * pinned_ios)
      << algo << ": I/Os dropped >10% below the pinned value " << pinned_ios
      << " — if intentional, re-pin (and celebrate)";
  EXPECT_LE(ios, (1.0 + kPinTolerance) * pinned_ios)
      << algo << ": I/Os regressed >10% above the pinned value " << pinned_ios;
}

TEST(IoBounds, PinnedRegressionCacheAware) {
  ExpectPinnedIos("ps-cache-aware", 71, 90266.0);
}

TEST(IoBounds, PinnedRegressionCacheOblivious) {
  ExpectPinnedIos("ps-cache-oblivious", 71, 1034172.0);
}

TEST(IoBounds, PinnedRegressionHoldsOnFileBackend) {
  // The same pinned envelope measured on the file backend: IoStats are
  // backend-independent, so the identical values must reproduce bit-for-bit
  // against the memory measurement.
  std::uint64_t tris_mem = 0, tris_file = 0;
  double ios_mem =
      MeasureIos("ps-cache-aware", TestGraph(), kM, kB, &tris_mem);
  em::Context ctx = test::MakeFileContext(kM, kB);
  EmGraph g = BuildEmGraph(ctx, TestGraph());
  ctx.cache().Reset();
  core::CountingSink sink;
  core::FindAlgorithm("ps-cache-aware")->run(ctx, g, sink);
  ctx.cache().FlushAll();
  tris_file = sink.count();
  double ios_file = static_cast<double>(ctx.cache().stats().total_ios());
  EXPECT_EQ(tris_mem, tris_file);
  EXPECT_EQ(ios_mem, ios_file);
}

TEST(IoBounds, ImprovementFactorGrowsWithEOverM) {
  // The paper's improvement over MGT is min(sqrt(E/M), sqrt(M)): the
  // measured MGT/ours ratio must grow as E/M grows (M fixed, E growing).
  const std::size_t m = 1 << 9;
  auto ratio_at = [&](std::size_t e) {
    auto raw = Gnm(e / 2, e, 33);
    double ours = MeasureIos("ps-cache-aware", raw, m, kB);
    double mgt = MeasureIos("mgt", raw, m, kB);
    return mgt / ours;
  };
  double r1 = ratio_at(1 << 12);
  double r2 = ratio_at(1 << 15);
  EXPECT_GT(r2, 1.5 * r1) << "ratio should grow ~sqrt(8) when E grows 8x";
}

TEST(IoBounds, WorkIsWithinE15) {
  // §1.2 remark: all three algorithms perform O(E^{3/2}) operations.
  for (const char* name :
       {"ps-cache-aware", "ps-cache-oblivious", "ps-deterministic"}) {
    em::Context ctx = test::MakeContext(kM, kB);
    EmGraph g = BuildEmGraph(ctx, TestGraph());
    ctx.ResetWork();
    core::CountingSink sink;
    core::FindAlgorithm(name)->run(ctx, g, sink);
    double e15 = std::pow(static_cast<double>(kE), 1.5);
    EXPECT_LE(static_cast<double>(ctx.work()), 40.0 * e15) << name;
  }
}

}  // namespace
}  // namespace trienum
