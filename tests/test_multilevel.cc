// The multilevel-cache corollary (§1.2/§3, via [Frigo et al. Lemma 6.4]):
// "the claimed I/O complexity applies to each level of a multilevel cache
// with an LRU replacement policy". With a fixed seed the cache-oblivious
// computation is one fixed access stream; a passive probe cache at a second
// (M', B') must observe exactly the misses a direct run at (M', B') would.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cache_oblivious.h"
#include "core/mgt.h"
#include "test_util.h"

namespace trienum {
namespace {

using namespace trienum::graph;

em::IoStats DirectRun(const std::vector<Edge>& raw, std::size_t m, std::size_t b,
                      std::uint64_t seed) {
  em::Context ctx = test::MakeContext(m, b);
  EmGraph g = BuildEmGraph(ctx, raw);
  ctx.cache().Reset();
  core::CountingSink sink;
  core::CacheObliviousOptions opts;
  opts.seed = seed;
  core::EnumerateCacheOblivious(ctx, g, sink, opts);
  ctx.cache().FlushAll();
  return ctx.cache().stats();
}

TEST(Multilevel, ProbeSeesExactlyTheDirectRunsMisses) {
  auto raw = Gnm(1 << 10, 1 << 12, 5);
  const std::uint64_t seed = 1234;
  const std::size_t l1_m = 1 << 8, l2_m = 1 << 12, b = 16;

  // One run at L2 with an L1 probe attached.
  em::Context ctx = test::MakeContext(l2_m, b);
  ctx.AttachProbe(l1_m, b);
  EmGraph g = BuildEmGraph(ctx, raw);
  ctx.cache().Reset();
  ctx.probe()->Reset();
  core::CountingSink sink;
  core::CacheObliviousOptions opts;
  opts.seed = seed;
  core::EnumerateCacheOblivious(ctx, g, sink, opts);
  ctx.cache().FlushAll();
  ctx.probe()->FlushAll();

  // The oblivious computation is identical for any M, so the probe's miss
  // count must equal an independent direct run at (l1_m, b) and the main
  // cache's an independent run at (l2_m, b).
  em::IoStats direct_l1 = DirectRun(raw, l1_m, b, seed);
  em::IoStats direct_l2 = DirectRun(raw, l2_m, b, seed);
  EXPECT_EQ(ctx.probe()->stats().block_reads, direct_l1.block_reads);
  EXPECT_EQ(ctx.probe()->stats().block_writes, direct_l1.block_writes);
  EXPECT_EQ(ctx.cache().stats().block_reads, direct_l2.block_reads);
  EXPECT_EQ(ctx.cache().stats().block_writes, direct_l2.block_writes);

  // And both levels behave: the smaller level misses strictly more.
  EXPECT_GT(ctx.probe()->stats().total_ios(), ctx.cache().stats().total_ios());
}

TEST(Multilevel, ProbeWithDifferentBlockSize) {
  // Levels of a real hierarchy differ in line size too (e.g. 64B L1 lines
  // vs 4K pages); the probe supports that.
  auto raw = Gnm(500, 3000, 9);
  em::Context ctx = test::MakeContext(1 << 12, 64);
  ctx.AttachProbe(1 << 9, 8);
  EmGraph g = BuildEmGraph(ctx, raw);
  ctx.cache().Reset();
  ctx.probe()->Reset();
  core::CountingSink sink;
  core::CacheObliviousOptions opts;
  opts.seed = 77;
  core::EnumerateCacheOblivious(ctx, g, sink, opts);
  EXPECT_GT(sink.count(), 0u);
  EXPECT_GT(ctx.probe()->stats().block_reads, 0u);
}

TEST(Multilevel, ProbeRespectsCountingToggle) {
  em::Context ctx = test::MakeContext(1 << 10, 16);
  ctx.AttachProbe(1 << 8, 16);
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(1024);
  ctx.cache().set_counting(false);
  for (std::size_t i = 0; i < 1024; ++i) a.Set(i, i);
  ctx.cache().set_counting(true);
  EXPECT_EQ(ctx.probe()->stats().total_ios(), 0u);
  for (std::size_t i = 0; i < 1024; ++i) (void)a.Get(i);
  EXPECT_GT(ctx.probe()->stats().block_reads, 0u);
}

TEST(Multilevel, ObliviousBoundHoldsAtBothLevelsOfOneRun) {
  // The corollary itself: a single oblivious run stays within a constant of
  // E^{3/2}/(sqrt(M_level) B) at *both* levels simultaneously. (No such
  // statement exists for the cache-aware algorithm: its staged internal
  // buffers are sized for one level — and indeed live in host scratch here,
  // outside what a smaller-level probe could meaningfully observe.)
  auto raw = Gnm(1 << 11, 1 << 13, 5);
  const std::size_t l1_m = 1 << 8, l2_m = 1 << 12, b = 16;
  em::Context ctx = test::MakeContext(l2_m, b);
  ctx.AttachProbe(l1_m, b);
  EmGraph g = BuildEmGraph(ctx, raw);
  ctx.cache().Reset();
  ctx.probe()->Reset();
  core::CountingSink sink;
  core::CacheObliviousOptions opts;
  opts.seed = 99;
  core::EnumerateCacheOblivious(ctx, g, sink, opts);
  ctx.cache().FlushAll();
  ctx.probe()->FlushAll();

  const std::size_t e = g.num_edges();
  double bound_l1 = std::pow(static_cast<double>(e), 1.5) /
                    (std::sqrt(static_cast<double>(l1_m)) * b);
  double bound_l2 = std::pow(static_cast<double>(e), 1.5) /
                    (std::sqrt(static_cast<double>(l2_m)) * b);
  EXPECT_LE(static_cast<double>(ctx.probe()->stats().total_ios()),
            400.0 * bound_l1);
  EXPECT_LE(static_cast<double>(ctx.cache().stats().total_ios()),
            400.0 * bound_l2);
  // And the levels are genuinely separated: L1 misses dominate L2 misses.
  EXPECT_GT(ctx.probe()->stats().total_ios(),
            2 * ctx.cache().stats().total_ios());
}

}  // namespace
}  // namespace trienum
