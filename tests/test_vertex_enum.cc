// Lemma 1: enumerate all triangles containing a given vertex in
// O(sort(E)) I/Os — correctness against the reference per vertex, colored
// and uncolored, both sort policies, plus the I/O envelope.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/vertex_enum.h"
#include "extsort/ext_merge_sort.h"
#include "test_util.h"

namespace trienum {
namespace {

using namespace trienum::graph;

std::vector<Triangle> TrianglesThrough(const std::vector<Triangle>& all,
                                       VertexId x) {
  std::vector<Triangle> out;
  for (const Triangle& t : all) {
    if (t.a == x || t.b == x || t.c == x) out.push_back(t);
  }
  return out;
}

template <typename Sorter>
std::vector<Triangle> RunLemma1(em::Context& ctx, const EmGraph& g, VertexId x,
                                Sorter sorter) {
  std::vector<Triangle> out;
  core::EnumerateTrianglesContaining<Edge>(
      ctx, g.edges, x, sorter,
      [&](VertexId u, VertexId w, std::uint32_t, std::uint32_t, std::uint32_t) {
        out.push_back(core::OrderTriple(x, u, w));
      });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Lemma1, EveryVertexOfARandomGraph) {
  em::Context ctx = test::MakeContext();
  EmGraph g = BuildEmGraph(ctx, Gnm(40, 250, 6));
  auto all = core::ListTrianglesHost(DownloadEdges(g));
  for (VertexId x = 0; x < g.num_vertices; ++x) {
    EXPECT_EQ(RunLemma1(ctx, g, x, extsort::AwareSorter{}),
              TrianglesThrough(all, x))
        << "vertex " << x;
  }
}

TEST(Lemma1, ObliviousSorterAgrees) {
  em::Context ctx = test::MakeContext();
  EmGraph g = BuildEmGraph(ctx, Gnm(40, 250, 6));
  auto all = core::ListTrianglesHost(DownloadEdges(g));
  for (VertexId x = 0; x < g.num_vertices; x += 7) {
    EXPECT_EQ(RunLemma1(ctx, g, x, extsort::ObliviousSorter{}),
              TrianglesThrough(all, x));
  }
}

TEST(Lemma1, HubOfCliquePlusPath) {
  em::Context ctx = test::MakeContext();
  EmGraph g = BuildEmGraph(ctx, CliquePlusPath(10, 30));
  // The clique's vertices are the 10 highest-degree ids; the hub (vertex 0
  // of the raw graph, attached to the path) is among them.
  auto all = core::ListTrianglesHost(DownloadEdges(g));
  VertexId hub = g.num_vertices - 1;
  EXPECT_EQ(RunLemma1(ctx, g, hub, extsort::AwareSorter{}),
            TrianglesThrough(all, hub));
}

TEST(Lemma1, VertexWithNoTriangles) {
  em::Context ctx = test::MakeContext();
  EmGraph g = BuildEmGraph(ctx, Star(20));
  for (VertexId x = 0; x < g.num_vertices; x += 5) {
    EXPECT_TRUE(RunLemma1(ctx, g, x, extsort::AwareSorter{}).empty());
  }
}

TEST(Lemma1, ColoredTripleOrderingIsConsistent) {
  // Colored variant must deliver per-position colors matching the id order.
  em::Context ctx = test::MakeContext();
  em::Array<ColoredEdge> edges = ctx.Alloc<ColoredEdge>(3);
  edges.Set(0, ColoredEdge{1, 2, 10, 20});
  edges.Set(1, ColoredEdge{1, 3, 10, 30});
  edges.Set(2, ColoredEdge{2, 3, 20, 30});
  int calls = 0;
  core::EnumerateTrianglesContaining<ColoredEdge>(
      ctx, edges, 2, extsort::ObliviousSorter{},
      [&](VertexId u, VertexId w, std::uint32_t cu, std::uint32_t cw,
          std::uint32_t cx) {
        ++calls;
        auto [tri, c0, c1, c2] = core::OrderColoredTriple(2, cx, u, cu, w, cw);
        EXPECT_EQ(tri, (Triangle{1, 2, 3}));
        EXPECT_EQ(c0, 10u);
        EXPECT_EQ(c1, 20u);
        EXPECT_EQ(c2, 30u);
      });
  EXPECT_EQ(calls, 1);
}

TEST(Lemma1, IoWithinSortEnvelope) {
  const std::size_t m = 1 << 10, b = 16;
  em::Context ctx = test::MakeContext(m, b);
  EmGraph g = BuildEmGraph(ctx, Gnm(2000, 1 << 14, 12));
  ctx.cache().Reset();
  (void)RunLemma1(ctx, g, g.num_vertices - 1, extsort::AwareSorter{});
  ctx.cache().FlushAll();
  double measured = static_cast<double>(ctx.cache().stats().total_ios());
  double bound = 8.0 * extsort::SortIoBound(g.num_edges(), 1, m, b);
  EXPECT_LE(measured, bound);
}

TEST(OrderTriple, AllThreePositions) {
  EXPECT_EQ(core::OrderTriple(1, 5, 9), (Triangle{1, 5, 9}));
  EXPECT_EQ(core::OrderTriple(7, 5, 9), (Triangle{5, 7, 9}));
  EXPECT_EQ(core::OrderTriple(11, 5, 9), (Triangle{5, 9, 11}));
}

}  // namespace
}  // namespace trienum
