// LRU cache simulator semantics: miss/hit accounting, eviction order,
// write-allocate policy, flush/reset, and the scan-cost identity n/B that
// the entire I/O methodology rests on.
#include <gtest/gtest.h>

#include "em/array.h"
#include "test_util.h"

namespace trienum {
namespace {

TEST(Cache, ColdScanCostsNOverB) {
  em::Context ctx = test::MakeContext(/*m=*/1024, /*b=*/16);
  const std::size_t n = 4096;
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
  ctx.cache().Reset();
  for (std::size_t i = 0; i < n; ++i) (void)a.Get(i);
  EXPECT_EQ(ctx.cache().stats().block_reads, n / 16);
  EXPECT_EQ(ctx.cache().stats().block_writes, 0u);
}

TEST(Cache, SequentialFreshWritesCostOnlyWrites) {
  em::Context ctx = test::MakeContext(1024, 16);
  const std::size_t n = 4096;
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
  ctx.cache().Reset();
  for (std::size_t i = 0; i < n; ++i) a.Set(i, i);
  ctx.cache().FlushAll();
  // Block-aligned fresh lines are allocated without fetching.
  EXPECT_EQ(ctx.cache().stats().block_reads, 0u);
  EXPECT_EQ(ctx.cache().stats().block_writes, n / 16);
}

TEST(Cache, UnalignedWriteFetchesTheLine) {
  em::Context ctx = test::MakeContext(1024, 16);
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(64);
  ctx.cache().Reset();
  a.Set(5, 42);  // mid-line write: must read-modify-write
  ctx.cache().FlushAll();
  EXPECT_EQ(ctx.cache().stats().block_reads, 1u);
  EXPECT_EQ(ctx.cache().stats().block_writes, 1u);
}

TEST(Cache, WorkingSetWithinMIsFreeAfterWarmup) {
  em::Context ctx = test::MakeContext(1024, 16);
  const std::size_t n = 512;  // fits in M = 1024 words
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
  for (std::size_t i = 0; i < n; ++i) (void)a.Get(i);  // warm up
  em::IoStats warm = ctx.cache().stats();
  for (int round = 0; round < 10; ++round) {
    for (std::size_t i = 0; i < n; ++i) (void)a.Get(i);
  }
  EXPECT_EQ(ctx.cache().stats().block_reads, warm.block_reads);
}

TEST(Cache, WorkingSetBeyondMThrashes) {
  em::Context ctx = test::MakeContext(1024, 16);
  const std::size_t n = 4096;  // 4x internal memory
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
  ctx.cache().Reset();
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < n; ++i) (void)a.Get(i);
  }
  // A cyclic scan of 4M words under LRU misses every line, every round.
  EXPECT_EQ(ctx.cache().stats().block_reads, 3 * n / 16);
}

TEST(Cache, LruKeepsHotLineResident) {
  em::Context ctx = test::MakeContext(/*m=*/64, /*b=*/16);  // 4 lines
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(1024);
  ctx.cache().Reset();
  // Touch line 0 between every excursion; it must never be evicted.
  for (std::size_t i = 0; i < 32; ++i) {
    (void)a.Get(0);
    (void)a.Get(16 * (i % 3 + 1));
  }
  EXPECT_TRUE(ctx.cache().IsResident(a.AddrOf(0)));
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  em::Context ctx = test::MakeContext(/*m=*/32, /*b=*/16);  // 2 lines
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(64);
  ctx.cache().Reset();
  (void)a.Get(0);   // line 0
  (void)a.Get(16);  // line 1
  (void)a.Get(0);   // refresh line 0
  (void)a.Get(32);  // line 2: must evict line 1
  EXPECT_TRUE(ctx.cache().IsResident(a.AddrOf(0)));
  EXPECT_FALSE(ctx.cache().IsResident(a.AddrOf(16)));
  EXPECT_TRUE(ctx.cache().IsResident(a.AddrOf(32)));
}

TEST(Cache, DirtyEvictionCountsAsWrite) {
  em::Context ctx = test::MakeContext(/*m=*/32, /*b=*/16);  // 2 lines
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(64);
  ctx.cache().Reset();
  a.Set(0, 1);      // dirty line 0 (aligned fresh write: no read)
  (void)a.Get(16);  // line 1
  (void)a.Get(32);  // evicts line 0 -> writeback
  EXPECT_EQ(ctx.cache().stats().block_writes, 1u);
}

TEST(Cache, ResetZeroesCountersAndResidency) {
  em::Context ctx = test::MakeContext(1024, 16);
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(256);
  for (std::size_t i = 0; i < 256; ++i) a.Set(i, i);
  ctx.cache().Reset();
  EXPECT_EQ(ctx.cache().stats().block_reads, 0u);
  EXPECT_EQ(ctx.cache().stats().block_writes, 0u);
  EXPECT_FALSE(ctx.cache().IsResident(a.AddrOf(0)));
  // Data survives a reset (only accounting state is dropped).
  EXPECT_EQ(a.Get(7), 7u);
}

TEST(Cache, CountingOffIsNoOp) {
  em::Context ctx = test::MakeContext(1024, 16);
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(256);
  ctx.cache().Reset();
  ctx.cache().set_counting(false);
  for (std::size_t i = 0; i < 256; ++i) (void)a.Get(i);
  EXPECT_EQ(ctx.cache().stats().total_ios(), 0u);
  ctx.cache().set_counting(true);
}

TEST(Cache, StraddlingRecordTouchesBothLines) {
  em::Context ctx = test::MakeContext(1024, 16);
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(64);
  ctx.cache().Reset();
  ctx.cache().TouchRange(a.AddrOf(15), 2, /*write=*/false);  // words 15,16
  EXPECT_EQ(ctx.cache().stats().block_reads, 2u);
}

TEST(Cache, DataRoundTripThroughDevice) {
  em::Context ctx = test::MakeContext(128, 16);
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(1000);
  for (std::size_t i = 0; i < 1000; ++i) a.Set(i, i * i);
  for (std::size_t i = 0; i < 1000; ++i) ASSERT_EQ(a.Get(i), i * i);
}

}  // namespace
}  // namespace trienum
