// The session-reuse contract, end to end: a query answered by a reused
// QuerySession over a LoadedGraph must be bit-identical — same triangles in
// the same emission order, same IoStats (reads, writes AND hits), same
// internal-work counter — to the same query answered by a fresh em::Context
// built for that one run. Exercised across the full algorithm x backend x
// scan-mode x threads matrix, plus consistency checks for the per-vertex and
// per-edge query kinds and the Cache::ResetCounters residency contract.
#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "em/context.h"
#include "graph/generators.h"
#include "graph/normalize.h"
#include "query/query.h"
#include "test_util.h"

namespace trienum {
namespace {

constexpr std::size_t kMemWords = 2048;
constexpr std::size_t kBlockWords = 32;
constexpr std::uint64_t kMasterSeed = 0x7001;

em::EmConfig TestConfig(em::StorageKind storage) {
  em::EmConfig cfg;
  cfg.memory_words = kMemWords;
  cfg.block_words = kBlockWords;
  cfg.seed = kMasterSeed;
  cfg.storage = storage;
  return cfg;
}

std::vector<graph::Edge> FixtureEdges() {
  return graph::Rmat(8, 1200, 0.45, 0.22, 0.22, 17);
}

/// The baseline: a fresh context made for exactly one query (the historical
/// single-run flow: construct, normalize uncounted, run cold).
query::QueryResult FreshRun(em::StorageKind storage,
                            const std::vector<graph::Edge>& raw,
                            const query::Query& q) {
  em::Context ctx(TestConfig(storage));
  ctx.cache().set_counting(false);
  graph::EmGraph g = graph::BuildEmGraph(ctx, raw);
  ctx.cache().set_counting(true);
  Result<query::QueryResult> r = query::RunQuery(ctx, g, q);
  EXPECT_TRUE(r.ok());
  return *r;
}

void ExpectBitIdentical(const query::QueryResult& reused,
                        const query::QueryResult& fresh,
                        const std::string& label) {
  EXPECT_EQ(reused.triangles, fresh.triangles) << label;
  EXPECT_EQ(reused.list, fresh.list) << label << " (emission order)";
  EXPECT_EQ(reused.io.block_reads, fresh.io.block_reads) << label;
  EXPECT_EQ(reused.io.block_writes, fresh.io.block_writes) << label;
  EXPECT_EQ(reused.io.cache_hits, fresh.io.cache_hits) << label;
  EXPECT_EQ(reused.work, fresh.work) << label;
  EXPECT_EQ(reused.seed_used, fresh.seed_used) << label;
  EXPECT_EQ(reused.device_peak_words, fresh.device_peak_words) << label;
}

/// One matrix cell: three queries (enumerate, seeded count, enumerate again)
/// through one reused session, each compared against a fresh context.
void RunCell(const std::string& algo, em::StorageKind storage,
             em::ScanMode scan_mode, std::size_t threads) {
  const std::vector<graph::Edge> raw = FixtureEdges();
  query::LoadedGraph lg =
      *query::LoadedGraph::FromEdges(TestConfig(storage), raw);

  std::vector<query::Query> queries(3);
  queries[0].kind = query::QueryKind::kEnumerate;
  queries[1].kind = query::QueryKind::kCount;
  queries[1].seed = 0xFEED;  // per-query override of the master seed
  queries[2].kind = query::QueryKind::kEnumerate;
  for (query::Query& q : queries) {
    q.algo = algo;
    q.scan_mode = scan_mode;
    q.threads = threads;
  }

  const std::string cell =
      algo + (storage == em::StorageKind::kFile ? "/file" : "/memory") +
      (scan_mode == em::ScanMode::kElementwise ? "/elementwise" : "/buffered") +
      "/t" + std::to_string(threads);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    Result<query::QueryResult> reused = lg.Run(queries[i]);
    ASSERT_TRUE(reused.ok()) << cell;
    query::QueryResult fresh = FreshRun(storage, raw, queries[i]);
    ExpectBitIdentical(*reused, fresh,
                       cell + " query " + std::to_string(i + 1));
  }
  EXPECT_EQ(lg.store().device().Mark(), lg.frozen_mark())
      << cell << ": a query leaked device allocations";
}

struct Cell {
  std::string algo;
  em::StorageKind storage;
  em::ScanMode scan_mode;
  std::size_t threads;
};

class QuerySessionMatrix : public ::testing::TestWithParam<Cell> {};

TEST_P(QuerySessionMatrix, ReusedSessionMatchesFreshContext) {
  const Cell& c = GetParam();
  RunCell(c.algo, c.storage, c.scan_mode, c.threads);
}

std::vector<Cell> AllCells() {
  std::vector<Cell> cells;
  for (const core::AlgorithmInfo& a : core::AllAlgorithms()) {
    for (em::StorageKind storage :
         {em::StorageKind::kMemory, em::StorageKind::kFile}) {
      for (em::ScanMode mode :
           {em::ScanMode::kBuffered, em::ScanMode::kElementwise}) {
        for (std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
          cells.push_back(Cell{a.name, storage, mode, threads});
        }
      }
    }
  }
  return cells;
}

std::string CellName(const ::testing::TestParamInfo<Cell>& info) {
  const Cell& c = info.param;
  std::string name = c.algo;
  std::replace(name.begin(), name.end(), '-', '_');
  name += c.storage == em::StorageKind::kFile ? "_file" : "_memory";
  name += c.scan_mode == em::ScanMode::kElementwise ? "_elementwise" : "_buffered";
  name += "_t" + std::to_string(c.threads);
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithmsBackendsModes, QuerySessionMatrix,
                         ::testing::ValuesIn(AllCells()), CellName);

// ---------------------------------------------------------------------------
// Per-vertex / per-edge query kinds.

TEST(QueryKinds, PerVertexCountsAgreeWithEnumeratedTriangles) {
  const std::vector<graph::Edge> raw = FixtureEdges();
  query::LoadedGraph lg =
      *query::LoadedGraph::FromEdges(TestConfig(em::StorageKind::kMemory), raw);

  query::Query enumerate;
  enumerate.kind = query::QueryKind::kEnumerate;
  query::Query per_vertex;
  per_vertex.kind = query::QueryKind::kPerVertex;

  query::QueryResult tris = *lg.Run(enumerate);
  query::QueryResult pv = *lg.Run(per_vertex);
  ASSERT_GT(tris.triangles, 0u) << "degenerate fixture: no triangles";

  // Same engine, same I/O: the sink is the only difference.
  EXPECT_EQ(pv.triangles, tris.triangles);
  EXPECT_EQ(pv.io.block_reads, tris.io.block_reads);
  EXPECT_EQ(pv.io.block_writes, tris.io.block_writes);

  ASSERT_EQ(pv.per_vertex.size(), lg.graph().num_vertices);
  std::vector<std::uint64_t> expected(lg.graph().num_vertices, 0);
  for (const graph::Triangle& t : tris.list) {
    ++expected[t.a];
    ++expected[t.b];
    ++expected[t.c];
  }
  EXPECT_EQ(pv.per_vertex, expected);
  EXPECT_EQ(std::accumulate(pv.per_vertex.begin(), pv.per_vertex.end(),
                            std::uint64_t{0}),
            3 * pv.triangles);
}

TEST(QueryKinds, PerEdgeSupportAgreesWithEnumeratedTriangles) {
  const std::vector<graph::Edge> raw = FixtureEdges();
  query::LoadedGraph lg =
      *query::LoadedGraph::FromEdges(TestConfig(em::StorageKind::kMemory), raw);

  query::QueryResult tris = *lg.Run([] {
    query::Query q;
    q.kind = query::QueryKind::kEnumerate;
    return q;
  }());
  query::QueryResult pe = *lg.Run([] {
    query::Query q;
    q.kind = query::QueryKind::kPerEdge;
    return q;
  }());
  ASSERT_GT(tris.triangles, 0u);
  EXPECT_EQ(pe.triangles, tris.triangles);

  // Lex-sorted, counts match a host recount, and the total support is 3 per
  // triangle.
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < pe.per_edge.size(); ++i) {
    total += pe.per_edge[i].count;
    if (i > 0) {
      const graph::Edge& p = pe.per_edge[i - 1].e;
      const graph::Edge& e = pe.per_edge[i].e;
      EXPECT_TRUE(p.u < e.u || (p.u == e.u && p.v < e.v)) << "not lex-sorted";
    }
  }
  EXPECT_EQ(total, 3 * pe.triangles);
  for (const graph::Triangle& t : tris.list) {
    auto support_of = [&](graph::VertexId u, graph::VertexId v) {
      for (const query::EdgeSupport& s : pe.per_edge) {
        if (s.e.u == u && s.e.v == v) return s.count;
      }
      return std::uint64_t{0};
    };
    EXPECT_GT(support_of(t.a, t.b), 0u);
    EXPECT_GT(support_of(t.a, t.c), 0u);
    EXPECT_GT(support_of(t.b, t.c), 0u);
  }
}

TEST(QueryKinds, EnumerateLimitCapsListButNotCountOrIo) {
  const std::vector<graph::Edge> raw = FixtureEdges();
  query::LoadedGraph lg =
      *query::LoadedGraph::FromEdges(TestConfig(em::StorageKind::kMemory), raw);

  query::Query full;
  full.kind = query::QueryKind::kEnumerate;
  query::Query capped = full;
  capped.limit = 5;

  query::QueryResult rf = *lg.Run(full);
  query::QueryResult rc = *lg.Run(capped);
  ASSERT_GT(rf.triangles, 5u);
  EXPECT_EQ(rc.list.size(), 5u);
  EXPECT_EQ(rc.triangles, rf.triangles);  // the sink saw every emission
  EXPECT_EQ(rc.io.block_reads, rf.io.block_reads);
  EXPECT_EQ(rc.io.block_writes, rf.io.block_writes);
  EXPECT_TRUE(std::equal(rc.list.begin(), rc.list.end(), rf.list.begin()));
}

TEST(QueryErrors, UnknownAlgorithmIsNotFoundNotAbort) {
  query::LoadedGraph lg = *query::LoadedGraph::FromEdges(
      TestConfig(em::StorageKind::kMemory), graph::Clique(4));
  query::Query q;
  q.algo = "definitely-not-an-algorithm";
  Result<query::QueryResult> r = lg.Run(q);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  // The failed dispatch must not have broken the session for later queries.
  q.algo = "mgt";
  EXPECT_TRUE(lg.Run(q).ok());
}

// ---------------------------------------------------------------------------
// Cache::ResetCounters: per-session counting reset without disturbing
// resident lines.

TEST(ResetCounters, ZeroesStatsButKeepsResidency) {
  em::Context ctx = test::MakeContext(kMemWords, kBlockWords);
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(256);
  for (std::size_t i = 0; i < a.size(); ++i) a.Set(i, i);
  ASSERT_GT(ctx.cache().stats().total_ios() + ctx.cache().stats().cache_hits,
            0u);
  std::size_t resident = ctx.cache().resident_lines();
  ASSERT_GT(resident, 0u);

  ctx.cache().ResetCounters();
  EXPECT_EQ(ctx.cache().stats().block_reads, 0u);
  EXPECT_EQ(ctx.cache().stats().block_writes, 0u);
  EXPECT_EQ(ctx.cache().stats().cache_hits, 0u);
  EXPECT_EQ(ctx.cache().resident_lines(), resident)
      << "ResetCounters must not evict";

  // A warm re-read after the counter reset is all hits: the residency the
  // reset preserved is real.
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 16; ++i) v += a.Get(a.size() - 1 - i);
  EXPECT_GT(v, 0u);
  EXPECT_EQ(ctx.cache().stats().block_reads, 0u);
  EXPECT_GT(ctx.cache().stats().cache_hits, 0u);

  // Reset() by contrast starts cold: the same touches now fault lines in.
  ctx.cache().Reset();
  EXPECT_EQ(ctx.cache().resident_lines(), 0u);
  for (std::size_t i = 0; i < 16; ++i) v += a.Get(a.size() - 1 - i);
  EXPECT_GT(ctx.cache().stats().block_reads, 0u);
}

}  // namespace
}  // namespace trienum
