// Sinks (emission semantics) and graph file I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/sink.h"
#include "graph/graph_io.h"
#include "test_util.h"

namespace trienum {
namespace {

using namespace trienum::graph;

TEST(Sinks, CountingAndChecksumAgree) {
  core::CountingSink count;
  core::ChecksumSink sum;
  core::TeeSink tee(&count, &sum);
  tee.Emit(1, 2, 3);
  tee.Emit(2, 5, 9);
  EXPECT_EQ(count.count(), 2u);
  EXPECT_EQ(sum.count(), 2u);
}

TEST(Sinks, ChecksumIsOrderInvariant) {
  core::ChecksumSink a, b;
  a.Emit(1, 2, 3);
  a.Emit(4, 5, 6);
  b.Emit(4, 5, 6);
  b.Emit(1, 2, 3);
  EXPECT_EQ(a.checksum(), b.checksum());
}

TEST(Sinks, ChecksumDistinguishesDifferentSets) {
  core::ChecksumSink a, b;
  a.Emit(1, 2, 3);
  b.Emit(1, 2, 4);
  EXPECT_NE(a.checksum(), b.checksum());
}

TEST(Sinks, ChecksumRejectsUnsortedTriples) {
  core::ChecksumSink s;
  EXPECT_DEATH(s.Emit(3, 2, 1), "CHECK");
}

TEST(Sinks, CallbackForwardsInOrder) {
  std::vector<Triangle> seen;
  core::CallbackSink cb([&seen](VertexId a, VertexId b, VertexId c) {
    seen.push_back(Triangle{a, b, c});
  });
  cb.Emit(1, 2, 3);
  cb.Emit(0, 7, 9);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1], (Triangle{0, 7, 9}));
}

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "trienum_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(GraphIoTest, TextRoundTrip) {
  auto edges = Gnm(50, 120, 3);
  ASSERT_TRUE(WriteEdgeListText(Path("g.txt"), edges).ok());
  auto back = ReadEdgeListText(Path("g.txt"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, edges);
}

TEST_F(GraphIoTest, BinaryRoundTrip) {
  auto edges = Gnm(50, 120, 4);
  ASSERT_TRUE(WriteEdgeListBinary(Path("g.bin"), edges).ok());
  auto back = ReadEdgeListBinary(Path("g.bin"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, edges);
}

TEST_F(GraphIoTest, TextCommentsAndBlanksSkipped) {
  {
    std::FILE* f = std::fopen(Path("c.txt").c_str(), "w");
    std::fputs("# comment\n\n% another\n3 4\n5 6\n", f);
    std::fclose(f);
  }
  auto back = ReadEdgeListText(Path("c.txt"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0], (Edge{3, 4}));
}

TEST_F(GraphIoTest, ParseErrorsAreStatuses) {
  {
    std::FILE* f = std::fopen(Path("bad.txt").c_str(), "w");
    std::fputs("1 2\nnot numbers\n", f);
    std::fclose(f);
  }
  auto bad = ReadEdgeListText(Path("bad.txt"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  auto missing = ReadEdgeListText(Path("does_not_exist.txt"));
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
}

TEST_F(GraphIoTest, OversizedIdsRejected) {
  {
    std::FILE* f = std::fopen(Path("big.txt").c_str(), "w");
    std::fputs("1 99999999999\n", f);
    std::fclose(f);
  }
  auto bad = ReadEdgeListText(Path("big.txt"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST(Status, BasicsAndResult) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status err = Status::InvalidArgument("bad");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.ToString(), "InvalidArgument: bad");

  Result<int> good = 7;
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  Result<int> bad = Status::NotFound("x");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace trienum
