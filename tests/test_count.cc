// Counting on top of enumeration: exact counts through every engine, and
// the DOULION-style sampled estimator (accuracy, unbiasedness over seeds,
// I/O savings).
#include <gtest/gtest.h>

#include <cmath>

#include "core/count.h"
#include "core/reference.h"
#include "test_util.h"

namespace trienum {
namespace {

using namespace trienum::graph;

TEST(Count, ExactThroughEveryEngine) {
  auto raw = Gnm(150, 1200, 3);
  std::uint64_t expected = core::CountTrianglesHost(raw);
  for (const core::AlgorithmInfo& a : core::AllAlgorithms()) {
    em::Context ctx = test::MakeContext();
    EmGraph g = BuildEmGraph(ctx, raw);
    auto got = core::CountTriangles(ctx, g, a.name);
    ASSERT_TRUE(got.ok()) << a.name;
    EXPECT_EQ(*got, expected) << a.name;
  }
}

TEST(Count, UnknownAlgorithmIsError) {
  em::Context ctx = test::MakeContext();
  EmGraph g = BuildEmGraph(ctx, Clique(5));
  EXPECT_FALSE(core::CountTriangles(ctx, g, "nope").ok());
}

TEST(Count, SamplingRateValidation) {
  em::Context ctx = test::MakeContext();
  EmGraph g = BuildEmGraph(ctx, Clique(5));
  EXPECT_FALSE(core::EstimateTriangles(ctx, g, 0.0, "mgt", 1).ok());
  EXPECT_FALSE(core::EstimateTriangles(ctx, g, 1.5, "mgt", 1).ok());
}

TEST(Count, FullRateEqualsExact) {
  auto raw = Gnm(100, 900, 5);
  em::Context ctx = test::MakeContext();
  EmGraph g = BuildEmGraph(ctx, raw);
  auto est = core::EstimateTriangles(ctx, g, 1.0, "ps-cache-aware", 7);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->estimate,
                   static_cast<double>(core::CountTrianglesHost(raw)));
  EXPECT_EQ(est->sampled_edges, g.num_edges());
}

TEST(Count, EstimatorIsAccurateOnAverage) {
  // Average the estimate over many seeds; the relative error of the mean
  // must be small on a triangle-rich graph.
  auto raw = Clique(40);  // t = 9880
  double truth = static_cast<double>(core::CountTrianglesHost(raw));
  em::Context ctx = test::MakeContext(1 << 12, 16);
  EmGraph g = BuildEmGraph(ctx, raw);
  const double p = 0.5;
  double sum = 0;
  const int trials = 24;
  for (int t = 0; t < trials; ++t) {
    auto est = core::EstimateTriangles(ctx, g, p, "mgt", 1000 + t);
    ASSERT_TRUE(est.ok());
    sum += est->estimate;
  }
  double mean = sum / trials;
  EXPECT_NEAR(mean, truth, 0.15 * truth);
}

TEST(Count, SamplingSavesIo) {
  auto raw = Gnm(1 << 11, 1 << 13, 9);
  em::Context ctx = test::MakeContext(1 << 9, 16);
  EmGraph g = BuildEmGraph(ctx, raw);

  ctx.cache().Reset();
  auto full = core::EstimateTriangles(ctx, g, 1.0, "mgt", 3);
  ASSERT_TRUE(full.ok());
  auto sampled = core::EstimateTriangles(ctx, g, 0.25, "mgt", 3);
  ASSERT_TRUE(sampled.ok());
  // E^2/(MB) at a quarter of the edges: ~16x fewer I/Os (minus the
  // sparsifying scan); demand at least 4x.
  EXPECT_LT(static_cast<double>(sampled->io.total_ios()),
            0.25 * static_cast<double>(full->io.total_ios()));
}

TEST(Generators, BarabasiAlbertShape) {
  auto g = BarabasiAlbert(500, 3, 11);
  EXPECT_EQ(g, BarabasiAlbert(500, 3, 11));
  // ~3 edges per arriving vertex plus the seed clique.
  EXPECT_GE(g.size(), 3u * (500 - 4));
  // Preferential attachment: heavy tail — max degree far above attach.
  std::map<VertexId, int> deg;
  for (const Edge& e : g) {
    ++deg[e.u];
    ++deg[e.v];
  }
  int maxdeg = 0;
  for (auto& [v, d] : deg) maxdeg = std::max(maxdeg, d);
  EXPECT_GT(maxdeg, 30);
}

TEST(Generators, WattsStrogatzClusteringDropsWithBeta) {
  auto clustering = [](const std::vector<Edge>& edges) {
    double tri = static_cast<double>(core::CountTrianglesHost(edges));
    std::map<VertexId, double> deg;
    for (const Edge& e : edges) {
      ++deg[e.u];
      ++deg[e.v];
    }
    double wedges = 0;
    for (auto& [v, d] : deg) wedges += d * (d - 1) / 2;
    return wedges > 0 ? 3 * tri / wedges : 0.0;
  };
  double low_beta = clustering(WattsStrogatz(600, 4, 0.01, 5));
  double high_beta = clustering(WattsStrogatz(600, 4, 0.9, 5));
  EXPECT_GT(low_beta, 0.3);  // ring lattice: ~1/2 with k=4
  EXPECT_LT(high_beta, 0.15);
  EXPECT_GT(low_beta, 2 * high_beta);
}

TEST(Generators, NewFamiliesEnumerateCorrectly) {
  for (const auto& raw :
       {BarabasiAlbert(300, 4, 2), WattsStrogatz(400, 3, 0.1, 2)}) {
    EXPECT_EQ(test::RunCollect("ps-cache-oblivious", raw).size(),
              core::CountTrianglesHost(raw));
  }
}

}  // namespace
}  // namespace trienum
