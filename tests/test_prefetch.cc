// The prefetch invariance suite: asynchronous read-ahead (src/prefetch/)
// must be bit-invisible — any depth, any worker count, any backend, any scan
// mode, any algorithm yields the identical triangles in the identical
// emission order with identical counted IoStats and work as depth 0. Also
// unit-covers the PrefetchPool staging handshake (advise/consume/invalidate/
// stall/clear) and the composition with the fault-injection stack: workers
// read through the decorated backend, so a transient schedule keeps counted
// state bit-identical while retries fire.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "em/array.h"
#include "em/storage.h"
#include "faults/recovery.h"
#include "prefetch/prefetch.h"
#include "test_util.h"

namespace trienum {
namespace {

using namespace trienum::graph;

// Context derives from QuerySession (and privately from the store owner,
// whose member is also named `store`) — go through the base to disambiguate.
em::GraphStore& StoreOf(em::Context& ctx) {
  em::QuerySession& session = ctx;
  return session.store();
}

em::EmConfig PrefetchConfig(std::size_t m, std::size_t b, std::uint64_t seed,
                            em::StorageKind kind, std::size_t depth,
                            std::size_t threads) {
  em::EmConfig cfg;
  cfg.memory_words = m;
  cfg.block_words = b;
  cfg.seed = seed;
  cfg.storage = kind;
  cfg.prefetch_depth = depth;
  cfg.prefetch_threads = threads;
  Status st = prefetch::ApplyPrefetchConfig(cfg);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return cfg;
}

struct AlgoRun {
  std::vector<Triangle> triangles;  // emission order, deliberately unsorted
  em::IoStats io;
  std::uint64_t work = 0;
  em::PrefetchStats prefetch;
  em::RecoveryStats recovery;
};

AlgoRun RunWith(const em::EmConfig& cfg, const std::string& algo,
                const std::vector<Edge>& raw,
                em::ScanMode mode = em::ScanMode::kBuffered) {
  em::Context ctx(cfg);
  EXPECT_TRUE(ctx.device().backend().init_status().ok());
  EmGraph g = BuildEmGraph(ctx, raw);
  ctx.cache().Reset();
  ctx.ResetWork();
  em::ScopedScanMode scan(mode);
  ctx.set_scan_mode(mode);
  core::CollectingSink sink;
  core::FindAlgorithm(algo)->run(ctx, g, sink);
  ctx.cache().FlushAll();
  // Deterministic `issued > 0` for the assertions below. A run's own advice
  // can race: the demand stream trims each range as it misses, so on a fast
  // device the workers may never win a single line. One explicit line of
  // advice drained by WaitIdle closes the race — either a worker stages it
  // now, or the staging table is already full of earlier fetches; `issued`
  // is positive both ways. (Uncounted machinery only: counted state was
  // snapshotted by the caller-visible IoStats/work already accumulated.)
  if (StoreOf(ctx).prefetcher() != nullptr) {
    auto* pool =
        static_cast<prefetch::PrefetchPool*>(StoreOf(ctx).prefetcher());
    pool->Advise(0, cfg.block_words, em::AdviseKind::kSequentialRead);
    pool->WaitIdle();
  }
  AlgoRun out;
  out.triangles = sink.triangles();
  out.io = ctx.cache().stats();
  out.work = ctx.work();
  out.prefetch = ctx.prefetch_stats();
  out.recovery = ctx.recovery_snapshot();
  return out;
}

void ExpectCountedStateIdentical(const AlgoRun& base, const AlgoRun& run) {
  EXPECT_EQ(base.triangles, run.triangles);  // same set AND same order
  EXPECT_EQ(base.io.block_reads, run.io.block_reads);
  EXPECT_EQ(base.io.block_writes, run.io.block_writes);
  EXPECT_EQ(base.io.cache_hits, run.io.cache_hits);
  EXPECT_EQ(base.work, run.work);
}

// ---------------------------------------------------------------------------
// The invariance matrix: depth x backend x algorithm (buffered, one worker).
// The file backend stages real data, so the pool attaches and must issue;
// memory/mmap run counting-only, so the knob must be inert (no pool at all).

TEST(PrefetchMatrix, EveryAlgorithmIsDepthInvariantOnEveryBackend) {
  const std::vector<Edge> raw = Gnm(400, 1600, 21);
  const std::size_t m = 1 << 10, b = 16;
  for (const core::AlgorithmInfo& a : core::AllAlgorithms()) {
    for (em::StorageKind kind :
         {em::StorageKind::kMemory, em::StorageKind::kFile,
          em::StorageKind::kMmap}) {
      const char* kind_name = kind == em::StorageKind::kMemory ? "memory"
                              : kind == em::StorageKind::kFile ? "file"
                                                               : "mmap";
      SCOPED_TRACE(a.name + " / " + kind_name);
      AlgoRun base =
          RunWith(PrefetchConfig(m, b, 0xBEEF, kind, 0, 1), a.name, raw);
      EXPECT_EQ(base.prefetch.issued, 0u);
      for (std::size_t depth : {std::size_t{1}, std::size_t{8}}) {
        SCOPED_TRACE("depth=" + std::to_string(depth));
        AlgoRun run =
            RunWith(PrefetchConfig(m, b, 0xBEEF, kind, depth, 1), a.name, raw);
        ExpectCountedStateIdentical(base, run);
        if (kind == em::StorageKind::kFile) {
          EXPECT_GT(run.prefetch.issued, 0u);
        } else {
          // Counting-only cache: no staging, so no pool is ever built.
          EXPECT_EQ(run.prefetch.issued, 0u);
        }
      }
    }
  }
}

TEST(PrefetchMatrix, ScanModeAndWorkerCountSweep) {
  const std::vector<Edge> raw = Gnm(400, 1600, 21);
  const std::size_t m = 1 << 10, b = 16;
  for (const char* algo : {"mgt", "ps-cache-aware"}) {
    for (em::StorageKind kind :
         {em::StorageKind::kFile, em::StorageKind::kMmap}) {
      for (em::ScanMode mode :
           {em::ScanMode::kBuffered, em::ScanMode::kElementwise}) {
        SCOPED_TRACE(std::string(algo) +
                     (kind == em::StorageKind::kFile ? " file" : " mmap") +
                     (mode == em::ScanMode::kBuffered ? " buffered"
                                                      : " elementwise"));
        AlgoRun base =
            RunWith(PrefetchConfig(m, b, 0xF00D, kind, 0, 1), algo, raw, mode);
        for (std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
          SCOPED_TRACE("threads=" + std::to_string(threads));
          AlgoRun run = RunWith(PrefetchConfig(m, b, 0xF00D, kind, 8, threads),
                                algo, raw, mode);
          ExpectCountedStateIdentical(base, run);
          if (kind == em::StorageKind::kFile) {
            EXPECT_GT(run.prefetch.issued, 0u);
          }
        }
      }
    }
  }
}

TEST(PrefetchMatrix, ComposesWithTransientFaultStack) {
  // Workers read through the decorated Recovering(FaultInjecting(file))
  // stack: a transient schedule must keep every counted observable
  // bit-identical across depths while retries actually fire. (Recovery
  // counters themselves may differ between depths — prefetch adds uncounted
  // device reads that shift which operations the schedule hits — so only
  // `retries > 0` is asserted, not equality.)
  const std::vector<Edge> raw = Gnm(300, 1200, 9);
  auto make = [&](std::size_t depth) {
    em::EmConfig cfg = PrefetchConfig(1 << 10, 16, 0xFA17,
                                      em::StorageKind::kFile, depth, 2);
    cfg.fault_spec = "read:eintr:every=5;write:short:every=9";
    cfg.io_retries = 6;
    Status st = faults::ApplyFaultConfig(cfg);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return cfg;
  };
  AlgoRun base = RunWith(make(0), "mgt", raw);
  EXPECT_GT(base.recovery.retries, 0u);
  for (std::size_t depth : {std::size_t{1}, std::size_t{8}}) {
    SCOPED_TRACE("depth=" + std::to_string(depth));
    AlgoRun run = RunWith(make(depth), "mgt", raw);
    ExpectCountedStateIdentical(base, run);
    EXPECT_GT(run.recovery.retries, 0u);
    EXPECT_GT(run.prefetch.issued, 0u);
  }
}

// ---------------------------------------------------------------------------
// PrefetchPool unit coverage: the staging handshake on a bare backend.

std::vector<em::Word> PatternWords(std::size_t n) {
  std::vector<em::Word> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i * 0x9E3779B97F4A7C15ULL + 1;
  return v;
}

TEST(PrefetchPool, AdviseStagesLinesAndConsumeReturnsBytes) {
  const std::size_t bw = 16;
  em::MemoryBackend backend;
  std::vector<em::Word> data = PatternWords(4 * bw);
  ASSERT_TRUE(backend.WriteWords(0, data.size(), data.data()).ok());
  prefetch::PrefetchPool pool(&backend, bw, /*depth=*/8, /*threads=*/2);
  pool.Advise(0, data.size(), em::AdviseKind::kSequentialRead);
  pool.WaitIdle();
  EXPECT_EQ(pool.stats().issued, 4u);
  std::vector<em::Word> out(bw);
  ASSERT_TRUE(pool.Consume(bw, bw, out.data()));
  for (std::size_t i = 0; i < bw; ++i) EXPECT_EQ(out[i], data[bw + i]);
  EXPECT_EQ(pool.stats().useful, 1u);
  // A line never advised is a miss: the demand path reads it itself.
  EXPECT_FALSE(pool.Consume(100 * bw, bw, out.data()));
}

TEST(PrefetchPool, DepthCapsStagingAndConsumeFreesSlots) {
  const std::size_t bw = 8;
  em::MemoryBackend backend;
  std::vector<em::Word> data = PatternWords(16 * bw);
  ASSERT_TRUE(backend.WriteWords(0, data.size(), data.data()).ok());
  prefetch::PrefetchPool pool(&backend, bw, /*depth=*/2, /*threads=*/1);
  pool.Advise(0, data.size(), em::AdviseKind::kSequentialRead);
  pool.WaitIdle();
  EXPECT_EQ(pool.stats().issued, 2u);  // table full, the rest stays queued
  std::vector<em::Word> out(bw);
  ASSERT_TRUE(pool.Consume(0, bw, out.data()));
  pool.WaitIdle();  // the freed slot lets the worker stage the next line
  EXPECT_GE(pool.stats().issued, 3u);
}

TEST(PrefetchPool, WriteAdviceAndEmptyRangesAreIgnored) {
  em::MemoryBackend backend;
  prefetch::PrefetchPool pool(&backend, 8, /*depth=*/4, /*threads=*/1);
  pool.Advise(0, 64, em::AdviseKind::kSequentialWrite);
  pool.Advise(0, 0, em::AdviseKind::kSequentialRead);
  pool.WaitIdle();
  EXPECT_EQ(pool.stats().issued, 0u);
}

TEST(PrefetchPool, InvalidateDropsStagedLinesAsWasted) {
  const std::size_t bw = 8;
  em::MemoryBackend backend;
  std::vector<em::Word> data = PatternWords(4 * bw);
  ASSERT_TRUE(backend.WriteWords(0, data.size(), data.data()).ok());
  prefetch::PrefetchPool pool(&backend, bw, /*depth=*/8, /*threads=*/1);
  pool.Advise(0, data.size(), em::AdviseKind::kSequentialRead);
  pool.WaitIdle();
  EXPECT_EQ(pool.stats().issued, 4u);
  // Overwrite lines 1..2: their staged bytes are stale and must never serve.
  pool.Invalidate(bw, 2 * bw);
  EXPECT_EQ(pool.stats().wasted, 2u);
  std::vector<em::Word> out(bw);
  EXPECT_FALSE(pool.Consume(bw, bw, out.data()));
  ASSERT_TRUE(pool.Consume(0, bw, out.data()));  // line 0 untouched
  EXPECT_EQ(out[0], data[0]);
}

TEST(PrefetchPool, ClearWastesEverythingStaged) {
  const std::size_t bw = 8;
  em::MemoryBackend backend;
  ASSERT_TRUE(backend.EnsureSize(8 * bw).ok());
  prefetch::PrefetchPool pool(&backend, bw, /*depth=*/8, /*threads=*/2);
  pool.Advise(0, 8 * bw, em::AdviseKind::kSequentialRead);
  pool.WaitIdle();
  const em::PrefetchStats before = pool.stats();
  EXPECT_EQ(before.issued, 8u);
  pool.Clear();
  const em::PrefetchStats after = pool.stats();
  EXPECT_EQ(after.wasted - before.wasted, 8u);
  std::vector<em::Word> out(bw);
  EXPECT_FALSE(pool.Consume(0, bw, out.data()));
}

TEST(PrefetchPool, StallHandshakeWaitsForInFlightFetch) {
  // A backend whose reads are slow on purpose: the consumer must find the
  // slot pending, charge one stall, and receive the bytes once the worker
  // lands them — never a torn buffer, never a re-read.
  class SlowReadBackend final : public em::StorageBackend {
   public:
    Status EnsureSize(std::size_t words) override {
      return inner_.EnsureSize(words);
    }
    std::size_t size_words() const override { return inner_.size_words(); }
    bool memory_resident() const override { return false; }
    Status ReadWords(em::Addr a, std::size_t w, em::Word* out) override {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      return inner_.ReadWords(a, w, out);
    }
    Status WriteWords(em::Addr a, std::size_t w, const em::Word* in) override {
      return inner_.WriteWords(a, w, in);
    }
    const char* name() const override { return "slow"; }

   private:
    em::MemoryBackend inner_;
  };
  const std::size_t bw = 8;
  SlowReadBackend backend;
  std::vector<em::Word> data = PatternWords(bw);
  ASSERT_TRUE(backend.WriteWords(0, bw, data.data()).ok());
  prefetch::PrefetchPool pool(&backend, bw, /*depth=*/2, /*threads=*/1);
  pool.Advise(0, bw, em::AdviseKind::kSequentialRead);
  // Spin until the worker owns the fetch (issued flips before the read), then
  // consume while it is still sleeping inside ReadWords.
  while (pool.stats().issued == 0) std::this_thread::yield();
  std::vector<em::Word> out(bw);
  ASSERT_TRUE(pool.Consume(0, bw, out.data()));
  EXPECT_EQ(out, data);
  const em::PrefetchStats s = pool.stats();
  EXPECT_EQ(s.useful, 1u);
  EXPECT_EQ(s.stalls, 1u);
}

// ---------------------------------------------------------------------------
// Configuration plumbing.

TEST(ApplyPrefetchConfig, DepthZeroClearsTheHook) {
  em::EmConfig cfg;
  cfg.prefetch_depth = 0;
  ASSERT_TRUE(prefetch::ApplyPrefetchConfig(cfg).ok());
  EXPECT_EQ(cfg.make_prefetcher, nullptr);
}

TEST(ApplyPrefetchConfig, RejectsZeroWorkersWithNonzeroDepth) {
  em::EmConfig cfg;
  cfg.prefetch_depth = 4;
  cfg.prefetch_threads = 0;
  EXPECT_FALSE(prefetch::ApplyPrefetchConfig(cfg).ok());
}

TEST(ApplyPrefetchConfig, InstallsAFactoryThatBuildsThePool) {
  em::EmConfig cfg;
  cfg.block_words = 16;
  cfg.prefetch_depth = 4;
  cfg.prefetch_threads = 2;
  ASSERT_TRUE(prefetch::ApplyPrefetchConfig(cfg).ok());
  ASSERT_NE(cfg.make_prefetcher, nullptr);
  em::MemoryBackend backend;
  std::unique_ptr<em::LinePrefetcher> p = cfg.make_prefetcher(&backend, cfg);
  ASSERT_NE(p, nullptr);
  auto* pool = static_cast<prefetch::PrefetchPool*>(p.get());
  EXPECT_EQ(pool->depth(), 4u);
  EXPECT_EQ(pool->threads(), 2u);
}

TEST(ApplyPrefetchConfig, MemoryResidentBackendNeverBuildsAPool) {
  // Counting-only caches have no staged lines to serve from; GraphStore must
  // leave the hook unused even when it is installed.
  for (em::StorageKind kind :
       {em::StorageKind::kMemory, em::StorageKind::kMmap}) {
    em::Context ctx(
        PrefetchConfig(1 << 10, 16, 0x5EED, kind, /*depth=*/8, /*threads=*/2));
    EXPECT_EQ(StoreOf(ctx).prefetcher(), nullptr);
    EXPECT_EQ(ctx.prefetch_stats().issued, 0u);
  }
  em::Context staged(PrefetchConfig(1 << 10, 16, 0x5EED,
                                    em::StorageKind::kFile, /*depth=*/8,
                                    /*threads=*/2));
  EXPECT_NE(StoreOf(staged).prefetcher(), nullptr);
}

}  // namespace
}  // namespace trienum
