// Cache-oblivious lazy funnelsort: correctness across sizes/patterns, true
// obliviousness (identical data movement for any M/B), and I/O behaviour
// tracking the sort bound.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "extsort/ext_merge_sort.h"
#include "extsort/funnel_sort.h"
#include "extsort/scan_ops.h"
#include "test_util.h"

namespace trienum {
namespace {

class FunnelSortSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FunnelSortSizeTest, SortsRandomInput) {
  const std::size_t n = GetParam();
  em::Context ctx = test::MakeContext(1 << 12, 16);
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
  SplitMix64 rng(n + 1);
  std::vector<std::uint64_t> host(n);
  for (std::size_t i = 0; i < n; ++i) {
    host[i] = rng.Next() % (n + 3);
    a.Set(i, host[i]);
  }
  extsort::FunnelSort(ctx, a, std::less<std::uint64_t>{});
  std::sort(host.begin(), host.end());
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(a.Get(i), host[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, FunnelSortSizeTest,
                         ::testing::Values(0, 1, 2, 3, 63, 64, 65, 100, 512,
                                           1000, 4096, 10000, 50000));

TEST(FunnelSort, SortedAndReversedInputs) {
  for (bool reversed : {false, true}) {
    const std::size_t n = 3000;
    em::Context ctx = test::MakeContext();
    em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
    for (std::size_t i = 0; i < n; ++i) a.Set(i, reversed ? n - i : i);
    extsort::FunnelSort(ctx, a, std::less<std::uint64_t>{});
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(a.Get(i), reversed ? i + 1 : i);
  }
}

TEST(FunnelSort, StructRecordsWithComparator) {
  const std::size_t n = 2000;
  em::Context ctx = test::MakeContext();
  em::Array<graph::ColoredEdge> a = ctx.Alloc<graph::ColoredEdge>(n);
  SplitMix64 rng(8);
  for (std::size_t i = 0; i < n; ++i) {
    a.Set(i, graph::ColoredEdge{static_cast<graph::VertexId>(rng.Below(100)),
                                static_cast<graph::VertexId>(rng.Below(100)),
                                static_cast<std::uint32_t>(rng.Below(4)),
                                static_cast<std::uint32_t>(rng.Below(4))});
  }
  extsort::FunnelSort(ctx, a, graph::LexLess{});
  EXPECT_TRUE(extsort::IsSorted(a, graph::LexLess{}));
}

// The defining property of a cache-oblivious algorithm: the *computation* is
// independent of M and B. We verify the exact output equality across
// hierarchy configurations, and that the code truly never consulted them by
// construction (FunnelSort has no M/B parameter to read).
TEST(FunnelSort, OutputIndependentOfHierarchyParameters) {
  const std::size_t n = 5000;
  std::vector<std::uint64_t> first;
  for (auto [m, b] : std::vector<std::pair<std::size_t, std::size_t>>{
           {256, 8}, {1 << 12, 16}, {1 << 16, 128}}) {
    em::Context ctx = test::MakeContext(m, b);
    em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
    SplitMix64 rng(12345);
    for (std::size_t i = 0; i < n; ++i) a.Set(i, rng.Next());
    extsort::FunnelSort(ctx, a, std::less<std::uint64_t>{});
    std::vector<std::uint64_t> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = a.Get(i);
    if (first.empty()) {
      first = out;
    } else {
      EXPECT_EQ(out, first);
    }
  }
}

TEST(FunnelSort, IoDecreasesWithLargerMemory) {
  const std::size_t n = 1 << 15;
  auto run = [&](std::size_t m) {
    em::Context ctx = test::MakeContext(m, 16);
    em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
    SplitMix64 rng(7);
    ctx.cache().set_counting(false);
    for (std::size_t i = 0; i < n; ++i) a.Set(i, rng.Next());
    ctx.cache().set_counting(true);
    ctx.cache().Reset();
    extsort::FunnelSort(ctx, a, std::less<std::uint64_t>{});
    ctx.cache().FlushAll();
    return ctx.cache().stats().total_ios();
  };
  std::uint64_t small = run(512);
  std::uint64_t large = run(1 << 14);
  // Same program, bigger cache => strictly fewer misses (recursive locality).
  EXPECT_LT(large, small);
  // With M = 16K words, everything fits: near-compulsory misses only.
  EXPECT_LE(large, 6u * n / 16);
}

TEST(FunnelSort, IoWithinConstantOfSortBound) {
  const std::size_t n = 1 << 15;
  const std::size_t m = 1 << 10, b = 16;
  em::Context ctx = test::MakeContext(m, b);
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
  SplitMix64 rng(7);
  ctx.cache().set_counting(false);
  for (std::size_t i = 0; i < n; ++i) a.Set(i, rng.Next());
  ctx.cache().set_counting(true);
  ctx.cache().Reset();
  extsort::FunnelSort(ctx, a, std::less<std::uint64_t>{});
  ctx.cache().FlushAll();
  double measured = static_cast<double>(ctx.cache().stats().total_ios());
  double bound = extsort::SortIoBound(n, 1, m, b);
  // Funnelsort moves node records and buffers too; allow a generous constant
  // but demand the right order of magnitude.
  EXPECT_LE(measured, 20.0 * bound);
}

TEST(FunnelBufferCap, GrowsAsPromised) {
  using extsort::internal::FunnelBufferCap;
  EXPECT_EQ(FunnelBufferCap(1), 4u);
  EXPECT_EQ(FunnelBufferCap(2), 8u);
  EXPECT_EQ(FunnelBufferCap(3), 32u);
  EXPECT_EQ(FunnelBufferCap(4), 64u);
  EXPECT_EQ(FunnelBufferCap(5), 256u);
}

}  // namespace
}  // namespace trienum
