// The block-buffered hot path's contract (em/array.h):
//
//  1. Stream primitives (Scanner/Writer and everything built on them) charge
//     IoStats *bit-for-bit identical* to the element-wise reference path —
//     reads, writes AND hits — whenever the streams' working set fits in
//     internal memory (one line per active stream), which is every scan,
//     filter, copy and bounded-fan-in merge in the library.
//  2. Whole algorithms produce identical triangle sets in both modes on both
//     storage backends; their simulated I/O totals agree within a small band
//     (coalescing charges at line granularity coarsens LRU recency, so under
//     capacity pressure eviction victims — and therefore re-fetches — can
//     differ slightly; the EM model charges at block granularity, so both
//     are faithful accountings).
//  3. Memory and file backends stay bit-for-bit identical to each other in
//     either mode (the PR-2 guarantee, extended to the buffered path).
//  4. Cache line pinning: pinned lines are never evicted, pins nest, and
//     write-pinned data reaches the backend after unpin.
//  5. The line->slot map behaves identically in its dense and sparse
//     regimes, so file-backed devices far beyond the dense limit account
//     (and stage) exactly like small ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.h"
#include "em/array.h"
#include "em/cache.h"
#include "em/storage.h"
#include "extsort/ext_merge_sort.h"
#include "extsort/funnel_sort.h"
#include "extsort/scan_ops.h"
#include "test_util.h"

namespace trienum {
namespace {

using namespace trienum::graph;

bool SameStats(const em::IoStats& a, const em::IoStats& b) {
  return a.block_reads == b.block_reads && a.block_writes == b.block_writes &&
         a.cache_hits == b.cache_hits;
}

std::string StatsStr(const em::IoStats& s) {
  return "(r=" + std::to_string(s.block_reads) +
         " w=" + std::to_string(s.block_writes) +
         " h=" + std::to_string(s.cache_hits) + ")";
}

// ---------------------------------------------------------------------------
// 1. Stream-primitive exactness: run the same workload down both paths and
// require identical values and identical IoStats.

/// Three record shapes: one word packed, multi-word packed, and padded (the
/// tail word carries deterministic zero padding).
struct Rec3 {
  std::uint64_t a = 0, b = 0, c = 0;
  bool operator==(const Rec3& o) const { return a == o.a && b == o.b && c == o.c; }
};
struct PaddedRec {
  std::uint32_t x = 0, y = 0, z = 0;  // 12 bytes -> 2 words with padding
  bool operator==(const PaddedRec& o) const {
    return x == o.x && y == o.y && z == o.z;
  }
};

template <typename T, typename MakeT>
void StreamRoundTrip(em::ScanMode mode, em::StorageKind storage, std::size_t n,
                     std::size_t m_words, std::size_t b_words, MakeT make,
                     em::IoStats* out_stats, std::uint64_t* out_digest) {
  em::ScopedScanMode sm(mode);
  em::Context ctx = test::MakeContext(m_words, b_words, 0x5EED, storage);
  em::Array<T> a = ctx.Alloc<T>(n);
  em::Array<T> b = ctx.Alloc<T>(n);
  ctx.cache().Reset();

  {
    em::Writer<T> w(a);
    for (std::size_t i = 0; i < n; ++i) w.Push(make(i));
    w.Flush();
  }
  // Copy through a scanner with a Peek-before-Next consumer (the merge-join
  // access pattern), then scan once more accumulating a digest.
  {
    em::Scanner<T> in(a);
    em::Writer<T> w(b);
    while (in.HasNext()) {
      T peeked = in.Peek();
      T got = in.Next();
      EXPECT_TRUE(peeked == got);
      w.Push(got);
    }
    w.Flush();
  }
  std::uint64_t digest = 0;
  {
    em::Scanner<T> in(b);
    while (in.HasNext()) {
      T v = in.Next();
      unsigned char bytes[sizeof(T)];
      std::memcpy(bytes, &v, sizeof(T));
      for (unsigned char c : bytes) digest = digest * 1099511628211ULL + c;
    }
  }
  ctx.cache().FlushAll();
  *out_stats = ctx.cache().stats();
  *out_digest = digest;
}

template <typename T, typename MakeT>
void ExpectStreamParity(std::size_t n, std::size_t m_words, std::size_t b_words,
                        MakeT make) {
  for (em::StorageKind storage :
       {em::StorageKind::kMemory, em::StorageKind::kFile}) {
    em::IoStats se, sb;
    std::uint64_t de, db;
    StreamRoundTrip<T>(em::ScanMode::kElementwise, storage, n, m_words, b_words,
                       make, &se, &de);
    StreamRoundTrip<T>(em::ScanMode::kBuffered, storage, n, m_words, b_words,
                       make, &sb, &db);
    EXPECT_EQ(de, db) << "values diverged";
    EXPECT_TRUE(SameStats(se, sb))
        << "n=" << n << " M=" << m_words << " B=" << b_words
        << " elementwise=" << StatsStr(se) << " buffered=" << StatsStr(sb);
  }
}

TEST(HotPathStreams, ScanWriePeekParityOneWordRecords) {
  auto make = [](std::size_t i) { return std::uint64_t{i} * 0x9E3779B97F4A7C15ULL; };
  for (std::size_t n : {0ULL, 1ULL, 7ULL, 64ULL, 1000ULL, 4096ULL}) {
    ExpectStreamParity<std::uint64_t>(n, 1 << 10, 16, make);
  }
}

TEST(HotPathStreams, ParityMultiWordRecords) {
  auto make = [](std::size_t i) {
    return Rec3{i, i * 3 + 1, ~std::uint64_t{i}};
  };
  ExpectStreamParity<Rec3>(999, 1 << 10, 16, make);
}

TEST(HotPathStreams, ParityPaddedRecords) {
  auto make = [](std::size_t i) {
    return PaddedRec{static_cast<std::uint32_t>(i),
                     static_cast<std::uint32_t>(i * 7),
                     static_cast<std::uint32_t>(~i)};
  };
  ExpectStreamParity<PaddedRec>(777, 1 << 10, 16, make);
}

TEST(HotPathStreams, ParityWhenRecordsCrossLineBoundaries) {
  // 3-word records over B=16: records straddle lines every few records.
  auto make = [](std::size_t i) { return Rec3{i, i + 1, i + 2}; };
  for (std::size_t b : {8ULL, 16ULL, 31ULL}) {  // including non-power-of-two B
    ExpectStreamParity<Rec3>(500, 32 * b, b, make);
  }
}

TEST(HotPathStreams, ScanOpsChargeIdenticallyAcrossModes) {
  // Filter (aliasing, writes trail reads), Transform, UniqueConsecutive and
  // CountIf over both modes: same results, same IoStats. M is sized so the
  // aliasing filter's read-ahead/write-behind gap stays resident (exactness
  // is only promised without capacity pressure; the banded matrix test
  // below covers the pressured regime).
  auto workload = [](em::ScanMode mode, em::IoStats* stats) {
    em::ScopedScanMode sm(mode);
    em::Context ctx = test::MakeContext(1 << 13, 16);
    const std::size_t n = 3000;
    em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
    em::Array<std::uint64_t> b = ctx.Alloc<std::uint64_t>(n);
    ctx.cache().Reset();
    {
      em::Writer<std::uint64_t> w(a);
      for (std::size_t i = 0; i < n; ++i) w.Push((i * 37) % 501);
      w.Flush();
    }
    extsort::Transform(a, b, [](std::uint64_t v) { return v / 3; });
    std::size_t kept =
        extsort::Filter(b, b, [](std::uint64_t v) { return v % 2 == 0; });
    std::size_t uniq = extsort::UniqueConsecutive(
        b.Slice(0, kept), [](std::uint64_t x, std::uint64_t y) { return x == y; });
    std::size_t odd = extsort::CountIf(
        b.Slice(0, uniq), [](std::uint64_t v) { return v % 2 == 1; });
    EXPECT_EQ(odd, 0u);
    ctx.cache().FlushAll();
    *stats = ctx.cache().stats();
  };
  em::IoStats se, sb;
  workload(em::ScanMode::kElementwise, &se);
  workload(em::ScanMode::kBuffered, &sb);
  EXPECT_TRUE(SameStats(se, sb))
      << "elementwise=" << StatsStr(se) << " buffered=" << StatsStr(sb);
}

TEST(HotPathStreams, MergeSortParityAcrossModesAndBackends) {
  // Bounded-fan-in multiway merge: every stream owns one resident line, so
  // buffered and element-wise paths must agree exactly.
  for (em::StorageKind storage :
       {em::StorageKind::kMemory, em::StorageKind::kFile}) {
    em::IoStats stats[2];
    std::vector<std::uint64_t> sorted[2];
    int idx = 0;
    for (em::ScanMode mode :
         {em::ScanMode::kElementwise, em::ScanMode::kBuffered}) {
      em::ScopedScanMode sm(mode);
      em::Context ctx = test::MakeContext(1 << 10, 16, 0xABCD, storage);
      const std::size_t n = 5000;
      em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
      ctx.cache().Reset();
      SplitMix64 rng(99);
      {
        em::Writer<std::uint64_t> w(a);
        for (std::size_t i = 0; i < n; ++i) w.Push(rng.Next() % 100000);
        w.Flush();
      }
      extsort::ExternalMergeSort(ctx, a,
                                 [](std::uint64_t x, std::uint64_t y) { return x < y; });
      sorted[idx].resize(n);
      ctx.cache().set_counting(false);
      a.ReadTo(0, n, sorted[idx].data());
      ctx.cache().set_counting(true);
      ctx.cache().FlushAll();
      stats[idx] = ctx.cache().stats();
      ++idx;
    }
    EXPECT_EQ(sorted[0], sorted[1]);
    EXPECT_TRUE(std::is_sorted(sorted[1].begin(), sorted[1].end()));
    EXPECT_TRUE(SameStats(stats[0], stats[1]))
        << "elementwise=" << StatsStr(stats[0])
        << " buffered=" << StatsStr(stats[1]);
  }
}

TEST(HotPathStreams, CloneArrayCopiesChunkedAndExact) {
  em::Context ctx = test::MakeContext(1 << 10, 16);
  const std::size_t n = 2500;
  em::Array<Rec3> a = ctx.Alloc<Rec3>(n);
  for (std::size_t i = 0; i < n; ++i) a.Set(i, Rec3{i, i ^ 7, i * 11});
  ctx.cache().Reset();
  em::Array<Rec3> b = em::CloneArray(ctx, a);
  // Chunked DMA: one read + one write touch per covered line, so total block
  // I/Os are ~2n*w/B instead of the old per-record churn.
  const std::size_t lines = (n * 3 + 15) / 16;
  EXPECT_LE(ctx.cache().stats().total_ios(), 2 * lines + 4);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(a.Get(i) == b.Get(i)) << i;
  }
}

// ---------------------------------------------------------------------------
// 2+3. Whole-algorithm differential: modes x backends x specs.

struct AlgoRun {
  std::vector<Triangle> triangles;
  em::IoStats io;
};

AlgoRun RunAlgo(const std::string& algo, const std::vector<Edge>& raw,
                em::ScanMode mode, em::StorageKind storage, std::size_t m_words,
                std::size_t b_words) {
  em::ScopedScanMode sm(mode);
  em::Context ctx = test::MakeContext(m_words, b_words, 0xD1FF, storage);
  EmGraph g = BuildEmGraph(ctx, raw);
  ctx.cache().Reset();
  core::CollectingSink sink;
  core::FindAlgorithm(algo)->run(ctx, g, sink);
  ctx.cache().FlushAll();
  AlgoRun out;
  out.triangles = sink.triangles();
  std::sort(out.triangles.begin(), out.triangles.end());
  out.io = ctx.cache().stats();
  return out;
}

TEST(HotPathDifferential, AlgorithmMatrixModesAndBackends) {
  // Every registered algorithm on both backends, both scan modes. Triangle
  // sets must match exactly; mode-vs-mode simulated totals must stay inside
  // a 12% band (line-granular charging coarsens LRU recency under capacity
  // pressure; see the file comment); backend-vs-backend must be bit-for-bit
  // within each mode.
  struct Spec {
    std::string name;
    std::vector<Edge> edges;
  };
  std::vector<Spec> specs;
  specs.push_back({"gnm", Gnm(512, 2048, 7)});
  specs.push_back({"rmat", Rmat(9, 1500, 0.45, 0.22, 0.22, 13)});
  specs.push_back({"planted", PlantedTriangles(300, 600, 40, 99)});
  const std::size_t m = 1 << 10, b = 16;
  for (const Spec& spec : specs) {
    for (const core::AlgorithmInfo& a : core::AllAlgorithms()) {
      SCOPED_TRACE(spec.name + " / " + a.name);
      AlgoRun mem_e = RunAlgo(a.name, spec.edges, em::ScanMode::kElementwise,
                              em::StorageKind::kMemory, m, b);
      AlgoRun mem_b = RunAlgo(a.name, spec.edges, em::ScanMode::kBuffered,
                              em::StorageKind::kMemory, m, b);
      AlgoRun file_b = RunAlgo(a.name, spec.edges, em::ScanMode::kBuffered,
                               em::StorageKind::kFile, m, b);
      AlgoRun file_e = RunAlgo(a.name, spec.edges, em::ScanMode::kElementwise,
                               em::StorageKind::kFile, m, b);
      // Same triangles everywhere.
      EXPECT_EQ(mem_e.triangles, mem_b.triangles);
      EXPECT_EQ(mem_b.triangles, file_b.triangles);
      // Backend-independence is exact in both modes.
      EXPECT_TRUE(SameStats(mem_b.io, file_b.io))
          << "buffered mem=" << StatsStr(mem_b.io)
          << " file=" << StatsStr(file_b.io);
      EXPECT_TRUE(SameStats(mem_e.io, file_e.io))
          << "elementwise mem=" << StatsStr(mem_e.io)
          << " file=" << StatsStr(file_e.io);
      // Mode-vs-mode block totals within the band.
      double te = static_cast<double>(mem_e.io.total_ios());
      double tb = static_cast<double>(mem_b.io.total_ios());
      if (te > 0) {
        EXPECT_LE(std::abs(te - tb) / te, 0.12)
            << "elementwise=" << StatsStr(mem_e.io)
            << " buffered=" << StatsStr(mem_b.io);
      } else {
        EXPECT_EQ(te, tb);
      }
    }
  }
}

TEST(HotPathDifferential, StandardCasesProduceIdenticalTriangles) {
  // Cheap correctness sweep over the whole menagerie in buffered mode
  // against the host reference (the element-wise path is covered above).
  for (const test::GraphCase& gc : test::StandardGraphCases()) {
    std::vector<Triangle> want = test::ReferenceNormalized(gc.edges);
    for (const char* algo : {"ps-cache-aware", "ps-cache-oblivious", "mgt"}) {
      SCOPED_TRACE(gc.name + std::string(" / ") + algo);
      std::vector<Triangle> got = test::RunCollect(algo, gc.edges);
      EXPECT_EQ(want, got);
    }
  }
}

// ---------------------------------------------------------------------------
// 4. Pin/unpin invariants.

TEST(CachePinning, PinnedLineSurvivesCapacityPressure) {
  // Counting-only cache with 4 slots; pin one line, then touch far more
  // distinct lines than the cache holds. The pinned line must stay resident
  // (never chosen for eviction) the whole time.
  em::Cache cache(64, 16);  // 4 slots
  cache.Touch(0, /*write=*/false);
  std::int32_t slot = cache.Pin(0, /*write=*/false);
  for (em::Addr a = 16; a < 16 * 200; a += 16) {
    cache.Touch(a, /*write=*/false);
    ASSERT_TRUE(cache.IsResident(0)) << "pinned line evicted at line " << a / 16;
  }
  EXPECT_TRUE(cache.IsPinned(0));
  cache.Unpin(slot);
  EXPECT_FALSE(cache.IsPinned(0));
  // Now unpinned: enough fresh lines push it out.
  for (em::Addr a = 16 * 200; a < 16 * 300; a += 16) cache.Touch(a, false);
  EXPECT_FALSE(cache.IsResident(0));
}

TEST(CachePinning, PinsNest) {
  em::Cache cache(64, 16);
  std::int32_t s1 = cache.Pin(0, false);
  std::int32_t s2 = cache.Pin(5, false);  // same line (B=16)
  EXPECT_EQ(s1, s2);
  cache.Unpin(s1);
  EXPECT_TRUE(cache.IsPinned(0)) << "one unpin must not release a nested pin";
  cache.Unpin(s2);
  EXPECT_FALSE(cache.IsPinned(0));
}

TEST(CachePinning, WritePinnedDataReachesBackendAfterUnpin) {
  // Staged cache over a file backend: write through the pinned buffer, force
  // eviction after unpinning, and read the data back from the backend.
  em::FileBackend backend;
  backend.EnsureSize(16 * 64);
  em::Cache cache(64, 16, &backend);  // 4 slots, staged
  std::int32_t s = cache.Pin(32, /*write=*/true);
  em::Word* buf = cache.slot_buffer(s);
  for (std::size_t i = 0; i < 16; ++i) buf[i] = 0xC0FFEE00ULL + i;
  cache.Unpin(s);
  cache.FlushAll();  // dirty line written back
  std::vector<em::Word> got(16);
  backend.ReadWords(32, 16, got.data());
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(got[i], 0xC0FFEE00ULL + i) << i;
}

TEST(CachePinning, PinChargesLikeATouch) {
  em::Cache a(256, 16), b(256, 16);
  a.Touch(40, false);
  b.Pin(40, false);
  EXPECT_EQ(a.stats().block_reads, b.stats().block_reads);
  EXPECT_EQ(a.stats().cache_hits, b.stats().cache_hits);
  a.Touch(41, true);
  std::int32_t s = b.Pin(41, true);
  EXPECT_EQ(a.stats().block_reads, b.stats().block_reads);
  EXPECT_EQ(a.stats().cache_hits, b.stats().cache_hits);
  b.Unpin(s);
  // Unpin itself charges nothing.
  EXPECT_EQ(a.stats().cache_hits, b.stats().cache_hits);
}

TEST(CachePinning, ContextPinnedLineGivesWritableView) {
  // Memory backend: the pinned pointer is the device view itself.
  em::Context ctx = test::MakeContext(1 << 10, 16);
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(64);
  for (std::size_t i = 0; i < 64; ++i) a.Set(i, i);
  {
    em::PinnedLine pin = ctx.PinLine(a.AddrOf(16), /*write=*/true);
    EXPECT_EQ(pin.base(), a.AddrOf(16));
    EXPECT_EQ(pin.size_words(), 16u);
    ASSERT_NE(pin.data(), nullptr);
    pin.data()[0] = 4242;
  }
  EXPECT_EQ(a.Get(16), 4242u);

  // File backend: the pinned pointer is the staged line buffer, and edits
  // survive write-back.
  em::Context fctx = test::MakeFileContext(1 << 10, 16);
  em::Array<std::uint64_t> fa = fctx.Alloc<std::uint64_t>(64);
  for (std::size_t i = 0; i < 64; ++i) fa.Set(i, i);
  {
    em::PinnedLine pin = fctx.PinLine(fa.AddrOf(32), /*write=*/true);
    ASSERT_NE(pin.data(), nullptr);
    pin.data()[0] = 777;
  }
  fctx.cache().FlushAll();
  EXPECT_EQ(fa.Get(32), 777u);
}

// ---------------------------------------------------------------------------
// 5. LineMap dense/sparse regimes.

TEST(LineMapRegimes, SparseRegimeCountsExactlyLikeDense) {
  // The same (relative) touch sequence must produce identical IoStats
  // whether the lines sit below the dense limit or far above it.
  const std::size_t b = 16;
  const std::size_t dense_limit = 64;  // tiny, to force the sparse regime
  SplitMix64 rng(0x11AA);
  std::vector<std::pair<em::Addr, bool>> ops;
  for (int i = 0; i < 5000; ++i) {
    ops.emplace_back(rng.Next() % (b * 256), rng.Next() % 2 == 0);
  }
  em::IoStats stats[2];
  int idx = 0;
  for (em::Addr offset : {em::Addr{0}, em::Addr{b * dense_limit * 1000}}) {
    em::Cache cache(b * 8, b, nullptr, dense_limit);
    for (auto [addr, write] : ops) cache.Touch(addr + offset, write);
    cache.FlushAll();
    stats[idx++] = cache.stats();
  }
  EXPECT_TRUE(SameStats(stats[0], stats[1]))
      << "dense=" << StatsStr(stats[0]) << " sparse=" << StatsStr(stats[1]);
}

TEST(LineMapRegimes, FileBackendWorksBeyondDenseLimit) {
  // A staged device addressed far past the dense line-map limit: data stays
  // correct and host memory for the map is bounded by residency, not by the
  // device size (the sparse file makes the huge address range cheap).
  em::EmConfig cfg;
  cfg.memory_words = 1 << 8;
  cfg.block_words = 16;
  cfg.storage = em::StorageKind::kFile;
  cfg.line_map_dense_limit = 32;  // 32 lines = 512 words
  em::Context ctx(cfg);
  // Burn address space past the dense limit, then allocate out there.
  ctx.device().Allocate(1 << 20, 16);
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(4096);
  ASSERT_GT(a.base(), cfg.line_map_dense_limit * cfg.block_words);
  {
    em::Writer<std::uint64_t> w(a);
    for (std::size_t i = 0; i < 4096; ++i) w.Push(i * 3 + 1);
    w.Flush();
  }
  em::Scanner<std::uint64_t> in(a);
  std::size_t i = 0;
  while (in.HasNext()) {
    ASSERT_EQ(in.Next(), i * 3 + 1) << i;
    ++i;
  }
  ctx.cache().FlushAll();
  // One sequential write pass + one read pass at block granularity.
  const std::size_t lines = 4096 / 16;
  EXPECT_EQ(ctx.cache().stats().block_writes, lines);
  EXPECT_EQ(ctx.cache().stats().block_reads, lines);
}

TEST(LineMapRegimes, ScanChargesMatchElementwiseAtHugeAddresses) {
  // ScanRange vs per-record TouchRange on twin caches, randomized over
  // record sizes and spans, in the sparse regime.
  const std::size_t b = 16;
  SplitMix64 rng(0x77);
  em::Cache coalesced(b * 8, b, nullptr, /*dense_limit=*/16);
  em::Cache elementwise(b * 8, b, nullptr, /*dense_limit=*/16);
  const em::Addr base = em::Addr{1} << 40;
  for (int round = 0; round < 2000; ++round) {
    std::size_t elem_words = 1 + rng.Next() % 5;
    std::size_t count = 1 + rng.Next() % 40;
    em::Addr addr = base + (rng.Next() % (1 << 14));
    bool write = rng.Next() % 2 == 0;
    coalesced.ScanRange(addr, count * elem_words, elem_words, write);
    for (std::size_t i = 0; i < count; ++i) {
      elementwise.TouchRange(addr + i * elem_words, elem_words, write);
    }
    ASSERT_TRUE(SameStats(coalesced.stats(), elementwise.stats()))
        << "round " << round << " coalesced=" << StatsStr(coalesced.stats())
        << " elementwise=" << StatsStr(elementwise.stats());
  }
}

}  // namespace
}  // namespace trienum
