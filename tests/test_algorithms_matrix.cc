// The central correctness matrix: every registered algorithm, on every graph
// in the standard menagerie, across several (M, B) configurations, must
// produce exactly the reference triangle set — same set, no duplicates, no
// misses. This is the library's strongest single piece of evidence that all
// seven enumeration algorithms implement the same semantics ("each triangle
// emitted exactly once").
#include <gtest/gtest.h>

#include <tuple>

#include "test_util.h"

namespace trienum {
namespace {

struct MatrixParam {
  std::string algorithm;
  std::size_t graph_index;
  std::size_t m_words;
  std::size_t b_words;
};

std::vector<MatrixParam> BuildMatrix() {
  std::vector<MatrixParam> params;
  const auto cases = test::StandardGraphCases();
  const std::vector<std::pair<std::size_t, std::size_t>> mem_configs = {
      {1 << 12, 16},  // roomy memory
      {512, 8},       // tight memory: many chunks / merge passes
  };
  for (const core::AlgorithmInfo& a : core::AllAlgorithms()) {
    for (std::size_t gi = 0; gi < cases.size(); ++gi) {
      for (auto [m, b] : mem_configs) {
        params.push_back(MatrixParam{a.name, gi, m, b});
      }
    }
  }
  return params;
}

class AlgorithmMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(AlgorithmMatrixTest, MatchesReferenceExactly) {
  const MatrixParam& p = GetParam();
  const auto cases = test::StandardGraphCases();
  const test::GraphCase& gc = cases[p.graph_index];

  std::vector<graph::Triangle> expected = test::ReferenceNormalized(gc.edges);
  std::vector<graph::Triangle> got =
      test::RunCollect(p.algorithm, gc.edges, p.m_words, p.b_words);

  EXPECT_TRUE(test::NoDuplicates(got))
      << p.algorithm << " emitted a duplicate triangle on " << gc.name;
  EXPECT_EQ(got, expected) << p.algorithm << " on " << gc.name << " (M="
                           << p.m_words << ", B=" << p.b_words << ")";
}

std::string MatrixName(const ::testing::TestParamInfo<MatrixParam>& info) {
  const auto cases = test::StandardGraphCases();
  std::string algo = info.param.algorithm;
  for (char& ch : algo) {
    if (ch == '-') ch = '_';
  }
  return algo + "_" + cases[info.param.graph_index].name + "_M" +
         std::to_string(info.param.m_words) + "_B" +
         std::to_string(info.param.b_words);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithmsAllGraphs, AlgorithmMatrixTest,
                         ::testing::ValuesIn(BuildMatrix()), MatrixName);

}  // namespace
}  // namespace trienum
