// The §2 cache-aware algorithm: option coverage (seeds, forced colors,
// ablations), exactly-once semantics on adversarial shapes, and the
// E^{3/2}/(sqrt(M)B) behaviour.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cache_aware.h"
#include "core/mgt.h"
#include "test_util.h"

namespace trienum {
namespace {

using namespace trienum::graph;

std::vector<Triangle> RunAware(const std::vector<Edge>& raw,
                          const core::CacheAwareOptions& opts,
                          std::size_t m = 1 << 12, std::size_t b = 16) {
  em::Context ctx = test::MakeContext(m, b);
  EmGraph g = BuildEmGraph(ctx, raw);
  core::CollectingSink sink;
  core::EnumerateCacheAware(ctx, g, sink, opts);
  auto out = sink.triangles();
  std::sort(out.begin(), out.end());
  return out;
}

TEST(CacheAware, DifferentSeedsSameAnswer) {
  auto raw = Gnm(120, 900, 55);
  auto expected = test::ReferenceNormalized(raw);
  for (std::uint64_t seed : {1ull, 2ull, 0xDEADBEEFull, 77777ull}) {
    core::CacheAwareOptions opts;
    opts.seed = seed;
    EXPECT_EQ(RunAware(raw, opts), expected) << "seed " << seed;
  }
}

TEST(CacheAware, ForcedColorCountsStillCorrect) {
  auto raw = Gnm(100, 700, 9);
  auto expected = test::ReferenceNormalized(raw);
  for (std::uint32_t c : {1u, 2u, 4u, 8u, 16u}) {
    core::CacheAwareOptions opts;
    opts.force_colors = c;
    EXPECT_EQ(RunAware(raw, opts), expected) << "c = " << c;
  }
}

TEST(CacheAware, HighDegreeStepAblationStillCorrect) {
  // Without step 1, correctness must not change (only the I/O bound's proof
  // breaks); with a hub-heavy graph this exercises huge color classes.
  auto raw = CliquePlusPath(16, 60);
  auto expected = test::ReferenceNormalized(raw);
  core::CacheAwareOptions opts;
  opts.high_degree_step = false;
  EXPECT_EQ(RunAware(raw, opts), expected);
}

TEST(CacheAware, HubGraphExactlyOnce) {
  // Multiple overlapping hubs: triangles with 1, 2, and 3 high-degree
  // vertices must each be emitted exactly once across step 1's iterations.
  std::vector<Edge> raw = Clique(20);  // in K20 every vertex is "high degree"
  auto got = RunAware(raw, {}, /*m=*/256, /*b=*/8);
  EXPECT_TRUE(test::NoDuplicates(got));
  EXPECT_EQ(got.size(), 1140u);  // C(20,3)
}

TEST(CacheAware, ChunkFractionSweep) {
  auto raw = Gnm(90, 650, 31);
  auto expected = test::ReferenceNormalized(raw);
  for (double frac : {1.0 / 64, 1.0 / 8}) {
    core::CacheAwareOptions opts;
    opts.chunk_fraction = frac;
    EXPECT_EQ(RunAware(raw, opts), expected);
  }
}

TEST(CacheAware, IoImprovesOverMgtWhenEFarExceedsM) {
  // The headline claim: with E >> M, ours beats MGT by ~sqrt(E/M).
  const std::size_t m = 1 << 9, b = 16;
  em::Context ctx = test::MakeContext(m, b);
  EmGraph g = BuildEmGraph(ctx, Gnm(1 << 12, 1 << 14, 3));

  ctx.cache().Reset();
  core::CountingSink s1;
  core::EnumerateCacheAware(ctx, g, s1);
  ctx.cache().FlushAll();
  double ours = static_cast<double>(ctx.cache().stats().total_ios());

  ctx.cache().Reset();
  core::CountingSink s2;
  core::EnumerateMgt(ctx, g, s2);
  ctx.cache().FlushAll();
  double mgt = static_cast<double>(ctx.cache().stats().total_ios());

  EXPECT_EQ(s1.count(), s2.count());
  EXPECT_LT(ours, mgt) << "E/M = 32: color coding must already win";
}

TEST(CacheAware, IoScalesLikeRootM) {
  // Quadrupling M should reduce I/Os by ~2x (1/sqrt(M)), not ~4x (1/M).
  const std::size_t e = 1 << 14;
  auto run = [&](std::size_t m) {
    em::Context ctx = test::MakeContext(m, 16);
    EmGraph g = BuildEmGraph(ctx, Gnm(1 << 12, e, 3));
    ctx.cache().Reset();
    core::CountingSink sink;
    core::EnumerateCacheAware(ctx, g, sink);
    ctx.cache().FlushAll();
    return static_cast<double>(ctx.cache().stats().total_ios());
  };
  double io_small = run(1 << 9);
  double io_big = run(1 << 11);
  double ratio = io_small / io_big;
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 3.5) << "scaling looks like 1/M, not the expected 1/sqrt(M)";
}

TEST(CacheAware, DiskUsageStaysLinear) {
  const std::size_t e = 1 << 13;
  em::Context ctx = test::MakeContext(1 << 10, 16);
  EmGraph g = BuildEmGraph(ctx, Gnm(1 << 11, e, 3));
  ctx.device().ResetPeak();
  std::size_t before = ctx.device().peak_words();
  core::CountingSink sink;
  core::EnumerateCacheAware(ctx, g, sink);
  // O(E) words on disk (Theorem 4): generous constant, but linear.
  EXPECT_LE(ctx.device().peak_words() - before, 24 * e);
}

}  // namespace
}  // namespace trienum
