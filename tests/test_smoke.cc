// End-to-end smoke test: every registered algorithm enumerates K5 correctly
// under a small simulated memory. Deeper per-module suites live in the other
// test files; this one exists to catch wiring breakage early.
#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/reference.h"
#include "graph/generators.h"
#include "graph/normalize.h"

namespace trienum {
namespace {

TEST(Smoke, AllAlgorithmsOnK5) {
  for (const core::AlgorithmInfo& algo : core::AllAlgorithms()) {
    em::EmConfig cfg;
    cfg.memory_words = 1 << 12;
    cfg.block_words = 16;
    em::Context ctx(cfg);
    graph::EmGraph g = graph::BuildEmGraph(ctx, graph::Clique(5));
    core::CountingSink sink;
    algo.run(ctx, g, sink);
    EXPECT_EQ(sink.count(), 10u) << algo.name;
  }
}

TEST(Smoke, ReferenceOnK5) {
  EXPECT_EQ(core::CountTrianglesHost(graph::Clique(5)), 10u);
}

}  // namespace
}  // namespace trienum
