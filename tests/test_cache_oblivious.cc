// The §3 cache-oblivious algorithm: obliviousness (identical emission for
// every hierarchy configuration), recursion-shape statistics, ablations, and
// the I/O advantage over MGT at small M.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/cache_oblivious.h"
#include "core/mgt.h"
#include "test_util.h"

namespace trienum {
namespace {

using namespace trienum::graph;

std::vector<Triangle> RunOblivious(const std::vector<Edge>& raw,
                          const core::CacheObliviousOptions& opts,
                          std::size_t m = 1 << 12, std::size_t b = 16,
                          core::CacheObliviousReport* rep = nullptr) {
  em::Context ctx = test::MakeContext(m, b);
  EmGraph g = BuildEmGraph(ctx, raw);
  core::CollectingSink sink;
  core::EnumerateCacheOblivious(ctx, g, sink, opts, rep);
  auto out = sink.triangles();
  std::sort(out.begin(), out.end());
  return out;
}

TEST(CacheOblivious, EmissionIndependentOfMAndB) {
  // Obliviousness: with a fixed seed, the emitted multiset (indeed the whole
  // computation) cannot depend on M or B.
  auto raw = Gnm(100, 800, 21);
  core::CacheObliviousOptions opts;
  opts.seed = 99;
  auto first = RunOblivious(raw, opts, 1 << 12, 16);
  for (auto [m, b] : std::vector<std::pair<std::size_t, std::size_t>>{
           {256, 8}, {1 << 10, 32}, {1 << 15, 64}}) {
    EXPECT_EQ(RunOblivious(raw, opts, m, b), first) << "M=" << m << " B=" << b;
  }
  EXPECT_EQ(first, test::ReferenceNormalized(raw));
}

TEST(CacheOblivious, SeedsVaryRecursionNotAnswer) {
  auto raw = Gnm(80, 600, 13);
  auto expected = test::ReferenceNormalized(raw);
  std::vector<std::uint64_t> child_edge_counts;
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    core::CacheObliviousOptions opts;
    opts.seed = seed;
    core::CacheObliviousReport rep;
    EXPECT_EQ(RunOblivious(raw, opts, 1 << 12, 16, &rep), expected);
    child_edge_counts.push_back(rep.total_child_edges);
  }
  // Different random refinements lead to different recursion trees.
  EXPECT_FALSE(child_edge_counts[0] == child_edge_counts[1] &&
               child_edge_counts[1] == child_edge_counts[2]);
}

TEST(CacheOblivious, ReportShapeMatchesTheory) {
  auto raw = Gnm(300, 2500, 5);
  core::CacheObliviousOptions opts;
  opts.seed = 7;
  core::CacheObliviousReport rep;
  auto got = RunOblivious(raw, opts, 1 << 12, 16, &rep);
  EXPECT_EQ(got, test::ReferenceNormalized(raw));
  // max depth = ceil(log4 E) for E=2500 -> 6.
  EXPECT_LE(rep.max_depth_reached, 6);
  EXPECT_GT(rep.subproblems, 8u);
  // Total child-edge mass across all levels is O(E^{3/2}) (sum 2^i E).
  double e = 2500;
  EXPECT_LE(static_cast<double>(rep.total_child_edges), 6.0 * std::pow(e, 1.5));
}

TEST(CacheOblivious, PruneEmptySlotsAblationSameAnswerFewerNodes) {
  auto raw = Gnm(150, 1200, 17);
  core::CacheObliviousOptions a, b;
  a.seed = b.seed = 5;
  b.prune_empty_slots = true;
  core::CacheObliviousReport ra, rb;
  auto ta = RunOblivious(raw, a, 1 << 12, 16, &ra);
  auto tb = RunOblivious(raw, b, 1 << 12, 16, &rb);
  EXPECT_EQ(ta, tb);
  EXPECT_LT(rb.subproblems, ra.subproblems);
}

TEST(CacheOblivious, BaseCutoffAblationSameAnswer) {
  auto raw = Gnm(150, 1200, 17);
  auto expected = test::ReferenceNormalized(raw);
  for (std::size_t cutoff : {8u, 64u, 100000u}) {
    core::CacheObliviousOptions opts;
    opts.seed = 5;
    opts.base_cutoff = cutoff;
    EXPECT_EQ(RunOblivious(raw, opts), expected) << "cutoff " << cutoff;
  }
}

TEST(CacheOblivious, DepthZeroIsPureDementiev) {
  auto raw = Gnm(100, 700, 29);
  core::CacheObliviousOptions opts;
  opts.max_depth_override = 0;
  core::CacheObliviousReport rep;
  EXPECT_EQ(RunOblivious(raw, opts, 1 << 12, 16, &rep), test::ReferenceNormalized(raw));
  EXPECT_EQ(rep.base_cases, 1u);
  EXPECT_EQ(rep.subproblems, 1u);
}

TEST(CacheOblivious, CliqueWithLocalHighDegreeEveryLevel) {
  // In a clique every vertex has degree E/8-ish at every level: the
  // high-degree step fires repeatedly; exactly-once must survive.
  auto got = RunOblivious(Clique(24), {}, 1 << 12, 16);
  EXPECT_TRUE(test::NoDuplicates(got));
  EXPECT_EQ(got.size(), 2024u);  // C(24,3)
}

TEST(CacheOblivious, GrowsLikeE15WhileMgtGrowsLikeE2) {
  // The paper's separation is asymptotic: ours scales as E^{3/2}, MGT as
  // E^2. Growing E by 8x at fixed M must grow MGT's I/O by ~64x but ours by
  // only ~23x; the measured growth exponents must be separated.
  const std::size_t m = 1 << 9, b = 16;
  auto measure = [&](std::size_t e, bool oblivious) {
    em::Context ctx = test::MakeContext(m, b);
    EmGraph g = BuildEmGraph(ctx, Gnm(e / 2, e, 3));
    ctx.cache().Reset();
    core::CountingSink sink;
    if (oblivious) {
      core::EnumerateCacheOblivious(ctx, g, sink);
    } else {
      core::EnumerateMgt(ctx, g, sink);
    }
    ctx.cache().FlushAll();
    return static_cast<double>(ctx.cache().stats().total_ios());
  };
  const std::size_t e_small = 1 << 12, e_big = 1 << 15;
  double ours_growth = measure(e_big, true) / measure(e_small, true);
  double mgt_growth = measure(e_big, false) / measure(e_small, false);
  double factor = std::log2(static_cast<double>(e_big) / e_small);  // 3
  double ours_exp = std::log2(ours_growth) / factor;
  double mgt_exp = std::log2(mgt_growth) / factor;
  EXPECT_LT(ours_exp, mgt_exp - 0.25)
      << "ours " << ours_exp << " vs MGT " << mgt_exp;
  EXPECT_LT(ours_exp, 1.85);
  EXPECT_GT(mgt_exp, 1.6);
}

TEST(CacheOblivious, IoDropsWithLargerMemoryWithoutRecompiling) {
  // One fixed computation (fixed seed) measured under growing caches: the
  // whole point of cache-obliviousness.
  auto raw = Gnm(1 << 12, 1 << 14, 3);
  core::CacheObliviousOptions opts;
  opts.seed = 31;
  auto measure = [&](std::size_t m) {
    em::Context ctx = test::MakeContext(m, 16);
    EmGraph g = BuildEmGraph(ctx, raw);
    ctx.cache().Reset();
    core::CountingSink sink;
    core::EnumerateCacheOblivious(ctx, g, sink, opts);
    ctx.cache().FlushAll();
    return static_cast<double>(ctx.cache().stats().total_ios());
  };
  double io1 = measure(1 << 9);
  double io2 = measure(1 << 11);
  double io3 = measure(1 << 13);
  EXPECT_GT(io1, io2);
  EXPECT_GT(io2, io3);
}

}  // namespace
}  // namespace trienum
