// Typed array views, multi-word records, slices, scanners and writers.
#include <gtest/gtest.h>

#include "em/array.h"
#include "graph/types.h"
#include "test_util.h"

namespace trienum {
namespace {

struct ThreeWordRec {
  std::uint64_t a;
  std::uint64_t b;
  std::uint64_t c;
};

TEST(Array, WordsPerRecord) {
  EXPECT_EQ(em::Array<std::uint64_t>::kWordsPer, 1u);
  EXPECT_EQ(em::Array<graph::Edge>::kWordsPer, 1u);          // paper: 1 word/edge
  EXPECT_EQ(em::Array<graph::ColoredEdge>::kWordsPer, 2u);
  EXPECT_EQ(em::Array<ThreeWordRec>::kWordsPer, 3u);
  EXPECT_EQ(em::Array<std::uint32_t>::kWordsPer, 1u);
}

TEST(Array, MultiWordRoundTrip) {
  em::Context ctx = test::MakeContext();
  em::Array<ThreeWordRec> a = ctx.Alloc<ThreeWordRec>(100);
  for (std::size_t i = 0; i < 100; ++i) {
    a.Set(i, ThreeWordRec{i, i * 2, i * 3});
  }
  for (std::size_t i = 0; i < 100; ++i) {
    ThreeWordRec r = a.Get(i);
    ASSERT_EQ(r.a, i);
    ASSERT_EQ(r.b, i * 2);
    ASSERT_EQ(r.c, i * 3);
  }
}

TEST(Array, SliceSharesStorage) {
  em::Context ctx = test::MakeContext();
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(100);
  for (std::size_t i = 0; i < 100; ++i) a.Set(i, i);
  em::Array<std::uint64_t> s = a.Slice(10, 20);
  EXPECT_EQ(s.size(), 20u);
  EXPECT_EQ(s.Get(0), 10u);
  s.Set(0, 999);
  EXPECT_EQ(a.Get(10), 999u);
}

TEST(Array, BulkReadWriteMatchesElementwise) {
  em::Context ctx = test::MakeContext();
  em::Array<graph::Edge> a = ctx.Alloc<graph::Edge>(64);
  std::vector<graph::Edge> host(64);
  for (std::size_t i = 0; i < 64; ++i) {
    host[i] = graph::Edge{static_cast<graph::VertexId>(i),
                          static_cast<graph::VertexId>(i + 1)};
  }
  a.WriteFrom(0, 64, host.data());
  std::vector<graph::Edge> back(64);
  a.ReadTo(0, 64, back.data());
  EXPECT_EQ(host, back);
}

TEST(Scanner, IteratesInOrder) {
  em::Context ctx = test::MakeContext();
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(10);
  for (std::size_t i = 0; i < 10; ++i) a.Set(i, i * 7);
  em::Scanner<std::uint64_t> s(a);
  std::uint64_t expected = 0;
  while (s.HasNext()) {
    EXPECT_EQ(s.Peek(), expected * 7);
    EXPECT_EQ(s.Next(), expected * 7);
    ++expected;
  }
  EXPECT_EQ(expected, 10u);
}

TEST(Scanner, SubrangeConstructor) {
  em::Context ctx = test::MakeContext();
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(10);
  for (std::size_t i = 0; i < 10; ++i) a.Set(i, i);
  em::Scanner<std::uint64_t> s(a, 3, 7);
  EXPECT_EQ(s.remaining(), 4u);
  EXPECT_EQ(s.Next(), 3u);
  s.Skip();
  EXPECT_EQ(s.Next(), 5u);
}

TEST(Writer, TracksCountAndWrittenView) {
  em::Context ctx = test::MakeContext();
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(10);
  em::Writer<std::uint64_t> w(a);
  w.Push(11);
  w.Push(22);
  EXPECT_EQ(w.count(), 2u);
  em::Array<std::uint64_t> v = w.Written();
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.Get(1), 22u);
}

TEST(Array, CloneCopiesContents) {
  em::Context ctx = test::MakeContext();
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(16);
  for (std::size_t i = 0; i < 16; ++i) a.Set(i, i + 100);
  em::Array<std::uint64_t> b = em::CloneArray(ctx, a);
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(b.Get(i), i + 100);
  EXPECT_NE(a.base(), b.base());
}

TEST(Array, OutOfBoundsAborts) {
  em::Context ctx = test::MakeContext();
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(4);
  EXPECT_DEATH((void)a.Get(4), "CHECK");
  EXPECT_DEATH(a.Set(5, 1), "CHECK");
  EXPECT_DEATH((void)a.Slice(2, 3), "CHECK");
}

}  // namespace
}  // namespace trienum
