// The par subsystem's determinism contract, adversarially pinned.
//
// Three layers:
//   * pool unit tests — stable range splitting, grain edge cases, empty
//     ranges, ordered reduction, nested fan-out rejection, ScopedThreads;
//   * SortRun differentials — the parallel radix (histogram + scatter per
//     stable partition) against std::stable_sort at threads in {1, 2, 7},
//     down every record-width path;
//   * the full algorithm matrix — threads in {1, 2, 7} x both storage
//     backends x both scan modes, asserting byte-identical triangle output
//     (same triangles IN THE SAME ORDER), identical IoStats, and identical
//     host work counters against the threads=1 run.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/clique4.h"
#include "em/array.h"
#include "extsort/ext_merge_sort.h"
#include "par/par_config.h"
#include "par/partition.h"
#include "par/thread_pool.h"
#include "test_util.h"

namespace trienum {
namespace {

using par::ParallelFor;
using par::ParallelReduce;
using par::PartRange;
using par::PartsFor;
using par::Range;
using par::ScopedThreads;
using par::SplitRange;
using par::SplitWeighted;

// ---------------------------------------------------------------------------
// partition.h: stable splitting.

TEST(Partition, SplitRangeCoversContiguouslyWithBalancedSizes) {
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                        std::size_t{64}, std::size_t{1000}, std::size_t{1001}}) {
    for (std::size_t parts = 1; parts <= 9; ++parts) {
      std::vector<Range> rs = SplitRange(n, parts);
      ASSERT_EQ(rs.size(), parts);
      std::size_t expect_lo = 0;
      std::size_t min_sz = n, max_sz = 0;
      for (const Range& r : rs) {
        EXPECT_EQ(r.lo, expect_lo);
        expect_lo = r.hi;
        min_sz = std::min(min_sz, r.size());
        max_sz = std::max(max_sz, r.size());
      }
      EXPECT_EQ(expect_lo, n);
      EXPECT_LE(max_sz - min_sz, 1u) << "n=" << n << " parts=" << parts;
    }
  }
}

TEST(Partition, SplitRangeEmpty) {
  EXPECT_TRUE(SplitRange(0, 4).empty());
  EXPECT_TRUE(SplitRange(10, 0).empty());
}

TEST(Partition, PartsForGrainControl) {
  EXPECT_EQ(PartsFor(0, 8, 100), 0u);      // empty range: nothing to do
  EXPECT_EQ(PartsFor(1000, 1, 1), 1u);     // one thread: always serial
  EXPECT_EQ(PartsFor(99, 8, 100), 1u);     // under one grain: serial
  EXPECT_EQ(PartsFor(200, 8, 100), 2u);    // two grains: two parts
  EXPECT_EQ(PartsFor(100000, 4, 100), 4u); // capped by threads
  EXPECT_EQ(PartsFor(100, 8, 0), 8u);      // grain 0 treated as 1
}

TEST(Partition, SplitWeightedCoversAndBalances) {
  // Skewed weights: one heavy item among many light ones.
  std::vector<std::uint64_t> w(100, 1);
  w[17] = 500;
  for (std::size_t parts : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    std::vector<Range> rs = SplitWeighted(w, parts);
    ASSERT_FALSE(rs.empty());
    EXPECT_LE(rs.size(), parts);
    std::size_t expect_lo = 0;
    for (const Range& r : rs) {
      EXPECT_EQ(r.lo, expect_lo);
      EXPECT_GT(r.size(), 0u);
      expect_lo = r.hi;
    }
    EXPECT_EQ(expect_lo, w.size());
  }
  // All-zero weights collapse to one range.
  std::vector<Range> z = SplitWeighted(std::vector<std::uint64_t>(5, 0), 4);
  ASSERT_EQ(z.size(), 1u);
  EXPECT_EQ(z[0].lo, 0u);
  EXPECT_EQ(z[0].hi, 5u);
}

// ---------------------------------------------------------------------------
// par_config.h.

TEST(ParConfig, DefaultIsSerialAndScopedRestores) {
  EXPECT_EQ(par::Threads(), 1u);
  {
    ScopedThreads scope(7);
    EXPECT_EQ(par::Threads(), 7u);
    {
      ScopedThreads inner(2);
      EXPECT_EQ(par::Threads(), 2u);
    }
    EXPECT_EQ(par::Threads(), 7u);
  }
  EXPECT_EQ(par::Threads(), 1u);
}

TEST(ParConfig, ZeroMeansHardwareConcurrencyAndHugeClamps) {
  ScopedThreads save(1);
  par::SetThreads(0);
  EXPECT_EQ(par::Threads(), par::HardwareThreads());
  EXPECT_GE(par::Threads(), 1u);
  par::SetThreads(std::size_t{1} << 40);
  EXPECT_EQ(par::Threads(), par::kMaxThreads);
}

// ---------------------------------------------------------------------------
// thread_pool.h: ParallelFor / ParallelReduce.

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    ScopedThreads scope(threads);
    const std::size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    ParallelFor(n, 64, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPool, ParallelForEmptyRangeNeverInvokes) {
  ScopedThreads scope(4);
  bool called = false;
  ParallelFor(0, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForGrainKeepsSmallRangesInline) {
  ScopedThreads scope(8);
  // 99 items under grain 100: must run as ONE inline invocation on the
  // calling thread (no pool interaction, no split).
  int calls = 0;
  std::thread::id caller = std::this_thread::get_id();
  ParallelFor(99, 100, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 99u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForSingleItem) {
  ScopedThreads scope(4);
  int sum = 0;
  ParallelFor(1, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) sum += 1;
  });
  EXPECT_EQ(sum, 1);
}

TEST(ThreadPool, ParallelReduceIsOrderedAndDeterministic) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    ScopedThreads scope(threads);
    const std::size_t n = 5000;
    // Concatenation is order-sensitive: any out-of-order combine or lost
    // partition shows up immediately.
    std::vector<std::uint32_t> cat = ParallelReduce(
        n, 16, std::vector<std::uint32_t>{},
        [](std::size_t lo, std::size_t hi) {
          std::vector<std::uint32_t> part;
          for (std::size_t i = lo; i < hi; ++i) {
            part.push_back(static_cast<std::uint32_t>(i));
          }
          return part;
        },
        [](std::vector<std::uint32_t> acc, std::vector<std::uint32_t> part) {
          acc.insert(acc.end(), part.begin(), part.end());
          return acc;
        });
    ASSERT_EQ(cat.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(cat[i], i) << "threads " << threads;
    }
  }
}

TEST(ThreadPool, ParallelReduceEmptyReturnsInit) {
  ScopedThreads scope(4);
  const int out = ParallelReduce(
      0, 1, 42, [](std::size_t, std::size_t) { return 7; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(out, 42);
}

TEST(ThreadPoolDeathTest, NestedFanOutIsRejected) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ASSERT_DEATH(
      {
        par::SetThreads(4);
        ParallelFor(1000, 1, [&](std::size_t, std::size_t) {
          // A nested region that would fan out again must trip the check.
          ParallelFor(1000, 1, [](std::size_t, std::size_t) {});
        });
      },
      "nested ParallelFor");
}

TEST(ThreadPool, NestedSerialResolutionRunsInline) {
  // A nested call that resolves to a single partition (here: under one
  // grain) is allowed — that keeps grain-guarded helper loops composable.
  ScopedThreads scope(4);
  std::atomic<int> inner_calls{0};
  ParallelFor(8, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      ParallelFor(3, 100, [&](std::size_t l2, std::size_t h2) {
        inner_calls.fetch_add(static_cast<int>(h2 - l2));
      });
    }
  });
  EXPECT_EQ(inner_calls.load(), 8 * 3);
}

// ---------------------------------------------------------------------------
// SortRun: the parallel radix must be bit-identical to std::stable_sort.

struct StableRec {
  std::uint32_t k = 0;
  std::uint32_t tag = 0;  // makes stability observable
  friend bool operator==(const StableRec& a, const StableRec& b) {
    return a.k == b.k && a.tag == b.tag;
  }
};
struct StableRecLess {
  static constexpr bool kKeyComplete = true;
  static std::uint64_t Key(const StableRec& r) { return r.k; }
  bool operator()(const StableRec& a, const StableRec& b) const {
    return a.k < b.k;
  }
};

struct Wide32 {
  std::uint64_t key = 0;
  std::uint64_t x = 0, y = 0, z = 0;
  friend bool operator==(const Wide32& a, const Wide32& b) {
    return a.key == b.key && a.x == b.x && a.y == b.y && a.z == b.z;
  }
};
struct Wide32Less {
  static constexpr bool kKeyComplete = true;
  static std::uint64_t Key(const Wide32& r) { return r.key; }
  bool operator()(const Wide32& a, const Wide32& b) const {
    return a.key < b.key;
  }
};

template <typename T, typename Less, typename Gen>
void CheckSortRunAcrossThreads(std::size_t n, Less less, Gen gen) {
  std::vector<T> input(n);
  for (std::size_t i = 0; i < n; ++i) input[i] = gen(i);
  std::vector<T> expect = input;
  std::stable_sort(expect.begin(), expect.end(), less);
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    ScopedThreads scope(threads);
    std::vector<T> got = input;
    extsort::SortRun(got.data(), got.size(), less);
    ASSERT_EQ(got, expect) << "n=" << n << " threads=" << threads;
  }
}

TEST(SortRunParallel, DirectScatterPathMatchesStableSort) {
  SplitMix64 rng(0x9A17);
  // Duplicate-heavy keys with tags: exercises stability through the
  // per-partition scatter cursors.
  CheckSortRunAcrossThreads<StableRec>(
      std::size_t{1} << 16, StableRecLess{}, [&](std::size_t i) {
        return StableRec{static_cast<std::uint32_t>(rng.Next() % 97),
                         static_cast<std::uint32_t>(i)};
      });
}

TEST(SortRunParallel, WideRecordIndexPermutePathMatchesStableSort) {
  SplitMix64 rng(0x51DE);
  CheckSortRunAcrossThreads<Wide32>(
      (std::size_t{1} << 15) + 1237, Wide32Less{}, [&](std::size_t i) {
        return Wide32{rng.Next() % 513, i, i * 3, ~i};
      });
}

TEST(SortRunParallel, PresortedReversedAllEqualPatterns) {
  const std::size_t n = std::size_t{1} << 15;
  CheckSortRunAcrossThreads<StableRec>(
      n, StableRecLess{}, [&](std::size_t i) {
        return StableRec{static_cast<std::uint32_t>(i), 0};  // presorted
      });
  CheckSortRunAcrossThreads<StableRec>(
      n, StableRecLess{}, [&](std::size_t i) {
        return StableRec{static_cast<std::uint32_t>(n - i), 0};  // reversed
      });
  CheckSortRunAcrossThreads<StableRec>(
      n, StableRecLess{}, [&](std::size_t i) {
        return StableRec{7, static_cast<std::uint32_t>(i)};  // all equal
      });
}

TEST(SortRunParallel, BelowGrainLoadsStaySerialAndCorrect) {
  // Small loads never fan out (PartsFor returns 1) but must still sort.
  SplitMix64 rng(0x77);
  CheckSortRunAcrossThreads<StableRec>(
      500, StableRecLess{}, [&](std::size_t i) {
        return StableRec{static_cast<std::uint32_t>(rng.Next() % 17),
                         static_cast<std::uint32_t>(i)};
      });
}

// ---------------------------------------------------------------------------
// The algorithm matrix: threads x backend x scan mode, byte-identical runs.

struct MatrixRun {
  std::vector<graph::Triangle> triangles;  // in EMISSION order
  em::IoStats io;
  std::uint64_t work = 0;
};

MatrixRun RunMatrixCase(const std::string& algo,
                        const std::vector<graph::Edge>& raw,
                        std::size_t threads, em::StorageKind storage,
                        em::ScanMode mode) {
  ScopedThreads tscope(threads);
  em::ScopedScanMode mscope(mode);
  em::Context ctx = test::MakeContext(1 << 11, 32, 0x7001, storage);
  graph::EmGraph g = graph::BuildEmGraph(ctx, raw);
  ctx.cache().Reset();
  ctx.ResetWork();
  core::CollectingSink sink;
  const core::AlgorithmInfo* info = core::FindAlgorithm(algo);
  EXPECT_NE(info, nullptr) << algo;
  info->run(ctx, g, sink);
  ctx.cache().FlushAll();
  MatrixRun out;
  out.triangles = sink.triangles();
  out.io = ctx.cache().stats();
  out.work = ctx.work();
  return out;
}

TEST(ParallelInvariance, FullAlgorithmMatrixIsThreadCountInvariant) {
  // Every registered engine the parallel kernels feed into, over both
  // backends and both scan modes: threads in {2, 7} must reproduce the
  // threads=1 run byte-for-byte — same triangles in the same order, same
  // IoStats (reads, writes AND hits), same host work counter.
  const std::vector<graph::Edge> raw =
      graph::Rmat(9, 1200, 0.45, 0.22, 0.22, 31);
  const char* algos[] = {"mgt", "ps-cache-aware", "ps-cache-oblivious",
                         "ps-deterministic", "dementiev"};
  const em::StorageKind backends[] = {em::StorageKind::kMemory,
                                      em::StorageKind::kFile};
  const em::ScanMode modes[] = {em::ScanMode::kBuffered,
                                em::ScanMode::kElementwise};
  for (const char* algo : algos) {
    for (em::StorageKind storage : backends) {
      for (em::ScanMode mode : modes) {
        const MatrixRun base = RunMatrixCase(algo, raw, 1, storage, mode);
        ASSERT_FALSE(base.triangles.empty()) << algo;
        for (std::size_t threads : {std::size_t{2}, std::size_t{7}}) {
          const MatrixRun got = RunMatrixCase(algo, raw, threads, storage, mode);
          const std::string label =
              std::string(algo) + " threads=" + std::to_string(threads) +
              (storage == em::StorageKind::kFile ? " file" : " memory") +
              (mode == em::ScanMode::kElementwise ? " elementwise" : " buffered");
          ASSERT_EQ(got.triangles, base.triangles) << label;
          EXPECT_EQ(got.io.block_reads, base.io.block_reads) << label;
          EXPECT_EQ(got.io.block_writes, base.io.block_writes) << label;
          EXPECT_EQ(got.io.cache_hits, base.io.cache_hits) << label;
          EXPECT_EQ(got.work, base.work) << label;
        }
      }
    }
  }
}

TEST(ParallelInvariance, HighThreadCountOnDenseGraph) {
  // A dense core drives the Lemma 2 emit loop hard (large Gamma_v groups);
  // run it at a thread count far above the core count.
  const std::vector<graph::Edge> raw = graph::Clique(40);
  const MatrixRun base =
      RunMatrixCase("mgt", raw, 1, em::StorageKind::kMemory,
                    em::ScanMode::kBuffered);
  const MatrixRun got =
      RunMatrixCase("mgt", raw, 16, em::StorageKind::kMemory,
                    em::ScanMode::kBuffered);
  ASSERT_EQ(base.triangles.size(), 40u * 39u * 38u / 6u);
  EXPECT_EQ(got.triangles, base.triangles);
  EXPECT_EQ(got.io.block_reads, base.io.block_reads);
  EXPECT_EQ(got.io.block_writes, base.io.block_writes);
  EXPECT_EQ(got.io.cache_hits, base.io.cache_hits);
  EXPECT_EQ(got.work, base.work);
}

TEST(ParallelInvariance, Clique4EnumerationIsThreadCountInvariant) {
  // The 4-clique engine's refine loop also batches PairBits over the pool.
  const std::vector<graph::Edge> raw = graph::CliqueUnion(4, 9);
  auto run = [&](std::size_t threads) {
    ScopedThreads scope(threads);
    em::Context ctx = test::MakeContext(1 << 11, 32);
    graph::EmGraph g = graph::BuildEmGraph(ctx, raw);
    ctx.cache().Reset();
    core::CollectingCliqueSink sink;
    core::EnumerateFourCliques(ctx, g, sink);
    ctx.cache().FlushAll();
    return std::make_pair(sink.cliques(), ctx.cache().stats());
  };
  const auto [base_quads, base_io] = run(1);
  EXPECT_FALSE(base_quads.empty());
  for (std::size_t threads : {std::size_t{2}, std::size_t{7}}) {
    const auto [quads, io] = run(threads);
    EXPECT_EQ(quads, base_quads) << "threads " << threads;
    EXPECT_EQ(io.block_reads, base_io.block_reads) << "threads " << threads;
    EXPECT_EQ(io.block_writes, base_io.block_writes) << "threads " << threads;
    EXPECT_EQ(io.cache_hits, base_io.cache_hits) << "threads " << threads;
  }
}

TEST(ParallelInvariance, EngineSortFanOutKeepsOutputAndIoStatsIdentical) {
  // Operating point chosen so run formation actually fans out: M = 2^16
  // words gives 32768-record loads, 4x the parallel radix grain. The full
  // external sort at threads=7 must reproduce the threads=1 array AND the
  // threads=1 charge sequence.
  const std::size_t n = std::size_t{1} << 17;
  auto run = [&](std::size_t threads) {
    ScopedThreads scope(threads);
    em::Context ctx = test::MakeContext(1 << 16, 64, 0xE5);
    em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
    ctx.cache().set_counting(false);
    SplitMix64 rng(0xFEED);
    for (std::size_t i = 0; i < n; ++i) a.Set(i, rng.Next() % 5000);
    ctx.cache().set_counting(true);
    ctx.cache().Reset();
    extsort::ExternalMergeSort(ctx, a, std::less<std::uint64_t>{});
    ctx.cache().FlushAll();
    std::vector<std::uint64_t> out(n);
    a.ReadTo(0, n, out.data());
    return std::make_pair(out, ctx.cache().stats());
  };
  const auto [base, base_io] = run(1);
  ASSERT_TRUE(std::is_sorted(base.begin(), base.end()));
  const auto [got, got_io] = run(7);
  ASSERT_EQ(got, base);
  EXPECT_EQ(got_io.block_reads, base_io.block_reads);
  EXPECT_EQ(got_io.block_writes, base_io.block_writes);
  EXPECT_EQ(got_io.cache_hits, base_io.cache_hits);
  // Fan-out genuinely engaged: the pool had to spawn workers.
  EXPECT_GT(par::ThreadPool::Global().spawned_workers(), 0u);
}

TEST(ParallelInvariance, ObliviousRecursionLargeNodeBatchesFanOut) {
  // 20000 root edges: the recursion's top nodes exceed the hashing batch
  // (4096 records), so PairBits evaluation fans out over the pool.
  const std::vector<graph::Edge> raw =
      graph::Rmat(12, 20000, 0.45, 0.22, 0.22, 77);
  const MatrixRun base = RunMatrixCase("ps-cache-oblivious", raw, 1,
                                       em::StorageKind::kMemory,
                                       em::ScanMode::kBuffered);
  const MatrixRun got = RunMatrixCase("ps-cache-oblivious", raw, 7,
                                      em::StorageKind::kMemory,
                                      em::ScanMode::kBuffered);
  ASSERT_FALSE(base.triangles.empty());
  ASSERT_EQ(got.triangles, base.triangles);
  EXPECT_EQ(got.io.block_reads, base.io.block_reads);
  EXPECT_EQ(got.io.block_writes, base.io.block_writes);
  EXPECT_EQ(got.io.cache_hits, base.io.cache_hits);
  EXPECT_EQ(got.work, base.work);
}

TEST(ParallelInvariance, Lemma2EmitLoopFanOutOnDenseCore) {
  // K_150 under M = 2^15: resident pivot chunks of 4096 edges drive single
  // groups past the weighted-emit grain, so the cone loop's per-worker
  // buffers and partition-order flush are exercised for real. Emission
  // order must stay byte-identical.
  const std::vector<graph::Edge> raw = graph::Clique(150);
  auto run = [&](std::size_t threads) {
    ScopedThreads scope(threads);
    em::Context ctx = test::MakeContext(1 << 15, 64, 0x150);
    graph::EmGraph g = graph::BuildEmGraph(ctx, raw);
    ctx.cache().Reset();
    ctx.ResetWork();
    core::CollectingSink sink;
    core::FindAlgorithm("mgt")->run(ctx, g, sink);
    ctx.cache().FlushAll();
    MatrixRun out;
    out.triangles = sink.triangles();
    out.io = ctx.cache().stats();
    out.work = ctx.work();
    return out;
  };
  const MatrixRun base = run(1);
  ASSERT_EQ(base.triangles.size(), 150u * 149u * 148u / 6u);
  const MatrixRun got = run(7);
  ASSERT_EQ(got.triangles, base.triangles);
  EXPECT_EQ(got.io.block_reads, base.io.block_reads);
  EXPECT_EQ(got.io.block_writes, base.io.block_writes);
  EXPECT_EQ(got.io.cache_hits, base.io.cache_hits);
  EXPECT_EQ(got.work, base.work);
}

TEST(ParallelInvariance, PinnedIoRegressionsUnchangedUnderThreads) {
  // The repo's pinned end-to-end I/O numbers (test_io_bounds.cc) must not
  // move when the pool is active: re-measure one of them at threads=7.
  const std::vector<graph::Edge> raw =
      graph::Rmat(10, 8192, 0.45, 0.22, 0.22, 2014);
  const MatrixRun serial = RunMatrixCase("ps-cache-aware", raw, 1,
                                         em::StorageKind::kMemory,
                                         em::ScanMode::kBuffered);
  const MatrixRun par7 = RunMatrixCase("ps-cache-aware", raw, 7,
                                       em::StorageKind::kMemory,
                                       em::ScanMode::kBuffered);
  EXPECT_EQ(par7.io.block_reads, serial.io.block_reads);
  EXPECT_EQ(par7.io.block_writes, serial.io.block_writes);
  EXPECT_EQ(par7.triangles, serial.triangles);
}

}  // namespace
}  // namespace trienum
