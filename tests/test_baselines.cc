// Baseline-specific behaviour: Dementiev's wedge join, the edge iterator,
// the BNL join, and the algorithm registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/algorithms.h"
#include "core/bnl.h"
#include "core/dementiev.h"
#include "graph/host_graph.h"
#include "core/edge_iterator.h"
#include "test_util.h"

namespace trienum {
namespace {

using namespace trienum::graph;

TEST(Registry, AllEightPresentAndDistinct) {
  const auto& algos = core::AllAlgorithms();
  EXPECT_EQ(algos.size(), 8u);
  for (const auto& a : algos) {
    EXPECT_EQ(core::FindAlgorithm(a.name), &a);
    EXPECT_FALSE(a.description.empty());
  }
  EXPECT_EQ(core::FindAlgorithm("no-such-algo"), nullptr);
  // Exactly one algorithm never consults M/B besides the edge iterator.
  EXPECT_FALSE(core::FindAlgorithm("ps-cache-oblivious")->cache_aware);
  EXPECT_TRUE(core::FindAlgorithm("ps-cache-aware")->cache_aware);
  EXPECT_FALSE(core::FindAlgorithm("ps-deterministic")->randomized);
}

TEST(Dementiev, WedgeCountRespectsDegreeOrientation) {
  // On a star the low->high orientation generates zero wedges at the leaves
  // and C(n,2) at the hub... no: orientation points *into* the hub, so every
  // leaf has out-degree 1 (to the hub) and the hub out-degree 0 — zero
  // wedges, zero I/O blowup. This is the whole point of degree ordering.
  em::Context ctx = test::MakeContext();
  EmGraph g = BuildEmGraph(ctx, Star(64));
  ctx.ResetWork();
  core::CountingSink sink;
  core::EnumerateDementiev(ctx, g, sink);
  EXPECT_EQ(sink.count(), 0u);
  // Work must be near-linear: no quadratic wedge generation at the hub.
  EXPECT_LE(ctx.work(), 64u * 64u);
}

TEST(Dementiev, CliqueWedgeVolumeMatchesTheory) {
  // K_k under any total order: wedges = sum over vertices of C(outdeg, 2),
  // outdegs are 0..k-1 => total = C(k,3) * 3... exactly k(k-1)(k-2)/6 * ...
  // each triangle generates exactly one *closed* wedge plus open ones; we
  // simply check enumeration correctness and O(E^{3/2}) work.
  em::Context ctx = test::MakeContext();
  EmGraph g = BuildEmGraph(ctx, Clique(24));
  ctx.ResetWork();
  core::CountingSink sink;
  core::EnumerateDementiev(ctx, g, sink);
  EXPECT_EQ(sink.count(), 2024u);
  double e = static_cast<double>(g.num_edges());
  EXPECT_LE(static_cast<double>(ctx.work()), 40.0 * std::pow(e, 1.5));
}

TEST(Dementiev, IoHasWeakDependenceOnM) {
  // sort(E^{3/2}) barely improves with M (log base only) — the paper's §1.1
  // critique of the early algorithms.
  auto measure = [&](std::size_t m) {
    em::Context ctx = test::MakeContext(m, 16);
    EmGraph g = BuildEmGraph(ctx, Gnm(1 << 11, 1 << 13, 9));
    ctx.cache().Reset();
    core::CountingSink sink;
    core::EnumerateDementiev(ctx, g, sink);
    ctx.cache().FlushAll();
    return static_cast<double>(ctx.cache().stats().total_ios());
  };
  double small = measure(1 << 9);
  double big = measure(1 << 12);
  EXPECT_LT(small / big, 3.0) << "Dementiev should gain little from 8x memory";
}

TEST(EdgeIterator, TriangleFreeGraphStillPaysRandomAccesses) {
  // O(E + ...) term: even with zero triangles, ~E random accesses happen.
  em::Context ctx = test::MakeContext(1 << 8, 16);
  EmGraph g = BuildEmGraph(ctx, BipartiteRandom(256, 256, 1 << 12, 2));
  ctx.cache().Reset();
  core::CountingSink sink;
  core::EnumerateEdgeIterator(ctx, g, sink);
  ctx.cache().FlushAll();
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_GE(ctx.cache().stats().total_ios(), g.num_edges() / 16);
}

TEST(EdgeIterator, InsensitiveToM) {
  // The bound O(E + E^{3/2}/B) has no M at all: growing memory (beyond
  // trivial reuse) changes little once the graph exceeds it.
  auto measure = [&](std::size_t m) {
    em::Context ctx = test::MakeContext(m, 16);
    EmGraph g = BuildEmGraph(ctx, Gnm(1 << 12, 1 << 14, 9));
    ctx.cache().Reset();
    core::CountingSink sink;
    core::EnumerateEdgeIterator(ctx, g, sink);
    ctx.cache().FlushAll();
    return static_cast<double>(ctx.cache().stats().total_ios());
  };
  double small = measure(1 << 8);
  double big = measure(1 << 11);
  EXPECT_LT(small / big, 2.5);
}

TEST(Bnl, CandidateBufferFlushingIsExercised) {
  // Tiny memory forces many candidate flushes; correctness must hold.
  em::Context ctx = test::MakeContext(/*m=*/256, /*b=*/8);
  EmGraph g = BuildEmGraph(ctx, Gnm(50, 500, 7));
  core::CollectingSink sink;
  core::EnumerateBnl(ctx, g, sink);
  auto got = sink.triangles();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, core::ListTrianglesHost(DownloadEdges(g)));
}

TEST(Bnl, QuadraticInEOverM) {
  // BNL pays (E/M)^2-type costs: growing E by 2 at fixed M grows I/O by ~4+.
  auto measure = [&](std::size_t e) {
    em::Context ctx = test::MakeContext(1 << 9, 16);
    EmGraph g = BuildEmGraph(ctx, Gnm(e / 4, e, 9));
    ctx.cache().Reset();
    core::CountingSink sink;
    core::EnumerateBnl(ctx, g, sink);
    ctx.cache().FlushAll();
    return static_cast<double>(ctx.cache().stats().total_ios());
  };
  double g1 = measure(1 << 11);
  double g2 = measure(1 << 12);
  EXPECT_GT(g2 / g1, 3.0);
}

TEST(Baselines, WitnessEdgesExistForEveryEmission) {
  // Every emitted triple must be an actual triangle of the input graph
  // (witness semantics), across all algorithms on a skewed graph.
  auto raw = Rmat(9, 1200, 0.5, 0.2, 0.2, 77);
  em::Context ctx = test::MakeContext();
  EmGraph g = BuildEmGraph(ctx, raw);
  HostGraph host(DownloadEdges(g));
  for (const core::AlgorithmInfo& a : core::AllAlgorithms()) {
    core::CollectingSink sink;
    a.run(ctx, g, sink);
    for (const Triangle& t : sink.triangles()) {
      ASSERT_TRUE(host.HasEdge(t.a, t.b) && host.HasEdge(t.b, t.c) &&
                  host.HasEdge(t.a, t.c))
          << a.name << " emitted a non-triangle";
    }
  }
}

}  // namespace
}  // namespace trienum
