// Lemma 2 engine: triangles with pivot edge in E' subset E. Verifies the
// pivot-partition semantics (triangles found iff their pivot is in E'), the
// chunking invariance, the Hu-Tao-Chung full baseline, and the I/O model.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/mgt.h"
#include "core/pivot_enum.h"
#include "test_util.h"

namespace trienum {
namespace {

using namespace trienum::graph;

TEST(PivotEnum, PivotSubsetSelectsExactlyItsTriangles) {
  em::Context ctx = test::MakeContext();
  EmGraph g = BuildEmGraph(ctx, Gnm(50, 350, 19));
  auto all = core::ListTrianglesHost(DownloadEdges(g));

  // Split the edge list into halves; each triangle's pivot {b, c} lies in
  // exactly one half, so the two runs must partition the triangle set.
  std::size_t half = g.num_edges() / 2;
  em::Array<Edge> lo = g.edges.Slice(0, half);
  em::Array<Edge> hi = g.edges.Slice(half, g.num_edges() - half);

  core::CollectingSink s1, s2;
  core::PivotEnumerate<Edge>(ctx, g.edges, g.edges, lo, s1);
  core::PivotEnumerate<Edge>(ctx, g.edges, g.edges, hi, s2);

  std::vector<Triangle> merged = s1.triangles();
  merged.insert(merged.end(), s2.triangles().begin(), s2.triangles().end());
  std::sort(merged.begin(), merged.end());
  EXPECT_TRUE(test::NoDuplicates(merged));
  EXPECT_EQ(merged, all);
}

TEST(PivotEnum, ChunkSizeDoesNotChangeTheAnswer) {
  em::Context ctx = test::MakeContext();
  EmGraph g = BuildEmGraph(ctx, Gnm(60, 500, 23));
  auto all = core::ListTrianglesHost(DownloadEdges(g));
  for (double frac : {1.0 / 64, 1.0 / 16, 1.0 / 4}) {
    core::CollectingSink sink;
    core::PivotEnumOptions opts;
    opts.chunk_fraction = frac;
    core::PivotEnumerate<Edge>(ctx, g.edges, g.edges, g.edges, sink, opts);
    auto got = sink.triangles();
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, all) << "chunk fraction " << frac;
  }
}

TEST(PivotEnum, DisjointConeStreams) {
  // Tripartite graph: cone edges (A-B) and (A-C) live in disjoint arrays,
  // pivot edges (B-C) in a third — the exact structure of the cache-aware
  // algorithm's step 3.
  em::Context ctx = test::MakeContext();
  EmGraph g = BuildEmGraph(ctx, CompleteTripartite(4, 5, 6));
  auto all = core::ListTrianglesHost(DownloadEdges(g));
  ASSERT_EQ(all.size(), 4u * 5 * 6);

  // Partition the normalized edges by "which pair of parts" using degrees:
  // within the normalized graph the parts are still independent sets, so
  // classify endpoints via the original tripartite structure re-derived from
  // the edge pattern. Simplest robust route: collect all edges and classify
  // by adjacency to part-representatives is overkill here — instead run the
  // split through the pivot engine by filtering on explicit membership.
  std::vector<Edge> edges = DownloadEdges(g);
  // Recover parts: vertices adjacent to everything in two other groups; use
  // a 2-coloring-free approach: part id via triangle participation is
  // unnecessary — use the reference triangles to label parts.
  // Part of a vertex = its position pattern; derive from one triangle.
  // For this test we only need *some* consistent 3-way split of edges such
  // that each triangle has one edge in each class. Use: class of edge {u,v}
  // = (color(u) + color(v)) where color = part index.
  std::vector<int> part(g.num_vertices, -1);
  // Vertices of the same part are never adjacent: greedy 3-coloring works on
  // complete tripartite graphs by BFS from any triangle.
  const Triangle& t0 = all.front();
  part[t0.a] = 0;
  part[t0.b] = 1;
  part[t0.c] = 2;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Edge& e : edges) {
      if (part[e.u] >= 0 && part[e.v] < 0) {
        // Assign v the part not used by any of u's neighbours... for a
        // complete tripartite graph, u's part plus any one labeled common
        // neighbour pin it down; simple approach: defer until a labeled
        // triangle covers it.
      }
    }
    for (const Triangle& t : all) {
      int known = (part[t.a] >= 0) + (part[t.b] >= 0) + (part[t.c] >= 0);
      if (known == 2) {
        int used = 0;
        VertexId miss = 0;
        if (part[t.a] < 0) {
          miss = t.a;
          used = part[t.b] + part[t.c];
        } else if (part[t.b] < 0) {
          miss = t.b;
          used = part[t.a] + part[t.c];
        } else {
          miss = t.c;
          used = part[t.a] + part[t.b];
        }
        part[miss] = 3 - used;
        changed = true;
      }
    }
  }
  std::vector<Edge> ab, bc, ac;
  for (const Edge& e : edges) {
    int pu = part[e.u], pv = part[e.v];
    ASSERT_GE(pu, 0);
    ASSERT_GE(pv, 0);
    int key = pu + pv;  // 0+1=1, 1+2=3, 0+2=2
    if (key == 1) ab.push_back(e);
    if (key == 3) bc.push_back(e);
    if (key == 2) ac.push_back(e);
  }
  auto upload = [&](const std::vector<Edge>& v) {
    em::Array<Edge> arr = ctx.Alloc<Edge>(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) arr.Set(i, v[i]);
    return arr;
  };
  // Cone vertex is always the smallest id; its two edges lie in the two
  // classes touching it, the pivot in the third. Enumerate per (cone-part)
  // choice by running all three rotations and unioning.
  em::Array<Edge> eab = upload(ab), ebc = upload(bc), eac = upload(ac);
  core::CollectingSink sink;
  core::PivotEnumerate<Edge>(ctx, eab, eac, ebc, sink);  // cone in part 0/1 mix
  core::PivotEnumerate<Edge>(ctx, eab, ebc, eac, sink);
  core::PivotEnumerate<Edge>(ctx, eac, ebc, eab, sink);
  auto got = sink.triangles();
  std::sort(got.begin(), got.end());
  EXPECT_TRUE(test::NoDuplicates(got));
  EXPECT_EQ(got, all);
}

TEST(Mgt, MatchesReferenceOnDenseGraph) {
  em::Context ctx = test::MakeContext(512, 8);
  EmGraph g = BuildEmGraph(ctx, Gnm(40, 700, 3));
  core::CollectingSink sink;
  core::EnumerateMgt(ctx, g, sink);
  auto got = sink.triangles();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, core::ListTrianglesHost(DownloadEdges(g)));
}

TEST(Mgt, IoTracksESquaredOverMB) {
  // Doubling M should roughly halve MGT's I/Os (the paper's E^2/(MB)).
  const std::size_t e = 1 << 13;
  auto run = [&](std::size_t m) {
    em::Context ctx = test::MakeContext(m, 16);
    EmGraph g = BuildEmGraph(ctx, Gnm(1 << 11, e, 5));
    ctx.cache().Reset();
    core::CountingSink sink;
    core::EnumerateMgt(ctx, g, sink);
    ctx.cache().FlushAll();
    return static_cast<double>(ctx.cache().stats().total_ios());
  };
  double io_small = run(1 << 9);
  double io_big = run(1 << 11);
  double ratio = io_small / io_big;
  EXPECT_GT(ratio, 2.0) << "quadrupling M must cut MGT I/O by ~4x";
  EXPECT_LT(ratio, 8.0);
}

TEST(Mgt, MeasuredWithinModelBound) {
  const std::size_t m = 1 << 10, b = 16;
  em::Context ctx = test::MakeContext(m, b);
  EmGraph g = BuildEmGraph(ctx, Gnm(1 << 11, 1 << 13, 5));
  ctx.cache().Reset();
  core::CountingSink sink;
  core::EnumerateMgt(ctx, g, sink);
  ctx.cache().FlushAll();
  double measured = static_cast<double>(ctx.cache().stats().total_ios());
  EXPECT_LE(measured, 3.0 * core::MgtIoBound(g.num_edges(), m, b));
}

}  // namespace
}  // namespace trienum
