// Color-class statistics (the X_xi random variable of eq. (1)) and the
// empirical Lemma 3 bound E[X_xi] <= E*M.
#include <gtest/gtest.h>

#include "core/coloring.h"
#include "hashing/kwise.h"
#include "test_util.h"

namespace trienum {
namespace {

using namespace trienum::graph;

TEST(ColoringStats, HandComputedTinyExample) {
  // Edges: (0,1) (0,2) (2,3) under coloring {0,1 -> color 0; 2,3 -> color 1}.
  // Classes: (0,1)->(0,0); (0,2)->(0,1); (2,3)->(1,1): all singletons =>
  // X_total = 0.
  em::Context ctx = test::MakeContext();
  em::Array<Edge> edges = ctx.Alloc<Edge>(3);
  edges.Set(0, Edge{0, 1});
  edges.Set(1, Edge{0, 2});
  edges.Set(2, Edge{2, 3});
  auto color = [](VertexId v) { return v < 2 ? 0u : 1u; };
  core::ColoringStats s = core::ComputeColoringStats(ctx, edges, color, 2);
  EXPECT_DOUBLE_EQ(s.x_total, 0.0);
  EXPECT_DOUBLE_EQ(s.x_adj, 0.0);
  EXPECT_EQ(s.nonempty_classes, 3u);
}

TEST(ColoringStats, SingleColorIsAllPairs) {
  // With one color, X_total = C(E, 2) and X_adj = sum_v C(deg v, 2).
  em::Context ctx = test::MakeContext();
  auto raw = Clique(6);  // 15 edges; every vertex degree 5
  EmGraph g = BuildEmGraph(ctx, raw);
  auto color = [](VertexId) { return 0u; };
  core::ColoringStats s = core::ComputeColoringStats(ctx, g.edges, color, 1);
  EXPECT_DOUBLE_EQ(s.x_total, 105.0);        // C(15,2)
  EXPECT_DOUBLE_EQ(s.x_adj, 6.0 * 10.0);     // 6 vertices * C(5,2)
  EXPECT_DOUBLE_EQ(s.x_nonadj, 105.0 - 60.0);
}

TEST(ColoringStats, AdjacentPairsOnAStar) {
  // Star: all edges share the hub; same class iff leaf colors equal.
  em::Context ctx = test::MakeContext();
  EmGraph g = BuildEmGraph(ctx, Star(10));
  // Hub is the max id (degree order); color leaves alternately.
  VertexId hub = g.num_vertices - 1;
  auto color = [hub](VertexId v) { return v == hub ? 0u : v % 2; };
  core::ColoringStats s = core::ComputeColoringStats(ctx, g.edges, color, 2);
  // Classes (leafcolor, hubcolor=0 as larger endpoint... hub has max id so
  // edges are (leaf, hub)): class key = (color(leaf), 0): two classes of 5.
  EXPECT_DOUBLE_EQ(s.x_total, 2 * 10.0);  // 2 * C(5,2)
  EXPECT_DOUBLE_EQ(s.x_adj, s.x_total);   // all pairs share the hub
}

TEST(ColoringStats, Lemma3HoldsOnAverage) {
  // E[X_xi] <= E*M for the 4-wise coloring with c = sqrt(E/M): average over
  // seeds must come in under the bound (with slack for variance).
  const std::size_t m_words = 1 << 8;
  em::Context ctx = test::MakeContext(m_words, 16);
  EmGraph g = BuildEmGraph(ctx, Gnm(500, 4096, 2));
  std::uint32_t c = 1;
  while (static_cast<std::uint64_t>(c) * c * m_words < g.num_edges()) c <<= 1;

  double sum = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    hashing::FourWiseHash h(1000 + t);
    std::uint32_t cc = c;
    core::ColoringStats s = core::ComputeColoringStats(
        ctx, g.edges, [h, cc](VertexId v) { return h.Color(v, cc); }, c);
    sum += s.x_total;
  }
  EXPECT_LT(sum / trials, 1.5 * core::Lemma3Bound(g.num_edges(), m_words));
}

TEST(ColoringStats, MoreColorsShrinkX) {
  em::Context ctx = test::MakeContext();
  EmGraph g = BuildEmGraph(ctx, Gnm(400, 3000, 6));
  hashing::FourWiseHash h(9);
  double prev = -1;
  for (std::uint32_t c : {1u, 2u, 4u, 8u, 16u}) {
    core::ColoringStats s = core::ComputeColoringStats(
        ctx, g.edges, [h, c](VertexId v) { return h.Color(v, c); }, c);
    if (prev >= 0) {
      EXPECT_LT(s.x_total, prev) << "c = " << c;
    }
    prev = s.x_total;
  }
}

TEST(ColoringStats, EmptyEdgeSet) {
  em::Context ctx = test::MakeContext();
  em::Array<Edge> edges = ctx.Alloc<Edge>(0);
  core::ColoringStats s =
      core::ComputeColoringStats(ctx, edges, [](VertexId) { return 0u; }, 1);
  EXPECT_DOUBLE_EQ(s.x_total, 0.0);
  EXPECT_EQ(s.nonempty_classes, 0u);
}

}  // namespace
}  // namespace trienum
