// Cache-aware external merge sort: correctness over input patterns and
// sizes (parameterized), plus the sort(n) I/O envelope.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "common/rng.h"
#include "extsort/ext_merge_sort.h"
#include "extsort/scan_ops.h"
#include "test_util.h"

namespace trienum {
namespace {

enum class Pattern { kRandom, kSorted, kReversed, kConstant, kFewDistinct };

struct SortParam {
  std::size_t n;
  Pattern pattern;
  std::size_t m_words;
};

std::vector<std::uint64_t> MakeInput(std::size_t n, Pattern p) {
  std::vector<std::uint64_t> v(n);
  SplitMix64 rng(99);
  for (std::size_t i = 0; i < n; ++i) {
    switch (p) {
      case Pattern::kRandom: v[i] = rng.Next(); break;
      case Pattern::kSorted: v[i] = i; break;
      case Pattern::kReversed: v[i] = n - i; break;
      case Pattern::kConstant: v[i] = 7; break;
      case Pattern::kFewDistinct: v[i] = rng.Next() % 5; break;
    }
  }
  return v;
}

class ExtSortTest : public ::testing::TestWithParam<SortParam> {};

TEST_P(ExtSortTest, SortsToExactMultisetOrder) {
  const SortParam& p = GetParam();
  em::Context ctx = test::MakeContext(p.m_words, 16);
  std::vector<std::uint64_t> host = MakeInput(p.n, p.pattern);
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(p.n);
  for (std::size_t i = 0; i < p.n; ++i) a.Set(i, host[i]);

  extsort::ExternalMergeSort(ctx, a, std::less<std::uint64_t>{});

  std::sort(host.begin(), host.end());
  for (std::size_t i = 0; i < p.n; ++i) {
    ASSERT_EQ(a.Get(i), host[i]) << "at index " << i;
  }
}

std::vector<SortParam> SortParams() {
  std::vector<SortParam> out;
  for (std::size_t n : {0ul, 1ul, 2ul, 17ul, 256ul, 1000ul, 5000ul, 40000ul}) {
    for (Pattern p : {Pattern::kRandom, Pattern::kSorted, Pattern::kReversed,
                      Pattern::kConstant, Pattern::kFewDistinct}) {
      for (std::size_t m : {256ul, 4096ul}) {
        out.push_back(SortParam{n, p, m});
      }
    }
  }
  return out;
}

std::string SortName(const ::testing::TestParamInfo<SortParam>& info) {
  static const char* names[] = {"random", "sorted", "reversed", "constant",
                                "fewdistinct"};
  // Built up with += (rather than one operator+ chain) to sidestep a GCC 12
  // -Wrestrict false positive in inlined std::string concatenation (PR105329).
  std::string out = "n";
  out += std::to_string(info.param.n);
  out += "_";
  out += names[static_cast<int>(info.param.pattern)];
  out += "_M";
  out += std::to_string(info.param.m_words);
  return out;
}

INSTANTIATE_TEST_SUITE_P(Patterns, ExtSortTest, ::testing::ValuesIn(SortParams()),
                         SortName);

TEST(ExtSort, CustomComparatorAndStructRecords) {
  em::Context ctx = test::MakeContext();
  em::Array<graph::Edge> a = ctx.Alloc<graph::Edge>(1000);
  SplitMix64 rng(3);
  for (std::size_t i = 0; i < 1000; ++i) {
    a.Set(i, graph::Edge{static_cast<graph::VertexId>(rng.Below(50)),
                         static_cast<graph::VertexId>(rng.Below(50))});
  }
  extsort::ExternalMergeSort(ctx, a, graph::ByMaxLess{});
  EXPECT_TRUE(extsort::IsSorted(a, graph::ByMaxLess{}));
}

TEST(ExtSort, IoWithinSortBound) {
  const std::size_t n = 1 << 15;
  const std::size_t m = 1 << 10, b = 16;
  em::Context ctx = test::MakeContext(m, b);
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
  SplitMix64 rng(5);
  ctx.cache().set_counting(false);
  for (std::size_t i = 0; i < n; ++i) a.Set(i, rng.Next());
  ctx.cache().set_counting(true);
  ctx.cache().Reset();

  extsort::ExternalMergeSort(ctx, a, std::less<std::uint64_t>{});
  ctx.cache().FlushAll();

  double bound = extsort::SortIoBound(n, 1, m, b);
  double measured = static_cast<double>(ctx.cache().stats().total_ios());
  EXPECT_LE(measured, 3.0 * bound) << "sort I/O far above the sort(n) model";
  EXPECT_GE(measured, 2.0 * n / b) << "a real multi-pass sort reads+writes n";
}

TEST(ExtSort, TightMemoryManyPasses) {
  // M barely above B^2 forces several merge passes; correctness must hold.
  const std::size_t n = 20000;
  em::Context ctx = test::MakeContext(/*m=*/128, /*b=*/8);
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(n);
  SplitMix64 rng(17);
  std::vector<std::uint64_t> host(n);
  for (std::size_t i = 0; i < n; ++i) {
    host[i] = rng.Next() % 1000;
    a.Set(i, host[i]);
  }
  extsort::ExternalMergeSort(ctx, a, std::less<std::uint64_t>{});
  std::sort(host.begin(), host.end());
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(a.Get(i), host[i]);
}

}  // namespace
}  // namespace trienum
