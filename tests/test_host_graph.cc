// HostGraph adjacency structure and the host reference enumerator.
#include <gtest/gtest.h>

#include "core/reference.h"
#include "graph/host_graph.h"
#include "test_util.h"

namespace trienum {
namespace {

using namespace trienum::graph;

TEST(HostGraph, BuildsCanonicalForm) {
  HostGraph g({Edge{5, 2}, Edge{2, 5}, Edge{2, 2}, Edge{7, 5}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_TRUE(g.HasEdge(2, 5));
  EXPECT_TRUE(g.HasEdge(5, 2));
  EXPECT_TRUE(g.HasEdge(5, 7));
  EXPECT_FALSE(g.HasEdge(2, 7));
  EXPECT_FALSE(g.HasEdge(2, 2));
  EXPECT_FALSE(g.HasEdge(1, 99));
}

TEST(HostGraph, DegreesAndForwardLists) {
  HostGraph g({Edge{0, 1}, Edge{0, 2}, Edge{0, 3}, Edge{1, 2}});
  EXPECT_EQ(g.Degree(0), 3u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(3), 1u);
  EXPECT_EQ(g.Degree(42), 0u);
  EXPECT_EQ(g.Forward(0), (std::vector<VertexId>{1, 2, 3}));
  EXPECT_EQ(g.Forward(3), std::vector<VertexId>{});
}

TEST(Reference, KnownCounts) {
  EXPECT_EQ(core::CountTrianglesHost(Clique(4)), 4u);
  EXPECT_EQ(core::CountTrianglesHost(Clique(10)), 120u);
  EXPECT_EQ(core::CountTrianglesHost(CompleteTripartite(2, 2, 2)), 8u);
  // Petersen graph: famously triangle-free.
  std::vector<Edge> petersen = {
      Edge{0, 1}, Edge{1, 2}, Edge{2, 3}, Edge{3, 4}, Edge{0, 4},   // outer C5
      Edge{5, 7}, Edge{7, 9}, Edge{9, 6}, Edge{6, 8}, Edge{8, 5},   // pentagram
      Edge{0, 5}, Edge{1, 6}, Edge{2, 7}, Edge{3, 8}, Edge{4, 9}};  // spokes
  EXPECT_EQ(core::CountTrianglesHost(petersen), 0u);
}

TEST(Reference, ListMatchesCountAndIsSortedUnique) {
  auto edges = Gnm(100, 600, 13);
  auto tris = core::ListTrianglesHost(edges);
  EXPECT_EQ(tris.size(), core::CountTrianglesHost(edges));
  EXPECT_TRUE(test::NoDuplicates(tris));
  for (const Triangle& t : tris) {
    EXPECT_LT(t.a, t.b);
    EXPECT_LT(t.b, t.c);
    HostGraph g(edges);
    EXPECT_TRUE(g.HasEdge(t.a, t.b));
    EXPECT_TRUE(g.HasEdge(t.b, t.c));
    EXPECT_TRUE(g.HasEdge(t.a, t.c));
  }
}

TEST(Reference, HandlesUnnormalizedInput) {
  // Duplicates, reversed orientation and self-loops must not distort counts.
  std::vector<Edge> messy = {Edge{2, 1}, Edge{1, 2}, Edge{2, 3}, Edge{3, 1},
                             Edge{1, 1}, Edge{3, 2}};
  EXPECT_EQ(core::CountTrianglesHost(messy), 1u);
}

}  // namespace
}  // namespace trienum
