// Theorem 3: the lower bound formulas, their witnesses, and the empirical
// fact that no implemented algorithm beats the bound (sanity of both the
// bound and the I/O accounting).
#include <gtest/gtest.h>

#include <cmath>

#include "core/algorithms.h"
#include "core/lower_bound.h"
#include "test_util.h"

namespace trienum {
namespace {

using namespace trienum::graph;

TEST(LowerBound, CliqueTriangleCounts) {
  EXPECT_EQ(core::CliqueTriangles(2), 0u);
  EXPECT_EQ(core::CliqueTriangles(3), 1u);
  EXPECT_EQ(core::CliqueTriangles(10), 120u);
  EXPECT_EQ(core::CliqueTriangles(64), 41664u);
}

TEST(LowerBound, KruskalKatonaTightOnCliques) {
  // K_k has C(k,2) edges and C(k,3) triangles; the bound (2m)^{3/2}/6 must
  // dominate and be asymptotically tight.
  for (std::uint64_t k : {10ull, 50ull, 200ull}) {
    double m = static_cast<double>(k * (k - 1) / 2);
    double t = static_cast<double>(core::CliqueTriangles(k));
    double bound = core::MaxTrianglesWithEdges(m);
    EXPECT_GE(bound, t);
    EXPECT_LE(bound, t * 1.4) << "bound should be near-tight on cliques, k=" << k;
  }
}

TEST(LowerBound, FormulaMonotonicity) {
  EXPECT_GT(core::IoLowerBound(2000000, 1 << 10, 16),
            core::IoLowerBound(1000000, 1 << 10, 16));
  EXPECT_GT(core::IoLowerBound(1000000, 1 << 8, 16),
            core::IoLowerBound(1000000, 1 << 12, 16));
  EXPECT_GT(core::IoLowerBound(1000000, 1 << 10, 8),
            core::IoLowerBound(1000000, 1 << 10, 64));
}

TEST(LowerBound, EdgeReadingTermDominatesForSmallT) {
  // With few triangles, the t^{2/3}/B term governs.
  std::size_t m = 1 << 20, b = 16;
  double lb = core::IoLowerBound(1000, m, b);
  EXPECT_NEAR(lb, std::pow(1000.0, 2.0 / 3.0) / b, lb * 0.5);
}

TEST(LowerBound, NoAlgorithmBeatsTheEpochBound) {
  // On K_48 (t = 17296 = Theta(E^{3/2})) with small memory, every
  // algorithm's measured I/Os must exceed the constant-explicit epoch bound.
  const std::size_t m = 1 << 8, b = 16;
  auto raw = Clique(48);
  const std::uint64_t t = core::CliqueTriangles(48);
  for (const core::AlgorithmInfo& a : core::AllAlgorithms()) {
    em::Context ctx = test::MakeContext(m, b);
    EmGraph g = BuildEmGraph(ctx, raw);
    ctx.cache().Reset();
    core::CountingSink sink;
    a.run(ctx, g, sink);
    ctx.cache().FlushAll();
    ASSERT_EQ(sink.count(), t) << a.name;
    double measured = static_cast<double>(ctx.cache().stats().total_ios());
    EXPECT_GE(measured, core::IoLowerBoundEpoch(t, m, b)) << a.name;
  }
}

TEST(LowerBound, OptimalityGapIsBoundedOnCliques) {
  // The paper's algorithms are optimal up to constants: the measured I/Os on
  // the lower-bound witness family must stay within a constant multiple of
  // the asymptotic bound t/(sqrt(M)B).
  const std::size_t m = 1 << 9, b = 16;
  auto raw = Clique(64);
  const std::uint64_t t = core::CliqueTriangles(64);
  for (const char* name : {"ps-cache-aware", "ps-cache-oblivious"}) {
    em::Context ctx = test::MakeContext(m, b);
    EmGraph g = BuildEmGraph(ctx, raw);
    ctx.cache().Reset();
    core::CountingSink sink;
    core::FindAlgorithm(name)->run(ctx, g, sink);
    ctx.cache().FlushAll();
    ASSERT_EQ(sink.count(), t);
    double measured = static_cast<double>(ctx.cache().stats().total_ios());
    double lb = core::IoLowerBound(t, m, b);
    EXPECT_LE(measured, 400.0 * lb) << name;
    EXPECT_GE(measured, lb) << name;
  }
}

}  // namespace
}  // namespace trienum
