// §6 extension: 4-clique enumeration via color coding.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/clique4.h"
#include "test_util.h"

namespace trienum {
namespace {

using namespace trienum::graph;

std::uint64_t RunCount4(const std::vector<Edge>& raw, std::size_t m = 1 << 12,
                        std::size_t b = 16, std::uint64_t seed = 0x41) {
  em::Context ctx = test::MakeContext(m, b, seed);
  EmGraph g = BuildEmGraph(ctx, raw);
  core::CountingCliqueSink sink;
  core::EnumerateFourCliques(ctx, g, sink);
  return sink.count();
}

TEST(Clique4Host, KnownCounts) {
  EXPECT_EQ(core::CountFourCliquesHost(Clique(4)), 1u);
  EXPECT_EQ(core::CountFourCliquesHost(Clique(6)), 15u);   // C(6,4)
  EXPECT_EQ(core::CountFourCliquesHost(Clique(10)), 210u); // C(10,4)
  EXPECT_EQ(core::CountFourCliquesHost(CompleteTripartite(4, 4, 4)), 0u);
  EXPECT_EQ(core::CountFourCliquesHost(Star(30)), 0u);
  EXPECT_EQ(core::CountFourCliquesHost(CliqueUnion(3, 5)), 15u);  // 3*C(5,4)
}

TEST(Clique4, MatchesHostReferenceOnMenagerie) {
  for (const test::GraphCase& gc : test::StandardGraphCases()) {
    EXPECT_EQ(RunCount4(gc.edges), core::CountFourCliquesHost(gc.edges))
        << gc.name;
  }
}

TEST(Clique4, TightMemoryForcesRecursiveRefinement) {
  // With M tiny relative to E, color 4-tuples overflow and the refinement
  // path is exercised.
  auto raw = Gnm(60, 900, 21);
  EXPECT_EQ(RunCount4(raw, /*m=*/256, /*b=*/8),
            core::CountFourCliquesHost(raw));
}

TEST(Clique4, HighDegreePathHandlesDenseCore) {
  // K_32 + periphery: the clique vertices are all high-degree, so step 1
  // (triangles of E'_x) does the bulk of the work, including cliques with
  // 1-4 high-degree members.
  auto raw = CliquePlusPath(32, 100);
  auto extra = Gnm(132, 400, 5);
  raw.insert(raw.end(), extra.begin(), extra.end());
  EXPECT_EQ(RunCount4(raw, 1 << 10, 16), core::CountFourCliquesHost(raw));
}

TEST(Clique4, ExactlyOnce) {
  auto raw = Gnm(40, 500, 33);
  em::Context ctx = test::MakeContext();
  EmGraph g = BuildEmGraph(ctx, raw);
  core::CollectingCliqueSink sink;
  core::EnumerateFourCliques(ctx, g, sink);
  auto cliques = sink.cliques();
  for (const auto& q : cliques) {
    EXPECT_TRUE(q[0] < q[1] && q[1] < q[2] && q[2] < q[3]);
  }
  std::set<std::array<VertexId, 4>> uniq(cliques.begin(), cliques.end());
  EXPECT_EQ(uniq.size(), cliques.size()) << "duplicate 4-clique emitted";
  EXPECT_EQ(cliques.size(), core::CountFourCliquesHost(raw));
}

TEST(Clique4, SeedsAgree) {
  auto raw = Gnm(80, 1200, 44);
  std::uint64_t expected = core::CountFourCliquesHost(raw);
  for (std::uint64_t seed : {1ull, 9ull, 123ull}) {
    EXPECT_EQ(RunCount4(raw, 1 << 12, 16, seed), expected) << seed;
  }
}

TEST(Clique4, IoScalesQuadraticallyInE) {
  // §6 bound E^2/(MB): growing E 2x at fixed M should grow I/O ~4x
  // (like MGT, one power of E above the triangle bound).
  const std::size_t m = 1 << 9, b = 16;
  auto measure = [&](std::size_t e) {
    em::Context ctx = test::MakeContext(m, b);
    EmGraph g = BuildEmGraph(ctx, Gnm(static_cast<VertexId>(e / 4), e, 7));
    ctx.cache().Reset();
    core::CountingCliqueSink sink;
    core::EnumerateFourCliques(ctx, g, sink);
    ctx.cache().FlushAll();
    return static_cast<double>(ctx.cache().stats().total_ios());
  };
  double g1 = measure(1 << 12);
  double g2 = measure(1 << 13);
  EXPECT_GT(g2 / g1, 2.0);
  EXPECT_LT(g2 / g1, 8.0);
}

}  // namespace
}  // namespace trienum
