// Graph generators: exact structural invariants (edge counts, simplicity,
// known triangle counts) and determinism in the seed.
#include <gtest/gtest.h>

#include <set>

#include "core/reference.h"
#include "graph/generators.h"
#include "test_util.h"

namespace trienum {
namespace {

using namespace trienum::graph;

bool IsSimple(const std::vector<Edge>& edges) {
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : edges) {
    if (e.u == e.v) return false;
    auto key = std::minmax(e.u, e.v);
    if (!seen.insert(key).second) return false;
  }
  return true;
}

TEST(Gnm, ExactEdgeCountSimpleAndSeeded) {
  auto g1 = Gnm(100, 500, 7);
  auto g2 = Gnm(100, 500, 7);
  auto g3 = Gnm(100, 500, 8);
  EXPECT_EQ(g1.size(), 500u);
  EXPECT_TRUE(IsSimple(g1));
  EXPECT_EQ(g1, g2);
  EXPECT_NE(g1, g3);
  for (const Edge& e : g1) {
    EXPECT_LT(e.u, 100u);
    EXPECT_LT(e.v, 100u);
  }
}

TEST(Gnm, CompleteGraphRequest) {
  auto g = Gnm(10, 45, 3);  // all C(10,2) edges
  EXPECT_EQ(g.size(), 45u);
  EXPECT_TRUE(IsSimple(g));
}

TEST(Clique, CountsAndTriangles) {
  auto k6 = Clique(6);
  EXPECT_EQ(k6.size(), 15u);
  EXPECT_TRUE(IsSimple(k6));
  EXPECT_EQ(core::CountTrianglesHost(k6), 20u);  // C(6,3)
}

TEST(CliquePlusPath, Shape) {
  auto g = CliquePlusPath(5, 10);
  EXPECT_EQ(g.size(), 10u + 10u);  // C(5,2) + 10
  EXPECT_TRUE(IsSimple(g));
  EXPECT_EQ(core::CountTrianglesHost(g), 10u);  // only the clique's C(5,3)
}

TEST(CompleteTripartite, TriangleCountIsProduct) {
  auto g = CompleteTripartite(3, 4, 5);
  EXPECT_EQ(g.size(), 3u * 4 + 4u * 5 + 3u * 5);
  EXPECT_TRUE(IsSimple(g));
  EXPECT_EQ(core::CountTrianglesHost(g), 3u * 4 * 5);
}

TEST(Rmat, SimpleSeededSkewed) {
  auto g = Rmat(10, 2000, 0.45, 0.2, 0.2, 5);
  EXPECT_TRUE(IsSimple(g));
  EXPECT_EQ(g, Rmat(10, 2000, 0.45, 0.2, 0.2, 5));
  EXPECT_GE(g.size(), 1900u);  // may fall slightly short after dedup attempts
  // Skew: the max degree should far exceed the average.
  std::map<VertexId, int> deg;
  for (const Edge& e : g) {
    ++deg[e.u];
    ++deg[e.v];
  }
  int maxdeg = 0;
  for (auto& [v, d] : deg) maxdeg = std::max(maxdeg, d);
  double avg = 2.0 * g.size() / deg.size();
  EXPECT_GT(maxdeg, 4 * avg);
}

TEST(PlantedTriangles, AtLeastPlantedMany) {
  auto g = PlantedTriangles(300, 100, 25, 3);
  EXPECT_GE(core::CountTrianglesHost(g), 25u);
}

TEST(TriangleFreeControls, HaveNoTriangles) {
  EXPECT_EQ(core::CountTrianglesHost(Star(50)), 0u);
  EXPECT_EQ(core::CountTrianglesHost(PathGraph(50)), 0u);
  EXPECT_EQ(core::CountTrianglesHost(CycleGraph(50)), 0u);
  EXPECT_EQ(core::CountTrianglesHost(BipartiteRandom(20, 20, 150, 9)), 0u);
}

TEST(CycleGraph, TriangleOnlyAtThree) {
  EXPECT_EQ(core::CountTrianglesHost(CycleGraph(3)), 1u);
  EXPECT_EQ(core::CountTrianglesHost(CycleGraph(4)), 0u);
}

TEST(CliqueUnion, DisjointCliques) {
  auto g = CliqueUnion(4, 5);
  EXPECT_EQ(g.size(), 4u * 10);
  EXPECT_EQ(core::CountTrianglesHost(g), 4u * 10);  // 4 * C(5,3)
}

}  // namespace
}  // namespace trienum
