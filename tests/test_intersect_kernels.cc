// Exhaustive and randomized differential harness for the src/simd/ kernels.
//
// Every vectorized variant (SWAR always, AVX2 when compiled) must be a
// bit-exact replica of the scalar reference: same matches in the same
// order, same consumed_a/consumed_b (the scalar two-pointer's
// data-determined exhaustion point), same bitmap probe output, same
// flat-map payloads. The exhaustive section covers every width 0..65 on
// both sides — crossing the 4-wide SWAR and 8-wide AVX2 block boundaries
// and every tail alignment — under a family of adversarial overlap
// patterns; the randomized section fuzzes large skewed sets with the seed
// logged so failures replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "core/pivot_enum.h"
#include "simd/flat_set.h"
#include "simd/intersect.h"
#include "simd/kernel_policy.h"

namespace trienum {
namespace {

using simd::IntersectStats;
using simd::KernelMode;
using simd::KernelVariant;

// ---------------------------------------------------------------------------
// Variant plumbing: every mode a test matrix requests, with kAvx2 silently
// degrading to SWAR on non-AVX2 builds (the policy contract).

const std::vector<KernelMode>& AllModes() {
  static const std::vector<KernelMode> kModes = {
      KernelMode::kScalar, KernelMode::kSwar, KernelMode::kAvx2};
  return kModes;
}

// Runs IntersectSorted's variant for `mode` directly (the internal entry
// points), so the exhaustive loops don't depend on dispatch.
IntersectStats RunVariant(KernelMode mode, const std::uint32_t* a,
                          std::size_t na, const std::uint32_t* b,
                          std::size_t nb, std::uint32_t* out) {
  switch (mode) {
    case KernelMode::kScalar:
      return simd::internal::IntersectScalar(a, na, b, nb, out);
    case KernelMode::kSwar:
      return simd::internal::IntersectSwar(a, na, b, nb, out);
    case KernelMode::kAvx2:
#if defined(__AVX2__)
      if (simd::Avx2Available()) {
        return simd::internal::IntersectAvx2(a, na, b, nb, out);
      }
#endif
      return simd::internal::IntersectSwar(a, na, b, nb, out);
    case KernelMode::kAuto:
      break;
  }
  return simd::IntersectSorted(a, na, b, nb, out);
}

/// Compares one variant's full observable behaviour (stats + output,
/// including that it stayed within the slack region) to the scalar
/// reference on (a, b).
void ExpectVariantMatchesReference(KernelMode mode,
                                   const std::vector<std::uint32_t>& a,
                                   const std::vector<std::uint32_t>& b,
                                   const std::string& label) {
  const std::size_t cap = std::min(a.size(), b.size()) + simd::kOutSlack;
  std::vector<std::uint32_t> ref_out(cap, 0xDEADBEEFu);
  std::vector<std::uint32_t> got_out(cap, 0xDEADBEEFu);
  const IntersectStats ref = simd::internal::IntersectScalar(
      a.data(), a.size(), b.data(), b.size(), ref_out.data());
  const IntersectStats got =
      RunVariant(mode, a.data(), a.size(), b.data(), b.size(), got_out.data());
  ASSERT_EQ(ref.matches, got.matches) << label;
  EXPECT_EQ(ref.consumed_a, got.consumed_a) << label;
  EXPECT_EQ(ref.consumed_b, got.consumed_b) << label;
  for (std::size_t i = 0; i < ref.matches; ++i) {
    ASSERT_EQ(ref_out[i], got_out[i]) << label << " at match " << i;
  }
}

// ---------------------------------------------------------------------------
// Set builders.

std::vector<std::uint32_t> Iota(std::size_t n, std::uint32_t start,
                                std::uint32_t step) {
  std::vector<std::uint32_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = start + static_cast<std::uint32_t>(i) * step;
  }
  return v;
}

/// `n` distinct sorted values drawn from [0, range) by `rng`.
std::vector<std::uint32_t> RandomSet(SplitMix64& rng, std::size_t n,
                                     std::uint32_t range) {
  std::unordered_set<std::uint32_t> seen;
  while (seen.size() < n) {
    seen.insert(static_cast<std::uint32_t>(rng.Next() % range));
  }
  std::vector<std::uint32_t> v(seen.begin(), seen.end());
  std::sort(v.begin(), v.end());
  return v;
}

// ---------------------------------------------------------------------------
// Exhaustive small-width sweeps: widths 0..65 cross every SWAR 4-block and
// AVX2 8-block boundary and every tail length.

constexpr std::size_t kMaxWidth = 65;

TEST(IntersectKernels, ExhaustiveWidthsDisjointLowHigh) {
  for (KernelMode mode : AllModes()) {
    for (std::size_t na = 0; na <= kMaxWidth; ++na) {
      for (std::size_t nb = 0; nb <= kMaxWidth; ++nb) {
        // a entirely below b: exhausts a with zero matches.
        auto a = Iota(na, 0, 1);
        auto b = Iota(nb, 1000, 1);
        ExpectVariantMatchesReference(
            mode, a, b,
            std::string(simd::KernelModeName(mode)) + " low/high " +
                std::to_string(na) + "x" + std::to_string(nb));
        ExpectVariantMatchesReference(
            mode, b, a,
            std::string(simd::KernelModeName(mode)) + " high/low " +
                std::to_string(na) + "x" + std::to_string(nb));
      }
    }
  }
}

TEST(IntersectKernels, ExhaustiveWidthsInterleaved) {
  for (KernelMode mode : AllModes()) {
    for (std::size_t na = 0; na <= kMaxWidth; ++na) {
      for (std::size_t nb = 0; nb <= kMaxWidth; ++nb) {
        // Evens vs odds: perfectly interleaved, zero matches, both sides
        // advance in lockstep — the worst case for block advancement.
        auto a = Iota(na, 0, 2);
        auto b = Iota(nb, 1, 2);
        ExpectVariantMatchesReference(
            mode, a, b,
            std::string(simd::KernelModeName(mode)) + " interleave " +
                std::to_string(na) + "x" + std::to_string(nb));
      }
    }
  }
}

TEST(IntersectKernels, ExhaustiveWidthsEqualAndSubset) {
  for (KernelMode mode : AllModes()) {
    for (std::size_t na = 0; na <= kMaxWidth; ++na) {
      // Identical sets: every element matches.
      auto a = Iota(na, 7, 3);
      ExpectVariantMatchesReference(
          mode, a, a,
          std::string(simd::KernelModeName(mode)) + " equal " +
              std::to_string(na));
      // Every second element of a: a proper subset.
      std::vector<std::uint32_t> sub;
      for (std::size_t i = 0; i < na; i += 2) sub.push_back(a[i]);
      ExpectVariantMatchesReference(
          mode, a, sub,
          std::string(simd::KernelModeName(mode)) + " superset " +
              std::to_string(na));
      ExpectVariantMatchesReference(
          mode, sub, a,
          std::string(simd::KernelModeName(mode)) + " subset " +
              std::to_string(na));
    }
  }
}

TEST(IntersectKernels, ExhaustiveShiftedOverlaps) {
  // Sliding window: a = [s, s+n), b = [0, n) for every shift — every
  // possible overlap length, including the one-past-the-end boundary where
  // a block's first compare already exhausts one side.
  for (KernelMode mode : AllModes()) {
    for (std::size_t n : {std::size_t{1}, std::size_t{4}, std::size_t{8},
                          std::size_t{13}, std::size_t{32}, std::size_t{65}}) {
      for (std::size_t s = 0; s <= n + 1; ++s) {
        auto a = Iota(n, static_cast<std::uint32_t>(s), 1);
        auto b = Iota(n, 0, 1);
        ExpectVariantMatchesReference(
            mode, a, b,
            std::string(simd::KernelModeName(mode)) + " shift " +
                std::to_string(s) + "/" + std::to_string(n));
      }
    }
  }
}

TEST(IntersectKernels, ExtremeValuesNearUint32Max) {
  // The SWAR zero-half filter and the AVX2 unsigned-compare trick must not
  // wrap near 2^32 - 1.
  for (KernelMode mode : AllModes()) {
    std::vector<std::uint32_t> a, b;
    for (std::uint32_t i = 0; i < 40; ++i) a.push_back(0xFFFFFFFFu - 2 * i);
    for (std::uint32_t i = 0; i < 40; ++i) b.push_back(0xFFFFFFFFu - 3 * i);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ExpectVariantMatchesReference(mode, a, b, "near-max values");
    // Zero is a legal member (the SWAR filter subtracts 1 per half).
    std::vector<std::uint32_t> z1 = {0, 1, 2, 70000};
    std::vector<std::uint32_t> z2 = {0, 2, 65536, 70000};
    ExpectVariantMatchesReference(mode, z1, z2, "zero member");
  }
}

TEST(IntersectKernels, RandomizedSkewedDensities) {
  // Large randomized sets across overlap densities from disjoint-ish to
  // near-identical. Seeds are fixed and logged so any failure replays.
  for (std::uint64_t seed : {0xA001ull, 0xA002ull, 0xA003ull}) {
    SplitMix64 rng(seed);
    for (std::uint32_t range : {600u, 5000u, 1u << 20}) {
      for (std::size_t na : {std::size_t{3}, std::size_t{100},
                             std::size_t{257}, std::size_t{500}}) {
        const std::size_t nb = 1 + rng.Next() % 500;
        auto a = RandomSet(rng, na, range);
        auto b = RandomSet(rng, std::min<std::size_t>(nb, range / 2), range);
        for (KernelMode mode : AllModes()) {
          ExpectVariantMatchesReference(
              mode, a, b,
              "seed=" + std::to_string(seed) + " range=" +
                  std::to_string(range) + " na=" + std::to_string(na) +
                  " nb=" + std::to_string(nb) + " mode=" +
                  simd::KernelModeName(mode));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dense regime.

TEST(IntersectKernels, ChooseRegimeThresholds) {
  using simd::Regime;
  // Too small: merge regardless of density.
  EXPECT_EQ(simd::ChooseRegime(simd::kBitmapMinSize - 1, 0, 10), Regime::kMerge);
  // Large and perfectly dense: bitmap.
  EXPECT_EQ(simd::ChooseRegime(64, 100, 163), Regime::kBitmap);
  // Exactly at the span budget (16 positions per value): bitmap.
  EXPECT_EQ(simd::ChooseRegime(64, 0, 64 * 16 - 1), Regime::kBitmap);
  // One past it: merge.
  EXPECT_EQ(simd::ChooseRegime(64, 0, 64 * 16), Regime::kMerge);
  // Huge sparse span (hash-like ids): merge.
  EXPECT_EQ(simd::ChooseRegime(1000, 0, 0xFFFFFFFFu), Regime::kMerge);
}

TEST(IntersectKernels, DenseBitmapProbeMatchesScalarAcrossVariants) {
  for (std::uint64_t seed : {0xB001ull, 0xB002ull}) {
    SplitMix64 rng(seed);
    // Offset base exercises the out-of-range guard on both sides.
    auto members = RandomSet(rng, 300, 4000);
    for (auto& v : members) v += 50000;
    simd::DenseBitmap bm;
    bm.Build(members.data(), members.size());
    ASSERT_TRUE(bm.built());
    EXPECT_EQ(bm.size(), members.size());

    // Probe batch straddling the bitmap's range on both ends.
    std::vector<std::uint32_t> probes;
    for (std::size_t i = 0; i < 500; ++i) {
      probes.push_back(49000 + static_cast<std::uint32_t>(rng.Next() % 7000));
    }
    std::sort(probes.begin(), probes.end());
    probes.erase(std::unique(probes.begin(), probes.end()), probes.end());

    std::vector<std::uint32_t> ref_out(probes.size() + simd::kOutSlack);
    std::size_t ref_m = 0;
    {
      simd::ScopedKernelMode scoped(KernelMode::kScalar);
      ref_m = bm.Probe(probes.data(), probes.size(), ref_out.data());
    }
    // Scalar probe agrees with Test() membership.
    std::size_t want = 0;
    for (std::uint32_t p : probes) {
      if (bm.Test(p)) ++want;
    }
    ASSERT_EQ(ref_m, want) << "seed=" << seed;

    for (KernelMode mode : {KernelMode::kSwar, KernelMode::kAvx2}) {
      simd::ScopedKernelMode scoped(mode);
      std::vector<std::uint32_t> got_out(probes.size() + simd::kOutSlack);
      const std::size_t got_m =
          bm.Probe(probes.data(), probes.size(), got_out.data());
      ASSERT_EQ(ref_m, got_m)
          << "seed=" << seed << " mode=" << simd::KernelModeName(mode);
      for (std::size_t i = 0; i < ref_m; ++i) {
        ASSERT_EQ(ref_out[i], got_out[i])
            << "seed=" << seed << " mode=" << simd::KernelModeName(mode)
            << " at " << i;
      }
    }
  }
}

TEST(IntersectKernels, DenseBitmapCountAndMatchesBruteForce) {
  SplitMix64 rng(0xB003);
  // Overlapping, partially disjoint ranges with different bases stress the
  // word-stitching (unaligned relative offsets) in CountAnd.
  for (int round = 0; round < 8; ++round) {
    auto va = RandomSet(rng, 200 + rng.Next() % 200, 3000);
    auto vb = RandomSet(rng, 200 + rng.Next() % 200, 3000);
    const std::uint32_t shift_a = static_cast<std::uint32_t>(rng.Next() % 130);
    const std::uint32_t shift_b = static_cast<std::uint32_t>(rng.Next() % 130);
    for (auto& v : va) v += 10000 + shift_a;
    for (auto& v : vb) v += 10000 + shift_b;
    simd::DenseBitmap ba, bb;
    ba.Build(va.data(), va.size());
    bb.Build(vb.data(), vb.size());
    std::uint64_t want = 0;
    for (std::uint32_t v : va) {
      want += std::binary_search(vb.begin(), vb.end(), v) ? 1 : 0;
    }
    for (KernelMode mode : AllModes()) {
      simd::ScopedKernelMode scoped(mode);
      EXPECT_EQ(ba.CountAnd(bb), want)
          << "round=" << round << " mode=" << simd::KernelModeName(mode);
      EXPECT_EQ(bb.CountAnd(ba), want)
          << "round=" << round << " swapped mode="
          << simd::KernelModeName(mode);
    }
  }
}

TEST(IntersectKernels, PopcountWordsMatchesBuiltin) {
  SplitMix64 rng(0xB004);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                        std::size_t{64}, std::size_t{255}, std::size_t{1000}}) {
    std::vector<std::uint64_t> w(n);
    for (auto& x : w) x = rng.Next();
    std::uint64_t want = 0;
    for (std::uint64_t x : w) {
      want += static_cast<std::uint64_t>(__builtin_popcountll(x));
    }
    for (KernelMode mode : AllModes()) {
      simd::ScopedKernelMode scoped(mode);
      EXPECT_EQ(simd::PopcountWords(w.data(), n), want)
          << "n=" << n << " mode=" << simd::KernelModeName(mode);
    }
  }
}

// ---------------------------------------------------------------------------
// Flat-map probe batches and the clique4 membership set.

TEST(IntersectKernels, ProbeFlatMapMatchesPerQueryGet) {
  SplitMix64 rng(0xC001);
  core::internal::FlatVertexMap map;
  map.Reset(500);
  std::vector<std::uint32_t> keys;
  for (int i = 0; i < 500; ++i) {
    const std::uint32_t k = static_cast<std::uint32_t>(rng.Next() % 100000);
    keys.push_back(k);
    map.Add(k, 1u + static_cast<std::uint32_t>(i % 7));
  }
  // Query mix: present keys, absent keys, duplicates — across batch sizes
  // that cover the vector widths and their tails.
  std::vector<std::uint32_t> queries;
  for (int i = 0; i < 300; ++i) queries.push_back(keys[rng.Next() % keys.size()]);
  for (int i = 0; i < 300; ++i) {
    queries.push_back(static_cast<std::uint32_t>(rng.Next() % 200000));
  }
  const core::internal::FlatVertexMap::View view = map.view();
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                        std::size_t{4}, std::size_t{7}, std::size_t{8},
                        std::size_t{9}, queries.size()}) {
    std::vector<std::uint32_t> out(n + 1, 0x12345678u);
    for (KernelMode mode : AllModes()) {
      simd::ScopedKernelMode scoped(mode);
      simd::ProbeFlatMapU32(view.keys, view.vals, view.mask, queries.data(), n,
                            out.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], view.Get(queries[i]))
            << "n=" << n << " i=" << i << " q=" << queries[i]
            << " mode=" << simd::KernelModeName(mode);
      }
      EXPECT_EQ(out[n], 0x12345678u) << "overwrote past the batch";
    }
  }
}

TEST(IntersectKernels, FlatU64SetMatchesUnorderedSet) {
  SplitMix64 rng(0xC002);
  simd::FlatU64Set flat;
  std::unordered_set<std::uint64_t> ref;
  flat.Reset(400);
  for (int i = 0; i < 400; ++i) {
    // Packed-edge-shaped keys (never 0).
    const std::uint64_t k = (rng.Next() % 1000 + 1) << 32 | (rng.Next() % 1000);
    flat.Insert(k);
    ref.insert(k);
  }
  std::vector<std::uint64_t> queries;
  for (int i = 0; i < 2000; ++i) {
    queries.push_back((rng.Next() % 1200 + 1) << 32 | (rng.Next() % 1200));
  }
  for (std::uint64_t q : queries) {
    ASSERT_EQ(flat.Contains(q), ref.count(q) != 0) << "q=" << q;
  }
  for (KernelMode mode : AllModes()) {
    simd::ScopedKernelMode scoped(mode);
    for (std::size_t i = 0; i + 4 <= queries.size(); i += 4) {
      const bool want = ref.count(queries[i]) != 0 &&
                        ref.count(queries[i + 1]) != 0 &&
                        ref.count(queries[i + 2]) != 0 &&
                        ref.count(queries[i + 3]) != 0;
      ASSERT_EQ(flat.ContainsAll4(queries[i], queries[i + 1], queries[i + 2],
                                  queries[i + 3]),
                want)
          << "i=" << i << " mode=" << simd::KernelModeName(mode);
    }
  }
}

// ---------------------------------------------------------------------------
// Runtime dispatch: the invocation counters prove which variant actually
// serviced the calls — including that the portable fallback executes when
// AVX2 is masked off (or absent from the build).

TEST(KernelDispatch, ScalarModeRunsOnlyTheScalarPath) {
  simd::ScopedKernelMode scoped(KernelMode::kScalar);
  simd::ResetInvocationCounters();
  auto a = Iota(40, 0, 2);
  auto b = Iota(40, 0, 3);
  std::vector<std::uint32_t> out(40 + simd::kOutSlack);
  simd::IntersectSorted(a.data(), a.size(), b.data(), b.size(), out.data());
  EXPECT_GT(simd::Invocations(KernelVariant::kScalar), 0u);
  EXPECT_EQ(simd::Invocations(KernelVariant::kSwar), 0u);
  EXPECT_EQ(simd::Invocations(KernelVariant::kAvx2), 0u);
}

TEST(KernelDispatch, SwarModeMasksOffAvx2) {
  // The core of the fallback guarantee: with AVX2 masked off, kernel calls
  // run the portable SWAR path — on every build, including TRIENUM_NATIVE.
  simd::ScopedKernelMode scoped(KernelMode::kSwar);
  simd::ResetInvocationCounters();
  auto a = Iota(64, 0, 2);
  auto b = Iota(64, 0, 3);
  std::vector<std::uint32_t> out(64 + simd::kOutSlack);
  simd::IntersectSorted(a.data(), a.size(), b.data(), b.size(), out.data());
  EXPECT_EQ(simd::ActiveVariant(), KernelVariant::kSwar);
  EXPECT_GT(simd::Invocations(KernelVariant::kSwar), 0u);
  EXPECT_EQ(simd::Invocations(KernelVariant::kAvx2), 0u);
}

TEST(KernelDispatch, Avx2RequestDegradesToSwarWhenUnavailable) {
  simd::ScopedKernelMode scoped(KernelMode::kAvx2);
  simd::ResetInvocationCounters();
  auto a = Iota(64, 0, 2);
  auto b = Iota(64, 0, 3);
  std::vector<std::uint32_t> out(64 + simd::kOutSlack);
  simd::IntersectSorted(a.data(), a.size(), b.data(), b.size(), out.data());
  if (simd::Avx2Available()) {
    EXPECT_EQ(simd::ActiveVariant(), KernelVariant::kAvx2);
    EXPECT_GT(simd::Invocations(KernelVariant::kAvx2), 0u);
  } else {
    // Unsatisfiable request resolves to the portable fallback, proving the
    // non-AVX2 path is compiled and reachable in this build.
    EXPECT_EQ(simd::ActiveVariant(), KernelVariant::kSwar);
    EXPECT_GT(simd::Invocations(KernelVariant::kSwar), 0u);
    EXPECT_EQ(simd::Invocations(KernelVariant::kAvx2), 0u);
  }
}

TEST(KernelDispatch, ModeRoundTripsThroughParseAndName) {
  for (KernelMode m : {KernelMode::kAuto, KernelMode::kScalar,
                       KernelMode::kSwar, KernelMode::kAvx2}) {
    KernelMode parsed;
    ASSERT_TRUE(simd::ParseKernelMode(simd::KernelModeName(m), &parsed));
    EXPECT_EQ(parsed, m);
  }
  KernelMode dummy;
  EXPECT_FALSE(simd::ParseKernelMode("sse9", &dummy));
  EXPECT_FALSE(simd::ParseKernelMode("", &dummy));
}

}  // namespace
}  // namespace trienum
