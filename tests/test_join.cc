// The introduction's database application: 5NF decomposition and the
// triangle-based ternary join.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "join/relation.h"
#include "join/triangle_join.h"
#include "test_util.h"

namespace trienum {
namespace {

using join::Decomposition;
using join::Tuple3;

// A Sells table in "product form": each salesperson sells all of B x T for
// her brand set B and type set T — the paper's 5NF-decomposable shape.
std::vector<Tuple3> ProductFormSells(std::uint64_t seed, int people = 12,
                                     int brands = 8, int types = 6) {
  SplitMix64 rng(seed);
  std::vector<Tuple3> out;
  for (int p = 0; p < people; ++p) {
    std::vector<std::uint32_t> bset, tset;
    for (int b = 0; b < brands; ++b) {
      if (rng.NextDouble() < 0.4) bset.push_back(100 + b);
    }
    for (int t = 0; t < types; ++t) {
      if (rng.NextDouble() < 0.5) tset.push_back(200 + t);
    }
    for (std::uint32_t b : bset) {
      for (std::uint32_t t : tset) {
        out.push_back(Tuple3{static_cast<std::uint32_t>(p), b, t});
      }
    }
  }
  return out;
}

TEST(Relation, ProductFormIs5NFDecomposable) {
  EXPECT_TRUE(join::IsFifthNormalFormDecomposable(ProductFormSells(1)));
  EXPECT_TRUE(join::IsFifthNormalFormDecomposable(ProductFormSells(2)));
}

TEST(Relation, ArbitraryTableUsuallyIsNot) {
  // A hand-built counterexample: tuples (a1,b1,t2),(a1,b2,t1),(a2,b1,t1)
  // project to relations whose join also contains (a1,b1,t1) — a spurious
  // tuple, so the table is not decomposable.
  std::vector<Tuple3> sells = {{1, 10, 21}, {1, 11, 20}, {2, 10, 20}};
  EXPECT_FALSE(join::IsFifthNormalFormDecomposable(sells));
}

TEST(Relation, DecomposeProjectsAndDedups) {
  std::vector<Tuple3> sells = {{1, 10, 20}, {1, 10, 21}, {2, 10, 20}};
  Decomposition d = join::Decompose(sells);
  EXPECT_EQ(d.ab.rows.size(), 2u);  // (1,10) (2,10)
  EXPECT_EQ(d.bc.rows.size(), 2u);  // (10,20) (10,21)
  EXPECT_EQ(d.ac.rows.size(), 3u);
}

TEST(TriangleJoin, ReconstructsProductFormSells) {
  for (std::uint64_t seed : {3ull, 4ull, 5ull}) {
    std::vector<Tuple3> sells = ProductFormSells(seed);
    std::sort(sells.begin(), sells.end());
    sells.erase(std::unique(sells.begin(), sells.end()), sells.end());
    Decomposition d = join::Decompose(sells);

    em::Context ctx = test::MakeContext();
    auto result = join::TriangleJoin(ctx, d, "ps-cache-aware");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, sells) << "seed " << seed;
  }
}

TEST(TriangleJoin, EveryAlgorithmComputesTheSameJoin) {
  std::vector<Tuple3> sells = ProductFormSells(9);
  Decomposition d = join::Decompose(sells);
  std::vector<Tuple3> expected = join::NaturalJoinReference(d);
  for (const core::AlgorithmInfo& a : core::AllAlgorithms()) {
    em::Context ctx = test::MakeContext();
    auto result = join::TriangleJoin(ctx, d, a.name);
    ASSERT_TRUE(result.ok()) << a.name;
    EXPECT_EQ(*result, expected) << a.name;
  }
}

TEST(TriangleJoin, NonDecomposableTableYieldsSuperset) {
  // Join of projections always contains the original tuples; for non-5NF
  // tables it is strictly larger (the classic anomaly).
  std::vector<Tuple3> sells = {{1, 10, 21}, {1, 11, 20}, {2, 10, 20}};
  Decomposition d = join::Decompose(sells);
  em::Context ctx = test::MakeContext();
  auto result = join::TriangleJoin(ctx, d, "mgt");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->size(), sells.size());
  for (const Tuple3& t : sells) {
    EXPECT_NE(std::find(result->begin(), result->end(), t), result->end());
  }
}

TEST(TriangleJoin, EmptyRelations) {
  Decomposition d = join::Decompose({});
  em::Context ctx = test::MakeContext();
  auto result = join::TriangleJoin(ctx, d, "ps-cache-oblivious");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(TriangleJoin, UnknownAlgorithmIsAnError) {
  em::Context ctx = test::MakeContext();
  auto result = join::TriangleJoin(ctx, join::Decompose({}), "nope");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(TriangleJoin, StatsReportIoAndSizes) {
  std::vector<Tuple3> sells = ProductFormSells(11);
  Decomposition d = join::Decompose(sells);
  em::Context ctx = test::MakeContext();
  join::TriangleJoinStats stats;
  auto result = join::TriangleJoin(ctx, d, "mgt", &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.output_tuples, result->size());
  EXPECT_GT(stats.graph_edges, 0u);
  EXPECT_GT(stats.io.total_ios(), 0u);
}

}  // namespace
}  // namespace trienum
