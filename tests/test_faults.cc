// The fault-injection and recovery suite.
//
// Unit layers: the spec parser (FaultSpec), the deterministic injector
// (FaultInjection), and the retry/checksum decorator (Recovery). Integration
// (Faults): the hard contract that under any transient fault schedule a
// query's triangles, emission order, and counted IoStats are bit-identical
// to a clean run — across the full algorithm x backend x scan-mode x threads
// matrix — while a permanent fault fails only that query (kIoError) and the
// session survives to answer the next one bit-for-bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "em/storage.h"
#include "faults/fault_injection.h"
#include "faults/fault_spec.h"
#include "faults/recovery.h"
#include "graph/generators.h"
#include "query/query.h"

namespace trienum {
namespace {

using faults::FaultClause;
using faults::FaultInjectingBackend;
using faults::FaultKind;
using faults::FaultOp;
using faults::ParseFaultSpec;
using faults::RecoveringBackend;
using faults::RetryPolicy;

// ---------------------------------------------------------------------------
// Spec parser.

TEST(FaultSpec, ParsesMultiClauseSpec) {
  auto r = ParseFaultSpec(
      "read:eio:every=7;write:short:at=3,count=2;grow:enospc:at=1,perm=1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::vector<FaultClause>& c = *r;
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0].op, FaultOp::kRead);
  EXPECT_EQ(c[0].kind, FaultKind::kEio);
  EXPECT_EQ(c[0].every, 7u);
  EXPECT_EQ(c[1].op, FaultOp::kWrite);
  EXPECT_EQ(c[1].kind, FaultKind::kShort);
  EXPECT_EQ(c[1].at, 3u);
  EXPECT_EQ(c[1].count, 2u);
  EXPECT_FALSE(c[1].perm);
  EXPECT_EQ(c[2].op, FaultOp::kGrow);
  EXPECT_EQ(c[2].kind, FaultKind::kEnospc);
  EXPECT_TRUE(c[2].perm);
}

TEST(FaultSpec, ParsesProbabilisticClauseAndEmptySpec) {
  auto r = ParseFaultSpec("read:eio:p=0.25");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ((*r)[0].p, 0.25);
  auto empty = ParseFaultSpec("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  for (const char* bad : {
           "bogus:eio:every=3",        // unknown op
           "read:explode:every=3",     // unknown kind
           "read:eio",                 // no trigger
           "read:eio:every=0",         // zero period
           "read:eio:at=0",            // zero ordinal
           "read:eio:p=1.5",           // probability out of range
           "read:eio:p=-0.1",          // probability out of range
           "read:eio:frequency=3",     // unknown param
           "write:flip:every=3",       // flip is read-only
           "read:enospc:every=3",      // enospc is grow-only
           "grow:short:every=3",       // short needs a transfer
           "read:eio:every=x",         // non-numeric
       }) {
    auto r = ParseFaultSpec(bad);
    EXPECT_FALSE(r.ok()) << "accepted: " << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

// ---------------------------------------------------------------------------
// Injector.

constexpr std::size_t kLine = 8;

// A MemoryBackend holding `words` words of the pattern value(i) = i * 3 + 1.
std::unique_ptr<em::StorageBackend> PatternBackend(std::size_t words) {
  auto mem = std::make_unique<em::MemoryBackend>();
  EXPECT_TRUE(mem->EnsureSize(words).ok());
  std::vector<em::Word> buf(words);
  for (std::size_t i = 0; i < words; ++i) buf[i] = i * 3 + 1;
  EXPECT_TRUE(mem->WriteWords(0, words, buf.data()).ok());
  return mem;
}

FaultInjectingBackend MakeInjector(const std::string& spec,
                                   std::uint64_t seed = 42,
                                   std::size_t words = 64) {
  return FaultInjectingBackend(PatternBackend(words), *ParseFaultSpec(spec),
                               seed, kLine);
}

TEST(FaultInjection, EveryNthReadFailsDeterministically) {
  FaultInjectingBackend inj = MakeInjector("read:eio:every=3");
  std::vector<em::Word> out(kLine);
  for (int n = 1; n <= 12; ++n) {
    Status st = inj.ReadWords(0, kLine, out.data());
    EXPECT_EQ(st.ok(), n % 3 != 0) << "read #" << n;
  }
  EXPECT_EQ(inj.faults_injected(), 4u);
  EXPECT_EQ(inj.op_count(FaultOp::kRead), 12u);
}

TEST(FaultInjection, AtFiresOnceAndCountCapsFirings) {
  FaultInjectingBackend at = MakeInjector("read:eio:at=2");
  std::vector<em::Word> out(kLine);
  for (int n = 1; n <= 6; ++n) {
    EXPECT_EQ(at.ReadWords(0, kLine, out.data()).ok(), n != 2) << n;
  }

  FaultInjectingBackend capped = MakeInjector("write:eintr:every=1,count=2");
  std::vector<em::Word> in(kLine, 9);
  EXPECT_FALSE(capped.WriteWords(0, kLine, in.data()).ok());
  EXPECT_FALSE(capped.WriteWords(0, kLine, in.data()).ok());
  for (int n = 3; n <= 8; ++n) {
    EXPECT_TRUE(capped.WriteWords(0, kLine, in.data()).ok()) << n;
  }
  EXPECT_EQ(capped.faults_injected(), 2u);
}

TEST(FaultInjection, PermLatchesForever) {
  FaultInjectingBackend inj = MakeInjector("read:eio:at=3,perm=1");
  std::vector<em::Word> out(kLine);
  EXPECT_TRUE(inj.ReadWords(0, kLine, out.data()).ok());
  EXPECT_TRUE(inj.ReadWords(0, kLine, out.data()).ok());
  for (int n = 3; n <= 10; ++n) {
    EXPECT_FALSE(inj.ReadWords(0, kLine, out.data()).ok()) << n;
  }
}

TEST(FaultInjection, ProbabilisticClauseIsSeedDeterministic) {
  auto sequence = [](std::uint64_t seed) {
    FaultInjectingBackend inj = MakeInjector("read:eio:p=0.5", seed);
    std::vector<em::Word> out(kLine);
    std::vector<bool> oks;
    for (int n = 0; n < 64; ++n) {
      oks.push_back(inj.ReadWords(0, kLine, out.data()).ok());
    }
    return oks;
  };
  std::vector<bool> a = sequence(7), b = sequence(7), c = sequence(8);
  EXPECT_EQ(a, b) << "same seed must fire the same faults";
  EXPECT_NE(a, c) << "different seeds must fire different faults";
  // p=0.5 over 64 ops: both outcomes must actually occur.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST(FaultInjection, FlipCorruptsOnlyVerifiableReadShapes) {
  // A flip must only land on block-aligned whole-line reads — exactly the
  // shape the recovery layer can checksum — so corruption is never injected
  // where it is undetectable by design.
  FaultInjectingBackend inj = MakeInjector("read:flip:every=1");
  auto diff_words = [&](em::Addr addr, std::size_t words) {
    std::vector<em::Word> out(words);
    EXPECT_TRUE(inj.ReadWords(addr, words, out.data()).ok());
    int diffs = 0;
    for (std::size_t i = 0; i < words; ++i) {
      if (out[i] != (addr + i) * 3 + 1) ++diffs;
    }
    return diffs;
  };
  EXPECT_EQ(diff_words(0, kLine), 1) << "aligned full line: one bit flipped";
  EXPECT_EQ(diff_words(kLine, 2 * kLine), 1) << "aligned multi-line: flipped";
  EXPECT_EQ(diff_words(1, kLine), 0) << "unaligned: must pass through clean";
  EXPECT_EQ(diff_words(0, kLine + 1), 0) << "ragged length: clean";
  EXPECT_EQ(diff_words(0, kLine - 2), 0) << "sub-line: clean";
}

TEST(FaultInjection, DisarmedInjectorIsAPurePassThrough) {
  FaultInjectingBackend inj = MakeInjector("read:eio:every=1");
  inj.set_armed(false);
  std::vector<em::Word> out(kLine);
  for (int n = 0; n < 5; ++n) {
    EXPECT_TRUE(inj.ReadWords(0, kLine, out.data()).ok());
  }
  EXPECT_EQ(inj.faults_injected(), 0u);
  EXPECT_EQ(inj.op_count(FaultOp::kRead), 0u)
      << "disarmed ops must not advance clause counters";
  inj.set_armed(true);
  EXPECT_FALSE(inj.ReadWords(0, kLine, out.data()).ok());
}

TEST(FaultInjection, GrowCountsOnlyRealExtensions) {
  FaultInjectingBackend inj(PatternBackend(64),
                            *ParseFaultSpec("grow:enospc:at=2"), 42, kLine);
  // The memory backend rounds capacity up geometrically, so "a real grow"
  // means exceeding whatever it currently holds — probe size_words() rather
  // than assuming exact sizes.
  const std::size_t base = inj.size_words();
  EXPECT_TRUE(inj.EnsureSize(base / 2).ok()) << "within capacity: not a grow";
  EXPECT_TRUE(inj.EnsureSize(base).ok()) << "exact fit: not a grow";
  EXPECT_TRUE(inj.EnsureSize(base + 1).ok()) << "grow #1";
  const std::size_t grown = inj.size_words();
  ASSERT_GT(grown, base);
  Status st = inj.EnsureSize(grown + 1);
  EXPECT_FALSE(st.ok()) << "grow #2 must hit the injected ENOSPC";
  EXPECT_NE(st.message().find("ENOSPC"), std::string::npos) << st.ToString();
  EXPECT_EQ(inj.size_words(), grown) << "the faulted grow must not extend";
}

// ---------------------------------------------------------------------------
// Recovery decorator.

TEST(Recovery, RetriesTransientFaultsToSuccess) {
  RetryPolicy policy;  // 4 retries, no backoff
  RecoveringBackend rec(
      std::make_unique<FaultInjectingBackend>(
          PatternBackend(64), *ParseFaultSpec("read:eio:every=2"), 1, kLine),
      policy, kLine);
  std::vector<em::Word> out(kLine);
  // Read ops alternate clean/faulted; every faulted attempt is retried with
  // the next op ordinal, which is clean — so the caller never sees an error.
  for (int n = 0; n < 10; ++n) {
    ASSERT_TRUE(rec.ReadWords(0, kLine, out.data()).ok()) << n;
    for (std::size_t i = 0; i < kLine; ++i) EXPECT_EQ(out[i], i * 3 + 1);
  }
  EXPECT_GT(rec.recovery().retries, 0u);
  EXPECT_EQ(rec.recovery().retries, rec.recovery().faults_injected);
}

TEST(Recovery, GivesUpAfterTheRetryBudget) {
  RetryPolicy policy;
  policy.max_retries = 3;
  RecoveringBackend rec(
      std::make_unique<FaultInjectingBackend>(
          PatternBackend(64), *ParseFaultSpec("read:eio:every=1"), 1, kLine),
      policy, kLine);
  std::vector<em::Word> out(kLine);
  Status st = rec.ReadWords(0, kLine, out.data());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_EQ(rec.recovery().retries, 3u) << "exactly the budget, then give up";
  EXPECT_EQ(rec.recovery().faults_injected, 4u) << "first attempt + retries";
}

TEST(Recovery, ChecksumsCatchSilentBitFlips) {
  RetryPolicy policy;
  policy.verify_checksums = true;
  // The first read is flipped; the checksum recorded by the write exposes
  // it, and the retry (op #2, clean) returns the true contents.
  RecoveringBackend rec(
      std::make_unique<FaultInjectingBackend>(
          PatternBackend(64), *ParseFaultSpec("read:flip:at=1"), 1, kLine),
      policy, kLine);
  std::vector<em::Word> in(kLine);
  std::iota(in.begin(), in.end(), 100);
  ASSERT_TRUE(rec.WriteWords(0, kLine, in.data()).ok());
  std::vector<em::Word> out(kLine);
  ASSERT_TRUE(rec.ReadWords(0, kLine, out.data()).ok());
  EXPECT_EQ(out, in) << "recovered read must return the written contents";
  EXPECT_EQ(rec.recovery().checksum_failures, 1u);
  EXPECT_EQ(rec.recovery().retries, 1u);
}

TEST(Recovery, WithoutChecksumsTheFlipIsSilent) {
  // The control for the test above: same schedule, checksums off — the
  // corrupt read sails through. This asymmetry is exactly what
  // --verify-checksums buys.
  RetryPolicy policy;
  RecoveringBackend rec(
      std::make_unique<FaultInjectingBackend>(
          PatternBackend(64), *ParseFaultSpec("read:flip:at=1"), 1, kLine),
      policy, kLine);
  std::vector<em::Word> in(kLine);
  std::iota(in.begin(), in.end(), 100);
  ASSERT_TRUE(rec.WriteWords(0, kLine, in.data()).ok());
  std::vector<em::Word> out(kLine);
  ASSERT_TRUE(rec.ReadWords(0, kLine, out.data()).ok());
  EXPECT_NE(out, in) << "without checksums the corruption goes undetected";
  EXPECT_EQ(rec.recovery().checksum_failures, 0u);
}

TEST(Recovery, PartialLineWriteKeepsChecksumConsistent) {
  RetryPolicy policy;
  policy.verify_checksums = true;
  RecoveringBackend rec(PatternBackend(64), policy, kLine);
  // Full-line write establishes the checksum, then an unaligned partial
  // write overlapping two lines must refresh both lines' checksums (via the
  // read-back path), so the next verified reads still pass.
  std::vector<em::Word> full(2 * kLine, 7);
  ASSERT_TRUE(rec.WriteWords(0, 2 * kLine, full.data()).ok());
  std::vector<em::Word> partial(kLine, 9);  // words [4, 12): tail of line 0,
  ASSERT_TRUE(rec.WriteWords(4, kLine, partial.data()).ok());  // head of 1
  std::vector<em::Word> out(2 * kLine);
  ASSERT_TRUE(rec.ReadWords(0, 2 * kLine, out.data()).ok());
  for (std::size_t i = 0; i < 2 * kLine; ++i) {
    EXPECT_EQ(out[i], (i >= 4 && i < 4 + kLine) ? 9u : 7u) << i;
  }
  EXPECT_EQ(rec.recovery().checksum_failures, 0u)
      << "stale checksums would have flagged the merged lines";
}

TEST(Recovery, ApplyFaultConfigValidatesAndComposesNames) {
  em::EmConfig cfg;
  cfg.fault_spec = "read:eio:everything=3";
  EXPECT_FALSE(faults::ApplyFaultConfig(cfg).ok());

  cfg.fault_spec = "read:eio:every=3";
  cfg.io_retries = -1;
  EXPECT_FALSE(faults::ApplyFaultConfig(cfg).ok());
  cfg.io_retries = 4;
  ASSERT_TRUE(faults::ApplyFaultConfig(cfg).ok());
  ASSERT_NE(cfg.wrap_backend, nullptr);
  std::unique_ptr<em::StorageBackend> stack =
      cfg.wrap_backend(std::make_unique<em::MemoryBackend>());
  EXPECT_STREQ(stack->name(), "memory+faults+recovery");
  EXPECT_FALSE(stack->memory_resident())
      << "decorated stacks must force staged cache mode";
  EXPECT_NE(faults::FindInjector(*stack), nullptr);

  // Checksums alone wrap with recovery but no injector.
  em::EmConfig sums;
  sums.verify_checksums = true;
  ASSERT_TRUE(faults::ApplyFaultConfig(sums).ok());
  std::unique_ptr<em::StorageBackend> rec_only =
      sums.wrap_backend(std::make_unique<em::MemoryBackend>());
  EXPECT_STREQ(rec_only->name(), "memory+recovery");
  EXPECT_EQ(faults::FindInjector(*rec_only), nullptr);

  // Nothing configured: the hook is cleared, the plain path stays unwrapped.
  em::EmConfig plain;
  ASSERT_TRUE(faults::ApplyFaultConfig(plain).ok());
  EXPECT_EQ(plain.wrap_backend, nullptr);
}

// ---------------------------------------------------------------------------
// Integration: the bit-identity contract through the query layer.

constexpr std::size_t kMemWords = 1024;
constexpr std::size_t kBlockWords = 16;

std::vector<graph::Edge> FixtureEdges() { return graph::Gnm(96, 400, 0x51); }

em::EmConfig FixtureConfig(em::StorageKind storage) {
  em::EmConfig cfg;
  cfg.memory_words = kMemWords;
  cfg.block_words = kBlockWords;
  cfg.seed = 2014;
  cfg.storage = storage;
  return cfg;
}

// A transient schedule hitting both ops with two fault kinds; periods are
// coprime so no run of consecutive operations can exhaust the retry budget.
constexpr char kTransientSpec[] =
    "read:eio:every=7;write:eio:every=9;read:short:every=11;"
    "write:short:every=13";

TEST(Faults, TransientSchedulesLeaveEveryQueryBitIdentical) {
  // The tentpole contract, across the whole matrix: algorithm x backend x
  // scan mode x threads. The faulted store answers every query with the
  // same triangles (values AND emission order), the same counted IoStats,
  // and the same internal work as the clean store, with all recovery
  // traffic reported separately.
  for (em::StorageKind storage :
       {em::StorageKind::kMemory, em::StorageKind::kFile}) {
    SCOPED_TRACE(storage == em::StorageKind::kFile ? "file" : "memory");
    em::EmConfig clean_cfg = FixtureConfig(storage);
    em::EmConfig fault_cfg = FixtureConfig(storage);
    fault_cfg.fault_spec = kTransientSpec;
    ASSERT_TRUE(faults::ApplyFaultConfig(fault_cfg).ok());

    auto clean_lg = query::LoadedGraph::FromEdges(clean_cfg, FixtureEdges());
    auto fault_lg = query::LoadedGraph::FromEdges(fault_cfg, FixtureEdges());
    ASSERT_TRUE(clean_lg.ok()) << clean_lg.status().ToString();
    ASSERT_TRUE(fault_lg.ok()) << fault_lg.status().ToString();

    std::uint64_t total_retries = 0;
    for (const core::AlgorithmInfo& algo : core::AllAlgorithms()) {
      for (em::ScanMode scan :
           {em::ScanMode::kBuffered, em::ScanMode::kElementwise}) {
        for (std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
          SCOPED_TRACE(algo.name + (scan == em::ScanMode::kBuffered
                                        ? "/buffered/"
                                        : "/elementwise/") +
                       std::to_string(threads) + "t");
          query::Query q;
          q.kind = query::QueryKind::kEnumerate;
          q.algo = algo.name;
          q.scan_mode = scan;
          q.threads = threads;
          auto clean = clean_lg->Run(q);
          auto faulted = fault_lg->Run(q);
          ASSERT_TRUE(clean.ok()) << clean.status().ToString();
          ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
          EXPECT_EQ(faulted->triangles, clean->triangles);
          EXPECT_EQ(faulted->list, clean->list)
              << "emission order must survive fault recovery";
          EXPECT_EQ(faulted->io.block_reads, clean->io.block_reads);
          EXPECT_EQ(faulted->io.block_writes, clean->io.block_writes);
          EXPECT_EQ(faulted->io.cache_hits, clean->io.cache_hits);
          EXPECT_EQ(faulted->work, clean->work);
          EXPECT_EQ(clean->recovery.retries, 0u);
          EXPECT_EQ(faulted->recovery.retries,
                    faulted->recovery.faults_injected);
          total_retries += faulted->recovery.retries;
        }
      }
    }
    EXPECT_GT(total_retries, 0u)
        << "the schedule never fired: the matrix proved nothing";
  }
}

// Probes an identical clean-scheduled run to learn the injector's read-op
// ordinal after load (L) and after one `q` query (L + Q), so a permanent
// fault can be planted mid-query deterministically.
struct ReadOpProbe {
  std::uint64_t after_load = 0;
  std::uint64_t after_query = 0;
};

ReadOpProbe ProbeReadOps(em::StorageKind storage, const query::Query& q) {
  em::EmConfig cfg = FixtureConfig(storage);
  cfg.fault_spec = "read:eio:at=1000000000";  // installed, never fires
  EXPECT_TRUE(faults::ApplyFaultConfig(cfg).ok());
  auto lg = query::LoadedGraph::FromEdges(cfg, FixtureEdges());
  EXPECT_TRUE(lg.ok());
  faults::FaultInjectingBackend* inj =
      faults::FindInjector(lg->store().device().backend());
  EXPECT_NE(inj, nullptr);
  ReadOpProbe probe;
  probe.after_load = inj->op_count(faults::FaultOp::kRead);
  EXPECT_TRUE(lg->Run(q).ok());
  probe.after_query = inj->op_count(faults::FaultOp::kRead);
  return probe;
}

TEST(Faults, PermanentFaultFailsOnlyTheQueryAndTheSessionSurvives) {
  for (em::StorageKind storage :
       {em::StorageKind::kMemory, em::StorageKind::kFile}) {
    SCOPED_TRACE(storage == em::StorageKind::kFile ? "file" : "memory");
    query::Query q;
    q.kind = query::QueryKind::kEnumerate;
    q.algo = "ps-cache-aware";

    ReadOpProbe probe = ProbeReadOps(storage, q);
    ASSERT_GT(probe.after_query, probe.after_load + 4)
        << "fixture too small to plant a mid-query fault";
    const std::uint64_t mid =
        probe.after_load + (probe.after_query - probe.after_load) / 2;

    // The reference answer, from a fresh clean context.
    auto ref_lg =
        query::LoadedGraph::FromEdges(FixtureConfig(storage), FixtureEdges());
    ASSERT_TRUE(ref_lg.ok());
    auto ref = ref_lg->Run(q);
    ASSERT_TRUE(ref.ok());

    // The victim: identical run, permanent read fault planted mid-query.
    em::EmConfig cfg = FixtureConfig(storage);
    cfg.fault_spec = "read:eio:at=" + std::to_string(mid) + ",perm=1";
    ASSERT_TRUE(faults::ApplyFaultConfig(cfg).ok());
    auto lg = query::LoadedGraph::FromEdges(cfg, FixtureEdges());
    ASSERT_TRUE(lg.ok()) << "the fault must not fire during load";

    auto failed = lg->Run(q);
    ASSERT_FALSE(failed.ok()) << "a permanent fault must fail the query";
    EXPECT_EQ(failed.status().code(), StatusCode::kIoError);

    // Crash consistency: the session survived with no leaked state.
    EXPECT_EQ(lg->store().cache().pinned_lines(), 0u);
    EXPECT_TRUE(lg->store().cache().fault().ok())
        << "the failed query must have discarded the latched fault";
    EXPECT_EQ(lg->session().scratch_in_use(), 0u);
    EXPECT_EQ(lg->store().device().Mark(), lg->frozen_mark())
        << "the failed query leaked device allocations";

    // Disarm the (latched) injector: the next query must run clean and
    // match the fresh-context reference bit for bit.
    faults::FaultInjectingBackend* inj =
        faults::FindInjector(lg->store().device().backend());
    ASSERT_NE(inj, nullptr);
    inj->set_armed(false);
    auto again = lg->Run(q);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_EQ(again->triangles, ref->triangles);
    EXPECT_EQ(again->list, ref->list);
    EXPECT_EQ(again->io.block_reads, ref->io.block_reads);
    EXPECT_EQ(again->io.block_writes, ref->io.block_writes);
    EXPECT_EQ(again->io.cache_hits, ref->io.cache_hits);
    EXPECT_EQ(again->work, ref->work);
  }
}

TEST(Faults, EnospcOnGrowFailsTheLoadGracefully) {
  em::EmConfig cfg = FixtureConfig(em::StorageKind::kMemory);
  cfg.fault_spec = "grow:enospc:every=1,perm=1";
  ASSERT_TRUE(faults::ApplyFaultConfig(cfg).ok());
  auto lg = query::LoadedGraph::FromEdges(cfg, FixtureEdges());
  ASSERT_FALSE(lg.ok()) << "no storage can grow: the load cannot succeed";
  EXPECT_EQ(lg.status().code(), StatusCode::kIoError);
  EXPECT_NE(lg.status().message().find("ENOSPC"), std::string::npos)
      << lg.status().ToString();
}

TEST(Faults, ChecksummedStoreRecoversFromFlipsBitIdentically) {
  // Silent corruption end to end: every 5th full-line read comes back with
  // a flipped bit, checksums catch each one, and the query layer still
  // reports a bit-identical result with the recovery traffic accounted.
  auto clean_lg = query::LoadedGraph::FromEdges(
      FixtureConfig(em::StorageKind::kFile), FixtureEdges());
  ASSERT_TRUE(clean_lg.ok());

  em::EmConfig cfg = FixtureConfig(em::StorageKind::kFile);
  cfg.fault_spec = "read:flip:every=5";
  cfg.verify_checksums = true;
  ASSERT_TRUE(faults::ApplyFaultConfig(cfg).ok());
  auto lg = query::LoadedGraph::FromEdges(cfg, FixtureEdges());
  ASSERT_TRUE(lg.ok()) << lg.status().ToString();

  query::Query q;
  q.kind = query::QueryKind::kEnumerate;
  q.algo = "ps-cache-aware";
  auto clean = clean_lg->Run(q);
  auto sums = lg->Run(q);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(sums.ok()) << sums.status().ToString();
  EXPECT_EQ(sums->triangles, clean->triangles);
  EXPECT_EQ(sums->list, clean->list);
  EXPECT_EQ(sums->io.block_reads, clean->io.block_reads);
  EXPECT_EQ(sums->io.block_writes, clean->io.block_writes);
  EXPECT_GT(sums->recovery.checksum_failures, 0u)
      << "the schedule never flipped a counted read";
  EXPECT_GE(sums->recovery.retries, sums->recovery.checksum_failures);
}

TEST(Faults, RecoveryStatsDeltaIsPerQuery) {
  // QueryResult::recovery is the per-query delta, not the store's lifetime
  // total: two identical queries over one store report identical recovery
  // traffic (determinism makes the schedules align exactly).
  em::EmConfig cfg = FixtureConfig(em::StorageKind::kMemory);
  cfg.fault_spec = kTransientSpec;
  ASSERT_TRUE(faults::ApplyFaultConfig(cfg).ok());
  auto lg = query::LoadedGraph::FromEdges(cfg, FixtureEdges());
  ASSERT_TRUE(lg.ok());
  query::Query q;
  q.algo = "mgt";
  auto a = lg->Run(q);
  auto b = lg->Run(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a->recovery.faults_injected, 0u);
  EXPECT_EQ(a->recovery.retries, b->recovery.retries);
  EXPECT_EQ(a->recovery.faults_injected, b->recovery.faults_injected);
}

}  // namespace
}  // namespace trienum
