// Streaming scan primitives: filter/transform/unique/copy semantics and
// their exact O(n/B) I/O cost.
#include <gtest/gtest.h>

#include "extsort/scan_ops.h"
#include "test_util.h"

namespace trienum {
namespace {

TEST(ScanOps, FilterKeepsOrderAndCount) {
  em::Context ctx = test::MakeContext();
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(100);
  for (std::size_t i = 0; i < 100; ++i) a.Set(i, i);
  std::size_t kept =
      extsort::Filter(a, a, [](std::uint64_t v) { return v % 3 == 0; });
  EXPECT_EQ(kept, 34u);
  for (std::size_t i = 0; i < kept; ++i) EXPECT_EQ(a.Get(i), 3 * i);
}

TEST(ScanOps, FilterInPlaceAliasingIsSafe) {
  // Writes trail reads, so src may alias dst.
  em::Context ctx = test::MakeContext();
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(1000);
  for (std::size_t i = 0; i < 1000; ++i) a.Set(i, i);
  std::size_t kept =
      extsort::Filter(a, a, [](std::uint64_t v) { return v >= 500; });
  EXPECT_EQ(kept, 500u);
  EXPECT_EQ(a.Get(0), 500u);
  EXPECT_EQ(a.Get(499), 999u);
}

TEST(ScanOps, TransformToDifferentType) {
  em::Context ctx = test::MakeContext();
  em::Array<graph::Edge> a = ctx.Alloc<graph::Edge>(10);
  for (std::size_t i = 0; i < 10; ++i) {
    a.Set(i, graph::Edge{static_cast<graph::VertexId>(i),
                         static_cast<graph::VertexId>(i + 1)});
  }
  em::Array<std::uint64_t> out = ctx.Alloc<std::uint64_t>(10);
  extsort::Transform(a, out,
                     [](const graph::Edge& e) { return std::uint64_t{e.u + e.v}; });
  EXPECT_EQ(out.Get(3), 7u);
}

TEST(ScanOps, UniqueConsecutive) {
  em::Context ctx = test::MakeContext();
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(9);
  std::uint64_t vals[] = {1, 1, 2, 2, 2, 3, 1, 1, 4};
  for (std::size_t i = 0; i < 9; ++i) a.Set(i, vals[i]);
  std::size_t n = extsort::UniqueConsecutive(
      a, [](std::uint64_t x, std::uint64_t y) { return x == y; });
  EXPECT_EQ(n, 5u);  // 1 2 3 1 4
  std::uint64_t expect[] = {1, 2, 3, 1, 4};
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(a.Get(i), expect[i]);
}

TEST(ScanOps, CountIfAndIsSorted) {
  em::Context ctx = test::MakeContext();
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(50);
  for (std::size_t i = 0; i < 50; ++i) a.Set(i, i * 2);
  EXPECT_EQ(extsort::CountIf(a, [](std::uint64_t v) { return v < 20; }), 10u);
  EXPECT_TRUE(extsort::IsSorted(a, std::less<std::uint64_t>{}));
  a.Set(20, 0);
  EXPECT_FALSE(extsort::IsSorted(a, std::less<std::uint64_t>{}));
}

TEST(ScanOps, ScanCostIsNOverB) {
  const std::size_t n = 1 << 14, b = 16;
  em::Context ctx = test::MakeContext(1 << 8, b);
  em::Array<std::uint64_t> src = ctx.Alloc<std::uint64_t>(n);
  em::Array<std::uint64_t> dst = ctx.Alloc<std::uint64_t>(n);
  ctx.cache().set_counting(false);
  for (std::size_t i = 0; i < n; ++i) src.Set(i, i);
  ctx.cache().set_counting(true);
  ctx.cache().Reset();
  extsort::Copy(src, dst);
  ctx.cache().FlushAll();
  // One read + one write stream: 2n/B block transfers exactly.
  EXPECT_EQ(ctx.cache().stats().total_ios(), 2 * n / b);
}

TEST(ScanOps, ForEachVisitsAllInOrder) {
  em::Context ctx = test::MakeContext();
  em::Array<std::uint64_t> a = ctx.Alloc<std::uint64_t>(20);
  for (std::size_t i = 0; i < 20; ++i) a.Set(i, i);
  std::uint64_t next = 0;
  extsort::ForEach(a, [&next](std::uint64_t v) {
    EXPECT_EQ(v, next);
    ++next;
  });
  EXPECT_EQ(next, 20u);
}

}  // namespace
}  // namespace trienum
