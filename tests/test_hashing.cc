// 4-wise polynomial hashing, GF(2^m), and the AGHP epsilon-biased family:
// determinism, field axioms, uniformity, and measured bias.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.h"
#include "hashing/bit_family.h"
#include "hashing/gf2.h"
#include "hashing/kwise.h"

namespace trienum {
namespace {

using hashing::FourWiseHash;
using hashing::GF2m;

TEST(MulMod61, KnownValuesAndBounds) {
  EXPECT_EQ(hashing::MulMod61(0, 12345), 0u);
  EXPECT_EQ(hashing::MulMod61(1, 12345), 12345u);
  // (p-1)^2 mod p == 1.
  EXPECT_EQ(hashing::MulMod61(hashing::kMersenne61 - 1, hashing::kMersenne61 - 1),
            1u);
  SplitMix64 rng(1);
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t a = rng.Next() % hashing::kMersenne61;
    std::uint64_t b = rng.Next() % hashing::kMersenne61;
    std::uint64_t r = hashing::MulMod61(a, b);
    EXPECT_LT(r, hashing::kMersenne61);
    __uint128_t expect = (static_cast<__uint128_t>(a) * b) % hashing::kMersenne61;
    EXPECT_EQ(r, static_cast<std::uint64_t>(expect));
  }
}

TEST(FourWiseHash, DeterministicPerSeed) {
  FourWiseHash h1(42), h2(42), h3(43);
  for (std::uint64_t x : {0ull, 1ull, 999ull, 1ull << 40}) {
    EXPECT_EQ(h1(x), h2(x));
  }
  int diff = 0;
  for (std::uint64_t x = 0; x < 64; ++x) diff += h1(x) != h3(x);
  EXPECT_GE(diff, 60);  // different seeds give (almost surely) different maps
}

TEST(FourWiseHash, ColorsRoughlyUniform) {
  const std::uint32_t c = 8;
  const int n = 80000;
  FourWiseHash h(777);
  std::vector<int> counts(c, 0);
  for (int x = 0; x < n; ++x) ++counts[h.Color(x, c)];
  double expect = static_cast<double>(n) / c;
  for (std::uint32_t k = 0; k < c; ++k) {
    EXPECT_NEAR(counts[k], expect, 6 * std::sqrt(expect)) << "color " << k;
  }
}

TEST(FourWiseHash, BitsPairwiseBalanced) {
  // For any fixed pair (x, y), over random seeds Pr[b(x) == b(y)] ~ 1/2 —
  // the property Lemma 3's adjacent-pair argument needs.
  const int trials = 4000;
  int equal = 0;
  for (int s = 0; s < trials; ++s) {
    FourWiseHash h(1000 + s);
    equal += h.Bit(123) == h.Bit(45678);
  }
  EXPECT_NEAR(equal, trials / 2, 5 * std::sqrt(trials / 4.0));
}

TEST(FourWiseHash, FourPointPatternsBalanced) {
  // 4-wise independence: over random seeds, the 4-bit pattern of four fixed
  // points should be ~uniform over 16 possibilities.
  const int trials = 16000;
  std::map<int, int> hist;
  for (int s = 0; s < trials; ++s) {
    FourWiseHash h(5000 + s);
    int pat = (h.Bit(3) << 3) | (h.Bit(17) << 2) | (h.Bit(999) << 1) | h.Bit(52);
    ++hist[pat];
  }
  for (int pat = 0; pat < 16; ++pat) {
    EXPECT_NEAR(hist[pat], trials / 16, 6 * std::sqrt(trials / 16.0))
        << "pattern " << pat;
  }
}

TEST(GF2, FindsIrreducibleModulus) {
  for (int m : {2, 3, 4, 8, 12, 16}) {
    GF2m f(m);
    EXPECT_EQ(f.modulus() >> m, 1u) << "degree must be exactly m";
    EXPECT_TRUE(GF2m::IsIrreducible(f.modulus(), m));
  }
}

TEST(GF2, KnownIrreducibility) {
  // x^2 + x + 1 irreducible; x^2 + 1 = (x+1)^2 reducible over GF(2).
  EXPECT_TRUE(GF2m::IsIrreducible(0b111, 2));
  EXPECT_FALSE(GF2m::IsIrreducible(0b101, 2));
  // x^3 + x + 1 irreducible; x^3 + x^2 + x + 1 divisible by x + 1.
  EXPECT_TRUE(GF2m::IsIrreducible(0b1011, 3));
  EXPECT_FALSE(GF2m::IsIrreducible(0b1111, 3));
}

TEST(GF2, FieldAxiomsSampled) {
  GF2m f(8);
  SplitMix64 rng(2);
  for (int i = 0; i < 200; ++i) {
    std::uint64_t a = rng.Below(f.order());
    std::uint64_t b = rng.Below(f.order());
    std::uint64_t c = rng.Below(f.order());
    EXPECT_EQ(f.Mul(a, b), f.Mul(b, a));
    EXPECT_EQ(f.Mul(a, f.Mul(b, c)), f.Mul(f.Mul(a, b), c));
    EXPECT_EQ(f.Mul(a, 1), a);
    EXPECT_EQ(f.Mul(a, 0), 0u);
    // Distributivity: a*(b+c) = a*b + a*c (addition is xor).
    EXPECT_EQ(f.Mul(a, b ^ c), f.Mul(a, b) ^ f.Mul(a, c));
  }
}

TEST(GF2, NonzeroElementsInvertible) {
  GF2m f(8);
  // a^(2^m - 1) == 1 for every nonzero a (the multiplicative group).
  for (std::uint64_t a = 1; a < f.order(); a += 17) {
    EXPECT_EQ(f.Pow(a, f.order() - 1), 1u) << a;
  }
}

TEST(Aghp, MeasuredBiasIsSmall) {
  // For the epsilon-biased family over n positions, every fixed nonempty
  // parity should be near-balanced across the whole family. We spot-check a
  // few parities over a subsampled family with m = 10.
  hashing::AghpFamily fam(10);
  const std::uint64_t stride = 257;  // subsample the 2^20 sample points
  const std::vector<std::vector<std::uint64_t>> parities = {
      {5}, {1, 2}, {10, 20, 30}, {7, 77, 777, 7777}};
  for (const auto& pos : parities) {
    std::int64_t sum = 0;
    std::int64_t total = 0;
    for (std::uint64_t idx = 0; idx < fam.size(); idx += stride) {
      hashing::AghpBitFunction f = fam.Get(idx);
      int parity = 0;
      for (std::uint64_t p : pos) parity ^= f.Bit(p);
      sum += parity ? 1 : -1;
      ++total;
    }
    double bias = std::abs(static_cast<double>(sum)) / total;
    EXPECT_LT(bias, 0.05) << "parity size " << pos.size();
  }
}

TEST(BitCandidates, ScheduleIsDeterministic) {
  FourWiseHash a = hashing::FourWiseBitCandidates::Candidate(3, 7);
  FourWiseHash b = hashing::FourWiseBitCandidates::Candidate(3, 7);
  FourWiseHash c = hashing::FourWiseBitCandidates::Candidate(3, 8);
  EXPECT_EQ(a.seed(), b.seed());
  EXPECT_NE(a.seed(), c.seed());
}

}  // namespace
}  // namespace trienum
